#include "tools/selector_factory.h"

#include <utility>
#include <vector>

#include "src/crawler/adaptive_selector.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/naive_selectors.h"
#include "src/crawler/optimal_selector.h"
#include "src/crawler/oracle_selector.h"
#include "src/crawler/term_weight_selector.h"
#include "src/domain/domain_selector.h"

namespace deepcrawl {

namespace {

constexpr SelectorInfo kRegistry[] = {
    {"bfs", "breadth-first baseline: Lto-query as a FIFO queue (§3.1)"},
    {"dfs", "depth-first baseline: Lto-query as a LIFO stack (§3.1)"},
    {"random", "uniform random pick from Lto-query (§3.1)"},
    {"greedy", "greedy link-based: highest local degree first (§3.2)"},
    {"mmmi",
     "greedy until saturation, then min-max mutual-information batches "
     "(§3.3)"},
    {"term-weight",
     "TF·IDF term weighting over harvested documents (textual sources; "
     "Gupta & Bhatia)"},
    {"adaptive",
     "meta-policy greedy → mmmi → term-weight, advancing when the "
     "harvest-rate EWMA decays; adaptive:a,b,... sets a custom chain"},
    {"opt-rank",
     "competitive rank-hierarchy descent, within 2×OPT (needs a rank "
     "attribute)"},
    {"opt-threshold", "threshold variant of the rank-hierarchy descent"},
    {"oracle",
     "true-harvest-rate oracle from the backend index (harness-only "
     "upper bound)"},
    {"domain", "scripted domain-table selection (needs --domain-input)"},
};

// Policies an adaptive chain may contain: frontier-driven (the shared
// event stream fully describes their candidate set) and checkpointable
// without external scripts.
bool ChainEligible(const std::string& policy) {
  return policy == "bfs" || policy == "dfs" || policy == "random" ||
         policy == "greedy" || policy == "mmmi" || policy == "term-weight";
}

StatusOr<std::unique_ptr<QuerySelector>> MakeAdaptive(
    const std::string& policy, const SelectorContext& context) {
  std::vector<std::string> chain;
  if (policy == "adaptive") {
    chain = {"greedy", "mmmi", "term-weight"};
  } else {
    std::string rest = policy.substr(std::string("adaptive:").size());
    size_t begin = 0;
    while (begin <= rest.size()) {
      size_t comma = rest.find(',', begin);
      size_t end = comma == std::string::npos ? rest.size() : comma;
      chain.push_back(rest.substr(begin, end - begin));
      if (comma == std::string::npos) break;
      begin = comma + 1;
    }
    if (chain.size() < 2) {
      return Status::InvalidArgument(
          "adaptive chain needs at least two policies "
          "(adaptive:a,b[,c...])");
    }
  }
  std::vector<std::unique_ptr<QuerySelector>> children;
  children.reserve(chain.size());
  for (const std::string& child : chain) {
    if (!ChainEligible(child)) {
      return Status::InvalidArgument(
          "adaptive chain policy '" + child +
          "' is not eligible (frontier-driven policies only: "
          "bfs|dfs|random|greedy|mmmi|term-weight)");
    }
    DEEPCRAWL_ASSIGN_OR_RETURN(std::unique_ptr<QuerySelector> selector,
                               MakeSelectorByName(child, context));
    children.push_back(std::move(selector));
  }
  std::unique_ptr<QuerySelector> selector =
      std::make_unique<AdaptiveSelector>(std::move(children));
  return selector;
}

}  // namespace

std::span<const SelectorInfo> RegisteredSelectors() { return kRegistry; }

std::string FormatSelectorList() {
  std::string out = "registered selectors:\n";
  for (const SelectorInfo& info : kRegistry) {
    out += "  ";
    out += info.name;
    size_t pad = 14;
    size_t len = std::string(info.name).size();
    for (size_t i = len; i < pad; ++i) out += ' ';
    out += info.description;
    out += '\n';
  }
  return out;
}

StatusOr<std::unique_ptr<QuerySelector>> MakeSelectorByName(
    const std::string& policy, const SelectorContext& context) {
  // Two user-defined conversions (unique_ptr<Derived> -> unique_ptr<
  // QuerySelector> -> StatusOr) don't chain implicitly, hence the named
  // base-typed pointer per branch.
  std::unique_ptr<QuerySelector> selector;
  if (policy == "bfs") {
    selector = std::make_unique<BfsSelector>();
    return selector;
  }
  if (policy == "dfs") {
    selector = std::make_unique<DfsSelector>();
    return selector;
  }
  if (policy == "random") {
    selector = std::make_unique<RandomSelector>(context.seed);
    return selector;
  }
  if (policy == "adaptive" || policy.rfind("adaptive:", 0) == 0) {
    return MakeAdaptive(policy, context);
  }
  if (context.store == nullptr) {
    return Status::InvalidArgument("selector context has no local store");
  }
  if (policy == "term-weight") {
    selector = std::make_unique<TermWeightSelector>(*context.store);
    return selector;
  }
  if (policy == "greedy") {
    selector = std::make_unique<GreedyLinkSelector>(*context.store);
    return selector;
  }
  if (policy == "mmmi") {
    selector = std::make_unique<MmmiSelector>(*context.store, context.mmmi);
    return selector;
  }
  if (policy == "opt-rank" || policy == "opt-threshold") {
    if (context.target == nullptr) {
      return Status::InvalidArgument("policy '" + policy +
                                     "' needs the target table (for the "
                                     "rank hierarchy)");
    }
    // A target without the rank attribute yields an empty hierarchy and
    // the selector degrades to plain greedy — that is deliberate, so
    // opt-* can run on any workload for comparison.
    AttributeId rank_attr = kInvalidAttributeId;
    StatusOr<AttributeId> found =
        context.target->schema().FindAttribute(context.rank_attribute);
    if (found.ok()) rank_attr = found.value();
    DEEPCRAWL_ASSIGN_OR_RETURN(
        QueryHierarchy hierarchy,
        QueryHierarchy::FromCatalog(context.target->catalog(), rank_attr));
    OptimalSelectorOptions opts;
    opts.mode = policy == "opt-rank" ? OptimalMode::kRank
                                     : OptimalMode::kThreshold;
    opts.result_limit = context.result_limit;
    selector = std::make_unique<RankOptimalSelector>(
        *context.store, std::move(hierarchy), opts);
    return selector;
  }
  if (policy == "oracle") {
    if (context.oracle_index == nullptr) {
      return Status::InvalidArgument(
          "policy 'oracle' needs the backend's inverted index");
    }
    selector = std::make_unique<OracleSelector>(*context.store,
                                                *context.oracle_index,
                                                context.page_size,
                                                context.result_limit);
    return selector;
  }
  if (policy == "domain") {
    if (context.domain == nullptr) {
      return Status::InvalidArgument(
          "policy 'domain' needs a domain table (--domain-input=<tsv>)");
    }
    selector = std::make_unique<DomainSelector>(
        *context.store, *context.domain, context.page_size);
    return selector;
  }
  return Status::InvalidArgument("unknown policy '" + policy + "'\n" +
                                 FormatSelectorList());
}

}  // namespace deepcrawl
