
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/canned_workloads.cc" "src/datagen/CMakeFiles/deepcrawl_datagen.dir/canned_workloads.cc.o" "gcc" "src/datagen/CMakeFiles/deepcrawl_datagen.dir/canned_workloads.cc.o.d"
  "/root/repo/src/datagen/movie_domain.cc" "src/datagen/CMakeFiles/deepcrawl_datagen.dir/movie_domain.cc.o" "gcc" "src/datagen/CMakeFiles/deepcrawl_datagen.dir/movie_domain.cc.o.d"
  "/root/repo/src/datagen/publication_domain.cc" "src/datagen/CMakeFiles/deepcrawl_datagen.dir/publication_domain.cc.o" "gcc" "src/datagen/CMakeFiles/deepcrawl_datagen.dir/publication_domain.cc.o.d"
  "/root/repo/src/datagen/workload_config.cc" "src/datagen/CMakeFiles/deepcrawl_datagen.dir/workload_config.cc.o" "gcc" "src/datagen/CMakeFiles/deepcrawl_datagen.dir/workload_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relation/CMakeFiles/deepcrawl_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/deepcrawl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
