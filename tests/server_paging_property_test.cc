// Property sweep: pagination/limit/cost invariants of WebDbServer over
// a grid of (page size, result limit) configurations on a generated
// database. Definition 2.3's cost model must hold exactly in every
// configuration.

#include <gtest/gtest.h>

#include <tuple>

#include "src/datagen/workload_config.h"
#include "src/server/web_db_server.h"

namespace deepcrawl {
namespace {

class ServerPagingPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {
 protected:
  static Table MakeDb() {
    SyntheticDbConfig config;
    config.name = "paging";
    config.num_records = 300;
    config.seed = 77;
    config.attributes = {
        {.name = "Hub", .num_distinct = 10, .zipf_exponent = 1.2},
        {.name = "Tail", .num_distinct = 200, .zipf_exponent = 0.5},
    };
    StatusOr<Table> table = GenerateTable(config);
    DEEPCRAWL_CHECK(table.ok());
    return std::move(*table);
  }
};

TEST_P(ServerPagingPropertyTest, CostAndContentInvariants) {
  auto [page_size, result_limit] = GetParam();
  Table db = MakeDb();
  ServerOptions options;
  options.page_size = page_size;
  options.result_limit = result_limit;
  WebDbServer server(db, options);

  for (ValueId v = 0; v < db.num_distinct_values(); ++v) {
    uint32_t frequency = db.value_frequency(v);
    uint32_t retrievable =
        result_limit > 0 ? std::min(frequency, result_limit) : frequency;

    uint64_t rounds_before = server.communication_rounds();
    uint32_t retrieved = 0;
    uint32_t pages = 0;
    RecordId previous = 0;
    bool first_record = true;
    for (uint32_t page = 0;; ++page) {
      StatusOr<ResultPage> fetched = server.FetchPage(v, page);
      ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
      ++pages;
      // Page content invariants.
      ASSERT_LE(fetched->records.size(), page_size);
      ASSERT_EQ(fetched->total_matches.value_or(0), frequency);
      for (const ReturnedRecord& record : fetched->records) {
        // Records arrive in ascending id order across pages, without
        // repetition, and actually contain the queried value.
        if (!first_record) {
          ASSERT_GT(record.id, previous);
        }
        previous = record.id;
        first_record = false;
        auto values = db.record(record.id);
        ASSERT_TRUE(std::binary_search(values.begin(), values.end(), v));
        ++retrieved;
      }
      if (!fetched->has_more) break;
      ASSERT_EQ(fetched->records.size(), page_size)
          << "only the last page may be short";
    }

    // Definition 2.3: rounds = ceil(retrievable / k), min 1.
    uint32_t expected_rounds =
        retrievable == 0 ? 1 : (retrievable + page_size - 1) / page_size;
    EXPECT_EQ(retrieved, retrievable) << "value " << v;
    EXPECT_EQ(pages, expected_rounds) << "value " << v;
    EXPECT_EQ(server.communication_rounds() - rounds_before,
              expected_rounds);
    EXPECT_EQ(server.FullRetrievalCost(v), expected_rounds);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ServerPagingPropertyTest,
    ::testing::Combine(::testing::Values(1u, 3u, 10u, 100u),
                       ::testing::Values(0u, 1u, 7u, 50u)),
    [](const ::testing::TestParamInfo<std::tuple<uint32_t, uint32_t>>&
           info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_limit" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace deepcrawl
