// Crawler: the serial "query-harvest-decompose" loop (§1, §2.5).
//
// Historically this class carried its own drain loop; it is now a thin
// compatibility shim over the unified CrawlEngine (crawl_engine.h) in
// its serial configuration — one drain slot, inline fetch executor, no
// thread ever spawned. The engine's batch == 1 path IS the serial crawl
// order (proven bit-identical by the differential suite), so this shim
// adds no semantics: it only preserves the original construction
// signature for the examples, tests, and estimators written against it.
//
// See crawl_engine.h for the loop's documentation (wave structure,
// retry/backoff resilience, pending-drain parking across Run() calls)
// and src/crawler/checkpoint.h for checkpoint/resume.

#ifndef DEEPCRAWL_CRAWLER_CRAWLER_H_
#define DEEPCRAWL_CRAWLER_CRAWLER_H_

#include <cstdint>

#include "src/crawler/crawl_engine.h"

namespace deepcrawl {

class Crawler {
 public:
  // All referenced objects must outlive the crawler. `abort_policy` may
  // be null (never abort); `retry_policy` may be null (fail the crawl on
  // the first fetch error).
  Crawler(QueryInterface& server, QuerySelector& selector, LocalStore& store,
          CrawlOptions options, AbortPolicy* abort_policy = nullptr,
          const RetryPolicy* retry_policy = nullptr)
      : engine_(server, selector, store, options, EngineOptions{},
                abort_policy, retry_policy) {}

  Crawler(const Crawler&) = delete;
  Crawler& operator=(const Crawler&) = delete;

  // Plants a seed attribute value into the frontier. Must be called
  // before Run; duplicate seeds are ignored.
  void AddSeed(ValueId v) { engine_.AddSeed(v); }

  // Runs the crawl loop until a stop condition fires. May be called
  // again afterwards to continue (e.g. with a larger budget); a drain
  // interrupted by the round budget resumes exactly, with no page
  // re-fetched and no record double-counted.
  StatusOr<CrawlResult> Run() { return engine_.Run(); }

  void set_max_rounds(uint64_t max_rounds) {
    engine_.set_max_rounds(max_rounds);
  }
  void set_target_records(uint64_t target_records) {
    engine_.set_target_records(target_records);
  }
  uint64_t rounds_used() const { return engine_.rounds_used(); }
  const LocalStore& store() const { return engine_.store(); }

  // Simulated time spent, including retry backoff waits.
  const SimulatedClock& clock() const { return engine_.clock(); }

  // The underlying unified engine, e.g. for checkpointing.
  CrawlEngine& engine() { return engine_; }
  const CrawlEngine& engine() const { return engine_; }

 private:
  CrawlEngine engine_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_CRAWLER_CRAWLER_H_
