// Shared helpers for deepcrawl unit and integration tests.

#ifndef DEEPCRAWL_TESTS_TEST_UTIL_H_
#define DEEPCRAWL_TESTS_TEST_UTIL_H_

#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "src/relation/table.h"
#include "src/util/logging.h"

namespace deepcrawl {
namespace testing_util {

// One test record: list of (attribute name, value text) pairs.
using Row = std::vector<std::pair<std::string, std::string>>;

// Builds a table from rows; the schema is the union of attribute names
// in first-appearance order. Aborts (CHECK) on malformed input — tests
// construct valid fixtures.
inline Table MakeTable(const std::vector<Row>& rows) {
  Schema schema;
  for (const Row& row : rows) {
    for (const auto& [attr, _] : row) {
      if (!schema.FindAttribute(attr).ok()) {
        DEEPCRAWL_CHECK(schema.AddAttribute(attr).ok());
      }
    }
  }
  Table table(std::move(schema));
  for (const Row& row : rows) {
    std::vector<Cell> cells;
    for (const auto& [attr, text] : row) {
      StatusOr<AttributeId> id = table.schema().FindAttribute(attr);
      DEEPCRAWL_CHECK(id.ok());
      cells.push_back(Cell{*id, text});
    }
    DEEPCRAWL_CHECK(table.AddRecord(cells).ok());
  }
  return table;
}

// Looks up an interned value id; aborts when absent.
inline ValueId GetValueId(const Table& table, const std::string& attr,
                          const std::string& text) {
  StatusOr<AttributeId> a = table.schema().FindAttribute(attr);
  DEEPCRAWL_CHECK(a.ok()) << "no attribute " << attr;
  ValueId v = table.catalog().Find(*a, text);
  DEEPCRAWL_CHECK(v != kInvalidValueId) << "no value " << attr << "=" << text;
  return v;
}

// The running example of Figure 1: a database whose AVG the paper draws.
//   (a1 b1 c1), (a2 b2 c1), (a2 b2 c2), (a2 b3 c2), (a3 b4 c2)
inline Table MakeFigure1Table() {
  return MakeTable({
      {{"A", "a1"}, {"B", "b1"}, {"C", "c1"}},
      {{"A", "a2"}, {"B", "b2"}, {"C", "c1"}},
      {{"A", "a2"}, {"B", "b2"}, {"C", "c2"}},
      {{"A", "a2"}, {"B", "b3"}, {"C", "c2"}},
      {{"A", "a3"}, {"B", "b4"}, {"C", "c2"}},
  });
}

}  // namespace testing_util
}  // namespace deepcrawl

#endif  // DEEPCRAWL_TESTS_TEST_UTIL_H_
