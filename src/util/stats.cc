#include "src/util/stats.h"

#include <cmath>
#include <limits>

#include "src/util/logging.h"

namespace deepcrawl {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

LinearFit FitLeastSquares(const std::vector<double>& x,
                          const std::vector<double>& y) {
  DEEPCRAWL_CHECK_EQ(x.size(), y.size());
  DEEPCRAWL_CHECK_GE(x.size(), 2u) << "need at least two points to fit";
  size_t n = x.size();
  double sx = 0, sy = 0;
  for (size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  double mx = sx / static_cast<double>(n);
  double my = sy / static_cast<double>(n);
  double sxx = 0, sxy = 0, syy = 0;
  for (size_t i = 0; i < n; ++i) {
    double dx = x[i] - mx;
    double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  DEEPCRAWL_CHECK_GT(sxx, 0.0) << "x values are constant; cannot fit";
  LinearFit fit;
  fit.n = n;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy == 0.0) {
    fit.r_squared = 1.0;  // perfectly flat data, perfectly fit
  } else {
    double ss_res = syy - fit.slope * sxy;
    fit.r_squared = 1.0 - ss_res / syy;
  }
  return fit;
}

namespace {

// Regularized incomplete beta function I_x(a, b) via the continued
// fraction expansion (Numerical Recipes style, Lentz's method).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 1e-14;
  constexpr double kTiny = 1e-30;

  double qab = a + b;
  double qap = a + 1.0;
  double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  double ln_beta = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b);
  double front = std::exp(ln_beta + a * std::log(x) + b * std::log(1.0 - x));
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

}  // namespace

double StudentTCdf(double t, double df) {
  DEEPCRAWL_CHECK_GT(df, 0.0);
  double x = df / (df + t * t);
  double p = 0.5 * RegularizedIncompleteBeta(df / 2.0, 0.5, x);
  return t > 0 ? 1.0 - p : p;
}

double StudentTQuantile(double p, double df) {
  DEEPCRAWL_CHECK_GT(p, 0.0);
  DEEPCRAWL_CHECK_LT(p, 1.0);
  if (p == 0.5) return 0.0;
  // Monotone bisection; the t quantile is bounded well inside +/-1e3 for
  // any p we care about (p in [1e-9, 1-1e-9], df >= 1).
  double lo = -1e3, hi = 1e3;
  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    if (StudentTCdf(mid, df) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * std::max(1.0, std::fabs(lo))) break;
  }
  return 0.5 * (lo + hi);
}

TTestResult OneSampleTTest(const std::vector<double>& samples,
                           double confidence) {
  DEEPCRAWL_CHECK_GE(samples.size(), 2u);
  DEEPCRAWL_CHECK_GT(confidence, 0.0);
  DEEPCRAWL_CHECK_LT(confidence, 1.0);
  RunningStats stats;
  for (double s : samples) stats.Add(s);
  TTestResult result;
  result.n = stats.count();
  result.mean = stats.mean();
  result.stddev = stats.stddev();
  result.df = static_cast<double>(result.n - 1);
  double se = result.stddev / std::sqrt(static_cast<double>(result.n));
  double t_two = StudentTQuantile(0.5 + confidence / 2.0, result.df);
  double t_one = StudentTQuantile(confidence, result.df);
  result.ci_lower = result.mean - t_two * se;
  result.ci_upper = result.mean + t_two * se;
  result.one_sided_upper = result.mean + t_one * se;
  return result;
}

}  // namespace deepcrawl
