// Tests of the §3.4 query abortion heuristics.

#include "src/crawler/abort_policy.h"

#include <gtest/gtest.h>

#include "src/crawler/crawler.h"
#include "src/crawler/naive_selectors.h"
#include "src/server/web_db_server.h"
#include "tests/test_util.h"

namespace deepcrawl {
namespace {

using testing_util::MakeTable;

QueryProgress MakeProgress(uint32_t total, uint32_t page_size,
                           uint32_t pages, uint32_t returned,
                           uint32_t fresh) {
  QueryProgress progress;
  progress.total_matches = total;
  progress.retrievable = total;
  progress.page_size = page_size;
  progress.pages_fetched = pages;
  progress.records_returned = returned;
  progress.new_records = fresh;
  progress.has_more = true;
  return progress;
}

TEST(NeverAbortTest, AlwaysContinues) {
  NeverAbort policy;
  EXPECT_TRUE(policy.ShouldContinue(MakeProgress(100, 10, 5, 50, 0)));
}

TEST(CountBasedAbortTest, ContinuesWhenNoCountAvailable) {
  CountBasedAbort policy(5.0);
  QueryProgress progress = MakeProgress(100, 10, 1, 10, 0);
  progress.total_matches.reset();
  EXPECT_TRUE(policy.ShouldContinue(progress));
}

TEST(CountBasedAbortTest, AbortsWhenRemainingHarvestRateLow) {
  // 100 matches, 10/page; after 5 pages: 50 returned, only 2 new.
  // Duplicate ratio 0.96; remaining 50 records over 5 rounds at 4%
  // freshness ~= 0.4 new/round < threshold 2.
  CountBasedAbort policy(2.0);
  EXPECT_FALSE(policy.ShouldContinue(MakeProgress(100, 10, 5, 50, 2)));
}

TEST(CountBasedAbortTest, ContinuesWhenMostRecordsAreNew) {
  CountBasedAbort policy(2.0);
  EXPECT_TRUE(policy.ShouldContinue(MakeProgress(100, 10, 5, 50, 48)));
}

TEST(CountBasedAbortTest, AbortsWhenNothingRemains) {
  CountBasedAbort policy(0.0);
  // records_returned == retrievable: remaining == 0.
  EXPECT_FALSE(policy.ShouldContinue(MakeProgress(50, 10, 5, 50, 50)));
}

TEST(CountBasedAbortTest, ZeroThresholdOtherwiseNeverAborts) {
  CountBasedAbort policy(0.0);
  EXPECT_TRUE(policy.ShouldContinue(MakeProgress(100, 10, 5, 50, 0)));
}

TEST(DuplicateRatioAbortTest, WaitsForMinimumPages) {
  DuplicateRatioAbort policy(/*min_pages=*/3, /*max_duplicate_fraction=*/0.5);
  EXPECT_TRUE(policy.ShouldContinue(MakeProgress(100, 10, 2, 20, 0)));
  EXPECT_FALSE(policy.ShouldContinue(MakeProgress(100, 10, 3, 30, 0)));
}

TEST(DuplicateRatioAbortTest, ToleratesFreshResults) {
  DuplicateRatioAbort policy(1, 0.5);
  EXPECT_TRUE(policy.ShouldContinue(MakeProgress(100, 10, 4, 40, 30)));
  EXPECT_FALSE(policy.ShouldContinue(MakeProgress(100, 10, 4, 40, 10)));
}

TEST(AbortPolicyIntegrationTest, AbortSavesRoundsOnDuplicateHeavyQuery) {
  // Database with a giant hub value: after the hub is drained once, a
  // second hub-like value mostly repeats the same records.
  std::vector<testing_util::Row> rows;
  for (int i = 0; i < 40; ++i) {
    rows.push_back({{"Hub", "h"},
                    {"AltHub", "g"},
                    {"Id", "r" + std::to_string(i)}});
  }
  // A couple of records only AltHub reaches.
  rows.push_back({{"AltHub", "g"}, {"Id", "only1"}});
  rows.push_back({{"AltHub", "g"}, {"Id", "only2"}});
  Table table = MakeTable(rows);

  ServerOptions server_options;
  server_options.page_size = 5;

  auto run_crawl = [&](AbortPolicy* policy) -> uint64_t {
    WebDbServer server(table, server_options);
    LocalStore store;
    BfsSelector selector;
    Crawler crawler(server, selector, store, CrawlOptions{}, policy);
    crawler.AddSeed(testing_util::GetValueId(table, "Hub", "h"));
    StatusOr<CrawlResult> result = crawler.Run();
    DEEPCRAWL_CHECK(result.ok());
    DEEPCRAWL_CHECK(result->records >= 40u);
    return result->rounds;
  };

  uint64_t rounds_without = run_crawl(nullptr);
  CountBasedAbort abort(1.0);
  uint64_t rounds_with = run_crawl(&abort);
  EXPECT_LT(rounds_with, rounds_without);
}

TEST(AbortPolicyIntegrationTest, AbortedQueryKeepsHarvestedRecords) {
  std::vector<testing_util::Row> rows;
  for (int i = 0; i < 20; ++i) {
    rows.push_back({{"Hub", "h"}, {"Id", "r" + std::to_string(i)}});
  }
  Table table = MakeTable(rows);
  ServerOptions server_options;
  server_options.page_size = 5;
  WebDbServer server(table, server_options);
  LocalStore store;
  BfsSelector selector;
  // Extremely aggressive: abort as soon as expected new / round < 100.
  CountBasedAbort abort(100.0);
  Crawler crawler(server, selector, store, CrawlOptions{}, &abort);
  crawler.AddSeed(testing_util::GetValueId(table, "Hub", "h"));
  StatusOr<CrawlResult> result = crawler.Run();
  ASSERT_TRUE(result.ok());
  // First page of the hub query was harvested before the abort...
  EXPECT_GE(result->records, 5u);
}

TEST(CountBasedAbortDeathTest, NegativeThresholdAborts) {
  EXPECT_DEATH(CountBasedAbort(-1.0), "");
}

TEST(DuplicateRatioAbortDeathTest, InvalidFractionAborts) {
  EXPECT_DEATH(DuplicateRatioAbort(1, 1.5), "");
}

}  // namespace
}  // namespace deepcrawl
