// Canned workload configurations mirroring the paper's four controlled
// databases (§5, Table 2).
//
// | paper database | records (paper) | queriable attributes (paper)      |
// |----------------|-----------------|-----------------------------------|
// | eBay auctions  |          20,000 | Categories, Seller, Location,     |
// |                |                 | Price                             |
// | ACM Digital    |         150,000 | Title, Conference, Journal,       |
// | Library        |                 | Author, Subject keywords          |
// | DBLP           |         500,000 | Title, Conference, Journal,       |
// |                |                 | Author, Volume                    |
// | IMDB           |         400,000 | Actor, Actress, Director, Editor, |
// |                |                 | Producer, ..., Language, Company  |
//
// Each factory takes a `scale` in (0, 1] that scales record counts and
// pool cardinalities proportionally (default 1.0 reproduces the paper's
// sizes; the shipped benches use smaller scales to fit a single-core
// time budget and print the scale they ran at).

#ifndef DEEPCRAWL_DATAGEN_CANNED_WORKLOADS_H_
#define DEEPCRAWL_DATAGEN_CANNED_WORKLOADS_H_

#include <vector>

#include "src/datagen/workload_config.h"

namespace deepcrawl {

SyntheticDbConfig EbayConfig(double scale = 1.0, uint64_t seed = 11);
SyntheticDbConfig AcmDlConfig(double scale = 1.0, uint64_t seed = 12);
SyntheticDbConfig DblpConfig(double scale = 1.0, uint64_t seed = 13);
SyntheticDbConfig ImdbConfig(double scale = 1.0, uint64_t seed = 14);

// All four, in the order the paper's Figure 3 reports them.
std::vector<SyntheticDbConfig> AllControlledConfigs(double scale = 1.0);

}  // namespace deepcrawl

#endif  // DEEPCRAWL_DATAGEN_CANNED_WORKLOADS_H_
