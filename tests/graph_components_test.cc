#include "src/graph/components.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace deepcrawl {
namespace {

using testing_util::MakeFigure1Table;
using testing_util::MakeTable;

TEST(UnionFindTest, BasicMerging) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(1, 2));
  EXPECT_FALSE(uf.Union(0, 2));  // already joined
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.Find(0), uf.Find(2));
  EXPECT_NE(uf.Find(0), uf.Find(3));
  EXPECT_EQ(uf.SetSize(1), 3u);
  EXPECT_EQ(uf.SetSize(4), 1u);
}

TEST(UnionFindTest, SingleElement) {
  UnionFind uf(1);
  EXPECT_EQ(uf.Find(0), 0u);
  EXPECT_EQ(uf.num_sets(), 1u);
}

TEST(ConnectivityTest, Figure1IsFullyConnected) {
  Table table = MakeFigure1Table();
  ConnectivityReport report = AnalyzeConnectivity(table);
  EXPECT_EQ(report.num_value_components, 1u);
  EXPECT_EQ(report.largest_component_records, table.num_records());
  EXPECT_DOUBLE_EQ(report.largest_component_record_fraction, 1.0);
}

TEST(ConnectivityTest, DataIslandsAreSeparate) {
  // §4 Limitation 2: disconnected database graphs.
  Table table = MakeTable({
      {{"X", "x1"}, {"Y", "y1"}},
      {{"X", "x1"}, {"Y", "y2"}},
      {{"X", "x2"}, {"Y", "y3"}},
      {{"X", "x2"}, {"Y", "y4"}},
      {{"X", "x3"}, {"Y", "y5"}},
  });
  ConnectivityReport report = AnalyzeConnectivity(table);
  EXPECT_EQ(report.num_value_components, 3u);
  EXPECT_EQ(report.largest_component_records, 2u);
  EXPECT_DOUBLE_EQ(report.largest_component_record_fraction, 0.4);
}

TEST(ConnectivityTest, RecordsInSameComponentShareRepresentative) {
  Table table = MakeTable({
      {{"X", "x1"}, {"Y", "y1"}},
      {{"X", "x1"}, {"Y", "y2"}},
      {{"X", "x2"}, {"Y", "y3"}},
  });
  ConnectivityReport report = AnalyzeConnectivity(table);
  ASSERT_EQ(report.record_component.size(), 3u);
  EXPECT_EQ(report.record_component[0], report.record_component[1]);
  EXPECT_NE(report.record_component[0], report.record_component[2]);
}

TEST(ConnectivityTest, BridgeValueMergesIslands) {
  // y2 appears in both halves, joining them.
  Table table = MakeTable({
      {{"X", "x1"}, {"Y", "y1"}},
      {{"X", "x1"}, {"Y", "y2"}},
      {{"X", "x2"}, {"Y", "y2"}},
      {{"X", "x2"}, {"Y", "y3"}},
  });
  ConnectivityReport report = AnalyzeConnectivity(table);
  EXPECT_EQ(report.num_value_components, 1u);
  EXPECT_DOUBLE_EQ(report.largest_component_record_fraction, 1.0);
}

}  // namespace
}  // namespace deepcrawl
