// Calibration tests: the statistical properties the paper's experiments
// depend on, checked directly on the generated workloads.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "src/datagen/canned_workloads.h"
#include "src/datagen/workload_config.h"
#include "src/index/inverted_index.h"

namespace deepcrawl {
namespace {

TEST(CalibrationTest, EbayValueToRecordRatioMatchesTable2) {
  // Paper Table 2: eBay has 22,950 distinct values over 20,000 records
  // (ratio ~1.15). The generated eBay must land near that ratio — it is
  // what makes the §3.3 marginal phase dependency-dominated.
  StatusOr<Table> table = GenerateTable(EbayConfig(0.1, 5));
  ASSERT_TRUE(table.ok());
  double ratio = static_cast<double>(table->num_distinct_values()) /
                 static_cast<double>(table->num_records());
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.45);
}

TEST(CalibrationTest, PresenceControlsAttributeSparsity) {
  SyntheticDbConfig config;
  config.name = "sparsity";
  config.num_records = 4000;
  config.seed = 3;
  config.attributes = {
      {.name = "Always", .num_distinct = 50, .zipf_exponent = 0.5},
      {.name = "Sometimes",
       .num_distinct = 50,
       .zipf_exponent = 0.5,
       .presence = 0.4},
  };
  StatusOr<Table> table = GenerateTable(config);
  ASSERT_TRUE(table.ok());
  // Count records carrying each attribute.
  size_t with_sometimes = 0;
  StatusOr<AttributeId> sometimes = table->schema().FindAttribute("Sometimes");
  ASSERT_TRUE(sometimes.ok());
  for (RecordId r = 0; r < table->num_records(); ++r) {
    for (ValueId v : table->record(r)) {
      if (table->catalog().attribute_of(v) == *sometimes) {
        ++with_sometimes;
        break;
      }
    }
  }
  double fraction = static_cast<double>(with_sometimes) /
                    static_cast<double>(table->num_records());
  EXPECT_NEAR(fraction, 0.4, 0.03);
}

TEST(CalibrationTest, DerivedAttributeIsDeterministicFunctionOfSource) {
  // Every record carrying Seller "Seller#i" must carry Store
  // "Store#(i/2)" (when the store attribute is present), and stores
  // carry no other information.
  StatusOr<Table> table = GenerateTable(EbayConfig(0.05, 7));
  ASSERT_TRUE(table.ok());
  StatusOr<AttributeId> seller_attr = table->schema().FindAttribute("Seller");
  StatusOr<AttributeId> store_attr = table->schema().FindAttribute("Store");
  ASSERT_TRUE(seller_attr.ok() && store_attr.ok());

  size_t checked = 0;
  for (RecordId r = 0; r < table->num_records(); ++r) {
    int seller_index = -1;
    std::string store_text;
    for (ValueId v : table->record(r)) {
      const std::string& text = table->catalog().text_of(v);
      if (table->catalog().attribute_of(v) == *seller_attr) {
        seller_index = std::stoi(text.substr(text.find('#') + 1));
      } else if (table->catalog().attribute_of(v) == *store_attr) {
        store_text = text;
      }
    }
    ASSERT_GE(seller_index, 0) << "seller is a presence=1 attribute";
    if (store_text.empty()) continue;  // store presence < 1
    EXPECT_EQ(store_text, "Store#" + std::to_string(seller_index / 2))
        << "record " << r;
    ++checked;
  }
  EXPECT_GT(checked, table->num_records() / 2);  // presence 0.8
}

TEST(CalibrationTest, DerivedAttributeCreatesStrongDependency) {
  // Co-occurrence(store, its seller) == frequency of the pair: the §3.3
  // "other author name is not a good choice" structure, measurable as
  // posting containment.
  StatusOr<Table> table = GenerateTable(EbayConfig(0.05, 7));
  ASSERT_TRUE(table.ok());
  InvertedIndex index(*table);
  StatusOr<AttributeId> store_attr = table->schema().FindAttribute("Store");
  StatusOr<AttributeId> seller_attr = table->schema().FindAttribute("Seller");
  ASSERT_TRUE(store_attr.ok() && seller_attr.ok());

  int strong = 0, total = 0;
  for (ValueId v = 0; v < table->num_distinct_values() && total < 50; ++v) {
    if (table->catalog().attribute_of(v) != *store_attr) continue;
    const std::string& text = table->catalog().text_of(v);
    int store_index = std::stoi(text.substr(text.find('#') + 1));
    // The two sellers aliased to this store.
    uint32_t contained = 0;
    for (int s = store_index * 2; s <= store_index * 2 + 1; ++s) {
      ValueId seller = table->catalog().Find(
          *seller_attr, "Seller#" + std::to_string(s));
      if (seller == kInvalidValueId) continue;
      contained += index.CooccurrenceCount(v, seller);
    }
    // Every record of the store carries one of its two sellers.
    if (contained == index.MatchCount(v)) ++strong;
    ++total;
  }
  ASSERT_GT(total, 10);
  EXPECT_EQ(strong, total);
}

TEST(CalibrationTest, RecordCommunityCorrelatesAttributes) {
  // Cross-attribute dependency: a record's Category and Seller come
  // from the same community slice far more often than independence
  // would allow.
  StatusOr<Table> table = GenerateTable(EbayConfig(0.1, 5));
  ASSERT_TRUE(table.ok());
  StatusOr<AttributeId> category_attr =
      table->schema().FindAttribute("Category");
  StatusOr<AttributeId> seller_attr = table->schema().FindAttribute("Seller");
  ASSERT_TRUE(category_attr.ok() && seller_attr.ok());
  // eBay at scale 0.1: Category pool 120 over 6 communities (slice 20),
  // Seller pool 1200 over 30 communities (slice 40). The shared record
  // community u maps via floor(u * communities) in both.
  size_t same = 0, counted = 0;
  for (RecordId r = 0; r < table->num_records(); ++r) {
    int category = -1, seller = -1;
    for (ValueId v : table->record(r)) {
      const std::string& text = table->catalog().text_of(v);
      if (table->catalog().attribute_of(v) == *category_attr) {
        category = std::stoi(text.substr(text.find('#') + 1));
      } else if (table->catalog().attribute_of(v) == *seller_attr) {
        seller = std::stoi(text.substr(text.find('#') + 1));
      }
    }
    if (category < 0 || seller < 0) continue;
    ++counted;
    // Project both onto the coarser (6-community) grid.
    if (category / 20 == (seller / 40) * 6 / 30) ++same;
  }
  ASSERT_GT(counted, 100u);
  double fraction = static_cast<double>(same) / static_cast<double>(counted);
  EXPECT_GT(fraction, 0.4) << "expected strong cross-attribute correlation";
}

TEST(CalibrationTest, AllCannedConfigsGenerateAtTinyScale) {
  // Guard: every canned workload must remain generable at its floors.
  for (const SyntheticDbConfig& config : AllControlledConfigs(0.001)) {
    StatusOr<Table> table = GenerateTable(config);
    EXPECT_TRUE(table.ok()) << config.name << ": "
                            << table.status().ToString();
    if (table.ok()) {
      EXPECT_GT(table->num_records(), 0u);
    }
  }
}

}  // namespace
}  // namespace deepcrawl
