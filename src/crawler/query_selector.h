// QuerySelector: the policy interface at the heart of the paper.
//
// §2.5 describes the Web database crawler as Query Selector + Database
// Prober + Result Extractor around three data structures (Lto-query,
// Lqueried, statistics table). The Crawler class owns the prober/
// extractor loop and the queried/pending bookkeeping; concrete
// QuerySelector implementations own the ordering of Lto-query — which is
// precisely where the paper's techniques differ.
//
// Lifecycle per crawl step:
//   1. Crawler calls SelectNext() -> candidate value (or kInvalidValueId
//      when the frontier is exhausted).
//   2. Crawler probes the server page by page; each *new* record is added
//      to the LocalStore and reported via OnRecordHarvested(); each value
//      never seen before is reported via OnValueDiscovered() (it entered
//      Lto-query).
//   3. Crawler reports OnQueryCompleted() with the query's outcome; the
//      value has moved to Lqueried.
//
// Selectors read shared statistics from the LocalStore (passed at
// construction) instead of duplicating them.

#ifndef DEEPCRAWL_CRAWLER_QUERY_SELECTOR_H_
#define DEEPCRAWL_CRAWLER_QUERY_SELECTOR_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/relation/types.h"
#include "src/util/status.h"

namespace deepcrawl {

class CheckpointReader;
class CheckpointWriter;
class LocalStore;

// Summary of one completed query, fed back to the selector.
struct QueryOutcome {
  ValueId value = kInvalidValueId;
  // Total matches reported by the server, when it reports counts.
  std::optional<uint32_t> total_matches;
  uint32_t pages_fetched = 0;
  uint32_t records_returned = 0;
  uint32_t new_records = 0;
  bool aborted = false;  // stopped early by the abort policy
  // Transient fetch failures survived while draining this query (each
  // cost a communication round; see retry_policy.h).
  uint32_t fetch_failures = 0;
  // True when pages were lost to failures: the drain gave up after its
  // retry budget and the value was re-queued or abandoned.
  bool degraded = false;
};

class QuerySelector {
 public:
  virtual ~QuerySelector() = default;

  // `v` entered Lto-query (first sighting, not yet queried).
  virtual void OnValueDiscovered(ValueId v) = 0;

  // A previously-unseen record was appended to the LocalStore; `slot` is
  // its index there. Called after every value of the record has been
  // processed by OnValueDiscovered.
  virtual void OnRecordHarvested(uint32_t slot) { (void)slot; }

  // The query on outcome.value finished; the value is now in Lqueried.
  virtual void OnQueryCompleted(const QueryOutcome& outcome) {
    (void)outcome;
  }

  // The harness detected crawl saturation (§3.3: coverage passed the
  // switch-over threshold); selectors may change strategy. Called at
  // most once.
  virtual void OnSaturation() {}

  // Another selector sharing this crawl's event stream consumed `v`
  // (issued it as a query). The callee must drop v from its own
  // frontier so it never re-selects it. Only meta-policies
  // (AdaptiveSelector) call this — the engine itself removes values via
  // SelectNext. Default: no-op, for selectors without a frontier.
  virtual void OnValueTaken(ValueId v) { (void)v; }

  // Returns the next value to query and removes it from the selector's
  // frontier, or kInvalidValueId when no candidate remains.
  virtual ValueId SelectNext() = 0;

  // Policy name for reports, e.g. "greedy-link".
  virtual std::string_view name() const = 0;

  // True when SelectNext may return a value the crawl has not seen on
  // any result page yet (interface-driven selection, e.g. the Sheng et
  // al. rank hierarchy of optimal_selector.h). The engine then marks
  // such values seen at issue time, keeping the checkpoint id-bound
  // invariant (every id the crawl touched < seen-bitmap size) sound.
  // Frontier-driven selectors keep the default: the engine's discovery
  // path stays byte-identical for them.
  virtual bool MaySelectUndiscovered() const { return false; }

  // --- checkpointing (see src/crawler/checkpoint.h) -------------------
  // Serializes/restores the selector's full decision state, such that a
  // restored selector continues the crawl bit-identically. LoadState is
  // called on a freshly constructed selector whose construction
  // parameters match the checkpointing run; `value_bound` is an
  // exclusive upper bound on every value id the crawl has seen, for
  // validating decoded ids. The default rejects cleanly, so policies
  // with external state (oracle/domain scripts) are non-checkpointable
  // rather than silently wrong.
  virtual Status SaveState(CheckpointWriter& writer) const {
    (void)writer;
    return Status::FailedPrecondition(
        std::string(name()) + " selector does not support checkpointing");
  }
  virtual Status LoadState(CheckpointReader& reader, ValueId value_bound) {
    (void)reader;
    (void)value_bound;
    return Status::FailedPrecondition(
        std::string(name()) + " selector does not support checkpointing");
  }
};

// Shared frontier machinery for statistics-driven selectors.
//
// GreedyLinkSelector, MmmiSelector, the optimal-selector family, and
// TermWeightSelector all need the same candidate surface: the Lto-query
// set as a compact swap-erase vector with a per-value position index
// (O(1) insert/remove/membership, and PendingValues() as a span instead
// of an O(value-space) bitmap scan per ranking batch), plus the shared
// LocalStore they read statistics from. Each of them used to carry its
// own copy; this base holds it once. Scoring stays in the derived
// classes — that is precisely where the paper's techniques differ.
//
// Checkpoint note: SaveFrontier/LoadFrontier serialize the frontier in
// its current swap-erase permutation, byte-identical to the layout the
// pre-refactor GreedyLinkSelector wrote, so derived selectors keep their
// existing checkpoint formats by calling them in the same sequence
// position as before.
class FrontierSelector : public QuerySelector {
 public:
  // `store` must outlive the selector and be the store the crawl feeds;
  // candidate statistics are read from it.
  explicit FrontierSelector(const LocalStore& store);

  void OnValueDiscovered(ValueId v) override;
  void OnValueTaken(ValueId v) override;

  size_t frontier_size() const { return frontier_.size(); }

 protected:
  static constexpr uint32_t kNoPosition = UINT32_MAX;

  bool IsPending(ValueId v) const {
    return v < frontier_pos_.size() && frontier_pos_[v] != kNoPosition;
  }
  void MarkNotPending(ValueId v) {
    uint32_t pos = frontier_pos_[v];
    ValueId moved = frontier_.back();
    frontier_[pos] = moved;
    frontier_pos_[moved] = pos;
    frontier_.pop_back();
    frontier_pos_[v] = kNoPosition;
  }

  // All values currently in Lto-query, in frontier insertion order
  // (swap-erase permuted). Invalidated by the next selector event.
  std::span<const ValueId> PendingValues() const { return frontier_; }

  const LocalStore& store() const { return store_; }

  // Grows the position index to cover `v`.
  void EnsureFrontierCapacity(ValueId v);

  // Called by OnValueDiscovered after `v` entered the frontier; derived
  // selectors hook their per-candidate bookkeeping (heap pushes, weight
  // tables) here instead of overriding OnValueDiscovered.
  virtual void OnFrontierInsert(ValueId v) { (void)v; }

  // Serialization of the frontier alone (u64 size + u32 values in the
  // current permutation). LoadFrontier resets the position index to
  // `value_bound` slots and flags corruption on the reader.
  void SaveFrontier(CheckpointWriter& writer) const;
  void LoadFrontier(CheckpointReader& reader, ValueId value_bound);

 private:
  const LocalStore& store_;
  std::vector<ValueId> frontier_;
  std::vector<uint32_t> frontier_pos_;  // by value; kNoPosition = absent
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_CRAWLER_QUERY_SELECTOR_H_
