#include "src/graph/components.h"

#include <unordered_map>

#include "src/util/logging.h"

namespace deepcrawl {

UnionFind::UnionFind(size_t n)
    : parent_(n), size_(n, 1), num_sets_(n) {
  for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
}

uint32_t UnionFind::Find(uint32_t x) {
  DEEPCRAWL_DCHECK(x < parent_.size());
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::Union(uint32_t a, uint32_t b) {
  uint32_t ra = Find(a);
  uint32_t rb = Find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_sets_;
  return true;
}

uint32_t UnionFind::SetSize(uint32_t x) { return size_[Find(x)]; }

ConnectivityReport AnalyzeConnectivity(const Table& table) {
  size_t n = table.num_distinct_values();
  UnionFind uf(n);
  for (RecordId r = 0; r < table.num_records(); ++r) {
    auto values = table.record(r);
    for (size_t i = 1; i < values.size(); ++i) {
      uf.Union(values[0], values[i]);
    }
  }

  ConnectivityReport report;
  report.num_value_components = uf.num_sets();
  report.record_component.resize(table.num_records());
  std::unordered_map<uint32_t, size_t> records_per_component;
  for (RecordId r = 0; r < table.num_records(); ++r) {
    auto values = table.record(r);
    DEEPCRAWL_CHECK(!values.empty());
    uint32_t component = uf.Find(values[0]);
    report.record_component[r] = component;
    ++records_per_component[component];
  }
  for (const auto& [component, count] : records_per_component) {
    report.largest_component_records =
        std::max(report.largest_component_records, count);
  }
  if (table.num_records() > 0) {
    report.largest_component_record_fraction =
        static_cast<double>(report.largest_component_records) /
        static_cast<double>(table.num_records());
  }
  return report;
}

}  // namespace deepcrawl
