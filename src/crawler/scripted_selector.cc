#include "src/crawler/scripted_selector.h"

#include <string>
#include <utility>

#include "src/util/checkpoint_io.h"

namespace deepcrawl {

ScriptedSelector::ScriptedSelector(std::vector<ValueId> script)
    : script_(std::move(script)) {}

ValueId ScriptedSelector::SelectNext() {
  if (cursor_ >= script_.size()) return kInvalidValueId;
  return script_[cursor_++];
}

Status ScriptedSelector::SaveState(CheckpointWriter& writer) const {
  writer.WriteU64(script_.size());
  writer.WriteU64(cursor_);
  return Status::OK();
}

Status ScriptedSelector::LoadState(CheckpointReader& reader,
                                   ValueId value_bound) {
  (void)value_bound;  // the script is authoritative, not crawl-derived
  uint64_t script_size = reader.ReadU64();
  uint64_t cursor = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  if (script_size != script_.size()) {
    return Status::InvalidArgument(
        "checkpoint script mismatch: file expects a script of " +
        std::to_string(script_size) + " values, this selector holds " +
        std::to_string(script_.size()));
  }
  if (cursor > script_.size()) {
    return Status::InvalidArgument(
        "corrupt checkpoint: script cursor past the script's end");
  }
  cursor_ = static_cast<size_t>(cursor);
  return Status::OK();
}

}  // namespace deepcrawl
