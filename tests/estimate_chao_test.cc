// Tests of the Chao1 online size estimator and the observation
// statistics feeding it.

#include "src/estimate/chao.h"

#include <gtest/gtest.h>

#include "src/crawler/crawler.h"
#include "src/crawler/naive_selectors.h"
#include "src/datagen/workload_config.h"
#include "src/server/web_db_server.h"
#include "tests/test_util.h"

namespace deepcrawl {
namespace {

std::vector<ValueId> V(std::initializer_list<ValueId> ids) { return ids; }

TEST(ObservationStatsTest, AddAndDuplicateCounting) {
  LocalStore store;
  store.AddRecord(10, V({1}));
  store.AddRecord(20, V({2}));
  EXPECT_EQ(store.num_observations(), 2u);
  store.ObserveDuplicate(10);
  store.ObserveDuplicate(10);
  EXPECT_EQ(store.num_observations(), 4u);
  EXPECT_EQ(store.RecordsObservedTimes(1), 1u);  // record 20
  EXPECT_EQ(store.RecordsObservedTimes(2), 0u);
  EXPECT_EQ(store.RecordsObservedTimes(3), 1u);  // record 10
}

TEST(ObservationStatsDeathTest, DuplicateOfUnknownRecordAborts) {
  LocalStore store;
  EXPECT_DEATH(store.ObserveDuplicate(7), "never added");
}

TEST(Chao1Test, ClassicFormula) {
  LocalStore store;
  // 3 singletons, 1 doubleton, 1 tripleton: S_obs = 5.
  for (RecordId r = 0; r < 5; ++r) store.AddRecord(r, V({r}));
  store.ObserveDuplicate(3);
  store.ObserveDuplicate(4);
  store.ObserveDuplicate(4);
  ChaoEstimate estimate = Chao1Estimate(store);
  EXPECT_EQ(estimate.observed_records, 5u);
  EXPECT_EQ(estimate.singletons, 3u);
  EXPECT_EQ(estimate.doubletons, 1u);
  // Bias-corrected: 5 + 3*2 / (2*(1+1)) = 6.5.
  EXPECT_DOUBLE_EQ(estimate.estimated_total, 6.5);
  EXPECT_NEAR(estimate.estimated_coverage, 5.0 / 6.5, 1e-12);
}

TEST(Chao1Test, EmptyStore) {
  LocalStore store;
  ChaoEstimate estimate = Chao1Estimate(store);
  EXPECT_EQ(estimate.observed_records, 0u);
  EXPECT_EQ(estimate.estimated_total, 0.0);
  EXPECT_EQ(estimate.estimated_coverage, 0.0);
}

TEST(Chao1Test, NoSingletonsMeansSaturated) {
  LocalStore store;
  store.AddRecord(0, V({1}));
  store.ObserveDuplicate(0);
  ChaoEstimate estimate = Chao1Estimate(store);
  EXPECT_DOUBLE_EQ(estimate.estimated_total, 1.0);
  EXPECT_DOUBLE_EQ(estimate.estimated_coverage, 1.0);
}

TEST(Chao1Test, CrawlFedEstimateIsInTheRightBallpark) {
  SyntheticDbConfig config;
  config.name = "chao-target";
  config.num_records = 1500;
  config.seed = 8;
  config.attributes = {
      {.name = "A", .num_distinct = 80, .zipf_exponent = 0.9},
      {.name = "B", .num_distinct = 700, .zipf_exponent = 0.6},
  };
  StatusOr<Table> table = GenerateTable(config);
  ASSERT_TRUE(table.ok());
  WebDbServer server(*table, ServerOptions{});
  LocalStore store;
  RandomSelector selector(3);
  CrawlOptions options;
  options.max_rounds = 150;
  Crawler crawler(server, selector, store, options);
  crawler.AddSeed(0);
  ASSERT_TRUE(crawler.Run().ok());

  ChaoEstimate estimate = Chao1Estimate(store);
  // The crawl saw only part of the database, with duplicates.
  ASSERT_GT(estimate.observations, estimate.observed_records);
  EXPECT_GE(estimate.estimated_total,
            static_cast<double>(estimate.observed_records));
  // Order-of-magnitude sanity: between what was seen and ~3x the truth.
  EXPECT_LT(estimate.estimated_total, 3.0 * 1500);
}

TEST(Chao1Test, EstimateConvergesToTruthOnFullCrawl) {
  Table table = testing_util::MakeFigure1Table();
  WebDbServer server(table, ServerOptions{});
  LocalStore store;
  BfsSelector selector;
  Crawler crawler(server, selector, store, CrawlOptions{});
  crawler.AddSeed(testing_util::GetValueId(table, "A", "a2"));
  ASSERT_TRUE(crawler.Run().ok());
  ChaoEstimate estimate = Chao1Estimate(store);
  EXPECT_EQ(estimate.observed_records, table.num_records());
  // A full crawl of Figure 1 observes every record at least twice (each
  // record has 3 values, all queried), so f1 = 0 and the estimator
  // lands exactly on the truth.
  EXPECT_EQ(estimate.singletons, 0u);
  EXPECT_DOUBLE_EQ(estimate.estimated_total,
                   static_cast<double>(table.num_records()));
}

}  // namespace
}  // namespace deepcrawl
