#include "src/util/status.h"

namespace deepcrawl {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace deepcrawl
