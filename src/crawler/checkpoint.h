// CrawlCheckpoint: versioned binary serialization of a crawl's full
// state, so a long-running crawl survives process restarts (DESIGN.md
// §10).
//
// The paper's crawls are long conversations with live, rate-limited
// sources (§2.3 cost model, §5.4 result-size limits); a production
// crawler must be able to stop after any wave and continue later — on
// another process, days later — as if it had never stopped. The
// checkpoint layer captures everything the unified CrawlEngine needs
// for that: the LocalStore statistics table, the selector's frontier /
// heap / MMMI co-occurrence rows, the retry queue and re-queue budgets,
// parked drain slots and the wave cursor, the simulated clock, trace
// points, resilience counters, and (optionally) the fault proxy's keyed
// attempt table and RNG. The restore contract is *bit-identity*:
// checkpoint + restore + continue emits the same trace CSV as the
// uninterrupted run, under every selector, fault profile, and executor
// (proven by the sweep in tests/crawler_parallel_differential_test.cc).
//
// File format (little-endian; framing lives in src/util/checkpoint_io.h):
//
//   offset 0   magic "DCPK"
//          4   u32 format version (kCrawlCheckpointVersion)
//          8   u64 payload size N
//         16   payload (N bytes of section data)
//       16+N   u64 FNV-1a checksum of the payload
//
// The payload is a fixed sequence of sections, each introduced by a
// fourcc marker: CONFIG (construction fingerprint, verified before any
// state is touched), ENGINE (loop state incl. store + selector,
// serialized by CrawlEngine::SaveState), FAULTY (optional fault-proxy
// state), END. Any mangled byte — truncation, flipped bits, a wrong
// version, a size/checksum mismatch — is rejected with a clean Status
// before any section is decoded; decode itself is sticky-failure
// bounds-checked, so even a file that forges the checksum can only
// produce an error, never a crash or a silent partial load. Versioning
// rule: any change to the payload layout bumps kCrawlCheckpointVersion;
// old versions are rejected, never half-read.
//
// Files are written atomically (temp file + rename), so a crawl killed
// mid-save leaves the previous checkpoint intact.

#ifndef DEEPCRAWL_CRAWLER_CHECKPOINT_H_
#define DEEPCRAWL_CRAWLER_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/checkpoint_io.h"
#include "src/util/status.h"

namespace deepcrawl {

class CrawlEngine;
class FaultyServer;

// Bump on ANY payload-layout change; readers reject other versions.
// v2: ResilienceCounters grew rate_limit_rejections / max_retry_after_hint.
// v3: STOR section gained the kPaged manifest form (counters + the
//     paged store's MANIFEST stamp instead of logical record replay).
// v4: new SELC payload kinds — term-weight (frontier + batch queue) and
//     adaptive (chain fingerprint + switch estimator + nested children).
inline constexpr uint32_t kCrawlCheckpointVersion = 4;

// Section markers (fourcc, little-endian u32). Sections appear in file
// order: CONFIG, ENGINE (store + selector nested inside), optional
// FAULTY, END.
inline constexpr uint32_t kSectionConfig = 0x464e4f43;    // "CONF"
inline constexpr uint32_t kSectionEngine = 0x49474e45;    // "ENGI"
inline constexpr uint32_t kSectionStore = 0x524f5453;     // "STOR"
inline constexpr uint32_t kSectionSelector = 0x434c4553;  // "SELC"
inline constexpr uint32_t kSectionFaulty = 0x544c4146;    // "FALT"
inline constexpr uint32_t kSectionEnd = 0x21444e45;       // "END!"

void WriteSectionMarker(CheckpointWriter& writer, uint32_t marker);
// Consumes a marker and latches the reader corrupt (naming the expected
// section) on mismatch. Returns reader.ok() afterwards.
bool ExpectSectionMarker(CheckpointReader& reader, uint32_t marker,
                         const char* name);

// --- whole-crawl orchestration ---------------------------------------
//
// One checkpoint covers the engine (which serializes its own state plus
// the LocalStore and selector sections) and, when the crawl runs behind
// a fault-injecting proxy, the proxy's keyed-attempt/RNG state — without
// it, a resumed crawl would re-draw fault decisions for re-fetched pages
// and diverge from the uninterrupted run.

// Serializes engine (+ proxy) state into a framed checkpoint image.
// `faulty` may be null (no fault proxy in the stack).
StatusOr<std::string> EncodeCrawlCheckpoint(const CrawlEngine& engine,
                                            const FaultyServer* faulty);

// Restores a framed checkpoint image into a freshly constructed engine
// (+ proxy). The engine must have an empty store and no rounds used;
// construction parameters (selector policy, batch, store layout, fault
// setup) must match the checkpointing run, or a clean error is
// returned. On error the engine may be partially populated and must be
// discarded.
Status DecodeCrawlCheckpoint(std::string_view image, CrawlEngine& engine,
                             FaultyServer* faulty);

// File-level convenience wrappers around Encode/Decode.
Status SaveCrawlCheckpoint(const CrawlEngine& engine,
                           const FaultyServer* faulty,
                           const std::string& path);
Status LoadCrawlCheckpoint(const std::string& path, CrawlEngine& engine,
                           FaultyServer* faulty);

}  // namespace deepcrawl

#endif  // DEEPCRAWL_CRAWLER_CHECKPOINT_H_
