// Tests of the interface-schema restriction (Definition 2.2: queriable
// attributes Aq vs result attributes Ar).

#include <gtest/gtest.h>

#include "src/crawler/crawler.h"
#include "src/crawler/naive_selectors.h"
#include "src/server/web_db_server.h"
#include "tests/test_util.h"

namespace deepcrawl {
namespace {

using testing_util::GetValueId;
using testing_util::MakeTable;

// Books: queriable by Title only (like the paper's Amazon books
// example); Author appears in results but the form has no author field.
Table BookTable() {
  return MakeTable({
      {{"Title", "t1"}, {"Author", "smith"}},
      {{"Title", "t2"}, {"Author", "smith"}},
      {{"Title", "t3"}, {"Author", "jones"}},
  });
}

ServerOptions TitleOnly(const Table& table) {
  ServerOptions options;
  StatusOr<AttributeId> title = table.schema().FindAttribute("Title");
  DEEPCRAWL_CHECK(title.ok());
  options.queriable_attributes = {*title};
  return options;
}

TEST(InterfaceSchemaTest, DefaultEverythingQueriable) {
  Table table = BookTable();
  WebDbServer server(table, ServerOptions{});
  for (ValueId v = 0; v < table.num_distinct_values(); ++v) {
    EXPECT_TRUE(server.IsQueriableValue(v));
  }
  EXPECT_FALSE(server.IsQueriableValue(9999));
}

TEST(InterfaceSchemaTest, MaskRestrictsQueriability) {
  Table table = BookTable();
  WebDbServer server(table, TitleOnly(table));
  EXPECT_TRUE(server.IsQueriableValue(GetValueId(table, "Title", "t1")));
  EXPECT_FALSE(
      server.IsQueriableValue(GetValueId(table, "Author", "smith")));
}

TEST(InterfaceSchemaTest, QueryOnUnqueriableAttributeReturnsNothing) {
  Table table = BookTable();
  WebDbServer server(table, TitleOnly(table));
  ValueId smith = GetValueId(table, "Author", "smith");
  StatusOr<ResultPage> page = server.FetchPage(smith, 0);
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(page->records.empty());
  EXPECT_EQ(server.communication_rounds(), 1u);  // the round is spent
}

TEST(InterfaceSchemaTest, CrawlerKeepsUnqueriableValuesOutOfFrontier) {
  // Titles are unique: from one title the crawler retrieves one record,
  // sees the author value, but cannot query it — the crawl ends after a
  // single query even though the author links all records.
  Table table = BookTable();
  WebDbServer server(table, TitleOnly(table));
  LocalStore store;
  BfsSelector selector;
  Crawler crawler(server, selector, store, CrawlOptions{});
  crawler.AddSeed(GetValueId(table, "Title", "t1"));
  StatusOr<CrawlResult> result = crawler.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records, 1u);
  EXPECT_EQ(result->queries, 1u);
  // The author value WAS extracted into the local store (result schema
  // still carries it).
  EXPECT_EQ(store.LocalFrequency(GetValueId(table, "Author", "smith")), 1u);
}

TEST(InterfaceSchemaTest, WiderInterfaceWidensCoverage) {
  Table table = BookTable();
  // Title-only: stuck at 1 record. Full interface: author bridges all
  // smith books.
  {
    WebDbServer server(table, TitleOnly(table));
    LocalStore store;
    BfsSelector selector;
    Crawler crawler(server, selector, store, CrawlOptions{});
    crawler.AddSeed(GetValueId(table, "Title", "t1"));
    EXPECT_EQ(crawler.Run()->records, 1u);
  }
  {
    WebDbServer server(table, ServerOptions{});
    LocalStore store;
    BfsSelector selector;
    Crawler crawler(server, selector, store, CrawlOptions{});
    crawler.AddSeed(GetValueId(table, "Title", "t1"));
    EXPECT_EQ(crawler.Run()->records, 2u);  // both smith books
  }
}

TEST(InterfaceSchemaDeathTest, OutOfRangeAttributeAborts) {
  Table table = BookTable();
  ServerOptions options;
  options.queriable_attributes = {static_cast<AttributeId>(42)};
  EXPECT_DEATH(WebDbServer(table, options), "out of range");
}

}  // namespace
}  // namespace deepcrawl
