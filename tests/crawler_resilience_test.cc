// Integration tests of the crawl loop under injected faults: determinism
// of the fault/retry machinery, coverage parity with a fault-free crawl,
// graceful degradation (re-queue then abandon), and resumption of a
// drain interrupted by the round budget (no page re-issued, no record
// double-counted).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/crawler/crawler.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/naive_selectors.h"
#include "src/datagen/movie_domain.h"
#include "src/server/faulty_server.h"
#include "src/server/web_db_server.h"
#include "tests/test_util.h"

namespace deepcrawl {
namespace {

using testing_util::GetValueId;
using testing_util::MakeFigure1Table;
using testing_util::MakeTable;

// First value id with at least one matching record (valid crawl seed).
ValueId FirstQueriableSeed(const Table& table) {
  for (ValueId v = 0; v < table.num_distinct_values(); ++v) {
    if (table.value_frequency(v) > 0) return v;
  }
  ADD_FAILURE() << "table has no queriable value";
  return kInvalidValueId;
}

// Sorted original record ids harvested into `store`.
std::vector<RecordId> HarvestedIds(const LocalStore& store) {
  std::vector<RecordId> ids;
  ids.reserve(store.num_records());
  for (uint32_t slot = 0; slot < store.num_records(); ++slot) {
    ids.push_back(store.OriginalRecordId(slot));
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

Table SmallMovieTarget() {
  MovieDomainPairConfig config;
  config.universe_size = 3000;
  config.target_size = 900;
  config.seed = 7;
  StatusOr<MovieDomainPair> pair = GenerateMovieDomainPair(config);
  DEEPCRAWL_CHECK(pair.ok()) << pair.status().ToString();
  return std::move(pair->target);
}

// Acceptance criterion: identical seed + FaultProfile => bit-identical
// CrawlTrace (points and resilience counters) across two runs.
TEST(CrawlerResilienceTest, DeterministicTraceUnderFaults) {
  Table target = SmallMovieTarget();
  FaultProfile profile;
  profile.unavailable_rate = 0.05;
  profile.timeout_rate = 0.03;
  profile.rate_limit_rate = 0.02;
  profile.truncate_rate = 0.02;
  profile.duplicate_rate = 0.02;

  auto run = [&]() {
    WebDbServer backend(target, ServerOptions());
    FaultyServer server(backend, profile, /*seed=*/11);
    LocalStore store;
    GreedyLinkSelector selector(store);
    RetryPolicy retry((RetryPolicyConfig()));
    Crawler crawler(server, selector, store, CrawlOptions(),
                    /*abort_policy=*/nullptr, &retry);
    crawler.AddSeed(FirstQueriableSeed(target));
    StatusOr<CrawlResult> result = crawler.Run();
    DEEPCRAWL_CHECK(result.ok()) << result.status().ToString();
    return std::move(*result);
  };

  CrawlResult first = run();
  CrawlResult second = run();
  EXPECT_EQ(first.rounds, second.rounds);
  EXPECT_EQ(first.queries, second.queries);
  EXPECT_EQ(first.records, second.records);
  EXPECT_EQ(first.trace.points(), second.trace.points());
  EXPECT_EQ(first.resilience, second.resilience);
  // The profile actually fired — this is not a vacuous comparison.
  EXPECT_GT(first.resilience.transient_failures, 0u);
}

// Acceptance criterion: 10% transient faults on the movie domain leave
// the final record set identical to the fault-free crawl, at no more
// than 1.5x the communication rounds.
TEST(CrawlerResilienceTest, CoverageParityUnderTransientFaults) {
  Table target = SmallMovieTarget();
  ValueId seed_value = FirstQueriableSeed(target);

  WebDbServer clean_server(target, ServerOptions());
  LocalStore clean_store;
  GreedyLinkSelector clean_selector(clean_store);
  Crawler clean_crawler(clean_server, clean_selector, clean_store,
                        CrawlOptions());
  clean_crawler.AddSeed(seed_value);
  StatusOr<CrawlResult> clean = clean_crawler.Run();
  ASSERT_TRUE(clean.ok());

  WebDbServer backend(target, ServerOptions());
  FaultyServer faulty(backend, FaultProfile::Transient(0.10), /*seed=*/23);
  LocalStore store;
  GreedyLinkSelector selector(store);
  RetryPolicy retry((RetryPolicyConfig()));
  Crawler crawler(faulty, selector, store, CrawlOptions(),
                  /*abort_policy=*/nullptr, &retry);
  crawler.AddSeed(seed_value);
  StatusOr<CrawlResult> faulted = crawler.Run();
  ASSERT_TRUE(faulted.ok());

  EXPECT_GT(faulted->resilience.transient_failures, 0u);
  EXPECT_EQ(HarvestedIds(store), HarvestedIds(clean_store));
  EXPECT_LE(faulted->rounds, clean->rounds * 3 / 2);
  EXPECT_GE(faulted->rounds, clean->rounds);
}

// An all-zero profile behind a retry policy changes nothing about the
// crawl: same trace, same meters, no resilience activity.
TEST(CrawlerResilienceTest, AllZeroProfileCrawlMatchesBareServer) {
  Table target = SmallMovieTarget();
  ValueId seed_value = FirstQueriableSeed(target);

  WebDbServer bare(target, ServerOptions());
  LocalStore bare_store;
  GreedyLinkSelector bare_selector(bare_store);
  Crawler bare_crawler(bare, bare_selector, bare_store, CrawlOptions());
  bare_crawler.AddSeed(seed_value);
  StatusOr<CrawlResult> want = bare_crawler.Run();
  ASSERT_TRUE(want.ok());

  WebDbServer backend(target, ServerOptions());
  FaultyServer proxy(backend, FaultProfile(), /*seed=*/5);
  LocalStore store;
  GreedyLinkSelector selector(store);
  RetryPolicy retry((RetryPolicyConfig()));
  Crawler crawler(proxy, selector, store, CrawlOptions(),
                  /*abort_policy=*/nullptr, &retry);
  crawler.AddSeed(seed_value);
  StatusOr<CrawlResult> got = crawler.Run();
  ASSERT_TRUE(got.ok());

  EXPECT_EQ(got->rounds, want->rounds);
  EXPECT_EQ(got->queries, want->queries);
  EXPECT_EQ(got->records, want->records);
  EXPECT_EQ(got->trace.points(), want->trace.points());
  EXPECT_EQ(got->resilience, ResilienceCounters());
  EXPECT_EQ(crawler.clock().now(), 0u);
}

// Graceful degradation end to end: a value whose fetches always fail is
// retried max_attempts times per drain, re-queued max_requeues times,
// then abandoned — and the crawl ends normally instead of dying.
TEST(CrawlerResilienceTest, RetryExhaustionRequeuesThenAbandons) {
  Table table = MakeTable({{{"Brand", "toyota"}, {"Vin", "v0"}}});
  WebDbServer backend(table, ServerOptions());
  FaultyServer server(backend, FaultProfile(), /*seed=*/1);
  // Defaults: max_attempts = 4, max_requeues = 2 => 3 drains of 4 failed
  // attempts each before the value is written off.
  server.set_schedule(FaultSchedule(12, FaultAction::kUnavailable));

  LocalStore store;
  BfsSelector selector;
  RetryPolicy retry((RetryPolicyConfig()));
  Crawler crawler(server, selector, store, CrawlOptions(),
                  /*abort_policy=*/nullptr, &retry);
  crawler.AddSeed(GetValueId(table, "Brand", "toyota"));
  StatusOr<CrawlResult> result = crawler.Run();
  ASSERT_TRUE(result.ok());

  EXPECT_EQ(result->stop_reason, StopReason::kFrontierExhausted);
  EXPECT_EQ(result->records, 0u);
  EXPECT_EQ(result->rounds, 12u);    // every attempt cost a round
  EXPECT_EQ(result->queries, 3u);    // initial drain + 2 re-queues
  EXPECT_EQ(result->resilience.transient_failures, 12u);
  EXPECT_EQ(result->resilience.retries, 9u);  // 3 per drain
  EXPECT_EQ(result->resilience.requeues, 2u);
  EXPECT_EQ(result->resilience.abandoned_values, 1u);
  EXPECT_EQ(result->resilience.degraded_queries, 3u);
  EXPECT_GT(result->resilience.backoff_ticks, 0u);
  EXPECT_EQ(crawler.clock().now(), result->resilience.backoff_ticks);
  EXPECT_EQ(result->rounds, server.communication_rounds());
}

// Without a retry policy the first transient failure fails the crawl —
// the pre-resilience contract, still the default.
TEST(CrawlerResilienceTest, NoPolicyMeansFailuresAreFatal) {
  Table table = MakeTable({{{"Brand", "toyota"}, {"Vin", "v0"}}});
  WebDbServer backend(table, ServerOptions());
  FaultyServer server(backend, FaultProfile(), /*seed=*/1);
  server.set_schedule({FaultAction::kUnavailable});

  LocalStore store;
  BfsSelector selector;
  Crawler crawler(server, selector, store, CrawlOptions());
  crawler.AddSeed(GetValueId(table, "Brand", "toyota"));
  StatusOr<CrawlResult> result = crawler.Run();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

// Satellite: the round budget expiring mid-drain (with a fault in the
// middle) parks the drain; the next Run() resumes at the page after the
// last one fetched. The drained prefix is not re-issued and its records
// are not double-counted.
TEST(CrawlerResilienceTest, MidDrainBudgetExpiryResumesWithoutReissuing) {
  Table table = MakeFigure1Table();
  ServerOptions options;
  options.page_size = 1;  // every record is its own page
  ValueId seed_value = GetValueId(table, "C", "c2");  // 3 matches

  // Reference: the fault-free, unbudgeted crawl from the same seed.
  WebDbServer clean_server(table, options);
  LocalStore clean_store;
  BfsSelector clean_selector;
  Crawler clean_crawler(clean_server, clean_selector, clean_store,
                        CrawlOptions());
  clean_crawler.AddSeed(seed_value);
  StatusOr<CrawlResult> clean = clean_crawler.Run();
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(clean->records, 5u);

  WebDbServer backend(table, options);
  FaultyServer server(backend, FaultProfile(), /*seed=*/1);
  // Second fetch of the c2 drain times out once.
  server.set_schedule({FaultAction::kNone, FaultAction::kTimeout});

  LocalStore store;
  BfsSelector selector;
  RetryPolicy retry((RetryPolicyConfig()));
  Crawler crawler(server, selector, store, CrawlOptions{.max_rounds = 2},
                  /*abort_policy=*/nullptr, &retry);
  crawler.AddSeed(seed_value);

  // Slice 1: page 0 harvested, then the failed fetch of page 1 exhausts
  // the budget mid-retry-backoff.
  StatusOr<CrawlResult> slice = crawler.Run();
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->stop_reason, StopReason::kRoundBudget);
  EXPECT_EQ(slice->rounds, 2u);
  EXPECT_EQ(slice->queries, 1u);
  EXPECT_EQ(slice->records, 1u);
  EXPECT_EQ(slice->resilience.transient_failures, 1u);

  // Slice 2: unbounded. The drain resumes at page 1 (the failed page),
  // never re-fetching page 0, and the crawl completes.
  crawler.set_max_rounds(0);
  StatusOr<CrawlResult> rest = crawler.Run();
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(rest->stop_reason, StopReason::kFrontierExhausted);
  EXPECT_EQ(rest->records, 5u);
  EXPECT_EQ(HarvestedIds(store), HarvestedIds(clean_store));
  // Exactly one extra round versus the clean crawl: the failed attempt.
  EXPECT_EQ(rest->rounds, clean->rounds + 1);
  // Resuming the parked drain is not a new query submission.
  EXPECT_EQ(rest->queries, clean->queries);
  // No page was fetched twice, so no record was observed twice beyond
  // what the fault-free crawl observes.
  EXPECT_EQ(store.num_observations(), clean_store.num_observations());
}

}  // namespace
}  // namespace deepcrawl
