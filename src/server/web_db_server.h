// WebDbServer: a simulated structured Web database behind a query
// interface.
//
// This module plays the role of the paper's "controlled database
// servers" (§5): server programs that mimic Web-site behaviour on top of
// a relational backend. The crawler may interact with a database ONLY
// through the QueryInterface this class implements, which exposes
// exactly what a real site would:
//
//   * single-attribute equality queries (Definition 2.2), addressed by
//     interned value id, by (attribute, text), or by bare keyword;
//   * paginated results, at most `page_size` (k) records per page
//     (Definition 2.3's cost model: one page fetch = one communication
//     round);
//   * an optional result-size limit: most real sources cap how many of
//     the matched records can actually be retrieved (§5.4; Amazon used
//     3200, Yahoo Automobile ~20 pages);
//   * an optional total-match count on every page, as most sources
//     report "N results found" (exploited by the §3.4 abort heuristics).
//
// Every page fetch increments the communication-round meter, which is the
// paper's cost measure. The meter can be snapshotted and reset by the
// experiment harness. Unlike a real source, WebDbServer answers every
// query perfectly; wrap it in a FaultyServer (faulty_server.h) to model
// transient failures.

#ifndef DEEPCRAWL_SERVER_WEB_DB_SERVER_H_
#define DEEPCRAWL_SERVER_WEB_DB_SERVER_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "src/index/inverted_index.h"
#include "src/relation/table.h"
#include "src/relation/types.h"
#include "src/server/query_interface.h"
#include "src/util/status.h"

namespace deepcrawl {

class WebDbServer : public QueryInterface {
 public:
  // `table` must outlive the server and must not change afterwards.
  WebDbServer(const Table& table, ServerOptions options);

  WebDbServer(const WebDbServer&) = delete;
  WebDbServer& operator=(const WebDbServer&) = delete;

  // QueryInterface implementation; see query_interface.h for contracts.
  StatusOr<ResultPage> FetchPage(ValueId value, uint32_t page_number) override;
  StatusOr<ResultPage> FetchPageByText(AttributeId attr,
                                       std::string_view text,
                                       uint32_t page_number) override;
  StatusOr<ResultPage> FetchPageByKeyword(std::string_view text,
                                          uint32_t page_number) override;
  StatusOr<ResultPage> FetchPageConjunctive(std::span<const ValueId> values,
                                            uint32_t page_number) override;
  StatusOr<ResultPage> FetchPageKeywordOf(ValueId value,
                                          uint32_t page_number) override;

  uint64_t communication_rounds() const override {
    return communication_rounds_;
  }
  uint64_t queries_issued() const override { return queries_issued_; }
  void ResetMeters() override;

  const ServerOptions& options() const override { return options_; }
  bool IsQueriableValue(ValueId value) const override;

  // --- harness-only introspection (not visible to selectors) -----------

  // Ground-truth number of records; the harness uses it to compute true
  // coverage in controlled experiments.
  size_t true_record_count() const { return table_.num_records(); }

  const Table& table() const { return table_; }
  const InvertedIndex& index() const { return index_; }

  // Number of result pages a full retrieval of `value` costs, i.e.
  // cost(q, DB) of Definition 2.3, under the configured page size and
  // result limit. Zero-match queries still cost one round to learn that.
  uint32_t FullRetrievalCost(ValueId value) const;

 private:
  StatusOr<ResultPage> BuildPage(std::span<const RecordId> postings,
                                 uint32_t total_matches,
                                 uint32_t page_number);

  const Table& table_;
  ServerOptions options_;
  InvertedIndex index_;
  std::vector<char> attribute_queriable_;  // indexed by AttributeId
  uint64_t communication_rounds_ = 0;
  uint64_t queries_issued_ = 0;

  // Scratch reused across queries by the keyword-union and conjunctive
  // paths (swap-buffered, capacity kept), so steady-state queries do not
  // reallocate. The server is externally synchronized when shared across
  // threads (LockedQueryInterface), so per-instance scratch is safe.
  std::vector<RecordId> scratch_merged_;
  std::vector<RecordId> scratch_next_;
  std::vector<ValueId> scratch_ordered_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_SERVER_WEB_DB_SERVER_H_
