# Empty dependencies file for deepcrawl_estimate_datagen_tests.
# This may be replaced when dependencies are built.
