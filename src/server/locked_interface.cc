#include "src/server/locked_interface.h"

#include <chrono>
#include <thread>

namespace deepcrawl {

LockedQueryInterface::LockedQueryInterface(QueryInterface& inner,
                                           uint64_t latency_us)
    : inner_(inner), latency_us_(latency_us) {}

template <typename Fetch>
StatusOr<ResultPage> LockedQueryInterface::Locked(Fetch&& fetch) {
  if (latency_us_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(latency_us_));
  }
  std::lock_guard<std::mutex> lock(mu_);
  // The modeled round trip lands in the same counters a network client
  // fills with measured socket RTT (see RttCounters in
  // query_interface.h), so --latency-us runs report latency the same
  // way TCP-backed crawls do.
  rtt_.Record(latency_us_);
  return fetch();
}

StatusOr<ResultPage> LockedQueryInterface::FetchPage(ValueId value,
                                                     uint32_t page_number) {
  return Locked([&] { return inner_.FetchPage(value, page_number); });
}

StatusOr<ResultPage> LockedQueryInterface::FetchPageByText(
    AttributeId attr, std::string_view text, uint32_t page_number) {
  return Locked([&] { return inner_.FetchPageByText(attr, text, page_number); });
}

StatusOr<ResultPage> LockedQueryInterface::FetchPageByKeyword(
    std::string_view text, uint32_t page_number) {
  return Locked([&] { return inner_.FetchPageByKeyword(text, page_number); });
}

StatusOr<ResultPage> LockedQueryInterface::FetchPageConjunctive(
    std::span<const ValueId> values, uint32_t page_number) {
  return Locked(
      [&] { return inner_.FetchPageConjunctive(values, page_number); });
}

StatusOr<ResultPage> LockedQueryInterface::FetchPageKeywordOf(
    ValueId value, uint32_t page_number) {
  return Locked([&] { return inner_.FetchPageKeywordOf(value, page_number); });
}

uint64_t LockedQueryInterface::communication_rounds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_.communication_rounds();
}

uint64_t LockedQueryInterface::queries_issued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_.queries_issued();
}

void LockedQueryInterface::ResetMeters() {
  std::lock_guard<std::mutex> lock(mu_);
  inner_.ResetMeters();
  rtt_ = RttCounters{};
}

RttCounters LockedQueryInterface::rtt_counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  RttCounters merged = inner_.rtt_counters();
  merged.Merge(rtt_);
  return merged;
}

}  // namespace deepcrawl
