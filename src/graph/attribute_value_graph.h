// AttributeValueGraph (AVG) — Definition 2.1 of the paper.
//
// An undirected graph with one vertex per distinct attribute value of a
// database; two vertices are adjacent iff their values co-occur in at
// least one record. The values of each record therefore form a clique,
// and a value shared by two records "bridges" their cliques.
//
// The graph is stored CSR-style (concatenated sorted adjacency lists plus
// offsets). Parallel edges arising from values co-occurring in several
// records are collapsed; self-loops never occur because record value
// lists are duplicate-free.

#ifndef DEEPCRAWL_GRAPH_ATTRIBUTE_VALUE_GRAPH_H_
#define DEEPCRAWL_GRAPH_ATTRIBUTE_VALUE_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/relation/table.h"
#include "src/relation/types.h"

namespace deepcrawl {

class AttributeValueGraph {
 public:
  // Builds the AVG of every record in `table`.
  static AttributeValueGraph Build(const Table& table);

  size_t num_vertices() const { return offsets_.size() - 1; }
  size_t num_edges() const { return adjacency_.size() / 2; }

  // Distinct neighbors of `v`, sorted ascending.
  std::span<const ValueId> Neighbors(ValueId v) const;

  uint32_t Degree(ValueId v) const {
    return static_cast<uint32_t>(Neighbors(v).size());
  }

  bool HasEdge(ValueId a, ValueId b) const;

  // Degree histogram: result[d] = number of vertices with degree d.
  std::vector<uint64_t> DegreeHistogram() const;

 private:
  AttributeValueGraph() = default;

  std::vector<ValueId> adjacency_;
  std::vector<size_t> offsets_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_GRAPH_ATTRIBUTE_VALUE_GRAPH_H_
