#include "src/relation/table.h"

#include <algorithm>

#include "src/util/logging.h"

namespace deepcrawl {

StatusOr<RecordId> Table::AddRecord(const std::vector<Cell>& cells) {
  if (cells.empty()) {
    return Status::InvalidArgument("record must have at least one value");
  }
  std::vector<ValueId> values;
  values.reserve(cells.size());
  for (const Cell& cell : cells) {
    if (cell.attr >= schema_.num_attributes()) {
      return Status::InvalidArgument("cell attribute id out of range");
    }
    if (cell.text.empty()) {
      return Status::InvalidArgument("cell text must be non-empty");
    }
    values.push_back(catalog_.Intern(cell.attr, cell.text));
  }
  return AddRecordFromValueIds(std::move(values));
}

StatusOr<RecordId> Table::AddRecordFromValueIds(std::vector<ValueId> values) {
  if (values.empty()) {
    return Status::InvalidArgument("record must have at least one value");
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  if (values.back() >= catalog_.size()) {
    return Status::InvalidArgument("value id not interned in this catalog");
  }
  if (num_records() >= kInvalidRecordId) {
    return Status::ResourceExhausted("record id space exhausted");
  }
  RecordId id = static_cast<RecordId>(num_records());
  if (value_frequency_.size() < catalog_.size()) {
    value_frequency_.resize(catalog_.size(), 0);
  }
  for (ValueId v : values) ++value_frequency_[v];
  record_values_.insert(record_values_.end(), values.begin(), values.end());
  record_offsets_.push_back(record_values_.size());
  return id;
}

std::span<const ValueId> Table::record(RecordId id) const {
  DEEPCRAWL_CHECK_LT(id, num_records()) << "record id out of range";
  size_t begin = record_offsets_[id];
  size_t end = record_offsets_[id + 1];
  return std::span<const ValueId>(record_values_.data() + begin, end - begin);
}

uint32_t Table::value_frequency(ValueId value) const {
  DEEPCRAWL_CHECK_LT(value, catalog_.size()) << "value id out of range";
  if (value >= value_frequency_.size()) return 0;
  return value_frequency_[value];
}

std::vector<size_t> Table::DistinctValuesPerAttribute() const {
  std::vector<size_t> counts(schema_.num_attributes(), 0);
  for (ValueId v = 0; v < catalog_.size(); ++v) {
    ++counts[catalog_.attribute_of(v)];
  }
  return counts;
}

}  // namespace deepcrawl
