// Robustness sweep: the TSV reader must never crash or accept garbage
// silently — every input either parses into a valid table or returns a
// clean error status.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/relation/tsv.h"
#include "src/util/random.h"

namespace deepcrawl {
namespace {

class TsvFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TsvFuzzTest, RandomBytesNeverCrash) {
  Pcg32 rng(GetParam());
  constexpr const char kAlphabet[] = "ab=\t\nXY#0 ";
  for (int round = 0; round < 200; ++round) {
    std::string input;
    uint32_t length = rng.NextBounded(120);
    for (uint32_t i = 0; i < length; ++i) {
      input.push_back(kAlphabet[rng.NextBounded(sizeof(kAlphabet) - 1)]);
    }
    std::istringstream stream(input);
    StatusOr<Table> table = ReadTableTsv(stream);
    if (!table.ok()) continue;  // clean rejection is fine
    // Accepted input must produce a self-consistent table.
    for (RecordId r = 0; r < table->num_records(); ++r) {
      ASSERT_FALSE(table->record(r).empty());
      for (ValueId v : table->record(r)) {
        ASSERT_LT(v, table->num_distinct_values());
        ASSERT_LT(table->catalog().attribute_of(v),
                  table->schema().num_attributes());
        ASSERT_FALSE(table->catalog().text_of(v).empty());
      }
    }
  }
}

TEST_P(TsvFuzzTest, AcceptedInputsRoundTrip) {
  // Structured random inputs that should always parse; writing and
  // re-reading must preserve the record count and value counts.
  Pcg32 rng(GetParam() + 1000);
  for (int round = 0; round < 50; ++round) {
    std::ostringstream input;
    uint32_t records = 1 + rng.NextBounded(20);
    for (uint32_t r = 0; r < records; ++r) {
      uint32_t cells = 1 + rng.NextBounded(4);
      for (uint32_t c = 0; c < cells; ++c) {
        if (c > 0) input << '\t';
        input << "attr" << rng.NextBounded(3) << "=v"
              << rng.NextBounded(10);
      }
      input << '\n';
    }
    std::istringstream first_stream(input.str());
    StatusOr<Table> first = ReadTableTsv(first_stream);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    std::ostringstream rewritten;
    ASSERT_TRUE(WriteTableTsv(*first, rewritten).ok());
    std::istringstream second_stream(rewritten.str());
    StatusOr<Table> second = ReadTableTsv(second_stream);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second->num_records(), first->num_records());
    EXPECT_EQ(second->num_distinct_values(), first->num_distinct_values());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TsvFuzzTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace deepcrawl
