
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crawler/abort_policy.cc" "src/crawler/CMakeFiles/deepcrawl_crawler.dir/abort_policy.cc.o" "gcc" "src/crawler/CMakeFiles/deepcrawl_crawler.dir/abort_policy.cc.o.d"
  "/root/repo/src/crawler/crawler.cc" "src/crawler/CMakeFiles/deepcrawl_crawler.dir/crawler.cc.o" "gcc" "src/crawler/CMakeFiles/deepcrawl_crawler.dir/crawler.cc.o.d"
  "/root/repo/src/crawler/greedy_link_selector.cc" "src/crawler/CMakeFiles/deepcrawl_crawler.dir/greedy_link_selector.cc.o" "gcc" "src/crawler/CMakeFiles/deepcrawl_crawler.dir/greedy_link_selector.cc.o.d"
  "/root/repo/src/crawler/local_store.cc" "src/crawler/CMakeFiles/deepcrawl_crawler.dir/local_store.cc.o" "gcc" "src/crawler/CMakeFiles/deepcrawl_crawler.dir/local_store.cc.o.d"
  "/root/repo/src/crawler/metrics.cc" "src/crawler/CMakeFiles/deepcrawl_crawler.dir/metrics.cc.o" "gcc" "src/crawler/CMakeFiles/deepcrawl_crawler.dir/metrics.cc.o.d"
  "/root/repo/src/crawler/mmmi_selector.cc" "src/crawler/CMakeFiles/deepcrawl_crawler.dir/mmmi_selector.cc.o" "gcc" "src/crawler/CMakeFiles/deepcrawl_crawler.dir/mmmi_selector.cc.o.d"
  "/root/repo/src/crawler/naive_selectors.cc" "src/crawler/CMakeFiles/deepcrawl_crawler.dir/naive_selectors.cc.o" "gcc" "src/crawler/CMakeFiles/deepcrawl_crawler.dir/naive_selectors.cc.o.d"
  "/root/repo/src/crawler/oracle_selector.cc" "src/crawler/CMakeFiles/deepcrawl_crawler.dir/oracle_selector.cc.o" "gcc" "src/crawler/CMakeFiles/deepcrawl_crawler.dir/oracle_selector.cc.o.d"
  "/root/repo/src/crawler/scripted_selector.cc" "src/crawler/CMakeFiles/deepcrawl_crawler.dir/scripted_selector.cc.o" "gcc" "src/crawler/CMakeFiles/deepcrawl_crawler.dir/scripted_selector.cc.o.d"
  "/root/repo/src/crawler/trace_io.cc" "src/crawler/CMakeFiles/deepcrawl_crawler.dir/trace_io.cc.o" "gcc" "src/crawler/CMakeFiles/deepcrawl_crawler.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/server/CMakeFiles/deepcrawl_server.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/deepcrawl_index.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/deepcrawl_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/deepcrawl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
