// Unit tests for the epoch-file shadow-paging substrate
// (src/util/page_cache.h): PagedFile read/write/durability windows,
// PageCache eviction/pinning/writeback, and the PagedArray element
// view.

#include "src/util/page_cache.h"

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/util/checkpoint_io.h"

namespace deepcrawl {
namespace {

std::string MakeTestDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

TEST(PagedFileTest, VirginPagesReadAsZeroes) {
  std::string dir = MakeTestDir("paged_file_virgin");
  PagedFile file(dir, "seg", 128);
  file.EnsurePages(3);
  std::vector<char> page(128, 'x');
  ASSERT_TRUE(file.ReadPage(2, page.data()).ok());
  for (char c : page) EXPECT_EQ(c, 0);
}

TEST(PagedFileTest, WriteReadRoundtripAndEpochAdvance) {
  std::string dir = MakeTestDir("paged_file_roundtrip");
  PagedFile file(dir, "seg", 128);
  file.EnsurePages(2);
  std::vector<char> out(128, 0);
  for (int round = 0; round < 3; ++round) {
    std::vector<char> page(128, static_cast<char>('a' + round));
    ASSERT_TRUE(file.WritePage(1, page.data()).ok());
    ASSERT_TRUE(file.ReadPage(1, out.data()).ok());
    EXPECT_EQ(out, page);
  }
}

TEST(PagedFileTest, CorruptPageFileIsCleanError) {
  std::string dir = MakeTestDir("paged_file_corrupt");
  PagedFile file(dir, "seg", 128);
  file.EnsurePages(1);
  std::vector<char> page(128, 'z');
  ASSERT_TRUE(file.WritePage(0, page.data()).ok());
  // Flip a byte in the one non-virgin page file.
  std::vector<std::string> names;
  file.AppendCurrentFileNames(names);
  ASSERT_EQ(names.size(), 1u);
  std::string path = dir + "/" + names[0];
  StatusOr<std::string> bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  (*bytes)[bytes->size() / 2] ^= 0x40;
  ASSERT_TRUE(WriteFileAtomic(path, *bytes).ok());
  Status read = file.ReadPage(0, page.data());
  EXPECT_FALSE(read.ok());
}

TEST(PagedFileTest, MetaRoundtripRestoresEpochTable) {
  std::string dir = MakeTestDir("paged_file_meta");
  std::vector<char> page(64, 'q');
  CheckpointWriter writer;
  {
    PagedFile file(dir, "seg", 64);
    file.EnsurePages(4);
    ASSERT_TRUE(file.WritePage(0, page.data()).ok());
    ASSERT_TRUE(file.WritePage(2, page.data()).ok());
    ASSERT_TRUE(file.SyncPending().ok());
    file.AppendMeta(writer);
  }
  PagedFile reopened(dir, "seg", 64);
  CheckpointReader reader(writer.buffer());
  ASSERT_TRUE(reopened.LoadMeta(reader).ok());
  EXPECT_EQ(reopened.num_pages(), 4u);
  std::vector<char> out(64, 0);
  ASSERT_TRUE(reopened.ReadPage(0, out.data()).ok());
  EXPECT_EQ(out, page);
  ASSERT_TRUE(reopened.ReadPage(1, out.data()).ok());
  EXPECT_EQ(out, std::vector<char>(64, 0));
  ASSERT_TRUE(reopened.ReadPage(2, out.data()).ok());
  EXPECT_EQ(out, page);
}

TEST(PagedFileTest, SweepOrphansDropsUnreferencedEpochs) {
  std::string dir = MakeTestDir("paged_file_sweep");
  std::vector<char> page(64, 'a');
  CheckpointWriter writer;
  {
    PagedFile file(dir, "seg", 64);
    file.EnsurePages(1);
    ASSERT_TRUE(file.WritePage(0, page.data()).ok());
    ASSERT_TRUE(file.SyncPending().ok());
    file.AppendMeta(writer);  // manifest references this epoch
    file.CommitDurable();     // ...and the manifest is now durable
    // Crash-window writes after the manifest: newer epochs on disk.
    page.assign(64, 'b');
    ASSERT_TRUE(file.WritePage(0, page.data()).ok());
    page.assign(64, 'c');
    ASSERT_TRUE(file.WritePage(0, page.data()).ok());
  }
  PagedFile recovered(dir, "seg", 64);
  CheckpointReader reader(writer.buffer());
  ASSERT_TRUE(recovered.LoadMeta(reader).ok());
  ASSERT_TRUE(recovered.SweepOrphans().ok());
  std::vector<char> out(64, 0);
  ASSERT_TRUE(recovered.ReadPage(0, out.data()).ok());
  EXPECT_EQ(out, std::vector<char>(64, 'a'));
  // Exactly one file (the manifest's epoch) survives the sweep.
  std::vector<std::string> names;
  recovered.AppendCurrentFileNames(names);
  EXPECT_EQ(names.size(), 1u);
}

TEST(PageCacheTest, EvictionWritesBackDirtyFrames) {
  std::string dir = MakeTestDir("page_cache_evict");
  PagedFile file(dir, "seg", 64);
  PageCache cache(64, 2);  // two frames over many pages
  uint32_t id = cache.RegisterFile(&file);
  const int kPages = 16;
  for (int p = 0; p < kPages; ++p) {
    PageCache::Handle h = cache.Acquire(id, p);
    h.MarkDirty();
    std::memset(h.data(), 'a' + p, 64);
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_GT(cache.stats().writebacks, 0u);
  // Everything reads back despite only 2 resident frames.
  for (int p = 0; p < kPages; ++p) {
    PageCache::Handle h = cache.Acquire(id, p);
    EXPECT_EQ(h.data()[0], 'a' + p) << "page " << p;
    EXPECT_EQ(h.data()[63], 'a' + p) << "page " << p;
  }
}

TEST(PageCacheTest, PinnedFramesSurviveEvictionPressure) {
  std::string dir = MakeTestDir("page_cache_pin");
  PagedFile file(dir, "seg", 64);
  PageCache cache(64, 2);
  uint32_t id = cache.RegisterFile(&file);
  PageCache::Handle pinned = cache.Acquire(id, 0);
  pinned.MarkDirty();
  std::memset(pinned.data(), 'P', 64);
  // Thrash past capacity while the pin is held; the frame must not be
  // reused (soft overflow allocates extra frames when all are pinned).
  for (int p = 1; p < 12; ++p) {
    PageCache::Handle h = cache.Acquire(id, p);
    h.MarkDirty();
    std::memset(h.data(), 'x', 64);
  }
  EXPECT_EQ(pinned.data()[0], 'P');
  EXPECT_EQ(pinned.data()[63], 'P');
}

TEST(PageCacheTest, FlushAllPersistsWithoutInvalidation) {
  std::string dir = MakeTestDir("page_cache_flush");
  PagedFile file(dir, "seg", 64);
  PageCache cache(64, 8);
  uint32_t id = cache.RegisterFile(&file);
  {
    PageCache::Handle h = cache.Acquire(id, 3);
    h.MarkDirty();
    std::memset(h.data(), 'F', 64);
  }
  ASSERT_TRUE(cache.FlushAll().ok());
  // The on-disk page now matches the cached frame.
  std::vector<char> out(64, 0);
  ASSERT_TRUE(file.ReadPage(3, out.data()).ok());
  EXPECT_EQ(out, std::vector<char>(64, 'F'));
  uint64_t misses = cache.stats().misses;
  PageCache::Handle h = cache.Acquire(id, 3);
  EXPECT_EQ(cache.stats().misses, misses) << "flush must not evict";
  EXPECT_EQ(h.data()[0], 'F');
}

TEST(PagedArrayTest, ElementRoundtripAcrossPages) {
  std::string dir = MakeTestDir("paged_array");
  PagedFile file(dir, "seg", 64);  // 16 u32 per page
  PageCache cache(64, 2);
  uint32_t id = cache.RegisterFile(&file);
  PagedArray<uint32_t> array(&cache, &file, id);
  EXPECT_EQ(array.elements_per_page(), 16u);
  const uint64_t kCount = 1000;
  for (uint64_t i = 0; i < kCount; ++i) {
    array.Set(i, static_cast<uint32_t>(i * 2654435761u));
  }
  for (uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(array.Get(i), static_cast<uint32_t>(i * 2654435761u)) << i;
  }
  // Bulk Load/Store spanning page boundaries.
  std::vector<uint32_t> bulk(100);
  for (size_t i = 0; i < bulk.size(); ++i) bulk[i] = 7000 + i;
  array.Store(9, bulk.data(), bulk.size());
  std::vector<uint32_t> readback(100, 0);
  array.Load(9, readback.data(), readback.size());
  EXPECT_EQ(readback, bulk);
  // Untouched tail reads as zero (virgin pages).
  EXPECT_EQ(array.Get(5000), 0u);
}

}  // namespace
}  // namespace deepcrawl
