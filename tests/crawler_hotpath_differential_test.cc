// Differential suite for the hot-path overhaul: the optimized data
// layouts must be observationally INVISIBLE.
//
// Two independent optimization axes are cross-checked against their
// reference implementations:
//
//   * LocalStore layout: epoch-compacted CSR arenas + flat edge hash
//     (Layout::kCsr) vs one unordered_set / vector per value
//     (Layout::kReference);
//   * MMMI scoring: incrementally-maintained co-occurrence counters vs
//     the full postings rescan (MmmiOptions::reference_scoring).
//
// For every selection policy × fault profile, serial and parallel
// (--threads 8 --batch 8), a fully-optimized run must produce a
// byte-identical CrawlTrace (CSV serialization compared as strings) and
// identical meters/harvest order/resilience counters to the
// all-reference run — and the two mixed combinations must match too, so
// a compensating pair of bugs cannot hide.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/crawler/crawler.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/local_store.h"
#include "src/crawler/mmmi_selector.h"
#include "src/crawler/naive_selectors.h"
#include "src/crawler/parallel_crawler.h"
#include "src/crawler/retry_policy.h"
#include "src/crawler/trace_io.h"
#include "src/datagen/movie_domain.h"
#include "src/server/faulty_server.h"
#include "src/server/locked_interface.h"
#include "src/server/web_db_server.h"

namespace deepcrawl {
namespace {

constexpr uint64_t kFaultSeed = 29;
constexpr uint64_t kSelectorSeed = 5;

const char* const kPolicies[] = {"bfs", "dfs", "random", "greedy", "mmmi"};
const char* const kProfiles[] = {"none", "flaky", "lossy", "hostile"};

// One point in the optimization space.
struct Variant {
  LocalStore::Layout layout = LocalStore::Layout::kCsr;
  bool mmmi_reference_scoring = false;
};

constexpr Variant kOptimized{LocalStore::Layout::kCsr, false};
constexpr Variant kReference{LocalStore::Layout::kReference, true};

FaultProfile ProfileByName(const std::string& name) {
  FaultProfile profile;
  if (name == "flaky") {
    profile.unavailable_rate = 0.05;
    profile.timeout_rate = 0.03;
    profile.rate_limit_rate = 0.02;
  } else if (name == "lossy") {
    profile.truncate_rate = 0.05;
    profile.duplicate_rate = 0.05;
  } else if (name == "hostile") {
    profile.unavailable_rate = 0.10;
    profile.timeout_rate = 0.05;
    profile.rate_limit_rate = 0.05;
    profile.truncate_rate = 0.05;
    profile.duplicate_rate = 0.02;
  }
  return profile;
}

std::unique_ptr<QuerySelector> MakeSelector(const std::string& policy,
                                            const LocalStore& store,
                                            const Variant& variant) {
  if (policy == "bfs") return std::make_unique<BfsSelector>();
  if (policy == "dfs") return std::make_unique<DfsSelector>();
  if (policy == "random") {
    return std::make_unique<RandomSelector>(kSelectorSeed);
  }
  if (policy == "greedy") return std::make_unique<GreedyLinkSelector>(store);
  if (policy == "mmmi") {
    MmmiOptions options;
    options.reference_scoring = variant.mmmi_reference_scoring;
    return std::make_unique<MmmiSelector>(store, options);
  }
  ADD_FAILURE() << "unknown policy " << policy;
  return nullptr;
}

ValueId FirstQueriableSeed(const Table& table) {
  for (ValueId v = 0; v < table.num_distinct_values(); ++v) {
    if (table.value_frequency(v) > 0) return v;
  }
  ADD_FAILURE() << "table has no queriable value";
  return kInvalidValueId;
}

const Table& DifferentialTarget() {
  static const Table* table = [] {
    MovieDomainPairConfig config;
    config.universe_size = 1500;
    config.target_size = 400;
    config.seed = 7;
    StatusOr<MovieDomainPair> pair = GenerateMovieDomainPair(config);
    DEEPCRAWL_CHECK(pair.ok()) << pair.status().ToString();
    return new Table(std::move(pair->target));
  }();
  return *table;
}

CrawlOptions BaseOptions(const Table& target) {
  CrawlOptions options;
  // Past the switch-over most of the crawl runs MMMI batches — exactly
  // the path whose scoring implementation is under test.
  options.saturation_records =
      static_cast<uint64_t>(0.6 * static_cast<double>(target.num_records()));
  return options;
}

// Everything two equivalent crawls must agree on, including the
// byte-exact CSV rendering of the trace.
struct RunOutput {
  CrawlResult result;
  std::vector<RecordId> harvest_order;
  uint64_t clock_ticks = 0;
  std::string trace_csv;
};

RunOutput Capture(const CrawlResult& result, const LocalStore& store,
                  uint64_t clock_ticks) {
  RunOutput out;
  out.result = result;
  out.harvest_order.reserve(store.num_records());
  for (uint32_t slot = 0; slot < store.num_records(); ++slot) {
    out.harvest_order.push_back(store.OriginalRecordId(slot));
  }
  out.clock_ticks = clock_ticks;
  std::ostringstream csv;
  Status written = WriteTraceCsv(result.trace, csv);
  DEEPCRAWL_CHECK(written.ok()) << written.ToString();
  out.trace_csv = csv.str();
  return out;
}

// threads == 0 selects the serial crawler; otherwise the parallel
// engine with the given threads/batch.
RunOutput RunVariant(const std::string& policy,
                     const std::string& profile_name, const Variant& variant,
                     uint32_t threads, uint32_t batch) {
  const Table& target = DifferentialTarget();
  CrawlOptions options = BaseOptions(target);
  WebDbServer backend(target, ServerOptions());
  FaultProfile profile = ProfileByName(profile_name);
  std::optional<FaultyServer> faulty;
  QueryInterface* direct = &backend;
  if (!profile.IsAllZero()) {
    faulty.emplace(backend, profile, kFaultSeed);
    faulty->set_keyed_faults(true);
    direct = &*faulty;
  }
  LocalStore::Options store_options;
  store_options.layout = variant.layout;
  LocalStore store(store_options);
  std::unique_ptr<QuerySelector> selector =
      MakeSelector(policy, store, variant);
  RetryPolicy retry((RetryPolicyConfig()));
  if (threads == 0) {
    Crawler crawler(*direct, *selector, store, options,
                    /*abort_policy=*/nullptr, &retry);
    crawler.AddSeed(FirstQueriableSeed(target));
    StatusOr<CrawlResult> result = crawler.Run();
    DEEPCRAWL_CHECK(result.ok()) << result.status().ToString();
    return Capture(*result, store, crawler.clock().now());
  }
  LockedQueryInterface server(*direct);
  ParallelCrawler crawler(server, *selector, store, options,
                          ParallelOptions{threads, batch},
                          /*abort_policy=*/nullptr, &retry);
  crawler.AddSeed(FirstQueriableSeed(target));
  StatusOr<CrawlResult> result = crawler.Run();
  DEEPCRAWL_CHECK(result.ok()) << result.status().ToString();
  return Capture(*result, store, crawler.clock().now());
}

void ExpectIdentical(const RunOutput& a, const RunOutput& b,
                     const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.result.stop_reason, b.result.stop_reason);
  EXPECT_EQ(a.result.rounds, b.result.rounds);
  EXPECT_EQ(a.result.queries, b.result.queries);
  EXPECT_EQ(a.result.records, b.result.records);
  EXPECT_EQ(a.result.trace.points(), b.result.trace.points());
  EXPECT_EQ(a.result.resilience, b.result.resilience);
  EXPECT_EQ(a.harvest_order, b.harvest_order);
  EXPECT_EQ(a.clock_ticks, b.clock_ticks);
  EXPECT_EQ(a.trace_csv, b.trace_csv);  // byte-identical serialization
}

// Serial: optimized vs reference for every policy × fault profile.
TEST(HotPathDifferentialTest, SerialAllPoliciesAllProfiles) {
  for (const char* policy : kPolicies) {
    for (const char* profile : kProfiles) {
      RunOutput optimized = RunVariant(policy, profile, kOptimized, 0, 0);
      RunOutput reference = RunVariant(policy, profile, kReference, 0, 0);
      ExpectIdentical(optimized, reference,
                      std::string("serial/") + policy + "/" + profile);
    }
  }
}

// Parallel engine at --threads 8 --batch 8: same cross-check. Batched
// waves change the crawl order relative to serial, so this exercises
// the optimized structures under a genuinely different event sequence
// (and, at 8 threads, under TSan in the check.sh concurrency pass).
TEST(HotPathDifferentialTest, ParallelThreads8Batch8AllPolicies) {
  for (const char* policy : kPolicies) {
    for (const char* profile : kProfiles) {
      RunOutput optimized = RunVariant(policy, profile, kOptimized, 8, 8);
      RunOutput reference = RunVariant(policy, profile, kReference, 8, 8);
      ExpectIdentical(optimized, reference,
                      std::string("parallel/") + policy + "/" + profile);
    }
  }
}

// The two axes are independent: mixed combinations (CSR store +
// reference scoring, reference store + incremental scoring) must match
// the corners too, so a bug in one axis cannot be masked by a
// compensating bug in the other.
TEST(HotPathDifferentialTest, MixedAxesAgreeForMmmi) {
  const Variant kMixedA{LocalStore::Layout::kCsr, true};
  const Variant kMixedB{LocalStore::Layout::kReference, false};
  for (const char* profile : {"none", "hostile"}) {
    RunOutput corner = RunVariant("mmmi", profile, kOptimized, 0, 0);
    ExpectIdentical(corner, RunVariant("mmmi", profile, kMixedA, 0, 0),
                    std::string("csr+refscore/") + profile);
    ExpectIdentical(corner, RunVariant("mmmi", profile, kMixedB, 0, 0),
                    std::string("refstore+incr/") + profile);
  }
}

}  // namespace
}  // namespace deepcrawl
