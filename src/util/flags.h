// Minimal command-line flag parsing for the deepcrawl tools.
//
// Supports "--name=value", "--name value", bare boolean "--name" and
// "--no-name". Unknown flags are errors; positional arguments are
// collected separately. No global state: each binary builds its own
// FlagParser.

#ifndef DEEPCRAWL_UTIL_FLAGS_H_
#define DEEPCRAWL_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace deepcrawl {

class FlagParser {
 public:
  FlagParser() = default;

  // Registration: `target` must outlive Parse. Duplicate names abort.
  void AddString(const std::string& name, std::string* target,
                 const std::string& help);
  void AddInt64(const std::string& name, int64_t* target,
                const std::string& help);
  void AddDouble(const std::string& name, double* target,
                 const std::string& help);
  void AddBool(const std::string& name, bool* target,
               const std::string& help);

  // Parses argv[1..argc); fills targets; collects non-flag arguments
  // into positional(). Returns kInvalidArgument on unknown flags or
  // unparsable values.
  Status Parse(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  // One line per registered flag: "--name (default: ...)  help".
  std::string HelpText() const;

 private:
  enum class Kind { kString, kInt64, kDouble, kBool };
  struct Flag {
    Kind kind;
    void* target;
    std::string help;
    std::string default_text;
  };

  void Register(const std::string& name, Kind kind, void* target,
                const std::string& help, std::string default_text);
  Status Assign(const std::string& name, Flag& flag,
                const std::string& text);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_UTIL_FLAGS_H_
