# Empty dependencies file for deepcrawl_estimate.
# This may be replaced when dependencies are built.
