// Tests of the textual-source term-weight selector and the adaptive
// meta-selector that chains policies behind a harvest-rate switch rule.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "src/crawler/adaptive_selector.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/local_store.h"
#include "src/crawler/term_weight_selector.h"
#include "src/util/checkpoint_io.h"

namespace deepcrawl {
namespace {

// Adds `slots` records all containing `v` (plus a fresh filler value
// each) so LocalFrequency(v) == slots.
void AddHub(LocalStore& store, QuerySelector& selector, ValueId v,
            uint32_t slots, uint32_t& next_slot, ValueId& next_filler) {
  for (uint32_t i = 0; i < slots; ++i) {
    store.AddRecord(next_slot, std::vector<ValueId>{v, next_filler++});
    selector.OnRecordHarvested(next_slot++);
  }
}

TEST(TermWeightSelectorTest, WeightIsUnimodalInDocumentFrequency) {
  LocalStore store;
  TermWeightSelector selector(store);
  // Values 1, 2, 3 with df 1, 4, 10 across N = 10 records (value 3 in
  // every record).
  uint32_t slot = 0;
  for (uint32_t r = 0; r < 10; ++r) {
    std::vector<ValueId> values = {3};
    if (r < 1) values.push_back(1);
    if (r < 4) values.push_back(2);
    values.push_back(100 + r);
    store.AddRecord(slot, values);
    selector.OnRecordHarvested(slot++);
  }
  // w(df) = df * ln((N+1)/df) peaks near df = (N+1)/e ≈ 4: a term in
  // every document discriminates nothing, a singleton recalls nothing.
  EXPECT_GT(selector.Weight(2), selector.Weight(1));
  EXPECT_GT(selector.Weight(2), selector.Weight(3));
  EXPECT_DOUBLE_EQ(selector.Weight(1), std::log(11.0));
  // An unseen value has zero weight.
  EXPECT_DOUBLE_EQ(selector.Weight(77), 0.0);
}

TEST(TermWeightSelectorTest, SelectsByWeightThenDfThenId) {
  LocalStore store;
  TermWeightSelector selector(store);
  for (ValueId v = 1; v <= 3; ++v) selector.OnValueDiscovered(v);
  uint32_t slot = 0;
  ValueId filler = 100;
  AddHub(store, selector, 1, 2, slot, filler);
  AddHub(store, selector, 2, 4, slot, filler);
  AddHub(store, selector, 3, 2, slot, filler);
  // N = 8: w(4) = 4 ln(9/4) > w(2) = 2 ln(9/2); values 1 and 3 tie on
  // weight and df, so the smaller id breaks the tie.
  EXPECT_EQ(selector.SelectNext(), 2u);
  EXPECT_EQ(selector.SelectNext(), 1u);
  EXPECT_EQ(selector.SelectNext(), 3u);
  EXPECT_EQ(selector.SelectNext(), kInvalidValueId);
}

TEST(TermWeightSelectorTest, TakenValuesAreNeverReturned) {
  LocalStore store;
  TermWeightSelector selector(store);
  for (ValueId v = 1; v <= 4; ++v) selector.OnValueDiscovered(v);
  selector.OnValueTaken(2);
  std::set<ValueId> picked;
  for (;;) {
    ValueId v = selector.SelectNext();
    if (v == kInvalidValueId) break;
    picked.insert(v);
  }
  EXPECT_EQ(picked, (std::set<ValueId>{1, 3, 4}));
}

TEST(TermWeightSelectorTest, StaleBatchEntriesAreSkippedAfterTaken) {
  LocalStore store;
  TermWeightOptions options;
  options.batch_size = 3;
  TermWeightSelector selector(store, options);
  for (ValueId v = 1; v <= 3; ++v) selector.OnValueDiscovered(v);
  // First pick materializes the batch; then value 2 is taken by another
  // policy while still queued.
  ValueId first = selector.SelectNext();
  EXPECT_EQ(first, 1u);  // equal weights, id tie-break
  selector.OnValueTaken(2);
  EXPECT_EQ(selector.SelectNext(), 3u);
  EXPECT_EQ(selector.SelectNext(), kInvalidValueId);
}

TEST(TermWeightSelectorTest, CheckpointRoundTripContinuesIdentically) {
  LocalStore store;
  TermWeightSelector selector(store);
  for (ValueId v = 1; v <= 6; ++v) selector.OnValueDiscovered(v);
  uint32_t slot = 0;
  ValueId filler = 100;
  AddHub(store, selector, 1, 3, slot, filler);
  AddHub(store, selector, 4, 2, slot, filler);
  ASSERT_NE(selector.SelectNext(), kInvalidValueId);

  CheckpointWriter writer;
  ASSERT_TRUE(selector.SaveState(writer).ok());
  std::string image = writer.TakeBuffer();

  // The engine restores the store separately; mirror its contents here.
  LocalStore other_store;
  for (uint32_t s = 0; s < store.num_records(); ++s) {
    std::span<const ValueId> values = store.RecordValues(s);
    other_store.AddRecord(s, std::vector<ValueId>(values.begin(),
                                                  values.end()));
  }
  TermWeightSelector restored(other_store);
  CheckpointReader reader(image);
  Status loaded = restored.LoadState(reader, /*value_bound=*/200);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(restored.frontier_size(), selector.frontier_size());
  for (;;) {
    ValueId a = selector.SelectNext();
    ValueId b = restored.SelectNext();
    ASSERT_EQ(a, b);
    if (a == kInvalidValueId) break;
  }
}

TEST(TermWeightSelectorTest, CheckpointRejectsBatchSizeMismatch) {
  LocalStore store;
  TermWeightSelector selector(store);
  selector.OnValueDiscovered(1);
  CheckpointWriter writer;
  ASSERT_TRUE(selector.SaveState(writer).ok());
  std::string image = writer.TakeBuffer();

  TermWeightOptions narrow;
  narrow.batch_size = 2;
  TermWeightSelector restored(store, narrow);
  CheckpointReader reader(image);
  EXPECT_EQ(restored.LoadState(reader, 10).code(),
            StatusCode::kInvalidArgument);
}

// --- adaptive meta-selector -------------------------------------------

struct Chain {
  LocalStore store;
  AdaptiveSelector* selector = nullptr;
  std::unique_ptr<AdaptiveSelector> owned;

  explicit Chain(AdaptiveOptions options = AdaptiveOptions{}) {
    std::vector<std::unique_ptr<QuerySelector>> children;
    children.push_back(std::make_unique<GreedyLinkSelector>(store));
    children.push_back(std::make_unique<TermWeightSelector>(store));
    owned = std::make_unique<AdaptiveSelector>(std::move(children), options);
    selector = owned.get();
  }
};

QueryOutcome Harvested(ValueId v, uint32_t new_records) {
  QueryOutcome outcome;
  outcome.value = v;
  outcome.pages_fetched = 1;
  outcome.records_returned = new_records;
  outcome.new_records = new_records;
  return outcome;
}

AdaptiveOptions FastSwitch() {
  AdaptiveOptions options;
  options.ewma_alpha = 1.0;  // estimator == last sample, easy to reason
  options.switch_decay = 0.5;
  options.hr_floor = 0.0;
  options.min_phase_queries = 2;
  return options;
}

TEST(AdaptiveSelectorTest, NameComposesChain) {
  Chain chain;
  EXPECT_EQ(chain.selector->name(), "adaptive(greedy-link,term-weight)");
  EXPECT_EQ(chain.selector->num_phases(), 2u);
  EXPECT_EQ(chain.selector->active_phase(), 0u);
}

TEST(AdaptiveSelectorTest, SwitchesWhenHarvestRateDecays) {
  Chain chain(FastSwitch());
  for (ValueId v = 1; v <= 8; ++v) chain.selector->OnValueDiscovered(v);
  // Two rich queries set the peak, then a crash in the harvest rate
  // (1 < 0.5 * 10) advances the phase.
  chain.selector->OnQueryCompleted(Harvested(1, 10));
  chain.selector->OnQueryCompleted(Harvested(2, 10));
  EXPECT_EQ(chain.selector->active_phase(), 0u);
  chain.selector->OnQueryCompleted(Harvested(3, 1));
  EXPECT_EQ(chain.selector->active_phase(), 1u);
  EXPECT_EQ(chain.selector->phase_switches(), 1u);
  // The last phase never advances past the end, however poor the rate.
  chain.selector->OnQueryCompleted(Harvested(4, 0));
  chain.selector->OnQueryCompleted(Harvested(5, 0));
  EXPECT_EQ(chain.selector->active_phase(), 1u);
}

TEST(AdaptiveSelectorTest, MinPhaseQueriesSuppressesEarlySwitch) {
  AdaptiveOptions options = FastSwitch();
  options.min_phase_queries = 10;
  Chain chain(options);
  chain.selector->OnQueryCompleted(Harvested(1, 10));
  chain.selector->OnQueryCompleted(Harvested(2, 0));
  chain.selector->OnQueryCompleted(Harvested(3, 0));
  EXPECT_EQ(chain.selector->active_phase(), 0u);
}

TEST(AdaptiveSelectorTest, TakenValuesNeverRepeatAcrossTheSwitch) {
  Chain chain(FastSwitch());
  for (ValueId v = 1; v <= 5; ++v) chain.selector->OnValueDiscovered(v);
  std::set<ValueId> picked;
  // Pick twice under greedy, then force the switch and drain the rest
  // under term-weight: the five values come out exactly once each.
  for (int i = 0; i < 2; ++i) {
    ValueId v = chain.selector->SelectNext();
    ASSERT_NE(v, kInvalidValueId);
    EXPECT_TRUE(picked.insert(v).second);
    chain.selector->OnQueryCompleted(Harvested(v, 10));
  }
  chain.selector->OnQueryCompleted(Harvested(99, 1));
  ASSERT_EQ(chain.selector->active_phase(), 1u);
  for (;;) {
    ValueId v = chain.selector->SelectNext();
    if (v == kInvalidValueId) break;
    EXPECT_TRUE(picked.insert(v).second) << "value " << v << " repeated";
  }
  EXPECT_EQ(picked, (std::set<ValueId>{1, 2, 3, 4, 5}));
}

TEST(AdaptiveSelectorTest, ExhaustedPhaseFallsThroughTheChain) {
  Chain chain;
  chain.selector->OnValueDiscovered(1);
  EXPECT_EQ(chain.selector->SelectNext(), 1u);
  // Both children drained: the chain reports exhaustion, not a stall.
  EXPECT_EQ(chain.selector->SelectNext(), kInvalidValueId);
}

TEST(AdaptiveSelectorTest, CheckpointRoundTripAcrossTheSwitchBoundary) {
  Chain chain(FastSwitch());
  for (ValueId v = 1; v <= 6; ++v) chain.selector->OnValueDiscovered(v);
  uint32_t slot = 0;
  ValueId filler = 10;
  AddHub(chain.store, *chain.selector, 2, 3, slot, filler);
  // Drive past the switch: the checkpoint captures phase 1 mid-flight.
  chain.selector->OnQueryCompleted(Harvested(1, 10));
  chain.selector->OnQueryCompleted(Harvested(2, 10));
  chain.selector->OnQueryCompleted(Harvested(3, 1));
  ASSERT_EQ(chain.selector->active_phase(), 1u);
  ASSERT_NE(chain.selector->SelectNext(), kInvalidValueId);

  CheckpointWriter writer;
  ASSERT_TRUE(chain.selector->SaveState(writer).ok());
  std::string image = writer.TakeBuffer();

  Chain restored(FastSwitch());
  for (uint32_t s = 0; s < chain.store.num_records(); ++s) {
    std::span<const ValueId> values = chain.store.RecordValues(s);
    restored.store.AddRecord(s, std::vector<ValueId>(values.begin(),
                                                     values.end()));
  }
  CheckpointReader reader(image);
  Status loaded = restored.selector->LoadState(reader, /*value_bound=*/50);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(restored.selector->active_phase(), 1u);
  EXPECT_EQ(restored.selector->phase_switches(), 1u);
  EXPECT_DOUBLE_EQ(restored.selector->estimator().hr,
                   chain.selector->estimator().hr);
  for (;;) {
    ValueId a = chain.selector->SelectNext();
    ValueId b = restored.selector->SelectNext();
    ASSERT_EQ(a, b);
    if (a == kInvalidValueId) break;
    chain.selector->OnQueryCompleted(Harvested(a, 1));
    restored.selector->OnQueryCompleted(Harvested(b, 1));
  }
}

TEST(AdaptiveSelectorTest, CheckpointRejectsChainAndOptionMismatches) {
  Chain chain(FastSwitch());
  chain.selector->OnValueDiscovered(1);
  CheckpointWriter writer;
  ASSERT_TRUE(chain.selector->SaveState(writer).ok());
  std::string image = writer.TakeBuffer();

  // Different switch options.
  {
    Chain other;  // default options
    CheckpointReader reader(image);
    EXPECT_EQ(other.selector->LoadState(reader, 10).code(),
              StatusCode::kInvalidArgument);
  }
  // Different chain composition.
  {
    LocalStore store;
    std::vector<std::unique_ptr<QuerySelector>> children;
    children.push_back(std::make_unique<TermWeightSelector>(store));
    children.push_back(std::make_unique<GreedyLinkSelector>(store));
    AdaptiveSelector reversed(std::move(children), FastSwitch());
    CheckpointReader reader(image);
    EXPECT_EQ(reversed.LoadState(reader, 10).code(),
              StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace deepcrawl
