#include "src/relation/schema.h"

#include <utility>

#include "src/util/logging.h"

namespace deepcrawl {

StatusOr<AttributeId> Schema::AddAttribute(std::string name,
                                           bool multi_valued) {
  if (name.empty()) {
    return Status::InvalidArgument("attribute name must be non-empty");
  }
  if (by_name_.count(name) != 0) {
    return Status::AlreadyExists("attribute '" + name + "' already defined");
  }
  if (attributes_.size() >= kInvalidAttributeId) {
    return Status::ResourceExhausted("too many attributes");
  }
  AttributeId id = static_cast<AttributeId>(attributes_.size());
  by_name_.emplace(name, id);
  attributes_.push_back(AttributeDef{std::move(name), multi_valued});
  return id;
}

StatusOr<AttributeId> Schema::FindAttribute(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return Status::NotFound("no attribute named '" + std::string(name) + "'");
  }
  return it->second;
}

const AttributeDef& Schema::attribute(AttributeId id) const {
  DEEPCRAWL_CHECK_LT(id, attributes_.size()) << "attribute id out of range";
  return attributes_[id];
}

}  // namespace deepcrawl
