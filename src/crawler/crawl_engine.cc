#include "src/crawler/crawl_engine.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/crawler/checkpoint.h"
#include "src/util/checkpoint_io.h"
#include "src/util/logging.h"

namespace deepcrawl {

const char* StopReasonToString(StopReason reason) {
  switch (reason) {
    case StopReason::kFrontierExhausted:
      return "frontier-exhausted";
    case StopReason::kRoundBudget:
      return "round-budget";
    case StopReason::kTargetReached:
      return "target-reached";
  }
  return "unknown";
}

CrawlResult MakeCrawlResult(StopReason reason, uint64_t rounds,
                            uint64_t queries, uint64_t records,
                            const CrawlTrace& trace) {
  CrawlResult result;
  result.stop_reason = reason;
  result.rounds = rounds;
  result.queries = queries;
  result.records = records;
  result.trace = trace;
  result.resilience = trace.resilience();
  return result;
}

StatusOr<ResultPage> ExecuteFetch(QueryInterface& server,
                                  const FetchRequest& request) {
  return request.keyword
             ? server.FetchPageKeywordOf(request.value, request.page_number)
             : server.FetchPage(request.value, request.page_number);
}

void InlineFetchExecutor::FetchWave(
    QueryInterface& server, std::span<const FetchRequest> requests,
    std::span<std::optional<StatusOr<ResultPage>>> results) {
  for (size_t i = 0; i < requests.size(); ++i) {
    results[i] = ExecuteFetch(server, requests[i]);
  }
}

ThreadPoolFetchExecutor::ThreadPoolFetchExecutor(uint32_t threads)
    : pool_(threads) {}

void ThreadPoolFetchExecutor::FetchWave(
    QueryInterface& server, std::span<const FetchRequest> requests,
    std::span<std::optional<StatusOr<ResultPage>>> results) {
  tasks_.clear();
  tasks_.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    tasks_.push_back([&server, &requests, &results, i] {
      results[i] = ExecuteFetch(server, requests[i]);
    });
  }
  pool_.RunAndWait(tasks_);
}

DegradationTracker::FailureAction DegradationTracker::OnFetchFailure(
    const Status& failure, ValueId value, uint32_t& failures,
    ResilienceCounters& resilience) {
  if (policy_ == nullptr || !RetryPolicy::IsRetryable(failure)) {
    return FailureAction::kFailCrawl;
  }
  ++failures;
  ++resilience.transient_failures;
  if (failure.retry_after_rounds().has_value()) {
    ++resilience.rate_limit_rejections;
    resilience.max_retry_after_hint = std::max<uint64_t>(
        resilience.max_retry_after_hint, *failure.retry_after_rounds());
  }
  if (!policy_->ShouldRetry(failure, failures)) {
    // Retry budget exhausted: degrade gracefully — re-queue the value at
    // the frontier tail a bounded number of times, then abandon it. The
    // retry-after floor still binds the *source* even though this value's
    // drain is over: charge it to the clock, or the very next fetch would
    // land before the server's advertised earliest-retry time.
    uint64_t floor = policy_->FloorTicks(failure);
    if (floor > 0) {
      clock_.Advance(floor);
      resilience.backoff_ticks += floor;
    }
    ++resilience.degraded_queries;
    uint32_t& requeues = requeue_count_[value];
    if (requeues < policy_->config().max_requeues) {
      ++requeues;
      ++resilience.requeues;
      retry_queue_.push_back(value);
      return FailureAction::kRequeue;
    }
    ++resilience.abandoned_values;
    return FailureAction::kAbandon;
  }
  uint64_t wait = policy_->BackoffTicks(failure, failures, value);
  clock_.Advance(wait);
  resilience.backoff_ticks += wait;
  ++resilience.retries;
  return FailureAction::kRetry;
}

ValueId DegradationTracker::PopRetry() {
  if (retry_queue_.empty()) return kInvalidValueId;
  ValueId value = retry_queue_.front();
  retry_queue_.pop_front();
  return value;
}

void DegradationTracker::SaveState(CheckpointWriter& writer) const {
  writer.WriteU64(retry_queue_.size());
  for (ValueId v : retry_queue_) writer.WriteU32(v);
  // Sorted by value, so the encoding is independent of hash-map order.
  std::vector<std::pair<ValueId, uint32_t>> counts(requeue_count_.begin(),
                                                   requeue_count_.end());
  std::sort(counts.begin(), counts.end());
  writer.WriteU64(counts.size());
  for (const auto& [value, requeues] : counts) {
    writer.WriteU32(value);
    writer.WriteU32(requeues);
  }
}

Status DegradationTracker::LoadState(CheckpointReader& reader) {
  retry_queue_.clear();
  requeue_count_.clear();
  uint64_t queued = reader.ReadCount(4);
  for (uint64_t i = 0; i < queued && reader.ok(); ++i) {
    retry_queue_.push_back(reader.ReadU32());
  }
  uint64_t counted = reader.ReadCount(8);
  for (uint64_t i = 0; i < counted && reader.ok(); ++i) {
    ValueId value = reader.ReadU32();
    uint32_t requeues = reader.ReadU32();
    if (!requeue_count_.emplace(value, requeues).second) {
      reader.MarkCorrupt("duplicate value in re-queue count table");
    }
  }
  return reader.status();
}

CrawlEngine::CrawlEngine(QueryInterface& server, QuerySelector& selector,
                         LocalStore& store, CrawlOptions options,
                         EngineOptions engine_options,
                         AbortPolicy* abort_policy,
                         const RetryPolicy* retry_policy)
    : server_(server),
      selector_(selector),
      store_(store),
      options_(options),
      engine_options_(std::move(engine_options)),
      abort_policy_(abort_policy),
      retry_policy_(retry_policy),
      degradation_(retry_policy, clock_) {
  DEEPCRAWL_CHECK(engine_options_.threads >= 1) << "need >= 1 fetch thread";
  DEEPCRAWL_CHECK(engine_options_.batch >= 1) << "need >= 1 drain slot";
  if (engine_options_.shared_executor != nullptr) {
    executor_ = engine_options_.shared_executor;
  } else {
    if (engine_options_.threads > 1) {
      owned_executor_ =
          std::make_unique<ThreadPoolFetchExecutor>(engine_options_.threads);
    } else {
      owned_executor_ = std::make_unique<InlineFetchExecutor>();
    }
    executor_ = owned_executor_.get();
  }
  slots_.resize(engine_options_.batch);
}

void CrawlEngine::DiscoverValue(ValueId v) {
  if (v >= seen_.size()) seen_.resize(static_cast<size_t>(v) + 1, 0);
  if (seen_[v]) return;
  seen_[v] = 1;
  // Values of attributes outside the interface schema Aq (Definition
  // 2.2) appear on result pages but cannot be queried; they never enter
  // Lto-query.
  if (!server_.IsQueriableValue(v)) return;
  selector_.OnValueDiscovered(v);
}

void CrawlEngine::AddSeed(ValueId v) { DiscoverValue(v); }

ValueId CrawlEngine::NextValue() {
  ValueId value = selector_.SelectNext();
  if (value != kInvalidValueId) return value;
  // Re-queued values wait at the frontier tail: they only come up once
  // the selector has nothing better.
  return degradation_.PopRetry();
}

void CrawlEngine::CheckSaturation() {
  if (!saturation_notified_ && options_.saturation_records > 0 &&
      store_.num_records() >= options_.saturation_records) {
    saturation_notified_ = true;
    selector_.OnSaturation();
  }
}

void CrawlEngine::FinishDrain(std::optional<Slot>& slot_box) {
  Slot& slot = *slot_box;
  slot.outcome.fetch_failures = slot.failures;
  selector_.OnQueryCompleted(slot.outcome);
  slot_box.reset();
  CheckSaturation();
}

CrawlResult CrawlEngine::MakeResult(StopReason reason) const {
  CrawlResult result = MakeCrawlResult(reason, rounds_used_, queries_issued_,
                                       store_.num_records(), trace_);
  result.rtt = server_.rtt_counters();
  return result;
}

Status CrawlEngine::CommitFetch(std::optional<Slot>& slot_box,
                                StatusOr<ResultPage> fetched) {
  Slot& slot = *slot_box;
  ++rounds_used_;
  if (!fetched.ok()) {
    switch (degradation_.OnFetchFailure(fetched.status(), slot.value,
                                        slot.failures, trace_.resilience())) {
      case DegradationTracker::FailureAction::kFailCrawl:
        return fetched.status();
      case DegradationTracker::FailureAction::kRetry:
        // The slot stays parked on the same page; the next wave
        // re-fetches it (and if the budget just expired, the top of
        // Run() parks the whole crawl, matching the serial mid-drain
        // park).
        return Status::OK();
      case DegradationTracker::FailureAction::kRequeue:
        slot.outcome.fetch_failures = slot.failures;
        slot.outcome.degraded = true;
        // Not completed: the selector is notified when the re-issued
        // drain finishes or the value is abandoned.
        slot_box.reset();
        CheckSaturation();
        return Status::OK();
      case DegradationTracker::FailureAction::kAbandon:
        slot.outcome.fetch_failures = slot.failures;
        slot.outcome.degraded = true;
        selector_.OnQueryCompleted(slot.outcome);
        slot_box.reset();
        CheckSaturation();
        return Status::OK();
    }
    return Status::Internal("unreachable");
  }

  const ResultPage& page = *fetched;
  for (const ReturnedRecord& record : page.records) {
    ++slot.outcome.records_returned;
    if (store_.ContainsRecord(record.id)) {
      store_.ObserveDuplicate(record.id);
      continue;
    }
    // Decompose first so the selector hears about new values before the
    // record-harvest notification (see QuerySelector contract).
    for (ValueId v : record.values) DiscoverValue(v);
    uint32_t store_slot = static_cast<uint32_t>(store_.num_records());
    bool added = store_.AddRecord(record.id, record.values);
    DEEPCRAWL_DCHECK(added) << "record dedup raced";
    (void)added;
    ++slot.outcome.new_records;
    selector_.OnRecordHarvested(store_slot);
  }
  ++slot.outcome.pages_fetched;
  wave_points_.push_back(TracePoint{rounds_used_, store_.num_records()});

  if (page.total_matches.has_value() && slot.next_page == 0) {
    slot.outcome.total_matches = page.total_matches;
  }

  if (!page.has_more) {
    FinishDrain(slot_box);
    return Status::OK();
  }
  if (options_.target_records > 0 &&
      store_.num_records() >= options_.target_records) {
    // Target reached mid-drain: complete the query (serial semantics);
    // the top of Run() reports kTargetReached.
    FinishDrain(slot_box);
    return Status::OK();
  }
  slot.next_page += 1;
  if (options_.max_rounds > 0 && rounds_used_ >= options_.max_rounds) {
    // Budget expired mid-drain: the slot stays parked (the serial
    // crawler's PendingDrain); the abort policy is deliberately not
    // consulted, matching the serial check order.
    return Status::OK();
  }
  if (abort_policy_ != nullptr) {
    QueryProgress progress;
    progress.page_size = server_.options().page_size;
    progress.total_matches = slot.outcome.total_matches;
    uint32_t total = page.total_matches.value_or(0);
    uint32_t limit = server_.options().result_limit;
    progress.retrievable = limit > 0 ? std::min(total, limit) : total;
    progress.pages_fetched = slot.outcome.pages_fetched;
    progress.records_returned = slot.outcome.records_returned;
    progress.new_records = slot.outcome.new_records;
    progress.has_more = true;
    if (!abort_policy_->ShouldContinue(progress)) {
      slot.outcome.aborted = true;
      FinishDrain(slot_box);
      return Status::OK();
    }
  }
  return Status::OK();
}

StatusOr<CrawlResult> CrawlEngine::Run() {
  for (;;) {
    if (wave_pos_ >= wave_.size()) {
      // Between waves: this is the engine's durable boundary. The wave
      // buffer is cleared BEFORE the checkpoint sink fires, so a
      // checkpoint image never contains a completed wave — a restored
      // engine re-enters here with an empty wave and neither re-commits
      // work nor re-fires the sink for the wave that triggered the save.
      bool wave_just_completed = !wave_.empty();
      wave_.clear();
      wave_pos_ = 0;
      if (wave_just_completed) {
        ++waves_completed_;
        if (engine_options_.checkpoint_every_waves > 0 &&
            engine_options_.checkpoint_sink != nullptr &&
            waves_completed_ % engine_options_.checkpoint_every_waves == 0) {
          Status saved = engine_options_.checkpoint_sink(*this);
          if (!saved.ok()) return saved;
        }
      }
      // Evaluate stop conditions (priority matches the historical serial
      // loop exactly — target, budget, frontier) and build the next
      // wave. While a wave is in progress these checks are deliberately
      // skipped: the wave is an atomic unit of the crawl order, so an
      // interrupted one must finish before anything else.
      if (options_.target_records > 0 &&
          store_.num_records() >= options_.target_records) {
        return MakeResult(StopReason::kTargetReached);
      }
      if (options_.max_rounds > 0 && rounds_used_ >= options_.max_rounds) {
        return MakeResult(StopReason::kRoundBudget);
      }

      // Refill: empty slots take the next frontier values in slot
      // order, so slot rank reflects selector rank for this wave.
      for (auto& slot_box : slots_) {
        if (slot_box.has_value()) continue;
        ValueId value = NextValue();
        if (value == kInvalidValueId) break;
        if (selector_.MaySelectUndiscovered()) {
          // Interface-driven selectors may issue a value before any
          // result page revealed it; record it as seen so every id the
          // crawl touched stays below seen_.size() (the checkpoint
          // id-validation bound). The value is entering Lqueried, so a
          // later sighting on a page must not re-announce it.
          if (value >= seen_.size()) {
            seen_.resize(static_cast<size_t>(value) + 1, 0);
          }
          seen_[value] = 1;
        }
        Slot slot;
        slot.value = value;
        slot.outcome.value = value;
        slot_box = std::move(slot);
        ++queries_issued_;
      }
      for (size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].has_value()) wave_.push_back(i);
      }
      if (wave_.empty()) return MakeResult(StopReason::kFrontierExhausted);
    }

    // The budget limits how much of the wave runs now; the unfetched
    // suffix stays queued in wave_ for the next Run() call.
    size_t slice = wave_.size() - wave_pos_;
    if (options_.max_rounds > 0) {
      uint64_t remaining = options_.max_rounds > rounds_used_
                               ? options_.max_rounds - rounds_used_
                               : 0;
      if (remaining == 0) return MakeResult(StopReason::kRoundBudget);
      slice = static_cast<size_t>(std::min<uint64_t>(slice, remaining));
    }

    // Fetch phase: one page per wave slot, through the executor. Each
    // fetch lands in its own rank-indexed cell, so execution order is
    // invisible to the commit phase. The request/result buffers are
    // members reused across waves; no executor mutates them
    // structurally while the wave runs.
    fetch_results_.clear();
    fetch_results_.resize(slice);
    fetch_requests_.clear();
    fetch_requests_.reserve(slice);
    for (size_t i = 0; i < slice; ++i) {
      const Slot& slot = *slots_[wave_[wave_pos_ + i]];
      fetch_requests_.push_back(FetchRequest{
          slot.value, slot.next_page, options_.use_keyword_interface});
    }
    executor_->FetchWave(server_, fetch_requests_, fetch_results_);

    // Commit phase: strictly by slot rank, never by completion order.
    wave_points_.clear();
    Status committed = Status::OK();
    for (size_t i = 0; i < slice; ++i) {
      committed = CommitFetch(slots_[wave_[wave_pos_]],
                              std::move(*fetch_results_[i]));
      ++wave_pos_;
      if (!committed.ok()) break;
    }
    trace_.AddWave(wave_points_);
    if (!committed.ok()) return committed;
  }
}

// --- checkpointing ----------------------------------------------------

namespace {

void SaveOutcome(CheckpointWriter& writer, const QueryOutcome& outcome) {
  writer.WriteU32(outcome.value);
  writer.WriteU8(outcome.total_matches.has_value() ? 1 : 0);
  writer.WriteU32(outcome.total_matches.value_or(0));
  writer.WriteU32(outcome.pages_fetched);
  writer.WriteU32(outcome.records_returned);
  writer.WriteU32(outcome.new_records);
  writer.WriteU8(outcome.aborted ? 1 : 0);
  writer.WriteU32(outcome.fetch_failures);
  writer.WriteU8(outcome.degraded ? 1 : 0);
}

QueryOutcome LoadOutcome(CheckpointReader& reader) {
  QueryOutcome outcome;
  outcome.value = reader.ReadU32();
  bool has_total = reader.ReadU8() != 0;
  uint32_t total = reader.ReadU32();
  if (has_total) outcome.total_matches = total;
  outcome.pages_fetched = reader.ReadU32();
  outcome.records_returned = reader.ReadU32();
  outcome.new_records = reader.ReadU32();
  outcome.aborted = reader.ReadU8() != 0;
  outcome.fetch_failures = reader.ReadU32();
  outcome.degraded = reader.ReadU8() != 0;
  return outcome;
}

}  // namespace

Status CrawlEngine::SaveState(CheckpointWriter& writer) const {
  // CONFIG: the construction fingerprint, verified on load before any
  // state is touched. `threads` is deliberately absent — it is
  // wall-clock only, so a checkpoint may be resumed at any thread count.
  WriteSectionMarker(writer, kSectionConfig);
  writer.WriteU32(engine_options_.batch);
  writer.WriteU8(options_.use_keyword_interface ? 1 : 0);
  writer.WriteU8(store_.options().exact_degrees ? 1 : 0);
  writer.WriteU8(static_cast<uint8_t>(store_.options().layout));
  writer.WriteString(selector_.name());
  writer.WriteU64(options_.max_rounds);
  writer.WriteU64(options_.target_records);
  writer.WriteU64(options_.saturation_records);

  // ENGINE: the wave loop's own state.
  WriteSectionMarker(writer, kSectionEngine);
  writer.WriteU64(rounds_used_);
  writer.WriteU64(queries_issued_);
  writer.WriteU64(waves_completed_);
  writer.WriteU64(clock_.now());
  writer.WriteU8(saturation_notified_ ? 1 : 0);
  writer.WriteString(std::string_view(seen_.data(), seen_.size()));
  writer.WriteU64(trace_.points().size());
  for (const TracePoint& point : trace_.points()) {
    writer.WriteU64(point.rounds);
    writer.WriteU64(point.records);
  }
  const ResilienceCounters& res = trace_.resilience();
  writer.WriteU64(res.transient_failures);
  writer.WriteU64(res.retries);
  writer.WriteU64(res.backoff_ticks);
  writer.WriteU64(res.requeues);
  writer.WriteU64(res.abandoned_values);
  writer.WriteU64(res.degraded_queries);
  writer.WriteU64(res.rate_limit_rejections);
  writer.WriteU64(res.max_retry_after_hint);
  degradation_.SaveState(writer);
  for (const auto& slot_box : slots_) {
    writer.WriteU8(slot_box.has_value() ? 1 : 0);
    if (!slot_box.has_value()) continue;
    writer.WriteU32(slot_box->value);
    writer.WriteU32(slot_box->next_page);
    writer.WriteU32(slot_box->failures);
    SaveOutcome(writer, slot_box->outcome);
  }
  writer.WriteU64(wave_.size());
  for (size_t index : wave_) writer.WriteU64(index);
  writer.WriteU64(wave_pos_);

  // STORE. Two forms, selected by the layout byte already pinned in
  // CONFIG:
  //  * kPaged (v3 manifest form): the store persists itself — dirty
  //    pages are flushed + fsynced and a MANIFEST.<stamp> written —
  //    and the crawl checkpoint records only the counters and the
  //    stamp. The manifest lands durably *before* this checkpoint's
  //    own file, so a crash between the two resumes from the previous
  //    stamp, whose pages the store retains (DESIGN.md §14).
  //  * otherwise: logical replay form — original id, observation
  //    count, and values per record, in harvest order.
  //    AddRecord/ObserveDuplicate rebuild the CSR arenas, edge hash,
  //    degrees, and postings exactly, because all of them are pure
  //    functions of the add sequence.
  WriteSectionMarker(writer, kSectionStore);
  if (store_.options().layout == LocalStore::Layout::kPaged) {
    StatusOr<uint64_t> stamp = store_.CheckpointPaged();
    if (!stamp.ok()) return stamp.status();
    writer.WriteU64(store_.num_records());
    writer.WriteU64(store_.num_observations());
    writer.WriteU64(*stamp);
  } else {
    writer.WriteU64(store_.num_records());
    for (uint32_t slot = 0; slot < store_.num_records(); ++slot) {
      writer.WriteU32(store_.OriginalRecordId(slot));
      writer.WriteU32(store_.ObservationCount(slot));
      std::span<const ValueId> values = store_.RecordValues(slot);
      writer.WriteU32(static_cast<uint32_t>(values.size()));
      for (ValueId v : values) writer.WriteU32(v);
    }
    writer.WriteU64(store_.num_observations());
  }

  // SELECTOR: the policy serializes itself (oracle/domain policies
  // reject with a clean FailedPrecondition).
  WriteSectionMarker(writer, kSectionSelector);
  return selector_.SaveState(writer);
}

Status CrawlEngine::LoadState(CheckpointReader& reader) {
  if (rounds_used_ != 0 || store_.num_records() != 0 || !trace_.empty() ||
      !seen_.empty()) {
    return Status::FailedPrecondition(
        "checkpoint restore requires a freshly constructed engine "
        "(empty store, no rounds used)");
  }

  if (!ExpectSectionMarker(reader, kSectionConfig, "CONF")) {
    return reader.status();
  }
  uint32_t batch = reader.ReadU32();
  bool keyword = reader.ReadU8() != 0;
  bool exact_degrees = reader.ReadU8() != 0;
  uint8_t layout = reader.ReadU8();
  std::string selector_name = reader.ReadString();
  uint64_t max_rounds = reader.ReadU64();
  uint64_t target_records = reader.ReadU64();
  uint64_t saturation_records = reader.ReadU64();
  DEEPCRAWL_RETURN_IF_ERROR(reader.status());
  if (batch != engine_options_.batch) {
    return Status::InvalidArgument(
        "checkpoint batch mismatch: file has batch=" + std::to_string(batch) +
        ", engine was built with batch=" +
        std::to_string(engine_options_.batch) +
        " (batch is semantic; resume with the same value)");
  }
  if (keyword != options_.use_keyword_interface) {
    return Status::InvalidArgument(
        "checkpoint interface mismatch: keyword mode differs from the "
        "checkpointing run");
  }
  if (exact_degrees != store_.options().exact_degrees ||
      layout != static_cast<uint8_t>(store_.options().layout)) {
    return Status::InvalidArgument(
        "checkpoint store-options mismatch: exact-degrees/layout differ "
        "from the checkpointing run");
  }
  if (selector_name != selector_.name()) {
    return Status::InvalidArgument(
        "checkpoint selector mismatch: file was written by policy '" +
        selector_name + "', engine runs policy '" +
        std::string(selector_.name()) + "'");
  }
  options_.max_rounds = max_rounds;
  options_.target_records = target_records;
  options_.saturation_records = saturation_records;

  if (!ExpectSectionMarker(reader, kSectionEngine, "ENGI")) {
    return reader.status();
  }
  rounds_used_ = reader.ReadU64();
  queries_issued_ = reader.ReadU64();
  waves_completed_ = reader.ReadU64();
  uint64_t clock_now = reader.ReadU64();
  saturation_notified_ = reader.ReadU8() != 0;
  std::string seen_bytes = reader.ReadString();
  DEEPCRAWL_RETURN_IF_ERROR(reader.status());
  clock_.set_now(clock_now);
  seen_.assign(seen_bytes.begin(), seen_bytes.end());
  // Every value id a crawl ever touched went through DiscoverValue, so
  // the seen bitmap bounds every id in the sections below — the bound
  // that keeps a forged id from driving a giant table resize.
  ValueId value_bound = static_cast<ValueId>(seen_.size());

  uint64_t num_points = reader.ReadCount(16);
  uint64_t last_rounds = 0;
  uint64_t last_records = 0;
  for (uint64_t i = 0; i < num_points && reader.ok(); ++i) {
    uint64_t rounds = reader.ReadU64();
    uint64_t records = reader.ReadU64();
    // Stored points are collapsed (strictly increasing rounds), so the
    // replay below reproduces the exact points vector.
    if (i > 0 && (rounds <= last_rounds || records < last_records)) {
      reader.MarkCorrupt("trace points not monotone");
      break;
    }
    last_rounds = rounds;
    last_records = records;
    trace_.Add(rounds, records);
  }
  ResilienceCounters& res = trace_.resilience();
  res.transient_failures = reader.ReadU64();
  res.retries = reader.ReadU64();
  res.backoff_ticks = reader.ReadU64();
  res.requeues = reader.ReadU64();
  res.abandoned_values = reader.ReadU64();
  res.degraded_queries = reader.ReadU64();
  res.rate_limit_rejections = reader.ReadU64();
  res.max_retry_after_hint = reader.ReadU64();
  DEEPCRAWL_RETURN_IF_ERROR(degradation_.LoadState(reader));
  for (auto& slot_box : slots_) {
    bool present = reader.ReadU8() != 0;
    if (!reader.ok()) break;
    if (!present) {
      slot_box.reset();
      continue;
    }
    Slot slot;
    slot.value = reader.ReadU32();
    slot.next_page = reader.ReadU32();
    slot.failures = reader.ReadU32();
    slot.outcome = LoadOutcome(reader);
    if (slot.value >= value_bound) {
      reader.MarkCorrupt("slot value id out of range");
      break;
    }
    slot_box = std::move(slot);
  }
  wave_.clear();
  uint64_t wave_size = reader.ReadCount(8);
  for (uint64_t i = 0; i < wave_size && reader.ok(); ++i) {
    uint64_t index = reader.ReadU64();
    if (index >= slots_.size() || !slots_[index].has_value() ||
        (!wave_.empty() && index <= wave_.back())) {
      reader.MarkCorrupt("wave slot index invalid");
      break;
    }
    wave_.push_back(static_cast<size_t>(index));
  }
  uint64_t wave_pos = reader.ReadU64();
  if (reader.ok() && wave_pos > wave_.size()) {
    reader.MarkCorrupt("wave position past the wave's end");
  }
  wave_pos_ = static_cast<size_t>(wave_pos);
  DEEPCRAWL_RETURN_IF_ERROR(reader.status());

  if (!ExpectSectionMarker(reader, kSectionStore, "STOR")) {
    return reader.status();
  }
  if (store_.options().layout == LocalStore::Layout::kPaged) {
    uint64_t expected_records = reader.ReadU64();
    uint64_t expected_obs = reader.ReadU64();
    uint64_t stamp = reader.ReadU64();
    DEEPCRAWL_RETURN_IF_ERROR(reader.status());
    DEEPCRAWL_RETURN_IF_ERROR(store_.LoadPagedCheckpoint(stamp));
    if (store_.num_records() != expected_records ||
        store_.num_observations() != expected_obs) {
      return Status::InvalidArgument(
          "paged store manifest " + std::to_string(stamp) +
          " does not match the crawl checkpoint's record/observation "
          "counters");
    }
    if (store_.num_values_seen() > value_bound) {
      return Status::InvalidArgument(
          "paged store manifest contains value ids the crawl never "
          "discovered");
    }
    if (!ExpectSectionMarker(reader, kSectionSelector, "SELC")) {
      return reader.status();
    }
    return selector_.LoadState(reader, value_bound);
  }
  uint64_t num_records = reader.ReadCount(16);
  std::vector<ValueId> values;
  for (uint64_t i = 0; i < num_records && reader.ok(); ++i) {
    RecordId id = reader.ReadU32();
    uint32_t observations = reader.ReadU32();
    uint32_t num_values = reader.ReadU32();
    if (!reader.ok()) break;
    if (observations == 0) {
      reader.MarkCorrupt("record with zero observations");
      break;
    }
    if (num_values == 0 ||
        static_cast<uint64_t>(num_values) * 4 > reader.remaining()) {
      reader.MarkCorrupt("record value count invalid");
      break;
    }
    values.clear();
    values.reserve(num_values);
    for (uint32_t j = 0; j < num_values; ++j) {
      ValueId v = reader.ReadU32();
      if (v >= value_bound) {
        reader.MarkCorrupt("record value id out of range");
        break;
      }
      values.push_back(v);
    }
    if (!reader.ok()) break;
    if (store_.ContainsRecord(id)) {
      reader.MarkCorrupt("duplicate record id in store section");
      break;
    }
    store_.AddRecord(id, values);
    // Restore the duplicate-observation counter directly rather than
    // replaying ObserveDuplicate N times: the count is attacker-visible
    // data, and a forged value must cost O(1), not O(N) replay work.
    store_.RestoreObservations(id, observations);
  }
  uint64_t expected_observations = reader.ReadU64();
  if (reader.ok() && expected_observations != store_.num_observations()) {
    reader.MarkCorrupt("store observation total does not add up");
  }
  DEEPCRAWL_RETURN_IF_ERROR(reader.status());

  if (!ExpectSectionMarker(reader, kSectionSelector, "SELC")) {
    return reader.status();
  }
  return selector_.LoadState(reader, value_bound);
}

}  // namespace deepcrawl
