#include "src/crawler/adaptive_selector.h"

#include <algorithm>

#include "src/util/checkpoint_io.h"
#include "src/util/logging.h"

namespace deepcrawl {

AdaptiveSelector::AdaptiveSelector(
    std::vector<std::unique_ptr<QuerySelector>> children,
    AdaptiveOptions options)
    : children_(std::move(children)), options_(options) {
  DEEPCRAWL_CHECK(!children_.empty()) << "adaptive chain must be non-empty";
  DEEPCRAWL_CHECK_GT(options_.ewma_alpha, 0.0);
  DEEPCRAWL_CHECK(options_.ewma_alpha <= 1.0) << "ewma_alpha must be <= 1";
  DEEPCRAWL_CHECK(options_.switch_decay >= 0.0 && options_.switch_decay < 1.0)
      << "switch_decay must be in [0, 1)";
  DEEPCRAWL_CHECK(options_.hr_floor >= 0.0) << "hr_floor must be >= 0";
  name_ = "adaptive(";
  for (size_t i = 0; i < children_.size(); ++i) {
    DEEPCRAWL_CHECK(!children_[i]->MaySelectUndiscovered())
        << "adaptive chain children must be frontier-driven";
    if (i > 0) name_ += ",";
    name_ += std::string(children_[i]->name());
  }
  name_ += ")";
}

void AdaptiveSelector::OnValueDiscovered(ValueId v) {
  for (auto& child : children_) child->OnValueDiscovered(v);
}

void AdaptiveSelector::OnRecordHarvested(uint32_t slot) {
  for (auto& child : children_) child->OnRecordHarvested(slot);
}

void AdaptiveSelector::OnSaturation() {
  // The engine's coverage-threshold signal reaches every child (it is a
  // statement about the crawl, not about the active policy); children
  // treat it idempotently.
  for (auto& child : children_) child->OnSaturation();
}

void AdaptiveSelector::OnValueTaken(ValueId v) {
  for (auto& child : children_) child->OnValueTaken(v);
}

void AdaptiveSelector::AdvancePhase() {
  ++active_;
  ++phase_switches_;
  phase_queries_ = 0;
  peak_hr_ = 0.0;
  // Activation doubles as the saturation signal for the incoming child:
  // an MMMI child switches into its marginal dependency-scored mode the
  // moment it takes over, exactly as §3.3's hand-tuned switch did.
  children_[active_]->OnSaturation();
}

void AdaptiveSelector::OnQueryCompleted(const QueryOutcome& outcome) {
  for (auto& child : children_) child->OnQueryCompleted(outcome);
  // One completed query = pages fetched + rounds lost to transient
  // failures (the paper's cost measure, Definition 2.3).
  uint32_t rounds =
      std::max<uint32_t>(1, outcome.pages_fetched + outcome.fetch_failures);
  double hr = static_cast<double>(outcome.new_records) /
              static_cast<double>(rounds);
  double err = static_cast<double>(outcome.fetch_failures) /
               static_cast<double>(rounds);
  estimator_.Observe(options_.ewma_alpha, hr, err);
  ++phase_queries_;
  peak_hr_ = std::max(peak_hr_, estimator_.hr);
  if (active_ + 1 < children_.size() &&
      phase_queries_ >= options_.min_phase_queries &&
      (estimator_.hr < options_.switch_decay * peak_hr_ ||
       estimator_.hr < options_.hr_floor)) {
    AdvancePhase();
  }
}

ValueId AdaptiveSelector::SelectNext() {
  for (;;) {
    ValueId v = children_[active_]->SelectNext();
    if (v != kInvalidValueId) {
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i != active_) children_[i]->OnValueTaken(v);
      }
      return v;
    }
    // Active child exhausted; fall through the chain rather than stall
    // (later children share the same event stream, so normally they are
    // exhausted too — this covers policies that refuse early).
    if (active_ + 1 >= children_.size()) return kInvalidValueId;
    AdvancePhase();
  }
}

Status AdaptiveSelector::SaveState(CheckpointWriter& writer) const {
  // Fingerprint: the chain composition and switch rule change selection,
  // so a checkpoint must not silently resume under different ones.
  writer.WriteU32(static_cast<uint32_t>(children_.size()));
  for (const auto& child : children_) {
    writer.WriteString(std::string(child->name()));
  }
  writer.WriteDouble(options_.ewma_alpha);
  writer.WriteDouble(options_.switch_decay);
  writer.WriteDouble(options_.hr_floor);
  writer.WriteU32(options_.min_phase_queries);

  writer.WriteU32(static_cast<uint32_t>(active_));
  writer.WriteU64(phase_queries_);
  writer.WriteU64(phase_switches_);
  writer.WriteDouble(peak_hr_);
  writer.WriteU8(estimator_.seen ? 1 : 0);
  writer.WriteDouble(estimator_.hr);
  writer.WriteDouble(estimator_.err);
  for (const auto& child : children_) {
    DEEPCRAWL_RETURN_IF_ERROR(child->SaveState(writer));
  }
  return Status::OK();
}

Status AdaptiveSelector::LoadState(CheckpointReader& reader,
                                   ValueId value_bound) {
  uint32_t num_children = reader.ReadU32();
  DEEPCRAWL_RETURN_IF_ERROR(reader.status());
  if (num_children != children_.size()) {
    return Status::InvalidArgument(
        "checkpoint adaptive chain length differs from the "
        "checkpointing run");
  }
  for (const auto& child : children_) {
    std::string child_name = reader.ReadString();
    DEEPCRAWL_RETURN_IF_ERROR(reader.status());
    if (child_name != child->name()) {
      return Status::InvalidArgument(
          "checkpoint adaptive chain mismatch: expected child '" +
          std::string(child->name()) + "', checkpoint has '" + child_name +
          "'");
    }
  }
  double alpha = reader.ReadDouble();
  double decay = reader.ReadDouble();
  double floor = reader.ReadDouble();
  uint32_t min_phase = reader.ReadU32();
  DEEPCRAWL_RETURN_IF_ERROR(reader.status());
  if (alpha != options_.ewma_alpha || decay != options_.switch_decay ||
      floor != options_.hr_floor || min_phase != options_.min_phase_queries) {
    return Status::InvalidArgument(
        "checkpoint adaptive switch options differ from the "
        "checkpointing run");
  }
  uint32_t active = reader.ReadU32();
  phase_queries_ = reader.ReadU64();
  phase_switches_ = reader.ReadU64();
  peak_hr_ = reader.ReadDouble();
  estimator_.seen = reader.ReadU8() != 0;
  estimator_.hr = reader.ReadDouble();
  estimator_.err = reader.ReadDouble();
  DEEPCRAWL_RETURN_IF_ERROR(reader.status());
  if (active >= children_.size()) {
    reader.MarkCorrupt("adaptive active phase out of range");
    return reader.status();
  }
  if (!(peak_hr_ >= 0.0) || !(estimator_.hr >= 0.0) ||
      !(estimator_.err >= 0.0)) {
    reader.MarkCorrupt("adaptive estimator state out of range");
    return reader.status();
  }
  active_ = active;
  for (auto& child : children_) {
    DEEPCRAWL_RETURN_IF_ERROR(child->LoadState(reader, value_bound));
  }
  return reader.status();
}

}  // namespace deepcrawl
