#include "src/domain/domain_selector.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/logging.h"

namespace deepcrawl {

namespace {
// Rounds to fully drain an estimated result set of `matches` records at
// `page_size` per page (Definition 2.3's cost). At least one round.
double EstimatedCost(double matches, uint32_t page_size) {
  if (matches <= 0.0) return 1.0;
  return std::max(1.0, std::ceil(matches / static_cast<double>(page_size)));
}
}  // namespace

DomainSelector::DomainSelector(const LocalStore& store,
                               const DomainTable& table, uint32_t page_size)
    : store_(store), table_(table), page_size_(page_size) {
  DEEPCRAWL_CHECK_GT(page_size, 0u);
  // Q_DT starts as every DT entry, most domain-frequent first.
  qdt_order_ = table_.values();
  std::sort(qdt_order_.begin(), qdt_order_.end(),
            [this](ValueId a, ValueId b) {
              uint32_t fa = table_.DomainFrequency(a);
              uint32_t fb = table_.DomainFrequency(b);
              if (fa != fb) return fa > fb;
              return a < b;
            });
}

void DomainSelector::EnsureValueCapacity(ValueId v) {
  if (v < qdb_pending_.size()) return;
  size_t new_size = static_cast<size_t>(v) + 1;
  qdb_pending_.resize(new_size, 0);
  seen_in_target_.resize(new_size, 0);
  consumed_.resize(new_size, 0);
  delta_frequency_.resize(new_size, 0);
}

double DomainSelector::LazyPriority(ValueId v) const {
  // Numerator of eq. 4.3 only: the smoothing denominator
  // |dDM| + |DM| is uniform across candidates and keeping it out makes
  // the key stable unless this value's own statistics moved.
  double numerator =
      static_cast<double>((v < delta_frequency_.size() ? delta_frequency_[v]
                                                       : 0) +
                          table_.DomainFrequency(v));
  uint32_t num_local = store_.LocalFrequency(v);
  if (num_local == 0) return std::numeric_limits<double>::infinity();
  return numerator / static_cast<double>(num_local);
}

void DomainSelector::OnValueDiscovered(ValueId v) {
  EnsureValueCapacity(v);
  if (!seen_in_target_[v]) {
    seen_in_target_[v] = 1;
    ++discovered_values_;
    if (table_.Contains(v)) ++discovered_values_in_dm_;
  }
  if (consumed_[v]) return;  // already issued (or handed out) as a query
  qdb_pending_[v] = 1;
  qdb_heap_.push(HeapEntry{LazyPriority(v), v});
}

void DomainSelector::OnRecordHarvested(uint32_t slot) {
  std::span<const ValueId> values = store_.RecordValues(slot);
  // dDM membership (eq. 4.3): the record carries a value DM lacks.
  bool in_delta = false;
  for (ValueId v : values) {
    if (!table_.Contains(v)) {
      in_delta = true;
      break;
    }
  }
  if (in_delta) {
    ++delta_records_;
    for (ValueId v : values) {
      EnsureValueCapacity(v);
      ++delta_frequency_[v];
    }
  }
  // num(v, DBlocal) moved for every value of the record; refresh heap
  // entries so the lazy-pop freshness invariant keeps holding.
  for (ValueId v : values) {
    if (IsPendingQdb(v)) qdb_heap_.push(HeapEntry{LazyPriority(v), v});
  }
}

void DomainSelector::OnQueryCompleted(const QueryOutcome& outcome) {
  queried_coverage_.Union(table_.DomainPostings(outcome.value));
}

double DomainSelector::SmoothedDomainProbability(ValueId v) const {
  double denominator = static_cast<double>(delta_records_) +
                       static_cast<double>(table_.num_domain_records());
  if (denominator == 0.0) return 0.0;
  double numerator =
      static_cast<double>((v < delta_frequency_.size() ? delta_frequency_[v]
                                                       : 0) +
                          table_.DomainFrequency(v));
  return numerator / denominator;
}

double DomainSelector::QueriedDomainCoverage() const {
  return queried_coverage_.Fraction(table_.num_domain_records());
}

double DomainSelector::EstimateMatches(ValueId v) const {
  double p_queried = QueriedDomainCoverage();
  if (p_queried <= 0.0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(store_.num_records()) *
         SmoothedDomainProbability(v) / p_queried;
}

double DomainSelector::EstimateHarvestRateQdb(ValueId v) const {
  uint32_t num_local = store_.LocalFrequency(v);
  double num_estimated = EstimateMatches(v);
  if (std::isinf(num_estimated)) {
    // No evidence yet: optimistically a full fresh page per round.
    return static_cast<double>(page_size_);
  }
  // The value demonstrably matches num_local records even if the
  // estimator disagrees.
  num_estimated = std::max(num_estimated, static_cast<double>(num_local));
  double fresh = num_estimated - static_cast<double>(num_local);
  return fresh / EstimatedCost(num_estimated, page_size_);
}

double DomainSelector::EstimateHarvestRateQdt(ValueId v) const {
  double hit_rate = QdtHitRate();
  double num_estimated = EstimateMatches(v);
  if (std::isinf(num_estimated)) {
    return hit_rate * static_cast<double>(page_size_);
  }
  // If present, every matched record is new (the value was never
  // returned by the target before).
  return hit_rate * num_estimated / EstimatedCost(num_estimated, page_size_);
}

double DomainSelector::QdtHitRate() const {
  if (discovered_values_ == 0) return 1.0;  // optimistic before evidence
  return static_cast<double>(discovered_values_in_dm_) /
         static_cast<double>(discovered_values_);
}

ValueId DomainSelector::SelectNext() {
  // Q_DB head: pop up to a small window of FRESH entries from the lazy
  // heap and score them exactly. The lazy key P(q,DM)/num_local orders
  // candidates approximately (it ignores the ceil() in the cost), so a
  // bounded exact re-check of the heap prefix recovers the true best
  // without a full rescan.
  constexpr int kExactWindow = 8;
  ValueId window[kExactWindow];
  int window_size = 0;
  double best_qdb_rate = -1.0;
  ValueId qdb_head = kInvalidValueId;
  while (window_size < kExactWindow && !qdb_heap_.empty()) {
    HeapEntry top = qdb_heap_.top();
    qdb_heap_.pop();
    if (!IsPendingQdb(top.value)) continue;
    double priority = LazyPriority(top.value);
    if (priority != top.priority) {
      qdb_heap_.push(HeapEntry{priority, top.value});
      continue;
    }
    window[window_size++] = top.value;
    double rate = EstimateHarvestRateQdb(top.value);
    if (rate > best_qdb_rate) {
      best_qdb_rate = rate;
      qdb_head = top.value;
    }
  }

  // Q_DT head: skip values meanwhile discovered in the target or
  // already handed out.
  while (qdt_cursor_ < qdt_order_.size()) {
    ValueId v = qdt_order_[qdt_cursor_];
    EnsureValueCapacity(v);
    if (seen_in_target_[v] || consumed_[v]) {
      ++qdt_cursor_;
      continue;
    }
    break;
  }
  ValueId qdt_head = qdt_cursor_ < qdt_order_.size()
                         ? qdt_order_[qdt_cursor_]
                         : kInvalidValueId;

  if (qdb_head == kInvalidValueId && qdt_head == kInvalidValueId) {
    return kInvalidValueId;
  }

  bool choose_qdb;
  if (qdb_head == kInvalidValueId) {
    choose_qdb = false;
  } else if (qdt_head == kInvalidValueId) {
    choose_qdb = true;
  } else {
    // Cross-pool comparison in expected-new-records-per-round units;
    // ties favour Q_DB, whose candidate is known to exist in the target.
    choose_qdb = best_qdb_rate >= EstimateHarvestRateQdt(qdt_head);
  }

  ValueId chosen = choose_qdb ? qdb_head : qdt_head;
  EnsureValueCapacity(chosen);
  consumed_[chosen] = 1;
  if (choose_qdb) {
    ++num_qdb_selected_;
    qdb_pending_[chosen] = 0;
  } else {
    ++num_qdt_selected_;
    ++qdt_cursor_;
  }
  // Return unchosen window entries to the heap (the chosen one was
  // marked consumed and will be skipped if a stale copy remains).
  for (int i = 0; i < window_size; ++i) {
    if (window[i] != chosen) {
      qdb_heap_.push(HeapEntry{LazyPriority(window[i]), window[i]});
    }
  }
  return chosen;
}

}  // namespace deepcrawl
