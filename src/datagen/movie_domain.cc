#include "src/datagen/movie_domain.h"

#include <cmath>
#include <string>
#include <vector>

#include "src/util/logging.h"
#include "src/util/random.h"
#include "src/util/zipf.h"

namespace deepcrawl {

namespace {

// Attribute layout shared by every table of the pair. "Edition" exists
// only in the target's schema.
struct MovieSchemaIds {
  AttributeId title, actor, director, language, company, year;
};

StatusOr<MovieSchemaIds> AddMovieAttributes(Schema& schema) {
  MovieSchemaIds ids{};
  StatusOr<AttributeId> a = schema.AddAttribute("Title");
  if (!a.ok()) return a.status();
  ids.title = *a;
  a = schema.AddAttribute("Actor", /*multi_valued=*/true);
  if (!a.ok()) return a.status();
  ids.actor = *a;
  a = schema.AddAttribute("Director");
  if (!a.ok()) return a.status();
  ids.director = *a;
  a = schema.AddAttribute("Language");
  if (!a.ok()) return a.status();
  ids.language = *a;
  a = schema.AddAttribute("Company");
  if (!a.ok()) return a.status();
  ids.company = *a;
  a = schema.AddAttribute("ReleaseYear");
  if (!a.ok()) return a.status();
  ids.year = *a;
  return ids;
}

struct MovieDescriptor {
  std::vector<Cell> cells;  // attr ids refer to the shared layout order
  int year = 0;
};

}  // namespace

StatusOr<MovieDomainPair> GenerateMovieDomainPair(
    const MovieDomainPairConfig& config) {
  if (config.universe_size == 0 || config.target_size == 0) {
    return Status::InvalidArgument("universe and target must be non-empty");
  }
  if (config.target_size > config.universe_size) {
    return Status::InvalidArgument("target cannot exceed the universe");
  }
  if (config.min_year >= config.max_year) {
    return Status::InvalidArgument("year range is empty");
  }

  Pcg32 rng(config.seed);
  uint32_t n = config.universe_size;

  // Pool sizes follow the IMDB ratios (actors ~1.25x movies, directors
  // ~0.15x, companies ~0.075x), clamped for tiny configurations.
  uint32_t actor_pool = std::max<uint32_t>(50, n);
  uint32_t director_pool = std::max<uint32_t>(20, n * 3 / 20);
  uint32_t company_pool = std::max<uint32_t>(10, n * 3 / 40);
  uint32_t language_pool = std::max<uint32_t>(6, n / 300);
  // Casts cluster tightly (national/genre film communities): the movie
  // graph restricted to the target's queriable attributes is only
  // weakly connected across communities, which is what stalls pure
  // link-following on the real Amazon target (§4 "data islands",
  // Figure 5's GL plateau).
  uint32_t communities = std::max<uint32_t>(4, n / 200);
  uint32_t edition_pool = std::max<uint32_t>(8, n / 20);
  // Core cast per community: each community's films heavily reuse a
  // handful of leading actors, putting the workhorse query values in the
  // tens-of-records band — retrievable in a few pages when unrestricted,
  // and exactly the band a result-size limit of 50 or 10 truncates
  // (Figure 6's ~20%/~50% productivity cuts).
  constexpr uint32_t kCoreActorsPerCommunity = 5;

  ZipfSampler actor_sampler(actor_pool, 0.9);
  ZipfSampler director_sampler(director_pool, 0.9);
  ZipfSampler company_sampler(company_pool, 1.0);
  ZipfSampler language_sampler(language_pool, 1.2);
  // A thin tier of global stars appears across all communities. Star
  // values are this domain's "hub nodes" (§3.2); they are also what a
  // result-size limit truncates first, which is Figure 6's productivity
  // cut.
  uint32_t star_pool = std::max<uint32_t>(8, n / 200);
  ZipfSampler star_sampler(star_pool, 1.0);

  // --- generate the universe of movie descriptors ----------------------
  std::vector<MovieDescriptor> movies;
  movies.reserve(n);
  int year_span = config.max_year - config.min_year;
  for (uint32_t i = 0; i < n; ++i) {
    MovieDescriptor movie;
    // Release years skew recent: frac = u^0.7 concentrates near 1, which
    // yields roughly the paper's DM(I)/DM(II) population split
    // (~2/3 post-1960, ~45% post-1980).
    double frac = std::pow(rng.NextDouble(), 0.7);
    movie.year = config.min_year +
                 static_cast<int>(frac * static_cast<double>(year_span));
    movie.cells.push_back(
        Cell{/*attr=*/0, "Title#u" + std::to_string(i)});
    uint32_t cast_size = 2 + rng.NextBounded(3);
    uint32_t community = rng.NextBounded(communities);
    uint32_t slice = std::max<uint32_t>(1, actor_pool / communities);
    for (uint32_t c = 0; c < cast_size; ++c) {
      double kind = rng.NextDouble();
      std::string actor;
      if (kind < 0.03) {
        // Global star ("s" namespace): the domain's biggest hubs.
        actor = "Actor#s" + std::to_string(star_sampler.Sample(rng));
      } else if (kind < 0.68) {
        // Community core cast ("c" namespace): mid-frequency hubs.
        actor = "Actor#c" + std::to_string(community) + "_" +
                std::to_string(rng.NextBounded(kCoreActorsPerCommunity));
      } else if (kind < 0.98) {
        // Community tail ("t" namespace): the sparsely-connected many.
        uint32_t index = std::min(
            community * slice + actor_sampler.Sample(rng) % slice,
            actor_pool - 1);
        actor = "Actor#t" + std::to_string(index);
      } else {
        // Guest appearances bridge arbitrary communities (uniform, not
        // popularity-biased: a popularity-biased bridge would funnel
        // every community through a handful of global hubs).
        actor = "Actor#t" + std::to_string(rng.NextBounded(actor_pool));
      }
      movie.cells.push_back(Cell{1, std::move(actor)});
    }
    uint32_t director_slice =
        std::max<uint32_t>(1, director_pool / communities);
    std::string director;
    if (rng.NextBool(0.12)) {
      // Actor-directors: the SAME person text as one of the community's
      // core actors, under the Director attribute. Typed queries see
      // two distinct values; a keyword query (§2.2 "fading schema")
      // bridges both credits. Drawing from the community core (not the
      // global stars) keeps the sharing from becoming a cross-community
      // highway that would erase Figure 5's connectivity structure.
      director = "Actor#c" + std::to_string(community) + "_" +
                 std::to_string(rng.NextBounded(kCoreActorsPerCommunity));
    } else if (rng.NextBool(0.85)) {
      director = "Director#" +
                 std::to_string(std::min(
                     community * director_slice +
                         director_sampler.Sample(rng) % director_slice,
                     director_pool - 1));
    } else {
      director =
          "Director#" + std::to_string(rng.NextBounded(director_pool));
    }
    movie.cells.push_back(Cell{2, std::move(director)});
    movie.cells.push_back(
        Cell{3, "Language#" + std::to_string(language_sampler.Sample(rng))});
    movie.cells.push_back(
        Cell{4, "Company#" + std::to_string(company_sampler.Sample(rng))});
    movie.cells.push_back(Cell{5, "Year#" + std::to_string(movie.year)});
    movies.push_back(std::move(movie));
  }

  // --- target membership: recency-biased Bernoulli ----------------------
  // P(select) proportional to ((year - min) / span)^1.5, scaled so the
  // expected count is target_size.
  double weight_sum = 0.0;
  std::vector<double> weights(n);
  for (uint32_t i = 0; i < n; ++i) {
    double frac = static_cast<double>(movies[i].year - config.min_year) /
                  static_cast<double>(year_span);
    weights[i] = std::pow(frac, 0.7);
    weight_sum += weights[i];
  }
  if (weight_sum <= 0.0) {
    return Status::Internal("degenerate year distribution");
  }
  double scale = static_cast<double>(config.target_size) / weight_sum;

  // --- materialize the four tables --------------------------------------
  Schema universe_schema;
  StatusOr<MovieSchemaIds> universe_ids = AddMovieAttributes(universe_schema);
  if (!universe_ids.ok()) return universe_ids.status();
  Schema dm1_schema;
  DEEPCRAWL_RETURN_IF_ERROR(AddMovieAttributes(dm1_schema).status());
  Schema dm2_schema;
  DEEPCRAWL_RETURN_IF_ERROR(AddMovieAttributes(dm2_schema).status());
  // The crawl target exposes a much narrower query surface than the
  // domain universe, like a retailer's product search next to IMDB's
  // full metadata: only Title / Actor / Director are queriable (plus the
  // retailer-only Edition). Domain-table attributes missing from this
  // schema are skipped by DomainTable::Build, exactly as a crawler
  // cannot type an IMDB "Language" value into Amazon's DVD search.
  Schema target_schema;
  DEEPCRAWL_RETURN_IF_ERROR(target_schema.AddAttribute("Title").status());
  DEEPCRAWL_RETURN_IF_ERROR(
      target_schema.AddAttribute("Actor", /*multi_valued=*/true).status());
  DEEPCRAWL_RETURN_IF_ERROR(target_schema.AddAttribute("Director").status());
  StatusOr<AttributeId> edition_attr = target_schema.AddAttribute("Edition");
  if (!edition_attr.ok()) return edition_attr.status();

  Table universe(std::move(universe_schema));
  Table target(std::move(target_schema));
  Table dm1(std::move(dm1_schema));
  Table dm2(std::move(dm2_schema));

  std::vector<Cell> target_cells;
  for (uint32_t i = 0; i < n; ++i) {
    const MovieDescriptor& movie = movies[i];
    StatusOr<RecordId> added = universe.AddRecord(movie.cells);
    if (!added.ok()) return added.status();
    if (movie.year >= config.dm1_min_year) {
      added = dm1.AddRecord(movie.cells);
      if (!added.ok()) return added.status();
    }
    if (movie.year >= config.dm2_min_year) {
      added = dm2.AddRecord(movie.cells);
      if (!added.ok()) return added.status();
    }
    if (rng.NextBool(std::min(1.0, weights[i] * scale))) {
      // Keep only the target-queriable attributes (Title=0, Actor=1,
      // Director=2 — the same leading ids in both schemas).
      target_cells.clear();
      for (const Cell& cell : movie.cells) {
        if (cell.attr <= 2) target_cells.push_back(cell);
      }
      if (rng.NextBool(config.target_noise_rate)) {
        // DVD editions are retailer-side values no domain table knows
        // (the Delta-DM mass of eq. 4.3). The pool is large enough that
        // editions do not become accidental bridges between communities.
        target_cells.push_back(
            Cell{*edition_attr,
                 "Edition#" + std::to_string(rng.NextBounded(edition_pool))});
      }
      added = target.AddRecord(target_cells);
      if (!added.ok()) return added.status();
    }
  }
  if (target.num_records() < 2) {
    return Status::Internal("target sample came out degenerate; use a "
                            "larger universe or target size");
  }

  MovieDomainPair pair{std::move(universe), std::move(target),
                       std::move(dm1), std::move(dm2)};
  return pair;
}

}  // namespace deepcrawl
