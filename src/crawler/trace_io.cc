#include "src/crawler/trace_io.h"

#include <algorithm>
#include <ostream>
#include <set>

namespace deepcrawl {

Status WriteTraceCsv(const CrawlTrace& trace, std::ostream& output) {
  output << "rounds,records\n";
  for (const TracePoint& point : trace.points()) {
    output << point.rounds << ',' << point.records << '\n';
  }
  if (!output) return Status::Internal("write failed");
  return Status::OK();
}

Status WriteComparisonCsv(const std::vector<NamedTrace>& traces,
                          std::ostream& output) {
  if (traces.empty()) {
    return Status::InvalidArgument("no traces to export");
  }
  output << "rounds";
  for (const NamedTrace& named : traces) {
    if (named.trace == nullptr) {
      return Status::InvalidArgument("null trace '" + named.name + "'");
    }
    output << ',' << named.name;
  }
  output << '\n';

  std::set<uint64_t> rounds;
  for (const NamedTrace& named : traces) {
    for (const TracePoint& point : named.trace->points()) {
      rounds.insert(point.rounds);
    }
  }
  for (uint64_t r : rounds) {
    output << r;
    for (const NamedTrace& named : traces) {
      output << ',' << named.trace->RecordsAtRounds(r);
    }
    output << '\n';
  }
  if (!output) return Status::Internal("write failed");
  return Status::OK();
}

}  // namespace deepcrawl
