// Weighted set cover over records: the corrected offline query plan.
//
// Definition 2.4 formulates optimal query selection as a Weighted
// Minimum Dominating Set of the attribute-value graph. Reproducing it
// surfaced a subtlety the paper glosses over: dominating the VALUE graph
// guarantees every *value* is returned by some query (its dominating
// neighbor co-occurs with it in some record), but a *record* is only
// retrieved when one of ITS OWN values is queried — a record none of
// whose values made the dominating set is never fetched, even though
// each of its values is "dominated" through other records. (Concretely:
// records {a,b} and {a,q} with plan {q} — querying q retrieves {a,q},
// discovering a and b... no: b never appears; {a,b} is lost.)
//
// Full record retrieval is exactly WEIGHTED SET COVER: choose values
// whose posting lists jointly cover all records, minimizing total query
// cost. This module provides the greedy H(n)-approximation with the
// same lazy-heap structure and deterministic tie-breaking as the WMDS
// solver; `bench_domset` reports both plans side by side.

#ifndef DEEPCRAWL_GRAPH_SET_COVER_H_
#define DEEPCRAWL_GRAPH_SET_COVER_H_

#include <vector>

#include "src/graph/dominating_set.h"  // VertexWeightFn
#include "src/index/inverted_index.h"
#include "src/relation/table.h"

namespace deepcrawl {

struct SetCoverResult {
  std::vector<ValueId> values;
  double total_weight = 0.0;
  // Records not coverable by any value (only possible when some record
  // has no values — which Table forbids — so normally zero).
  size_t uncovered_records = 0;
};

// Greedy weighted set cover of `table`'s records by value postings.
SetCoverResult GreedyWeightedSetCover(const Table& table,
                                      const InvertedIndex& index,
                                      const VertexWeightFn& weight);

// True iff querying every value in `values` retrieves every record.
bool IsRecordCover(const Table& table, const InvertedIndex& index,
                   const std::vector<ValueId>& values);

}  // namespace deepcrawl

#endif  // DEEPCRAWL_GRAPH_SET_COVER_H_
