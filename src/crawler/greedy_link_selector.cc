#include "src/crawler/greedy_link_selector.h"

#include <algorithm>

#include "src/util/logging.h"

namespace deepcrawl {

GreedyLinkSelector::GreedyLinkSelector(const LocalStore& store)
    : store_(store) {
  heap_.reserve(1024);
  frontier_.reserve(1024);
}

void GreedyLinkSelector::EnsureCapacity(ValueId v) {
  if (v < frontier_pos_.size()) return;
  size_t new_size = static_cast<size_t>(v) + 1;
  frontier_pos_.resize(new_size, kNoPosition);
  last_pushed_degree_.resize(new_size, kNeverPushed);
}

void GreedyLinkSelector::PushEntry(ValueId v, uint64_t degree) {
  last_pushed_degree_[v] = degree;
  heap_.push_back(HeapEntry{degree, v});
  std::push_heap(heap_.begin(), heap_.end());
  ++heap_pushes_;
}

void GreedyLinkSelector::Push(ValueId v) {
  if (!IsPending(v)) return;
  uint64_t degree = store_.LocalDegree(v);
  // The heap already holds an entry at this exact key; a duplicate
  // cannot change pop order (see header).
  if (degree == last_pushed_degree_[v]) return;
  PushEntry(v, degree);
}

void GreedyLinkSelector::OnValueDiscovered(ValueId v) {
  EnsureCapacity(v);
  DEEPCRAWL_DCHECK(frontier_pos_[v] == kNoPosition) << "value discovered twice";
  frontier_pos_[v] = static_cast<uint32_t>(frontier_.size());
  frontier_.push_back(v);
  PushEntry(v, store_.LocalDegree(v));
}

void GreedyLinkSelector::OnRecordHarvested(uint32_t slot) {
  // Every pending value in the record may have gained links; refresh.
  for (ValueId v : store_.RecordValues(slot)) {
    Push(v);
  }
}

ValueId GreedyLinkSelector::SelectNext() {
  while (!heap_.empty()) {
    HeapEntry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
    if (!IsPending(top.value)) continue;  // already selected earlier
    uint64_t degree = store_.LocalDegree(top.value);
    if (degree != top.degree) continue;  // stale; a fresher entry exists
    MarkNotPending(top.value);
    return top.value;
  }
  return kInvalidValueId;
}

}  // namespace deepcrawl
