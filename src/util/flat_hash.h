// Flat open-addressing hash containers for the crawler's hot paths.
//
// The crawl loop's per-record bookkeeping (edge dedup in the local AVG,
// co-occurrence counters for §3.3's MMMI scores) used to live in
// std::unordered_set / std::unordered_map — one heap node per entry,
// pointer-chasing on every probe. These two containers replace them with
// single flat arrays and linear probing: one cache line per successful
// probe in the common case, amortized-doubling rehash ("epoch" rebuilds),
// no per-entry allocation. Both are deliberately minimal — 64-bit keys
// only, no erase — because that is exactly what the crawl loop needs.
//
// Key convention: 0 is the empty-slot sentinel, so keys must be nonzero.
// Both call sites pack two distinct 32-bit ids into one key
// ((a << 32) | b with a != b), which can never be 0.

#ifndef DEEPCRAWL_UTIL_FLAT_HASH_H_
#define DEEPCRAWL_UTIL_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/util/logging.h"

namespace deepcrawl {

// SplitMix64 finalizer: cheap, well-mixed, and deterministic across
// platforms (the differential tests depend on nothing here, but fixed
// behaviour keeps benchmarks comparable).
inline uint64_t FlatHashMix(uint64_t key) {
  key ^= key >> 30;
  key *= 0xbf58476d1ce4e5b9ull;
  key ^= key >> 27;
  key *= 0x94d049bb133111ebull;
  key ^= key >> 31;
  return key;
}

// Open-addressing set of nonzero 64-bit keys.
class FlatSet64 {
 public:
  FlatSet64() = default;

  // Inserts `key`; returns true when it was not present before.
  bool Insert(uint64_t key) {
    DEEPCRAWL_DCHECK(key != 0) << "0 is the empty-slot sentinel";
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) Grow();
    size_t i = FlatHashMix(key) & mask_;
    while (slots_[i] != 0) {
      if (slots_[i] == key) return false;
      i = (i + 1) & mask_;
    }
    slots_[i] = key;
    ++size_;
    return true;
  }

  bool Contains(uint64_t key) const {
    if (slots_.empty()) return false;
    size_t i = FlatHashMix(key) & mask_;
    while (slots_[i] != 0) {
      if (slots_[i] == key) return true;
      i = (i + 1) & mask_;
    }
    return false;
  }

  size_t size() const { return size_; }

 private:
  void Grow() {
    size_t new_cap = slots_.empty() ? 64 : slots_.size() * 2;
    std::vector<uint64_t> old = std::move(slots_);
    slots_.assign(new_cap, 0);
    mask_ = new_cap - 1;
    for (uint64_t key : old) {
      if (key == 0) continue;
      size_t i = FlatHashMix(key) & mask_;
      while (slots_[i] != 0) i = (i + 1) & mask_;
      slots_[i] = key;
    }
  }

  std::vector<uint64_t> slots_;  // 0 = empty
  size_t mask_ = 0;
  size_t size_ = 0;
};

// Open-addressing map from nonzero 64-bit keys to 32-bit counters.
class FlatMap64 {
 public:
  FlatMap64() = default;

  // Returns a reference to the value slot for `key`, inserting it with
  // value 0 when absent. `inserted` (optional) reports whether the key
  // was new. The reference is invalidated by the next Increment/
  // operator[] call (the table may rehash).
  uint32_t& Slot(uint64_t key, bool* inserted = nullptr) {
    DEEPCRAWL_DCHECK(key != 0) << "0 is the empty-slot sentinel";
    if (keys_.empty() || (size_ + 1) * 4 > keys_.size() * 3) Grow();
    size_t i = FlatHashMix(key) & mask_;
    while (keys_[i] != 0) {
      if (keys_[i] == key) {
        if (inserted != nullptr) *inserted = false;
        return values_[i];
      }
      i = (i + 1) & mask_;
    }
    keys_[i] = key;
    values_[i] = 0;
    ++size_;
    if (inserted != nullptr) *inserted = true;
    return values_[i];
  }

  // Value for `key`, or 0 when absent.
  uint32_t Find(uint64_t key) const {
    if (keys_.empty()) return 0;
    size_t i = FlatHashMix(key) & mask_;
    while (keys_[i] != 0) {
      if (keys_[i] == key) return values_[i];
      i = (i + 1) & mask_;
    }
    return 0;
  }

  size_t size() const { return size_; }

 private:
  void Grow() {
    size_t new_cap = keys_.empty() ? 64 : keys_.size() * 2;
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<uint32_t> old_values = std::move(values_);
    keys_.assign(new_cap, 0);
    values_.assign(new_cap, 0);
    mask_ = new_cap - 1;
    for (size_t j = 0; j < old_keys.size(); ++j) {
      if (old_keys[j] == 0) continue;
      size_t i = FlatHashMix(old_keys[j]) & mask_;
      while (keys_[i] != 0) i = (i + 1) & mask_;
      keys_[i] = old_keys[j];
      values_[i] = old_values[j];
    }
  }

  std::vector<uint64_t> keys_;  // 0 = empty
  std::vector<uint32_t> values_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_UTIL_FLAT_HASH_H_
