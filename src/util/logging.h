// Lightweight logging and invariant-checking macros for deepcrawl.
//
// The library does not use exceptions. Internal invariant violations are
// programming errors and abort the process with a diagnostic; recoverable
// conditions are reported through util::Status instead (see status.h).

#ifndef DEEPCRAWL_UTIL_LOGGING_H_
#define DEEPCRAWL_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace deepcrawl {
namespace internal_logging {

// Accumulates a fatal message and aborts the process when destroyed.
// Used via the CHECK macros below; not intended for direct use.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
            << " ";
  }

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  [[noreturn]] ~FatalMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Swallows a streamed message; used by DCHECK in release builds so the
// expression still type-checks but generates no code.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace deepcrawl

// Aborts with a message if `condition` is false. Always enabled.
#define DEEPCRAWL_CHECK(condition)                                       \
  while (!(condition))                                                   \
  ::deepcrawl::internal_logging::FatalMessage(__FILE__, __LINE__,        \
                                              #condition)                \
      .stream()

#define DEEPCRAWL_CHECK_OP(a, op, b) DEEPCRAWL_CHECK((a)op(b))
#define DEEPCRAWL_CHECK_EQ(a, b) DEEPCRAWL_CHECK_OP(a, ==, b)
#define DEEPCRAWL_CHECK_NE(a, b) DEEPCRAWL_CHECK_OP(a, !=, b)
#define DEEPCRAWL_CHECK_LT(a, b) DEEPCRAWL_CHECK_OP(a, <, b)
#define DEEPCRAWL_CHECK_LE(a, b) DEEPCRAWL_CHECK_OP(a, <=, b)
#define DEEPCRAWL_CHECK_GT(a, b) DEEPCRAWL_CHECK_OP(a, >, b)
#define DEEPCRAWL_CHECK_GE(a, b) DEEPCRAWL_CHECK_OP(a, >=, b)

// Debug-only check: compiled out in NDEBUG builds.
#ifdef NDEBUG
#define DEEPCRAWL_DCHECK(condition) \
  while (false && (condition)) ::deepcrawl::internal_logging::NullStream()
#else
#define DEEPCRAWL_DCHECK(condition) DEEPCRAWL_CHECK(condition)
#endif

#endif  // DEEPCRAWL_UTIL_LOGGING_H_
