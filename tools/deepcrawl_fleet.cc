// deepcrawl_fleet — multi-source fleet crawl driver (DESIGN.md §11).
//
// Builds a heterogeneous fleet of N simulated sources (cycling the
// paper's four canned workloads), crawls them under one global budget
// with per-source fault isolation — circuit breakers, token-bucket
// politeness, retry-after floors — and reports each source's
// degradation explicitly.
//
// Examples:
//   # 8 sources, marginal-harvest scheduling, 90% coverage targets.
//   deepcrawl_fleet --sources=8 --scale=0.01 --target-coverage=0.9
//
//   # Same fleet under scripted chaos: source 1 dies at turn 6 forever,
//   # source 2 flaps, source 3 gets rate-limit storms.
//   deepcrawl_fleet --sources=8 --target-coverage=0.9 --chaos=hostile
//
//   # Custom chaos windows (kind:sources@begin[-end]; end exclusive,
//   # omitted = forever).
//   deepcrawl_fleet --sources=4 --chaos='dead:1@6;ratelimit:2,3@10-30'
//
//   # Checkpoint every turn; resume bit-identically after a crash.
//   deepcrawl_fleet --sources=8 --chaos=hostile ...
//       --checkpoint=fleet.ckpt --checkpoint-every=1
//   deepcrawl_fleet --sources=8 --chaos=hostile ...
//       --resume-from=fleet.ckpt --checkpoint=fleet.ckpt ...
//       --checkpoint-every=1

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/fleet/chaos.h"
#include "src/fleet/crawl_fleet.h"
#include "src/server/faulty_server.h"
#include "src/util/flags.h"
#include "src/util/table_printer.h"

namespace deepcrawl {
namespace {

struct Options {
  int64_t sources = 4;
  double scale = 0.01;
  int64_t gen_seed = 1;
  std::string policy = "greedy";
  std::string scheduler = "marginal-hr";
  int64_t threads = 1;
  int64_t batch = 1;
  int64_t latency_us = 0;
  double target_coverage = 0.9;
  double saturation = 0.85;
  int64_t num_seeds = 1;
  int64_t seed = 1;

  std::string fault_profile = "none";
  int64_t fault_retry_after = 4;
  int64_t retry_attempts = 4;
  int64_t retry_requeues = 2;
  std::string chaos;

  int64_t max_rounds = 0;
  int64_t turn_rounds = 16;
  int64_t source_deadline = 0;

  std::string checkpoint;
  int64_t checkpoint_every = 0;
  std::string resume_from;
  std::string trace_csv;

  bool help = false;
};

StatusOr<FaultProfile> BuildFaultProfile(const Options& options) {
  FaultProfile profile;
  if (options.fault_profile == "flaky") {
    profile.unavailable_rate = 0.05;
    profile.timeout_rate = 0.03;
    profile.rate_limit_rate = 0.02;
  } else if (options.fault_profile == "lossy") {
    profile.truncate_rate = 0.05;
    profile.duplicate_rate = 0.05;
  } else if (options.fault_profile == "hostile") {
    profile.unavailable_rate = 0.10;
    profile.timeout_rate = 0.05;
    profile.rate_limit_rate = 0.05;
    profile.truncate_rate = 0.05;
    profile.duplicate_rate = 0.02;
  } else if (options.fault_profile != "none") {
    return Status::InvalidArgument("unknown --fault-profile '" +
                                   options.fault_profile +
                                   "' (none|flaky|lossy|hostile)");
  }
  profile.retry_after_rounds =
      static_cast<uint32_t>(options.fault_retry_after);
  return profile;
}

Status Run(const Options& options) {
  if (options.sources < 1) {
    return Status::InvalidArgument("--sources must be >= 1");
  }
  if (options.threads < 1 || options.batch < 1) {
    return Status::InvalidArgument("--threads and --batch must be >= 1");
  }
  uint32_t num_sources = static_cast<uint32_t>(options.sources);

  DEEPCRAWL_ASSIGN_OR_RETURN(FaultProfile profile,
                             BuildFaultProfile(options));
  DEEPCRAWL_ASSIGN_OR_RETURN(
      std::vector<FleetSourceSpec> specs,
      MakeFleetSourceSpecs(num_sources, options.scale,
                           options.target_coverage, profile,
                           static_cast<uint64_t>(options.gen_seed)));
  uint64_t fleet_target = 0;
  for (FleetSourceSpec& spec : specs) {
    spec.policy = options.policy;
    spec.saturation = options.saturation;
    spec.num_seeds = static_cast<uint32_t>(options.num_seeds);
    fleet_target += static_cast<uint64_t>(
        options.target_coverage *
        static_cast<double>(spec.table.num_records()));
  }

  FleetOptions fleet_options;
  fleet_options.seed = static_cast<uint64_t>(options.seed);
  DEEPCRAWL_ASSIGN_OR_RETURN(fleet_options.scheduler,
                             ParseSchedulerPolicy(options.scheduler));
  fleet_options.threads = static_cast<uint32_t>(options.threads);
  fleet_options.batch = static_cast<uint32_t>(options.batch);
  fleet_options.latency_us = static_cast<uint64_t>(options.latency_us);
  fleet_options.turn_rounds = static_cast<uint64_t>(options.turn_rounds);
  fleet_options.max_total_rounds =
      static_cast<uint64_t>(options.max_rounds);
  fleet_options.source_deadline_rounds =
      static_cast<uint64_t>(options.source_deadline);
  fleet_options.retry.max_attempts =
      static_cast<uint32_t>(options.retry_attempts);
  fleet_options.retry.max_requeues =
      static_cast<uint32_t>(options.retry_requeues);
  if (!options.chaos.empty()) {
    DEEPCRAWL_ASSIGN_OR_RETURN(
        fleet_options.chaos,
        ParseChaosSchedule(options.chaos, num_sources));
  }
  if (options.checkpoint_every < 0) {
    return Status::InvalidArgument("--checkpoint-every must be >= 0");
  }
  if (options.checkpoint_every > 0 && options.checkpoint.empty()) {
    return Status::InvalidArgument(
        "--checkpoint-every needs --checkpoint=<path>");
  }
  fleet_options.checkpoint_every_turns =
      static_cast<uint64_t>(options.checkpoint_every);
  if (options.checkpoint_every > 0) {
    fleet_options.checkpoint_sink =
        [path = options.checkpoint](const CrawlFleet& fleet) {
          return SaveFleetCheckpoint(fleet, path);
        };
  }

  CrawlFleet fleet(std::move(specs), fleet_options);
  std::cout << "fleet: " << num_sources << " sources, scheduler "
            << SchedulerPolicyToString(fleet_options.scheduler)
            << ", threads " << options.threads << ", chaos events "
            << fleet_options.chaos.size() << "\n";
  if (!options.resume_from.empty()) {
    DEEPCRAWL_RETURN_IF_ERROR(
        LoadFleetCheckpoint(options.resume_from, fleet));
    std::cout << "resumed from " << options.resume_from << ": "
              << fleet.total_records() << " records, "
              << fleet.total_rounds() << " rounds, "
              << fleet.turns_completed() << " turns\n";
  }

  DEEPCRAWL_ASSIGN_OR_RETURN(FleetResult result, fleet.Run());

  TablePrinter table({"source", "state", "records", "missing", "rounds",
                      "turns", "trips", "quarantine"});
  for (const FleetSourceOutcome& outcome : result.sources) {
    const SourceDegradation& d = outcome.degradation;
    std::string state = d.finished     ? "finished"
                        : d.abandoned  ? "abandoned"
                        : d.quarantined ? "quarantined"
                                        : "budget";
    if (!outcome.error.ok()) state = "failed";
    table.AddRow(
        {d.name, state, std::to_string(d.records_harvested),
         std::to_string(d.records_missing), std::to_string(d.rounds),
         std::to_string(d.turns),
         std::to_string(d.breaker.opens + d.breaker.reopens),
         std::to_string(d.ticks_quarantined) + " ticks"});
  }
  table.Print(std::cout);

  double coverage =
      fleet_target == 0
          ? 0.0
          : static_cast<double>(result.merged.records) /
                static_cast<double>(fleet_target);
  std::cout << "\nmerged: " << result.merged.records << " records ("
            << TablePrinter::FormatPercent(coverage, 1)
            << " of fleet target), " << result.merged.rounds << " rounds, "
            << result.turns << " turns, " << result.idle_ticks
            << " idle ticks\n";
  const ResilienceCounters& res = result.merged.resilience;
  std::cout << "resilience: " << res.transient_failures << " failures, "
            << res.retries << " retries, " << res.rate_limit_rejections
            << " rate-limited, " << res.abandoned_values
            << " values abandoned\n";

  if (!options.trace_csv.empty()) {
    std::ofstream file(options.trace_csv);
    if (!file) {
      return Status::NotFound("cannot create '" + options.trace_csv + "'");
    }
    DEEPCRAWL_RETURN_IF_ERROR(WriteFleetTraceCsv(result, file));
    std::cout << "trace written to: " << options.trace_csv << "\n";
  }
  return Status::OK();
}

}  // namespace
}  // namespace deepcrawl

int main(int argc, char** argv) {
  using namespace deepcrawl;
  Options options;
  FlagParser parser;
  parser.AddInt64("sources", &options.sources,
                  "number of simulated sources (cycles ebay/acm/dblp/imdb)");
  parser.AddDouble("scale", &options.scale,
                   "workload scale factor (1.0 = paper sizes)");
  parser.AddInt64("gen-seed", &options.gen_seed,
                  "base generator seed (offset per source)");
  parser.AddString("policy", &options.policy,
                   "per-source query selection: greedy|mmmi|bfs|dfs");
  parser.AddString("scheduler", &options.scheduler,
                   "turn scheduler: marginal-hr|round-robin|sequential");
  parser.AddInt64("threads", &options.threads,
                  "shared fetch pool threads (wall-clock only)");
  parser.AddInt64("batch", &options.batch,
                  "per-source engine wave width");
  parser.AddInt64("latency-us", &options.latency_us,
                  "simulated per-fetch latency in microseconds");
  parser.AddDouble("target-coverage", &options.target_coverage,
                   "per-source stop target as a fraction of its records");
  parser.AddDouble("saturation", &options.saturation,
                   "coverage at which MMMI switches on");
  parser.AddInt64("seeds", &options.num_seeds,
                  "seed values planted per source");
  parser.AddInt64("seed", &options.seed,
                  "fleet seed (per-source fault/retry streams derive "
                  "from it)");
  parser.AddString("fault-profile", &options.fault_profile,
                   "background fault preset on every source: "
                   "none|flaky|lossy|hostile");
  parser.AddInt64("fault-retry-after", &options.fault_retry_after,
                  "retry-after hint (rounds) on rate-limit rejections");
  parser.AddInt64("retry-attempts", &options.retry_attempts,
                  "max fetch attempts per value drain");
  parser.AddInt64("retry-requeues", &options.retry_requeues,
                  "times a failed value is re-queued before abandonment");
  parser.AddString("chaos", &options.chaos,
                   "scripted fault windows: 'hostile' or "
                   "'kind:src[,src...]@begin[-end];...' with kinds "
                   "dead|timeout|ratelimit (turn numbers, end exclusive)");
  parser.AddInt64("max-rounds", &options.max_rounds,
                  "global communication-round budget (0 = unbounded)");
  parser.AddInt64("turn-rounds", &options.turn_rounds,
                  "rounds granted per scheduler turn");
  parser.AddInt64("source-deadline", &options.source_deadline,
                  "per-source total round deadline (0 = unbounded)");
  parser.AddString("checkpoint", &options.checkpoint,
                   "write a resumable whole-fleet checkpoint here");
  parser.AddInt64("checkpoint-every", &options.checkpoint_every,
                  "checkpoint after every N completed turns "
                  "(0 = never; needs --checkpoint)");
  parser.AddString("resume-from", &options.resume_from,
                   "resume the fleet from this checkpoint (other flags "
                   "must rebuild the same fleet)");
  parser.AddString("trace-csv", &options.trace_csv,
                   "write the per-source rounds/records trace CSV here");
  parser.AddBool("help", &options.help, "print this help");

  Status parsed = parser.Parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << "error: " << parsed.ToString() << "\n\nflags:\n"
              << parser.HelpText();
    return 2;
  }
  if (options.help) {
    std::cout << "deepcrawl_fleet — fault-isolated multi-source fleet "
                 "crawling\n\nflags:\n"
              << parser.HelpText();
    return 0;
  }
  Status status = Run(options);
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
