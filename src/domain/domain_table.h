// DomainTable: the domain statistics table DT of Definition 4.1.
//
// Built offline from a sample database of the same domain (e.g. IMDB
// when the crawl target is the Amazon DVD catalog), the table holds one
// entry <qi, P(qi, DM)> per candidate query: the probability that qi
// matches a record of the domain sample. It also retains the sample's
// posting lists, which the §4.4 incremental coverage computation
// (CoverageSet) consumes.
//
// Value identity: the crawler addresses queries by the TARGET server's
// ValueId space. Build() therefore maps every sample value into the
// target catalog by (attribute name, text), interning values the target
// has never returned. Interning is pure naming — it does not reveal
// whether the target database matches the value; a query on a
// DT-only value still costs a communication round to find out, exactly
// like submitting an IMDB-derived actor name to Amazon.

#ifndef DEEPCRAWL_DOMAIN_DOMAIN_TABLE_H_
#define DEEPCRAWL_DOMAIN_DOMAIN_TABLE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/relation/table.h"
#include "src/relation/types.h"
#include "src/util/status.h"

namespace deepcrawl {

class DomainTable {
 public:
  // Builds the table from `sample`, interning value texts into
  // `target_catalog` (the catalog of the crawl target's server table) so
  // every DT entry is addressable as a target-space ValueId. Attributes
  // are matched by name; sample attributes missing from
  // `target_schema` are skipped (the target cannot be queried on them).
  static DomainTable Build(const Table& sample, const Schema& target_schema,
                           ValueCatalog& target_catalog);

  // Number of records in the domain sample, |DM|.
  size_t num_domain_records() const { return num_domain_records_; }

  size_t num_entries() const { return values_.size(); }

  bool Contains(ValueId target_value) const {
    return entry_of_.count(target_value) != 0;
  }

  // num(qi, DM): domain-sample records matched by the value.
  uint32_t DomainFrequency(ValueId target_value) const;

  // P(qi, DM) = num(qi, DM) / |DM| (unsmoothed; §4.2's Delta-smoothing
  // lives in the selector, which owns the Delta-DM statistics).
  double Probability(ValueId target_value) const;

  // Sorted domain-sample record ids matched by the value; empty when the
  // value is not in the table.
  std::span<const uint32_t> DomainPostings(ValueId target_value) const;

  // All DT entries as target-space value ids (unspecified order).
  const std::vector<ValueId>& values() const { return values_; }

 private:
  size_t num_domain_records_ = 0;
  std::vector<ValueId> values_;
  std::unordered_map<ValueId, uint32_t> entry_of_;  // value -> entry index
  // Postings CSR over entry indices.
  std::vector<uint32_t> postings_;
  std::vector<size_t> offsets_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_DOMAIN_DOMAIN_TABLE_H_
