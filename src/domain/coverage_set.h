// CoverageSet: incremental maintenance of P(Lqueried, DM) (§4.4).
//
// The §4.2 estimator divides by P(Lqueried[1..m], DM) — the fraction of
// domain-sample records matched by at least one already-issued query.
// Recomputing it from scratch per selection step is quadratic; the paper
// instead keeps S(Lqueried[1..m], DM) as a sorted list of record IDs and
// folds in each newly issued query by merging its sorted posting list
// with duplicate elimination. This class is that sorted-list union.

#ifndef DEEPCRAWL_DOMAIN_COVERAGE_SET_H_
#define DEEPCRAWL_DOMAIN_COVERAGE_SET_H_

#include <cstdint>
#include <span>
#include <vector>

namespace deepcrawl {

class CoverageSet {
 public:
  CoverageSet() = default;

  // Merges a sorted, duplicate-free id list into the covered set.
  // O(|covered| + |ids|).
  void Union(std::span<const uint32_t> ids);

  size_t size() const { return covered_.size(); }
  bool Contains(uint32_t id) const;

  // size() / universe — P(Lqueried, DM) when the universe is |DM|.
  double Fraction(size_t universe_size) const;

  const std::vector<uint32_t>& covered() const { return covered_; }

 private:
  std::vector<uint32_t> covered_;  // sorted, duplicate-free
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_DOMAIN_COVERAGE_SET_H_
