#include "src/crawler/paged_store.h"

#include <dirent.h>
#include <sys/stat.h>

#include <cstdio>
#include <unordered_set>
#include <utility>

#include "src/util/checkpoint_io.h"
#include "src/util/flat_hash.h"
#include "src/util/logging.h"

namespace deepcrawl {

namespace {

// Every file the store may create starts with one of these, so sweeps
// never touch foreign files (a crawl checkpoint parked in the same
// directory, editor droppings, ...).
constexpr const char* kStorePrefixes[] = {
    "recvals.", "recoff.",  "recid.",  "recobs.", "freq.",
    "link.",    "postdata.", "postdir.", "adjdata.", "adjdir.",
    "idmap.",   "edges.",   "MANIFEST.",
};

bool HasStorePrefix(const std::string& name) {
  for (const char* prefix : kStorePrefixes) {
    if (name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

std::string ManifestName(uint64_t stamp) {
  return "MANIFEST." + std::to_string(stamp);
}

}  // namespace

// Linear-probing hash segment with generation-file growth. A rehash
// opens `<base>.g<gen+1>`, reinserts every live slot, and hands the
// old generation's on-disk files back for deferred deletion.
struct PagedStore::PagedHash {
  PageCache* cache = nullptr;
  std::string dir;
  std::string base;
  uint32_t page_bytes = 0;
  uint64_t slots_per_page = 0;
  uint64_t gen = 0;
  uint64_t num_pages = 1;
  uint64_t capacity = 0;
  uint64_t size = 0;
  std::unique_ptr<PagedFile> file;
  uint32_t file_id = 0;
  PagedArray<HashSlot> arr;

  void Create(PageCache* c, const std::string& d, std::string b,
              uint32_t pb) {
    cache = c;
    dir = d;
    base = std::move(b);
    page_bytes = pb;
    slots_per_page = pb / sizeof(HashSlot);
    gen = 0;
    num_pages = 1;
    size = 0;
    OpenGeneration();
  }

  void OpenGeneration() {
    capacity = num_pages * slots_per_page;
    file = std::make_unique<PagedFile>(dir, base + ".g" + std::to_string(gen),
                                       page_bytes);
    file->EnsurePages(num_pages);
    file_id = cache->RegisterFile(file.get());
    arr = PagedArray<HashSlot>(cache, file.get(), file_id);
  }

  bool Lookup(uint64_t key, uint32_t* value) const {
    uint64_t mask = capacity - 1;
    uint64_t i = FlatHashMix(key) & mask;
    while (true) {
      HashSlot s = arr.Get(i);
      if (s.key == 0) return false;
      if (s.key == key) {
        *value = s.value;
        return true;
      }
      i = (i + 1) & mask;
    }
  }

  // Returns {stored value, inserted}; grows (possibly retiring the
  // current generation into `retired`) at 3/4 load, matching the
  // in-memory flat hashes.
  std::pair<uint32_t, bool> TryInsert(uint64_t key, uint32_t value,
                                      std::vector<std::string>* retired) {
    DEEPCRAWL_DCHECK(key != 0) << "0 is the empty-slot sentinel";
    if ((size + 1) * 4 > capacity * 3) Grow(retired);
    uint64_t mask = capacity - 1;
    uint64_t i = FlatHashMix(key) & mask;
    while (true) {
      HashSlot s = arr.Get(i);
      if (s.key == 0) {
        arr.Set(i, HashSlot{key, value, 0});
        ++size;
        return {value, true};
      }
      if (s.key == key) return {s.value, false};
      i = (i + 1) & mask;
    }
  }

  void Grow(std::vector<std::string>* retired) {
    std::unique_ptr<PagedFile> old_file = std::move(file);
    uint32_t old_id = file_id;
    PagedArray<HashSlot> old_arr = arr;
    uint64_t old_capacity = capacity;
    ++gen;
    num_pages *= 2;
    OpenGeneration();
    uint64_t mask = capacity - 1;
    for (uint64_t j = 0; j < old_capacity; ++j) {
      HashSlot s = old_arr.Get(j);
      if (s.key == 0) continue;
      uint64_t i = FlatHashMix(s.key) & mask;
      while (arr.Get(i).key != 0) i = (i + 1) & mask;
      arr.Set(i, s);
    }
    // Drop (not flush) the old generation's frames first, so no
    // writeback can create a fresh epoch file after we snapshot the
    // retired-path list.
    cache->UnregisterFile(old_id);
    old_file->AppendOnDiskPaths(*retired);
    old_file.reset();
  }

  void AppendMeta(CheckpointWriter& w) const {
    w.WriteU64(gen);
    w.WriteU64(num_pages);
    w.WriteU64(size);
    file->AppendMeta(w);
  }

  Status LoadMeta(CheckpointReader& r) {
    uint64_t loaded_gen = r.ReadU64();
    uint64_t loaded_pages = r.ReadU64();
    uint64_t loaded_size = r.ReadU64();
    if (!r.ok()) return r.status();
    if (loaded_pages == 0 || (loaded_pages & (loaded_pages - 1)) != 0) {
      r.MarkCorrupt("hash segment '" + base +
                    "' page count is not a power of two");
      return r.status();
    }
    cache->UnregisterFile(file_id);
    gen = loaded_gen;
    num_pages = loaded_pages;
    OpenGeneration();
    Status status = file->LoadMeta(r);
    if (!status.ok()) return status;
    if (file->num_pages() > num_pages || loaded_size > capacity) {
      r.MarkCorrupt("hash segment '" + base +
                    "' metadata exceeds its capacity");
      return r.status();
    }
    file->EnsurePages(num_pages);
    size = loaded_size;
    return Status::OK();
  }
};

// The cache plus every segment file; rebuilt wholesale on load so a
// resumed store shares no state with the pre-load instance.
struct PagedStore::Impl {
  PageCache cache;
  std::unique_ptr<PagedFile> recvals_f, recoff_f, recid_f, recobs_f, freq_f,
      link_f, postdata_f, postdir_f, adjdata_f, adjdir_f;
  PagedArray<uint32_t> recvals;
  PagedArray<uint64_t> recoff;
  PagedArray<uint32_t> recid;
  PagedArray<uint32_t> recobs;
  PagedArray<uint32_t> freq;
  PagedArray<uint64_t> link;
  PagedArray<uint32_t> postdata;
  PagedArray<RowMeta> postdir;
  PagedArray<uint32_t> adjdata;
  PagedArray<RowMeta> adjdir;
  PagedHash idmap;
  PagedHash edges;

  explicit Impl(const Options& o) : cache(o.page_bytes, o.cache_pages) {
    auto open_u32 = [&](std::unique_ptr<PagedFile>& f, const char* name) {
      f = std::make_unique<PagedFile>(o.dir, name, o.page_bytes);
      return PagedArray<uint32_t>(&cache, f.get(), cache.RegisterFile(f.get()));
    };
    auto open_u64 = [&](std::unique_ptr<PagedFile>& f, const char* name) {
      f = std::make_unique<PagedFile>(o.dir, name, o.page_bytes);
      return PagedArray<uint64_t>(&cache, f.get(), cache.RegisterFile(f.get()));
    };
    auto open_row = [&](std::unique_ptr<PagedFile>& f, const char* name) {
      f = std::make_unique<PagedFile>(o.dir, name, o.page_bytes);
      return PagedArray<RowMeta>(&cache, f.get(), cache.RegisterFile(f.get()));
    };
    recvals = open_u32(recvals_f, "recvals");
    recoff = open_u64(recoff_f, "recoff");
    recid = open_u32(recid_f, "recid");
    recobs = open_u32(recobs_f, "recobs");
    freq = open_u32(freq_f, "freq");
    link = open_u64(link_f, "link");
    postdata = open_u32(postdata_f, "postdata");
    postdir = open_row(postdir_f, "postdir");
    adjdata = open_u32(adjdata_f, "adjdata");
    adjdir = open_row(adjdir_f, "adjdir");
    idmap.Create(&cache, o.dir, "idmap", o.page_bytes);
    edges.Create(&cache, o.dir, "edges", o.page_bytes);
  }

  std::vector<PagedFile*> AllFiles() {
    return {recvals_f.get(),  recoff_f.get(), recid_f.get(),  recobs_f.get(),
            freq_f.get(),     link_f.get(),   postdata_f.get(),
            postdir_f.get(),  adjdata_f.get(), adjdir_f.get(),
            idmap.file.get(), edges.file.get()};
  }
};

PagedStore::PagedStore(const Options& options) : options_(options) {
  DEEPCRAWL_CHECK(!options_.dir.empty()) << "paged store needs a directory";
  DEEPCRAWL_CHECK(options_.page_bytes >= 64 &&
                  (options_.page_bytes & (options_.page_bytes - 1)) == 0)
      << "--page-bytes must be a power of two >= 64, got "
      << options_.page_bytes;
  DEEPCRAWL_CHECK(options_.cache_pages >= 1) << "--cache-pages must be >= 1";
  ::mkdir(options_.dir.c_str(), 0755);  // EEXIST is fine
  ResetImpl();
  if (!options_.resume) {
    Status status = SweepDirectory({});
    DEEPCRAWL_CHECK(status.ok())
        << "cannot initialize paged store: " << status.message();
  }
}

PagedStore::~PagedStore() = default;

void PagedStore::ResetImpl() { impl_ = std::make_unique<Impl>(options_); }

const PageCacheStats& PagedStore::cache_stats() const {
  return impl_->cache.stats();
}

Status PagedStore::SweepDirectory(
    const std::vector<std::string>& expected) const {
  std::unordered_set<std::string> keep(expected.begin(), expected.end());
  DIR* dir = ::opendir(options_.dir.c_str());
  if (dir == nullptr) {
    return Status::NotFound("cannot open store directory '" + options_.dir +
                            "'");
  }
  std::vector<std::string> doomed;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (keep.count(name) != 0) continue;
    if (HasStorePrefix(name)) doomed.push_back(name);
  }
  ::closedir(dir);
  for (const std::string& name : doomed) {
    std::remove((options_.dir + "/" + name).c_str());
  }
  return Status::OK();
}

void PagedStore::MoveRange(PagedArray<uint32_t>& data, uint64_t from,
                           uint64_t to, uint64_t count) {
  uint32_t buf[512];
  while (count > 0) {
    uint64_t n = std::min<uint64_t>(count, 512);
    data.Load(from, buf, n);
    data.Store(to, buf, n);
    from += n;
    to += n;
    count -= n;
  }
}

void PagedStore::ArenaAppend(PagedArray<uint32_t>& data,
                             PagedArray<RowMeta>& dir, uint64_t& tail,
                             uint64_t row, uint32_t value) {
  RowMeta meta = dir.Get(row);
  if (meta.size == meta.capacity) {
    uint32_t new_capacity = meta.capacity == 0 ? 4 : meta.capacity * 2;
    uint64_t new_offset = tail;
    tail += new_capacity;
    if (meta.size > 0) MoveRange(data, meta.offset, new_offset, meta.size);
    meta.offset = new_offset;
    meta.capacity = new_capacity;
  }
  data.Set(meta.offset + meta.size, value);
  ++meta.size;
  dir.Set(row, meta);
}

bool PagedStore::AddRecord(RecordId id, std::span<const ValueId> values) {
  DEEPCRAWL_CHECK(!values.empty()) << "harvested record has no values";
  uint32_t slot = static_cast<uint32_t>(num_records_);
  std::vector<std::string> retired;
  auto [unused, inserted] =
      impl_->idmap.TryInsert(static_cast<uint64_t>(id) + 1, slot, &retired);
  (void)unused;
  if (!retired.empty()) {
    retired_.push_back(Retired{last_stamp_ + 2, std::move(retired)});
  }
  if (!inserted) return false;

  impl_->recvals.Store(recvals_size_, values.data(), values.size());
  recvals_size_ += values.size();
  impl_->recoff.Set(slot + 1, recvals_size_);
  impl_->recid.Set(slot, id);
  impl_->recobs.Set(slot, 1);
  ++num_records_;
  ++num_observations_;

  for (ValueId v : values) {
    if (static_cast<uint64_t>(v) + 1 > num_values_) {
      num_values_ = static_cast<uint64_t>(v) + 1;
    }
    impl_->freq.Set(v, impl_->freq.Get(v) + 1);
    ArenaAppend(impl_->postdata, impl_->postdir, post_tail_, v, slot);
    impl_->link.Set(v, impl_->link.Get(v) + values.size() - 1);
  }
  if (options_.exact_degrees) {
    for (size_t i = 0; i + 1 < values.size(); ++i) {
      for (size_t j = i + 1; j < values.size(); ++j) {
        ValueId a = values[i];
        ValueId b = values[j];
        if (a == b) continue;
        ValueId lo = a < b ? a : b;
        ValueId hi = a < b ? b : a;
        uint64_t key = (static_cast<uint64_t>(lo) << 32) | hi;
        std::vector<std::string> edge_retired;
        auto [eunused, fresh] = impl_->edges.TryInsert(key, 1, &edge_retired);
        (void)eunused;
        if (!edge_retired.empty()) {
          retired_.push_back(Retired{last_stamp_ + 2, std::move(edge_retired)});
        }
        if (fresh) {
          ArenaAppend(impl_->adjdata, impl_->adjdir, adj_tail_, a, b);
          ArenaAppend(impl_->adjdata, impl_->adjdir, adj_tail_, b, a);
        }
      }
    }
  }
  return true;
}

bool PagedStore::ContainsRecord(RecordId id) const {
  uint32_t slot = 0;
  return impl_->idmap.Lookup(static_cast<uint64_t>(id) + 1, &slot);
}

void PagedStore::ObserveDuplicate(RecordId id) {
  uint32_t slot = 0;
  DEEPCRAWL_CHECK(impl_->idmap.Lookup(static_cast<uint64_t>(id) + 1, &slot))
      << "duplicate observation of a record never added";
  impl_->recobs.Set(slot, impl_->recobs.Get(slot) + 1);
  ++num_observations_;
}

void PagedStore::RestoreObservations(RecordId id, uint32_t count) {
  DEEPCRAWL_CHECK_GE(count, 1u);
  uint32_t slot = 0;
  DEEPCRAWL_CHECK(impl_->idmap.Lookup(static_cast<uint64_t>(id) + 1, &slot))
      << "restoring observations of a record never added";
  uint32_t stored = impl_->recobs.Get(slot);
  num_observations_ += count;
  num_observations_ -= stored;
  impl_->recobs.Set(slot, count);
}

size_t PagedStore::RecordsObservedTimes(uint32_t k) const {
  DEEPCRAWL_CHECK_GE(k, 1u);
  size_t count = 0;
  uint32_t buf[1024];
  uint64_t i = 0;
  while (i < num_records_) {
    uint64_t n = std::min<uint64_t>(1024, num_records_ - i);
    impl_->recobs.Load(i, buf, n);
    for (uint64_t j = 0; j < n; ++j) {
      if (buf[j] == k) ++count;
    }
    i += n;
  }
  return count;
}

uint32_t PagedStore::LocalFrequency(ValueId v) const {
  if (v >= num_values_) return 0;
  return impl_->freq.Get(v);
}

uint64_t PagedStore::LocalDegree(ValueId v) const {
  if (v >= num_values_) return 0;
  if (options_.exact_degrees) return impl_->adjdir.Get(v).size;
  return impl_->link.Get(v);
}

RecordId PagedStore::OriginalRecordId(uint32_t slot) const {
  DEEPCRAWL_CHECK_LT(slot, num_records_) << "local record slot out of range";
  return impl_->recid.Get(slot);
}

uint32_t PagedStore::ObservationCount(uint32_t slot) const {
  DEEPCRAWL_CHECK_LT(slot, num_records_) << "local record slot out of range";
  return impl_->recobs.Get(slot);
}

void PagedStore::CopyNeighbors(ValueId v, std::vector<ValueId>& out) const {
  out.clear();
  if (!options_.exact_degrees || v >= num_values_) return;
  RowMeta meta = impl_->adjdir.Get(v);
  out.resize(meta.size);
  if (meta.size > 0) impl_->adjdata.Load(meta.offset, out.data(), meta.size);
}

void PagedStore::CopyPostings(ValueId v, std::vector<uint32_t>& out) const {
  out.clear();
  if (v >= num_values_) return;
  RowMeta meta = impl_->postdir.Get(v);
  out.resize(meta.size);
  if (meta.size > 0) impl_->postdata.Load(meta.offset, out.data(), meta.size);
}

void PagedStore::CopyRecordValues(uint32_t slot,
                                  std::vector<ValueId>& out) const {
  DEEPCRAWL_CHECK_LT(slot, num_records_) << "local record slot out of range";
  uint64_t begin = impl_->recoff.Get(slot);
  uint64_t end = impl_->recoff.Get(slot + 1);
  out.resize(end - begin);
  if (end > begin) impl_->recvals.Load(begin, out.data(), end - begin);
}

StatusOr<uint64_t> PagedStore::Checkpoint() {
  uint64_t stamp = last_stamp_ + 1;
  // Retired generations scheduled for this stamp (or earlier) are no
  // longer reachable from any loadable manifest — delete them now.
  {
    std::vector<Retired> still_pending;
    for (Retired& r : retired_) {
      if (r.delete_at <= stamp) {
        for (const std::string& path : r.paths) std::remove(path.c_str());
      } else {
        still_pending.push_back(std::move(r));
      }
    }
    retired_ = std::move(still_pending);
  }
  Status status = impl_->cache.FlushAll();
  if (!status.ok()) return status;
  std::vector<PagedFile*> files = impl_->AllFiles();
  for (PagedFile* file : files) {
    status = file->SyncPending();
    if (!status.ok()) return status;
  }
  CheckpointWriter w;
  w.WriteU32(options_.page_bytes);
  w.WriteU8(options_.exact_degrees ? 1 : 0);
  w.WriteU64(num_records_);
  w.WriteU64(num_observations_);
  w.WriteU64(num_values_);
  w.WriteU64(recvals_size_);
  w.WriteU64(post_tail_);
  w.WriteU64(adj_tail_);
  // The ten fixed segments; the two hash segments write their own
  // meta (generation + size + file table) below. AllFiles() orders
  // the hash files last.
  for (size_t i = 0; i + 2 < files.size(); ++i) files[i]->AppendMeta(w);
  impl_->idmap.AppendMeta(w);
  impl_->edges.AppendMeta(w);
  std::string framed = FrameCheckpoint(w.buffer(), kPagedManifestVersion);
  status =
      WriteFileAtomic(options_.dir + "/" + ManifestName(stamp), framed);
  if (!status.ok()) return status;
  for (PagedFile* file : files) file->CommitDurable();
  if (stamp >= 3) {
    std::remove((options_.dir + "/" + ManifestName(stamp - 2)).c_str());
  }
  last_stamp_ = stamp;
  return stamp;
}

Status PagedStore::LoadCheckpoint(uint64_t stamp) {
  if (stamp == 0) {
    return Status::InvalidArgument("paged store manifest stamp 0 is invalid");
  }
  StatusOr<std::string> bytes =
      ReadFileBytes(options_.dir + "/" + ManifestName(stamp));
  if (!bytes.ok()) return bytes.status();
  StatusOr<std::string_view> payload =
      UnframeCheckpoint(*bytes, kPagedManifestVersion);
  if (!payload.ok()) return payload.status();
  CheckpointReader r(*payload);
  uint32_t page_bytes = r.ReadU32();
  uint8_t exact = r.ReadU8();
  uint64_t num_records = r.ReadU64();
  uint64_t num_observations = r.ReadU64();
  uint64_t num_values = r.ReadU64();
  uint64_t recvals_size = r.ReadU64();
  uint64_t post_tail = r.ReadU64();
  uint64_t adj_tail = r.ReadU64();
  if (!r.ok()) return r.status();
  if (page_bytes != options_.page_bytes) {
    return Status::InvalidArgument(
        "paged store manifest was written with --page-bytes=" +
        std::to_string(page_bytes) + " but the store was opened with " +
        std::to_string(options_.page_bytes));
  }
  if ((exact != 0) != options_.exact_degrees) {
    return Status::InvalidArgument(
        "paged store manifest exact-degrees mode does not match the "
        "store options");
  }
  ResetImpl();
  // Order matches Checkpoint(): the ten fixed segments, then the two
  // hash segments (whose LoadMeta re-opens the recorded generation).
  std::vector<PagedFile*> files = impl_->AllFiles();
  for (size_t i = 0; i + 2 < files.size(); ++i) {
    Status status = files[i]->LoadMeta(r);
    if (!status.ok()) return status;
  }
  Status status = impl_->idmap.LoadMeta(r);
  if (!status.ok()) return status;
  status = impl_->edges.LoadMeta(r);
  if (!status.ok()) return status;
  if (!r.ok()) return r.status();
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        "corrupt paged store manifest: trailing bytes");
  }
  num_records_ = num_records;
  num_observations_ = num_observations;
  num_values_ = num_values;
  recvals_size_ = recvals_size;
  post_tail_ = post_tail;
  adj_tail_ = adj_tail;
  last_stamp_ = stamp;
  retired_.clear();
  // Sweep crash leftovers: every store file this manifest does not
  // reference (newer epochs, newer manifests, stale temp files, old
  // hash generations) is garbage.
  std::vector<std::string> expected;
  expected.push_back(ManifestName(stamp));
  files = impl_->AllFiles();
  for (PagedFile* file : files) file->AppendCurrentFileNames(expected);
  status = SweepDirectory(expected);
  if (!status.ok()) return status;
  // Recovery scrub: read back every page now so a corrupt frame is a
  // clean load-time error, not an abort mid-crawl.
  std::vector<char> buf(options_.page_bytes);
  for (PagedFile* file : files) {
    for (uint64_t page = 0; page < file->num_pages(); ++page) {
      status = file->ReadPage(page, buf.data());
      if (!status.ok()) return status;
    }
  }
  return Status::OK();
}

}  // namespace deepcrawl
