// Status / StatusOr: exception-free error propagation (RocksDB idiom).
//
// Library functions that can fail return a Status, or a StatusOr<T> when
// they also produce a value. Callers must inspect ok() before using the
// value; dereferencing a non-OK StatusOr aborts.

#ifndef DEEPCRAWL_UTIL_STATUS_H_
#define DEEPCRAWL_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/util/logging.h"

namespace deepcrawl {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kAlreadyExists,
  kResourceExhausted,
  kInternal,
};

// Converts a status code to its canonical lowercase name, e.g.
// "invalid_argument".
const char* StatusCodeToString(StatusCode code);

// Value-type holding either success (OK) or an error code plus message.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Holds either a value of type T or a non-OK Status explaining why the
// value is absent.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so functions can `return value;` or
  // `return Status::...;` directly, matching absl/RocksDB usage.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    DEEPCRAWL_CHECK(!status_.ok())
        << "StatusOr constructed from OK status without a value";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DEEPCRAWL_CHECK(ok()) << "value() on error StatusOr: "
                          << status_.ToString();
    return *value_;
  }
  T& value() & {
    DEEPCRAWL_CHECK(ok()) << "value() on error StatusOr: "
                          << status_.ToString();
    return *value_;
  }
  T&& value() && {
    DEEPCRAWL_CHECK(ok()) << "value() on error StatusOr: "
                          << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace deepcrawl

// Evaluates `expr` (a Status expression); returns it from the enclosing
// function if it is not OK.
#define DEEPCRAWL_RETURN_IF_ERROR(expr)                   \
  do {                                                    \
    ::deepcrawl::Status _status = (expr);                 \
    if (!_status.ok()) return _status;                    \
  } while (false)

#endif  // DEEPCRAWL_UTIL_STATUS_H_
