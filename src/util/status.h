// Status / StatusOr: exception-free error propagation (RocksDB idiom).
//
// Library functions that can fail return a Status, or a StatusOr<T> when
// they also produce a value. Callers must inspect ok() before using the
// value; dereferencing a non-OK StatusOr aborts.

#ifndef DEEPCRAWL_UTIL_STATUS_H_
#define DEEPCRAWL_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/util/logging.h"

namespace deepcrawl {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kAlreadyExists,
  kResourceExhausted,
  kInternal,
  // Transient failures of a remote source (see src/server/faulty_server.h):
  // the source could not be reached / refused service right now.
  kUnavailable,
  // The source accepted the request but the (simulated) deadline expired
  // before the page arrived.
  kDeadlineExceeded,
};

// Converts a status code to its canonical lowercase name, e.g.
// "invalid_argument".
const char* StatusCodeToString(StatusCode code);

// Value-type holding either success (OK) or an error code plus message.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Retry-after hint in simulated communication rounds, the way an HTTP
  // 429 carries a Retry-After header. Attached by rate-limiting sources;
  // honored by RetryPolicy as a lower bound on the backoff.
  Status WithRetryAfter(uint32_t rounds) const {
    Status copy = *this;
    copy.retry_after_rounds_ = rounds;
    return copy;
  }
  std::optional<uint32_t> retry_after_rounds() const {
    return retry_after_rounds_;
  }

  // "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
  std::optional<uint32_t> retry_after_rounds_;
};

// Holds either a value of type T or a non-OK Status explaining why the
// value is absent.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so functions can `return value;` or
  // `return Status::...;` directly, matching absl/RocksDB usage.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    DEEPCRAWL_CHECK(!status_.ok())
        << "StatusOr constructed from OK status without a value";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DEEPCRAWL_CHECK(ok()) << "value() on error StatusOr: "
                          << status_.ToString();
    return *value_;
  }
  T& value() & {
    DEEPCRAWL_CHECK(ok()) << "value() on error StatusOr: "
                          << status_.ToString();
    return *value_;
  }
  T&& value() && {
    DEEPCRAWL_CHECK(ok()) << "value() on error StatusOr: "
                          << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace deepcrawl

// Evaluates `expr` (a Status expression); returns it from the enclosing
// function if it is not OK.
#define DEEPCRAWL_RETURN_IF_ERROR(expr)                   \
  do {                                                    \
    ::deepcrawl::Status _status = (expr);                 \
    if (!_status.ok()) return _status;                    \
  } while (false)

// Evaluates `expr` (a StatusOr<T> expression); on error returns the
// status from the enclosing function, otherwise moves the value into
// `lhs`, which may be a declaration:
//   DEEPCRAWL_ASSIGN_OR_RETURN(Table table, ReadTableTsvFile(path));
#define DEEPCRAWL_ASSIGN_OR_RETURN(lhs, expr)           \
  DEEPCRAWL_ASSIGN_OR_RETURN_IMPL_(                     \
      DEEPCRAWL_STATUS_CONCAT_(_status_or_, __LINE__), lhs, expr)

#define DEEPCRAWL_STATUS_CONCAT_(a, b) DEEPCRAWL_STATUS_CONCAT_IMPL_(a, b)
#define DEEPCRAWL_STATUS_CONCAT_IMPL_(a, b) a##b
#define DEEPCRAWL_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                                     \
  if (!var.ok()) return var.status();                    \
  lhs = std::move(var).value()

#endif  // DEEPCRAWL_UTIL_STATUS_H_
