// Engineering micro-benchmarks (google-benchmark): throughput of the
// core operations every experiment leans on — index probes, AVG
// construction, local-store ingestion, selector steps, coverage-set
// unions. No paper counterpart; used to keep the substrate honest.
//
// Two modes:
//   * default: the google-benchmark suite below (interactive tuning);
//   * --json=<path>: a fixed hand-timed regression suite that emits
//     BENCH_micro.json for tools/bench_compare.py — the check.sh perf
//     pass fails on >20% regression against the committed baseline.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/crawler/crawl_engine.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/local_store.h"
#include "src/datagen/canned_workloads.h"
#include "src/domain/coverage_set.h"
#include "src/graph/attribute_value_graph.h"
#include "src/index/inverted_index.h"
#include "src/server/web_db_server.h"
#include "src/util/random.h"

namespace deepcrawl {
namespace {

const Table& SharedEbay() {
  static Table* table = [] {
    StatusOr<Table> generated = GenerateTable(EbayConfig(0.1, 5));
    DEEPCRAWL_CHECK(generated.ok());
    return new Table(std::move(*generated));
  }();
  return *table;
}

void BM_InvertedIndexBuild(benchmark::State& state) {
  const Table& table = SharedEbay();
  for (auto _ : state) {
    InvertedIndex index(table);
    benchmark::DoNotOptimize(index.total_postings());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(table.num_records()));
}
BENCHMARK(BM_InvertedIndexBuild);

void BM_IndexProbe(benchmark::State& state) {
  const Table& table = SharedEbay();
  InvertedIndex index(table);
  Pcg32 rng(7);
  uint64_t sink = 0;
  for (auto _ : state) {
    ValueId v = rng.NextBounded(
        static_cast<uint32_t>(table.num_distinct_values()));
    sink += index.MatchCount(v);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_IndexProbe);

void BM_AvgBuild(benchmark::State& state) {
  const Table& table = SharedEbay();
  for (auto _ : state) {
    AttributeValueGraph graph = AttributeValueGraph::Build(table);
    benchmark::DoNotOptimize(graph.num_edges());
  }
}
BENCHMARK(BM_AvgBuild);

void BM_LocalStoreIngest(benchmark::State& state) {
  const Table& table = SharedEbay();
  bool exact = state.range(0) != 0;
  for (auto _ : state) {
    LocalStore::Options options;
    options.exact_degrees = exact;
    LocalStore store(options);
    for (RecordId r = 0; r < table.num_records(); ++r) {
      store.AddRecord(r, table.record(r));
    }
    benchmark::DoNotOptimize(store.num_records());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(table.num_records()));
}
BENCHMARK(BM_LocalStoreIngest)->Arg(1)->Arg(0);

void BM_GreedyCrawlTo50Percent(benchmark::State& state) {
  const Table& table = SharedEbay();
  WebDbServer server(table, ServerOptions{});
  for (auto _ : state) {
    LocalStore store;
    GreedyLinkSelector selector(store);
    CrawlOptions options;
    options.target_records = table.num_records() / 2;
    server.ResetMeters();
    CrawlEngine engine(server, selector, store, options);
    engine.AddSeed(1);
    StatusOr<CrawlResult> result = engine.Run();
    DEEPCRAWL_CHECK(result.ok());
    benchmark::DoNotOptimize(result->rounds);
  }
}
BENCHMARK(BM_GreedyCrawlTo50Percent);

void BM_CoverageSetUnion(benchmark::State& state) {
  Pcg32 rng(3);
  std::vector<std::vector<uint32_t>> batches;
  for (int i = 0; i < 200; ++i) {
    std::vector<uint32_t> batch;
    for (int j = 0; j < 500; ++j) batch.push_back(rng.NextBounded(100000));
    std::sort(batch.begin(), batch.end());
    batch.erase(std::unique(batch.begin(), batch.end()), batch.end());
    batches.push_back(std::move(batch));
  }
  for (auto _ : state) {
    CoverageSet set;
    for (const auto& batch : batches) set.Union(batch);
    benchmark::DoNotOptimize(set.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 200);
}
BENCHMARK(BM_CoverageSetUnion);

// --- --json regression suite (hand-timed, fixed configuration) -------

uint64_t IngestOnce(const Table& table, bool exact) {
  LocalStore::Options options;
  options.exact_degrees = exact;
  LocalStore store(options);
  for (RecordId r = 0; r < table.num_records(); ++r) {
    store.AddRecord(r, table.record(r));
  }
  return store.num_records();
}

uint64_t CrawlLoopOnce(WebDbServer& server, const Table& table) {
  LocalStore store;
  GreedyLinkSelector selector(store);
  CrawlOptions options;
  options.target_records = table.num_records() / 2;
  server.ResetMeters();
  CrawlEngine engine(server, selector, store, options);
  engine.AddSeed(1);
  StatusOr<CrawlResult> result = engine.Run();
  DEEPCRAWL_CHECK(result.ok());
  return result->records;
}

int RunJsonSuite(const std::string& json_path) {
  const Table& table = SharedEbay();
  bench::BenchJson json("micro");

  // LocalStore ingest, exact distinct-neighbor degrees (the CSR
  // adjacency + flat edge-hash path).
  double exact_s = bench::BestWallSeconds([&] { IngestOnce(table, true); });
  json.Add("ingest_exact_rps",
           static_cast<double>(table.num_records()) / exact_s, "records/s",
           /*higher_is_better=*/true);

  // LocalStore ingest, link-count proxy degrees.
  double proxy_s = bench::BestWallSeconds([&] { IngestOnce(table, false); });
  json.Add("ingest_proxy_rps",
           static_cast<double>(table.num_records()) / proxy_s, "records/s",
           /*higher_is_better=*/true);

  // End-to-end crawl loop: greedy-link to 50% coverage against the
  // in-process simulator — selector heap, frontier, store and server
  // all on the measured path. "ops" = records harvested.
  WebDbServer server(table, ServerOptions{});
  uint64_t crawl_records = CrawlLoopOnce(server, table);
  double crawl_s =
      bench::BestWallSeconds([&] { CrawlLoopOnce(server, table); });
  json.Add("crawl_loop_rps", static_cast<double>(crawl_records) / crawl_s,
           "records/s", /*higher_is_better=*/true);

  json.WriteFile(json_path);
  return 0;
}

}  // namespace
}  // namespace deepcrawl

int main(int argc, char** argv) {
  std::string json_path = deepcrawl::bench::JsonPathFromArgs(argc, argv);
  if (!json_path.empty()) {
    return deepcrawl::RunJsonSuite(json_path);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
