#include "src/util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace deepcrawl {
namespace {

TEST(Pcg32Test, DeterministicForFixedSeed) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(Pcg32Test, DifferentSeedsDiffer) {
  Pcg32 a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.NextU32() != b.NextU32()) ++differing;
  }
  EXPECT_GT(differing, 24);
}

TEST(Pcg32Test, DifferentStreamsDiffer) {
  Pcg32 a(1, 10), b(1, 11);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.NextU32() != b.NextU32()) ++differing;
  }
  EXPECT_GT(differing, 24);
}

TEST(Pcg32Test, NextBoundedStaysInBounds) {
  Pcg32 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(Pcg32Test, NextBoundedIsRoughlyUniform) {
  Pcg32 rng(99);
  constexpr uint32_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (uint32_t b = 0; b < kBuckets; ++b) {
    // Expected 10000 per bucket; allow 10% slack.
    EXPECT_NEAR(counts[b], kDraws / kBuckets, kDraws / kBuckets / 10.0);
  }
}

TEST(Pcg32Test, NextDoubleInUnitInterval) {
  Pcg32 rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Pcg32Test, NextBoolMatchesProbability) {
  Pcg32 rng(21);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Pcg32Test, NextInRangeInclusiveBounds) {
  Pcg32 rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t x = rng.NextInRange(-2, 2);
    ASSERT_GE(x, -2);
    ASSERT_LE(x, 2);
    if (x == -2) saw_lo = true;
    if (x == 2) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Pcg32Test, ShufflePreservesElements) {
  Pcg32 rng(17);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, items);
}

TEST(Pcg32Test, SampleWithoutReplacementIsDistinctAndInRange) {
  Pcg32 rng(31);
  std::vector<uint32_t> sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<uint32_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 30u);
  for (uint32_t s : sample) EXPECT_LT(s, 100u);
}

TEST(Pcg32Test, SampleWholePopulation) {
  Pcg32 rng(31);
  std::vector<uint32_t> sample = rng.SampleWithoutReplacement(12, 12);
  std::set<uint32_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 12u);
}

}  // namespace
}  // namespace deepcrawl
