# Empty compiler generated dependencies file for marginal_harvest.
# This may be replaced when dependencies are built.
