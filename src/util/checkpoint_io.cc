#include "src/util/checkpoint_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>

namespace deepcrawl {

namespace {

constexpr char kMagic[4] = {'D', 'C', 'P', 'K'};
constexpr size_t kHeaderSize = 4 + 4 + 8;  // magic + version + payload size
constexpr size_t kFooterSize = 8;          // checksum

}  // namespace

void CheckpointWriter::WriteU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void CheckpointWriter::WriteU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void CheckpointWriter::WriteDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void CheckpointWriter::WriteString(std::string_view text) {
  WriteU32(static_cast<uint32_t>(text.size()));
  buffer_.append(text.data(), text.size());
}

bool CheckpointReader::Require(size_t bytes) {
  if (!ok()) return false;
  if (remaining() < bytes) {
    MarkCorrupt("unexpected end of checkpoint data");
    return false;
  }
  return true;
}

uint8_t CheckpointReader::ReadU8() {
  if (!Require(1)) return 0;
  return static_cast<uint8_t>(data_[pos_++]);
}

uint32_t CheckpointReader::ReadU32() {
  if (!Require(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

uint64_t CheckpointReader::ReadU64() {
  if (!Require(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double CheckpointReader::ReadDouble() {
  uint64_t bits = ReadU64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string CheckpointReader::ReadString() {
  uint32_t size = ReadU32();
  if (!Require(size)) return std::string();
  std::string text(data_.substr(pos_, size));
  pos_ += size;
  return text;
}

uint64_t CheckpointReader::ReadCount(size_t elem_size) {
  uint64_t count = ReadU64();
  if (!ok()) return 0;
  if (elem_size == 0 || count > remaining() / elem_size) {
    MarkCorrupt("element count exceeds remaining checkpoint data");
    return 0;
  }
  return count;
}

void CheckpointReader::MarkCorrupt(std::string reason) {
  if (error_.empty()) error_ = std::move(reason);
}

Status CheckpointReader::status() const {
  if (ok()) return Status::OK();
  return Status::InvalidArgument("corrupt checkpoint: " + error_);
}

uint64_t CheckpointChecksum(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string FrameCheckpoint(std::string_view payload, uint32_t version) {
  CheckpointWriter w;
  std::string framed;
  framed.reserve(kHeaderSize + payload.size() + kFooterSize);
  framed.append(kMagic, sizeof(kMagic));
  w.WriteU32(version);
  w.WriteU64(payload.size());
  framed.append(w.buffer());
  framed.append(payload.data(), payload.size());
  CheckpointWriter footer;
  footer.WriteU64(CheckpointChecksum(payload));
  framed.append(footer.buffer());
  return framed;
}

StatusOr<std::string_view> UnframeCheckpoint(std::string_view image,
                                             uint32_t expected_version) {
  if (image.size() < kHeaderSize + kFooterSize) {
    return Status::InvalidArgument(
        "corrupt checkpoint: file too short to hold a checkpoint header");
  }
  if (std::memcmp(image.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(
        "corrupt checkpoint: bad magic (not a crawl checkpoint file)");
  }
  CheckpointReader header(image.substr(4, kHeaderSize - 4));
  uint32_t version = header.ReadU32();
  uint64_t payload_size = header.ReadU64();
  if (version != expected_version) {
    return Status::InvalidArgument(
        "checkpoint format version mismatch: file has version " +
        std::to_string(version) + ", this build reads version " +
        std::to_string(expected_version));
  }
  if (payload_size != image.size() - kHeaderSize - kFooterSize) {
    return Status::InvalidArgument(
        "corrupt checkpoint: payload size field does not match file size "
        "(truncated or padded file)");
  }
  std::string_view payload = image.substr(kHeaderSize, payload_size);
  CheckpointReader footer(image.substr(kHeaderSize + payload_size));
  uint64_t stored = footer.ReadU64();
  if (stored != CheckpointChecksum(payload)) {
    return Status::InvalidArgument(
        "corrupt checkpoint: payload checksum mismatch");
  }
  return payload;
}

Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) return Status::NotFound("cannot create '" + tmp + "'");
    file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!file) {
      return Status::Internal("write failed for '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename '" + tmp + "' to '" + path + "'");
  }
  return Status::OK();
}

StatusOr<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot open '" + path + "'");
  std::string bytes((std::istreambuf_iterator<char>(file)),
                    std::istreambuf_iterator<char>());
  if (file.bad()) return Status::Internal("read failed for '" + path + "'");
  return bytes;
}

}  // namespace deepcrawl
