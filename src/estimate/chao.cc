#include "src/estimate/chao.h"

namespace deepcrawl {

ChaoEstimate Chao1Estimate(const LocalStore& store) {
  ChaoEstimate estimate;
  estimate.observed_records = store.num_records();
  estimate.observations = store.num_observations();
  estimate.singletons = store.RecordsObservedTimes(1);
  estimate.doubletons = store.RecordsObservedTimes(2);

  double f1 = static_cast<double>(estimate.singletons);
  double f2 = static_cast<double>(estimate.doubletons);
  // Bias-corrected Chao1: defined for f2 == 0 as well.
  estimate.estimated_total =
      static_cast<double>(estimate.observed_records) +
      f1 * (f1 - 1.0) / (2.0 * (f2 + 1.0));
  if (estimate.estimated_total > 0.0) {
    estimate.estimated_coverage =
        static_cast<double>(estimate.observed_records) /
        estimate.estimated_total;
  }
  return estimate;
}

}  // namespace deepcrawl
