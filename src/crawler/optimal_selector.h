// Competitive-optimal query selection (Sheng et al., "Optimal
// Algorithms for Crawling a Hidden Database in the Web", PVLDB 2012;
// PAPERS.md, arXiv 1208.0075).
//
// The paper's GL/MMMI/DM selectors are greedy heuristics with no
// worst-case guarantee: adversarial databases exist on which degree
// ranking pays ω(OPT) queries (src/datagen/adversarial_workload.h
// constructs them). Sheng et al. study the same hidden-database model —
// each query returns at most `result_limit` matching records — and give
// algorithms whose total query cost is within a constant factor of the
// information-theoretic optimum OPT >= ceil(n / result_limit), by
// descending a hierarchy of nested ranges over an *ordered* interface
// attribute instead of ranking harvested values.
//
// Adaptation to this repo's equality-query model: the ordered attribute
// is materialized as interval values `r<lo>-<hi>` over rank buckets
// (every record carries its full dyadic ancestor chain), so "query the
// range [lo, hi]" is an ordinary single-attribute equality query and
// the unmodified WebDbServer/CrawlEngine substrate applies. The
// `QueryHierarchy` is parsed once from the target catalog — this is the
// interface knowledge Sheng's model grants the crawler (it knows the
// searchable rank domain a priori), exactly as the oracle/domain
// selectors are granted their side tables.
//
// Two variants, mirroring the paper's count/no-count split:
//
//   * opt-rank (`OptimalMode::kRank`): assumes the server reports total
//     match counts. A node overflows when count > result_limit; the
//     descent then broadens to its children, RIGHT child first —
//     retrieval is lowest-rank-first, so the parent's retrieved prefix
//     covers the left child, and by the time the left sibling is
//     popped, count arithmetic (implied count == records already held
//     locally) often proves it fully covered and SKIPS the query.
//   * opt-threshold (`OptimalMode::kThreshold`): count-free. A node is
//     treated as overflowing whenever it returned result_limit records
//     (the threshold test) — it may cost one extra level of descent on
//     exactly-full nodes but needs nothing beyond the records
//     themselves.
//
// Values outside the hierarchy (discovered from result pages the usual
// way) fall back to the inherited greedy-link frontier, so the selector
// degrades gracefully on targets with no rank attribute and can drain
// stragglers after the descent completes. Degraded/aborted drains are
// conservatively treated as overflowing, so records lost to faults are
// re-covered by the children — the competitive property suite proves
// the bound holds under the flaky fault profile too.
//
// Guarantee (proven empirically by
// tests/crawler_optimal_competitive_property_test.cc): on instances
// whose buckets hold at most result_limit records, every hierarchy node
// is queried at most once, so cost <= 2B - 1 < 2 * OPT when OPT = B
// buckets — while greedy degree ranking pays Θ(decoys) = ω(OPT) on the
// adversarial family.

#ifndef DEEPCRAWL_CRAWLER_OPTIMAL_SELECTOR_H_
#define DEEPCRAWL_CRAWLER_OPTIMAL_SELECTOR_H_

#include <cstdint>
#include <deque>
#include <span>
#include <string_view>
#include <vector>

#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/local_store.h"
#include "src/crawler/query_selector.h"
#include "src/relation/types.h"
#include "src/relation/value_catalog.h"
#include "src/util/status.h"

namespace deepcrawl {

// Parses `r<lo>-<hi>` interval texts on one attribute into a containment
// forest. `lo`/`hi` are inclusive bucket indices; a value is a child of
// the tightest interval strictly containing it. Intervals must nest
// (partial overlap is rejected); catalog values on the attribute that do
// not parse as intervals are simply not part of the hierarchy.
class QueryHierarchy {
 public:
  static constexpr uint32_t kNoNode = UINT32_MAX;

  struct Node {
    ValueId value = kInvalidValueId;
    uint32_t lo = 0;
    uint32_t hi = 0;
    uint32_t parent = kNoNode;
    // Children sorted ascending by lo (left to right).
    std::vector<uint32_t> children;
  };

  QueryHierarchy() = default;

  // Builds the hierarchy from every parseable interval value of
  // `rank_attribute`. An invalid attribute id (or one with no interval
  // values) yields an empty hierarchy — the selector then behaves as
  // plain greedy-link. Overlapping (non-nested) intervals are an error.
  static StatusOr<QueryHierarchy> FromCatalog(const ValueCatalog& catalog,
                                              AttributeId rank_attribute);

  // Parses one `r<lo>-<hi>` text. Returns false when `text` is not an
  // interval (exposed for datagen/tests).
  static bool ParseInterval(std::string_view text, uint32_t& lo,
                            uint32_t& hi);

  bool empty() const { return nodes_.empty(); }
  size_t num_nodes() const { return nodes_.size(); }
  const Node& node(uint32_t idx) const { return nodes_[idx]; }
  std::span<const uint32_t> roots() const { return roots_; }

  // Node index holding `v`, or kNoNode when `v` is not a hierarchy value.
  uint32_t NodeOf(ValueId v) const {
    return v < node_of_.size() ? node_of_[v] : kNoNode;
  }

  // FNV-1a over the forest structure; checkpoints verify it so a resume
  // against a different hierarchy is rejected, not silently wrong.
  uint64_t Fingerprint() const;

 private:
  std::vector<Node> nodes_;
  std::vector<uint32_t> roots_;
  std::vector<uint32_t> node_of_;  // by ValueId; kNoNode = not in forest
};

enum class OptimalMode : uint8_t {
  kRank,       // count-based overflow + count-arithmetic skipping
  kThreshold,  // count-free threshold test, broad-first
};

struct OptimalSelectorOptions {
  OptimalMode mode = OptimalMode::kRank;
  // Must mirror ServerOptions::result_limit (0 = unlimited: nothing ever
  // overflows and the root query retrieves the whole database).
  uint32_t result_limit = 0;
};

class RankOptimalSelector : public GreedyLinkSelector {
 public:
  // `store` as for GreedyLinkSelector; the hierarchy is owned by the
  // selector (copy it per crawl, like the per-run LocalStore).
  RankOptimalSelector(const LocalStore& store, QueryHierarchy hierarchy,
                      OptimalSelectorOptions options = {});

  void OnValueDiscovered(ValueId v) override;
  void OnQueryCompleted(const QueryOutcome& outcome) override;
  ValueId SelectNext() override;
  std::string_view name() const override {
    return options_.mode == OptimalMode::kRank ? "opt-rank"
                                               : "opt-threshold";
  }
  // The descent issues hierarchy values the crawl may not have seen on
  // any result page yet (interface knowledge); the engine marks them
  // seen at issue time.
  bool MaySelectUndiscovered() const override { return true; }

  // Checkpointing: base greedy state, an options + hierarchy fingerprint
  // (verified on load), per-node status/count arrays, the descent queue,
  // and the diagnostics counters — the SELC section round-trips the full
  // descent mid-crawl.
  Status SaveState(CheckpointWriter& writer) const override;
  Status LoadState(CheckpointReader& reader, ValueId value_bound) override;

  const QueryHierarchy& hierarchy() const { return hierarchy_; }

  // Diagnostics for tests and bench_optimal.
  uint64_t descent_queries() const { return descended_; }
  uint64_t skipped_by_count() const { return skipped_; }
  uint64_t resolved_nodes() const { return resolved_; }
  uint64_t overflowed_nodes() const { return overflowed_; }
  uint64_t fallback_selects() const { return fallback_selects_; }

 private:
  enum class NodeStatus : uint8_t {
    kUnvisited = 0,  // not yet reached by the descent
    kQueued = 1,     // waiting in the descent queue
    kIssued = 2,     // handed to the engine, drain in flight
    kResolved = 3,   // query completed
    kSkipped = 4,    // proven fully covered by count arithmetic
  };

  // True when `outcome` proves (or cannot rule out) records beyond the
  // retrievable window, so the node's children must be queried.
  bool Overflowed(const QueryOutcome& outcome) const;
  // kRank count arithmetic: parent and sibling counts imply this node's
  // count; when the implied count is zero or already fully held in the
  // local store, the query is provably redundant. Records the implied
  // count on success.
  bool TrySkip(uint32_t node_idx);

  QueryHierarchy hierarchy_;
  OptimalSelectorOptions options_;
  std::vector<NodeStatus> status_;    // by node index
  std::vector<uint8_t> has_count_;    // by node index
  std::vector<uint32_t> count_;       // by node index; valid iff has_count_
  // Broad-first descent queue of node indices; children are enqueued
  // right-before-left so count arithmetic can prove left siblings
  // redundant (see file comment).
  std::deque<uint32_t> descent_;
  uint64_t descended_ = 0;
  uint64_t skipped_ = 0;
  uint64_t resolved_ = 0;
  uint64_t overflowed_ = 0;
  uint64_t fallback_selects_ = 0;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_CRAWLER_OPTIMAL_SELECTOR_H_
