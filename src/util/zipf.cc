#include "src/util/zipf.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace deepcrawl {

ZipfSampler::ZipfSampler(uint32_t num_items, double exponent)
    : exponent_(exponent) {
  DEEPCRAWL_CHECK_GT(num_items, 0u) << "ZipfSampler needs at least one item";
  DEEPCRAWL_CHECK_GE(exponent, 0.0) << "Zipf exponent must be non-negative";
  cdf_.resize(num_items);
  double total = 0.0;
  for (uint32_t i = 0; i < num_items; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i) + 1.0, exponent);
    cdf_[i] = total;
  }
  for (uint32_t i = 0; i < num_items; ++i) cdf_[i] /= total;
  cdf_.back() = 1.0;  // guard against floating-point shortfall
}

uint32_t ZipfSampler::Sample(Pcg32& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint32_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(uint32_t i) const {
  DEEPCRAWL_CHECK_LT(i, cdf_.size());
  if (i == 0) return cdf_[0];
  return cdf_[i] - cdf_[i - 1];
}

namespace {
// Generalized harmonic helper terms for the rejection-inversion method.
double HIntegral(double x, double s) {
  // Integral of 1/x^s: for s == 1 it is log(x); otherwise x^(1-s)/(1-s).
  if (s == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
}

double HIntegralInverse(double x, double s) {
  if (s == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s), 1.0 / (1.0 - s));
}
}  // namespace

FastZipfSampler::FastZipfSampler(uint64_t num_items, double exponent)
    : n_(num_items), s_(exponent) {
  DEEPCRAWL_CHECK_GT(num_items, 0ull);
  DEEPCRAWL_CHECK_GT(exponent, 0.0)
      << "FastZipfSampler requires a positive exponent";
  h_x1_ = HIntegral(1.5, s_) - 1.0;
  h_n_ = HIntegral(static_cast<double>(n_) + 0.5, s_);
  t_ = 2.0 - HIntegralInverse(HIntegral(2.5, s_) - std::pow(2.0, -s_), s_);
}

double FastZipfSampler::H(double x) const { return HIntegral(x, s_); }

double FastZipfSampler::HInverse(double x) const {
  return HIntegralInverse(x, s_);
}

uint64_t FastZipfSampler::Sample(Pcg32& rng) const {
  // Rejection-inversion sampling (Hormann & Derflinger, 1996).
  for (;;) {
    double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    double kd = static_cast<double>(k);
    if (kd - x <= t_ ||
        u >= H(kd + 0.5) - std::exp(-std::log(kd) * s_)) {
      return k - 1;  // convert to 0-based rank
    }
  }
}

}  // namespace deepcrawl
