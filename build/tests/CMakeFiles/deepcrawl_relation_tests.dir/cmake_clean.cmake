file(REMOVE_RECURSE
  "CMakeFiles/deepcrawl_relation_tests.dir/index_inverted_index_test.cc.o"
  "CMakeFiles/deepcrawl_relation_tests.dir/index_inverted_index_test.cc.o.d"
  "CMakeFiles/deepcrawl_relation_tests.dir/relation_test.cc.o"
  "CMakeFiles/deepcrawl_relation_tests.dir/relation_test.cc.o.d"
  "CMakeFiles/deepcrawl_relation_tests.dir/relation_tsv_fuzz_test.cc.o"
  "CMakeFiles/deepcrawl_relation_tests.dir/relation_tsv_fuzz_test.cc.o.d"
  "CMakeFiles/deepcrawl_relation_tests.dir/relation_tsv_test.cc.o"
  "CMakeFiles/deepcrawl_relation_tests.dir/relation_tsv_test.cc.o.d"
  "deepcrawl_relation_tests"
  "deepcrawl_relation_tests.pdb"
  "deepcrawl_relation_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepcrawl_relation_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
