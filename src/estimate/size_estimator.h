// Database size estimation by overlap analysis (§5, "overlap analysis"
// after Lawrence & Giles).
//
// Hidden Web sources rarely disclose their size, yet coverage-oriented
// experiments need one. The paper runs 6 independent crawls of the
// Amazon DVD catalog from random seeds, stops each after a fixed number
// of server interactions, and treats every pair of result sets as a
// capture-recapture experiment:
//
//   |DB| ~= |A| * |B| / |A n B|
//
// yielding C(6,2) = 15 estimates, over which a Student-t test gives a
// confidence bound ("with 90% confidence, the Amazon DVD database
// contains less than 37,000 records").
//
// This module reproduces that pipeline against any WebDbServer.

#ifndef DEEPCRAWL_ESTIMATE_SIZE_ESTIMATOR_H_
#define DEEPCRAWL_ESTIMATE_SIZE_ESTIMATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/crawler/local_store.h"
#include "src/crawler/query_selector.h"
#include "src/server/web_db_server.h"
#include "src/util/stats.h"
#include "src/util/status.h"

namespace deepcrawl {

// Capture-recapture estimate from two sorted, duplicate-free record-id
// samples. Fails with kFailedPrecondition when the samples are disjoint
// (the estimator is undefined at zero overlap).
StatusOr<double> CaptureRecaptureEstimate(std::span<const RecordId> a,
                                          std::span<const RecordId> b);

// Builds a fresh selector for one independent crawl; the LocalStore is
// the store that crawl will populate.
using SelectorFactory =
    std::function<std::unique_ptr<QuerySelector>(const LocalStore&)>;

struct SizeEstimationOptions {
  uint32_t num_crawls = 6;
  // Interaction (communication-round) budget per crawl; the paper used
  // 5000 against the Amazon Web service.
  uint64_t rounds_per_crawl = 5000;
  double confidence = 0.90;
  uint64_t seed = 1;  // drives the random seed-value choices
};

struct SizeEstimationReport {
  // Per-crawl harvested record counts.
  std::vector<size_t> crawl_sizes;
  // All pairwise capture-recapture estimates that had overlap.
  std::vector<double> pairwise_estimates;
  size_t disjoint_pairs = 0;
  // t-inference over the pairwise estimates (meaningful when
  // pairwise_estimates.size() >= 2).
  TTestResult t_test;
};

// Runs `options.num_crawls` independent crawls (fresh LocalStore and
// selector each, one random seed value per crawl) against `server`,
// resetting the server's meters around each crawl, and aggregates the
// pairwise estimates. Requires the server's table to be non-empty.
StatusOr<SizeEstimationReport> EstimateDatabaseSize(
    WebDbServer& server, const SelectorFactory& selector_factory,
    const SizeEstimationOptions& options);

}  // namespace deepcrawl

#endif  // DEEPCRAWL_ESTIMATE_SIZE_ESTIMATOR_H_
