// Term-weighted query selection for textual databases.
//
// After Gupta & Bhatia ("A Novel Term Weighing Scheme Towards Efficient
// Crawl of Textual Databases"): candidate keywords are ranked by a
// TF·IDF-style weight computed over the documents harvested so far.
// With term bags (each document lists a term once per field), term
// frequency equals document frequency, so the weight of a candidate
// term t over the local database DBlocal of N documents reduces to
//
//   w(t) = df(t) · ln((N + 1) / df(t))
//
// which is unimodal in df: it vanishes both for rare terms (tiny result
// sets — one page fetched, little gained) and for near-ubiquitous terms
// (huge overlap with what is already harvested — ln → 0), and peaks at
// df = (N+1)/e. That is exactly the "promising middle" a keyword
// crawler wants: productive terms whose postings are not yet mostly
// duplicates.
//
// Statistics are read incrementally from the LocalStore
// (LocalFrequency/num_records — the store already maintains them for
// MMMI's arena rows), so scoring a candidate is O(1) and a batch
// re-rank is one pass over the frontier. Like MmmiSelector, the
// selector serves `batch_size` queries from one ranking before
// re-sorting (§3.3's batch-mode recomputation idiom).

#ifndef DEEPCRAWL_CRAWLER_TERM_WEIGHT_SELECTOR_H_
#define DEEPCRAWL_CRAWLER_TERM_WEIGHT_SELECTOR_H_

#include <cstdint>
#include <deque>
#include <string_view>
#include <vector>

#include "src/crawler/local_store.h"
#include "src/crawler/query_selector.h"

namespace deepcrawl {

struct TermWeightOptions {
  // Queries served from one ranking before re-sorting.
  uint32_t batch_size = 10;
};

class TermWeightSelector : public FrontierSelector {
 public:
  explicit TermWeightSelector(const LocalStore& store,
                              TermWeightOptions options = TermWeightOptions{});

  ValueId SelectNext() override;
  std::string_view name() const override { return "term-weight"; }

  // Checkpointing: frontier + options fingerprint + the in-flight batch
  // queue. Weights are pure functions of the LocalStore, so nothing
  // else needs to survive a restart.
  Status SaveState(CheckpointWriter& writer) const override;
  Status LoadState(CheckpointReader& reader, ValueId value_bound) override;

  // The ranking weight of candidate `v` on the current DBlocal
  // (exposed for tests).
  double Weight(ValueId v) const;

 private:
  void RecomputeBatch();

  TermWeightOptions options_;
  std::deque<ValueId> batch_queue_;

  // Scratch reused across batches (cleared, never shrunk).
  struct Scored {
    double weight;
    uint64_t df;
    ValueId value;
  };
  std::vector<Scored> scored_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_CRAWLER_TERM_WEIGHT_SELECTOR_H_
