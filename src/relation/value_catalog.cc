#include "src/relation/value_catalog.h"

#include "src/util/logging.h"

namespace deepcrawl {

ValueId ValueCatalog::Intern(AttributeId attr, std::string_view text) {
  Key key{attr, std::string(text)};
  auto it = by_key_.find(key);
  if (it != by_key_.end()) return it->second;
  DEEPCRAWL_CHECK_LT(attrs_.size(), kInvalidValueId)
      << "value id space exhausted";
  ValueId id = static_cast<ValueId>(attrs_.size());
  attrs_.push_back(attr);
  texts_.push_back(key.text);
  by_key_.emplace(std::move(key), id);
  return id;
}

ValueId ValueCatalog::Find(AttributeId attr, std::string_view text) const {
  auto it = by_key_.find(Key{attr, std::string(text)});
  if (it == by_key_.end()) return kInvalidValueId;
  return it->second;
}

AttributeId ValueCatalog::attribute_of(ValueId id) const {
  DEEPCRAWL_CHECK_LT(id, attrs_.size()) << "value id out of range";
  return attrs_[id];
}

const std::string& ValueCatalog::text_of(ValueId id) const {
  DEEPCRAWL_CHECK_LT(id, texts_.size()) << "value id out of range";
  return texts_[id];
}

}  // namespace deepcrawl
