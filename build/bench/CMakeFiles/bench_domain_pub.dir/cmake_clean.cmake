file(REMOVE_RECURSE
  "CMakeFiles/bench_domain_pub.dir/bench_domain_pub.cc.o"
  "CMakeFiles/bench_domain_pub.dir/bench_domain_pub.cc.o.d"
  "bench_domain_pub"
  "bench_domain_pub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_domain_pub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
