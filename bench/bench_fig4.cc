// Figure 4 — "Effects of Mutual-Information-based Ordering" (eBay).
//
// Paper setup: the greedy link-based crawler crawls the eBay auction
// database; at 85% coverage the crawler switches to MMMI ordering
// (Min-Max Mutual Information, §3.3). The figure plots coverage 85%-100%
// against communication rounds: GL+MMMI reaches full coverage about
// 1,200 rounds (~10%) cheaper than plain GL by deprioritizing candidates
// correlated with already-issued queries.
//
// This harness reproduces the comparison on the regenerated eBay
// database, averaged over several seeds (the effect is seed-noisy at
// reduced scale), reporting rounds at deep-coverage milestones.

#include <iostream>

#include "bench/bench_common.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/mmmi_selector.h"
#include "src/datagen/canned_workloads.h"
#include "src/util/table_printer.h"

namespace {
constexpr double kScale = 0.1;
constexpr int kNumSeeds = 6;
constexpr double kMilestones[] = {0.85, 0.90, 0.95, 0.99};
}  // namespace

int main() {
  using namespace deepcrawl;
  bench::PrintBanner(
      "Figure 4: effects of MMMI ordering on marginal content (eBay)",
      "eBay 20k records, k=10; switch GL -> MMMI at 85% coverage; MMMI "
      "saves ~1,200 rounds to full coverage",
      "regenerated eBay at scale " + TablePrinter::FormatDouble(kScale, 2) +
          ", crawl to 99% coverage, average of " +
          std::to_string(kNumSeeds) + " seeds");

  double rounds_gl[4] = {0, 0, 0, 0};
  double rounds_mmmi[4] = {0, 0, 0, 0};
  double total_gl = 0, total_mmmi = 0;

  for (int s = 0; s < kNumSeeds; ++s) {
    StatusOr<Table> generated = GenerateTable(EbayConfig(kScale, 20 + s));
    DEEPCRAWL_CHECK(generated.ok()) << generated.status().ToString();
    const Table& db = *generated;
    WebDbServer server(db, ServerOptions{});

    CrawlOptions options;
    options.target_records =
        static_cast<uint64_t>(0.99 * static_cast<double>(db.num_records()));
    options.saturation_records =
        static_cast<uint64_t>(0.85 * static_cast<double>(db.num_records()));

    auto accumulate = [&](QuerySelector& selector, LocalStore& store,
                          double* milestones, double& total) {
      CrawlResult result = bench::RunCrawl(
          server, selector, store, options,
          bench::SeedValue(db, static_cast<uint32_t>(s)));
      for (int m = 0; m < 4; ++m) {
        uint64_t target = static_cast<uint64_t>(
            kMilestones[m] * static_cast<double>(db.num_records()));
        milestones[m] += static_cast<double>(
            result.trace.RoundsToRecords(target).value_or(result.rounds));
      }
      total += static_cast<double>(result.rounds);
    };

    {
      LocalStore store;
      GreedyLinkSelector selector(store);
      accumulate(selector, store, rounds_gl, total_gl);
    }
    {
      LocalStore store;
      MmmiSelector selector(store);
      accumulate(selector, store, rounds_mmmi, total_mmmi);
    }
  }

  TablePrinter table({"policy", "rounds@85%", "@90%", "@95%", "@99%"});
  auto add_row = [&](const char* name, const double* milestones) {
    std::vector<std::string> row = {name};
    for (int m = 0; m < 4; ++m) {
      row.push_back(TablePrinter::FormatDouble(milestones[m] / kNumSeeds, 0));
    }
    table.AddRow(row);
  };
  add_row("greedy-link", rounds_gl);
  add_row("greedy-link+mmmi", rounds_mmmi);
  table.Print(std::cout);

  double saving = (total_gl - total_mmmi) / total_gl;
  std::cout << "\ntotal rounds to 99% coverage (sum over seeds): GL="
            << TablePrinter::FormatDouble(total_gl, 0)
            << "  GL+MMMI=" << TablePrinter::FormatDouble(total_mmmi, 0)
            << "  saving=" << TablePrinter::FormatPercent(saving, 1)
            << "\npaper: ~1,200 of ~12,000 rounds saved (~10%); shape "
               "reproduced when the saving is positive.\n";
  return 0;
}
