// Table 2 — "Database Query Interface Schemas": the queriable attributes
// and the number of distinct attribute values of the four controlled
// databases, plus the §5 connectivity property ("99% of all the records
// are connected").
//
// Paper configuration: eBay 20,000 records / 22,950 distinct values;
// ACM-DL 150,000 records; DBLP 500,000 records / 370,416 values;
// IMDB 400,000 records / 860,293 values (1,225,895 for ACM per Table 2).
// This run regenerates the same schemas at a reduced scale and reports
// the measured counts side by side.

#include <iostream>
#include <sstream>
#include <string>

#include "bench/bench_common.h"
#include "src/datagen/canned_workloads.h"
#include "src/graph/components.h"
#include "src/util/table_printer.h"

namespace {
constexpr double kScale = 0.1;
}

int main() {
  using namespace deepcrawl;
  bench::PrintBanner(
      "Table 2: query interface schemas of the controlled databases",
      "eBay 20k records (22,950 values), ACM-DL 150k (1,225,895), DBLP "
      "500k (370,416), IMDB 400k (860,293); all >= 99% record-connected",
      "same schemas regenerated at scale " +
          TablePrinter::FormatDouble(kScale, 2));

  TablePrinter table({"database", "records", "queriable attributes",
                      "distinct values", "largest component"});
  for (const SyntheticDbConfig& config : AllControlledConfigs(kScale)) {
    StatusOr<Table> generated = GenerateTable(config);
    DEEPCRAWL_CHECK(generated.ok()) << generated.status().ToString();
    const Table& db = *generated;

    std::ostringstream attrs;
    for (size_t a = 0; a < db.schema().num_attributes(); ++a) {
      if (a > 0) attrs << ", ";
      attrs << db.schema().attribute(static_cast<AttributeId>(a)).name;
    }
    ConnectivityReport connectivity = AnalyzeConnectivity(db);
    table.AddRow({config.name, TablePrinter::FormatCount(db.num_records()),
                  attrs.str(),
                  TablePrinter::FormatCount(db.num_distinct_values()),
                  TablePrinter::FormatPercent(
                      connectivity.largest_component_record_fraction, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nper-attribute distinct value counts:\n";
  TablePrinter detail({"database", "attribute", "distinct values"});
  for (const SyntheticDbConfig& config : AllControlledConfigs(kScale)) {
    StatusOr<Table> generated = GenerateTable(config);
    DEEPCRAWL_CHECK(generated.ok());
    std::vector<size_t> counts = generated->DistinctValuesPerAttribute();
    for (size_t a = 0; a < counts.size(); ++a) {
      detail.AddRow(
          {config.name,
           generated->schema().attribute(static_cast<AttributeId>(a)).name,
           TablePrinter::FormatCount(counts[a])});
    }
  }
  detail.Print(std::cout);
  return 0;
}
