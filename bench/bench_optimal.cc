// Competitive-guarantee bench — the Sheng et al. selector family
// (src/crawler/optimal_selector.h) against the adversarial lower-bound
// instances (src/datagen/adversarial_workload.h).
//
// Three numbers the committed BENCH_optimal.json baseline pins down:
//
//  1. Cost ratios on the greedy trap. The rank descent must stay within
//     its 2x competitive bound (cost/OPT, lower is better) while the
//     greedy baseline pays the trap's decoy mass (its ratio is the GAP
//     the construction exists to exhibit — shrinking it is the
//     regression, so higher is better for that metric).
//  2. The skewed-chain overhead: descent queries beyond OPT must remain
//     additive-logarithmic, not proportional.
//  3. Descent throughput (queries/s wall-clock): the hierarchy
//     bookkeeping (count arithmetic, status arrays) must stay cheap
//     relative to the fetch/ingest cost common to all selectors.
//
// All crawls are deterministic (fixed generator seed, serial engine), so
// the ratio metrics are exact and only the throughput metric carries
// timing noise.

#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/optimal_selector.h"
#include "src/datagen/adversarial_workload.h"
#include "src/util/table_printer.h"

namespace {

using namespace deepcrawl;

struct TrapRun {
  uint64_t queries = 0;
  uint64_t opt = 0;
  double ratio = 0.0;
};

// Crawls `instance` to full coverage with the named policy and returns
// the query cost against OPT.
TrapRun CrawlToCoverage(const AdversarialInstance& instance,
                        const std::string& policy) {
  ServerOptions server_options;
  server_options.page_size = instance.result_limit;
  server_options.result_limit = instance.result_limit;
  WebDbServer server(instance.table, server_options);

  LocalStore store;
  std::unique_ptr<QuerySelector> selector;
  if (policy == "greedy") {
    selector = std::make_unique<GreedyLinkSelector>(store);
  } else {
    StatusOr<AttributeId> rank_attr =
        instance.table.schema().FindAttribute("range");
    DEEPCRAWL_CHECK(rank_attr.ok());
    StatusOr<QueryHierarchy> hierarchy = QueryHierarchy::FromCatalog(
        instance.table.catalog(), rank_attr.value());
    DEEPCRAWL_CHECK(hierarchy.ok()) << hierarchy.status().ToString();
    OptimalSelectorOptions opts;
    opts.mode = policy == "opt-rank" ? OptimalMode::kRank
                                     : OptimalMode::kThreshold;
    opts.result_limit = instance.result_limit;
    selector = std::make_unique<RankOptimalSelector>(
        store, std::move(hierarchy).value(), opts);
  }

  CrawlOptions crawl_options;
  crawl_options.target_records = instance.table.num_records();
  CrawlResult result = bench::RunCrawl(server, *selector, store,
                                       crawl_options, instance.root_value);
  DEEPCRAWL_CHECK_EQ(result.records, instance.table.num_records())
      << policy << " did not reach full coverage";
  TrapRun run;
  run.queries = result.queries;
  run.opt = instance.opt_queries;
  run.ratio = static_cast<double>(result.queries) /
              static_cast<double>(instance.opt_queries);
  return run;
}

AdversarialInstance MakeTrap(uint32_t leaf_buckets, uint32_t decoy_buckets,
                             uint32_t decoy_width) {
  AdversarialConfig config;
  config.family = AdversarialFamily::kGreedyTrap;
  config.leaf_buckets = leaf_buckets;
  config.bucket_records = 4;
  config.decoy_buckets = decoy_buckets;
  config.decoy_width = decoy_width;
  config.seed = 7;
  StatusOr<AdversarialInstance> instance =
      GenerateAdversarialInstance(config);
  DEEPCRAWL_CHECK(instance.ok()) << instance.status().ToString();
  return std::move(instance).value();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = bench::JsonPathFromArgs(argc, argv);
  bench::PrintBanner(
      "Competitive guarantees (Sheng et al.) on adversarial instances",
      "rank descent within 2x of OPT; greedy degree ranking pays the "
      "decoy mass",
      "greedy trap B=32 (W=32, g=8, L=4) and skewed chain B=64, crawled "
      "to 100% coverage, serial engine, fixed seeds");

  // --- greedy trap ----------------------------------------------------
  AdversarialInstance trap = MakeTrap(/*leaf_buckets=*/28,
                                      /*decoy_buckets=*/8,
                                      /*decoy_width=*/32);
  TrapRun opt_rank = CrawlToCoverage(trap, "opt-rank");
  TrapRun opt_threshold = CrawlToCoverage(trap, "opt-threshold");
  TrapRun greedy = CrawlToCoverage(trap, "greedy");

  TablePrinter table({"policy", "queries", "OPT", "cost/OPT"});
  table.AddRow({"opt-rank", std::to_string(opt_rank.queries),
                std::to_string(opt_rank.opt),
                TablePrinter::FormatDouble(opt_rank.ratio, 3)});
  table.AddRow({"opt-threshold", std::to_string(opt_threshold.queries),
                std::to_string(opt_threshold.opt),
                TablePrinter::FormatDouble(opt_threshold.ratio, 3)});
  table.AddRow({"greedy-link", std::to_string(greedy.queries),
                std::to_string(greedy.opt),
                TablePrinter::FormatDouble(greedy.ratio, 3)});
  table.Print(std::cout);

  // --- skewed chain ---------------------------------------------------
  AdversarialConfig skew_config;
  skew_config.family = AdversarialFamily::kSkewedChain;
  skew_config.leaf_buckets = 64;
  skew_config.bucket_records = 4;
  skew_config.occupied_leaves = 3;
  StatusOr<AdversarialInstance> skew_or =
      GenerateAdversarialInstance(skew_config);
  DEEPCRAWL_CHECK(skew_or.ok());
  AdversarialInstance skew = std::move(skew_or).value();
  TrapRun skew_rank = CrawlToCoverage(skew, "opt-rank");
  uint64_t skew_overhead = skew_rank.queries - skew_rank.opt;
  std::cout << "\nskewed chain (B=64, 3 occupied leaves): "
            << skew_rank.queries << " queries for OPT=" << skew_rank.opt
            << " (overhead " << skew_overhead
            << ", additive in log B)\n";

  // --- descent throughput ---------------------------------------------
  AdversarialInstance big = MakeTrap(/*leaf_buckets=*/240,
                                     /*decoy_buckets=*/16,
                                     /*decoy_width=*/16);
  uint64_t wall_queries = 0;
  double best_s = bench::BestWallSeconds([&] {
    TrapRun run = CrawlToCoverage(big, "opt-rank");
    wall_queries = run.queries;
  });
  double qps = static_cast<double>(wall_queries) / best_s;
  std::cout << "\ndescent throughput (trap B=256): " << wall_queries
            << " queries in " << TablePrinter::FormatDouble(best_s, 4)
            << "s best-of-N = "
            << TablePrinter::FormatCount(static_cast<uint64_t>(qps))
            << " queries/s\n";

  if (!json_path.empty()) {
    bench::BenchJson json("optimal");
    json.Add("trap_opt_rank_ratio", opt_rank.ratio, "x",
             /*higher_is_better=*/false);
    json.Add("trap_opt_threshold_ratio", opt_threshold.ratio, "x",
             /*higher_is_better=*/false);
    // The greedy gap IS the artifact: the trap regressing (greedy
    // getting cheap) is what this metric guards against.
    json.Add("trap_greedy_gap", greedy.ratio, "x",
             /*higher_is_better=*/true);
    json.Add("skew_descent_overhead", static_cast<double>(skew_overhead),
             "queries", /*higher_is_better=*/false);
    json.Add("rank_descent_qps", qps, "queries/s",
             /*higher_is_better=*/true);
    json.WriteFile(json_path);
  }
  return 0;
}
