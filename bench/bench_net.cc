// Wire-protocol bench: sustained queries/s and per-request latency
// percentiles of the epoll WebDB server over loopback TCP, across
// client concurrency levels (1 / 64 / 256 / 1000 pipelined
// connections), plus the end-to-end cost of moving a whole crawl from
// in-process fetches to real sockets.
//
// The paper's cost model counts communication rounds; this bench
// answers the systems question underneath the network executor: how
// many rounds per second one serving process sustains, and what a
// round costs when it crosses a real kernel socket instead of a
// function call. Everything is loopback and deterministic-seeded; the
// JSON metrics feed tools/check.sh's perf regression gate.

#include <poll.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/datagen/canned_workloads.h"
#include "src/datagen/workload_config.h"
#include "src/net/event_loop.h"
#include "src/net/net_client.h"
#include "src/net/tcp_server.h"

namespace deepcrawl {
namespace bench {
namespace {

constexpr uint32_t kConcurrencyLevels[] = {1, 64, 256, 1000};
constexpr uint32_t kRequestsPerLevel = 40'000;
constexpr uint32_t kPipelineDepth = 16;  // outstanding requests per conn

Table MakeTarget() {
  StatusOr<Table> table = GenerateTable(EbayConfig(0.02, /*seed=*/1));
  DEEPCRAWL_CHECK(table.ok()) << table.status().ToString();
  return std::move(*table);
}

// The serving process, on its own thread (exactly deepcrawl_serve's
// shape: one EventLoop, one WebDbTcpServer, backend called loop-side).
class LoopServer {
 public:
  explicit LoopServer(QueryInterface& backend, uint32_t num_values) {
    DEEPCRAWL_CHECK(loop_.Init().ok());
    TcpServerOptions options;
    options.max_connections = 2048;
    options.num_values = num_values;
    server_.emplace(loop_, backend, options);
    Status started = server_->Start();
    DEEPCRAWL_CHECK(started.ok()) << started.ToString();
    thread_ = std::thread([this] { loop_.Run(); });
  }
  ~LoopServer() {
    loop_.Stop();
    thread_.join();
    server_->Shutdown();
  }
  uint16_t port() const { return server_->port(); }

 private:
  EventLoop loop_;
  std::optional<WebDbTcpServer> server_;
  std::thread thread_;
};

struct LevelResult {
  uint32_t connections = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double wall_ms = 0.0;
};

// Drives `connections` pipelined connections with a fixed total request
// budget and measures throughput plus per-request latency (send-to-
// response, queueing included — the figure a crawl actually
// experiences).
LevelResult MeasureLevelOnce(uint16_t port, const Table& target,
                             uint32_t connections, uint32_t total_requests) {
  struct Lane {
    NetConnection conn;
    std::deque<uint64_t> send_time_us;  // one entry per in-flight request
    uint32_t quota = 0;  // requests this lane still has to send
    uint64_t next_id = 1;
  };
  std::vector<std::unique_ptr<Lane>> lanes;
  for (uint32_t i = 0; i < connections; ++i) {
    auto lane = std::make_unique<Lane>();
    Status opened = lane->conn.Open("127.0.0.1", port, /*timeout_ms=*/10'000);
    DEEPCRAWL_CHECK(opened.ok()) << opened.ToString();
    lane->quota = total_requests / connections +
                  (i < total_requests % connections ? 1 : 0);
    lanes.push_back(std::move(lane));
  }

  const uint32_t num_values = target.num_distinct_values();
  uint32_t next_value = 0;
  auto send_one = [&](Lane& lane) {
    WireRequest request;
    request.type = WireMessageType::kFetchPage;
    request.request_id = lane.next_id++;
    request.value = next_value++ % num_values;
    request.page_number = 0;
    lane.send_time_us.push_back(EventLoop::NowMicros());
    Status sent = lane.conn.Send(EncodeRequestFrame(request));
    DEEPCRAWL_CHECK(sent.ok()) << sent.ToString();
    --lane.quota;
  };

  std::vector<double> latencies_us;
  latencies_us.reserve(total_requests);
  uint64_t started_us = EventLoop::NowMicros();
  for (auto& lane : lanes) {
    for (uint32_t d = 0; d < kPipelineDepth && lane->quota > 0; ++d) {
      send_one(*lane);
    }
  }

  std::vector<struct pollfd> fds(lanes.size());
  uint32_t done = 0;
  while (done < total_requests) {
    for (size_t i = 0; i < lanes.size(); ++i) {
      fds[i].fd = lanes[i]->conn.fd();
      fds[i].events = static_cast<short>(
          POLLIN | (lanes[i]->conn.send_pending() ? POLLOUT : 0));
      fds[i].revents = 0;
    }
    int ready = poll(fds.data(), fds.size(), 10'000);
    DEEPCRAWL_CHECK_GT(ready, 0) << "bench stalled";
    for (size_t i = 0; i < lanes.size(); ++i) {
      Lane& lane = *lanes[i];
      if (fds[i].revents & POLLOUT) {
        Status flushed = lane.conn.TryFlushSend();
        DEEPCRAWL_CHECK(flushed.ok()) << flushed.ToString();
      }
      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        Status filled = lane.conn.FillFromSocket();
        DEEPCRAWL_CHECK(filled.ok()) << filled.ToString();
        WireServerMessage message;
        for (;;) {
          StatusOr<bool> next = lane.conn.NextMessage(&message);
          DEEPCRAWL_CHECK(next.ok()) << next.status().ToString();
          if (!*next) break;
          DEEPCRAWL_CHECK(message.type == WireMessageType::kPageResult);
          DEEPCRAWL_CHECK(!lane.send_time_us.empty());
          latencies_us.push_back(static_cast<double>(
              EventLoop::NowMicros() - lane.send_time_us.front()));
          lane.send_time_us.pop_front();
          ++done;
          if (lane.quota > 0) send_one(lane);
        }
      }
    }
  }
  double wall_s =
      static_cast<double>(EventLoop::NowMicros() - started_us) / 1e6;

  std::sort(latencies_us.begin(), latencies_us.end());
  auto percentile = [&](double p) {
    size_t index = static_cast<size_t>(p * (latencies_us.size() - 1));
    return latencies_us[index];
  };
  LevelResult result;
  result.connections = connections;
  result.qps = static_cast<double>(total_requests) / wall_s;
  result.p50_us = percentile(0.50);
  result.p99_us = percentile(0.99);
  result.wall_ms = wall_s * 1000.0;
  return result;
}

// Best-of-3 per level: server and client threads share cores, so a
// single rep is at the mercy of the scheduler; taking the best rep's
// throughput and the lowest observed percentiles makes the committed
// baseline stable enough for the 20% regression gate.
LevelResult MeasureLevel(uint16_t port, const Table& target,
                         uint32_t connections, uint32_t total_requests) {
  LevelResult best;
  for (int rep = 0; rep < 3; ++rep) {
    LevelResult r =
        MeasureLevelOnce(port, target, connections, total_requests);
    if (rep == 0) {
      best = r;
      continue;
    }
    best.qps = std::max(best.qps, r.qps);
    best.p50_us = std::min(best.p50_us, r.p50_us);
    best.p99_us = std::min(best.p99_us, r.p99_us);
    best.wall_ms = std::min(best.wall_ms, r.wall_ms);
  }
  return best;
}

std::vector<LevelResult> RunThroughputSweep(const Table& target) {
  WebDbServer backend(target, ServerOptions());
  LoopServer server(backend, target.num_distinct_values());
  std::vector<LevelResult> results;
  for (uint32_t connections : kConcurrencyLevels) {
    results.push_back(
        MeasureLevel(server.port(), target, connections, kRequestsPerLevel));
  }
  return results;
}

// The same greedy crawl, fetched in-process vs over loopback TCP
// (batch 32, 8 pipelined connections) — the wall-clock price of the
// wire. Best-of-3 per side.
struct CrawlWalls {
  double inprocess_ms = 0.0;
  double tcp_ms = 0.0;
  uint64_t rounds = 0;
};

CrawlWalls RunCrawlComparison(const Table& target) {
  CrawlWalls walls;
  for (int rep = 0; rep < 3; ++rep) {
    WebDbServer backend(target, ServerOptions());
    LocalStore store;
    GreedyLinkSelector selector(store);
    EngineOptions engine_options;
    engine_options.batch = 32;
    auto started = std::chrono::steady_clock::now();
    CrawlEngine engine(backend, selector, store, CrawlOptions{},
                       engine_options);
    engine.AddSeed(SeedValue(target, 0));
    StatusOr<CrawlResult> result = engine.Run();
    DEEPCRAWL_CHECK(result.ok()) << result.status().ToString();
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - started)
                    .count();
    if (rep == 0 || ms < walls.inprocess_ms) walls.inprocess_ms = ms;
    walls.rounds = result->rounds;
  }
  for (int rep = 0; rep < 3; ++rep) {
    WebDbServer backend(target, ServerOptions());
    LoopServer server(backend, target.num_distinct_values());
    NetClientOptions net_options;
    net_options.port = server.port();
    net_options.connections = 8;
    StatusOr<std::unique_ptr<NetQueryClient>> client =
        NetQueryClient::Connect(net_options);
    DEEPCRAWL_CHECK(client.ok()) << client.status().ToString();
    NetFetchExecutor executor(**client);
    LocalStore store;
    GreedyLinkSelector selector(store);
    EngineOptions engine_options;
    engine_options.batch = 32;
    engine_options.shared_executor = &executor;
    auto started = std::chrono::steady_clock::now();
    CrawlEngine engine(**client, selector, store, CrawlOptions{},
                       engine_options);
    engine.AddSeed(SeedValue(target, 0));
    StatusOr<CrawlResult> result = engine.Run();
    DEEPCRAWL_CHECK(result.ok()) << result.status().ToString();
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - started)
                    .count();
    if (rep == 0 || ms < walls.tcp_ms) walls.tcp_ms = ms;
    DEEPCRAWL_CHECK_EQ(result->rounds, walls.rounds)
        << "TCP crawl diverged from in-process";
  }
  return walls;
}

void PrintSweep(const std::vector<LevelResult>& results,
                const CrawlWalls& walls) {
  PrintBanner("wire protocol throughput (loopback TCP)",
              "n/a (systems bench for the network executor)",
              std::to_string(kRequestsPerLevel) +
                  " pipelined FetchPage rounds per concurrency level");
  TablePrinter table({"connections", "queries/s", "p50 us", "p99 us",
                      "wall ms"});
  for (const LevelResult& r : results) {
    table.AddRow({std::to_string(r.connections),
                  TablePrinter::FormatDouble(r.qps, 0),
                  TablePrinter::FormatDouble(r.p50_us, 1),
                  TablePrinter::FormatDouble(r.p99_us, 1),
                  TablePrinter::FormatDouble(r.wall_ms, 1)});
  }
  table.Print(std::cout);
  std::cout << "\ncrawl wall-clock (greedy, batch 32, " << walls.rounds
            << " rounds): in-process "
            << TablePrinter::FormatDouble(walls.inprocess_ms, 1)
            << "ms, loopback TCP "
            << TablePrinter::FormatDouble(walls.tcp_ms, 1) << "ms ("
            << TablePrinter::FormatDouble(walls.tcp_ms / walls.inprocess_ms,
                                          2)
            << "x)\n";
}

void RunJsonSuite(const Table& target, const std::string& json_path) {
  std::vector<LevelResult> results = RunThroughputSweep(target);
  CrawlWalls walls = RunCrawlComparison(target);
  BenchJson json("net");
  for (const LevelResult& r : results) {
    std::string suffix = std::to_string(r.connections) + "conn";
    json.Add("qps_" + suffix, r.qps, "queries/s",
             /*higher_is_better=*/true);
  }
  // Latency gates only at the extremes: percentiles of the middle
  // levels wobble with scheduler noise without adding signal.
  json.Add("p50_us_1conn", results.front().p50_us, "us",
           /*higher_is_better=*/false);
  json.Add("p99_us_1000conn", results.back().p99_us, "us",
           /*higher_is_better=*/false);
  json.Add("crawl_wall_ms_inprocess", walls.inprocess_ms, "ms",
           /*higher_is_better=*/false);
  json.Add("crawl_wall_ms_tcp", walls.tcp_ms, "ms",
           /*higher_is_better=*/false);
  json.WriteFile(json_path);
}

}  // namespace
}  // namespace bench
}  // namespace deepcrawl

int main(int argc, char** argv) {
  deepcrawl::Table target = deepcrawl::bench::MakeTarget();
  std::string json_path = deepcrawl::bench::JsonPathFromArgs(argc, argv);
  if (!json_path.empty()) {
    deepcrawl::bench::RunJsonSuite(target, json_path);
    return 0;
  }
  std::vector<deepcrawl::bench::LevelResult> results =
      deepcrawl::bench::RunThroughputSweep(target);
  deepcrawl::bench::CrawlWalls walls =
      deepcrawl::bench::RunCrawlComparison(target);
  deepcrawl::bench::PrintSweep(results, walls);
  return 0;
}
