file(REMOVE_RECURSE
  "libdeepcrawl_estimate.a"
)
