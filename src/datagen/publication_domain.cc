#include "src/datagen/publication_domain.h"

#include <string>
#include <vector>

#include "src/util/logging.h"
#include "src/util/random.h"
#include "src/util/zipf.h"

namespace deepcrawl {

namespace {

Status AddPublicationAttributes(Schema& schema) {
  DEEPCRAWL_RETURN_IF_ERROR(schema.AddAttribute("Title").status());
  DEEPCRAWL_RETURN_IF_ERROR(
      schema.AddAttribute("Author", /*multi_valued=*/true).status());
  DEEPCRAWL_RETURN_IF_ERROR(schema.AddAttribute("Venue").status());
  return Status::OK();
}

}  // namespace

StatusOr<PublicationDomainPair> GeneratePublicationDomainPair(
    const PublicationDomainPairConfig& config) {
  if (config.universe_size == 0) {
    return Status::InvalidArgument("universe must be non-empty");
  }
  if (config.acm_venue_fraction <= 0.0 || config.acm_venue_fraction > 1.0) {
    return Status::InvalidArgument("acm_venue_fraction outside (0,1]");
  }
  if (config.dblp_coverage <= 0.0 || config.dblp_coverage > 1.0) {
    return Status::InvalidArgument("dblp_coverage outside (0,1]");
  }

  Pcg32 rng(config.seed);
  uint32_t n = config.universe_size;

  // Research areas: each has a venue pool and a core-author group.
  uint32_t areas = std::max<uint32_t>(4, n / 250);
  uint32_t venues_per_area = 4;
  constexpr uint32_t kCoreAuthorsPerArea = 6;
  uint32_t tail_author_pool = std::max<uint32_t>(100, n);
  ZipfSampler tail_sampler(tail_author_pool, 0.8);
  ZipfSampler venue_sampler(venues_per_area, 0.8);
  uint32_t sponsor_pool = std::max<uint32_t>(8, n / 40);

  // Assign each venue a publisher: venue v of an area is "ACM" with the
  // configured probability.
  uint32_t total_venues = areas * venues_per_area;
  std::vector<char> venue_is_acm(total_venues, 0);
  for (uint32_t v = 0; v < total_venues; ++v) {
    venue_is_acm[v] = rng.NextBool(config.acm_venue_fraction) ? 1 : 0;
  }

  Schema universe_schema, sample_schema, target_schema;
  DEEPCRAWL_RETURN_IF_ERROR(AddPublicationAttributes(universe_schema));
  DEEPCRAWL_RETURN_IF_ERROR(AddPublicationAttributes(sample_schema));
  DEEPCRAWL_RETURN_IF_ERROR(AddPublicationAttributes(target_schema));
  StatusOr<AttributeId> sponsor_attr = target_schema.AddAttribute("Sponsor");
  if (!sponsor_attr.ok()) return sponsor_attr.status();

  Table universe(std::move(universe_schema));
  Table sample(std::move(sample_schema));
  Table target(std::move(target_schema));

  std::vector<Cell> cells;
  std::vector<Cell> target_cells;
  uint32_t slice = std::max<uint32_t>(1, tail_author_pool / areas);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t area = rng.NextBounded(areas);
    cells.clear();
    cells.push_back(Cell{0, "Title#p" + std::to_string(i)});
    // 1-4 authors: mostly the area's cores and local tail, with rare
    // cross-area collaborators.
    uint32_t num_authors = 1 + rng.NextBounded(4);
    for (uint32_t a = 0; a < num_authors; ++a) {
      double kind = rng.NextDouble();
      std::string author;
      if (kind < 0.55) {
        author = "Author#c" + std::to_string(area) + "_" +
                 std::to_string(rng.NextBounded(kCoreAuthorsPerArea));
      } else if (kind < 0.95) {
        author = "Author#t" +
                 std::to_string(std::min(
                     area * slice + tail_sampler.Sample(rng) % slice,
                     tail_author_pool - 1));
      } else {
        author = "Author#t" + std::to_string(rng.NextBounded(
                                  tail_author_pool));
      }
      cells.push_back(Cell{1, std::move(author)});
    }
    uint32_t venue = area * venues_per_area + venue_sampler.Sample(rng);
    cells.push_back(Cell{2, "Venue#" + std::to_string(venue)});

    StatusOr<RecordId> added = universe.AddRecord(cells);
    if (!added.ok()) return added.status();

    if (rng.NextBool(config.dblp_coverage)) {
      added = sample.AddRecord(cells);
      if (!added.ok()) return added.status();
    }
    if (venue_is_acm[venue]) {
      target_cells = cells;
      if (rng.NextBool(config.target_noise_rate)) {
        target_cells.push_back(
            Cell{*sponsor_attr,
                 "Sponsor#" + std::to_string(rng.NextBounded(sponsor_pool))});
      }
      added = target.AddRecord(target_cells);
      if (!added.ok()) return added.status();
    }
  }
  if (target.num_records() < 2 || sample.num_records() < 2) {
    return Status::Internal(
        "degenerate publication pair; increase universe_size");
  }
  PublicationDomainPair pair{std::move(universe), std::move(target),
                             std::move(sample)};
  return pair;
}

}  // namespace deepcrawl
