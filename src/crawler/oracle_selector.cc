#include "src/crawler/oracle_selector.h"

#include <algorithm>

#include "src/util/logging.h"

namespace deepcrawl {

OracleSelector::OracleSelector(const LocalStore& store,
                               const InvertedIndex& truth,
                               uint32_t page_size, uint32_t result_limit)
    : store_(store),
      truth_(truth),
      page_size_(page_size),
      result_limit_(result_limit) {
  DEEPCRAWL_CHECK_GT(page_size, 0u);
}

double OracleSelector::TrueHarvestRate(ValueId v) const {
  uint32_t matches = truth_.MatchCount(v);
  uint32_t retrievable = matches;
  if (result_limit_ > 0) retrievable = std::min(retrievable, result_limit_);
  uint32_t cost =
      retrievable == 0 ? 1 : (retrievable + page_size_ - 1) / page_size_;
  // Under a result limit only the first `retrievable` postings come back;
  // the truly new ones among them are what the query harvests. Without a
  // limit this is num(q,DB) - num(q,DBlocal).
  uint32_t local = store_.LocalFrequency(v);
  uint32_t new_records = retrievable > local ? retrievable - local : 0;
  return static_cast<double>(new_records) / static_cast<double>(cost);
}

void OracleSelector::OnValueDiscovered(ValueId v) {
  if (v >= pending_.size()) pending_.resize(static_cast<size_t>(v) + 1, 0);
  pending_[v] = 1;
  heap_.push(HeapEntry{TrueHarvestRate(v), v});
}

void OracleSelector::OnRecordHarvested(uint32_t slot) {
  for (ValueId v : store_.RecordValues(slot)) {
    if (IsPending(v)) heap_.push(HeapEntry{TrueHarvestRate(v), v});
  }
}

ValueId OracleSelector::SelectNext() {
  while (!heap_.empty()) {
    HeapEntry top = heap_.top();
    heap_.pop();
    if (!IsPending(top.value)) continue;
    double rate = TrueHarvestRate(top.value);
    if (rate != top.rate) continue;  // stale: a fresher entry exists
    pending_[top.value] = 0;
    return top.value;
  }
  return kInvalidValueId;
}

}  // namespace deepcrawl
