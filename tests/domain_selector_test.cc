// Tests of the §4 domain-knowledge selector: estimators, pool movement,
// lazy evaluation, and end-to-end crawls with a domain table.

#include "src/domain/domain_selector.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/crawler/crawler.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/server/web_db_server.h"
#include "tests/test_util.h"

namespace deepcrawl {
namespace {

using testing_util::GetValueId;
using testing_util::MakeTable;

struct Fixture {
  Table target;
  Table sample;
  DomainTable dt;

  Fixture(std::vector<testing_util::Row> target_rows,
          std::vector<testing_util::Row> sample_rows)
      : target(MakeTable(std::move(target_rows))),
        sample(MakeTable(std::move(sample_rows))),
        dt(DomainTable::Build(sample, target.schema(),
                              target.mutable_catalog())) {}
};

TEST(DomainSelectorTest, QdtCandidatesAreServedByDomainFrequency) {
  // Target has nothing discovered; all queries come from the DT pool,
  // ordered by descending P(qi, DM).
  Fixture fx({{{"Actor", "zzz"}, {"Title", "t0"}}},  // target content
             {
                 {{"Actor", "hanks"}, {"Title", "s0"}},
                 {{"Actor", "hanks"}, {"Title", "s1"}},
                 {{"Actor", "hanks"}, {"Title", "s2"}},
                 {{"Actor", "hanks"}, {"Title", "s3"}},
                 {{"Actor", "streep"}, {"Title", "s4"}},
                 {{"Actor", "streep"}, {"Title", "s5"}},
                 {{"Actor", "streep"}, {"Title", "s6"}},
                 {{"Actor", "dafoe"}, {"Title", "s7"}},
                 {{"Actor", "dafoe"}, {"Title", "s8"}},
             });
  LocalStore store;
  DomainSelector selector(store, fx.dt);

  StatusOr<AttributeId> actor = fx.target.schema().FindAttribute("Actor");
  ASSERT_TRUE(actor.ok());
  ValueId hanks = fx.target.catalog().Find(*actor, "hanks");
  ValueId streep = fx.target.catalog().Find(*actor, "streep");
  ValueId dafoe = fx.target.catalog().Find(*actor, "dafoe");

  EXPECT_EQ(selector.SelectNext(), hanks);
  EXPECT_EQ(selector.SelectNext(), streep);
  EXPECT_EQ(selector.SelectNext(), dafoe);
}

TEST(DomainSelectorTest, DiscoveredDtValueMovesToQdbPool) {
  Fixture fx({{{"Actor", "hanks"}, {"Title", "t0"}}},
             {
                 {{"Actor", "hanks"}, {"Title", "s0"}},
                 {{"Actor", "streep"}, {"Title", "s1"}},
             });
  LocalStore store;
  DomainSelector selector(store, fx.dt);

  ValueId hanks = GetValueId(fx.target, "Actor", "hanks");
  // The crawler discovers hanks from a result page...
  selector.OnValueDiscovered(hanks);
  store.AddRecord(0, std::vector<ValueId>{hanks});
  selector.OnRecordHarvested(0);
  // ...so hanks is now a Q_DB candidate and must be served exactly once
  // across both pools.
  int hanks_servings = 0;
  int total_servings = 0;
  for (;;) {
    ValueId v = selector.SelectNext();
    if (v == kInvalidValueId) break;
    ++total_servings;
    if (v == hanks) ++hanks_servings;
    ASSERT_LE(total_servings, 100) << "selector failed to terminate";
  }
  EXPECT_EQ(hanks_servings, 1);
  // Every DT entry (4 distinct values) is served once, no more.
  EXPECT_EQ(total_servings, 4);
}

TEST(DomainSelectorTest, SmoothedProbabilityUsesDeltaDm) {
  Fixture fx({{{"Actor", "hanks"}, {"Title", "t0"}}},
             {
                 {{"Actor", "hanks"}, {"Title", "s0"}},
                 {{"Actor", "streep"}, {"Title", "s1"}},
             });
  LocalStore store;
  DomainSelector selector(store, fx.dt);

  ValueId hanks = GetValueId(fx.target, "Actor", "hanks");
  ValueId t0 = GetValueId(fx.target, "Title", "t0");  // unknown to DM

  // Before any harvest: P(hanks) = 1/2, no delta mass.
  EXPECT_NEAR(selector.SmoothedDomainProbability(hanks), 0.5, 1e-12);

  // Harvest the target record (hanks, t0): t0 is not in DM, so the
  // record joins Delta-DM: |dDM| = 1.
  selector.OnValueDiscovered(hanks);
  selector.OnValueDiscovered(t0);
  store.AddRecord(0, std::vector<ValueId>{hanks, t0});
  selector.OnRecordHarvested(0);

  // P(hanks) = (1 + 1) / (1 + 2) = 2/3; P(t0) = (1 + 0) / 3.
  EXPECT_NEAR(selector.SmoothedDomainProbability(hanks), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(selector.SmoothedDomainProbability(t0), 1.0 / 3.0, 1e-12);
}

TEST(DomainSelectorTest, QdtHitRateTracksDiscoveredValues) {
  Fixture fx({{{"Actor", "hanks"}, {"Title", "t0"}}},
             {
                 {{"Actor", "hanks"}, {"Title", "s0"}},
             });
  LocalStore store;
  DomainSelector selector(store, fx.dt);
  EXPECT_DOUBLE_EQ(selector.QdtHitRate(), 1.0);  // optimistic start

  ValueId hanks = GetValueId(fx.target, "Actor", "hanks");
  ValueId t0 = GetValueId(fx.target, "Title", "t0");
  selector.OnValueDiscovered(hanks);  // in DM
  EXPECT_DOUBLE_EQ(selector.QdtHitRate(), 1.0);
  selector.OnValueDiscovered(t0);  // not in DM
  EXPECT_DOUBLE_EQ(selector.QdtHitRate(), 0.5);
}

TEST(DomainSelectorTest, QueriedCoverageGrowsByUnion) {
  Fixture fx({{{"Actor", "hanks"}, {"Title", "t0"}}},
             {
                 {{"Actor", "hanks"}, {"Title", "s0"}},
                 {{"Actor", "hanks"}, {"Title", "s1"}},
                 {{"Actor", "streep"}, {"Title", "s2"}},
                 {{"Actor", "dafoe"}, {"Title", "s3"}},
             });
  LocalStore store;
  DomainSelector selector(store, fx.dt);
  EXPECT_DOUBLE_EQ(selector.QueriedDomainCoverage(), 0.0);

  QueryOutcome outcome;
  outcome.value = GetValueId(fx.target, "Actor", "hanks");
  selector.OnQueryCompleted(outcome);
  EXPECT_DOUBLE_EQ(selector.QueriedDomainCoverage(), 0.5);  // s0, s1 of 4

  StatusOr<AttributeId> actor = fx.target.schema().FindAttribute("Actor");
  outcome.value = fx.target.catalog().Find(*actor, "streep");
  selector.OnQueryCompleted(outcome);
  EXPECT_DOUBLE_EQ(selector.QueriedDomainCoverage(), 0.75);

  // Re-completing the same query does not double count.
  selector.OnQueryCompleted(outcome);
  EXPECT_DOUBLE_EQ(selector.QueriedDomainCoverage(), 0.75);
}

TEST(DomainSelectorTest, QdbEstimatorFollowsEquation42) {
  Fixture fx(
      {
          {{"Actor", "hanks"}, {"Title", "t0"}},
          {{"Actor", "hanks"}, {"Title", "t1"}},
          {{"Actor", "streep"}, {"Title", "t2"}},
      },
      {
          {{"Actor", "hanks"}, {"Title", "s0"}},
          {{"Actor", "hanks"}, {"Title", "s1"}},
          {{"Actor", "hanks"}, {"Title", "s2"}},
          {{"Actor", "streep"}, {"Title", "s3"}},
      });
  LocalStore store;
  DomainSelector selector(store, fx.dt, /*page_size=*/2);

  ValueId hanks = GetValueId(fx.target, "Actor", "hanks");
  ValueId streep = GetValueId(fx.target, "Actor", "streep");
  selector.OnValueDiscovered(hanks);

  // No evidence yet: both estimates are the optimistic full page.
  EXPECT_TRUE(std::isinf(selector.EstimateMatches(hanks)));
  EXPECT_DOUBLE_EQ(selector.EstimateHarvestRateQdb(hanks), 2.0);

  // Issue streep so P(Lqueried, DM) = 1/4 (record s3 of the sample).
  QueryOutcome outcome;
  outcome.value = streep;
  selector.OnQueryCompleted(outcome);
  EXPECT_DOUBLE_EQ(selector.QueriedDomainCoverage(), 0.25);

  // One hanks record local. Eq. 4.2: num~ = |DBlocal| * P(hanks, DM)
  // / P(Lqueried, DM) = 1 * (3/4) / (1/4) = 3.
  store.AddRecord(0, std::vector<ValueId>{hanks});
  selector.OnRecordHarvested(0);
  EXPECT_DOUBLE_EQ(selector.EstimateMatches(hanks), 3.0);
  // Yield: (3 - 1) new records over ceil(3/2) = 2 rounds.
  EXPECT_DOUBLE_EQ(selector.EstimateHarvestRateQdb(hanks), 1.0);

  // Fully-drained prediction: when num_local catches up with num~, the
  // rate bottoms out at zero.
  store.AddRecord(1, std::vector<ValueId>{hanks});
  selector.OnRecordHarvested(1);
  store.AddRecord(2, std::vector<ValueId>{hanks});
  selector.OnRecordHarvested(2);
  // num~ = 3 * (3/4) / (1/4) = 9, num_local = 3: rate (9-3)/ceil(9/2).
  EXPECT_DOUBLE_EQ(selector.EstimateMatches(hanks), 9.0);
  EXPECT_DOUBLE_EQ(selector.EstimateHarvestRateQdb(hanks), 6.0 / 5.0);
}

TEST(DomainSelectorTest, QdtEstimatorCombinesHitRateAndMatches) {
  Fixture fx({{{"Actor", "hanks"}, {"Title", "t0"}}},
             {
                 {{"Actor", "hanks"}, {"Title", "s0"}},
                 {{"Actor", "ghost"}, {"Title", "s1"}},
             });
  LocalStore store;
  DomainSelector selector(store, fx.dt, /*page_size=*/2);
  StatusOr<AttributeId> actor = fx.target.schema().FindAttribute("Actor");
  ASSERT_TRUE(actor.ok());
  ValueId ghost = fx.target.catalog().Find(*actor, "ghost");
  ASSERT_NE(ghost, kInvalidValueId);

  // Optimistic before evidence: hit rate 1, full page.
  EXPECT_DOUBLE_EQ(selector.EstimateHarvestRateQdt(ghost), 2.0);

  ValueId hanks = GetValueId(fx.target, "Actor", "hanks");
  ValueId t0 = GetValueId(fx.target, "Title", "t0");
  selector.OnValueDiscovered(hanks);  // in DM
  selector.OnValueDiscovered(t0);     // not in DM -> hit rate 1/2
  store.AddRecord(0, std::vector<ValueId>{hanks, t0});
  selector.OnRecordHarvested(0);
  QueryOutcome outcome;
  outcome.value = hanks;
  selector.OnQueryCompleted(outcome);  // P(Lqueried, DM) = 1/2

  // num~(ghost) = |DBlocal| * P(ghost) / P_queried. The record (hanks,
  // t0) contains t0 which DM lacks, so it joined Delta-DM:
  // P(ghost) = (0 + 1) / (1 + 2) = 1/3; num~ = 1 * (1/3) / (1/2) = 2/3.
  EXPECT_NEAR(selector.EstimateMatches(ghost), 2.0 / 3.0, 1e-12);
  // Rate = hit * num~ / ceil: 0.5 * (2/3) / 1.
  EXPECT_NEAR(selector.EstimateHarvestRateQdt(ghost), 1.0 / 3.0, 1e-12);
}

TEST(DomainSelectorTest, EndToEndCrawlWithPerfectDomainTable) {
  // DT built from the target itself: the selector should reach full
  // coverage (every target value is a DT candidate).
  std::vector<testing_util::Row> rows;
  for (int i = 0; i < 30; ++i) {
    rows.push_back({{"Actor", "a" + std::to_string(i % 7)},
                    {"Title", "t" + std::to_string(i)}});
  }
  Table target = MakeTable(rows);
  Table sample = MakeTable(rows);
  DomainTable dt =
      DomainTable::Build(sample, target.schema(), target.mutable_catalog());

  ServerOptions server_options;
  server_options.page_size = 4;
  WebDbServer server(target, server_options);
  LocalStore store;
  DomainSelector selector(store, dt);
  Crawler crawler(server, selector, store, CrawlOptions{});
  // No seeds needed: Q_DT supplies every query.
  StatusOr<CrawlResult> result = crawler.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records, target.num_records());
}

TEST(DomainSelectorTest, ReachesRecordsOutsideSeedComponent) {
  // §4 Limitation 2 ("data islands"): GL starting in island 1 never
  // reaches island 2; DM does, because the DT contributes island-2
  // values as candidates.
  std::vector<testing_util::Row> rows = {
      {{"Actor", "a1"}, {"Title", "t1"}},
      {{"Actor", "a1"}, {"Title", "t2"}},
      {{"Actor", "a2"}, {"Title", "t3"}},  // island 2
  };
  Table target = MakeTable(rows);
  Table sample = MakeTable(rows);
  DomainTable dt =
      DomainTable::Build(sample, target.schema(), target.mutable_catalog());

  WebDbServer server(target, ServerOptions{});
  ValueId a1 = GetValueId(target, "Actor", "a1");

  {
    LocalStore store;
    GreedyLinkSelector gl(store);
    Crawler crawler(server, gl, store, CrawlOptions{});
    crawler.AddSeed(a1);
    StatusOr<CrawlResult> result = crawler.Run();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->records, 2u);  // stuck in island 1
  }
  {
    server.ResetMeters();
    LocalStore store;
    DomainSelector dm(store, dt);
    Crawler crawler(server, dm, store, CrawlOptions{});
    crawler.AddSeed(a1);
    StatusOr<CrawlResult> result = crawler.Run();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->records, 3u);  // DT bridges the islands
  }
}

TEST(DomainSelectorTest, DtOnlyValuesCostARoundAndReturnNothing) {
  // A DT value absent from the target burns one round (hit-rate exists
  // exactly to down-weight such queries).
  Fixture fx({{{"Actor", "hanks"}, {"Title", "t0"}}},
             {
                 {{"Actor", "ghost"}, {"Title", "s0"}},
                 {{"Actor", "ghost"}, {"Title", "s1"}},
             });
  WebDbServer server(fx.target, ServerOptions{});
  LocalStore store;
  DomainSelector selector(store, fx.dt);
  Crawler crawler(server, selector, store, CrawlOptions{});
  StatusOr<CrawlResult> result = crawler.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records, 0u);  // ghost matches nothing
  EXPECT_GE(result->rounds, 1u);
}


TEST(DomainSelectorTest, ExactWindowOverridesLazyRatioOrdering) {
  // The §4.4 lazy key P(q,DM)/num_local ignores the ceil() in the cost;
  // SelectNext re-scores a window of the heap exactly. Construct a case
  // where the lazy ratio prefers B but the true per-round yield prefers
  // A (B's estimated matches span 3 pages, A's fit in one):
  //   DM (32 records): A in 10, B in 22, Q in 4.
  //   DBlocal (4 records): A in 1, B in 2, Q in all 4; Q was queried.
  std::vector<testing_util::Row> sample_rows;
  for (int i = 0; i < 10; ++i) {
    sample_rows.push_back({{"V", "A"}, {"V", "B"}});
  }
  for (int i = 0; i < 12; ++i) {
    sample_rows.push_back({{"V", "B"}, {"W", "f" + std::to_string(i)}});
  }
  for (int i = 0; i < 4; ++i) {
    sample_rows.push_back({{"V", "Q"}, {"W", "g" + std::to_string(i)}});
  }
  std::vector<testing_util::Row> target_rows = {
      {{"V", "Q"}, {"V", "A"}, {"V", "B"}},
      {{"V", "Q"}, {"V", "B"}},
      {{"V", "Q"}, {"V", "X"}},
      {{"V", "Q"}, {"V", "Y"}},
  };
  Fixture fx(std::move(target_rows), std::move(sample_rows));
  LocalStore store;
  DomainSelector selector(store, fx.dt, /*page_size=*/10);

  ValueId a = GetValueId(fx.target, "V", "A");
  ValueId b = GetValueId(fx.target, "V", "B");
  ValueId q = GetValueId(fx.target, "V", "Q");
  ValueId x = GetValueId(fx.target, "V", "X");
  ValueId y = GetValueId(fx.target, "V", "Y");

  // Harvest the four target records (as if Q had been queried).
  selector.OnValueDiscovered(a);
  selector.OnValueDiscovered(b);
  selector.OnValueDiscovered(x);
  selector.OnValueDiscovered(y);
  store.AddRecord(0, std::vector<ValueId>{q, a, b});
  selector.OnRecordHarvested(0);
  store.AddRecord(1, std::vector<ValueId>{q, b});
  selector.OnRecordHarvested(1);
  store.AddRecord(2, std::vector<ValueId>{q, x});
  selector.OnRecordHarvested(2);
  store.AddRecord(3, std::vector<ValueId>{q, y});
  selector.OnRecordHarvested(3);
  QueryOutcome outcome;
  outcome.value = q;
  selector.OnQueryCompleted(outcome);

  // Estimates: num~(A) ~ 9.4 (1 page), num~(B) ~ 20.7 (3 pages).
  EXPECT_GT(selector.EstimateMatches(b), 10.0);
  EXPECT_LT(selector.EstimateMatches(a), 10.0);
  double rate_a = selector.EstimateHarvestRateQdb(a);
  double rate_b = selector.EstimateHarvestRateQdb(b);
  EXPECT_GT(rate_a, rate_b);
  // The lazy ratio prefers B (22/2 = 11 > 10/1); the exact window must
  // still surface A.
  EXPECT_EQ(selector.SelectNext(), a);
}

}  // namespace
}  // namespace deepcrawl
