#include "tools/workload_setup.h"

#include <algorithm>
#include <utility>

#include "src/datagen/adversarial_workload.h"
#include "src/datagen/canned_workloads.h"
#include "src/datagen/textual_workload.h"
#include "src/datagen/workload_config.h"
#include "src/relation/tsv.h"

namespace deepcrawl {

void RegisterWorkloadFlags(FlagParser& parser, WorkloadFlagOptions* options) {
  parser.AddString("input", &options->input,
                   "TSV file with the target database (see src/relation/"
                   "tsv.h for the format)");
  parser.AddString("workload", &options->workload,
                   "generate a canned workload instead: "
                   "ebay|acm|dblp|imdb|adversarial|textual|mixed");
  parser.AddDouble("scale", &options->scale,
                   "scale factor for --workload (1.0 = paper size)");
  parser.AddInt64("gen-seed", &options->gen_seed,
                  "generator seed for --workload");
  parser.AddString("adv-family", &options->adv_family,
                   "adversarial family: trap (greedy pays ω(OPT)) | skew "
                   "(additive-log descent overhead)");
  parser.AddInt64("adv-buckets", &options->adv_buckets,
                  "adversarial: requested non-decoy rank buckets "
                  "(rounded up to a power of two with the decoys)");
  parser.AddInt64("adv-records", &options->adv_records,
                  "adversarial: records per occupied bucket (= the "
                  "server result limit the instance assumes)");
  parser.AddInt64("adv-decoy-buckets", &options->adv_decoy_buckets,
                  "adversarial trap: buckets carrying decoy mass");
  parser.AddInt64("adv-decoy-width", &options->adv_decoy_width,
                  "adversarial trap: unique decoy values per trapped "
                  "record");
  parser.AddInt64("adv-occupied", &options->adv_occupied,
                  "adversarial skew: occupied lowest buckets");
  parser.AddInt64("txt-topics", &options->txt_topics,
                  "textual/mixed: number of topic slices in the "
                  "vocabulary");
  parser.AddDouble("txt-affinity", &options->txt_affinity,
                   "textual/mixed: probability a term draw comes from "
                   "the document's topic slice");
}

StatusOr<Table> LoadTargetTable(const WorkloadFlagOptions& options,
                                std::optional<AdversarialGroundTruth>& adv) {
  if (!options.input.empty()) return ReadTableTsvFile(options.input);
  if (options.workload == "adversarial") {
    AdversarialConfig config;
    if (options.adv_family == "trap") {
      config.family = AdversarialFamily::kGreedyTrap;
    } else if (options.adv_family == "skew") {
      config.family = AdversarialFamily::kSkewedChain;
    } else {
      return Status::InvalidArgument("unknown --adv-family '" +
                                     options.adv_family + "' (trap|skew)");
    }
    config.leaf_buckets = static_cast<uint32_t>(options.adv_buckets);
    config.bucket_records = static_cast<uint32_t>(options.adv_records);
    config.decoy_buckets =
        static_cast<uint32_t>(options.adv_decoy_buckets);
    config.decoy_width = static_cast<uint32_t>(options.adv_decoy_width);
    config.occupied_leaves = static_cast<uint32_t>(options.adv_occupied);
    config.seed = static_cast<uint64_t>(options.gen_seed);
    DEEPCRAWL_ASSIGN_OR_RETURN(AdversarialInstance instance,
                               GenerateAdversarialInstance(config));
    adv.emplace();
    adv->opt_queries = instance.opt_queries;
    adv->result_limit = instance.result_limit;
    adv->root_value = instance.root_value;
    return std::move(instance.table);
  }
  if (options.workload == "ebay") {
    return GenerateTable(EbayConfig(options.scale, options.gen_seed));
  }
  if (options.workload == "acm") {
    return GenerateTable(AcmDlConfig(options.scale, options.gen_seed));
  }
  if (options.workload == "dblp") {
    return GenerateTable(DblpConfig(options.scale, options.gen_seed));
  }
  if (options.workload == "imdb") {
    return GenerateTable(ImdbConfig(options.scale, options.gen_seed));
  }
  if (options.workload == "textual" || options.workload == "mixed") {
    TextualDbConfig config;
    config.num_documents = static_cast<uint32_t>(
        std::max(1.0, 20000.0 * options.scale));
    config.vocabulary = static_cast<uint32_t>(
        std::max(16.0, 30000.0 * options.scale));
    config.num_topics = static_cast<uint32_t>(std::max<int64_t>(
        1, std::min<int64_t>(options.txt_topics, config.vocabulary)));
    config.topic_affinity = options.txt_affinity;
    config.mixed = options.workload == "mixed";
    config.seed = static_cast<uint64_t>(options.gen_seed);
    return GenerateTextualTable(config);
  }
  return Status::InvalidArgument(
      "give --input=<tsv> or "
      "--workload=ebay|acm|dblp|imdb|adversarial|textual|mixed");
}

void RegisterFaultFlags(FlagParser& parser, FaultFlagOptions* options) {
  parser.AddString("fault-profile", &options->fault_profile,
                   "fault-injection preset: none|flaky|lossy|hostile");
  parser.AddDouble("fault-unavailable", &options->fault_unavailable,
                   "per-round probability of transient unavailability "
                   "(overrides the preset; negative = keep preset)");
  parser.AddDouble("fault-timeout", &options->fault_timeout,
                   "per-round probability of a deadline timeout");
  parser.AddDouble("fault-rate-limit", &options->fault_rate_limit,
                   "per-round probability of a rate-limit rejection");
  parser.AddDouble("fault-truncate", &options->fault_truncate,
                   "per-round probability of a silently truncated page");
  parser.AddDouble("fault-duplicate", &options->fault_duplicate,
                   "per-round probability of a duplicate-record echo");
  parser.AddInt64("fault-retry-after", &options->fault_retry_after,
                  "retry-after hint (rounds) on rate-limit rejections");
  parser.AddInt64("fault-seed", &options->fault_seed,
                  "RNG seed for fault injection and retry jitter");
  parser.AddBool("fault-keyed", &options->fault_keyed,
                 "key fault decisions by (query, page, attempt) instead "
                 "of fetch arrival order (forced on for parallel crawls)");
}

StatusOr<FaultProfile> BuildFaultProfile(const FaultFlagOptions& options) {
  FaultProfile profile;
  if (options.fault_profile == "flaky") {
    // ~10% of rounds lost to transient failures, mixed kinds.
    profile.unavailable_rate = 0.05;
    profile.timeout_rate = 0.03;
    profile.rate_limit_rate = 0.02;
  } else if (options.fault_profile == "lossy") {
    // Pages silently lose or repeat records; no hard failures.
    profile.truncate_rate = 0.05;
    profile.duplicate_rate = 0.05;
  } else if (options.fault_profile == "hostile") {
    // Both at once, at rates that make retries and re-queues routine.
    profile.unavailable_rate = 0.10;
    profile.timeout_rate = 0.05;
    profile.rate_limit_rate = 0.05;
    profile.truncate_rate = 0.05;
    profile.duplicate_rate = 0.02;
  } else if (options.fault_profile != "none") {
    return Status::InvalidArgument("unknown --fault-profile '" +
                                   options.fault_profile +
                                   "' (none|flaky|lossy|hostile)");
  }
  if (options.fault_unavailable >= 0.0) {
    profile.unavailable_rate = options.fault_unavailable;
  }
  if (options.fault_timeout >= 0.0) profile.timeout_rate = options.fault_timeout;
  if (options.fault_rate_limit >= 0.0) {
    profile.rate_limit_rate = options.fault_rate_limit;
  }
  if (options.fault_truncate >= 0.0) {
    profile.truncate_rate = options.fault_truncate;
  }
  if (options.fault_duplicate >= 0.0) {
    profile.duplicate_rate = options.fault_duplicate;
  }
  profile.retry_after_rounds =
      static_cast<uint32_t>(options.fault_retry_after);
  double sum = profile.unavailable_rate + profile.timeout_rate +
               profile.rate_limit_rate + profile.truncate_rate +
               profile.duplicate_rate;
  if (sum > 1.0) {
    return Status::InvalidArgument(
        "--fault-* rates must sum to at most 1 (got " + std::to_string(sum) +
        ")");
  }
  return profile;
}

}  // namespace deepcrawl
