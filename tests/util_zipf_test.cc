#include "src/util/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/random.h"

namespace deepcrawl {
namespace {

TEST(ZipfSamplerTest, PmfSumsToOne) {
  ZipfSampler zipf(100, 1.0);
  double total = 0.0;
  for (uint32_t i = 0; i < 100; ++i) total += zipf.Pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, PmfIsMonotoneDecreasing) {
  ZipfSampler zipf(50, 1.2);
  for (uint32_t i = 1; i < 50; ++i) {
    EXPECT_GE(zipf.Pmf(i - 1), zipf.Pmf(i));
  }
}

TEST(ZipfSamplerTest, ExponentZeroIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(zipf.Pmf(i), 0.1, 1e-9);
  }
}

TEST(ZipfSamplerTest, PmfRatioMatchesExponent) {
  // P(0) / P(1) should equal 2^s for Zipf(s).
  ZipfSampler zipf(1000, 1.5);
  EXPECT_NEAR(zipf.Pmf(0) / zipf.Pmf(1), std::pow(2.0, 1.5), 1e-9);
}

TEST(ZipfSamplerTest, SamplingMatchesPmf) {
  ZipfSampler zipf(20, 1.0);
  Pcg32 rng(42);
  constexpr int kDraws = 200000;
  std::vector<int> counts(20, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Sample(rng)];
  for (uint32_t i = 0; i < 20; ++i) {
    double expected = zipf.Pmf(i) * kDraws;
    EXPECT_NEAR(counts[i], expected, 5 * std::sqrt(expected) + 10)
        << "rank " << i;
  }
}

TEST(ZipfSamplerTest, SingleItemAlwaysRankZero) {
  ZipfSampler zipf(1, 1.0);
  Pcg32 rng(1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

class FastZipfParamTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(FastZipfParamTest, StaysInRangeAndHitsHead) {
  auto [n, s] = GetParam();
  FastZipfSampler zipf(n, s);
  Pcg32 rng(77);
  uint64_t head_hits = 0;
  for (int i = 0; i < 20000; ++i) {
    uint64_t k = zipf.Sample(rng);
    ASSERT_LT(k, n);
    if (k == 0) ++head_hits;
  }
  // Rank 0 is the most probable rank for any positive exponent.
  EXPECT_GT(head_hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FastZipfParamTest,
    ::testing::Values(std::make_tuple(10ull, 0.5),
                      std::make_tuple(1000ull, 0.99),
                      std::make_tuple(1000ull, 1.0),
                      std::make_tuple(100000ull, 1.2),
                      std::make_tuple(5ull, 2.0)));

TEST(FastZipfSamplerTest, AgreesWithExactSamplerOnHeadMass) {
  // Compare empirical head-rank frequency of the two samplers.
  constexpr uint64_t kN = 500;
  constexpr double kS = 1.1;
  ZipfSampler exact(kN, kS);
  FastZipfSampler fast(kN, kS);
  Pcg32 rng1(5), rng2(5);
  constexpr int kDraws = 100000;
  int exact_head = 0, fast_head = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (exact.Sample(rng1) < 3) ++exact_head;
    if (fast.Sample(rng2) < 3) ++fast_head;
  }
  EXPECT_NEAR(static_cast<double>(exact_head) / kDraws,
              static_cast<double>(fast_head) / kDraws, 0.01);
}

}  // namespace
}  // namespace deepcrawl
