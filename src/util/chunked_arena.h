// ChunkedArena: per-row growable lists packed into one flat arena — a
// dynamic CSR layout with amortized relocation and epoch compaction.
//
// The LocalStore keeps two families of per-value lists that grow one
// element at a time as records are harvested: the local postings
// (record slots containing a value) and the local-AVG adjacency
// (distinct co-occurring values). Holding each list in its own
// std::vector (let alone std::unordered_set) costs an allocation per
// list plus scattered heap traffic on every scan. This container packs
// every row into a single contiguous arena:
//
//   * each row owns a [offset, offset+capacity) chunk of the arena;
//   * Append into a full row relocates it to the arena tail with
//     doubled capacity (amortized O(1), classic dynamic-CSR move);
//   * abandoned chunks are garbage until the arena's live fraction
//     drops below half, at which point one compaction pass rebuilds the
//     arena dense in row order (the "epoch" rebuild — O(live) work
//     amortized over the doubling that triggered it).
//
// Row spans are invalidated by any Append (relocation or compaction may
// move them), which matches the LocalStore contract that spans do not
// survive AddRecord. Row contents keep their append order across
// relocation and compaction, so consumers observe a deterministic,
// layout-independent sequence.

#ifndef DEEPCRAWL_UTIL_CHUNKED_ARENA_H_
#define DEEPCRAWL_UTIL_CHUNKED_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <algorithm>
#include <span>
#include <vector>

#include "src/util/logging.h"

namespace deepcrawl {

template <typename T>
class ChunkedArena {
 public:
  ChunkedArena() = default;

  // Grows the row directory to hold at least `n` rows (new rows empty).
  void EnsureRows(size_t n) {
    if (n > rows_.size()) rows_.resize(n);
  }

  size_t num_rows() const { return rows_.size(); }

  void Append(size_t row, T value) {
    DEEPCRAWL_DCHECK(row < rows_.size()) << "row out of range";
    RowMeta& meta = rows_[row];
    if (meta.size == meta.capacity) Relocate(row);
    arena_[rows_[row].offset + rows_[row].size] = value;
    ++rows_[row].size;
    ++live_;
  }

  std::span<const T> Row(size_t row) const {
    if (row >= rows_.size()) return {};
    const RowMeta& meta = rows_[row];
    return std::span<const T>(arena_.data() + meta.offset, meta.size);
  }

  // Mutable view of a row's live elements, for in-place reorder or
  // overwrite (e.g. keeping a row sorted). Same invalidation rules as
  // Row; the row's size cannot be changed through the span.
  std::span<T> MutableRow(size_t row) {
    if (row >= rows_.size()) return {};
    const RowMeta& meta = rows_[row];
    return std::span<T>(arena_.data() + meta.offset, meta.size);
  }

  uint32_t RowSize(size_t row) const {
    return row < rows_.size() ? rows_[row].size : 0;
  }

  // Total live elements across all rows.
  size_t size() const { return live_; }
  // Arena footprint including garbage chunks (for tests/diagnostics).
  size_t arena_capacity() const { return arena_.size(); }
  // Elements in abandoned chunks awaiting the next epoch compaction
  // (for tests/diagnostics).
  size_t arena_garbage() const { return garbage_; }

 private:
  struct RowMeta {
    size_t offset = 0;
    uint32_t size = 0;
    uint32_t capacity = 0;
  };

  void Relocate(size_t row) {
    uint32_t new_capacity =
        rows_[row].capacity == 0 ? 4 : rows_[row].capacity * 2;
    // Epoch compaction: once more than half the arena is abandoned
    // chunks (counting the chunk this relocation is about to abandon),
    // rebuild it dense (in row order) instead of growing it.
    if (garbage_ + rows_[row].capacity > live_ + new_capacity &&
        arena_.size() >= 1024) {
      Compact();
    }
    // Counted after a possible Compact(): whichever chunk the row
    // occupies *now* (the original, or its freshly compacted copy of
    // capacity == size) is what the move below abandons.
    RowMeta& moved = rows_[row];
    garbage_ += moved.capacity;
    size_t new_offset = arena_.size();
    arena_.resize(arena_.size() + new_capacity);
    std::copy(arena_.begin() + static_cast<ptrdiff_t>(moved.offset),
              arena_.begin() + static_cast<ptrdiff_t>(moved.offset) +
                  moved.size,
              arena_.begin() + static_cast<ptrdiff_t>(new_offset));
    moved.offset = new_offset;
    moved.capacity = new_capacity;
    // Live elements plus abandoned chunks can never exceed the arena:
    // the slack is exactly the unused tail capacity of live chunks.
    DEEPCRAWL_DCHECK(garbage_ + live_ <= arena_.size())
        << "arena garbage accounting out of bounds";
  }

  void Compact() {
    std::vector<T> dense;
    dense.reserve(live_);
    for (RowMeta& meta : rows_) {
      size_t new_offset = dense.size();
      dense.insert(dense.end(), arena_.begin() + meta.offset,
                   arena_.begin() + meta.offset + meta.size);
      meta.offset = new_offset;
      meta.capacity = meta.size;
    }
    arena_ = std::move(dense);
    garbage_ = 0;
  }

  std::vector<RowMeta> rows_;
  std::vector<T> arena_;
  size_t live_ = 0;
  size_t garbage_ = 0;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_UTIL_CHUNKED_ARENA_H_
