// Unit tests for the competitive-optimal selector family
// (src/crawler/optimal_selector.h): interval parsing, hierarchy
// construction, the rank/threshold descent mechanics (right-before-left
// order, count-arithmetic skipping, empty-result and degraded-drain
// handling, deterministic tie-breaking), and SELC checkpoint round-trip
// including options/hierarchy mismatch rejection. The end-to-end
// competitive bounds live in
// tests/crawler_optimal_competitive_property_test.cc.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/crawler/local_store.h"
#include "src/crawler/optimal_selector.h"
#include "src/util/checkpoint_io.h"
#include "tests/test_util.h"

namespace deepcrawl {
namespace {

using testing_util::GetValueId;
using testing_util::MakeTable;
using testing_util::Row;

TEST(OptimalSelectorTest, ParseIntervalAcceptsWellFormed) {
  uint32_t lo = 99;
  uint32_t hi = 99;
  EXPECT_TRUE(QueryHierarchy::ParseInterval("r0-3", lo, hi));
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 3u);
  EXPECT_TRUE(QueryHierarchy::ParseInterval("r007-012", lo, hi));
  EXPECT_EQ(lo, 7u);
  EXPECT_EQ(hi, 12u);
  EXPECT_TRUE(QueryHierarchy::ParseInterval("r5-5", lo, hi));
  EXPECT_EQ(lo, 5u);
  EXPECT_EQ(hi, 5u);
}

TEST(OptimalSelectorTest, ParseIntervalRejectsMalformed) {
  uint32_t lo = 0;
  uint32_t hi = 0;
  EXPECT_FALSE(QueryHierarchy::ParseInterval("", lo, hi));
  EXPECT_FALSE(QueryHierarchy::ParseInterval("r", lo, hi));
  EXPECT_FALSE(QueryHierarchy::ParseInterval("r0-", lo, hi));
  EXPECT_FALSE(QueryHierarchy::ParseInterval("r-3", lo, hi));
  EXPECT_FALSE(QueryHierarchy::ParseInterval("x0-3", lo, hi));
  EXPECT_FALSE(QueryHierarchy::ParseInterval("r0_3", lo, hi));
  EXPECT_FALSE(QueryHierarchy::ParseInterval("r3-0", lo, hi));  // lo > hi
  EXPECT_FALSE(QueryHierarchy::ParseInterval("r0-3x", lo, hi));
  EXPECT_FALSE(QueryHierarchy::ParseInterval("r0-1234567890", lo, hi));
}

// The standard fixture: a complete dyadic hierarchy over 4 buckets, one
// record per bucket carrying its full ancestor chain plus a "name"
// value outside the hierarchy.
Table DyadicTable() {
  std::vector<Row> rows;
  const char* mids[] = {"r0-1", "r0-1", "r2-3", "r2-3"};
  for (int bucket = 0; bucket < 4; ++bucket) {
    rows.push_back(Row{{"range", "r0-3"},
                       {"range", mids[bucket]},
                       {"range", "r" + std::to_string(bucket) + "-" +
                                     std::to_string(bucket)},
                       {"name", "n" + std::to_string(bucket)}});
  }
  return MakeTable(rows);
}

QueryHierarchy HierarchyOf(const Table& table) {
  StatusOr<AttributeId> attr = table.schema().FindAttribute("range");
  DEEPCRAWL_CHECK(attr.ok());
  StatusOr<QueryHierarchy> hierarchy =
      QueryHierarchy::FromCatalog(table.catalog(), *attr);
  DEEPCRAWL_CHECK(hierarchy.ok()) << hierarchy.status().ToString();
  return std::move(hierarchy).value();
}

TEST(OptimalSelectorTest, FromCatalogBuildsNestedForest) {
  Table table = DyadicTable();
  QueryHierarchy hierarchy = HierarchyOf(table);
  ASSERT_EQ(hierarchy.num_nodes(), 7u);  // 1 + 2 + 4
  ASSERT_EQ(hierarchy.roots().size(), 1u);
  const QueryHierarchy::Node& root = hierarchy.node(hierarchy.roots()[0]);
  EXPECT_EQ(root.lo, 0u);
  EXPECT_EQ(root.hi, 3u);
  EXPECT_EQ(root.parent, QueryHierarchy::kNoNode);
  ASSERT_EQ(root.children.size(), 2u);
  // Children sorted ascending by lo.
  const QueryHierarchy::Node& left = hierarchy.node(root.children[0]);
  const QueryHierarchy::Node& right = hierarchy.node(root.children[1]);
  EXPECT_EQ(left.lo, 0u);
  EXPECT_EQ(left.hi, 1u);
  EXPECT_EQ(right.lo, 2u);
  EXPECT_EQ(right.hi, 3u);
  ASSERT_EQ(left.children.size(), 2u);
  ASSERT_EQ(right.children.size(), 2u);
  EXPECT_EQ(hierarchy.node(left.children[0]).lo, 0u);
  EXPECT_EQ(hierarchy.node(left.children[1]).lo, 1u);

  // Value <-> node mapping round-trips; non-hierarchy values map to
  // kNoNode.
  ValueId root_value = GetValueId(table, "range", "r0-3");
  EXPECT_EQ(hierarchy.node(hierarchy.NodeOf(root_value)).value, root_value);
  EXPECT_EQ(hierarchy.NodeOf(GetValueId(table, "name", "n0")),
            QueryHierarchy::kNoNode);
}

TEST(OptimalSelectorTest, FromCatalogIgnoresNonIntervalTexts) {
  Table table = MakeTable({
      {{"range", "r0-1"}, {"range", "cheap"}, {"name", "n0"}},
      {{"range", "r0-1"}, {"range", "r9"}, {"name", "n1"}},
  });
  QueryHierarchy hierarchy = HierarchyOf(table);
  EXPECT_EQ(hierarchy.num_nodes(), 1u);
}

TEST(OptimalSelectorTest, FromCatalogEmptyWithoutAttribute) {
  Table table = MakeTable({{{"name", "n0"}}});
  StatusOr<QueryHierarchy> hierarchy =
      QueryHierarchy::FromCatalog(table.catalog(), kInvalidAttributeId);
  ASSERT_TRUE(hierarchy.ok());
  EXPECT_TRUE(hierarchy->empty());
}

TEST(OptimalSelectorTest, FromCatalogRejectsPartialOverlap) {
  Table table = MakeTable({
      {{"range", "r0-3"}, {"name", "n0"}},
      {{"range", "r2-5"}, {"name", "n1"}},
  });
  StatusOr<AttributeId> attr = table.schema().FindAttribute("range");
  ASSERT_TRUE(attr.ok());
  StatusOr<QueryHierarchy> hierarchy =
      QueryHierarchy::FromCatalog(table.catalog(), *attr);
  ASSERT_FALSE(hierarchy.ok());
  EXPECT_EQ(hierarchy.status().code(), StatusCode::kInvalidArgument);
}

TEST(OptimalSelectorTest, FromCatalogRejectsDuplicateInterval) {
  // Distinct catalog texts denoting the same interval ("r1-2" vs
  // "r01-2") would make the descent ambiguous.
  Table table = MakeTable({
      {{"range", "r1-2"}, {"name", "n0"}},
      {{"range", "r01-2"}, {"name", "n1"}},
  });
  StatusOr<AttributeId> attr = table.schema().FindAttribute("range");
  ASSERT_TRUE(attr.ok());
  StatusOr<QueryHierarchy> hierarchy =
      QueryHierarchy::FromCatalog(table.catalog(), *attr);
  ASSERT_FALSE(hierarchy.ok());
  EXPECT_EQ(hierarchy.status().code(), StatusCode::kInvalidArgument);
}

// Completes an issued hierarchy value with a count.
QueryOutcome CountedOutcome(ValueId value, uint32_t total,
                            uint32_t returned) {
  QueryOutcome outcome;
  outcome.value = value;
  outcome.total_matches = total;
  outcome.records_returned = returned;
  outcome.new_records = returned;
  return outcome;
}

TEST(OptimalSelectorTest, RankDescendsRightBeforeLeft) {
  Table table = DyadicTable();
  LocalStore store;
  OptimalSelectorOptions options;
  options.result_limit = 1;
  RankOptimalSelector selector(store, HierarchyOf(table), options);
  EXPECT_EQ(selector.name(), "opt-rank");

  ValueId root = GetValueId(table, "range", "r0-3");
  selector.OnValueDiscovered(root);
  ASSERT_EQ(selector.SelectNext(), root);
  selector.OnQueryCompleted(CountedOutcome(root, /*total=*/4,
                                           /*returned=*/1));

  // Root overflowed (4 > 1): children surface right child FIRST.
  ASSERT_EQ(selector.SelectNext(), GetValueId(table, "range", "r2-3"));
  selector.OnQueryCompleted(CountedOutcome(
      GetValueId(table, "range", "r2-3"), /*total=*/2, /*returned=*/1));
  // r0-1 pops next (queued before r2-3's children); its implied count is
  // 4 - 2 = 2, not held locally (empty store), so it is queried.
  ASSERT_EQ(selector.SelectNext(), GetValueId(table, "range", "r0-1"));
  selector.OnQueryCompleted(CountedOutcome(
      GetValueId(table, "range", "r0-1"), /*total=*/2, /*returned=*/1));
  // Then r2-3's children right-first, then r0-1's.
  EXPECT_EQ(selector.SelectNext(), GetValueId(table, "range", "r3-3"));
  EXPECT_EQ(selector.descent_queries(), 4u);
  EXPECT_EQ(selector.overflowed_nodes(), 3u);
}

TEST(OptimalSelectorTest, CountArithmeticSkipsProvenEmptySibling) {
  Table table = DyadicTable();
  LocalStore store;
  OptimalSelectorOptions options;
  options.result_limit = 1;
  RankOptimalSelector selector(store, HierarchyOf(table), options);

  ValueId root = GetValueId(table, "range", "r0-3");
  selector.OnValueDiscovered(root);
  ASSERT_EQ(selector.SelectNext(), root);
  // Root claims 2 total; the right subtree accounts for both, so the
  // left subtree's implied count is zero and it is never queried.
  selector.OnQueryCompleted(CountedOutcome(root, /*total=*/2,
                                           /*returned=*/1));
  ValueId right = GetValueId(table, "range", "r2-3");
  ASSERT_EQ(selector.SelectNext(), right);
  selector.OnQueryCompleted(CountedOutcome(right, /*total=*/2,
                                           /*returned=*/1));
  // Next pop is r0-1: implied 2 - 2 = 0 -> skipped; descent continues
  // into r2-3's children.
  EXPECT_EQ(selector.SelectNext(), GetValueId(table, "range", "r3-3"));
  EXPECT_EQ(selector.skipped_by_count(), 1u);
}

TEST(OptimalSelectorTest, EmptyResultResolvesWithoutChildren) {
  Table table = DyadicTable();
  LocalStore store;
  OptimalSelectorOptions options;
  options.result_limit = 1;
  RankOptimalSelector selector(store, HierarchyOf(table), options);

  ValueId root = GetValueId(table, "range", "r0-3");
  selector.OnValueDiscovered(root);
  ASSERT_EQ(selector.SelectNext(), root);
  selector.OnQueryCompleted(CountedOutcome(root, /*total=*/0,
                                           /*returned=*/0));
  // No overflow, no children, frontier empty.
  EXPECT_EQ(selector.SelectNext(), kInvalidValueId);
  EXPECT_EQ(selector.overflowed_nodes(), 0u);
  EXPECT_EQ(selector.resolved_nodes(), 1u);
}

TEST(OptimalSelectorTest, DegradedDrainTreatedAsOverflow) {
  Table table = DyadicTable();
  LocalStore store;
  OptimalSelectorOptions options;
  options.result_limit = 1;
  RankOptimalSelector selector(store, HierarchyOf(table), options);

  ValueId root = GetValueId(table, "range", "r0-3");
  selector.OnValueDiscovered(root);
  ASSERT_EQ(selector.SelectNext(), root);
  QueryOutcome outcome;
  outcome.value = root;
  outcome.total_matches = 1;  // would NOT overflow on its own
  outcome.records_returned = 0;
  outcome.degraded = true;  // pages lost: children must re-cover
  selector.OnQueryCompleted(outcome);
  EXPECT_EQ(selector.SelectNext(), GetValueId(table, "range", "r2-3"));
  EXPECT_EQ(selector.overflowed_nodes(), 1u);
}

TEST(OptimalSelectorTest, ThresholdModeUsesReturnedCountOnly) {
  Table table = DyadicTable();
  LocalStore store;
  OptimalSelectorOptions options;
  options.mode = OptimalMode::kThreshold;
  options.result_limit = 2;
  RankOptimalSelector selector(store, HierarchyOf(table), options);
  EXPECT_EQ(selector.name(), "opt-threshold");

  ValueId root = GetValueId(table, "range", "r0-3");
  selector.OnValueDiscovered(root);
  ASSERT_EQ(selector.SelectNext(), root);
  // A full window (returned == limit) is treated as overflowing even
  // with a total count that says otherwise — threshold mode never
  // trusts counts.
  QueryOutcome full;
  full.value = root;
  full.total_matches = 2;
  full.records_returned = 2;
  selector.OnQueryCompleted(full);
  ValueId right = GetValueId(table, "range", "r2-3");
  ASSERT_EQ(selector.SelectNext(), right);

  // A partial window resolves the node: no children enqueued.
  QueryOutcome partial;
  partial.value = right;
  partial.records_returned = 1;
  selector.OnQueryCompleted(partial);
  // Left sibling pops next; threshold mode never count-skips.
  EXPECT_EQ(selector.SelectNext(), GetValueId(table, "range", "r0-1"));
  EXPECT_EQ(selector.skipped_by_count(), 0u);
}

TEST(OptimalSelectorTest, NonHierarchyValuesFallBackToGreedy) {
  Table table = DyadicTable();
  LocalStore store;
  RankOptimalSelector selector(store, HierarchyOf(table),
                               OptimalSelectorOptions{});
  ValueId name = GetValueId(table, "name", "n0");
  selector.OnValueDiscovered(name);
  EXPECT_EQ(selector.SelectNext(), name);
  EXPECT_EQ(selector.fallback_selects(), 1u);
  EXPECT_TRUE(selector.MaySelectUndiscovered());
}

TEST(OptimalSelectorTest, DeterministicAcrossIdenticalRuns) {
  Table table = DyadicTable();
  QueryHierarchy reference = HierarchyOf(table);
  auto run = [&table, &reference] {
    LocalStore store;
    OptimalSelectorOptions options;
    options.result_limit = 1;
    RankOptimalSelector selector(store, HierarchyOf(table), options);
    std::vector<ValueId> picks;
    selector.OnValueDiscovered(GetValueId(table, "range", "r0-3"));
    for (int step = 0; step < 16; ++step) {
      ValueId v = selector.SelectNext();
      if (v == kInvalidValueId) break;
      picks.push_back(v);
      // Each node reports one record per bucket: internal nodes overflow
      // (width > limit 1), leaves resolve, and no implied count ever
      // hits zero — every node of the tree gets queried.
      const QueryHierarchy::Node& n =
          reference.node(reference.NodeOf(v));
      selector.OnQueryCompleted(
          CountedOutcome(v, /*total=*/n.hi - n.lo + 1, /*returned=*/1));
    }
    return picks;
  };
  std::vector<ValueId> first = run();
  EXPECT_EQ(first.size(), 7u);  // the full tree
  EXPECT_EQ(first, run());
}

// --- SELC checkpoint state ------------------------------------------

TEST(OptimalSelectorTest, CheckpointRoundTripsMidDescent) {
  Table table = DyadicTable();
  LocalStore store;
  OptimalSelectorOptions options;
  options.result_limit = 1;
  RankOptimalSelector selector(store, HierarchyOf(table), options);

  // Advance mid-descent: root resolved, both halves queued, right half
  // issued+resolved, leaves queued.
  ValueId root = GetValueId(table, "range", "r0-3");
  selector.OnValueDiscovered(root);
  ASSERT_EQ(selector.SelectNext(), root);
  selector.OnQueryCompleted(CountedOutcome(root, 4, 1));
  ValueId right = GetValueId(table, "range", "r2-3");
  ASSERT_EQ(selector.SelectNext(), right);
  selector.OnQueryCompleted(CountedOutcome(right, 2, 1));

  CheckpointWriter writer;
  ASSERT_TRUE(selector.SaveState(writer).ok());
  std::string image = writer.TakeBuffer();

  LocalStore other_store;
  RankOptimalSelector restored(other_store, HierarchyOf(table), options);
  CheckpointReader reader(image);
  Status loaded = restored.LoadState(
      reader, static_cast<ValueId>(table.num_distinct_values()));
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(restored.descent_queries(), selector.descent_queries());
  EXPECT_EQ(restored.resolved_nodes(), selector.resolved_nodes());
  EXPECT_EQ(restored.overflowed_nodes(), selector.overflowed_nodes());

  // Both continue with the identical pick sequence to exhaustion.
  for (;;) {
    ValueId a = selector.SelectNext();
    ValueId b = restored.SelectNext();
    ASSERT_EQ(a, b);
    if (a == kInvalidValueId) break;
    selector.OnQueryCompleted(CountedOutcome(a, 1, 1));
    restored.OnQueryCompleted(CountedOutcome(b, 1, 1));
  }
}

TEST(OptimalSelectorTest, CheckpointRejectsOptionsMismatch) {
  Table table = DyadicTable();
  LocalStore store;
  OptimalSelectorOptions rank_options;
  rank_options.result_limit = 1;
  RankOptimalSelector selector(store, HierarchyOf(table), rank_options);
  CheckpointWriter writer;
  ASSERT_TRUE(selector.SaveState(writer).ok());
  std::string image = writer.TakeBuffer();
  ValueId bound = static_cast<ValueId>(table.num_distinct_values());

  // Different mode.
  {
    OptimalSelectorOptions options;
    options.mode = OptimalMode::kThreshold;
    options.result_limit = 1;
    RankOptimalSelector restored(store, HierarchyOf(table), options);
    CheckpointReader reader(image);
    Status loaded = restored.LoadState(reader, bound);
    EXPECT_EQ(loaded.code(), StatusCode::kInvalidArgument);
  }
  // Different result limit.
  {
    OptimalSelectorOptions options;
    options.result_limit = 2;
    RankOptimalSelector restored(store, HierarchyOf(table), options);
    CheckpointReader reader(image);
    Status loaded = restored.LoadState(reader, bound);
    EXPECT_EQ(loaded.code(), StatusCode::kInvalidArgument);
  }
  // Different hierarchy (another table's forest).
  {
    Table other = MakeTable({
        {{"range", "r0-1"}, {"name", "n0"}},
        {{"range", "r0-0"}, {"name", "n1"}},
    });
    RankOptimalSelector restored(store, HierarchyOf(other), rank_options);
    CheckpointReader reader(image);
    Status loaded = restored.LoadState(reader, bound);
    EXPECT_EQ(loaded.code(), StatusCode::kInvalidArgument);
  }
}

TEST(OptimalSelectorTest, CheckpointRejectsCorruptDescentQueue) {
  Table table = DyadicTable();
  LocalStore store;
  OptimalSelectorOptions options;
  options.result_limit = 1;
  RankOptimalSelector selector(store, HierarchyOf(table), options);
  ValueId root = GetValueId(table, "range", "r0-3");
  selector.OnValueDiscovered(root);
  ASSERT_EQ(selector.SelectNext(), root);
  selector.OnQueryCompleted(CountedOutcome(root, 4, 1));  // 2 queued

  CheckpointWriter writer;
  ASSERT_TRUE(selector.SaveState(writer).ok());
  std::string image = writer.TakeBuffer();
  ValueId bound = static_cast<ValueId>(table.num_distinct_values());

  // Truncations and bit flips must produce clean errors, never crashes.
  for (size_t cut : {image.size() - 1, image.size() / 2, size_t{1}}) {
    RankOptimalSelector restored(store, HierarchyOf(table), options);
    CheckpointReader reader(std::string_view(image).substr(0, cut));
    EXPECT_FALSE(restored.LoadState(reader, bound).ok()) << "cut=" << cut;
  }
  for (size_t flip = 0; flip < image.size(); flip += 7) {
    std::string mutated = image;
    mutated[flip] = static_cast<char>(mutated[flip] ^ 0x2a);
    RankOptimalSelector restored(store, HierarchyOf(table), options);
    CheckpointReader reader(mutated);
    Status loaded = restored.LoadState(reader, bound);
    if (loaded.ok()) {
      // A flip may land in dead bytes; the restored selector must still
      // be usable without crashing.
      restored.SelectNext();
    }
  }
}

}  // namespace
}  // namespace deepcrawl
