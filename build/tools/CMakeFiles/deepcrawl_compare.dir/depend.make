# Empty dependencies file for deepcrawl_compare.
# This may be replaced when dependencies are built.
