file(REMOVE_RECURSE
  "CMakeFiles/deepcrawl_domain_tests.dir/domain_coverage_set_test.cc.o"
  "CMakeFiles/deepcrawl_domain_tests.dir/domain_coverage_set_test.cc.o.d"
  "CMakeFiles/deepcrawl_domain_tests.dir/domain_selector_test.cc.o"
  "CMakeFiles/deepcrawl_domain_tests.dir/domain_selector_test.cc.o.d"
  "CMakeFiles/deepcrawl_domain_tests.dir/domain_table_test.cc.o"
  "CMakeFiles/deepcrawl_domain_tests.dir/domain_table_test.cc.o.d"
  "deepcrawl_domain_tests"
  "deepcrawl_domain_tests.pdb"
  "deepcrawl_domain_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepcrawl_domain_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
