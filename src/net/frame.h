// Wire protocol of the WebDB TCP server (DESIGN.md §13).
//
// Every message travels as one length-prefixed frame:
//
//   offset 0   u32 frame length N (bytes that follow, little-endian)
//          4   N bytes: the checkpoint_io framing around the body —
//              magic "DCPK" | u32 wire version | u64 body size |
//              body | u64 FNV-1a checksum of the body
//
// The outer length prefix delimits frames on the byte stream; the inner
// checkpoint_io framing (src/util/checkpoint_io.h) carries the magic,
// version, and checksum, so a truncated, bit-flipped, or forged frame is
// rejected with a clean Status — the same corruption guarantees the
// checkpoint files enjoy, applied per message. Bodies are encoded with
// CheckpointWriter and decoded with the sticky-failure bounds-checked
// CheckpointReader, so corrupt input can produce an error, never a
// crash or an out-of-bounds read (fuzzed in tests/net_fuzz_test.cc).
//
// Conversation shape: the client opens with kHello and the server
// answers kServerInfo (interface schema: ServerOptions plus the
// queriable-value bitmap). After that the client sends fetch requests —
// any number may be in flight (pipelining); the server answers each
// with a kPageResult carrying the request's id, IN REQUEST ORDER per
// connection. kGoAway is the server's graceful-shedding message: sent
// to a brand-new connection when the connection cap is reached, it maps
// to a retryable kUnavailable on the client.
//
// Every StatusCode crosses the wire faithfully, including the
// Status::WithRetryAfter hint rate-limiting sources attach — the
// crawler's retry/backoff machinery behaves identically against a
// remote source and an in-process one (round-trip tested per variant in
// tests/net_frame_test.cc).

#ifndef DEEPCRAWL_NET_FRAME_H_
#define DEEPCRAWL_NET_FRAME_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/relation/types.h"
#include "src/server/query_interface.h"
#include "src/util/checkpoint_io.h"
#include "src/util/status.h"

namespace deepcrawl {

// Bump on ANY body-layout change; peers reject other versions.
inline constexpr uint32_t kWireProtocolVersion = 1;

// Ceiling on one frame (length prefix excluded). A forged length field
// can never drive a larger allocation; real pages are far smaller.
inline constexpr uint32_t kMaxWireFrameBytes = 16u << 20;

enum class WireMessageType : uint8_t {
  kHello = 1,       // client -> server: protocol handshake
  kServerInfo = 2,  // server -> client: interface schema
  kFetchPage = 3,
  kFetchPageByText = 4,
  kFetchPageByKeyword = 5,
  kFetchPageConjunctive = 6,
  kFetchPageKeywordOf = 7,
  kPageResult = 8,  // server -> client: response to any fetch
  kGoAway = 9,      // server -> client: connection shed, retry later
};

// --- status over the wire --------------------------------------------

// Stable on-wire code for every StatusCode (independent of the enum's
// in-memory numbering, so reordering the enum cannot silently change
// the protocol).
uint8_t WireStatusCode(StatusCode code);
StatusOr<StatusCode> StatusCodeFromWire(uint8_t wire_code);

// Serializes code, message, and the optional retry-after hint.
void EncodeStatus(CheckpointWriter& writer, const Status& status);
// Decode failures latch `reader`; check reader.status() after.
Status DecodeStatus(CheckpointReader& reader);

// --- messages ---------------------------------------------------------

// A fetch request, any form. `type` selects which fields are meaningful
// (mirroring the QueryInterface method signatures).
struct WireRequest {
  WireMessageType type = WireMessageType::kFetchPage;
  uint64_t request_id = 0;
  ValueId value = kInvalidValueId;          // kFetchPage / kFetchPageKeywordOf
  AttributeId attr = kInvalidAttributeId;   // kFetchPageByText
  std::string text;                         // ...ByText / ...ByKeyword
  std::vector<ValueId> values;              // kFetchPageConjunctive
  uint32_t page_number = 0;
};

// The server's interface schema, shipped once per connection in
// kServerInfo so the client can answer options() and IsQueriableValue()
// locally (the selector probes queriability on its hot path; a network
// round trip per probe would be absurd).
struct WireServerInfo {
  ServerOptions options;
  uint32_t num_values = 0;
  std::vector<uint8_t> queriable_bitmap;  // bit v: value v is queriable

  bool IsQueriable(ValueId value) const {
    return value < num_values &&
           (queriable_bitmap[value >> 3] >> (value & 7u)) & 1u;
  }
};

// A decoded result page plus the storage its record spans point into.
// Movable: vector heap buffers are stable across moves, so the spans
// stay valid. Keep the struct alive as long as the page is in use.
struct DecodedPage {
  ResultPage page;
  std::vector<ValueId> values;  // all records' values, concatenated
};

// Any message a server sends; `type` selects the meaningful fields.
struct WireServerMessage {
  WireMessageType type = WireMessageType::kPageResult;
  WireServerInfo info;        // kServerInfo
  uint64_t request_id = 0;    // kPageResult
  Status status;              // kPageResult (fetch outcome) / kGoAway
  DecodedPage result;         // kPageResult when status.ok()
};

// --- encoding ---------------------------------------------------------

// Wraps an encoded body in the inner framing plus the length prefix.
std::string EncodeWireFrame(std::string_view body);

std::string EncodeHelloFrame();
std::string EncodeServerInfoFrame(const WireServerInfo& info);
std::string EncodeRequestFrame(const WireRequest& request);
// `result` is the backend's verbatim fetch outcome — error statuses
// (fault injections included) cross the wire unchanged.
std::string EncodeResponseFrame(uint64_t request_id,
                                const StatusOr<ResultPage>& result);
std::string EncodeGoAwayFrame(const Status& status);

// --- decoding ---------------------------------------------------------

// Server side: decodes a request body (kHello or any fetch form).
StatusOr<WireRequest> DecodeRequest(std::string_view body);
// Client side: decodes a server message body.
StatusOr<WireServerMessage> DecodeServerMessage(std::string_view body);

// Incremental frame extraction from a byte stream. Feed arbitrary
// chunks with Append; Next yields complete, checksum-verified frame
// bodies. Any malformed frame (bad length, magic, version, size, or
// checksum) is a STREAM error: framing sync is lost, so the connection
// must be closed — Next keeps returning the same error.
class FrameAssembler {
 public:
  explicit FrameAssembler(uint32_t max_frame_bytes = kMaxWireFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Append(std::string_view bytes);

  // True: a frame's body was extracted into `*body`. False: the stream
  // holds no complete frame yet (feed more bytes). Error: corrupt
  // stream, close the connection.
  StatusOr<bool> Next(std::string* body);

  // Bytes buffered but not yet consumed by Next (diagnostics).
  size_t buffered_bytes() const { return buffer_.size() - pos_; }

 private:
  uint32_t max_frame_bytes_;
  std::string buffer_;
  size_t pos_ = 0;  // consumed prefix of buffer_
  std::optional<Status> failed_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_NET_FRAME_H_
