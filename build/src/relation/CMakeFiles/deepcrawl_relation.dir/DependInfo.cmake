
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relation/schema.cc" "src/relation/CMakeFiles/deepcrawl_relation.dir/schema.cc.o" "gcc" "src/relation/CMakeFiles/deepcrawl_relation.dir/schema.cc.o.d"
  "/root/repo/src/relation/table.cc" "src/relation/CMakeFiles/deepcrawl_relation.dir/table.cc.o" "gcc" "src/relation/CMakeFiles/deepcrawl_relation.dir/table.cc.o.d"
  "/root/repo/src/relation/tsv.cc" "src/relation/CMakeFiles/deepcrawl_relation.dir/tsv.cc.o" "gcc" "src/relation/CMakeFiles/deepcrawl_relation.dir/tsv.cc.o.d"
  "/root/repo/src/relation/value_catalog.cc" "src/relation/CMakeFiles/deepcrawl_relation.dir/value_catalog.cc.o" "gcc" "src/relation/CMakeFiles/deepcrawl_relation.dir/value_catalog.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/deepcrawl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
