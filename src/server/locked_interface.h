// LockedQueryInterface: a thread-safe adapter over any QueryInterface.
//
// The concrete servers (WebDbServer, FaultyServer) are single-threaded
// objects: they mutate meters, RNG state, and fault counters on every
// fetch. The parallel crawl engine issues page fetches from a thread
// pool, so it talks to the source through this adapter, which serializes
// every interface call behind one mutex.
//
// Simulated latency: a mutex-serialized in-memory server would leave
// nothing for extra threads to overlap, which is not how real sources
// behave — a crawler's wall-clock is dominated by network round trips
// that DO overlap. `latency_us` models that round trip: each fetch
// sleeps for the configured time OUTSIDE the lock before touching the
// backend, so concurrent fetches overlap their "network wait" exactly
// like concurrent HTTP requests and only the cheap in-memory answer is
// serialized. bench_parallel's wall-clock speedups are measured this
// way (see DESIGN.md §8).
//
// Thread-safety contract: all five Fetch* methods plus the meter calls
// are safe to call concurrently. options() and IsQueriableValue() are
// forwarded without the lock — both are immutable after construction on
// every shipped implementation (WebDbServer reads fixed tables;
// FaultyServer forwards to its backend).

#ifndef DEEPCRAWL_SERVER_LOCKED_INTERFACE_H_
#define DEEPCRAWL_SERVER_LOCKED_INTERFACE_H_

#include <cstdint>
#include <mutex>
#include <span>
#include <string_view>

#include "src/server/query_interface.h"
#include "src/util/status.h"

namespace deepcrawl {

class LockedQueryInterface : public QueryInterface {
 public:
  // `inner` must outlive the adapter and must not be called around it
  // while concurrent fetches are in flight. `latency_us` is the
  // simulated per-fetch round-trip time, slept outside the lock
  // (0 = none; unit tests use 0, benches model a network).
  explicit LockedQueryInterface(QueryInterface& inner,
                                uint64_t latency_us = 0);

  LockedQueryInterface(const LockedQueryInterface&) = delete;
  LockedQueryInterface& operator=(const LockedQueryInterface&) = delete;

  StatusOr<ResultPage> FetchPage(ValueId value, uint32_t page_number) override;
  StatusOr<ResultPage> FetchPageByText(AttributeId attr,
                                       std::string_view text,
                                       uint32_t page_number) override;
  StatusOr<ResultPage> FetchPageByKeyword(std::string_view text,
                                          uint32_t page_number) override;
  StatusOr<ResultPage> FetchPageConjunctive(std::span<const ValueId> values,
                                            uint32_t page_number) override;
  StatusOr<ResultPage> FetchPageKeywordOf(ValueId value,
                                          uint32_t page_number) override;

  uint64_t communication_rounds() const override;
  uint64_t queries_issued() const override;
  void ResetMeters() override;
  // Inner counters merged with the simulated per-fetch latency this
  // adapter modeled (one observation of latency_us per fetch).
  RttCounters rtt_counters() const override;

  const ServerOptions& options() const override { return inner_.options(); }
  bool IsQueriableValue(ValueId value) const override {
    return inner_.IsQueriableValue(value);
  }

  uint64_t latency_us() const { return latency_us_; }

 private:
  // Sleeps the simulated round trip, then runs `fetch` under the lock.
  template <typename Fetch>
  StatusOr<ResultPage> Locked(Fetch&& fetch);

  QueryInterface& inner_;
  const uint64_t latency_us_;
  mutable std::mutex mu_;
  RttCounters rtt_;  // guarded by mu_
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_SERVER_LOCKED_INTERFACE_H_
