#include "src/relation/tsv.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string_view>
#include <vector>

namespace deepcrawl {

StatusOr<Table> ReadTableTsv(std::istream& input) {
  // Two passes are avoided by collecting parsed rows first (the schema
  // grows as new attribute names appear).
  struct ParsedCell {
    std::string attr;
    std::string text;
  };
  std::vector<std::vector<ParsedCell>> rows;
  std::string line;
  size_t line_number = 0;
  while (std::getline(input, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::vector<ParsedCell> row;
    size_t begin = 0;
    while (begin <= line.size()) {
      size_t end = line.find('\t', begin);
      if (end == std::string::npos) end = line.size();
      std::string_view cell(line.data() + begin, end - begin);
      if (!cell.empty()) {
        size_t eq = cell.find('=');
        if (eq == std::string_view::npos || eq == 0 ||
            eq + 1 == cell.size()) {
          return Status::InvalidArgument(
              "line " + std::to_string(line_number) +
              ": malformed cell '" + std::string(cell) +
              "' (want <attr>=<value>)");
        }
        row.push_back(ParsedCell{std::string(cell.substr(0, eq)),
                                 std::string(cell.substr(eq + 1))});
      }
      begin = end + 1;
      if (end == line.size()) break;
    }
    if (row.empty()) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": record has no cells");
    }
    rows.push_back(std::move(row));
  }

  Schema schema;
  for (const auto& row : rows) {
    for (const ParsedCell& cell : row) {
      if (!schema.FindAttribute(cell.attr).ok()) {
        DEEPCRAWL_RETURN_IF_ERROR(schema.AddAttribute(cell.attr).status());
      }
    }
  }
  Table table(std::move(schema));
  for (const auto& row : rows) {
    std::vector<Cell> cells;
    cells.reserve(row.size());
    for (const ParsedCell& cell : row) {
      StatusOr<AttributeId> attr = table.schema().FindAttribute(cell.attr);
      if (!attr.ok()) return attr.status();
      cells.push_back(Cell{*attr, cell.text});
    }
    StatusOr<RecordId> added = table.AddRecord(cells);
    if (!added.ok()) return added.status();
  }
  return table;
}

Status WriteTableTsv(const Table& table, std::ostream& output) {
  for (RecordId r = 0; r < table.num_records(); ++r) {
    bool first = true;
    for (ValueId v : table.record(r)) {
      if (!first) output << '\t';
      first = false;
      AttributeId attr = table.catalog().attribute_of(v);
      output << table.schema().attribute(attr).name << '='
             << table.catalog().text_of(v);
    }
    output << '\n';
  }
  if (!output) return Status::Internal("write failed");
  return Status::OK();
}

StatusOr<Table> ReadTableTsvFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open '" + path + "'");
  return ReadTableTsv(file);
}

Status WriteTableTsvFile(const Table& table, const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::NotFound("cannot create '" + path + "'");
  return WriteTableTsv(table, file);
}

}  // namespace deepcrawl
