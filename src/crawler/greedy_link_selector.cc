#include "src/crawler/greedy_link_selector.h"

#include <algorithm>

#include "src/util/checkpoint_io.h"
#include "src/util/logging.h"

namespace deepcrawl {

GreedyLinkSelector::GreedyLinkSelector(const LocalStore& store)
    : FrontierSelector(store) {
  heap_.reserve(1024);
}

void GreedyLinkSelector::EnsureCapacity(ValueId v) {
  if (v < last_pushed_degree_.size()) return;
  last_pushed_degree_.resize(static_cast<size_t>(v) + 1, kNeverPushed);
}

void GreedyLinkSelector::PushEntry(ValueId v, uint64_t degree) {
  last_pushed_degree_[v] = degree;
  heap_.push_back(HeapEntry{degree, v});
  std::push_heap(heap_.begin(), heap_.end());
  ++heap_pushes_;
}

void GreedyLinkSelector::Push(ValueId v) {
  if (!IsPending(v)) return;
  uint64_t degree = store().LocalDegree(v);
  // The heap already holds an entry at this exact key; a duplicate
  // cannot change pop order (see header).
  if (degree == last_pushed_degree_[v]) return;
  PushEntry(v, degree);
}

void GreedyLinkSelector::OnFrontierInsert(ValueId v) {
  EnsureCapacity(v);
  PushEntry(v, store().LocalDegree(v));
}

void GreedyLinkSelector::OnRecordHarvested(uint32_t slot) {
  // Every pending value in the record may have gained links; refresh.
  for (ValueId v : store().RecordValues(slot)) {
    Push(v);
  }
}

Status GreedyLinkSelector::SaveState(CheckpointWriter& writer) const {
  writer.WriteU64(heap_.size());
  for (const HeapEntry& entry : heap_) {
    writer.WriteU64(entry.degree);
    writer.WriteU32(entry.value);
  }
  SaveFrontier(writer);
  uint64_t pushed = 0;
  for (uint64_t degree : last_pushed_degree_) {
    if (degree != kNeverPushed) ++pushed;
  }
  writer.WriteU64(pushed);
  for (size_t v = 0; v < last_pushed_degree_.size(); ++v) {
    if (last_pushed_degree_[v] == kNeverPushed) continue;
    writer.WriteU32(static_cast<ValueId>(v));
    writer.WriteU64(last_pushed_degree_[v]);
  }
  writer.WriteU64(heap_pushes_);
  return Status::OK();
}

Status GreedyLinkSelector::LoadState(CheckpointReader& reader,
                                     ValueId value_bound) {
  heap_.clear();
  last_pushed_degree_.assign(value_bound, kNeverPushed);
  uint64_t heap_size = reader.ReadCount(12);
  heap_.reserve(static_cast<size_t>(heap_size));
  for (uint64_t i = 0; i < heap_size && reader.ok(); ++i) {
    uint64_t degree = reader.ReadU64();
    ValueId v = reader.ReadU32();
    if (v >= value_bound) {
      reader.MarkCorrupt("heap value id out of range");
      break;
    }
    // Entries were saved in heap order, so the vector is a valid
    // max-heap as-is — pop order is preserved exactly.
    heap_.push_back(HeapEntry{degree, v});
  }
  LoadFrontier(reader, value_bound);
  uint64_t pushed = reader.ReadCount(12);
  for (uint64_t i = 0; i < pushed && reader.ok(); ++i) {
    ValueId v = reader.ReadU32();
    uint64_t degree = reader.ReadU64();
    if (v >= value_bound) {
      reader.MarkCorrupt("pushed-degree value id out of range");
      break;
    }
    last_pushed_degree_[v] = degree;
  }
  heap_pushes_ = reader.ReadU64();
  return reader.status();
}

ValueId GreedyLinkSelector::SelectNext() {
  while (!heap_.empty()) {
    HeapEntry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
    if (!IsPending(top.value)) continue;  // already selected earlier
    uint64_t degree = store().LocalDegree(top.value);
    if (degree != top.degree) continue;  // stale; a fresher entry exists
    MarkNotPending(top.value);
    return top.value;
  }
  return kInvalidValueId;
}

}  // namespace deepcrawl
