#include "src/server/web_db_server.h"

#include <algorithm>

#include "src/util/logging.h"

namespace deepcrawl {

WebDbServer::WebDbServer(const Table& table, ServerOptions options)
    : table_(table), options_(std::move(options)), index_(table) {
  DEEPCRAWL_CHECK_GT(options_.page_size, 0u) << "page size must be positive";
  if (options_.queriable_attributes.empty()) {
    attribute_queriable_.assign(table_.schema().num_attributes(), 1);
  } else {
    attribute_queriable_.assign(table_.schema().num_attributes(), 0);
    for (AttributeId attr : options_.queriable_attributes) {
      DEEPCRAWL_CHECK_LT(attr, table_.schema().num_attributes())
          << "queriable attribute id out of range";
      attribute_queriable_[attr] = 1;
    }
  }
}

bool WebDbServer::IsQueriableValue(ValueId value) const {
  if (value >= table_.catalog().size()) return false;
  AttributeId attr = table_.catalog().attribute_of(value);
  return attr < attribute_queriable_.size() &&
         attribute_queriable_[attr] != 0;
}

void WebDbServer::ResetMeters() {
  communication_rounds_ = 0;
  queries_issued_ = 0;
}

StatusOr<ResultPage> WebDbServer::BuildPage(std::span<const RecordId> postings,
                                            uint32_t total_matches,
                                            uint32_t page_number) {
  // The communication round was already charged by the caller.
  uint32_t retrievable = static_cast<uint32_t>(postings.size());
  if (options_.result_limit > 0) {
    retrievable = std::min(retrievable, options_.result_limit);
  }
  uint64_t begin = static_cast<uint64_t>(page_number) * options_.page_size;
  if (begin >= retrievable && !(page_number == 0 && retrievable == 0)) {
    return Status::OutOfRange("page " + std::to_string(page_number) +
                              " is past the last retrievable page");
  }
  uint64_t end = std::min<uint64_t>(begin + options_.page_size, retrievable);
  ResultPage page;
  page.page_number = page_number;
  page.has_more = end < retrievable;
  if (options_.reports_total_count) page.total_matches = total_matches;
  page.records.reserve(end - begin);
  for (uint64_t i = begin; i < end; ++i) {
    RecordId id = postings[i];
    page.records.push_back(ReturnedRecord{id, table_.record(id)});
  }
  return page;
}

StatusOr<ResultPage> WebDbServer::FetchPage(ValueId value,
                                            uint32_t page_number) {
  ++communication_rounds_;
  if (page_number == 0) ++queries_issued_;
  if (value >= table_.num_distinct_values() || !IsQueriableValue(value)) {
    // Unknown value, or an attribute the form has no field for: the
    // site answers "no results".
    return BuildPage({}, 0, page_number);
  }
  std::span<const RecordId> postings = index_.Postings(value);
  return BuildPage(postings, static_cast<uint32_t>(postings.size()),
                   page_number);
}

StatusOr<ResultPage> WebDbServer::FetchPageByText(AttributeId attr,
                                                  std::string_view text,
                                                  uint32_t page_number) {
  ValueId value = table_.catalog().Find(attr, text);
  if (value == kInvalidValueId) {
    ++communication_rounds_;
    if (page_number == 0) ++queries_issued_;
    return BuildPage({}, 0, page_number);
  }
  return FetchPage(value, page_number);
}

StatusOr<ResultPage> WebDbServer::FetchPageByKeyword(std::string_view text,
                                                     uint32_t page_number) {
  ++communication_rounds_;
  if (page_number == 0) ++queries_issued_;
  // The site's own query processor decides which column matches (§2.2);
  // here that means unioning the postings of the keyword interpreted
  // under every attribute. The union swaps between two member scratch
  // buffers (pre-sized to the worst-case output) instead of allocating
  // per attribute.
  std::vector<RecordId>& merged = scratch_merged_;
  std::vector<RecordId>& next = scratch_next_;
  merged.clear();
  for (AttributeId attr = 0; attr < table_.schema().num_attributes();
       ++attr) {
    ValueId value = table_.catalog().Find(attr, text);
    if (value == kInvalidValueId) continue;
    std::span<const RecordId> postings = index_.Postings(value);
    next.clear();
    next.reserve(merged.size() + postings.size());
    std::set_union(merged.begin(), merged.end(), postings.begin(),
                   postings.end(), std::back_inserter(next));
    std::swap(merged, next);
  }
  return BuildPage(merged, static_cast<uint32_t>(merged.size()), page_number);
}

StatusOr<ResultPage> WebDbServer::FetchPageConjunctive(
    std::span<const ValueId> values, uint32_t page_number) {
  if (values.empty()) {
    return Status::InvalidArgument("conjunctive query needs predicates");
  }
  ++communication_rounds_;
  if (page_number == 0) ++queries_issued_;
  // Intersect postings smallest-first; bail out as soon as the running
  // intersection empties. Same swap-buffered member scratch as the
  // keyword-union path.
  std::vector<ValueId>& ordered = scratch_ordered_;
  ordered.assign(values.begin(), values.end());
  std::sort(ordered.begin(), ordered.end(), [this](ValueId a, ValueId b) {
    return index_.MatchCount(a) < index_.MatchCount(b);
  });
  std::vector<RecordId>& matched = scratch_merged_;
  std::vector<RecordId>& next = scratch_next_;
  matched.clear();
  bool first = true;
  for (ValueId v : ordered) {
    if (v >= table_.num_distinct_values()) {
      return BuildPage({}, 0, page_number);
    }
    std::span<const RecordId> postings = index_.Postings(v);
    if (first) {
      matched.assign(postings.begin(), postings.end());
      first = false;
    } else {
      next.clear();
      next.reserve(std::min(matched.size(), postings.size()));
      std::set_intersection(matched.begin(), matched.end(),
                            postings.begin(), postings.end(),
                            std::back_inserter(next));
      std::swap(matched, next);
    }
    if (matched.empty()) break;
  }
  return BuildPage(matched, static_cast<uint32_t>(matched.size()),
                   page_number);
}

StatusOr<ResultPage> WebDbServer::FetchPageKeywordOf(ValueId value,
                                                     uint32_t page_number) {
  if (value >= table_.num_distinct_values()) {
    ++communication_rounds_;
    if (page_number == 0) ++queries_issued_;
    return BuildPage({}, 0, page_number);
  }
  return FetchPageByKeyword(table_.catalog().text_of(value), page_number);
}

uint32_t WebDbServer::FullRetrievalCost(ValueId value) const {
  uint32_t matches = value < table_.num_distinct_values()
                         ? index_.MatchCount(value)
                         : 0;
  if (options_.result_limit > 0) {
    matches = std::min(matches, options_.result_limit);
  }
  if (matches == 0) return 1;  // one round to learn there is nothing
  return (matches + options_.page_size - 1) / options_.page_size;
}

}  // namespace deepcrawl
