// ParallelCrawler: the batched, multi-threaded crawl configuration.
//
// Historically this class carried its own wave loop next to the serial
// Crawler's drain loop; both are now thin compatibility shims over the
// unified CrawlEngine (crawl_engine.h), which owns the single wave
// planner/committer and runs fetches through a pluggable FetchExecutor
// (ThreadPool-backed here for threads > 1). The determinism contract —
// batch == 1 ≡ serial bit-identically, output a pure function of
// (seed, batch), thread count wall-clock only — is documented on the
// engine and proven by tests/crawler_parallel_differential_test.cc.
//
// See src/crawler/checkpoint.h for checkpoint/resume.

#ifndef DEEPCRAWL_CRAWLER_PARALLEL_CRAWLER_H_
#define DEEPCRAWL_CRAWLER_PARALLEL_CRAWLER_H_

#include <cstdint>

#include "src/crawler/crawl_engine.h"
#include "src/crawler/crawler.h"

namespace deepcrawl {

struct ParallelOptions {
  // Worker threads fetching pages (>= 1). Affects wall-clock only.
  uint32_t threads = 4;
  // Concurrent drain slots per wave (>= 1). Affects crawl semantics:
  // batch == 1 is exactly the serial crawl order.
  uint32_t batch = 4;
};

class ParallelCrawler {
 public:
  // All referenced objects must outlive the crawler. When
  // parallel.threads > 1 the server must be thread-safe (wrap it in a
  // LockedQueryInterface); `abort_policy` and `retry_policy` follow the
  // serial Crawler's contract.
  ParallelCrawler(QueryInterface& server, QuerySelector& selector,
                  LocalStore& store, CrawlOptions options,
                  ParallelOptions parallel,
                  AbortPolicy* abort_policy = nullptr,
                  const RetryPolicy* retry_policy = nullptr)
      : parallel_(parallel),
        engine_(server, selector, store, options, MakeEngineOptions(parallel),
                abort_policy, retry_policy) {}

  ParallelCrawler(const ParallelCrawler&) = delete;
  ParallelCrawler& operator=(const ParallelCrawler&) = delete;

  // Plants a seed value; duplicate seeds are ignored (same as serial).
  void AddSeed(ValueId v) { engine_.AddSeed(v); }

  // Runs waves until a stop condition fires; may be called again to
  // continue (parked slots resume exactly).
  StatusOr<CrawlResult> Run() { return engine_.Run(); }

  void set_max_rounds(uint64_t max_rounds) {
    engine_.set_max_rounds(max_rounds);
  }
  void set_target_records(uint64_t target_records) {
    engine_.set_target_records(target_records);
  }
  uint64_t rounds_used() const { return engine_.rounds_used(); }
  const LocalStore& store() const { return engine_.store(); }
  const SimulatedClock& clock() const { return engine_.clock(); }
  const ParallelOptions& parallel_options() const { return parallel_; }

  // The underlying unified engine, e.g. for checkpointing.
  CrawlEngine& engine() { return engine_; }
  const CrawlEngine& engine() const { return engine_; }

 private:
  static EngineOptions MakeEngineOptions(const ParallelOptions& parallel) {
    EngineOptions engine_options;
    engine_options.threads = parallel.threads;
    engine_options.batch = parallel.batch;
    return engine_options;
  }

  ParallelOptions parallel_;
  CrawlEngine engine_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_CRAWLER_PARALLEL_CRAWLER_H_
