// Cross-policy crawl property sweeps: determinism, budget extension,
// keyword/limit interplay, and conservation invariants.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "src/crawler/crawler.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/mmmi_selector.h"
#include "src/crawler/naive_selectors.h"
#include "src/crawler/oracle_selector.h"
#include "src/datagen/workload_config.h"
#include "src/server/web_db_server.h"

namespace deepcrawl {
namespace {

Table MakeDb(uint64_t seed) {
  SyntheticDbConfig config;
  config.name = "crawl-prop";
  config.num_records = 250;
  config.seed = seed;
  config.attributes = {
      {.name = "A", .num_distinct = 25, .zipf_exponent = 1.0},
      {.name = "B",
       .num_distinct = 120,
       .zipf_exponent = 0.6,
       .min_per_record = 1,
       .max_per_record = 2},
  };
  StatusOr<Table> table = GenerateTable(config);
  DEEPCRAWL_CHECK(table.ok());
  return std::move(*table);
}

std::unique_ptr<QuerySelector> MakeSelector(int policy,
                                            const LocalStore& store,
                                            const WebDbServer& server) {
  switch (policy) {
    case 0:
      return std::make_unique<BfsSelector>();
    case 1:
      return std::make_unique<DfsSelector>();
    case 2:
      return std::make_unique<RandomSelector>(11);
    case 3:
      return std::make_unique<GreedyLinkSelector>(store);
    case 4:
      return std::make_unique<MmmiSelector>(store);
    default:
      return std::make_unique<OracleSelector>(store, server.index(),
                                              server.options().page_size);
  }
}

class CrawlDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(CrawlDeterminismTest, IdenticalRunsProduceIdenticalTraces) {
  int policy = GetParam();
  Table db = MakeDb(4);
  auto run_once = [&] {
    WebDbServer server(db, ServerOptions{});
    LocalStore store;
    std::unique_ptr<QuerySelector> selector =
        MakeSelector(policy, store, server);
    CrawlOptions options;
    options.saturation_records = 200;
    Crawler crawler(server, *selector, store, options);
    crawler.AddSeed(2);
    StatusOr<CrawlResult> result = crawler.Run();
    DEEPCRAWL_CHECK(result.ok());
    return std::move(*result);
  };
  CrawlResult a = run_once();
  CrawlResult b = run_once();
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.records, b.records);
  ASSERT_EQ(a.trace.points().size(), b.trace.points().size());
  for (size_t i = 0; i < a.trace.points().size(); ++i) {
    EXPECT_EQ(a.trace.points()[i].rounds, b.trace.points()[i].rounds);
    EXPECT_EQ(a.trace.points()[i].records, b.trace.points()[i].records);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CrawlDeterminismTest,
                         ::testing::Range(0, 6));

TEST(CrawlBudgetExtensionTest, SlicedCrawlMatchesOneShot) {
  Table db = MakeDb(9);
  // One-shot crawl to exhaustion.
  uint64_t oneshot_rounds, oneshot_records;
  {
    WebDbServer server(db, ServerOptions{});
    LocalStore store;
    BfsSelector selector;
    Crawler crawler(server, selector, store, CrawlOptions{});
    crawler.AddSeed(0);
    StatusOr<CrawlResult> result = crawler.Run();
    ASSERT_TRUE(result.ok());
    oneshot_rounds = result->rounds;
    oneshot_records = result->records;
  }
  // Same crawl in budget slices of 10 rounds via set_max_rounds.
  {
    WebDbServer server(db, ServerOptions{});
    LocalStore store;
    BfsSelector selector;
    CrawlOptions options;
    options.max_rounds = 10;
    Crawler crawler(server, selector, store, options);
    crawler.AddSeed(0);
    CrawlResult last;
    for (int i = 0; i < 10000; ++i) {
      StatusOr<CrawlResult> result = crawler.Run();
      ASSERT_TRUE(result.ok());
      last = std::move(*result);
      if (last.stop_reason == StopReason::kFrontierExhausted) break;
      crawler.set_max_rounds(last.rounds + 10);
    }
    EXPECT_EQ(last.stop_reason, StopReason::kFrontierExhausted);
    // Slice boundaries park the in-flight drain and resume it exactly
    // where it stopped (see Run()'s contract), so slicing changes
    // nothing: same records, same rounds.
    EXPECT_EQ(last.records, oneshot_records);
    EXPECT_EQ(last.rounds, oneshot_rounds);
  }
}

class CrawlModeMatrixTest
    : public ::testing::TestWithParam<std::tuple<bool, uint32_t>> {};

TEST_P(CrawlModeMatrixTest, InvariantsHoldUnderKeywordAndLimits) {
  auto [keyword, limit] = GetParam();
  Table db = MakeDb(6);
  ServerOptions server_options;
  server_options.page_size = 7;
  server_options.result_limit = limit;
  WebDbServer server(db, server_options);
  LocalStore store;
  GreedyLinkSelector selector(store);
  CrawlOptions options;
  options.use_keyword_interface = keyword;
  Crawler crawler(server, selector, store, options);
  crawler.AddSeed(1);
  StatusOr<CrawlResult> result = crawler.Run();
  ASSERT_TRUE(result.ok());

  EXPECT_EQ(result->stop_reason, StopReason::kFrontierExhausted);
  EXPECT_EQ(result->records, store.num_records());
  EXPECT_GE(result->rounds, result->queries);
  EXPECT_LE(result->records, db.num_records());
  // Observation accounting: total observations >= stored records, and
  // the abundance histogram sums back to the record count.
  EXPECT_GE(store.num_observations(), store.num_records());
  size_t histogram_total = 0;
  for (uint32_t k = 1; k <= 64; ++k) {
    histogram_total += store.RecordsObservedTimes(k);
  }
  EXPECT_LE(histogram_total, store.num_records());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CrawlModeMatrixTest,
    ::testing::Combine(::testing::Bool(), ::testing::Values(0u, 10u, 3u)));

TEST(CrawlConservationTest, LimitNeverIncreasesCoverage) {
  // Coverage under a tighter limit is never larger than under a looser
  // one at full exhaustion (reachability shrinks monotonically).
  Table db = MakeDb(13);
  uint64_t previous = std::numeric_limits<uint64_t>::max();
  for (uint32_t limit : {0u, 50u, 10u, 3u, 1u}) {
    ServerOptions server_options;
    server_options.result_limit = limit;
    WebDbServer server(db, server_options);
    LocalStore store;
    BfsSelector selector;
    Crawler crawler(server, selector, store, CrawlOptions{});
    crawler.AddSeed(1);
    StatusOr<CrawlResult> result = crawler.Run();
    ASSERT_TRUE(result.ok());
    uint64_t records = result->records;
    if (limit != 0) {
      EXPECT_LE(records, previous) << "limit " << limit;
    }
    previous = records;
  }
}

}  // namespace
}  // namespace deepcrawl
