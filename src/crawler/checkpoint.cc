#include "src/crawler/checkpoint.h"

#include "src/crawler/crawl_engine.h"
#include "src/server/faulty_server.h"
#include "src/util/checkpoint_io.h"

namespace deepcrawl {

void WriteSectionMarker(CheckpointWriter& writer, uint32_t marker) {
  writer.WriteU32(marker);
}

bool ExpectSectionMarker(CheckpointReader& reader, uint32_t marker,
                         const char* name) {
  uint32_t got = reader.ReadU32();
  if (reader.ok() && got != marker) {
    reader.MarkCorrupt(std::string("missing '") + name +
                       "' section marker (layout mismatch)");
  }
  return reader.ok();
}

StatusOr<std::string> EncodeCrawlCheckpoint(const CrawlEngine& engine,
                                            const FaultyServer* faulty) {
  CheckpointWriter writer;
  DEEPCRAWL_RETURN_IF_ERROR(engine.SaveState(writer));
  WriteSectionMarker(writer, kSectionFaulty);
  writer.WriteU8(faulty != nullptr ? 1 : 0);
  if (faulty != nullptr) faulty->SaveState(writer);
  WriteSectionMarker(writer, kSectionEnd);
  return FrameCheckpoint(writer.buffer(), kCrawlCheckpointVersion);
}

Status DecodeCrawlCheckpoint(std::string_view image, CrawlEngine& engine,
                             FaultyServer* faulty) {
  DEEPCRAWL_ASSIGN_OR_RETURN(std::string_view payload,
                             UnframeCheckpoint(image, kCrawlCheckpointVersion));
  CheckpointReader reader(payload);
  DEEPCRAWL_RETURN_IF_ERROR(engine.LoadState(reader));
  if (!ExpectSectionMarker(reader, kSectionFaulty, "FALT")) {
    return reader.status();
  }
  bool has_faulty = reader.ReadU8() != 0;
  if (has_faulty != (faulty != nullptr)) {
    return Status::InvalidArgument(
        has_faulty
            ? "checkpoint was taken behind a fault proxy, but this crawl "
              "has none; re-run with the same fault configuration"
            : "checkpoint was taken without a fault proxy, but this crawl "
              "has one; re-run with the same fault configuration");
  }
  if (faulty != nullptr) {
    DEEPCRAWL_RETURN_IF_ERROR(faulty->LoadState(reader));
  }
  if (!ExpectSectionMarker(reader, kSectionEnd, "END!")) {
    return reader.status();
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument(
        "corrupt checkpoint: trailing bytes after the end marker");
  }
  return reader.status();
}

Status SaveCrawlCheckpoint(const CrawlEngine& engine,
                           const FaultyServer* faulty,
                           const std::string& path) {
  DEEPCRAWL_ASSIGN_OR_RETURN(std::string image,
                             EncodeCrawlCheckpoint(engine, faulty));
  return WriteFileAtomic(path, image);
}

Status LoadCrawlCheckpoint(const std::string& path, CrawlEngine& engine,
                           FaultyServer* faulty) {
  DEEPCRAWL_ASSIGN_OR_RETURN(std::string image, ReadFileBytes(path));
  return DecodeCrawlCheckpoint(image, engine, faulty);
}

}  // namespace deepcrawl
