// WebDbTcpServer: serves any QueryInterface over the wire protocol of
// src/net/frame.h, on one EventLoop (DESIGN.md §13).
//
// Each accepted connection carries the Hello/ServerInfo handshake and
// then any number of pipelined fetch requests; responses are written in
// request order per connection, so a client that sends a whole wave
// down one connection gets the wave back in the order it asked.
// Because every backend the repo ships is a pure function of the
// request (WebDbServer reads fixed tables; FaultyServer in keyed mode
// derives faults from the query identity), the bytes a client receives
// are independent of how requests interleave across connections — the
// property the TCP-vs-in-process differential tests pin down.
//
// Backend calls happen on the loop thread only, so the backend needs no
// locking — the epoll loop provides the serialization that
// LockedQueryInterface provides for thread pools. Wrapping a
// FaultyServer puts the whole fault model behind real sockets: injected
// kUnavailable / kDeadlineExceeded / rate-limit statuses (retry-after
// hint included) travel to the client verbatim.
//
// Overload: beyond `max_connections` concurrent connections, a new
// connection is shed gracefully — it receives one GoAway frame carrying
// kUnavailable plus a retry-after hint, then is closed. Clients surface
// that as a retryable source-unavailable, which the crawler's existing
// RetryPolicy machinery already knows how to pace.
//
// Malformed input (bad length prefix, magic, version, checksum, or an
// undecodable body) closes the connection immediately: framing sync is
// gone, and the protocol never trusts bytes past a corrupt frame.

#ifndef DEEPCRAWL_NET_TCP_SERVER_H_
#define DEEPCRAWL_NET_TCP_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/net/event_loop.h"
#include "src/net/frame.h"
#include "src/server/query_interface.h"
#include "src/util/status.h"

namespace deepcrawl {

struct TcpServerOptions {
  std::string bind_address = "127.0.0.1";
  // 0 picks an ephemeral port; read the choice back from port().
  uint16_t port = 0;
  // Concurrent-connection cap; one more connection is shed with GoAway.
  uint32_t max_connections = 1024;
  // Retry-after hint (communication rounds) attached to the shed status.
  uint32_t shed_retry_after_rounds = 4;
  // Size of the queriable-value bitmap in ServerInfo: values
  // [0, num_values) are probed against backend.IsQueriableValue once at
  // Start(). Pass the catalog's distinct-value count.
  uint32_t num_values = 0;
  // Artificial per-response delay, mirroring LockedQueryInterface's
  // simulated round trip for loopback benches (0 = answer immediately).
  uint64_t latency_us = 0;
  uint32_t max_frame_bytes = kMaxWireFrameBytes;
};

class WebDbTcpServer {
 public:
  // `loop` and `backend` must outlive the server. `backend` is called
  // exclusively from the loop thread.
  WebDbTcpServer(EventLoop& loop, QueryInterface& backend,
                 TcpServerOptions options);
  ~WebDbTcpServer();

  WebDbTcpServer(const WebDbTcpServer&) = delete;
  WebDbTcpServer& operator=(const WebDbTcpServer&) = delete;

  // Binds (SO_REUSEADDR), listens, registers with the loop, and builds
  // the ServerInfo frame. Call before the loop runs.
  Status Start();

  // Closes the listener and every connection; safe to skip (the
  // destructor closes raw fds without touching the loop).
  void Shutdown();

  // The bound port (after Start()).
  uint16_t port() const { return port_; }

  // --- stats (loop-thread writes, any-thread reads) -------------------
  uint64_t connections_accepted() const { return connections_accepted_; }
  uint64_t connections_shed() const { return connections_shed_; }
  uint64_t requests_served() const { return requests_served_; }
  uint64_t protocol_errors() const { return protocol_errors_; }
  size_t open_connections() const { return connections_.size(); }

 private:
  struct Connection {
    // Distinguishes incarnations of a recycled fd, so a latency timer
    // scheduled for a connection that died meanwhile becomes a no-op
    // instead of writing into an unrelated connection.
    uint64_t id = 0;
    int fd = -1;
    FrameAssembler assembler;
    std::string outbox;        // bytes not yet handed to the kernel
    size_t outbox_pos = 0;
    bool saw_hello = false;
    bool want_writable = false;  // EPOLLOUT currently armed
    // Over-cap connection being told to go away: input is discarded,
    // and the connection lingers (instead of closing outright) until
    // the client has read the GoAway — an immediate close would RST
    // away the very frame that makes shedding graceful.
    bool shedding = false;
  };

  void OnAcceptable();
  void OnConnectionEvent(int fd, uint32_t events);
  // Reads until EAGAIN, feeding the assembler and serving every
  // complete request. Returns false when the connection died.
  bool DrainReadable(Connection& conn);
  // Decodes and serves one request body. kProtocolError leaves the
  // connection alive for the caller to count and close;
  // kConnectionLost means the connection object was already destroyed
  // mid-write — the caller must not touch `conn` again.
  enum class ServeResult { kOk, kProtocolError, kConnectionLost };
  ServeResult ServeBody(Connection& conn, const std::string& body);
  StatusOr<ResultPage> Dispatch(const WireRequest& request);
  // Appends the frame and flushes. Returns false when the flush killed
  // the connection (CloseConnection already ran; `conn` is freed).
  bool QueueFrame(Connection& conn, std::string frame);
  // Writes the outbox until EAGAIN/empty, (dis)arming EPOLLOUT.
  // Returns false when the connection died.
  bool FlushOutbox(Connection& conn);
  void CloseConnection(int fd);

  EventLoop& loop_;
  QueryInterface& backend_;
  TcpServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  uint64_t next_connection_id_ = 1;
  // Serving (non-shedding) connections; the capacity check uses this so
  // lingering shed connections can't wedge the server below capacity.
  size_t active_connections_ = 0;
  std::string server_info_frame_;
  std::string goaway_frame_;
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;

  uint64_t connections_accepted_ = 0;
  uint64_t connections_shed_ = 0;
  uint64_t requests_served_ = 0;
  uint64_t protocol_errors_ = 0;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_NET_TCP_SERVER_H_
