// Weighted Minimum Dominating Set solvers.
//
// Definition 2.4 of the paper shows that an optimal query selection plan
// is a minimum-weight dominating set of the attribute-value graph: a set
// V' such that every vertex outside V' has a neighbor in V', minimizing
// the total query cost (weight) of V'. The problem is NP-complete; an
// online crawler additionally only ever sees the partial local graph.
//
// This module provides the *offline* solvers used as baselines and in
// tests:
//   * GreedyWeightedDominatingSet — the classical greedy that repeatedly
//     picks the vertex maximizing newly-dominated-vertices per unit
//     weight; an H(Δ+1)-approximation. Runs in O((n + m) log n) via a
//     lazy priority queue (coverage gains only ever shrink).
//   * ExactMinimumDominatingSet — branch-and-bound for small graphs,
//     used to validate greedy quality in tests.

#ifndef DEEPCRAWL_GRAPH_DOMINATING_SET_H_
#define DEEPCRAWL_GRAPH_DOMINATING_SET_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/graph/attribute_value_graph.h"
#include "src/relation/types.h"

namespace deepcrawl {

// Weight of selecting vertex v as a query; must be positive. The paper's
// cost model uses cost(q) = ceil(num(q, DB) / k).
using VertexWeightFn = std::function<double(ValueId)>;

struct DominatingSetResult {
  std::vector<ValueId> vertices;
  double total_weight = 0.0;
};

// Greedy H(Δ+1)-approximation for weighted dominating set.
DominatingSetResult GreedyWeightedDominatingSet(
    const AttributeValueGraph& graph, const VertexWeightFn& weight);

// Exact branch-and-bound solver. Only call on small graphs (tens of
// vertices): worst-case exponential.
DominatingSetResult ExactMinimumDominatingSet(
    const AttributeValueGraph& graph, const VertexWeightFn& weight);

// True iff every vertex is in `set` or adjacent to a member of `set`.
bool IsDominatingSet(const AttributeValueGraph& graph,
                     const std::vector<ValueId>& set);

}  // namespace deepcrawl

#endif  // DEEPCRAWL_GRAPH_DOMINATING_SET_H_
