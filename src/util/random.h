// Deterministic pseudo-random number generation for deepcrawl.
//
// All experiment randomness flows through Pcg32 generators seeded
// explicitly by the harness, so every run is reproducible bit-for-bit.
// PCG32 (O'Neill, 2014) is small, fast, and has good statistical quality.

#ifndef DEEPCRAWL_UTIL_RANDOM_H_
#define DEEPCRAWL_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "src/util/logging.h"

namespace deepcrawl {

// 32-bit permuted congruential generator.
class Pcg32 {
 public:
  // Seeds the generator. Distinct (seed, stream) pairs give independent
  // sequences.
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    NextU32();
    state_ += seed;
    NextU32();
  }

  // Uniform 32-bit value.
  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted =
        static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  // Uniform 64-bit value.
  uint64_t NextU64() {
    return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
  }

  // Uniform integer in [0, bound). `bound` must be positive. Uses
  // rejection sampling to avoid modulo bias.
  uint32_t NextBounded(uint32_t bound) {
    DEEPCRAWL_DCHECK(bound > 0) << "NextBounded requires positive bound";
    uint32_t threshold = (0u - bound) % bound;
    for (;;) {
      uint32_t r = NextU32();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform double in [0, 1), with full 53-bit mantissa resolution.
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    DEEPCRAWL_DCHECK(lo <= hi) << "NextInRange requires lo <= hi";
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<int64_t>(NextU64());  // full range
    return lo + static_cast<int64_t>(NextU64() % span);
  }

  // Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = NextBounded(static_cast<uint32_t>(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  // Samples `count` distinct indices from [0, population) using Floyd's
  // algorithm; result order is unspecified but deterministic.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t population,
                                                 uint32_t count);

  // Raw generator state, for checkpoint/restore: RestoreRaw(state(),
  // inc()) reproduces the exact output sequence from the save point.
  uint64_t state() const { return state_; }
  uint64_t inc() const { return inc_; }
  void RestoreRaw(uint64_t state, uint64_t inc) {
    state_ = state;
    inc_ = inc;
  }

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_UTIL_RANDOM_H_
