// Domain-knowledge crawling (§4): crawl an "Amazon DVD"-like store using
// a domain statistics table built from an "IMDB"-like sample database.
//
// Demonstrates:
//   * GenerateMovieDomainPair — a synthetic domain universe, crawl
//     target, and two year-cut domain samples;
//   * DomainTable::Build — mapping sample values into the target's
//     catalog by (attribute name, text);
//   * DomainSelector — the §4 estimators, candidate pools, and the
//     incremental P(Lqueried, DM) machinery;
//   * a head-to-head with the purely link-based crawler.

#include <iostream>

#include "src/crawler/crawler.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/datagen/movie_domain.h"
#include "src/domain/domain_selector.h"
#include "src/domain/domain_table.h"
#include "src/server/web_db_server.h"
#include "src/util/table_printer.h"

using namespace deepcrawl;

int main() {
  MovieDomainPairConfig config;
  config.universe_size = 8000;
  config.target_size = 2400;
  config.seed = 42;
  StatusOr<MovieDomainPair> pair = GenerateMovieDomainPair(config);
  if (!pair.ok()) {
    std::cerr << pair.status().ToString() << "\n";
    return 1;
  }
  Table& target = pair->target;
  std::cout << "crawl target: " << target.num_records()
            << " DVDs; domain sample (post-1960 movies): "
            << pair->dm1.num_records() << " records\n";

  // Build the domain statistics table against the target's catalog.
  DomainTable dt = DomainTable::Build(pair->dm1, target.schema(),
                                      target.mutable_catalog());
  std::cout << "domain table: " << dt.num_entries()
            << " candidate queries\n\n";

  ServerOptions server_options;
  server_options.page_size = 10;
  WebDbServer server(target, server_options);

  CrawlOptions crawl_options;
  crawl_options.max_rounds = target.num_records() / 4;  // tight budget

  auto coverage = [&](uint64_t records) {
    return TablePrinter::FormatPercent(
        static_cast<double>(records) /
        static_cast<double>(target.num_records()), 1);
  };

  // Domain-knowledge crawl: no seeds needed, the DT supplies queries.
  uint64_t dm_records = 0;
  {
    LocalStore store;
    DomainSelector selector(store, dt, server_options.page_size);
    server.ResetMeters();
    Crawler crawler(server, selector, store, crawl_options);
    StatusOr<CrawlResult> result = crawler.Run();
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    dm_records = result->records;
    std::cout << "domain-knowledge crawl: " << coverage(result->records)
              << " coverage in " << result->rounds << " rounds ("
              << selector.num_qdt_selected() << " queries from Q_DT, "
              << selector.num_qdb_selected() << " from Q_DB; "
              << "DM hit rate "
              << TablePrinter::FormatPercent(selector.QdtHitRate(), 1)
              << ", P(Lqueried, DM) "
              << TablePrinter::FormatPercent(
                     selector.QueriedDomainCoverage(), 1)
              << ")\n";
  }

  // Link-based crawl from one discovered value, same budget.
  {
    LocalStore store;
    GreedyLinkSelector selector(store);
    server.ResetMeters();
    Crawler crawler(server, selector, store, crawl_options);
    ValueId seed = 0;
    while (target.value_frequency(seed) == 0) ++seed;
    crawler.AddSeed(seed);
    StatusOr<CrawlResult> result = crawler.Run();
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    std::cout << "greedy-link crawl:      " << coverage(result->records)
              << " coverage in " << result->rounds << " rounds\n";
    if (dm_records > result->records) {
      std::cout << "\nthe domain table is worth "
                << (dm_records - result->records)
                << " extra records within the same budget — §4's point.\n";
    }
  }
  return 0;
}
