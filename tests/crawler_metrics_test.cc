#include "src/crawler/metrics.h"

#include <gtest/gtest.h>

namespace deepcrawl {
namespace {

TEST(CrawlTraceTest, EmptyTrace) {
  CrawlTrace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.RecordsAtRounds(100), 0u);
  EXPECT_EQ(trace.RoundsToRecords(0).value_or(999), 0u);
  EXPECT_FALSE(trace.RoundsToRecords(1).has_value());
}

TEST(CrawlTraceTest, RoundsToRecordsFindsFirstCrossing) {
  CrawlTrace trace;
  trace.Add(1, 5);
  trace.Add(2, 9);
  trace.Add(4, 9);
  trace.Add(5, 20);
  EXPECT_EQ(trace.RoundsToRecords(1).value(), 1u);
  EXPECT_EQ(trace.RoundsToRecords(5).value(), 1u);
  EXPECT_EQ(trace.RoundsToRecords(6).value(), 2u);
  EXPECT_EQ(trace.RoundsToRecords(9).value(), 2u);
  EXPECT_EQ(trace.RoundsToRecords(10).value(), 5u);
  EXPECT_EQ(trace.RoundsToRecords(20).value(), 5u);
  EXPECT_FALSE(trace.RoundsToRecords(21).has_value());
}

TEST(CrawlTraceTest, RecordsAtRoundsTakesLastPointAtOrBefore) {
  CrawlTrace trace;
  trace.Add(2, 4);
  trace.Add(6, 10);
  EXPECT_EQ(trace.RecordsAtRounds(1), 0u);
  EXPECT_EQ(trace.RecordsAtRounds(2), 4u);
  EXPECT_EQ(trace.RecordsAtRounds(5), 4u);
  EXPECT_EQ(trace.RecordsAtRounds(6), 10u);
  EXPECT_EQ(trace.RecordsAtRounds(1000), 10u);
}

TEST(CrawlTraceTest, SameRoundCollapsesToLatestValue) {
  CrawlTrace trace;
  trace.Add(3, 1);
  trace.Add(3, 2);
  ASSERT_EQ(trace.points().size(), 1u);
  EXPECT_EQ(trace.points()[0].records, 2u);
}

TEST(CrawlTraceDeathTest, DecreasingRoundsAborts) {
  CrawlTrace trace;
  trace.Add(5, 1);
  EXPECT_DEATH(trace.Add(4, 2), "non-decreasing");
}

TEST(CrawlTraceDeathTest, DecreasingRecordsAborts) {
  CrawlTrace trace;
  trace.Add(5, 10);
  EXPECT_DEATH(trace.Add(6, 9), "non-decreasing");
}

}  // namespace
}  // namespace deepcrawl
