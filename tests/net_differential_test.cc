// The wire determinism contract (DESIGN.md §13): a crawl fetching over
// TCP — pipelined across multiple connections, responses interleaving
// however the sockets please — emits BYTE-IDENTICAL output to the same
// crawl run in-process, for every selector (the optimal hierarchy
// descents included), fault profile, and batch size. Plus the restart
// story: a TCP crawl checkpointed at wave boundaries, interrupted, and
// resumed against a RESTARTED server process continues to the same
// byte-identical trace.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/crawler/checkpoint.h"
#include "src/crawler/crawl_engine.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/local_store.h"
#include "src/crawler/mmmi_selector.h"
#include "src/crawler/optimal_selector.h"
#include "src/crawler/retry_policy.h"
#include "src/crawler/trace_io.h"
#include "src/datagen/adversarial_workload.h"
#include "src/datagen/movie_domain.h"
#include "src/net/event_loop.h"
#include "src/net/net_client.h"
#include "src/net/tcp_server.h"
#include "src/server/faulty_server.h"
#include "src/server/web_db_server.h"
#include "src/util/logging.h"
#include "tests/test_util.h"

namespace deepcrawl {
namespace {

constexpr uint64_t kFaultSeed = 29;

const char* const kPolicies[] = {"greedy", "mmmi"};
const char* const kProfiles[] = {"none", "flaky", "hostile"};
const uint32_t kBatches[] = {1, 16};

FaultProfile ProfileByName(const std::string& name) {
  FaultProfile profile;
  if (name == "flaky") {
    profile.unavailable_rate = 0.05;
    profile.timeout_rate = 0.03;
    profile.rate_limit_rate = 0.02;
  } else if (name == "hostile") {
    profile.unavailable_rate = 0.10;
    profile.timeout_rate = 0.05;
    profile.rate_limit_rate = 0.05;
    profile.truncate_rate = 0.05;
    profile.duplicate_rate = 0.02;
  }
  return profile;
}

const Table& MovieTarget() {
  static const Table* table = [] {
    MovieDomainPairConfig config;
    config.universe_size = 800;
    config.target_size = 220;
    config.seed = 7;
    StatusOr<MovieDomainPair> pair = GenerateMovieDomainPair(config);
    DEEPCRAWL_CHECK(pair.ok()) << pair.status().ToString();
    return new Table(std::move(pair->target));
  }();
  return *table;
}

const AdversarialInstance& TrapInstance() {
  static const AdversarialInstance* instance = [] {
    AdversarialConfig config;
    config.family = AdversarialFamily::kGreedyTrap;
    config.leaf_buckets = 12;
    config.bucket_records = 4;
    config.decoy_buckets = 4;
    config.decoy_width = 8;
    config.seed = 3;
    StatusOr<AdversarialInstance> generated =
        GenerateAdversarialInstance(config);
    DEEPCRAWL_CHECK(generated.ok()) << generated.status().ToString();
    return new AdversarialInstance(std::move(generated).value());
  }();
  return *instance;
}

struct Env {
  const Table* target = nullptr;
  ServerOptions server_options;
  ValueId seed_value = kInvalidValueId;
};

Env MovieEnv() {
  Env env;
  env.target = &MovieTarget();
  for (ValueId v = 0; v < env.target->num_distinct_values(); ++v) {
    if (env.target->value_frequency(v) > 0) {
      env.seed_value = v;
      break;
    }
  }
  return env;
}

Env TrapEnv() {
  const AdversarialInstance& instance = TrapInstance();
  Env env;
  env.target = &instance.table;
  env.server_options.page_size = instance.result_limit;
  env.server_options.result_limit = instance.result_limit;
  env.seed_value = instance.root_value;
  return env;
}

std::unique_ptr<QuerySelector> MakeSelector(const std::string& policy,
                                            const LocalStore& store,
                                            const Env& env) {
  if (policy == "greedy") return std::make_unique<GreedyLinkSelector>(store);
  if (policy == "mmmi") return std::make_unique<MmmiSelector>(store);
  if (policy == "opt-rank" || policy == "opt-threshold") {
    StatusOr<AttributeId> rank_attr =
        env.target->schema().FindAttribute("range");
    DEEPCRAWL_CHECK(rank_attr.ok());
    StatusOr<QueryHierarchy> hierarchy = QueryHierarchy::FromCatalog(
        env.target->catalog(), rank_attr.value());
    DEEPCRAWL_CHECK(hierarchy.ok()) << hierarchy.status().ToString();
    OptimalSelectorOptions options;
    options.mode = policy == "opt-rank" ? OptimalMode::kRank
                                        : OptimalMode::kThreshold;
    options.result_limit = env.server_options.result_limit;
    return std::make_unique<RankOptimalSelector>(
        store, std::move(hierarchy).value(), options);
  }
  ADD_FAILURE() << "unknown policy " << policy;
  return nullptr;
}

// Everything two equivalent crawls must agree on, trace CSV included.
struct RunOutput {
  CrawlResult result;
  std::string trace_csv;
  std::vector<RecordId> harvest_order;
};

RunOutput Capture(const CrawlResult& result, const LocalStore& store) {
  RunOutput out;
  out.result = result;
  std::ostringstream csv;
  Status written = WriteTraceCsv(result.trace, csv);
  DEEPCRAWL_CHECK(written.ok()) << written.ToString();
  out.trace_csv = csv.str();
  for (uint32_t slot = 0; slot < store.num_records(); ++slot) {
    out.harvest_order.push_back(store.OriginalRecordId(slot));
  }
  return out;
}

void ExpectIdentical(const RunOutput& a, const RunOutput& b,
                     const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.result.stop_reason, b.result.stop_reason);
  EXPECT_EQ(a.result.rounds, b.result.rounds);
  EXPECT_EQ(a.result.queries, b.result.queries);
  EXPECT_EQ(a.result.records, b.result.records);
  EXPECT_EQ(a.result.resilience, b.result.resilience);
  EXPECT_EQ(a.trace_csv, b.trace_csv) << "trace CSV differs";
  EXPECT_EQ(a.harvest_order, b.harvest_order);
}

RunOutput RunInProcess(const Env& env, const std::string& policy,
                       const std::string& profile_name, uint32_t batch) {
  WebDbServer backend(*env.target, env.server_options);
  FaultProfile profile = ProfileByName(profile_name);
  std::optional<FaultyServer> faulty;
  QueryInterface* server = &backend;
  if (!profile.IsAllZero()) {
    faulty.emplace(backend, profile, kFaultSeed);
    faulty->set_keyed_faults(true);
    server = &*faulty;
  }
  LocalStore store;
  std::unique_ptr<QuerySelector> selector = MakeSelector(policy, store, env);
  RetryPolicy retry((RetryPolicyConfig()));
  EngineOptions engine_options;
  engine_options.batch = batch;
  CrawlEngine engine(*server, *selector, store, CrawlOptions{},
                     engine_options, nullptr, &retry);
  engine.AddSeed(env.seed_value);
  StatusOr<CrawlResult> result = engine.Run();
  DEEPCRAWL_CHECK(result.ok()) << result.status().ToString();
  return Capture(*result, store);
}

// The fault stack lives server-side, exactly as deepcrawl_serve builds
// it; the loop thread owns every backend call.
class TcpEnv {
 public:
  TcpEnv(const Env& env, const std::string& profile_name, uint16_t port = 0) {
    backend_.emplace(*env.target, env.server_options);
    QueryInterface* served = &*backend_;
    FaultProfile profile = ProfileByName(profile_name);
    if (!profile.IsAllZero()) {
      faulty_.emplace(*backend_, profile, kFaultSeed);
      faulty_->set_keyed_faults(true);
      served = &*faulty_;
    }
    Status init = loop_.Init();
    DEEPCRAWL_CHECK(init.ok()) << init.ToString();
    TcpServerOptions tcp_options;
    tcp_options.port = port;
    tcp_options.num_values = env.target->num_distinct_values();
    server_.emplace(loop_, *served, tcp_options);
    Status started = server_->Start();
    DEEPCRAWL_CHECK(started.ok()) << started.ToString();
    thread_ = std::thread([this] { loop_.Run(); });
  }
  ~TcpEnv() { Stop(); }

  void Stop() {
    if (thread_.joinable()) {
      loop_.Stop();
      thread_.join();
      server_->Shutdown();
    }
  }

  uint16_t port() const { return server_->port(); }

 private:
  std::optional<WebDbServer> backend_;
  std::optional<FaultyServer> faulty_;
  EventLoop loop_;
  std::optional<WebDbTcpServer> server_;
  std::thread thread_;
};

std::unique_ptr<NetQueryClient> ConnectTo(uint16_t port,
                                          uint32_t connections) {
  NetClientOptions net_options;
  net_options.port = port;
  net_options.connections = connections;
  net_options.reconnect_window_ms = 5000;
  net_options.reconnect_backoff_ms = 5;
  StatusOr<std::unique_ptr<NetQueryClient>> client =
      NetQueryClient::Connect(net_options);
  DEEPCRAWL_CHECK(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

RunOutput RunOverTcp(const Env& env, const std::string& policy,
                     const std::string& profile_name, uint32_t batch,
                     uint32_t connections) {
  TcpEnv tcp(env, profile_name);
  std::unique_ptr<NetQueryClient> client = ConnectTo(tcp.port(), connections);
  NetFetchExecutor executor(*client);
  LocalStore store;
  std::unique_ptr<QuerySelector> selector = MakeSelector(policy, store, env);
  RetryPolicy retry((RetryPolicyConfig()));
  EngineOptions engine_options;
  engine_options.batch = batch;
  engine_options.shared_executor = &executor;
  CrawlEngine engine(*client, *selector, store, CrawlOptions{},
                     engine_options, nullptr, &retry);
  engine.AddSeed(env.seed_value);
  StatusOr<CrawlResult> result = engine.Run();
  DEEPCRAWL_CHECK(result.ok()) << result.status().ToString();
  return Capture(*result, store);
}

TEST(NetDifferentialTest, TcpMatchesInProcessAcrossPoliciesAndFaults) {
  const Env env = MovieEnv();
  for (const char* policy : kPolicies) {
    for (const char* profile : kProfiles) {
      for (uint32_t batch : kBatches) {
        RunOutput local = RunInProcess(env, policy, profile, batch);
        RunOutput wire = RunOverTcp(env, policy, profile, batch,
                                    /*connections=*/4);
        ExpectIdentical(local, wire,
                        std::string(policy) + "/" + profile + "/batch=" +
                            std::to_string(batch));
      }
    }
  }
}

TEST(NetDifferentialTest, OptimalSelectorsMatchOverTcp) {
  const Env env = TrapEnv();
  for (const char* policy : {"opt-rank", "opt-threshold"}) {
    for (const char* profile : {"none", "flaky"}) {
      for (uint32_t batch : kBatches) {
        RunOutput local = RunInProcess(env, policy, profile, batch);
        RunOutput wire = RunOverTcp(env, policy, profile, batch,
                                    /*connections=*/3);
        ExpectIdentical(local, wire,
                        std::string(policy) + "/" + profile + "/batch=" +
                            std::to_string(batch));
      }
    }
  }
}

TEST(NetDifferentialTest, ConnectionCountNeverChangesOutput) {
  const Env env = MovieEnv();
  RunOutput one = RunOverTcp(env, "greedy", "flaky", /*batch=*/16,
                             /*connections=*/1);
  for (uint32_t connections : {2u, 8u}) {
    RunOutput many = RunOverTcp(env, "greedy", "flaky", /*batch=*/16,
                                connections);
    ExpectIdentical(one, many,
                    "connections=" + std::to_string(connections));
  }
}

// A TCP crawl checkpointed every wave, stopped mid-crawl, then resumed
// by a FRESH engine + client against a RESTARTED server must finish
// with the uninterrupted crawl's exact trace. (Fault-free: a real
// server restart loses the keyed-fault attempt table, exactly like
// check.sh pass 8.)
TEST(NetDifferentialTest, CheckpointResumeAcrossServerRestart) {
  const Env env = MovieEnv();
  RunOutput reference = RunInProcess(env, "greedy", "none", /*batch=*/8);

  std::string path =
      ::testing::TempDir() + "/net_differential_resume.ckpt";
  uint16_t port = 0;
  {
    TcpEnv tcp(env, "none");
    port = tcp.port();
    std::unique_ptr<NetQueryClient> client = ConnectTo(port, 2);
    NetFetchExecutor executor(*client);
    LocalStore store;
    std::unique_ptr<QuerySelector> selector =
        MakeSelector("greedy", store, env);
    RetryPolicy retry((RetryPolicyConfig()));
    CrawlOptions crawl_options;
    crawl_options.max_rounds = reference.result.rounds / 2;
    EngineOptions engine_options;
    engine_options.batch = 8;
    engine_options.shared_executor = &executor;
    engine_options.checkpoint_every_waves = 1;
    engine_options.checkpoint_sink = [&path](const CrawlEngine& e) {
      return SaveCrawlCheckpoint(e, nullptr, path);
    };
    CrawlEngine engine(*client, *selector, store, crawl_options,
                       engine_options, nullptr, &retry);
    engine.AddSeed(env.seed_value);
    StatusOr<CrawlResult> interrupted = engine.Run();
    ASSERT_TRUE(interrupted.ok()) << interrupted.status().ToString();
    ASSERT_EQ(interrupted->stop_reason, StopReason::kRoundBudget)
        << "interruption landed after the crawl already finished";
  }  // server process "dies" here

  // Restart the server on the same port; resume from the checkpoint
  // with a brand-new client/engine, budget lifted.
  {
    TcpEnv tcp(env, "none", port);
    std::unique_ptr<NetQueryClient> client = ConnectTo(port, 2);
    NetFetchExecutor executor(*client);
    LocalStore store;
    std::unique_ptr<QuerySelector> selector =
        MakeSelector("greedy", store, env);
    RetryPolicy retry((RetryPolicyConfig()));
    EngineOptions engine_options;
    engine_options.batch = 8;
    engine_options.shared_executor = &executor;
    CrawlEngine engine(*client, *selector, store, CrawlOptions{},
                       engine_options, nullptr, &retry);
    Status loaded = LoadCrawlCheckpoint(path, engine, nullptr);
    ASSERT_TRUE(loaded.ok()) << loaded.ToString();
    engine.set_max_rounds(0);
    StatusOr<CrawlResult> result = engine.Run();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    RunOutput resumed = Capture(*result, store);
    ExpectIdentical(reference, resumed, "resume-across-restart");
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace deepcrawl
