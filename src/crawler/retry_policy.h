// RetryPolicy: capped exponential backoff with deterministic jitter for
// transient source failures, over a simulated clock.
//
// Real hidden-Web crawls run for days against sources that time out and
// rate-limit (§5.4); a crawler that dies on the first 503 never
// finishes. The policy decides, per failed page fetch,
//
//   * whether the failure is worth retrying (kUnavailable,
//     kDeadlineExceeded, kResourceExhausted are transient; everything
//     else is a bug or a permanent condition),
//   * whether the value's retry budget still allows another attempt, and
//   * how long to back off before it, in simulated clock ticks:
//     capped exponential growth plus deterministic jitter (a hash of
//     seed/value/attempt stands in for wall-clock entropy, keeping runs
//     bit-reproducible), never less than the server's retry-after hint.
//
// Retried fetches are real round trips and count into the paper's
// communication-round cost; backoff ticks only advance the simulated
// clock. When the per-drain budget is exhausted the crawler degrades
// gracefully: the value is re-queued at the frontier tail up to
// `max_requeues` times, then abandoned (see Crawler::Run).

#ifndef DEEPCRAWL_CRAWLER_RETRY_POLICY_H_
#define DEEPCRAWL_CRAWLER_RETRY_POLICY_H_

#include <cstdint>

#include "src/relation/types.h"
#include "src/util/status.h"

namespace deepcrawl {

struct RetryPolicyConfig {
  // Maximum failed attempts per drain of one value before giving up
  // (must be >= 1; 1 = no retries).
  uint32_t max_attempts = 4;
  // Backoff window for the first retry, in simulated clock ticks.
  uint64_t initial_backoff_ticks = 1;
  // Cap on the backoff window.
  uint64_t max_backoff_ticks = 16;
  // Window growth per consecutive failure.
  double backoff_multiplier = 2.0;
  // Fraction of the window randomized by deterministic jitter (0 = full
  // window every time, 1 = uniform over [1, window]).
  double jitter = 0.5;
  // How many times an exhausted value is re-queued at the frontier tail
  // before being abandoned.
  uint32_t max_requeues = 2;
  // Seed for the jitter hash; distinct seeds decorrelate fleets.
  uint64_t seed = 0x5eed;
};

// Discrete simulated time. Backoff waits advance this clock instead of
// sleeping, so a multi-day crawl's retry behaviour replays in
// microseconds and stays deterministic.
class SimulatedClock {
 public:
  uint64_t now() const { return now_; }
  void Advance(uint64_t ticks) { now_ += ticks; }
  // Restores a checkpointed time (see src/crawler/checkpoint.h).
  void set_now(uint64_t now) { now_ = now; }

 private:
  uint64_t now_ = 0;
};

class RetryPolicy {
 public:
  explicit RetryPolicy(RetryPolicyConfig config = RetryPolicyConfig());

  // Transient failures worth retrying; kOutOfRange / kInvalidArgument /
  // etc. are not (retrying cannot change the answer).
  static bool IsRetryable(const Status& status);

  // Whether attempt number `failures` (count of failed fetches of the
  // current drain, >= 1) leaves budget for another try.
  bool ShouldRetry(const Status& status, uint32_t failures) const;

  // Backoff before retry number `failures`, in simulated ticks: capped
  // exponential window, jittered deterministically by (seed, value,
  // failures), floored at the status's retry-after hint. Always >= 1.
  uint64_t BackoffTicks(const Status& status, uint32_t failures,
                        ValueId value) const;

  // The server-advertised hard floor on when this failure may be
  // followed by another fetch: the status's retry-after hint, or 0 when
  // it carries none. BackoffTicks already applies it to retries; the
  // give-up paths (re-queue / abandon) must charge it too — a 429's
  // hint binds the *source*, not the value that happened to trigger it,
  // so giving up on the value does not license an earlier fetch.
  uint64_t FloorTicks(const Status& status) const;

  const RetryPolicyConfig& config() const { return config_; }

 private:
  RetryPolicyConfig config_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_CRAWLER_RETRY_POLICY_H_
