
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/marginal_harvest.cpp" "examples/CMakeFiles/marginal_harvest.dir/marginal_harvest.cpp.o" "gcc" "examples/CMakeFiles/marginal_harvest.dir/marginal_harvest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/deepcrawl_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/domain/CMakeFiles/deepcrawl_domain.dir/DependInfo.cmake"
  "/root/repo/build/src/estimate/CMakeFiles/deepcrawl_estimate.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/deepcrawl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/crawler/CMakeFiles/deepcrawl_crawler.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/deepcrawl_server.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/deepcrawl_index.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/deepcrawl_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/deepcrawl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
