#include "src/util/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "src/util/logging.h"

namespace deepcrawl {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  DEEPCRAWL_CHECK(!header_.empty()) << "table needs at least one column";
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  DEEPCRAWL_CHECK_EQ(cells.size(), header_.size())
      << "row width does not match header width";
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << " |\n";
  };
  auto print_separator = [&]() {
    for (size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
    }
    os << "-|\n";
  };
  print_row(header_);
  print_separator();
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::FormatDouble(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

std::string TablePrinter::FormatPercent(double fraction, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << fraction * 100.0
      << "%";
  return oss.str();
}

std::string TablePrinter::FormatCount(uint64_t value) {
  // Groups digits with commas: 1234567 -> "1,234,567".
  std::string digits = std::to_string(value);
  std::string result;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) result.push_back(',');
    result.push_back(*it);
    ++count;
  }
  std::reverse(result.begin(), result.end());
  return result;
}

}  // namespace deepcrawl
