#!/usr/bin/env python3
"""Compare BENCH_*.json metric files against committed baselines.

Each file is produced by a bench binary's --json=<path> mode (see
bench/bench_common.h BenchJson) and holds named metrics with a
direction flag:

    { "bench": "micro",
      "metrics": [ {"name": "ingest_exact_rps", "value": 2.4e6,
                    "unit": "records/s", "higher_is_better": true}, ... ] }

Usage (pairs repeat; the i-th --current is compared to the i-th
--baseline):

    tools/bench_compare.py --max-regress 0.20 \
        --baseline BENCH_micro.json    --current build-perf/BENCH_micro.json \
        --baseline BENCH_parallel.json --current build-perf/BENCH_parallel.json

A metric regresses when it moves in its bad direction by more than
--max-regress (relative). Metrics missing from the current run fail the
comparison; metrics new in the current run are reported but pass (the
baseline just needs refreshing). Exit status: 0 = all within bounds,
1 = regression or structural mismatch.

Only the Python standard library is used.
"""

import argparse
import json
import sys


def load_metrics(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    metrics = {}
    for m in doc.get("metrics", []):
        metrics[m["name"]] = m
    return doc.get("bench", path), metrics


def compare_pair(baseline_path, current_path, max_regress):
    """Returns (ok, lines) for one baseline/current file pair."""
    bench_name, base = load_metrics(baseline_path)
    _, cur = load_metrics(current_path)
    ok = True
    lines = [f"[{bench_name}] {current_path} vs {baseline_path}"]
    for name, bm in base.items():
        if name not in cur:
            ok = False
            lines.append(f"  FAIL {name}: missing from current run")
            continue
        bv, cv = float(bm["value"]), float(cur[name]["value"])
        higher = bool(bm.get("higher_is_better", True))
        if bv == 0.0:
            delta = 0.0 if cv == 0.0 else float("inf")
        elif higher:
            delta = (bv - cv) / bv  # positive = got worse
        else:
            delta = (cv - bv) / bv
        unit = bm.get("unit", "")
        change = (cv - bv) / bv * 100.0 if bv else 0.0
        verdict = "FAIL" if delta > max_regress else "ok"
        if delta > max_regress:
            ok = False
        lines.append(
            f"  {verdict:4s} {name}: {bv:.6g} -> {cv:.6g} {unit} "
            f"({change:+.1f}%, {'higher' if higher else 'lower'} is better)"
        )
    for name in cur:
        if name not in base:
            lines.append(f"  note {name}: new metric (not in baseline)")
    return ok, lines


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", action="append", required=True,
                        help="baseline BENCH_*.json (repeatable)")
    parser.add_argument("--current", action="append", required=True,
                        help="current BENCH_*.json (repeatable, pairs with "
                             "--baseline by position)")
    parser.add_argument("--max-regress", type=float, default=0.20,
                        help="max allowed relative regression (default 0.20)")
    args = parser.parse_args()
    if len(args.baseline) != len(args.current):
        parser.error("--baseline and --current counts must match")

    all_ok = True
    for baseline_path, current_path in zip(args.baseline, args.current):
        ok, lines = compare_pair(baseline_path, current_path,
                                 args.max_regress)
        print("\n".join(lines))
        all_ok = all_ok and ok
    if not all_ok:
        print(f"\nbench_compare: REGRESSION beyond {args.max_regress:.0%}")
        return 1
    print(f"\nbench_compare: all metrics within {args.max_regress:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
