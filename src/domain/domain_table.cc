#include "src/domain/domain_table.h"

#include <algorithm>

#include "src/util/logging.h"

namespace deepcrawl {

DomainTable DomainTable::Build(const Table& sample,
                               const Schema& target_schema,
                               ValueCatalog& target_catalog) {
  DomainTable dt;
  dt.num_domain_records_ = sample.num_records();

  // Map every sample attribute to the target attribute of the same name
  // (kInvalidAttributeId when the target cannot be queried on it).
  std::vector<AttributeId> attr_map(sample.schema().num_attributes(),
                                    kInvalidAttributeId);
  for (AttributeId a = 0; a < sample.schema().num_attributes(); ++a) {
    StatusOr<AttributeId> target_attr =
        target_schema.FindAttribute(sample.schema().attribute(a).name);
    if (target_attr.ok()) attr_map[a] = *target_attr;
  }

  // Map sample value ids to target value ids, interning unseen texts.
  const ValueCatalog& sample_catalog = sample.catalog();
  std::vector<ValueId> value_map(sample_catalog.size(), kInvalidValueId);
  for (ValueId sv = 0; sv < sample_catalog.size(); ++sv) {
    AttributeId target_attr = attr_map[sample_catalog.attribute_of(sv)];
    if (target_attr == kInvalidAttributeId) continue;
    value_map[sv] =
        target_catalog.Intern(target_attr, sample_catalog.text_of(sv));
  }

  // Gather entries and posting sizes (a target value may aggregate
  // several sample values only if texts collide across mapped
  // attributes, which Intern keys prevent; still, accumulate robustly).
  std::unordered_map<ValueId, uint32_t> frequency;
  for (ValueId sv = 0; sv < sample_catalog.size(); ++sv) {
    if (value_map[sv] == kInvalidValueId) continue;
    frequency[value_map[sv]] += sample.value_frequency(sv);
  }

  dt.values_.reserve(frequency.size());
  dt.offsets_.reserve(frequency.size() + 1);
  dt.offsets_.push_back(0);
  for (const auto& [tv, freq] : frequency) {
    dt.entry_of_.emplace(tv, static_cast<uint32_t>(dt.values_.size()));
    dt.values_.push_back(tv);
    dt.offsets_.push_back(dt.offsets_.back() + freq);
  }
  dt.postings_.resize(dt.offsets_.back());

  std::vector<size_t> cursor(dt.offsets_.begin(), dt.offsets_.end() - 1);
  for (RecordId r = 0; r < sample.num_records(); ++r) {
    for (ValueId sv : sample.record(r)) {
      ValueId tv = value_map[sv];
      if (tv == kInvalidValueId) continue;
      uint32_t entry = dt.entry_of_.at(tv);
      dt.postings_[cursor[entry]++] = r;
    }
  }
  // Record scan order keeps each posting list sorted; a target value fed
  // by several sample values could interleave, so normalize defensively.
  for (size_t e = 0; e < dt.values_.size(); ++e) {
    auto begin = dt.postings_.begin() + static_cast<ptrdiff_t>(dt.offsets_[e]);
    auto end = dt.postings_.begin() + static_cast<ptrdiff_t>(dt.offsets_[e + 1]);
    if (!std::is_sorted(begin, end)) std::sort(begin, end);
  }
  return dt;
}

uint32_t DomainTable::DomainFrequency(ValueId target_value) const {
  auto it = entry_of_.find(target_value);
  if (it == entry_of_.end()) return 0;
  return static_cast<uint32_t>(offsets_[it->second + 1] -
                               offsets_[it->second]);
}

double DomainTable::Probability(ValueId target_value) const {
  if (num_domain_records_ == 0) return 0.0;
  return static_cast<double>(DomainFrequency(target_value)) /
         static_cast<double>(num_domain_records_);
}

std::span<const uint32_t> DomainTable::DomainPostings(
    ValueId target_value) const {
  auto it = entry_of_.find(target_value);
  if (it == entry_of_.end()) return {};
  size_t begin = offsets_[it->second];
  size_t end = offsets_[it->second + 1];
  return std::span<const uint32_t>(postings_.data() + begin, end - begin);
}

}  // namespace deepcrawl
