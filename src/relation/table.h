// Table: the universal relational table DB of the paper (§2.1).
//
// A Table owns a Schema, a ValueCatalog, and the records. Each record is
// a sorted, duplicate-free list of ValueIds (a record's values form a
// clique in the attribute-value graph, so order is irrelevant; sortedness
// makes co-occurrence scans and set operations cheap).
//
// Records are appended through AddRecord; the table is append-only, which
// matches both the simulated server (immutable target database) and the
// crawler's local store (grow-only DBlocal).

#ifndef DEEPCRAWL_RELATION_TABLE_H_
#define DEEPCRAWL_RELATION_TABLE_H_

#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/relation/schema.h"
#include "src/relation/types.h"
#include "src/relation/value_catalog.h"
#include "src/util/status.h"

namespace deepcrawl {

// One attribute/value cell of an input record, before interning.
struct Cell {
  AttributeId attr = kInvalidAttributeId;
  std::string text;
};

class Table {
 public:
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  // Interns every cell and appends the record. Duplicate values within
  // one record are collapsed. Fails when a cell names an attribute
  // outside the schema or the record is empty.
  StatusOr<RecordId> AddRecord(const std::vector<Cell>& cells);

  // Appends a record given pre-interned value ids (they must have been
  // interned through this table's catalog). Ids are sorted/deduplicated.
  StatusOr<RecordId> AddRecordFromValueIds(std::vector<ValueId> values);

  size_t num_records() const { return record_offsets_.size() - 1; }
  size_t num_distinct_values() const { return catalog_.size(); }

  // The sorted, duplicate-free value ids of record `id`.
  std::span<const ValueId> record(RecordId id) const;

  const Schema& schema() const { return schema_; }
  const ValueCatalog& catalog() const { return catalog_; }
  ValueCatalog& mutable_catalog() { return catalog_; }

  // Number of records containing `value` — num(q, DB) in the paper's
  // cost model (Definition 2.3).
  uint32_t value_frequency(ValueId value) const;

  // Count of distinct values per attribute (Table 2 of the paper).
  std::vector<size_t> DistinctValuesPerAttribute() const;

 private:
  Schema schema_;
  ValueCatalog catalog_;
  // Record storage: concatenated value ids with an offsets array
  // (CSR-style), avoiding per-record vector overhead.
  std::vector<ValueId> record_values_;
  std::vector<size_t> record_offsets_ = {0};
  // value_frequency_[v] = number of records containing v.
  std::vector<uint32_t> value_frequency_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_RELATION_TABLE_H_
