// Config-driven synthetic structured-database generation.
//
// The paper's controlled experiments run over four real databases (eBay,
// ACM Digital Library, DBLP, IMDB). Those dumps are not available here,
// so this generator produces databases with the properties the paper
// identifies as the ones that matter for query selection:
//
//   * Zipfian value popularity, which yields the power-law AVG degree
//     distribution of Figure 2 (hubs + "the massive many");
//   * multi-valued attributes (authors, actors) whose values form
//     cliques bridging records;
//   * attribute-value dependency via community structure (§3.3:
//     co-authors publish together), the effect MMMI exploits;
//   * near-full record connectivity (§5: 99% of records reachable from
//     any seed), which falls out of the hub values.
//
// Every record draws its values from per-attribute pools. A pool value's
// text is "<attr>#<pool index>", so identical pool draws across records
// intern to the same ValueId.

#ifndef DEEPCRAWL_DATAGEN_WORKLOAD_CONFIG_H_
#define DEEPCRAWL_DATAGEN_WORKLOAD_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/relation/table.h"
#include "src/util/status.h"

namespace deepcrawl {

struct AttributeSpec {
  std::string name;
  // Pool cardinality. Ignored when unique_per_record.
  uint32_t num_distinct = 0;
  // Zipf exponent of pool popularity (0 = uniform).
  double zipf_exponent = 1.0;
  // Values per record, drawn uniformly in [min_per_record,
  // max_per_record]. Multi-valued attributes set max_per_record > 1.
  uint32_t min_per_record = 1;
  uint32_t max_per_record = 1;
  // Probability that a record carries this attribute at all. Real Web
  // records are sparse (no location listed, price on request, ...);
  // sparsity keeps small-cardinality attributes from forming a cheap
  // dominating hub layer, which is what makes deep coverage expensive
  // (§5: "cost increases dramatically when the coverage exceeds 80%").
  double presence = 1.0;
  // Every record gets its own fresh value (titles): degree-1-ish mass.
  bool unique_per_record = false;
  // Correlation: with this probability a draw comes from the record's
  // community slice of the pool instead of the global distribution.
  // Models co-author/co-actor clustering (§3.3).
  double community_bias = 0.0;
  uint32_t num_communities = 0;  // required > 0 when community_bias > 0
  // Derived attribute: values are a deterministic function of another
  // attribute's draws in the same record (pool index / derive_group).
  // Models the paper's §3.3 example of strongly dependent values — a
  // seller's store name, a venue's publisher: after the source value is
  // queried, the derived value returns almost nothing new, even though
  // its degree is high. -1 = not derived. A derived attribute ignores
  // num_distinct/zipf/per-record/community settings.
  int derived_from = -1;
  uint32_t derive_group = 1;  // source values aliased per derived value
};

struct SyntheticDbConfig {
  std::string name;
  uint32_t num_records = 0;
  std::vector<AttributeSpec> attributes;
  uint64_t seed = 1;
};

// Generates a table according to `config`. Fails on invalid specs
// (empty schema, zero records, bias without communities, ...).
StatusOr<Table> GenerateTable(const SyntheticDbConfig& config);

}  // namespace deepcrawl

#endif  // DEEPCRAWL_DATAGEN_WORKLOAD_CONFIG_H_
