// Tests of the simulated Web database server: pagination, cost
// accounting, result limits, count reporting — the §2.3/§5.4 mechanics.

#include "src/server/web_db_server.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace deepcrawl {
namespace {

using testing_util::GetValueId;
using testing_util::MakeFigure1Table;
using testing_util::MakeTable;

// A table with one hub value matching `n` records.
Table HubTable(int n) {
  std::vector<testing_util::Row> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({{"Brand", "toyota"}, {"Vin", "v" + std::to_string(i)}});
  }
  return MakeTable(rows);
}

TEST(WebDbServerTest, PaginationSplitsResults) {
  Table table = HubTable(95);
  ServerOptions options;
  options.page_size = 10;
  WebDbServer server(table, options);
  ValueId toyota = GetValueId(table, "Brand", "toyota");

  // Definition 2.3's example: 95 matches at 10 per page = 10 rounds.
  uint32_t pages = 0;
  for (uint32_t p = 0;; ++p) {
    StatusOr<ResultPage> page = server.FetchPage(toyota, p);
    ASSERT_TRUE(page.ok());
    ++pages;
    if (p < 9) {
      EXPECT_EQ(page->records.size(), 10u);
      EXPECT_TRUE(page->has_more);
    } else {
      EXPECT_EQ(page->records.size(), 5u);
      EXPECT_FALSE(page->has_more);
      break;
    }
  }
  EXPECT_EQ(pages, 10u);
  EXPECT_EQ(server.communication_rounds(), 10u);
  EXPECT_EQ(server.queries_issued(), 1u);
  EXPECT_EQ(server.FullRetrievalCost(toyota), 10u);
}

TEST(WebDbServerTest, TotalCountReportedWhenEnabled) {
  Table table = HubTable(42);
  ServerOptions options;
  options.page_size = 10;
  options.reports_total_count = true;
  WebDbServer server(table, options);
  StatusOr<ResultPage> page =
      server.FetchPage(GetValueId(table, "Brand", "toyota"), 0);
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(page->total_matches.has_value());
  EXPECT_EQ(*page->total_matches, 42u);
}

TEST(WebDbServerTest, TotalCountHiddenWhenDisabled) {
  Table table = HubTable(5);
  ServerOptions options;
  options.reports_total_count = false;
  WebDbServer server(table, options);
  StatusOr<ResultPage> page =
      server.FetchPage(GetValueId(table, "Brand", "toyota"), 0);
  ASSERT_TRUE(page.ok());
  EXPECT_FALSE(page->total_matches.has_value());
}

TEST(WebDbServerTest, ResultLimitCapsRetrieval) {
  // §5.4: a source reporting 5000 matches may only expose 20 pages.
  Table table = HubTable(200);
  ServerOptions options;
  options.page_size = 10;
  options.result_limit = 50;
  WebDbServer server(table, options);
  ValueId toyota = GetValueId(table, "Brand", "toyota");

  uint32_t retrieved = 0;
  uint32_t pages = 0;
  for (uint32_t p = 0;; ++p) {
    StatusOr<ResultPage> page = server.FetchPage(toyota, p);
    ASSERT_TRUE(page.ok());
    retrieved += page->records.size();
    ++pages;
    // The reported count is the full match count, not the limit.
    EXPECT_EQ(page->total_matches.value_or(0), 200u);
    if (!page->has_more) break;
  }
  EXPECT_EQ(retrieved, 50u);
  EXPECT_EQ(pages, 5u);
  EXPECT_EQ(server.FullRetrievalCost(toyota), 5u);
  // Fetching past the limit is out of range.
  EXPECT_EQ(server.FetchPage(toyota, 5).status().code(),
            StatusCode::kOutOfRange);
}

TEST(WebDbServerTest, UnknownValueCostsARoundAndReturnsEmpty) {
  Table table = HubTable(3);
  WebDbServer server(table, ServerOptions{});
  StatusOr<ResultPage> page = server.FetchPage(99999, 0);
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(page->records.empty());
  EXPECT_FALSE(page->has_more);
  EXPECT_EQ(server.communication_rounds(), 1u);
  EXPECT_EQ(server.FullRetrievalCost(99999), 1u);
}

TEST(WebDbServerTest, FetchPageByTextResolvesValues) {
  Table table = MakeFigure1Table();
  WebDbServer server(table, ServerOptions{});
  StatusOr<AttributeId> attr = table.schema().FindAttribute("A");
  ASSERT_TRUE(attr.ok());
  StatusOr<ResultPage> page = server.FetchPageByText(*attr, "a2", 0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->records.size(), 3u);
  // Unknown text: empty result, one round charged.
  uint64_t before = server.communication_rounds();
  StatusOr<ResultPage> missing = server.FetchPageByText(*attr, "zz", 0);
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->records.empty());
  EXPECT_EQ(server.communication_rounds(), before + 1);
}

TEST(WebDbServerTest, KeywordQueryUnionsAcrossAttributes) {
  // The same text under two attributes; a keyword query matches both.
  Table table = MakeTable({
      {{"Actor", "eastwood"}, {"Title", "t1"}},
      {{"Director", "eastwood"}, {"Title", "t2"}},
      {{"Actor", "someone"}, {"Title", "t3"}},
  });
  WebDbServer server(table, ServerOptions{});
  StatusOr<ResultPage> page = server.FetchPageByKeyword("eastwood", 0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->records.size(), 2u);
  EXPECT_EQ(page->total_matches.value_or(0), 2u);
}

TEST(WebDbServerTest, KeywordQueryDeduplicatesRecords) {
  // One record matching under two attributes is returned once.
  Table table = MakeTable({
      {{"Actor", "eastwood"}, {"Director", "eastwood"}},
  });
  WebDbServer server(table, ServerOptions{});
  StatusOr<ResultPage> page = server.FetchPageByKeyword("eastwood", 0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->records.size(), 1u);
}

TEST(WebDbServerTest, MetersResetIndependently) {
  Table table = HubTable(3);
  WebDbServer server(table, ServerOptions{});
  ASSERT_TRUE(server.FetchPage(0, 0).ok());
  EXPECT_GT(server.communication_rounds(), 0u);
  server.ResetMeters();
  EXPECT_EQ(server.communication_rounds(), 0u);
  EXPECT_EQ(server.queries_issued(), 0u);
}

TEST(WebDbServerTest, ReturnedRecordsCarryFullTuples) {
  Table table = MakeFigure1Table();
  WebDbServer server(table, ServerOptions{});
  ValueId b4 = GetValueId(table, "B", "b4");
  StatusOr<ResultPage> page = server.FetchPage(b4, 0);
  ASSERT_TRUE(page.ok());
  ASSERT_EQ(page->records.size(), 1u);
  // Record (a3, b4, c2): three values.
  EXPECT_EQ(page->records[0].values.size(), 3u);
}

TEST(WebDbServerTest, ExactPageBoundary) {
  Table table = HubTable(20);
  ServerOptions options;
  options.page_size = 10;
  WebDbServer server(table, options);
  ValueId toyota = GetValueId(table, "Brand", "toyota");
  StatusOr<ResultPage> last = server.FetchPage(toyota, 1);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->records.size(), 10u);
  EXPECT_FALSE(last->has_more);
  EXPECT_EQ(server.FetchPage(toyota, 2).status().code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace deepcrawl
