file(REMOVE_RECURSE
  "CMakeFiles/bench_mmmi_ablation.dir/bench_mmmi_ablation.cc.o"
  "CMakeFiles/bench_mmmi_ablation.dir/bench_mmmi_ablation.cc.o.d"
  "bench_mmmi_ablation"
  "bench_mmmi_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mmmi_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
