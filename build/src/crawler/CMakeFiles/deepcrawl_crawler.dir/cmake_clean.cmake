file(REMOVE_RECURSE
  "CMakeFiles/deepcrawl_crawler.dir/abort_policy.cc.o"
  "CMakeFiles/deepcrawl_crawler.dir/abort_policy.cc.o.d"
  "CMakeFiles/deepcrawl_crawler.dir/crawler.cc.o"
  "CMakeFiles/deepcrawl_crawler.dir/crawler.cc.o.d"
  "CMakeFiles/deepcrawl_crawler.dir/greedy_link_selector.cc.o"
  "CMakeFiles/deepcrawl_crawler.dir/greedy_link_selector.cc.o.d"
  "CMakeFiles/deepcrawl_crawler.dir/local_store.cc.o"
  "CMakeFiles/deepcrawl_crawler.dir/local_store.cc.o.d"
  "CMakeFiles/deepcrawl_crawler.dir/metrics.cc.o"
  "CMakeFiles/deepcrawl_crawler.dir/metrics.cc.o.d"
  "CMakeFiles/deepcrawl_crawler.dir/mmmi_selector.cc.o"
  "CMakeFiles/deepcrawl_crawler.dir/mmmi_selector.cc.o.d"
  "CMakeFiles/deepcrawl_crawler.dir/naive_selectors.cc.o"
  "CMakeFiles/deepcrawl_crawler.dir/naive_selectors.cc.o.d"
  "CMakeFiles/deepcrawl_crawler.dir/oracle_selector.cc.o"
  "CMakeFiles/deepcrawl_crawler.dir/oracle_selector.cc.o.d"
  "CMakeFiles/deepcrawl_crawler.dir/scripted_selector.cc.o"
  "CMakeFiles/deepcrawl_crawler.dir/scripted_selector.cc.o.d"
  "CMakeFiles/deepcrawl_crawler.dir/trace_io.cc.o"
  "CMakeFiles/deepcrawl_crawler.dir/trace_io.cc.o.d"
  "libdeepcrawl_crawler.a"
  "libdeepcrawl_crawler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepcrawl_crawler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
