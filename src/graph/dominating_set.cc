#include "src/graph/dominating_set.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "src/util/logging.h"

namespace deepcrawl {

namespace {

// Counts undominated vertices in the closed neighborhood of v.
uint32_t ClosedNeighborhoodGain(const AttributeValueGraph& graph,
                                const std::vector<char>& dominated,
                                ValueId v) {
  uint32_t gain = dominated[v] ? 0 : 1;
  for (ValueId u : graph.Neighbors(v)) {
    if (!dominated[u]) ++gain;
  }
  return gain;
}

}  // namespace

DominatingSetResult GreedyWeightedDominatingSet(
    const AttributeValueGraph& graph, const VertexWeightFn& weight) {
  size_t n = graph.num_vertices();
  DominatingSetResult result;
  if (n == 0) return result;

  std::vector<char> dominated(n, 0);
  std::vector<char> selected(n, 0);
  size_t num_dominated = 0;

  struct HeapEntry {
    double score;  // gain / weight at push time (may be stale)
    uint32_t gain;
    ValueId vertex;
    bool operator<(const HeapEntry& other) const {
      // Max-heap by score; equal scores resolve to the smaller vertex id
      // so the greedy's choices are fully deterministic.
      if (score != other.score) return score < other.score;
      return vertex > other.vertex;
    }
  };
  std::priority_queue<HeapEntry> heap;
  std::vector<double> weights(n);
  for (ValueId v = 0; v < n; ++v) {
    weights[v] = weight(v);
    DEEPCRAWL_CHECK_GT(weights[v], 0.0) << "vertex weight must be positive";
    uint32_t gain = graph.Degree(v) + 1;
    heap.push(HeapEntry{static_cast<double>(gain) / weights[v], gain, v});
  }

  // Gains only shrink as vertices become dominated, so a popped entry
  // whose recomputed gain still matches is globally maximal (standard
  // lazy-greedy argument).
  while (num_dominated < n) {
    DEEPCRAWL_CHECK(!heap.empty()) << "greedy ran out of candidates";
    HeapEntry top = heap.top();
    heap.pop();
    if (selected[top.vertex]) continue;
    uint32_t gain = ClosedNeighborhoodGain(graph, dominated, top.vertex);
    if (gain == 0) continue;  // fully dominated already; drop
    if (gain < top.gain) {
      heap.push(HeapEntry{static_cast<double>(gain) / weights[top.vertex],
                          gain, top.vertex});
      continue;
    }
    // Accept.
    selected[top.vertex] = 1;
    result.vertices.push_back(top.vertex);
    result.total_weight += weights[top.vertex];
    if (!dominated[top.vertex]) {
      dominated[top.vertex] = 1;
      ++num_dominated;
    }
    for (ValueId u : graph.Neighbors(top.vertex)) {
      if (!dominated[u]) {
        dominated[u] = 1;
        ++num_dominated;
      }
    }
  }
  std::sort(result.vertices.begin(), result.vertices.end());
  return result;
}

namespace {

// Branch-and-bound state for the exact solver.
struct ExactSolver {
  const AttributeValueGraph& graph;
  const std::vector<double>& weights;
  size_t n;
  std::vector<char> in_set;
  std::vector<uint32_t> domination_count;  // # of dominators per vertex
  double current_weight = 0.0;
  double best_weight = std::numeric_limits<double>::infinity();
  std::vector<ValueId> best_set;
  double min_weight;  // cheapest single vertex, for the lower bound

  ExactSolver(const AttributeValueGraph& g, const std::vector<double>& w)
      : graph(g), weights(w), n(g.num_vertices()),
        in_set(n, 0), domination_count(n, 0) {
    min_weight = std::numeric_limits<double>::infinity();
    for (double x : w) min_weight = std::min(min_weight, x);
  }

  void Add(ValueId v) {
    in_set[v] = 1;
    current_weight += weights[v];
    ++domination_count[v];
    for (ValueId u : graph.Neighbors(v)) ++domination_count[u];
  }

  void Remove(ValueId v) {
    in_set[v] = 0;
    current_weight -= weights[v];
    --domination_count[v];
    for (ValueId u : graph.Neighbors(v)) --domination_count[u];
  }

  void Solve() {
    // Find the first undominated vertex; every dominating set must
    // contain it or one of its neighbors, so branching on that closed
    // neighborhood is exhaustive.
    ValueId undominated = kInvalidValueId;
    for (ValueId v = 0; v < n; ++v) {
      if (domination_count[v] == 0) {
        undominated = v;
        break;
      }
    }
    if (undominated == kInvalidValueId) {
      if (current_weight < best_weight) {
        best_weight = current_weight;
        best_set.clear();
        for (ValueId v = 0; v < n; ++v) {
          if (in_set[v]) best_set.push_back(v);
        }
      }
      return;
    }
    // Lower bound: at least one more vertex is needed.
    if (current_weight + min_weight >= best_weight) return;

    auto branch = [&](ValueId v) {
      if (in_set[v]) return;
      Add(v);
      Solve();
      Remove(v);
    };
    branch(undominated);
    for (ValueId u : graph.Neighbors(undominated)) branch(u);
  }
};

}  // namespace

DominatingSetResult ExactMinimumDominatingSet(
    const AttributeValueGraph& graph, const VertexWeightFn& weight) {
  size_t n = graph.num_vertices();
  DominatingSetResult result;
  if (n == 0) return result;
  std::vector<double> weights(n);
  for (ValueId v = 0; v < n; ++v) {
    weights[v] = weight(v);
    DEEPCRAWL_CHECK_GT(weights[v], 0.0) << "vertex weight must be positive";
  }
  ExactSolver solver(graph, weights);
  solver.Solve();
  result.vertices = std::move(solver.best_set);
  result.total_weight = solver.best_weight;
  return result;
}

bool IsDominatingSet(const AttributeValueGraph& graph,
                     const std::vector<ValueId>& set) {
  std::vector<char> dominated(graph.num_vertices(), 0);
  for (ValueId v : set) {
    dominated[v] = 1;
    for (ValueId u : graph.Neighbors(v)) dominated[u] = 1;
  }
  for (size_t v = 0; v < graph.num_vertices(); ++v) {
    if (!dominated[v]) return false;
  }
  return true;
}

}  // namespace deepcrawl
