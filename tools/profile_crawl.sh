#!/usr/bin/env bash
# Flamegraph-ready profile of a crawl: builds deepcrawl_crawl in Release
# with frame pointers kept (-DDEEPCRAWL_PROFILE=ON), runs it under
# `perf record -g`, and prints the hottest stacks. Start every hot-path
# investigation here — the PR that introduced this (CSR local graph +
# incremental MMMI) was scoped off exactly such a profile.
#
# Usage:
#   tools/profile_crawl.sh [crawl args...]
#
# Default crawl args exercise the MMMI marginal phase (the historical
# hot spot): eBay at scale 0.1, crawl to 99% with the switch at 85%.
# Output: build-profile/perf.data (open with `perf report`) plus an
# inline `perf report --stdio` summary. Pipe perf.data through
# stackcollapse-perf.pl/flamegraph.pl for an SVG if you have FlameGraph
# checked out.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v perf >/dev/null 2>&1; then
  echo "perf not found; install linux-tools for your kernel" >&2
  exit 2
fi

BUILD_DIR=build-profile
cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Release -DDEEPCRAWL_PROFILE=ON
cmake --build "${BUILD_DIR}" -j --target deepcrawl_crawl

ARGS=("$@")
if [[ ${#ARGS[@]} -eq 0 ]]; then
  ARGS=(--workload=ebay --scale=0.1 --policy=mmmi
        --target-coverage=0.99 --saturation=0.85)
fi

perf record -g --output="${BUILD_DIR}/perf.data" -- \
  "${BUILD_DIR}/tools/deepcrawl_crawl" "${ARGS[@]}"

echo
echo "=== hottest stacks (perf report --stdio, top 40 lines) ==="
perf report --stdio --input="${BUILD_DIR}/perf.data" 2>/dev/null | head -40
echo
echo "full data: perf report --input=${BUILD_DIR}/perf.data"
