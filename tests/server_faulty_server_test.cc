// Tests of the fault-injecting proxy: zero-profile transparency,
// scripted fault schedules, seeded determinism, and the proxy-side
// meters that charge injected failures as communication rounds.

#include "src/server/faulty_server.h"

#include <gtest/gtest.h>

#include <array>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/server/web_db_server.h"
#include "tests/test_util.h"

namespace deepcrawl {
namespace {

using testing_util::GetValueId;
using testing_util::MakeFigure1Table;
using testing_util::MakeTable;

// A table with one hub value matching `n` records.
Table HubTable(int n) {
  std::vector<testing_util::Row> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({{"Brand", "toyota"}, {"Vin", "v" + std::to_string(i)}});
  }
  return MakeTable(rows);
}

void ExpectSamePage(const StatusOr<ResultPage>& got,
                    const StatusOr<ResultPage>& want) {
  ASSERT_EQ(got.ok(), want.ok());
  if (!got.ok()) {
    EXPECT_EQ(got.status().code(), want.status().code());
    return;
  }
  EXPECT_EQ(got->page_number, want->page_number);
  EXPECT_EQ(got->total_matches, want->total_matches);
  EXPECT_EQ(got->has_more, want->has_more);
  ASSERT_EQ(got->records.size(), want->records.size());
  for (size_t i = 0; i < got->records.size(); ++i) {
    EXPECT_EQ(got->records[i].id, want->records[i].id);
    ASSERT_EQ(got->records[i].values.size(), want->records[i].values.size());
    for (size_t j = 0; j < got->records[i].values.size(); ++j) {
      EXPECT_EQ(got->records[i].values[j], want->records[i].values[j]);
    }
  }
}

// Acceptance property: an all-zero profile makes the proxy behaviorally
// identical to the bare server on every interface method — same pages,
// same errors, same meters.
TEST(FaultyServerTest, AllZeroProfileIsTransparent) {
  Table table = MakeFigure1Table();
  ServerOptions options;
  options.page_size = 2;
  WebDbServer bare(table, options);
  WebDbServer backend(table, options);
  FaultyServer proxy(backend, FaultProfile(), /*seed=*/99);

  uint32_t n = static_cast<uint32_t>(table.num_distinct_values());
  for (ValueId v = 0; v < n; ++v) {
    for (uint32_t page = 0; page < 4; ++page) {
      ExpectSamePage(proxy.FetchPage(v, page), bare.FetchPage(v, page));
      ExpectSamePage(proxy.FetchPageKeywordOf(v, page),
                     bare.FetchPageKeywordOf(v, page));
      std::array<ValueId, 1> single = {v};
      ExpectSamePage(proxy.FetchPageConjunctive(single, page),
                     bare.FetchPageConjunctive(single, page));
    }
  }
  for (std::string_view text : {"a2", "c2", "missing"}) {
    ExpectSamePage(proxy.FetchPageByText(0, text, 0),
                   bare.FetchPageByText(0, text, 0));
    ExpectSamePage(proxy.FetchPageByKeyword(text, 0),
                   bare.FetchPageByKeyword(text, 0));
  }
  std::array<ValueId, 2> pair = {GetValueId(table, "A", "a2"),
                                 GetValueId(table, "C", "c2")};
  ExpectSamePage(proxy.FetchPageConjunctive(pair, 0),
                 bare.FetchPageConjunctive(pair, 0));

  EXPECT_EQ(proxy.communication_rounds(), bare.communication_rounds());
  EXPECT_EQ(proxy.queries_issued(), bare.queries_issued());
  EXPECT_EQ(proxy.fault_counters().total(), 0u);
}

TEST(FaultyServerTest, ScheduledUnavailableFailsWithoutForwarding) {
  Table table = HubTable(5);
  WebDbServer backend(table, ServerOptions());
  FaultyServer proxy(backend, FaultProfile(), /*seed=*/1);
  proxy.set_schedule({FaultAction::kUnavailable});
  ValueId toyota = GetValueId(table, "Brand", "toyota");

  StatusOr<ResultPage> page = proxy.FetchPage(toyota, 0);
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kUnavailable);
  // The backend never saw the fetch; the proxy charged the round.
  EXPECT_EQ(backend.communication_rounds(), 0u);
  EXPECT_EQ(proxy.communication_rounds(), 1u);
  EXPECT_EQ(proxy.queries_issued(), 1u);
  EXPECT_EQ(proxy.fault_counters().unavailable, 1u);

  // Schedule exhausted: the next fetch goes through untouched.
  page = proxy.FetchPage(toyota, 0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->records.size(), 5u);
}

TEST(FaultyServerTest, ScheduledTimeoutFailsWithDeadlineExceeded) {
  Table table = HubTable(3);
  WebDbServer backend(table, ServerOptions());
  FaultyServer proxy(backend, FaultProfile(), /*seed=*/1);
  proxy.set_schedule({FaultAction::kTimeout});

  StatusOr<ResultPage> page =
      proxy.FetchPage(GetValueId(table, "Brand", "toyota"), 0);
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(proxy.fault_counters().timeouts, 1u);
}

TEST(FaultyServerTest, ScheduledRateLimitCarriesRetryAfterHint) {
  Table table = HubTable(3);
  FaultProfile profile;
  profile.retry_after_rounds = 7;
  WebDbServer backend(table, ServerOptions());
  FaultyServer proxy(backend, profile, /*seed=*/1);
  proxy.set_schedule({FaultAction::kRateLimit});

  StatusOr<ResultPage> page =
      proxy.FetchPage(GetValueId(table, "Brand", "toyota"), 0);
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(page.status().retry_after_rounds().has_value());
  EXPECT_EQ(*page.status().retry_after_rounds(), 7u);
  EXPECT_EQ(proxy.fault_counters().rate_limited, 1u);
}

TEST(FaultyServerTest, ScheduledTruncateDropsTrailingRecords) {
  Table table = HubTable(10);
  ServerOptions options;
  options.page_size = 10;
  WebDbServer backend(table, options);
  FaultyServer proxy(backend, FaultProfile(), /*seed=*/1);
  proxy.set_schedule({FaultAction::kTruncate});
  ValueId toyota = GetValueId(table, "Brand", "toyota");

  StatusOr<ResultPage> truncated = proxy.FetchPage(toyota, 0);
  ASSERT_TRUE(truncated.ok());
  // Half the page (here 10/2 = 5 records) silently vanished; pagination
  // metadata is untouched, so the loss is invisible to the crawler.
  EXPECT_EQ(truncated->records.size(), 5u);
  EXPECT_FALSE(truncated->has_more);
  EXPECT_EQ(proxy.fault_counters().truncated_pages, 1u);

  // The kept prefix matches the honest page.
  StatusOr<ResultPage> honest = proxy.FetchPage(toyota, 0);
  ASSERT_TRUE(honest.ok());
  ASSERT_EQ(honest->records.size(), 10u);
  for (size_t i = 0; i < truncated->records.size(); ++i) {
    EXPECT_EQ(truncated->records[i].id, honest->records[i].id);
  }
}

TEST(FaultyServerTest, TruncateAlwaysDropsAtLeastOneRecord) {
  Table table = HubTable(1);
  WebDbServer backend(table, ServerOptions());
  FaultyServer proxy(backend, FaultProfile(), /*seed=*/1);
  proxy.set_schedule({FaultAction::kTruncate});

  StatusOr<ResultPage> page =
      proxy.FetchPage(GetValueId(table, "Brand", "toyota"), 0);
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(page->records.empty());
  EXPECT_EQ(proxy.fault_counters().truncated_pages, 1u);
}

TEST(FaultyServerTest, ScheduledDuplicateEchoesFirstRecordOverLast) {
  Table table = HubTable(4);
  WebDbServer backend(table, ServerOptions());
  FaultyServer proxy(backend, FaultProfile(), /*seed=*/1);
  proxy.set_schedule({FaultAction::kNone, FaultAction::kDuplicate});
  ValueId toyota = GetValueId(table, "Brand", "toyota");

  StatusOr<ResultPage> honest = proxy.FetchPage(toyota, 0);
  ASSERT_TRUE(honest.ok());
  StatusOr<ResultPage> echoed = proxy.FetchPage(toyota, 0);
  ASSERT_TRUE(echoed.ok());
  ASSERT_EQ(echoed->records.size(), honest->records.size());
  // Same page size, but the last slot repeats the first record — the
  // record it displaced is silently hidden.
  EXPECT_EQ(echoed->records.back().id, echoed->records.front().id);
  EXPECT_NE(echoed->records.back().id, honest->records.back().id);
  EXPECT_EQ(proxy.fault_counters().duplicated_records, 1u);
}

TEST(FaultyServerTest, SameSeedSameProfileYieldsIdenticalFaultSequence) {
  Table table = HubTable(30);
  ServerOptions options;
  options.page_size = 5;
  FaultProfile profile;
  profile.unavailable_rate = 0.2;
  profile.timeout_rate = 0.1;
  profile.rate_limit_rate = 0.1;
  profile.truncate_rate = 0.1;
  profile.duplicate_rate = 0.1;

  auto run = [&](uint64_t seed) {
    WebDbServer backend(table, options);
    FaultyServer proxy(backend, profile, seed);
    ValueId toyota = GetValueId(table, "Brand", "toyota");
    std::vector<int> observations;
    for (int i = 0; i < 50; ++i) {
      StatusOr<ResultPage> page = proxy.FetchPage(toyota, 0);
      observations.push_back(page.ok()
                                 ? static_cast<int>(page->records.size())
                                 : -static_cast<int>(page.status().code()));
    }
    return observations;
  };

  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(FaultyServerTest, InjectedFailureOnPageZeroCountsAsQuery) {
  Table table = HubTable(25);
  ServerOptions options;
  options.page_size = 10;
  WebDbServer backend(table, options);
  FaultyServer proxy(backend, FaultProfile(), /*seed=*/1);
  // Query rejected at submission, resubmitted, then a mid-drain failure.
  proxy.set_schedule({FaultAction::kUnavailable, FaultAction::kNone,
                      FaultAction::kTimeout, FaultAction::kNone,
                      FaultAction::kNone});
  ValueId toyota = GetValueId(table, "Brand", "toyota");

  EXPECT_FALSE(proxy.FetchPage(toyota, 0).ok());  // rejected submission
  EXPECT_TRUE(proxy.FetchPage(toyota, 0).ok());
  EXPECT_FALSE(proxy.FetchPage(toyota, 1).ok());  // mid-drain timeout
  EXPECT_TRUE(proxy.FetchPage(toyota, 1).ok());
  EXPECT_TRUE(proxy.FetchPage(toyota, 2).ok());

  // 5 rounds total: 3 forwarded + 2 injected failures. Only the page-0
  // rejection counts as an extra query submission on top of the one
  // page-0 fetch the backend actually saw.
  EXPECT_EQ(backend.communication_rounds(), 3u);
  EXPECT_EQ(proxy.communication_rounds(), 5u);
  EXPECT_EQ(backend.queries_issued(), 1u);
  EXPECT_EQ(proxy.queries_issued(), 2u);
}

TEST(FaultyServerTest, ResetMetersClearsProxyAndBackend) {
  Table table = HubTable(5);
  WebDbServer backend(table, ServerOptions());
  FaultyServer proxy(backend, FaultProfile(), /*seed=*/1);
  proxy.set_schedule({FaultAction::kUnavailable, FaultAction::kNone});
  ValueId toyota = GetValueId(table, "Brand", "toyota");

  EXPECT_FALSE(proxy.FetchPage(toyota, 0).ok());
  EXPECT_TRUE(proxy.FetchPage(toyota, 0).ok());
  EXPECT_EQ(proxy.communication_rounds(), 2u);

  proxy.ResetMeters();
  EXPECT_EQ(proxy.communication_rounds(), 0u);
  EXPECT_EQ(proxy.queries_issued(), 0u);
  EXPECT_EQ(backend.communication_rounds(), 0u);
}

TEST(FaultyServerTest, TransientProfileHelperSetsOnlyUnavailableRate) {
  FaultProfile profile = FaultProfile::Transient(0.1);
  EXPECT_DOUBLE_EQ(profile.unavailable_rate, 0.1);
  EXPECT_DOUBLE_EQ(profile.timeout_rate, 0.0);
  EXPECT_DOUBLE_EQ(profile.duplicate_rate, 0.0);
  EXPECT_FALSE(profile.IsAllZero());
  EXPECT_TRUE(FaultProfile().IsAllZero());
}

// --- fleet support: derived per-source seeds and forced actions -------

TEST(FaultyServerTest, DeriveSourceSeedIsDeterministicAndDistinct) {
  EXPECT_EQ(FaultyServer::DeriveSourceSeed(42, 3),
            FaultyServer::DeriveSourceSeed(42, 3));
  std::set<uint64_t> seeds;
  for (uint32_t id = 0; id < 64; ++id) {
    seeds.insert(FaultyServer::DeriveSourceSeed(42, id));
  }
  EXPECT_EQ(seeds.size(), 64u);
  // Different fleet seeds shift every source's stream.
  EXPECT_NE(FaultyServer::DeriveSourceSeed(42, 0),
            FaultyServer::DeriveSourceSeed(43, 0));
}

// Each source's fault stream is a pure function of (fleet_seed, id):
// adding or removing sibling sources must not perturb it.
TEST(FaultyServerTest, KeyedFaultStreamIsIndependentOfSiblings) {
  Table table = HubTable(30);
  FaultProfile profile = FaultProfile::Transient(0.3);

  auto run = [&](uint64_t source_seed) {
    WebDbServer backend(table, ServerOptions());
    FaultyServer proxy(backend, profile, source_seed);
    proxy.set_keyed_faults(true);
    ValueId toyota = GetValueId(table, "Brand", "toyota");
    std::vector<bool> outcomes;
    for (int i = 0; i < 60; ++i) {
      outcomes.push_back(proxy.FetchPage(toyota, 0).ok());
    }
    return outcomes;
  };

  uint64_t source2 = FaultyServer::DeriveSourceSeed(7, 2);
  EXPECT_EQ(run(source2), run(source2));
  EXPECT_NE(run(source2), run(FaultyServer::DeriveSourceSeed(7, 1)));
}

TEST(FaultyServerTest, ForcedActionOverridesEveryFetch) {
  Table table = HubTable(5);
  WebDbServer backend(table, ServerOptions());
  FaultyServer proxy(backend, FaultProfile(), /*seed=*/1);
  proxy.set_forced_action(FaultAction::kUnavailable);
  ValueId toyota = GetValueId(table, "Brand", "toyota");

  for (int i = 0; i < 5; ++i) {
    StatusOr<ResultPage> page = proxy.FetchPage(toyota, 0);
    ASSERT_FALSE(page.ok());
    EXPECT_EQ(page.status().code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(backend.communication_rounds(), 0u);

  // Forcing kNone pins the proxy fault-free even under a hostile profile.
  WebDbServer backend2(table, ServerOptions());
  FaultyServer always(backend2, FaultProfile::Transient(1.0), /*seed=*/1);
  always.set_forced_action(FaultAction::kNone);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(always.FetchPage(toyota, 0).ok());
  }
}

// Clearing the forced action resumes the keyed stream exactly where it
// left off: the override consumes no randomness and advances no keyed
// attempt counter, so the forced window is invisible to the stream.
TEST(FaultyServerTest, ClearingForcedActionLeavesKeyedStreamUnperturbed) {
  Table table = HubTable(30);
  FaultProfile profile = FaultProfile::Transient(0.4);
  ValueId toyota = GetValueId(table, "Brand", "toyota");

  WebDbServer backend_a(table, ServerOptions());
  FaultyServer forced(backend_a, profile, /*seed=*/5);
  forced.set_keyed_faults(true);
  // Witness issues only the unforced fetches.
  WebDbServer backend_b(table, ServerOptions());
  FaultyServer witness(backend_b, profile, /*seed=*/5);
  witness.set_keyed_faults(true);

  std::vector<bool> got, want;
  for (int i = 0; i < 80; ++i) {
    bool in_forced_window = i >= 20 && i < 40;
    forced.set_forced_action(
        in_forced_window ? std::optional<FaultAction>(FaultAction::kTimeout)
                         : std::nullopt);
    bool ok = forced.FetchPage(toyota, 0).ok();
    if (in_forced_window) {
      EXPECT_FALSE(ok) << "fetch " << i << " should be forced timeout";
    } else {
      got.push_back(ok);
      want.push_back(witness.FetchPage(toyota, 0).ok());
    }
  }
  EXPECT_EQ(got, want);
}

TEST(FaultyServerTest, FaultRatesApproximateProfileOverManyRounds) {
  Table table = HubTable(5);
  WebDbServer backend(table, ServerOptions());
  FaultyServer proxy(backend, FaultProfile::Transient(0.25), /*seed=*/7);
  ValueId toyota = GetValueId(table, "Brand", "toyota");

  const int kRounds = 4000;
  for (int i = 0; i < kRounds; ++i) (void)proxy.FetchPage(toyota, 0);
  double observed = static_cast<double>(proxy.fault_counters().unavailable) /
                    static_cast<double>(kRounds);
  EXPECT_NEAR(observed, 0.25, 0.03);
}

}  // namespace
}  // namespace deepcrawl
