// WebDbServer: a simulated structured Web database behind a query
// interface.
//
// This module plays the role of the paper's "controlled database
// servers" (§5): server programs that mimic Web-site behaviour on top of
// a relational backend. The crawler may interact with a database ONLY
// through this interface, which exposes exactly what a real site would:
//
//   * single-attribute equality queries (Definition 2.2), addressed by
//     interned value id, by (attribute, text), or by bare keyword;
//   * paginated results, at most `page_size` (k) records per page
//     (Definition 2.3's cost model: one page fetch = one communication
//     round);
//   * an optional result-size limit: most real sources cap how many of
//     the matched records can actually be retrieved (§5.4; Amazon used
//     3200, Yahoo Automobile ~20 pages);
//   * an optional total-match count on every page, as most sources
//     report "N results found" (exploited by the §3.4 abort heuristics).
//
// Every page fetch increments the communication-round meter, which is the
// paper's cost measure. The meter can be snapshotted and reset by the
// experiment harness.

#ifndef DEEPCRAWL_SERVER_WEB_DB_SERVER_H_
#define DEEPCRAWL_SERVER_WEB_DB_SERVER_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "src/index/inverted_index.h"
#include "src/relation/table.h"
#include "src/relation/types.h"
#include "src/util/status.h"

namespace deepcrawl {

struct ServerOptions {
  // Maximum records per result page (k in Definition 2.3).
  uint32_t page_size = 10;
  // Maximum matched records retrievable per query; 0 means unlimited.
  // (§5.4: Amazon caps at 3200; the paper also studies 10 and 50.)
  uint32_t result_limit = 0;
  // Whether pages carry the total number of matches ("95 cars found").
  bool reports_total_count = true;
  // Interface schema Aq of Definition 2.2: the attributes the query form
  // accepts, which may be a strict subset of the result schema Ar
  // ("users can query Amazon with book title only"). Empty = every
  // attribute is queriable. Queries on non-queriable attributes return
  // empty results (the form has no such field), still costing a round.
  std::vector<AttributeId> queriable_attributes;
};

// One record as returned on a result page. The id stands in for the
// extracted record content (a real crawler deduplicates on content; the
// simulation deduplicates on id, which is equivalent because records are
// distinct).
struct ReturnedRecord {
  RecordId id = kInvalidRecordId;
  std::span<const ValueId> values;
};

struct ResultPage {
  std::vector<ReturnedRecord> records;
  uint32_t page_number = 0;
  // Total matched records in the backend (possibly more than are
  // retrievable under the result limit); absent when the source does not
  // report counts.
  std::optional<uint32_t> total_matches;
  // True when a further page can be fetched for the same query.
  bool has_more = false;
};

class WebDbServer {
 public:
  // `table` must outlive the server and must not change afterwards.
  WebDbServer(const Table& table, ServerOptions options);

  WebDbServer(const WebDbServer&) = delete;
  WebDbServer& operator=(const WebDbServer&) = delete;

  // Fetches result page `page_number` (0-based) for the equality query
  // on `value`. Costs one communication round, including when the page
  // turns out empty or out of range (the HTTP round trip still happened).
  // Fails with kOutOfRange when page_number is past the last retrievable
  // page.
  StatusOr<ResultPage> FetchPage(ValueId value, uint32_t page_number);

  // Same, addressing the value as (attribute, text) the way a structured
  // query form would. Unknown values yield an empty OK page (the site
  // answers "0 results"), still costing one round.
  StatusOr<ResultPage> FetchPageByText(AttributeId attr,
                                       std::string_view text,
                                       uint32_t page_number);

  // Keyword-style query (§2.2 "fading schema"): the text is matched
  // against every attribute and the union of matches is returned. Costs
  // one round per page like the other forms.
  StatusOr<ResultPage> FetchPageByKeyword(std::string_view text,
                                          uint32_t page_number);

  // Conjunctive multi-predicate query (the paper's §2.2 future work:
  // "highly structured and restrictive" interfaces such as airfare or
  // hotel forms only accept multi-attribute queries). Returns records
  // matching EVERY given value. Duplicate values are allowed;
  // an empty value list is rejected. Costs one round per page.
  StatusOr<ResultPage> FetchPageConjunctive(std::span<const ValueId> values,
                                            uint32_t page_number);

  // Keyword query addressed by an interned value: "throws" the value's
  // text into the site's single search box and lets the site decide
  // which column it matches (§2.2's "fading schema" crawling mode).
  // Equivalent to FetchPageByKeyword(text_of(value), page) but without
  // string plumbing on the crawler side. Out-of-range ids yield an
  // empty page; one round per page either way.
  StatusOr<ResultPage> FetchPageKeywordOf(ValueId value,
                                          uint32_t page_number);

  // --- cost accounting -------------------------------------------------

  // Total communication rounds since construction or the last reset.
  uint64_t communication_rounds() const { return communication_rounds_; }
  // Number of distinct query submissions (page 0 fetches).
  uint64_t queries_issued() const { return queries_issued_; }
  void ResetMeters();

  // --- harness-only introspection (not visible to selectors) -----------

  // Ground-truth number of records; the harness uses it to compute true
  // coverage in controlled experiments.
  size_t true_record_count() const { return table_.num_records(); }

  const ServerOptions& options() const { return options_; }
  const Table& table() const { return table_; }
  const InvertedIndex& index() const { return index_; }

  // Number of result pages a full retrieval of `value` costs, i.e.
  // cost(q, DB) of Definition 2.3, under the configured page size and
  // result limit. Zero-match queries still cost one round to learn that.
  uint32_t FullRetrievalCost(ValueId value) const;

  // Whether the interface schema accepts queries on this value's
  // attribute (Definition 2.2's Aq). Crawlers use this to keep
  // unqueriable values out of Lto-query. Unknown ids are unqueriable.
  bool IsQueriableValue(ValueId value) const;

 private:
  StatusOr<ResultPage> BuildPage(std::span<const RecordId> postings,
                                 uint32_t total_matches,
                                 uint32_t page_number);

  const Table& table_;
  ServerOptions options_;
  InvertedIndex index_;
  std::vector<char> attribute_queriable_;  // indexed by AttributeId
  uint64_t communication_rounds_ = 0;
  uint64_t queries_issued_ = 0;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_SERVER_WEB_DB_SERVER_H_
