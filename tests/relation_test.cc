// Tests for the relational substrate: Schema, ValueCatalog, Table.

#include <gtest/gtest.h>

#include "src/relation/schema.h"
#include "src/relation/table.h"
#include "src/relation/value_catalog.h"
#include "tests/test_util.h"

namespace deepcrawl {
namespace {

using testing_util::MakeFigure1Table;
using testing_util::MakeTable;

TEST(SchemaTest, AddAndFindAttributes) {
  Schema schema;
  StatusOr<AttributeId> title = schema.AddAttribute("Title");
  StatusOr<AttributeId> author = schema.AddAttribute("Author", true);
  ASSERT_TRUE(title.ok());
  ASSERT_TRUE(author.ok());
  EXPECT_EQ(*title, 0);
  EXPECT_EQ(*author, 1);
  EXPECT_EQ(schema.num_attributes(), 2u);
  EXPECT_FALSE(schema.attribute(*title).multi_valued);
  EXPECT_TRUE(schema.attribute(*author).multi_valued);

  StatusOr<AttributeId> found = schema.FindAttribute("Author");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *author);
}

TEST(SchemaTest, DuplicateNameRejected) {
  Schema schema;
  ASSERT_TRUE(schema.AddAttribute("X").ok());
  StatusOr<AttributeId> dup = schema.AddAttribute("X");
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, EmptyNameRejected) {
  Schema schema;
  EXPECT_EQ(schema.AddAttribute("").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, MissingAttributeIsNotFound) {
  Schema schema;
  EXPECT_EQ(schema.FindAttribute("nope").status().code(),
            StatusCode::kNotFound);
}

TEST(ValueCatalogTest, InternIsIdempotent) {
  ValueCatalog catalog;
  ValueId a = catalog.Intern(0, "tom hanks");
  ValueId b = catalog.Intern(0, "tom hanks");
  EXPECT_EQ(a, b);
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(ValueCatalogTest, SameTextDifferentAttributeIsDistinct) {
  ValueCatalog catalog;
  ValueId actor = catalog.Intern(0, "Clint Eastwood");
  ValueId director = catalog.Intern(1, "Clint Eastwood");
  EXPECT_NE(actor, director);
  EXPECT_EQ(catalog.attribute_of(actor), 0);
  EXPECT_EQ(catalog.attribute_of(director), 1);
  EXPECT_EQ(catalog.text_of(actor), catalog.text_of(director));
}

TEST(ValueCatalogTest, FindReturnsInvalidWhenAbsent) {
  ValueCatalog catalog;
  catalog.Intern(0, "x");
  EXPECT_EQ(catalog.Find(0, "y"), kInvalidValueId);
  EXPECT_EQ(catalog.Find(1, "x"), kInvalidValueId);
  EXPECT_NE(catalog.Find(0, "x"), kInvalidValueId);
}

TEST(TableTest, RecordsAreSortedAndDeduplicated) {
  Table table = MakeTable({{{"A", "x"}, {"A", "x"}, {"B", "y"}}});
  ASSERT_EQ(table.num_records(), 1u);
  auto values = table.record(0);
  EXPECT_EQ(values.size(), 2u);  // duplicate collapsed
  EXPECT_LT(values[0], values[1]);
}

TEST(TableTest, ValueFrequencyCountsRecords) {
  Table table = MakeFigure1Table();
  EXPECT_EQ(table.value_frequency(testing_util::GetValueId(table, "A", "a2")),
            3u);
  EXPECT_EQ(table.value_frequency(testing_util::GetValueId(table, "C", "c2")),
            3u);
  EXPECT_EQ(table.value_frequency(testing_util::GetValueId(table, "B", "b4")),
            1u);
}

TEST(TableTest, DistinctValuesPerAttribute) {
  Table table = MakeFigure1Table();
  std::vector<size_t> counts = table.DistinctValuesPerAttribute();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 3u);  // a1, a2, a3
  EXPECT_EQ(counts[1], 4u);  // b1..b4
  EXPECT_EQ(counts[2], 2u);  // c1, c2
  EXPECT_EQ(table.num_distinct_values(), 9u);
}

TEST(TableTest, EmptyRecordRejected) {
  Schema schema;
  ASSERT_TRUE(schema.AddAttribute("A").ok());
  Table table(std::move(schema));
  EXPECT_EQ(table.AddRecord({}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TableTest, CellWithUnknownAttributeRejected) {
  Schema schema;
  ASSERT_TRUE(schema.AddAttribute("A").ok());
  Table table(std::move(schema));
  EXPECT_EQ(table.AddRecord({Cell{5, "x"}}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TableTest, EmptyCellTextRejected) {
  Schema schema;
  ASSERT_TRUE(schema.AddAttribute("A").ok());
  Table table(std::move(schema));
  EXPECT_EQ(table.AddRecord({Cell{0, ""}}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TableTest, AddRecordFromValueIdsValidatesInterning) {
  Schema schema;
  ASSERT_TRUE(schema.AddAttribute("A").ok());
  Table table(std::move(schema));
  ValueId v = table.mutable_catalog().Intern(0, "x");
  ASSERT_TRUE(table.AddRecordFromValueIds({v}).ok());
  EXPECT_EQ(table.AddRecordFromValueIds({v + 100}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TableTest, MultiValuedAttributeWithinOneRecord) {
  Table table = MakeTable({
      {{"Author", "smith"}, {"Author", "jones"}, {"Title", "t1"}},
  });
  EXPECT_EQ(table.record(0).size(), 3u);
  EXPECT_EQ(table.num_distinct_values(), 3u);
}

}  // namespace
}  // namespace deepcrawl
