#include "src/server/web_db_server.h"

#include <algorithm>

#include "src/util/logging.h"

namespace deepcrawl {

WebDbServer::WebDbServer(const Table& table, ServerOptions options)
    : table_(table), options_(std::move(options)), index_(table) {
  DEEPCRAWL_CHECK_GT(options_.page_size, 0u) << "page size must be positive";
  if (options_.queriable_attributes.empty()) {
    attribute_queriable_.assign(table_.schema().num_attributes(), 1);
  } else {
    attribute_queriable_.assign(table_.schema().num_attributes(), 0);
    for (AttributeId attr : options_.queriable_attributes) {
      DEEPCRAWL_CHECK_LT(attr, table_.schema().num_attributes())
          << "queriable attribute id out of range";
      attribute_queriable_[attr] = 1;
    }
  }
  BuildTokenDictionary();
}

void WebDbServer::BuildTokenDictionary() {
  const ValueCatalog& catalog = table_.catalog();
  size_t num_values = catalog.size();
  tokens_.reserve(num_values);
  token_of_value_.resize(num_values);
  token_by_text_.reserve(num_values);
  for (ValueId v = 0; v < num_values; ++v) {
    auto [it, inserted] =
        token_by_text_.emplace(catalog.text_of(v), tokens_.size());
    if (inserted) tokens_.push_back(Token{});
    Token& token = tokens_[it->second];
    ++token.attribute_span;
    token.single_value = token.attribute_span == 1 ? v : kInvalidValueId;
    token_of_value_[v] = it->second;
  }
  // Pre-merge the postings of every multi-attribute token with the same
  // attribute-ordered set_union fold the per-query path used to run, so
  // pages come out byte-identical to the old implementation. Gather the
  // member value ids per token CSR-style (one counting pass, one fill
  // pass), then sort each group by attribute: interning follows record
  // order, not attribute order, and the old path unioned attributes
  // ascending.
  std::vector<uint32_t> offsets(tokens_.size() + 1, 0);
  for (ValueId v = 0; v < num_values; ++v) ++offsets[token_of_value_[v] + 1];
  for (size_t t = 0; t < tokens_.size(); ++t) offsets[t + 1] += offsets[t];
  std::vector<ValueId> members(num_values);
  std::vector<uint32_t> cursor = offsets;
  for (ValueId v = 0; v < num_values; ++v) {
    members[cursor[token_of_value_[v]]++] = v;
  }
  std::vector<RecordId> merged;
  std::vector<RecordId> next;
  for (size_t t = 0; t < tokens_.size(); ++t) {
    Token& token = tokens_[t];
    if (token.single_value != kInvalidValueId) continue;  // single-attr
    std::span<ValueId> group(members.data() + offsets[t],
                             offsets[t + 1] - offsets[t]);
    std::sort(group.begin(), group.end(), [&catalog](ValueId a, ValueId b) {
      return catalog.attribute_of(a) < catalog.attribute_of(b);
    });
    merged.clear();
    for (ValueId u : group) {
      std::span<const RecordId> postings = index_.Postings(u);
      next.clear();
      next.reserve(merged.size() + postings.size());
      std::set_union(merged.begin(), merged.end(), postings.begin(),
                     postings.end(), std::back_inserter(next));
      std::swap(merged, next);
    }
    token.merged_offset = static_cast<uint32_t>(merged_postings_.size());
    token.merged_length = static_cast<uint32_t>(merged.size());
    merged_postings_.insert(merged_postings_.end(), merged.begin(),
                            merged.end());
  }
}

std::span<const RecordId> WebDbServer::TokenPostings(
    const Token& token) const {
  if (token.single_value != kInvalidValueId) {
    return index_.Postings(token.single_value);
  }
  return std::span<const RecordId>(merged_postings_)
      .subspan(token.merged_offset, token.merged_length);
}

std::span<const RecordId> WebDbServer::KeywordPostings(ValueId value) const {
  if (value >= token_of_value_.size()) return {};
  return TokenPostings(tokens_[token_of_value_[value]]);
}

uint32_t WebDbServer::KeywordAttributeSpan(ValueId value) const {
  if (value >= token_of_value_.size()) return 0;
  return tokens_[token_of_value_[value]].attribute_span;
}

bool WebDbServer::IsQueriableValue(ValueId value) const {
  if (value >= table_.catalog().size()) return false;
  AttributeId attr = table_.catalog().attribute_of(value);
  return attr < attribute_queriable_.size() &&
         attribute_queriable_[attr] != 0;
}

void WebDbServer::ResetMeters() {
  communication_rounds_ = 0;
  queries_issued_ = 0;
}

StatusOr<ResultPage> WebDbServer::BuildPage(std::span<const RecordId> postings,
                                            uint32_t total_matches,
                                            uint32_t page_number) {
  // The communication round was already charged by the caller.
  uint32_t retrievable = static_cast<uint32_t>(postings.size());
  if (options_.result_limit > 0) {
    retrievable = std::min(retrievable, options_.result_limit);
  }
  uint64_t begin = static_cast<uint64_t>(page_number) * options_.page_size;
  if (begin >= retrievable && !(page_number == 0 && retrievable == 0)) {
    return Status::OutOfRange("page " + std::to_string(page_number) +
                              " is past the last retrievable page");
  }
  uint64_t end = std::min<uint64_t>(begin + options_.page_size, retrievable);
  ResultPage page;
  page.page_number = page_number;
  page.has_more = end < retrievable;
  if (options_.reports_total_count) page.total_matches = total_matches;
  page.records.reserve(end - begin);
  for (uint64_t i = begin; i < end; ++i) {
    RecordId id = postings[i];
    page.records.push_back(ReturnedRecord{id, table_.record(id)});
  }
  return page;
}

StatusOr<ResultPage> WebDbServer::FetchPage(ValueId value,
                                            uint32_t page_number) {
  ++communication_rounds_;
  if (page_number == 0) ++queries_issued_;
  if (value >= table_.num_distinct_values() || !IsQueriableValue(value)) {
    // Unknown value, or an attribute the form has no field for: the
    // site answers "no results".
    return BuildPage({}, 0, page_number);
  }
  std::span<const RecordId> postings = index_.Postings(value);
  return BuildPage(postings, static_cast<uint32_t>(postings.size()),
                   page_number);
}

StatusOr<ResultPage> WebDbServer::FetchPageByText(AttributeId attr,
                                                  std::string_view text,
                                                  uint32_t page_number) {
  ValueId value = table_.catalog().Find(attr, text);
  if (value == kInvalidValueId) {
    ++communication_rounds_;
    if (page_number == 0) ++queries_issued_;
    return BuildPage({}, 0, page_number);
  }
  return FetchPage(value, page_number);
}

StatusOr<ResultPage> WebDbServer::FetchPageByKeyword(std::string_view text,
                                                     uint32_t page_number) {
  ++communication_rounds_;
  if (page_number == 0) ++queries_issued_;
  // The site's own query processor decides which column matches (§2.2):
  // a keyword query answers from the token dictionary — the
  // all-attributes union, precomputed at construction — in one hash
  // probe. Note the keyword box deliberately ignores
  // queriable_attributes: a site's search box reaches columns its form
  // has no field for.
  auto it = token_by_text_.find(text);
  if (it == token_by_text_.end()) {
    return BuildPage({}, 0, page_number);
  }
  std::span<const RecordId> postings = TokenPostings(tokens_[it->second]);
  return BuildPage(postings, static_cast<uint32_t>(postings.size()),
                   page_number);
}

StatusOr<ResultPage> WebDbServer::FetchPageConjunctive(
    std::span<const ValueId> values, uint32_t page_number) {
  if (values.empty()) {
    return Status::InvalidArgument("conjunctive query needs predicates");
  }
  ++communication_rounds_;
  if (page_number == 0) ++queries_issued_;
  // Intersect postings smallest-first; bail out as soon as the running
  // intersection empties. Same swap-buffered member scratch as the
  // keyword-union path.
  std::vector<ValueId>& ordered = scratch_ordered_;
  ordered.assign(values.begin(), values.end());
  std::sort(ordered.begin(), ordered.end(), [this](ValueId a, ValueId b) {
    return index_.MatchCount(a) < index_.MatchCount(b);
  });
  std::vector<RecordId>& matched = scratch_merged_;
  std::vector<RecordId>& next = scratch_next_;
  matched.clear();
  bool first = true;
  for (ValueId v : ordered) {
    if (v >= table_.num_distinct_values()) {
      return BuildPage({}, 0, page_number);
    }
    std::span<const RecordId> postings = index_.Postings(v);
    if (first) {
      matched.assign(postings.begin(), postings.end());
      first = false;
    } else {
      next.clear();
      next.reserve(std::min(matched.size(), postings.size()));
      std::set_intersection(matched.begin(), matched.end(),
                            postings.begin(), postings.end(),
                            std::back_inserter(next));
      std::swap(matched, next);
    }
    if (matched.empty()) break;
  }
  return BuildPage(matched, static_cast<uint32_t>(matched.size()),
                   page_number);
}

StatusOr<ResultPage> WebDbServer::FetchPageKeywordOf(ValueId value,
                                                     uint32_t page_number) {
  ++communication_rounds_;
  if (page_number == 0) ++queries_issued_;
  if (value >= token_of_value_.size()) {
    return BuildPage({}, 0, page_number);
  }
  // Addressed by value id, the token is an array read away — no text
  // resolution or hash probe on the crawl hot path.
  std::span<const RecordId> postings =
      TokenPostings(tokens_[token_of_value_[value]]);
  return BuildPage(postings, static_cast<uint32_t>(postings.size()),
                   page_number);
}

uint32_t WebDbServer::FullRetrievalCost(ValueId value) const {
  uint32_t matches = value < table_.num_distinct_values()
                         ? index_.MatchCount(value)
                         : 0;
  if (options_.result_limit > 0) {
    matches = std::min(matches, options_.result_limit);
  }
  if (matches == 0) return 1;  // one round to learn there is nothing
  return (matches + options_.page_size - 1) / options_.page_size;
}

}  // namespace deepcrawl
