# Empty compiler generated dependencies file for deepcrawl_domain.
# This may be replaced when dependencies are built.
