#include "src/graph/set_cover.h"

#include <algorithm>
#include <queue>

#include "src/util/logging.h"

namespace deepcrawl {

namespace {

uint32_t UncoveredCount(const InvertedIndex& index,
                        const std::vector<char>& covered, ValueId v) {
  uint32_t gain = 0;
  for (RecordId r : index.Postings(v)) {
    if (!covered[r]) ++gain;
  }
  return gain;
}

}  // namespace

SetCoverResult GreedyWeightedSetCover(const Table& table,
                                      const InvertedIndex& index,
                                      const VertexWeightFn& weight) {
  size_t num_records = table.num_records();
  size_t num_values = table.num_distinct_values();
  SetCoverResult result;
  if (num_records == 0) return result;

  std::vector<char> covered(num_records, 0);
  std::vector<char> selected(num_values, 0);
  size_t num_covered = 0;

  struct HeapEntry {
    double score;   // gain / weight at push time (may be stale)
    uint32_t gain;
    ValueId value;
    bool operator<(const HeapEntry& other) const {
      // Max-heap by score; equal scores resolve to the smaller value id.
      if (score != other.score) return score < other.score;
      return value > other.value;
    }
  };
  std::priority_queue<HeapEntry> heap;
  std::vector<double> weights(num_values);
  for (ValueId v = 0; v < num_values; ++v) {
    weights[v] = weight(v);
    DEEPCRAWL_CHECK_GT(weights[v], 0.0) << "value weight must be positive";
    uint32_t gain = index.MatchCount(v);
    if (gain == 0) continue;
    heap.push(HeapEntry{static_cast<double>(gain) / weights[v], gain, v});
  }

  // Coverage gains only shrink; the standard lazy-greedy argument makes
  // a fresh pop globally maximal.
  while (num_covered < num_records && !heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    if (selected[top.value]) continue;
    uint32_t gain = UncoveredCount(index, covered, top.value);
    if (gain == 0) continue;
    if (gain < top.gain) {
      heap.push(HeapEntry{static_cast<double>(gain) / weights[top.value],
                          gain, top.value});
      continue;
    }
    selected[top.value] = 1;
    result.values.push_back(top.value);
    result.total_weight += weights[top.value];
    for (RecordId r : index.Postings(top.value)) {
      if (!covered[r]) {
        covered[r] = 1;
        ++num_covered;
      }
    }
  }
  result.uncovered_records = num_records - num_covered;
  std::sort(result.values.begin(), result.values.end());
  return result;
}

bool IsRecordCover(const Table& table, const InvertedIndex& index,
                   const std::vector<ValueId>& values) {
  std::vector<char> covered(table.num_records(), 0);
  for (ValueId v : values) {
    for (RecordId r : index.Postings(v)) covered[r] = 1;
  }
  for (char c : covered) {
    if (!c) return false;
  }
  return true;
}

}  // namespace deepcrawl
