// Differential test suite for the parallel batched crawl engine:
// serial-vs-parallel equivalence for every selection policy and fault
// profile, and thread-count invariance at every batch size.
//
// The determinism contract under test (DESIGN.md §8):
//   * ParallelCrawler with batch == 1 is BIT-IDENTICAL to the serial
//     Crawler — same trace points, resilience counters, stop reason,
//     meters, and harvest order — at any thread count;
//   * at any batch size, the output is a pure function of the seed and
//     the batch: thread count never changes anything but wall-clock.
// Fault runs use the FaultyServer's keyed mode so the fault stream is a
// function of logical fetch identity rather than arrival order.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/crawler/abort_policy.h"
#include "src/crawler/checkpoint.h"
#include "src/crawler/crawl_engine.h"
#include "src/crawler/crawler.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/local_store.h"
#include "src/crawler/mmmi_selector.h"
#include "src/crawler/naive_selectors.h"
#include "src/crawler/optimal_selector.h"
#include "src/crawler/parallel_crawler.h"
#include "src/crawler/retry_policy.h"
#include "src/crawler/trace_io.h"
#include "src/datagen/adversarial_workload.h"
#include "src/datagen/movie_domain.h"
#include "src/server/faulty_server.h"
#include "src/server/locked_interface.h"
#include "src/server/web_db_server.h"
#include "tests/test_util.h"

namespace deepcrawl {
namespace {

constexpr uint64_t kFaultSeed = 29;
constexpr uint64_t kSelectorSeed = 5;

const char* const kPolicies[] = {"bfs", "dfs", "random", "greedy", "mmmi"};
const char* const kProfiles[] = {"none", "flaky", "lossy", "hostile"};

FaultProfile ProfileByName(const std::string& name) {
  FaultProfile profile;
  if (name == "flaky") {
    profile.unavailable_rate = 0.05;
    profile.timeout_rate = 0.03;
    profile.rate_limit_rate = 0.02;
  } else if (name == "lossy") {
    profile.truncate_rate = 0.05;
    profile.duplicate_rate = 0.05;
  } else if (name == "hostile") {
    profile.unavailable_rate = 0.10;
    profile.timeout_rate = 0.05;
    profile.rate_limit_rate = 0.05;
    profile.truncate_rate = 0.05;
    profile.duplicate_rate = 0.02;
  }
  return profile;
}

ValueId FirstQueriableSeed(const Table& table) {
  for (ValueId v = 0; v < table.num_distinct_values(); ++v) {
    if (table.value_frequency(v) > 0) return v;
  }
  ADD_FAILURE() << "table has no queriable value";
  return kInvalidValueId;
}

const Table& DifferentialTarget() {
  static const Table* table = [] {
    MovieDomainPairConfig config;
    config.universe_size = 1500;
    config.target_size = 400;
    config.seed = 7;
    StatusOr<MovieDomainPair> pair = GenerateMovieDomainPair(config);
    DEEPCRAWL_CHECK(pair.ok()) << pair.status().ToString();
    return new Table(std::move(pair->target));
  }();
  return *table;
}

// One crawl environment: target table, server knobs, and the canonical
// seed value. The movie env is the original differential workload; the
// adversarial env points the same sweeps at a greedy-trap instance so
// the optimal selectors run their native hierarchy descent.
struct Env {
  const Table* target = nullptr;
  ServerOptions server_options;
  ValueId seed_value = kInvalidValueId;
};

Env MovieEnv() {
  Env env;
  env.target = &DifferentialTarget();
  env.seed_value = FirstQueriableSeed(*env.target);
  return env;
}

const AdversarialInstance& DifferentialTrap() {
  static const AdversarialInstance* instance = [] {
    AdversarialConfig config;
    config.family = AdversarialFamily::kGreedyTrap;
    config.leaf_buckets = 12;  // rounds to B = 16 with the decoys
    config.bucket_records = 4;
    config.decoy_buckets = 4;
    config.decoy_width = 8;
    config.seed = 3;
    StatusOr<AdversarialInstance> generated =
        GenerateAdversarialInstance(config);
    DEEPCRAWL_CHECK(generated.ok()) << generated.status().ToString();
    return new AdversarialInstance(std::move(generated).value());
  }();
  return *instance;
}

Env AdversarialEnv() {
  const AdversarialInstance& instance = DifferentialTrap();
  Env env;
  env.target = &instance.table;
  env.server_options.page_size = instance.result_limit;
  env.server_options.result_limit = instance.result_limit;
  env.seed_value = instance.root_value;
  return env;
}

std::unique_ptr<QuerySelector> MakeSelector(const std::string& policy,
                                            const LocalStore& store,
                                            const Env& env) {
  if (policy == "bfs") return std::make_unique<BfsSelector>();
  if (policy == "dfs") return std::make_unique<DfsSelector>();
  if (policy == "random") {
    return std::make_unique<RandomSelector>(kSelectorSeed);
  }
  if (policy == "greedy") return std::make_unique<GreedyLinkSelector>(store);
  if (policy == "mmmi") return std::make_unique<MmmiSelector>(store);
  if (policy == "opt-rank" || policy == "opt-threshold") {
    StatusOr<AttributeId> rank_attr =
        env.target->schema().FindAttribute("range");
    DEEPCRAWL_CHECK(rank_attr.ok()) << "env target has no rank attribute";
    StatusOr<QueryHierarchy> hierarchy = QueryHierarchy::FromCatalog(
        env.target->catalog(), rank_attr.value());
    DEEPCRAWL_CHECK(hierarchy.ok()) << hierarchy.status().ToString();
    OptimalSelectorOptions options;
    options.mode = policy == "opt-rank" ? OptimalMode::kRank
                                        : OptimalMode::kThreshold;
    options.result_limit = env.server_options.result_limit;
    return std::make_unique<RankOptimalSelector>(
        store, std::move(hierarchy).value(), options);
  }
  ADD_FAILURE() << "unknown policy " << policy;
  return nullptr;
}

CrawlOptions BaseOptions(const Table& target) {
  CrawlOptions options;
  // Exercise the MMMI switch-over; harmless for the other selectors.
  options.saturation_records =
      static_cast<uint64_t>(0.6 * static_cast<double>(target.num_records()));
  return options;
}

// Everything two equivalent crawls must agree on.
struct RunOutput {
  CrawlResult result;
  std::vector<RecordId> harvest_order;  // store slots in commit order
  uint64_t clock_ticks = 0;
};

RunOutput Capture(const CrawlResult& result, const LocalStore& store,
                  uint64_t clock_ticks) {
  RunOutput out;
  out.result = result;
  out.harvest_order.reserve(store.num_records());
  for (uint32_t slot = 0; slot < store.num_records(); ++slot) {
    out.harvest_order.push_back(store.OriginalRecordId(slot));
  }
  out.clock_ticks = clock_ticks;
  return out;
}

RunOutput RunSerial(const Env& env, const std::string& policy,
                    const std::string& profile_name, CrawlOptions options) {
  WebDbServer backend(*env.target, env.server_options);
  FaultProfile profile = ProfileByName(profile_name);
  std::optional<FaultyServer> faulty;
  QueryInterface* server = &backend;
  if (!profile.IsAllZero()) {
    faulty.emplace(backend, profile, kFaultSeed);
    faulty->set_keyed_faults(true);
    server = &*faulty;
  }
  LocalStore store;
  std::unique_ptr<QuerySelector> selector = MakeSelector(policy, store, env);
  RetryPolicy retry((RetryPolicyConfig()));
  Crawler crawler(*server, *selector, store, options,
                  /*abort_policy=*/nullptr, &retry);
  crawler.AddSeed(env.seed_value);
  StatusOr<CrawlResult> result = crawler.Run();
  DEEPCRAWL_CHECK(result.ok()) << result.status().ToString();
  return Capture(*result, store, crawler.clock().now());
}

RunOutput RunParallel(const Env& env, const std::string& policy,
                      const std::string& profile_name, CrawlOptions options,
                      uint32_t threads, uint32_t batch) {
  WebDbServer backend(*env.target, env.server_options);
  FaultProfile profile = ProfileByName(profile_name);
  std::optional<FaultyServer> faulty;
  QueryInterface* direct = &backend;
  if (!profile.IsAllZero()) {
    faulty.emplace(backend, profile, kFaultSeed);
    faulty->set_keyed_faults(true);
    direct = &*faulty;
  }
  LockedQueryInterface server(*direct);
  LocalStore store;
  std::unique_ptr<QuerySelector> selector = MakeSelector(policy, store, env);
  RetryPolicy retry((RetryPolicyConfig()));
  ParallelOptions parallel{threads, batch};
  ParallelCrawler crawler(server, *selector, store, options, parallel,
                          /*abort_policy=*/nullptr, &retry);
  crawler.AddSeed(env.seed_value);
  StatusOr<CrawlResult> result = crawler.Run();
  DEEPCRAWL_CHECK(result.ok()) << result.status().ToString();
  return Capture(*result, store, crawler.clock().now());
}

void ExpectIdentical(const RunOutput& a, const RunOutput& b,
                     const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.result.stop_reason, b.result.stop_reason);
  EXPECT_EQ(a.result.rounds, b.result.rounds);
  EXPECT_EQ(a.result.queries, b.result.queries);
  EXPECT_EQ(a.result.records, b.result.records);
  EXPECT_EQ(a.result.trace.points(), b.result.trace.points());
  EXPECT_EQ(a.result.resilience, b.result.resilience);
  EXPECT_EQ(a.harvest_order, b.harvest_order);
  EXPECT_EQ(a.clock_ticks, b.clock_ticks);
}

// batch == 1: the parallel engine must reproduce the serial crawler
// bit-for-bit, for every selector, fault profile, and thread count.
TEST(ParallelCrawlerDifferentialTest, SerialEquivalenceAllPolicies) {
  const Env env = MovieEnv();
  for (const char* policy : kPolicies) {
    for (const char* profile : kProfiles) {
      CrawlOptions options = BaseOptions(DifferentialTarget());
      RunOutput serial = RunSerial(env, policy, profile, options);
      for (uint32_t threads : {1u, 4u, 8u}) {
        RunOutput parallel =
            RunParallel(env, policy, profile, options, threads, /*batch=*/1);
        ExpectIdentical(serial, parallel,
                        std::string(policy) + "/" + profile + "/threads=" +
                            std::to_string(threads));
      }
    }
  }
}

// batch == 4: thread count is an execution detail — outputs at 1, 4,
// and 8 threads must be identical to each other.
TEST(ParallelCrawlerDifferentialTest, ThreadCountInvarianceBatch4) {
  const Env env = MovieEnv();
  for (const char* policy : kPolicies) {
    for (const char* profile : kProfiles) {
      CrawlOptions options = BaseOptions(DifferentialTarget());
      RunOutput reference = RunParallel(env, policy, profile, options,
                                        /*threads=*/1, /*batch=*/4);
      for (uint32_t threads : {4u, 8u}) {
        RunOutput other =
            RunParallel(env, policy, profile, options, threads, /*batch=*/4);
        ExpectIdentical(reference, other,
                        std::string(policy) + "/" + profile + "/threads=" +
                            std::to_string(threads));
      }
    }
  }
}

// batch > 1 changes the crawl ORDER even for BFS (a wave interleaves
// its slots' discoveries page by page, where serial appends one full
// drain at a time), but never the outcome of an exhaustive crawl: the
// final coverage, round count, and query count all match serial.
TEST(ParallelCrawlerDifferentialTest, BfsBatchedReachesSerialCoverage) {
  const Env env = MovieEnv();
  CrawlOptions options = BaseOptions(DifferentialTarget());
  RunOutput serial = RunSerial(env, "bfs", "none", options);
  RunOutput batched = RunParallel(env, "bfs", "none", options, /*threads=*/4,
                                  /*batch=*/4);
  EXPECT_EQ(batched.result.stop_reason, StopReason::kFrontierExhausted);
  EXPECT_EQ(batched.result.records, serial.result.records);
  // BFS drains every discovered value completely, so an exhaustive
  // crawl issues the same queries and fetches the same pages in both
  // engines — only their order differs.
  EXPECT_EQ(batched.result.rounds, serial.result.rounds);
  EXPECT_EQ(batched.result.queries, serial.result.queries);
  std::set<RecordId> serial_ids(serial.harvest_order.begin(),
                                serial.harvest_order.end());
  std::set<RecordId> batched_ids(batched.harvest_order.begin(),
                                 batched.harvest_order.end());
  EXPECT_EQ(batched_ids, serial_ids);
}

// Keyword-interface crawls flow through FetchPageKeywordOf; the
// equivalence must hold there too.
TEST(ParallelCrawlerDifferentialTest, KeywordModeEquivalence) {
  const Env env = MovieEnv();
  CrawlOptions options = BaseOptions(DifferentialTarget());
  options.use_keyword_interface = true;
  RunOutput serial = RunSerial(env, "greedy", "flaky", options);
  RunOutput parallel =
      RunParallel(env, "greedy", "flaky", options, /*threads=*/4, /*batch=*/1);
  ExpectIdentical(serial, parallel, "keyword/greedy/flaky");
}

// Round-budget semantics: a target and a budget must stop both engines
// at the same point with the same stop reason.
TEST(ParallelCrawlerDifferentialTest, BudgetAndTargetStops) {
  const Env env = MovieEnv();
  for (uint64_t max_rounds : {25u, 120u}) {
    CrawlOptions options = BaseOptions(DifferentialTarget());
    options.max_rounds = max_rounds;
    options.target_records = 150;
    RunOutput serial = RunSerial(env, "greedy", "hostile", options);
    RunOutput parallel = RunParallel(env, "greedy", "hostile", options,
                                     /*threads=*/4, /*batch=*/1);
    ExpectIdentical(serial, parallel,
                    "budget=" + std::to_string(max_rounds));
  }
}

// Sliced execution: running the parallel engine in many small budget
// increments must land exactly where one unbounded Run() lands —
// parked slots resume with no page re-fetched and no record
// double-counted, at any batch size.
TEST(ParallelCrawlerDifferentialTest, SlicedRunsResumeExactly) {
  const Env env = MovieEnv();
  const Table& target = DifferentialTarget();
  CrawlOptions options = BaseOptions(target);

  RunOutput one_shot =
      RunParallel(env, "greedy", "flaky", options, /*threads=*/4, /*batch=*/3);

  WebDbServer backend(target, ServerOptions());
  FaultProfile profile = ProfileByName("flaky");
  FaultyServer faulty(backend, profile, kFaultSeed);
  faulty.set_keyed_faults(true);
  LockedQueryInterface server(faulty);
  LocalStore store;
  std::unique_ptr<QuerySelector> selector = MakeSelector("greedy", store, env);
  RetryPolicy retry((RetryPolicyConfig()));
  ParallelCrawler crawler(server, *selector, store, options,
                          ParallelOptions{4, 3}, nullptr, &retry);
  crawler.AddSeed(FirstQueriableSeed(target));
  StatusOr<CrawlResult> sliced = Status::Internal("never ran");
  for (uint64_t budget = 17;; budget += 17) {
    crawler.set_max_rounds(budget);
    sliced = crawler.Run();
    ASSERT_TRUE(sliced.ok()) << sliced.status().ToString();
    if (sliced->stop_reason != StopReason::kRoundBudget) break;
  }
  RunOutput sliced_out = Capture(*sliced, store, crawler.clock().now());
  // The one-shot run never sees a budget, so compare everything except
  // the stop bookkeeping path: trace, meters, harvest, resilience.
  EXPECT_EQ(one_shot.result.rounds, sliced_out.result.rounds);
  EXPECT_EQ(one_shot.result.queries, sliced_out.result.queries);
  EXPECT_EQ(one_shot.result.records, sliced_out.result.records);
  EXPECT_EQ(one_shot.result.trace.points(), sliced_out.result.trace.points());
  EXPECT_EQ(one_shot.result.resilience, sliced_out.result.resilience);
  EXPECT_EQ(one_shot.harvest_order, sliced_out.harvest_order);
  EXPECT_EQ(one_shot.clock_ticks, sliced_out.clock_ticks);
}

// --- checkpoint/resume bit-identity sweep ----------------------------
//
// The checkpoint contract (DESIGN.md §10): interrupting a crawl at ANY
// wave boundary, restoring the checkpoint into a freshly built stack,
// and running to completion must emit byte-identical output — trace CSV
// bytes, meters, resilience counters, harvest order, simulated clock —
// versus the uninterrupted run. Corrupt-input rejection lives in
// tests/crawler_checkpoint_test.cc; this sweep owns bit-identity.

std::string TraceCsvBytes(const CrawlTrace& trace) {
  std::ostringstream out;
  Status status = WriteTraceCsv(trace, out);
  DEEPCRAWL_CHECK(status.ok()) << status.ToString();
  return out.str();
}

// Runs a one-shot crawl that also encodes a checkpoint image at every
// `every`-th wave boundary.
struct InstrumentedRun {
  RunOutput output;
  std::vector<std::string> images;
};

InstrumentedRun RunWithCheckpoints(const Env& env, const std::string& policy,
                                   const std::string& profile_name,
                                   CrawlOptions options, uint32_t threads,
                                   uint32_t batch, uint64_t every) {
  WebDbServer backend(*env.target, env.server_options);
  FaultProfile profile = ProfileByName(profile_name);
  std::optional<FaultyServer> faulty;
  QueryInterface* direct = &backend;
  if (!profile.IsAllZero()) {
    faulty.emplace(backend, profile, kFaultSeed);
    faulty->set_keyed_faults(true);
    direct = &*faulty;
  }
  std::optional<LockedQueryInterface> locked;
  QueryInterface* server = direct;
  if (threads > 1) {
    locked.emplace(*direct);
    server = &*locked;
  }
  LocalStore store;
  std::unique_ptr<QuerySelector> selector = MakeSelector(policy, store, env);
  RetryPolicy retry((RetryPolicyConfig()));
  InstrumentedRun run;
  const FaultyServer* faulty_ptr = faulty ? &*faulty : nullptr;
  EngineOptions engine_options;
  engine_options.threads = threads;
  engine_options.batch = batch;
  engine_options.checkpoint_every_waves = every;
  engine_options.checkpoint_sink = [&run,
                                    faulty_ptr](const CrawlEngine& engine) {
    StatusOr<std::string> image = EncodeCrawlCheckpoint(engine, faulty_ptr);
    if (!image.ok()) return image.status();
    run.images.push_back(std::move(*image));
    return Status::OK();
  };
  CrawlEngine engine(*server, *selector, store, options, engine_options,
                     /*abort_policy=*/nullptr, &retry);
  engine.AddSeed(env.seed_value);
  StatusOr<CrawlResult> result = engine.Run();
  DEEPCRAWL_CHECK(result.ok()) << result.status().ToString();
  run.output = Capture(*result, store, engine.clock().now());
  return run;
}

// Restores `image` into a freshly built stack and runs to completion.
RunOutput ResumeFromImage(const Env& env, const std::string& image,
                          const std::string& policy,
                          const std::string& profile_name,
                          CrawlOptions options, uint32_t threads,
                          uint32_t batch) {
  WebDbServer backend(*env.target, env.server_options);
  FaultProfile profile = ProfileByName(profile_name);
  std::optional<FaultyServer> faulty;
  QueryInterface* direct = &backend;
  if (!profile.IsAllZero()) {
    faulty.emplace(backend, profile, kFaultSeed);
    faulty->set_keyed_faults(true);
    direct = &*faulty;
  }
  std::optional<LockedQueryInterface> locked;
  QueryInterface* server = direct;
  if (threads > 1) {
    locked.emplace(*direct);
    server = &*locked;
  }
  LocalStore store;
  std::unique_ptr<QuerySelector> selector = MakeSelector(policy, store, env);
  RetryPolicy retry((RetryPolicyConfig()));
  EngineOptions engine_options;
  engine_options.threads = threads;
  engine_options.batch = batch;
  CrawlEngine engine(*server, *selector, store, options, engine_options,
                     /*abort_policy=*/nullptr, &retry);
  Status loaded =
      DecodeCrawlCheckpoint(image, engine, faulty ? &*faulty : nullptr);
  DEEPCRAWL_CHECK(loaded.ok()) << loaded.ToString();
  StatusOr<CrawlResult> result = engine.Run();
  DEEPCRAWL_CHECK(result.ok()) << result.status().ToString();
  return Capture(*result, store, engine.clock().now());
}

void ExpectIdenticalWithCsv(const RunOutput& a, const RunOutput& b,
                            const std::string& label) {
  ExpectIdentical(a, b, label);
  SCOPED_TRACE(label);
  EXPECT_EQ(TraceCsvBytes(a.result.trace), TraceCsvBytes(b.result.trace));
}

// Interrupt-at-EVERY-wave sweep for one serial and one batched
// configuration: each checkpoint a run ever writes must resume into the
// exact one-shot output.
TEST(ParallelCrawlerDifferentialTest, CheckpointEveryWaveResumesIdentically) {
  struct Config {
    uint32_t threads;
    uint32_t batch;
  };
  const Env env = MovieEnv();
  for (const Config& config : {Config{1, 1}, Config{8, 8}}) {
    CrawlOptions options = BaseOptions(DifferentialTarget());
    InstrumentedRun reference =
        RunWithCheckpoints(env, "greedy", "flaky", options, config.threads,
                           config.batch, /*every=*/1);
    // The checkpoint sink is pure instrumentation: the instrumented run
    // matches a plain one-shot run.
    RunOutput plain = config.batch == 1
                          ? RunSerial(env, "greedy", "flaky", options)
                          : RunParallel(env, "greedy", "flaky", options,
                                        config.threads, config.batch);
    ExpectIdenticalWithCsv(plain, reference.output, "instrumented-vs-plain");
    ASSERT_FALSE(reference.images.empty());
    for (size_t i = 0; i < reference.images.size(); ++i) {
      RunOutput resumed =
          ResumeFromImage(env, reference.images[i], "greedy", "flaky",
                          options, config.threads, config.batch);
      ExpectIdenticalWithCsv(
          reference.output, resumed,
          "threads=" + std::to_string(config.threads) + "/batch=" +
              std::to_string(config.batch) + "/wave=" + std::to_string(i));
    }
  }
}

// Full matrix: every selection policy x fault profile x {serial,
// 8-thread/batch-8}, resuming from an early, a middle, and a late
// checkpoint of each run.
TEST(ParallelCrawlerDifferentialTest, CheckpointMatrixResumesIdentically) {
  struct Config {
    uint32_t threads;
    uint32_t batch;
  };
  const Env env = MovieEnv();
  for (const char* policy : kPolicies) {
    for (const char* profile : kProfiles) {
      for (const Config& config : {Config{1, 1}, Config{8, 8}}) {
        CrawlOptions options = BaseOptions(DifferentialTarget());
        SCOPED_TRACE(std::string(policy) + "/" + profile + "/threads=" +
                     std::to_string(config.threads) + "/batch=" +
                     std::to_string(config.batch));
        // every=1 (not a sampled stride): some fault profiles collapse a
        // crawl after a single wave (a truncated seed page kills the BFS
        // frontier), and the run must still produce a checkpoint.
        InstrumentedRun reference = RunWithCheckpoints(
            env, policy, profile, options, config.threads, config.batch,
            /*every=*/1);
        ASSERT_FALSE(reference.images.empty());
        size_t last = reference.images.size() - 1;
        std::set<size_t> picks = {0, last / 2, last};
        for (size_t i : picks) {
          RunOutput resumed =
              ResumeFromImage(env, reference.images[i], policy, profile,
                              options, config.threads, config.batch);
          ExpectIdenticalWithCsv(
              reference.output, resumed,
              std::string(policy) + "/" + profile + "/threads=" +
                  std::to_string(config.threads) + "/batch=" +
                  std::to_string(config.batch) + "/image=" +
                  std::to_string(i));
        }
      }
    }
  }
}

// A checkpoint taken mid-crawl may also be resumed under a DIFFERENT
// thread count (threads are wall-clock only and deliberately not part
// of the checkpoint fingerprint); the output must not change.
TEST(ParallelCrawlerDifferentialTest, CheckpointResumesAcrossThreadCounts) {
  const Env env = MovieEnv();
  CrawlOptions options = BaseOptions(DifferentialTarget());
  InstrumentedRun reference = RunWithCheckpoints(
      env, "mmmi", "hostile", options, /*threads=*/8, /*batch=*/4,
      /*every=*/5);
  ASSERT_FALSE(reference.images.empty());
  const std::string& image =
      reference.images[reference.images.size() / 2];
  for (uint32_t threads : {1u, 2u, 8u}) {
    RunOutput resumed = ResumeFromImage(env, image, "mmmi", "hostile",
                                        options, threads, /*batch=*/4);
    ExpectIdenticalWithCsv(reference.output, resumed,
                           "resume-threads=" + std::to_string(threads));
  }
}

// Abort policies are consulted at the same points in both engines.
TEST(ParallelCrawlerDifferentialTest, AbortPolicyEquivalence) {
  const Table& target = DifferentialTarget();
  CrawlOptions options = BaseOptions(target);

  auto run = [&](bool parallel) {
    WebDbServer backend(target, ServerOptions());
    LockedQueryInterface locked(backend);
    LocalStore store;
    std::unique_ptr<QuerySelector> selector =
        MakeSelector("greedy", store, MovieEnv());
    CountBasedAbort abort_policy(/*min_harvest_rate=*/2.0);
    StatusOr<CrawlResult> result = Status::Internal("never ran");
    uint64_t ticks = 0;
    if (parallel) {
      ParallelCrawler crawler(locked, *selector, store, options,
                              ParallelOptions{4, 1}, &abort_policy, nullptr);
      crawler.AddSeed(FirstQueriableSeed(target));
      result = crawler.Run();
      ticks = crawler.clock().now();
    } else {
      Crawler crawler(backend, *selector, store, options, &abort_policy,
                      nullptr);
      crawler.AddSeed(FirstQueriableSeed(target));
      result = crawler.Run();
      ticks = crawler.clock().now();
    }
    DEEPCRAWL_CHECK(result.ok()) << result.status().ToString();
    return Capture(*result, store, ticks);
  };

  ExpectIdentical(run(false), run(true), "count-abort");
}

// --- optimal-selector determinism on the adversarial env -------------
//
// The Sheng et al. selectors keep extra mutable state (descent queue,
// per-node status/count arrays); the same contracts that hold for the
// classic selectors must hold for them: batch == 1 parallel is
// bit-identical to serial, thread count never matters, and every
// checkpoint resumes into the exact one-shot output via the SELC
// section round-trip.

TEST(ParallelCrawlerDifferentialTest, OptimalSerialEquivalenceAllProfiles) {
  const Env env = AdversarialEnv();
  for (const char* policy : {"opt-rank", "opt-threshold"}) {
    for (const char* profile : kProfiles) {
      CrawlOptions options;
      RunOutput serial = RunSerial(env, policy, profile, options);
      for (uint32_t threads : {1u, 4u, 8u}) {
        RunOutput parallel =
            RunParallel(env, policy, profile, options, threads, /*batch=*/1);
        ExpectIdentical(serial, parallel,
                        std::string(policy) + "/" + profile + "/threads=" +
                            std::to_string(threads));
      }
    }
  }
}

TEST(ParallelCrawlerDifferentialTest, OptimalThreadInvarianceBatch4) {
  const Env env = AdversarialEnv();
  for (const char* policy : {"opt-rank", "opt-threshold"}) {
    for (const char* profile : kProfiles) {
      CrawlOptions options;
      RunOutput reference = RunParallel(env, policy, profile, options,
                                        /*threads=*/1, /*batch=*/4);
      for (uint32_t threads : {4u, 8u}) {
        RunOutput other =
            RunParallel(env, policy, profile, options, threads, /*batch=*/4);
        ExpectIdentical(reference, other,
                        std::string(policy) + "/" + profile + "/threads=" +
                            std::to_string(threads));
      }
    }
  }
}

TEST(ParallelCrawlerDifferentialTest,
     OptimalCheckpointEveryWaveResumesIdentically) {
  struct Config {
    uint32_t threads;
    uint32_t batch;
  };
  const Env env = AdversarialEnv();
  for (const char* policy : {"opt-rank", "opt-threshold"}) {
    for (const Config& config : {Config{1, 1}, Config{8, 4}}) {
      CrawlOptions options;
      SCOPED_TRACE(std::string(policy) + "/threads=" +
                   std::to_string(config.threads) + "/batch=" +
                   std::to_string(config.batch));
      InstrumentedRun reference =
          RunWithCheckpoints(env, policy, "flaky", options, config.threads,
                             config.batch, /*every=*/1);
      ASSERT_FALSE(reference.images.empty());
      size_t last = reference.images.size() - 1;
      std::set<size_t> picks = {0, last / 2, last};
      for (size_t i : picks) {
        RunOutput resumed =
            ResumeFromImage(env, reference.images[i], policy, "flaky",
                            options, config.threads, config.batch);
        ExpectIdenticalWithCsv(reference.output, resumed,
                               "image=" + std::to_string(i));
      }
    }
  }
}

}  // namespace
}  // namespace deepcrawl
