#include "src/net/event_loop.h"

#include <errno.h>
#include <limits.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <time.h>
#include <unistd.h>

#include <string>
#include <utility>
#include <vector>

namespace deepcrawl {
namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + strerror(errno));
}

// Packs (fd, generation) into epoll_event.data.u64 so a harvested event
// can be matched against the CURRENT registration of that fd.
uint64_t PackTag(int fd, uint64_t generation) {
  return (generation << 32) | static_cast<uint32_t>(fd);
}

}  // namespace

EventLoop::EventLoop() = default;

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

Status EventLoop::Init() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) return Errno("eventfd");
  struct epoll_event ev;
  ev.events = EPOLLIN;
  ev.data.u64 = PackTag(wake_fd_, 0);
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    return Errno("epoll_ctl(wakeup)");
  }
  return Status::OK();
}

Status EventLoop::Add(int fd, uint32_t events, FdCallback callback) {
  if (epoll_fd_ < 0) return Status::FailedPrecondition("EventLoop not Init()ed");
  uint64_t generation = next_generation_++;
  struct epoll_event ev;
  ev.events = events;
  ev.data.u64 = PackTag(fd, generation);
  int op = handlers_.count(fd) ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
  if (epoll_ctl(epoll_fd_, op, fd, &ev) < 0) return Errno("epoll_ctl(add)");
  handlers_[fd] = Handler{generation, std::move(callback)};
  return Status::OK();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) {
    return Status::NotFound("Modify on unregistered fd");
  }
  struct epoll_event ev;
  ev.events = events;
  ev.data.u64 = PackTag(fd, it->second.generation);
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    return Errno("epoll_ctl(mod)");
  }
  return Status::OK();
}

void EventLoop::Remove(int fd) {
  if (handlers_.erase(fd) > 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
}

void EventLoop::ScheduleAt(uint64_t deadline_us, std::function<void()> fn) {
  timers_.emplace(deadline_us, std::move(fn));
}

uint64_t EventLoop::NowMicros() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000 +
         static_cast<uint64_t>(ts.tv_nsec) / 1000;
}

void EventLoop::DrainWakeup() {
  uint64_t value;
  while (read(wake_fd_, &value, sizeof(value)) > 0) {
  }
}

void EventLoop::RunDueTimers() {
  // Fire every timer due as of entry. Callbacks may schedule new
  // timers; those wait for the next batch even if already due, so a
  // zero-delay self-rescheduling timer cannot starve the poll.
  uint64_t now = NowMicros();
  while (!timers_.empty() && timers_.begin()->first <= now) {
    auto fn = std::move(timers_.begin()->second);
    timers_.erase(timers_.begin());
    fn();
  }
}

int EventLoop::EffectiveTimeoutMs(int timeout_ms) const {
  if (timers_.empty()) return timeout_ms;
  uint64_t now = NowMicros();
  uint64_t next = timers_.begin()->first;
  uint64_t wait_ms = next <= now ? 0 : (next - now + 999) / 1000;
  if (wait_ms > INT_MAX) wait_ms = INT_MAX;
  int timer_ms = static_cast<int>(wait_ms);
  if (timeout_ms < 0) return timer_ms;
  return timer_ms < timeout_ms ? timer_ms : timeout_ms;
}

Status EventLoop::RunOnce(int timeout_ms) {
  if (epoll_fd_ < 0) return Status::FailedPrecondition("EventLoop not Init()ed");
  std::vector<struct epoll_event> events(256);
  int n = epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()),
                     EffectiveTimeoutMs(timeout_ms));
  if (n < 0) {
    if (errno == EINTR) return Status::OK();
    return Errno("epoll_wait");
  }
  for (int i = 0; i < n; ++i) {
    uint64_t tag = events[i].data.u64;
    int fd = static_cast<int>(tag & 0xffffffffu);
    uint64_t generation = tag >> 32;
    if (fd == wake_fd_) {
      DrainWakeup();
      continue;
    }
    auto it = handlers_.find(fd);
    // Skip events for fds removed (or re-added: generation differs) by
    // an earlier callback in this same batch.
    if (it == handlers_.end() || it->second.generation != generation) {
      continue;
    }
    it->second.callback(events[i].events);
  }
  RunDueTimers();
  return Status::OK();
}

void EventLoop::Run() {
  while (!stop_.load(std::memory_order_acquire)) {
    Status status = RunOnce(-1);
    DEEPCRAWL_CHECK(status.ok()) << "event loop: " << status.ToString();
  }
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  uint64_t one = 1;
  // write(2) is async-signal-safe; failure (full counter) still leaves
  // a readable eventfd, so the loop wakes either way.
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
}

}  // namespace deepcrawl
