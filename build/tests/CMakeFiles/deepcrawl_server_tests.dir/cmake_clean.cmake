file(REMOVE_RECURSE
  "CMakeFiles/deepcrawl_server_tests.dir/server_conjunctive_test.cc.o"
  "CMakeFiles/deepcrawl_server_tests.dir/server_conjunctive_test.cc.o.d"
  "CMakeFiles/deepcrawl_server_tests.dir/server_interface_schema_test.cc.o"
  "CMakeFiles/deepcrawl_server_tests.dir/server_interface_schema_test.cc.o.d"
  "CMakeFiles/deepcrawl_server_tests.dir/server_paging_property_test.cc.o"
  "CMakeFiles/deepcrawl_server_tests.dir/server_paging_property_test.cc.o.d"
  "CMakeFiles/deepcrawl_server_tests.dir/server_web_db_server_test.cc.o"
  "CMakeFiles/deepcrawl_server_tests.dir/server_web_db_server_test.cc.o.d"
  "deepcrawl_server_tests"
  "deepcrawl_server_tests.pdb"
  "deepcrawl_server_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepcrawl_server_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
