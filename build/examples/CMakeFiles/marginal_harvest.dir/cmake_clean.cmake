file(REMOVE_RECURSE
  "CMakeFiles/marginal_harvest.dir/marginal_harvest.cpp.o"
  "CMakeFiles/marginal_harvest.dir/marginal_harvest.cpp.o.d"
  "marginal_harvest"
  "marginal_harvest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marginal_harvest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
