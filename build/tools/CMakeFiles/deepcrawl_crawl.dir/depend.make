# Empty dependencies file for deepcrawl_crawl.
# This may be replaced when dependencies are built.
