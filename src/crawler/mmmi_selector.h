// Min-Max Mutual Information query selection (MMMI, §3.3).
//
// The greedy link-based strategy favours popular values, but popularity
// ignores the *dependency* between a candidate and the queries already
// issued: co-author-style correlations mean a popular value may return
// mostly duplicate records once its frequent companions were queried.
// The paper observes this "low marginal benefit" phenomenon past ~85%
// coverage and proposes MMMI: rate each candidate q by
//
//   s(q) = max_{q_j in Lqueried} ln P(q, q_j | DBlocal)
//                                  / (P(q | DBlocal) P(q_j | DBlocal))
//
// (its maximum pointwise mutual information with any issued query, which
// "avoids bad decisions" like query optimizers do) and prefer candidates
// with the SMALLEST s — the ones least correlated with what was already
// asked. HR(q) is taken proportional to 1/s(q).
//
// Per §3.3 the crawler starts as plain greedy-link (dependency estimates
// from a small DBlocal would be noise) and switches to MMMI ordering when
// the harness signals saturation; dependency scores are recomputed in
// batch mode to bound the computational cost.
//
// Hot path: co-occurrence counts co(q, q_j) are maintained
// *incrementally* — each harvested record bumps co(v, u) for its
// (pending v, issued u) occurrence pairs, and when a query u completes,
// one backfill scan over postings(u) credits the records harvested
// before u was issued. Every (record, v, u) contribution lands exactly
// once: a record is harvested either after u completed (live path; u is
// in the issued bitmap at harvest time) or before (backfill path), and
// the bitmap guard makes the backfill fire once per value.
// RecomputeBatch then ranks candidates from the cached counters instead
// of rescanning postings × record values per batch — the pre-PR scan
// stays available behind MmmiOptions::reference_scoring (CLI
// --mmmi-reference) as the differential-test yardstick. Both paths
// aggregate a candidate's (partner, count) pairs sorted ascending by
// partner id through one shared routine, so floating-point sums are
// bit-identical regardless of which path produced the counts. See
// DESIGN.md §9.

#ifndef DEEPCRAWL_CRAWLER_MMMI_SELECTOR_H_
#define DEEPCRAWL_CRAWLER_MMMI_SELECTOR_H_

#include <cstdint>
#include <deque>
#include <string_view>
#include <utility>
#include <vector>

#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/local_store.h"
#include "src/crawler/query_selector.h"
#include "src/util/chunked_arena.h"

namespace deepcrawl {

// How the dependency score is folded into the marginal-phase ranking.
enum class MmmiRanking {
  // Literal §3.3 text: sort Lto-query ascending by s(q) alone
  // (HR(q) taken proportional to 1/s(q)).
  kPureDependency,
  // §3.3 also states MMMI "is used together with the greedy link-based
  // approach": rank by degree(q) * exp(-s(q)) descending, i.e. the
  // greedy popularity estimate discounted by the dependency penalty
  // (exp(-s) = min_j P(q)P(q_j)/P(q,q_j), an independence discount).
  // This is the default: on Zipf-distributed databases the pure ordering
  // ignores query productivity and loses to plain greedy (the ablation
  // bench quantifies this).
  kDegreeDiscount,
  // Residual-frequency ranking: num(q, DBlocal) minus the co-occurrence
  // count with the single most-covering issued query — the local records
  // NOT explained by the strongest dependency. A containment variant of
  // the same min-max idea: a value whose every local record also carries
  // some issued value is predicted fully drained.
  kResidualFrequency,
  // §3.3 explicitly leaves open "whether max() is the best function to
  // capture the correlation ... (e.g. the linear weighted function can
  // be a good alternative)": score by the co-occurrence-weighted MEAN of
  // the pairwise PMIs instead of their max, then apply the same degree
  // discount. Less conservative than max (one bad pairing no longer
  // vetoes a candidate); compared in bench_mmmi_ablation.
  kWeightedDependency,
};

struct MmmiOptions {
  // Queries served from one dependency ranking before re-sorting (§3.3's
  // batch-mode recomputation).
  uint32_t batch_size = 10;
  MmmiRanking ranking = MmmiRanking::kDegreeDiscount;
  // Score batches with the pre-optimization full postings rescan instead
  // of the incremental counters. Selection output is identical either
  // way (the differential suite proves it); this exists as the yardstick
  // and for A/B benchmarking.
  bool reference_scoring = false;
};

class MmmiSelector : public GreedyLinkSelector {
 public:
  MmmiSelector(const LocalStore& store, MmmiOptions options = MmmiOptions{});

  void OnRecordHarvested(uint32_t slot) override;
  void OnQueryCompleted(const QueryOutcome& outcome) override;
  void OnSaturation() override { saturated_ = true; }
  ValueId SelectNext() override;
  std::string_view name() const override {
    return "greedy-link+mmmi";
  }

  bool saturated() const { return saturated_; }

  // Checkpointing: base (greedy) state plus the saturation flag, issued
  // bitmap, batch queue, and the incremental co-occurrence rows (each
  // row restored in its sorted-ascending order). The MmmiOptions
  // fingerprint is verified on load.
  Status SaveState(CheckpointWriter& writer) const override;
  Status LoadState(CheckpointReader& reader, ValueId value_bound) override;

  // Dependency score s(q) of a candidate against the issued queries,
  // computed on the current DBlocal by the reference scan (so it works
  // without the selector having observed the crawl events). Exposed for
  // tests. Returns -infinity when q co-occurs with no issued query.
  double DependencyScore(ValueId q) const;

  // Total incremental counter bumps (diagnostics / tests).
  uint64_t co_bumps() const { return co_bumps_; }

 private:
  struct Dependency {
    double max_pmi;        // s(q); -inf when no co-occurrence
    uint32_t max_co;       // largest co-occurrence count with one query
    double weighted_pmi;   // co-weighted mean PMI; -inf when none
  };
  // Folds (partner, co) pairs — MUST be sorted ascending by partner id —
  // into a Dependency. Shared by both scoring paths so their FP results
  // are bit-identical.
  Dependency AggregateSorted(
      ValueId q, std::span<const std::pair<ValueId, uint32_t>> cos) const;
  // Reference path: one postings(q) × record-values scan.
  Dependency ComputeDependency(ValueId q) const;
  // Incremental path: aggregate q's cached (partner, count) row.
  Dependency CachedDependency(ValueId q) const {
    return AggregateSorted(q, partners_.Row(q));
  }

  bool IsIssued(ValueId u) const {
    return u < queried_bitmap_.size() && queried_bitmap_[u] != 0;
  }
  void Bump(ValueId v, ValueId u);
  void RecomputeBatch();

  MmmiOptions options_;
  bool saturated_ = false;
  std::vector<char> queried_bitmap_;
  std::deque<ValueId> batch_queue_;

  // Incremental co-occurrence state: row v holds (issued partner u,
  // co(v, u)) pairs kept sorted ascending by u — Bump does a binary
  // search + in-place increment (or a sorted insert for a new partner),
  // and CachedDependency aggregates the row directly with no copy, hash
  // probe, or per-call sort.
  ChunkedArena<std::pair<ValueId, uint32_t>> partners_;
  uint64_t co_bumps_ = 0;

  // Scratch reused across events/batches (cleared, never shrunk).
  std::vector<ValueId> issued_in_record_;
  struct Scored {
    double dependency;
    uint64_t degree;
    double combined;  // degree * exp(-dependency), for kDegreeDiscount
    ValueId value;
  };
  std::vector<Scored> scored_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_CRAWLER_MMMI_SELECTOR_H_
