#include "src/crawler/optimal_selector.h"

#include <algorithm>
#include <string>

#include "src/util/checkpoint_io.h"
#include "src/util/logging.h"

namespace deepcrawl {
namespace {

// FNV-1a 64-bit fold of one u64 (byte-wise, little-endian).
uint64_t FnvMix(uint64_t hash, uint64_t word) {
  constexpr uint64_t kPrime = 1099511628211ULL;
  for (int i = 0; i < 8; ++i) {
    hash ^= (word >> (8 * i)) & 0xff;
    hash *= kPrime;
  }
  return hash;
}

}  // namespace

bool QueryHierarchy::ParseInterval(std::string_view text, uint32_t& lo,
                                   uint32_t& hi) {
  if (text.size() < 4 || text[0] != 'r') return false;
  size_t dash = text.find('-', 1);
  if (dash == std::string_view::npos || dash == 1 ||
      dash + 1 >= text.size()) {
    return false;
  }
  auto parse = [](std::string_view digits, uint32_t& out) {
    if (digits.empty() || digits.size() > 9) return false;
    uint64_t value = 0;
    for (char c : digits) {
      if (c < '0' || c > '9') return false;
      value = value * 10 + static_cast<uint64_t>(c - '0');
    }
    out = static_cast<uint32_t>(value);
    return true;
  };
  return parse(text.substr(1, dash - 1), lo) &&
         parse(text.substr(dash + 1), hi) && lo <= hi;
}

StatusOr<QueryHierarchy> QueryHierarchy::FromCatalog(
    const ValueCatalog& catalog, AttributeId rank_attribute) {
  QueryHierarchy hierarchy;
  if (rank_attribute == kInvalidAttributeId) return hierarchy;
  for (ValueId v = 0; v < catalog.size(); ++v) {
    if (catalog.attribute_of(v) != rank_attribute) continue;
    uint32_t lo = 0;
    uint32_t hi = 0;
    if (!ParseInterval(catalog.text_of(v), lo, hi)) continue;
    Node node;
    node.value = v;
    node.lo = lo;
    node.hi = hi;
    hierarchy.nodes_.push_back(std::move(node));
  }
  if (hierarchy.nodes_.empty()) return hierarchy;

  // Sort by (lo asc, width desc): an enclosing interval precedes every
  // interval it contains, so a stack of open ancestors finds each node's
  // tightest enclosing parent in one pass.
  std::sort(hierarchy.nodes_.begin(), hierarchy.nodes_.end(),
            [](const Node& a, const Node& b) {
              if (a.lo != b.lo) return a.lo < b.lo;
              if (a.hi != b.hi) return a.hi > b.hi;
              return a.value < b.value;
            });
  std::vector<uint32_t> open;  // indices of ancestors enclosing the cursor
  for (uint32_t i = 0; i < hierarchy.nodes_.size(); ++i) {
    Node& node = hierarchy.nodes_[i];
    while (!open.empty() && hierarchy.nodes_[open.back()].hi < node.lo) {
      open.pop_back();
    }
    if (!open.empty()) {
      const Node& top = hierarchy.nodes_[open.back()];
      if (top.lo == node.lo && top.hi == node.hi) {
        return Status::InvalidArgument(
            "rank hierarchy has two values for interval [" +
            std::to_string(node.lo) + ", " + std::to_string(node.hi) + "]");
      }
      if (node.hi > top.hi) {
        return Status::InvalidArgument(
            "rank hierarchy intervals overlap without nesting: [" +
            std::to_string(node.lo) + ", " + std::to_string(node.hi) +
            "] vs [" + std::to_string(top.lo) + ", " +
            std::to_string(top.hi) + "]");
      }
      node.parent = open.back();
      hierarchy.nodes_[open.back()].children.push_back(i);
    } else {
      node.parent = kNoNode;
      hierarchy.roots_.push_back(i);
    }
    open.push_back(i);
  }

  ValueId max_value = 0;
  for (const Node& node : hierarchy.nodes_) {
    max_value = std::max(max_value, node.value);
  }
  hierarchy.node_of_.assign(static_cast<size_t>(max_value) + 1, kNoNode);
  for (uint32_t i = 0; i < hierarchy.nodes_.size(); ++i) {
    hierarchy.node_of_[hierarchy.nodes_[i].value] = i;
  }
  return hierarchy;
}

uint64_t QueryHierarchy::Fingerprint() const {
  uint64_t hash = 14695981039346656037ULL;
  hash = FnvMix(hash, nodes_.size());
  for (const Node& node : nodes_) {
    hash = FnvMix(hash, node.value);
    hash = FnvMix(hash, (static_cast<uint64_t>(node.lo) << 32) | node.hi);
    hash = FnvMix(hash, node.parent);
  }
  return hash;
}

RankOptimalSelector::RankOptimalSelector(const LocalStore& store,
                                         QueryHierarchy hierarchy,
                                         OptimalSelectorOptions options)
    : GreedyLinkSelector(store),
      hierarchy_(std::move(hierarchy)),
      options_(options),
      status_(hierarchy_.num_nodes(), NodeStatus::kUnvisited),
      has_count_(hierarchy_.num_nodes(), 0),
      count_(hierarchy_.num_nodes(), 0) {}

void RankOptimalSelector::OnValueDiscovered(ValueId v) {
  uint32_t node = hierarchy_.NodeOf(v);
  if (node == QueryHierarchy::kNoNode) {
    // Ordinary value: greedy frontier, drained after the descent.
    GreedyLinkSelector::OnValueDiscovered(v);
    return;
  }
  // Hierarchy values never enter the greedy frontier — the descent owns
  // them. A forest root seen for the first time starts its descent;
  // deeper nodes sighted on result pages stay kUnvisited until their
  // parent overflows (querying them earlier could not be charged against
  // the competitive bound).
  if (hierarchy_.node(node).parent == QueryHierarchy::kNoNode &&
      status_[node] == NodeStatus::kUnvisited) {
    status_[node] = NodeStatus::kQueued;
    descent_.push_back(node);
  }
}

bool RankOptimalSelector::Overflowed(const QueryOutcome& outcome) const {
  // Pages lost to faults or the abort policy: the retrieved prefix is
  // untrustworthy, so descend and re-cover from the children.
  if (outcome.degraded || outcome.aborted) return true;
  if (options_.result_limit == 0) return false;  // unlimited retrieval
  if (options_.mode == OptimalMode::kRank &&
      outcome.total_matches.has_value()) {
    return *outcome.total_matches > options_.result_limit;
  }
  // Count-free threshold test (also the kRank fallback when the server
  // does not report counts): a full window may hide more records.
  return outcome.records_returned >= options_.result_limit;
}

void RankOptimalSelector::OnQueryCompleted(const QueryOutcome& outcome) {
  uint32_t node = hierarchy_.NodeOf(outcome.value);
  if (node == QueryHierarchy::kNoNode) return;
  if (status_[node] != NodeStatus::kIssued) return;  // exactly-once guard
  status_[node] = NodeStatus::kResolved;
  ++resolved_;
  if (outcome.total_matches.has_value()) {
    has_count_[node] = 1;
    count_[node] = *outcome.total_matches;
  }
  if (!Overflowed(outcome)) return;
  ++overflowed_;
  const QueryHierarchy::Node& n = hierarchy_.node(node);
  // Right-before-left: retrieval is lowest-rank-first, so the records
  // this node DID return cover a prefix of its range — the right
  // children hold the unseen mass, and querying them first lets count
  // arithmetic prove left siblings redundant by the time they pop.
  for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
    if (status_[*it] != NodeStatus::kUnvisited) continue;
    status_[*it] = NodeStatus::kQueued;
    descent_.push_back(*it);
  }
}

bool RankOptimalSelector::TrySkip(uint32_t node_idx) {
  if (options_.mode != OptimalMode::kRank) return false;
  const QueryHierarchy::Node& node = hierarchy_.node(node_idx);
  if (node.parent == QueryHierarchy::kNoNode) return false;
  if (!has_count_[node.parent]) return false;
  uint64_t sibling_sum = 0;
  for (uint32_t sibling : hierarchy_.node(node.parent).children) {
    if (sibling == node_idx) continue;
    if (!has_count_[sibling]) return false;
    sibling_sum += count_[sibling];
  }
  uint64_t parent_count = count_[node.parent];
  if (sibling_sum > parent_count) return false;  // inconsistent counts
  uint64_t implied = parent_count - sibling_sum;
  if (implied != 0 && store().LocalFrequency(node.value) != implied) {
    return false;
  }
  has_count_[node_idx] = 1;
  count_[node_idx] = static_cast<uint32_t>(implied);
  return true;
}

ValueId RankOptimalSelector::SelectNext() {
  while (!descent_.empty()) {
    uint32_t node = descent_.front();
    descent_.pop_front();
    DEEPCRAWL_DCHECK(status_[node] == NodeStatus::kQueued)
        << "descent queue holds a non-queued node";
    if (TrySkip(node)) {
      status_[node] = NodeStatus::kSkipped;
      ++skipped_;
      continue;
    }
    status_[node] = NodeStatus::kIssued;
    ++descended_;
    return hierarchy_.node(node).value;
  }
  ValueId v = GreedyLinkSelector::SelectNext();
  if (v != kInvalidValueId) ++fallback_selects_;
  return v;
}

Status RankOptimalSelector::SaveState(CheckpointWriter& writer) const {
  DEEPCRAWL_RETURN_IF_ERROR(GreedyLinkSelector::SaveState(writer));
  // Options + hierarchy fingerprint: a resume must not silently continue
  // under a different mode, limit, or rank forest.
  writer.WriteU8(static_cast<uint8_t>(options_.mode));
  writer.WriteU32(options_.result_limit);
  writer.WriteU64(hierarchy_.Fingerprint());
  writer.WriteU64(status_.size());
  for (NodeStatus s : status_) writer.WriteU8(static_cast<uint8_t>(s));
  for (size_t i = 0; i < status_.size(); ++i) {
    writer.WriteU8(has_count_[i]);
    writer.WriteU32(count_[i]);
  }
  writer.WriteU64(descent_.size());
  for (uint32_t node : descent_) writer.WriteU32(node);
  writer.WriteU64(descended_);
  writer.WriteU64(skipped_);
  writer.WriteU64(resolved_);
  writer.WriteU64(overflowed_);
  writer.WriteU64(fallback_selects_);
  return Status::OK();
}

Status RankOptimalSelector::LoadState(CheckpointReader& reader,
                                      ValueId value_bound) {
  DEEPCRAWL_RETURN_IF_ERROR(
      GreedyLinkSelector::LoadState(reader, value_bound));
  uint8_t mode = reader.ReadU8();
  uint32_t result_limit = reader.ReadU32();
  uint64_t fingerprint = reader.ReadU64();
  DEEPCRAWL_RETURN_IF_ERROR(reader.status());
  if (mode != static_cast<uint8_t>(options_.mode) ||
      result_limit != options_.result_limit ||
      fingerprint != hierarchy_.Fingerprint()) {
    return Status::InvalidArgument(
        "checkpoint optimal-selector mismatch: mode, result limit, or "
        "rank hierarchy differs from the checkpointing run");
  }
  uint64_t num_nodes = reader.ReadCount(1);
  if (reader.ok() && num_nodes != hierarchy_.num_nodes()) {
    reader.MarkCorrupt("optimal-selector node count mismatch");
  }
  status_.assign(hierarchy_.num_nodes(), NodeStatus::kUnvisited);
  for (uint64_t i = 0; i < num_nodes && reader.ok(); ++i) {
    uint8_t s = reader.ReadU8();
    if (s > static_cast<uint8_t>(NodeStatus::kSkipped)) {
      reader.MarkCorrupt("optimal-selector node status invalid");
      break;
    }
    status_[i] = static_cast<NodeStatus>(s);
  }
  has_count_.assign(hierarchy_.num_nodes(), 0);
  count_.assign(hierarchy_.num_nodes(), 0);
  for (uint64_t i = 0; i < num_nodes && reader.ok(); ++i) {
    uint8_t has = reader.ReadU8();
    uint32_t count = reader.ReadU32();
    if (has > 1) {
      reader.MarkCorrupt("optimal-selector count flag invalid");
      break;
    }
    has_count_[i] = has;
    count_[i] = count;
  }
  descent_.clear();
  uint64_t queued = reader.ReadCount(4);
  std::vector<char> in_queue(hierarchy_.num_nodes(), 0);
  for (uint64_t i = 0; i < queued && reader.ok(); ++i) {
    uint32_t node = reader.ReadU32();
    if (node >= hierarchy_.num_nodes() ||
        status_[node] != NodeStatus::kQueued || in_queue[node]) {
      reader.MarkCorrupt("optimal-selector descent queue invalid");
      break;
    }
    in_queue[node] = 1;
    descent_.push_back(node);
  }
  descended_ = reader.ReadU64();
  skipped_ = reader.ReadU64();
  resolved_ = reader.ReadU64();
  overflowed_ = reader.ReadU64();
  fallback_selects_ = reader.ReadU64();
  return reader.status();
}

}  // namespace deepcrawl
