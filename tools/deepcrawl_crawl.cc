// deepcrawl_crawl — a command-line hidden-Web crawl driver.
//
// The paper's conclusion names "the implementation and deployment of a
// real world product database crawler" as future work; this tool is that
// front end for the simulated substrate: load (or generate) a target
// database, put it behind the query-interface simulator, crawl it with
// any of the library's selection policies, and export the harvest and
// the coverage trace.
//
// Examples:
//   # Crawl a TSV dump with greedy-link selection, write the harvest.
//   deepcrawl_crawl --input=cars.tsv --policy=greedy ...
//       --output-tsv=harvest.tsv --trace-csv=trace.csv
//
//   # Generate the paper's eBay workload and crawl to 90% coverage.
//   deepcrawl_crawl --workload=ebay --scale=0.1 --policy=mmmi ...
//       --target-coverage=0.9
//
//   # Domain-knowledge crawl: the DT comes from a second TSV.
//   deepcrawl_crawl --input=amazon.tsv --policy=domain ...
//       --domain-input=imdb.tsv
//
//   # Crawl a source that fails 10% of the time, with retries.
//   deepcrawl_crawl --workload=ebay --scale=0.1 --policy=greedy ...
//       --fault-profile=flaky --fault-seed=7
//
//   # Checkpoint every 64 waves; later resume from the last checkpoint
//   # (same flags!) and continue bit-identically.
//   deepcrawl_crawl --workload=ebay --policy=greedy ...
//       --checkpoint=crawl.ckpt --checkpoint-every=64
//   deepcrawl_crawl --workload=ebay --policy=greedy ...
//       --resume-from=crawl.ckpt --checkpoint=crawl.ckpt --checkpoint-every=64

#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "src/crawler/checkpoint.h"
#include "src/crawler/crawl_engine.h"
#include "src/crawler/retry_policy.h"
#include "src/crawler/trace_io.h"
#include "src/datagen/adversarial_workload.h"
#include "src/datagen/canned_workloads.h"
#include "src/datagen/workload_config.h"
#include "src/domain/domain_table.h"
#include "src/estimate/chao.h"
#include "src/relation/tsv.h"
#include "src/server/faulty_server.h"
#include "src/server/locked_interface.h"
#include "src/server/web_db_server.h"
#include "src/util/flags.h"
#include "src/util/random.h"
#include "src/util/table_printer.h"
#include "tools/selector_factory.h"

namespace deepcrawl {
namespace {

struct Options {
  std::string input;
  std::string workload;
  double scale = 0.1;
  int64_t gen_seed = 1;

  // --workload=adversarial knobs (src/datagen/adversarial_workload.h).
  std::string adv_family = "trap";
  int64_t adv_buckets = 16;
  int64_t adv_records = 8;
  int64_t adv_decoy_buckets = 4;
  int64_t adv_decoy_width = 16;
  int64_t adv_occupied = 2;

  std::string policy = "greedy";
  bool mmmi_reference = false;
  std::string rank_attribute = "range";
  std::string domain_input;
  int64_t page_size = 10;
  int64_t result_limit = 0;
  bool counts = true;
  bool keyword = false;
  int64_t max_rounds = 0;
  double target_coverage = 0.0;
  double saturation = 0.85;
  int64_t num_seeds = 1;
  int64_t seed = 1;
  std::string trace_csv;
  std::string output_tsv;

  // Fault injection (see src/server/faulty_server.h). The preset picks a
  // base FaultProfile; the individual rates override it when >= 0.
  std::string fault_profile = "none";
  double fault_unavailable = -1.0;
  double fault_timeout = -1.0;
  double fault_rate_limit = -1.0;
  double fault_truncate = -1.0;
  double fault_duplicate = -1.0;
  int64_t fault_retry_after = 4;
  int64_t fault_seed = 1;
  int64_t retry_attempts = 4;
  int64_t retry_requeues = 2;

  // Parallel batched engine (src/crawler/parallel_crawler.h). Engaged
  // whenever threads > 1 or batch > 1; threads=1 batch=1 keeps the
  // serial crawler, byte-for-byte compatible with earlier releases.
  int64_t threads = 1;
  int64_t batch = 1;
  int64_t latency_us = 0;
  bool fault_keyed = false;

  // Checkpoint/resume (src/crawler/checkpoint.h).
  std::string checkpoint;
  int64_t checkpoint_every = 0;
  std::string resume_from;

  bool help = false;
};

StatusOr<FaultProfile> BuildFaultProfile(const Options& options) {
  FaultProfile profile;
  if (options.fault_profile == "flaky") {
    // ~10% of rounds lost to transient failures, mixed kinds.
    profile.unavailable_rate = 0.05;
    profile.timeout_rate = 0.03;
    profile.rate_limit_rate = 0.02;
  } else if (options.fault_profile == "lossy") {
    // Pages silently lose or repeat records; no hard failures.
    profile.truncate_rate = 0.05;
    profile.duplicate_rate = 0.05;
  } else if (options.fault_profile == "hostile") {
    // Both at once, at rates that make retries and re-queues routine.
    profile.unavailable_rate = 0.10;
    profile.timeout_rate = 0.05;
    profile.rate_limit_rate = 0.05;
    profile.truncate_rate = 0.05;
    profile.duplicate_rate = 0.02;
  } else if (options.fault_profile != "none") {
    return Status::InvalidArgument("unknown --fault-profile '" +
                                   options.fault_profile +
                                   "' (none|flaky|lossy|hostile)");
  }
  if (options.fault_unavailable >= 0.0) {
    profile.unavailable_rate = options.fault_unavailable;
  }
  if (options.fault_timeout >= 0.0) profile.timeout_rate = options.fault_timeout;
  if (options.fault_rate_limit >= 0.0) {
    profile.rate_limit_rate = options.fault_rate_limit;
  }
  if (options.fault_truncate >= 0.0) {
    profile.truncate_rate = options.fault_truncate;
  }
  if (options.fault_duplicate >= 0.0) {
    profile.duplicate_rate = options.fault_duplicate;
  }
  profile.retry_after_rounds =
      static_cast<uint32_t>(options.fault_retry_after);
  double sum = profile.unavailable_rate + profile.timeout_rate +
               profile.rate_limit_rate + profile.truncate_rate +
               profile.duplicate_rate;
  if (sum > 1.0) {
    return Status::InvalidArgument(
        "--fault-* rates must sum to at most 1 (got " + std::to_string(sum) +
        ")");
  }
  return profile;
}

// Ground truth carried out of an adversarial generation: the crawl seeds
// from the hierarchy root and reports its query cost against OPT.
struct AdversarialGroundTruth {
  uint64_t opt_queries = 0;
  uint32_t result_limit = 0;
  ValueId root_value = kInvalidValueId;
};

StatusOr<Table> LoadTarget(const Options& options,
                           std::optional<AdversarialGroundTruth>& adv) {
  if (!options.input.empty()) return ReadTableTsvFile(options.input);
  if (options.workload == "adversarial") {
    AdversarialConfig config;
    if (options.adv_family == "trap") {
      config.family = AdversarialFamily::kGreedyTrap;
    } else if (options.adv_family == "skew") {
      config.family = AdversarialFamily::kSkewedChain;
    } else {
      return Status::InvalidArgument("unknown --adv-family '" +
                                     options.adv_family + "' (trap|skew)");
    }
    config.leaf_buckets = static_cast<uint32_t>(options.adv_buckets);
    config.bucket_records = static_cast<uint32_t>(options.adv_records);
    config.decoy_buckets =
        static_cast<uint32_t>(options.adv_decoy_buckets);
    config.decoy_width = static_cast<uint32_t>(options.adv_decoy_width);
    config.occupied_leaves = static_cast<uint32_t>(options.adv_occupied);
    config.seed = static_cast<uint64_t>(options.gen_seed);
    DEEPCRAWL_ASSIGN_OR_RETURN(AdversarialInstance instance,
                               GenerateAdversarialInstance(config));
    adv.emplace();
    adv->opt_queries = instance.opt_queries;
    adv->result_limit = instance.result_limit;
    adv->root_value = instance.root_value;
    return std::move(instance.table);
  }
  if (options.workload == "ebay") {
    return GenerateTable(EbayConfig(options.scale, options.gen_seed));
  }
  if (options.workload == "acm") {
    return GenerateTable(AcmDlConfig(options.scale, options.gen_seed));
  }
  if (options.workload == "dblp") {
    return GenerateTable(DblpConfig(options.scale, options.gen_seed));
  }
  if (options.workload == "imdb") {
    return GenerateTable(ImdbConfig(options.scale, options.gen_seed));
  }
  return Status::InvalidArgument(
      "give --input=<tsv> or --workload=ebay|acm|dblp|imdb|adversarial");
}

// Writes the harvested records back out as a TSV, reconstructing cells
// through the target's catalog.
Status WriteHarvest(const Table& target, const LocalStore& store,
                    const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::NotFound("cannot create '" + path + "'");
  for (uint32_t slot = 0; slot < store.num_records(); ++slot) {
    bool first = true;
    for (ValueId v : store.RecordValues(slot)) {
      if (!first) file << '\t';
      first = false;
      AttributeId attr = target.catalog().attribute_of(v);
      file << target.schema().attribute(attr).name << '='
           << target.catalog().text_of(v);
    }
    file << '\n';
  }
  if (!file) return Status::Internal("write failed");
  return Status::OK();
}

Status Run(const Options& options) {
  std::optional<AdversarialGroundTruth> adv;
  DEEPCRAWL_ASSIGN_OR_RETURN(Table target, LoadTarget(options, adv));
  std::cout << "target: " << target.num_records() << " records, "
            << target.num_distinct_values() << " distinct values, "
            << target.schema().num_attributes() << " attributes\n";
  if (adv.has_value()) {
    std::cout << "adversarial: family=" << options.adv_family
              << " opt=" << adv->opt_queries << " queries (result limit "
              << adv->result_limit << ")\n";
  }

  // Optional domain table (required by --policy=domain).
  std::optional<DomainTable> dt;
  std::optional<Table> domain_sample;
  if (!options.domain_input.empty()) {
    DEEPCRAWL_ASSIGN_OR_RETURN(Table sample,
                               ReadTableTsvFile(options.domain_input));
    domain_sample = std::move(sample);
    dt = DomainTable::Build(*domain_sample, target.schema(),
                            target.mutable_catalog());
    std::cout << "domain table: " << dt->num_entries()
              << " candidate queries from " << dt->num_domain_records()
              << " sample records\n";
  }

  ServerOptions server_options;
  server_options.page_size = static_cast<uint32_t>(options.page_size);
  server_options.result_limit =
      static_cast<uint32_t>(options.result_limit);
  if (adv.has_value() && options.result_limit == 0) {
    // The OPT bookkeeping assumes the generated per-bucket limit.
    server_options.result_limit = adv->result_limit;
  }
  server_options.reports_total_count = options.counts;
  WebDbServer backend(target, server_options);

  // With faults configured, the crawler talks to the fault proxy and
  // survives the failures through its retry policy.
  DEEPCRAWL_ASSIGN_OR_RETURN(FaultProfile profile,
                             BuildFaultProfile(options));
  bool faults_enabled = !profile.IsAllZero();
  std::optional<FaultyServer> faulty;
  if (faults_enabled) {
    faulty.emplace(backend, profile,
                   static_cast<uint64_t>(options.fault_seed));
    std::cout << "faults: unavailable=" << profile.unavailable_rate
              << " timeout=" << profile.timeout_rate
              << " rate-limit=" << profile.rate_limit_rate
              << " truncate=" << profile.truncate_rate
              << " duplicate=" << profile.duplicate_rate << "\n";
  }
  if (options.threads < 1) {
    return Status::InvalidArgument("--threads must be >= 1");
  }
  if (options.batch < 1) {
    return Status::InvalidArgument("--batch must be >= 1");
  }
  bool parallel = options.threads > 1 || options.batch > 1;
  if (faults_enabled && (options.fault_keyed || parallel)) {
    // Parallel crawls force keyed faults: the sequential fault RNG
    // depends on fetch arrival order, which thread scheduling would
    // make irreproducible.
    faulty->set_keyed_faults(true);
    std::cout << "faults: keyed mode (decisions independent of fetch "
                 "arrival order)\n";
  }

  QueryInterface& direct_server = faults_enabled
                                      ? static_cast<QueryInterface&>(*faulty)
                                      : backend;
  std::optional<LockedQueryInterface> locked;
  if (parallel) {
    locked.emplace(direct_server,
                   static_cast<uint64_t>(options.latency_us));
  }
  QueryInterface& server =
      parallel ? static_cast<QueryInterface&>(*locked) : direct_server;

  if (options.retry_attempts < 1) {
    return Status::InvalidArgument("--retry-attempts must be >= 1");
  }
  if (options.retry_requeues < 0) {
    return Status::InvalidArgument("--retry-requeues must be >= 0");
  }
  RetryPolicyConfig retry_config;
  retry_config.max_attempts = static_cast<uint32_t>(options.retry_attempts);
  retry_config.max_requeues = static_cast<uint32_t>(options.retry_requeues);
  retry_config.seed = static_cast<uint64_t>(options.fault_seed);
  RetryPolicy retry_policy(retry_config);

  LocalStore store;
  SelectorContext selector_context;
  selector_context.store = &store;
  selector_context.seed = static_cast<uint64_t>(options.seed);
  selector_context.page_size = server_options.page_size;
  selector_context.result_limit = server_options.result_limit;
  selector_context.mmmi.reference_scoring = options.mmmi_reference;
  selector_context.target = &target;
  selector_context.rank_attribute = options.rank_attribute;
  selector_context.oracle_index = &backend.index();
  if (dt.has_value()) selector_context.domain = &*dt;
  DEEPCRAWL_ASSIGN_OR_RETURN(
      std::unique_ptr<QuerySelector> selector,
      MakeSelectorByName(options.policy, selector_context));

  CrawlOptions crawl_options;
  crawl_options.max_rounds = static_cast<uint64_t>(options.max_rounds);
  crawl_options.use_keyword_interface = options.keyword;
  if (options.target_coverage > 0.0) {
    crawl_options.target_records = static_cast<uint64_t>(
        options.target_coverage *
        static_cast<double>(target.num_records()));
  }
  if (options.saturation > 0.0) {
    crawl_options.saturation_records = static_cast<uint64_t>(
        options.saturation * static_cast<double>(target.num_records()));
  }

  if (options.checkpoint_every < 0) {
    return Status::InvalidArgument("--checkpoint-every must be >= 0");
  }
  if (options.checkpoint_every > 0 && options.checkpoint.empty()) {
    return Status::InvalidArgument(
        "--checkpoint-every needs --checkpoint=<path>");
  }
  FaultyServer* faulty_ptr = faults_enabled ? &*faulty : nullptr;
  EngineOptions engine_options;
  engine_options.threads = static_cast<uint32_t>(options.threads);
  engine_options.batch = static_cast<uint32_t>(options.batch);
  engine_options.checkpoint_every_waves =
      static_cast<uint64_t>(options.checkpoint_every);
  if (options.checkpoint_every > 0) {
    engine_options.checkpoint_sink =
        [faulty_ptr, path = options.checkpoint](const CrawlEngine& engine) {
          return SaveCrawlCheckpoint(engine, faulty_ptr, path);
        };
  }
  CrawlEngine engine(server, *selector, store, crawl_options, engine_options,
                     /*abort_policy=*/nullptr,
                     faults_enabled ? &retry_policy : nullptr);
  if (parallel) {
    std::cout << "parallel engine: " << options.threads << " threads, batch "
              << options.batch << ", simulated latency "
              << options.latency_us << "us/fetch\n";
  }
  if (!options.resume_from.empty()) {
    // Restores the full crawl state (store, selector, retry queues,
    // parked slots, clock, trace, fault-proxy RNG). The command line
    // must rebuild the same stack the checkpoint was taken from; the
    // budgets below are then re-applied so a resume can raise them.
    DEEPCRAWL_RETURN_IF_ERROR(
        LoadCrawlCheckpoint(options.resume_from, engine, faulty_ptr));
    engine.set_max_rounds(crawl_options.max_rounds);
    engine.set_target_records(crawl_options.target_records);
    std::cout << "resumed from " << options.resume_from << ": "
              << engine.store().num_records() << " records, "
              << engine.rounds_used() << " rounds, "
              << engine.waves_completed() << " waves\n";
  } else if (adv.has_value()) {
    // Every policy starts from the hierarchy root: it matches every
    // record, so the comparison is fair and no policy luckily seeds
    // inside a decoy cluster.
    engine.AddSeed(adv->root_value);
  } else {
    Pcg32 rng(static_cast<uint64_t>(options.seed));
    for (int64_t i = 0; i < options.num_seeds; ++i) {
      ValueId seed_value = rng.NextBounded(
          static_cast<uint32_t>(target.num_distinct_values()));
      while (target.value_frequency(seed_value) == 0) {
        seed_value = static_cast<ValueId>(
            (seed_value + 1) % target.num_distinct_values());
      }
      engine.AddSeed(seed_value);
    }
  }

  DEEPCRAWL_ASSIGN_OR_RETURN(CrawlResult result, engine.Run());
  if (options.checkpoint_every > 0) {
    std::cout << "checkpoints: every " << options.checkpoint_every
              << " waves to " << options.checkpoint << " ("
              << engine.waves_completed() << " waves completed)\n";
  }

  double coverage = target.num_records() == 0
                        ? 0.0
                        : static_cast<double>(result.records) /
                              static_cast<double>(target.num_records());
  ChaoEstimate chao = Chao1Estimate(store);
  std::cout << "\npolicy " << selector->name() << " ("
            << StopReasonToString(result.stop_reason) << ")\n"
            << "  records harvested:  " << result.records << " ("
            << TablePrinter::FormatPercent(coverage, 1) << " coverage)\n"
            << "  communication:      " << result.rounds << " rounds, "
            << result.queries << " queries\n"
            << "  online size est.:   "
            << TablePrinter::FormatDouble(chao.estimated_total, 0)
            << " records (Chao1)\n";
  if (adv.has_value() && adv->opt_queries > 0) {
    double ratio = static_cast<double>(result.queries) /
                   static_cast<double>(adv->opt_queries);
    std::cout << "  competitive: queries=" << result.queries
              << " opt=" << adv->opt_queries
              << " ratio=" << TablePrinter::FormatDouble(ratio, 3) << "\n";
  }
  if (faults_enabled) {
    const ResilienceCounters& res = result.resilience;
    std::cout << "  resilience:         " << res.transient_failures
              << " failures, " << res.retries << " retries ("
              << res.backoff_ticks << " backoff ticks), " << res.requeues
              << " re-queues, " << res.abandoned_values << " abandoned\n";
  }

  if (!options.trace_csv.empty()) {
    std::ofstream file(options.trace_csv);
    if (!file) {
      return Status::NotFound("cannot create '" + options.trace_csv + "'");
    }
    DEEPCRAWL_RETURN_IF_ERROR(WriteTraceCsv(result.trace, file));
    std::cout << "  trace written to:   " << options.trace_csv << "\n";
  }
  if (!options.output_tsv.empty()) {
    DEEPCRAWL_RETURN_IF_ERROR(
        WriteHarvest(target, store, options.output_tsv));
    std::cout << "  harvest written to: " << options.output_tsv << "\n";
  }
  return Status::OK();
}

}  // namespace
}  // namespace deepcrawl

int main(int argc, char** argv) {
  using namespace deepcrawl;
  Options options;
  FlagParser parser;
  parser.AddString("input", &options.input,
                   "TSV file with the target database (see src/relation/"
                   "tsv.h for the format)");
  parser.AddString("workload", &options.workload,
                   "generate a canned workload instead: "
                   "ebay|acm|dblp|imdb|adversarial");
  parser.AddDouble("scale", &options.scale,
                   "scale factor for --workload (1.0 = paper size)");
  parser.AddInt64("gen-seed", &options.gen_seed,
                  "generator seed for --workload");
  parser.AddString("adv-family", &options.adv_family,
                   "adversarial family: trap (greedy pays ω(OPT)) | skew "
                   "(additive-log descent overhead)");
  parser.AddInt64("adv-buckets", &options.adv_buckets,
                  "adversarial: requested non-decoy rank buckets "
                  "(rounded up to a power of two with the decoys)");
  parser.AddInt64("adv-records", &options.adv_records,
                  "adversarial: records per occupied bucket (= the "
                  "server result limit the instance assumes)");
  parser.AddInt64("adv-decoy-buckets", &options.adv_decoy_buckets,
                  "adversarial trap: buckets carrying decoy mass");
  parser.AddInt64("adv-decoy-width", &options.adv_decoy_width,
                  "adversarial trap: unique decoy values per trapped "
                  "record");
  parser.AddInt64("adv-occupied", &options.adv_occupied,
                  "adversarial skew: occupied lowest buckets");
  parser.AddString("policy", &options.policy, kKnownPolicies);
  parser.AddString("rank-attribute", &options.rank_attribute,
                   "attribute carrying r<lo>-<hi> interval values for "
                   "--policy=opt-rank/opt-threshold");
  parser.AddBool("mmmi-reference", &options.mmmi_reference,
                 "score MMMI batches with the pre-optimization postings "
                 "rescan instead of the incremental counters (identical "
                 "output, slower; for differential checks / A-B timing)");
  parser.AddString("domain-input", &options.domain_input,
                   "TSV with a same-domain sample database (builds the "
                   "domain statistics table)");
  parser.AddInt64("page-size", &options.page_size,
                  "records per result page (k)");
  parser.AddInt64("result-limit", &options.result_limit,
                  "max retrievable records per query (0 = unlimited)");
  parser.AddBool("counts", &options.counts,
                 "server reports total match counts (--no-counts to "
                 "disable)");
  parser.AddBool("keyword", &options.keyword,
                 "crawl through the keyword box instead of typed fields");
  parser.AddInt64("max-rounds", &options.max_rounds,
                  "communication-round budget (0 = unbounded)");
  parser.AddDouble("target-coverage", &options.target_coverage,
                   "stop at this fraction of the target's records "
                   "(0 = crawl to exhaustion)");
  parser.AddDouble("saturation", &options.saturation,
                   "coverage at which MMMI switches on");
  parser.AddInt64("seeds", &options.num_seeds,
                  "number of random seed values");
  parser.AddInt64("seed", &options.seed, "RNG seed for seed-value choice");
  parser.AddString("trace-csv", &options.trace_csv,
                   "write the rounds/records trace to this CSV");
  parser.AddString("output-tsv", &options.output_tsv,
                   "write the harvested records to this TSV");
  parser.AddString("fault-profile", &options.fault_profile,
                   "fault-injection preset: none|flaky|lossy|hostile");
  parser.AddDouble("fault-unavailable", &options.fault_unavailable,
                   "per-round probability of transient unavailability "
                   "(overrides the preset; negative = keep preset)");
  parser.AddDouble("fault-timeout", &options.fault_timeout,
                   "per-round probability of a deadline timeout");
  parser.AddDouble("fault-rate-limit", &options.fault_rate_limit,
                   "per-round probability of a rate-limit rejection");
  parser.AddDouble("fault-truncate", &options.fault_truncate,
                   "per-round probability of a silently truncated page");
  parser.AddDouble("fault-duplicate", &options.fault_duplicate,
                   "per-round probability of a duplicate-record echo");
  parser.AddInt64("fault-retry-after", &options.fault_retry_after,
                  "retry-after hint (rounds) on rate-limit rejections");
  parser.AddInt64("fault-seed", &options.fault_seed,
                  "RNG seed for fault injection and retry jitter");
  parser.AddInt64("retry-attempts", &options.retry_attempts,
                  "max fetch attempts per value drain under faults");
  parser.AddInt64("retry-requeues", &options.retry_requeues,
                  "times a failed value is re-queued before abandonment");
  parser.AddInt64("threads", &options.threads,
                  "fetch worker threads (>1 engages the parallel batched "
                  "engine; wall-clock only, never changes results)");
  parser.AddInt64("batch", &options.batch,
                  "concurrent drain slots per wave (>1 engages the "
                  "parallel engine; batch=1 reproduces the serial crawl "
                  "order exactly)");
  parser.AddInt64("latency-us", &options.latency_us,
                  "simulated per-fetch network latency in microseconds "
                  "(parallel engine only; overlapped across threads)");
  parser.AddBool("fault-keyed", &options.fault_keyed,
                 "key fault decisions by (query, page, attempt) instead "
                 "of fetch arrival order (forced on for parallel crawls)");
  parser.AddString("checkpoint", &options.checkpoint,
                   "write a resumable crawl checkpoint to this path "
                   "(atomically replaced at every boundary)");
  parser.AddInt64("checkpoint-every", &options.checkpoint_every,
                  "checkpoint after every N completed waves "
                  "(0 = never; needs --checkpoint)");
  parser.AddString("resume-from", &options.resume_from,
                   "resume a crawl from this checkpoint file; the other "
                   "flags must rebuild the stack it was taken from "
                   "(--max-rounds/--target-coverage may be raised)");
  parser.AddBool("help", &options.help, "print this help");

  Status parsed = parser.Parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << "error: " << parsed.ToString() << "\n\nflags:\n"
              << parser.HelpText();
    return 2;
  }
  if (options.help) {
    std::cout << "deepcrawl_crawl — query-selection crawling of a "
                 "(simulated) hidden-Web database\n\nflags:\n"
              << parser.HelpText();
    return 0;
  }
  Status status = Run(options);
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
