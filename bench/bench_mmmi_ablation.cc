// §3.3 ablation — MMMI ranking variants and LocalStore degree tracking.
//
// Two design choices called out in DESIGN.md:
//
//  1. MMMI ranking. The paper's literal text sorts Lto-query ascending
//     by the max-PMI dependency s(q) alone (HR ∝ 1/s); it also says the
//     method "is used together with the greedy link-based approach".
//     This library defaults to the degree-discounted combination
//     degree * exp(-s). The ablation compares plain GL, literal MMMI,
//     and the combination.
//
//  2. Local degree tracking. GreedyLinkSelector can rank by exact
//     distinct-neighbor degree (hash sets; more memory) or by the cheap
//     with-multiplicity link count. The ablation measures whether the
//     cheap proxy changes crawling cost.
//
//  3. MMMI scoring cost. RecomputeBatch can score candidates from the
//     incrementally-maintained co-occurrence counters (default) or by
//     the reference full postings rescan (MmmiOptions::reference_
//     scoring). Selection output is identical (the differential test
//     proves it); this bench times the MARGINAL PHASE — the crawl
//     segment from the 85% saturation switch to the 99% target, where
//     every batch pays the scoring cost — for both paths and reports
//     the speedup. With --json=<path> the numbers land in
//     BENCH_mmmi_ablation.json for the check.sh perf pass.

#include <chrono>
#include <iostream>

#include "bench/bench_common.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/mmmi_selector.h"
#include "src/datagen/canned_workloads.h"
#include "src/util/table_printer.h"

namespace {
constexpr double kScale = 0.1;
constexpr int kNumSeeds = 5;

// The scoring-cost A/B runs on a larger database than the round-count
// ablation: the reference rescan's cost grows with pending-set and
// postings size, so a small store hides it behind the fetch/ingest cost
// common to both paths.
constexpr double kMarginalScale = 0.3;
constexpr int kMarginalSeeds = 3;

// One staged crawl: greedy-link to the 85% saturation point (untimed),
// then MMMI batches to 99% (timed). Returns the marginal-phase
// wall-clock seconds and adds its rounds to *rounds_out.
double MarginalPhaseSeconds(const deepcrawl::Table& db,
                            deepcrawl::ValueId seed_value, bool reference,
                            uint64_t* rounds_out) {
  using namespace deepcrawl;
  uint64_t n = db.num_records();
  WebDbServer server(db, ServerOptions{});
  LocalStore store;
  MmmiOptions mmmi_options;
  mmmi_options.reference_scoring = reference;
  MmmiSelector selector(store, mmmi_options);
  CrawlOptions options;
  options.saturation_records =
      static_cast<uint64_t>(0.85 * static_cast<double>(n));
  options.target_records = options.saturation_records;
  CrawlEngine engine(server, selector, store, options);
  engine.AddSeed(seed_value);
  StatusOr<CrawlResult> warm = engine.Run();
  DEEPCRAWL_CHECK(warm.ok()) << warm.status().ToString();

  uint64_t rounds_before = engine.rounds_used();
  engine.set_target_records(
      static_cast<uint64_t>(0.99 * static_cast<double>(n)));
  auto start = std::chrono::steady_clock::now();
  StatusOr<CrawlResult> marginal = engine.Run();
  double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();
  DEEPCRAWL_CHECK(marginal.ok()) << marginal.status().ToString();
  *rounds_out += engine.rounds_used() - rounds_before;
  return seconds;
}

// Sums the marginal phase over the seed sweep; best-of-`reps` total.
double MarginalSweepSeconds(bool reference, int reps, uint64_t* rounds_out) {
  using namespace deepcrawl;
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    double total = 0.0;
    uint64_t rounds = 0;
    for (int s = 0; s < kMarginalSeeds; ++s) {
      StatusOr<Table> generated =
          GenerateTable(EbayConfig(kMarginalScale, 60 + s));
      DEEPCRAWL_CHECK(generated.ok());
      total += MarginalPhaseSeconds(
          *generated, bench::SeedValue(*generated, static_cast<uint32_t>(s)),
          reference, &rounds);
    }
    if (rep == 0 || total < best) best = total;
    *rounds_out = rounds;  // identical across reps (deterministic crawl)
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace deepcrawl;
  std::string json_path = bench::JsonPathFromArgs(argc, argv);
  bench::PrintBanner(
      "Ablation (§3.3): MMMI ranking variants; exact vs proxy degrees",
      "design choices not pinned down by the paper's text",
      "regenerated eBay at scale " + TablePrinter::FormatDouble(kScale, 2) +
          ", crawl to 99% coverage with GL->variant switch at 85%, sum "
          "over " + std::to_string(kNumSeeds) + " seeds");

  double total[5] = {0, 0, 0, 0, 0};  // GL, pure, comb, weighted, proxy
  for (int s = 0; s < kNumSeeds; ++s) {
    StatusOr<Table> generated = GenerateTable(EbayConfig(kScale, 60 + s));
    DEEPCRAWL_CHECK(generated.ok());
    const Table& db = *generated;
    WebDbServer server(db, ServerOptions{});
    CrawlOptions options;
    options.target_records =
        static_cast<uint64_t>(0.99 * static_cast<double>(db.num_records()));
    options.saturation_records =
        static_cast<uint64_t>(0.85 * static_cast<double>(db.num_records()));
    ValueId seed_value = bench::SeedValue(db, static_cast<uint32_t>(s));

    {
      LocalStore store;
      GreedyLinkSelector selector(store);
      total[0] += static_cast<double>(
          bench::RunCrawl(server, selector, store, options, seed_value)
              .rounds);
    }
    {
      LocalStore store;
      MmmiSelector selector(store,
                            MmmiOptions{10, MmmiRanking::kPureDependency});
      total[1] += static_cast<double>(
          bench::RunCrawl(server, selector, store, options, seed_value)
              .rounds);
    }
    {
      LocalStore store;
      MmmiSelector selector(store,
                            MmmiOptions{10, MmmiRanking::kDegreeDiscount});
      total[2] += static_cast<double>(
          bench::RunCrawl(server, selector, store, options, seed_value)
              .rounds);
    }
    {
      LocalStore store;
      MmmiSelector selector(
          store, MmmiOptions{10, MmmiRanking::kWeightedDependency});
      total[3] += static_cast<double>(
          bench::RunCrawl(server, selector, store, options, seed_value)
              .rounds);
    }
    {
      LocalStore::Options store_options;
      store_options.exact_degrees = false;  // link-count proxy
      LocalStore store(store_options);
      GreedyLinkSelector selector(store);
      total[4] += static_cast<double>(
          bench::RunCrawl(server, selector, store, options, seed_value)
              .rounds);
    }
  }

  TablePrinter table({"variant", "total rounds to 99%", "vs greedy-link"});
  const char* names[5] = {"greedy-link (exact degrees)",
                          "MMMI: literal 1/s ordering",
                          "MMMI: degree * exp(-s) (default)",
                          "MMMI: weighted-mean PMI variant",
                          "greedy-link (link-count proxy)"};
  for (int i = 0; i < 5; ++i) {
    table.AddRow({names[i], TablePrinter::FormatDouble(total[i], 0),
                  TablePrinter::FormatPercent(total[i] / total[0], 1)});
  }
  table.Print(std::cout);
  std::cout << "\nreading: both max()-based MMMI variants reproduce "
               "Figure 4's saving on this workload; the degree-"
               "discounted combination is the more robust default "
               "because the literal 1/s ordering ignores query "
               "productivity and can lose to plain greedy-link when "
               "value dependency is weak (see DESIGN.md). The weighted-"
               "mean PMI alternative the paper floats dilutes the "
               "signal and saves nothing — empirical support for the "
               "paper's max() choice (\"to avoid bad decisions\"). The "
               "link-count proxy tracks exact degrees closely at a "
               "fraction of the memory.\n";

  // --- marginal-phase scoring cost: incremental vs reference ----------
  uint64_t marginal_rounds = 0;
  uint64_t reference_rounds = 0;
  double incremental_s =
      MarginalSweepSeconds(/*reference=*/false, /*reps=*/3, &marginal_rounds);
  double reference_s =
      MarginalSweepSeconds(/*reference=*/true, /*reps=*/2, &reference_rounds);
  DEEPCRAWL_CHECK_EQ(marginal_rounds, reference_rounds)
      << "scoring paths diverged — selection is supposed to be identical";
  double incremental_rps =
      static_cast<double>(marginal_rounds) / incremental_s;
  double reference_rps = static_cast<double>(marginal_rounds) / reference_s;
  double speedup = reference_s / incremental_s;

  TablePrinter timing({"scoring path", "marginal rounds", "wall s",
                       "rounds/s"});
  timing.AddRow({"incremental counters (default)",
                 TablePrinter::FormatCount(marginal_rounds),
                 TablePrinter::FormatDouble(incremental_s, 3),
                 TablePrinter::FormatCount(
                     static_cast<uint64_t>(incremental_rps))});
  timing.AddRow({"reference postings rescan",
                 TablePrinter::FormatCount(reference_rounds),
                 TablePrinter::FormatDouble(reference_s, 3),
                 TablePrinter::FormatCount(
                     static_cast<uint64_t>(reference_rps))});
  std::cout << "\nmarginal phase (85% -> 99%, eBay scale "
            << TablePrinter::FormatDouble(kMarginalScale, 2)
            << ", summed over " << kMarginalSeeds << " seeds):\n";
  timing.Print(std::cout);
  std::cout << "incremental speedup vs reference: "
            << TablePrinter::FormatDouble(speedup, 2) << "x\n";

  if (!json_path.empty()) {
    bench::BenchJson json("mmmi_ablation");
    json.Add("marginal_phase_rps", incremental_rps, "rounds/s",
             /*higher_is_better=*/true);
    json.Add("marginal_speedup_vs_reference", speedup, "x",
             /*higher_is_better=*/true);
    json.Add("rounds_mmmi_default_total", total[2], "rounds",
             /*higher_is_better=*/false);
    json.WriteFile(json_path);
  }
  return 0;
}
