#include "src/crawler/local_store.h"

#include "src/crawler/paged_store.h"
#include "src/util/logging.h"

namespace deepcrawl {

LocalStore::LocalStore() : LocalStore(Options{}) {}

LocalStore::LocalStore(Options options) : options_(std::move(options)) {
  if (options_.layout == Layout::kPaged) {
    PagedStore::Options paged;
    paged.dir = options_.paged_dir;
    paged.page_bytes = options_.page_bytes;
    paged.cache_pages = options_.cache_pages;
    paged.exact_degrees = options_.exact_degrees;
    paged.resume = options_.paged_resume;
    paged_ = std::make_unique<PagedStore>(paged);
  }
}

LocalStore::~LocalStore() = default;

void LocalStore::EnsureValueCapacity(ValueId v) {
  if (v < local_frequency_.size()) return;
  size_t new_size = static_cast<size_t>(v) + 1;
  local_frequency_.resize(new_size, 0);
  link_count_.resize(new_size, 0);
  if (options_.layout == Layout::kCsr) {
    postings_csr_.EnsureRows(new_size);
    if (options_.exact_degrees) adjacency_csr_.EnsureRows(new_size);
  } else {
    local_postings_ref_.resize(new_size);
    if (options_.exact_degrees) {
      neighbor_sets_ref_.resize(new_size);
      neighbor_lists_ref_.resize(new_size);
    }
  }
}

bool LocalStore::AddRecord(RecordId id, std::span<const ValueId> values) {
  if (paged_ != nullptr) return paged_->AddRecord(id, values);
  DEEPCRAWL_CHECK(!values.empty()) << "harvested record has no values";
  uint32_t slot = static_cast<uint32_t>(num_records());
  if (!slot_of_.emplace(id, slot).second) return false;

  record_values_.insert(record_values_.end(), values.begin(), values.end());
  record_offsets_.push_back(record_values_.size());
  original_ids_.push_back(id);
  observation_count_.push_back(1);
  ++num_observations_;

  const bool csr = options_.layout == Layout::kCsr;
  for (ValueId v : values) {
    EnsureValueCapacity(v);
    ++local_frequency_[v];
    if (csr) {
      postings_csr_.Append(v, slot);
    } else {
      local_postings_ref_[v].push_back(slot);
    }
    link_count_[v] += values.size() - 1;
  }
  if (options_.exact_degrees) {
    if (csr) {
      // One probe per unordered pair: a new (min, max) edge appends each
      // endpoint to the other's adjacency row, in record order — so the
      // rows come out in first-co-occurrence order deterministically.
      for (size_t i = 0; i + 1 < values.size(); ++i) {
        for (size_t j = i + 1; j < values.size(); ++j) {
          ValueId a = values[i];
          ValueId b = values[j];
          if (a == b) continue;
          ValueId lo = a < b ? a : b;
          ValueId hi = a < b ? b : a;
          uint64_t key = (static_cast<uint64_t>(lo) << 32) | hi;
          if (edge_set_.Insert(key)) {
            adjacency_csr_.Append(a, b);
            adjacency_csr_.Append(b, a);
          }
        }
      }
    } else {
      for (size_t i = 0; i + 1 < values.size(); ++i) {
        for (size_t j = i + 1; j < values.size(); ++j) {
          ValueId a = values[i];
          ValueId b = values[j];
          if (a == b) continue;
          if (neighbor_sets_ref_[a].insert(b).second) {
            neighbor_lists_ref_[a].push_back(b);
          }
          if (neighbor_sets_ref_[b].insert(a).second) {
            neighbor_lists_ref_[b].push_back(a);
          }
        }
      }
    }
  }
  return true;
}

bool LocalStore::ContainsRecord(RecordId id) const {
  if (paged_ != nullptr) return paged_->ContainsRecord(id);
  return slot_of_.count(id) != 0;
}

void LocalStore::ObserveDuplicate(RecordId id) {
  if (paged_ != nullptr) return paged_->ObserveDuplicate(id);
  auto it = slot_of_.find(id);
  DEEPCRAWL_CHECK(it != slot_of_.end())
      << "duplicate observation of a record never added";
  ++observation_count_[it->second];
  ++num_observations_;
}

void LocalStore::RestoreObservations(RecordId id, uint32_t count) {
  if (paged_ != nullptr) return paged_->RestoreObservations(id, count);
  DEEPCRAWL_CHECK_GE(count, 1u);
  auto it = slot_of_.find(id);
  DEEPCRAWL_CHECK(it != slot_of_.end())
      << "restoring observations of a record never added";
  uint32_t& stored = observation_count_[it->second];
  num_observations_ += count;
  num_observations_ -= stored;
  stored = count;
}

uint64_t LocalStore::num_observations() const {
  if (paged_ != nullptr) return paged_->num_observations();
  return num_observations_;
}

size_t LocalStore::num_records() const {
  if (paged_ != nullptr) return paged_->num_records();
  return record_offsets_.size() - 1;
}

size_t LocalStore::num_values_seen() const {
  if (paged_ != nullptr) return paged_->num_values_seen();
  return local_frequency_.size();
}

size_t LocalStore::RecordsObservedTimes(uint32_t k) const {
  if (paged_ != nullptr) return paged_->RecordsObservedTimes(k);
  DEEPCRAWL_CHECK_GE(k, 1u);
  size_t count = 0;
  for (uint32_t observations : observation_count_) {
    if (observations == k) ++count;
  }
  return count;
}

uint32_t LocalStore::LocalFrequency(ValueId v) const {
  if (paged_ != nullptr) return paged_->LocalFrequency(v);
  if (v >= local_frequency_.size()) return 0;
  return local_frequency_[v];
}

uint64_t LocalStore::LocalDegree(ValueId v) const {
  if (paged_ != nullptr) return paged_->LocalDegree(v);
  if (v >= local_frequency_.size()) return 0;
  if (options_.exact_degrees) {
    if (options_.layout == Layout::kCsr) return adjacency_csr_.RowSize(v);
    return neighbor_sets_ref_[v].size();
  }
  return link_count_[v];
}

std::span<const ValueId> LocalStore::NeighborsSpan(ValueId v) const {
  if (paged_ != nullptr) {
    paged_->CopyNeighbors(v, neighbors_scratch_);
    return neighbors_scratch_;
  }
  if (!options_.exact_degrees || v >= local_frequency_.size()) return {};
  if (options_.layout == Layout::kCsr) return adjacency_csr_.Row(v);
  return neighbor_lists_ref_[v];
}

std::span<const uint32_t> LocalStore::LocalPostings(ValueId v) const {
  if (paged_ != nullptr) {
    paged_->CopyPostings(v, postings_scratch_);
    return postings_scratch_;
  }
  if (v >= local_frequency_.size()) return {};
  if (options_.layout == Layout::kCsr) return postings_csr_.Row(v);
  return local_postings_ref_[v];
}

std::span<const ValueId> LocalStore::RecordValues(uint32_t slot) const {
  if (paged_ != nullptr) {
    paged_->CopyRecordValues(slot, record_scratch_);
    return record_scratch_;
  }
  DEEPCRAWL_CHECK_LT(slot, num_records()) << "local record slot out of range";
  size_t begin = record_offsets_[slot];
  size_t end = record_offsets_[slot + 1];
  return std::span<const ValueId>(record_values_.data() + begin, end - begin);
}

RecordId LocalStore::OriginalRecordId(uint32_t slot) const {
  if (paged_ != nullptr) return paged_->OriginalRecordId(slot);
  DEEPCRAWL_CHECK_LT(slot, num_records()) << "local record slot out of range";
  return original_ids_[slot];
}

uint32_t LocalStore::ObservationCount(uint32_t slot) const {
  if (paged_ != nullptr) return paged_->ObservationCount(slot);
  return observation_count_[slot];
}

StatusOr<uint64_t> LocalStore::CheckpointPaged() {
  DEEPCRAWL_CHECK(paged_ != nullptr)
      << "CheckpointPaged on a non-paged layout";
  return paged_->Checkpoint();
}

Status LocalStore::LoadPagedCheckpoint(uint64_t stamp) {
  DEEPCRAWL_CHECK(paged_ != nullptr)
      << "LoadPagedCheckpoint on a non-paged layout";
  return paged_->LoadCheckpoint(stamp);
}

const PageCacheStats& LocalStore::paged_cache_stats() const {
  DEEPCRAWL_CHECK(paged_ != nullptr)
      << "paged_cache_stats on a non-paged layout";
  return paged_->cache_stats();
}

}  // namespace deepcrawl
