// deepcrawl_compare — run several query-selection policies against the
// same target and compare their coverage/cost curves (the shape of the
// paper's Figures 3-5, for your own data).
//
// Example:
//   deepcrawl_compare --workload=ebay --scale=0.1 ...
//       --policies=bfs,random,greedy,mmmi --max-rounds=2000 ...
//       --comparison-csv=curves.csv

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/crawler/crawl_engine.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/mmmi_selector.h"
#include "src/crawler/naive_selectors.h"
#include "src/crawler/oracle_selector.h"
#include "src/crawler/trace_io.h"
#include "src/datagen/canned_workloads.h"
#include "src/datagen/workload_config.h"
#include "src/relation/tsv.h"
#include "src/server/web_db_server.h"
#include "src/util/flags.h"
#include "src/util/table_printer.h"

namespace deepcrawl {
namespace {

struct Options {
  std::string input;
  std::string workload;
  double scale = 0.1;
  int64_t gen_seed = 1;
  std::string policies = "bfs,random,greedy,mmmi";
  int64_t page_size = 10;
  int64_t result_limit = 0;
  int64_t max_rounds = 0;
  double saturation = 0.85;
  int64_t seed = 1;
  std::string comparison_csv;
  bool help = false;
};

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> parts;
  std::istringstream stream(text);
  std::string part;
  while (std::getline(stream, part, ',')) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

StatusOr<Table> LoadTarget(const Options& options) {
  if (!options.input.empty()) return ReadTableTsvFile(options.input);
  if (options.workload == "ebay") {
    return GenerateTable(EbayConfig(options.scale, options.gen_seed));
  }
  if (options.workload == "acm") {
    return GenerateTable(AcmDlConfig(options.scale, options.gen_seed));
  }
  if (options.workload == "dblp") {
    return GenerateTable(DblpConfig(options.scale, options.gen_seed));
  }
  if (options.workload == "imdb") {
    return GenerateTable(ImdbConfig(options.scale, options.gen_seed));
  }
  return Status::InvalidArgument(
      "give --input=<tsv> or --workload=ebay|acm|dblp|imdb");
}

Status Run(const Options& options) {
  DEEPCRAWL_ASSIGN_OR_RETURN(Table target, LoadTarget(options));
  std::cout << "target: " << target.num_records() << " records, "
            << target.num_distinct_values() << " distinct values\n\n";

  ServerOptions server_options;
  server_options.page_size = static_cast<uint32_t>(options.page_size);
  server_options.result_limit =
      static_cast<uint32_t>(options.result_limit);
  WebDbServer server(target, server_options);

  // One deterministic seed value shared by every policy.
  ValueId seed_value = static_cast<ValueId>(
      (1 + 2654435761ull * static_cast<uint64_t>(options.seed)) %
      target.num_distinct_values());
  while (target.value_frequency(seed_value) == 0) {
    seed_value = static_cast<ValueId>((seed_value + 1) %
                                      target.num_distinct_values());
  }

  TablePrinter table(
      {"policy", "records", "coverage", "rounds", "queries", "stop"});
  std::vector<CrawlTrace> traces;
  std::vector<NamedTrace> named;
  std::vector<std::string> names = SplitCommas(options.policies);
  traces.reserve(names.size());
  for (const std::string& name : names) {
    LocalStore store;
    std::unique_ptr<QuerySelector> selector;
    if (name == "bfs") {
      selector = std::make_unique<BfsSelector>();
    } else if (name == "dfs") {
      selector = std::make_unique<DfsSelector>();
    } else if (name == "random") {
      selector = std::make_unique<RandomSelector>(options.seed);
    } else if (name == "greedy") {
      selector = std::make_unique<GreedyLinkSelector>(store);
    } else if (name == "mmmi") {
      selector = std::make_unique<MmmiSelector>(store);
    } else if (name == "oracle") {
      selector = std::make_unique<OracleSelector>(
          store, server.index(), server_options.page_size,
          server_options.result_limit);
    } else {
      return Status::InvalidArgument("unknown policy '" + name + "'");
    }

    CrawlOptions crawl_options;
    crawl_options.max_rounds = static_cast<uint64_t>(options.max_rounds);
    if (options.saturation > 0.0) {
      crawl_options.saturation_records = static_cast<uint64_t>(
          options.saturation * static_cast<double>(target.num_records()));
    }
    server.ResetMeters();
    CrawlEngine engine(server, *selector, store, crawl_options);
    engine.AddSeed(seed_value);
    DEEPCRAWL_ASSIGN_OR_RETURN(CrawlResult result, engine.Run());
    double coverage = static_cast<double>(result.records) /
                      static_cast<double>(target.num_records());
    table.AddRow({name, std::to_string(result.records),
                  TablePrinter::FormatPercent(coverage, 1),
                  std::to_string(result.rounds),
                  std::to_string(result.queries),
                  StopReasonToString(result.stop_reason)});
    traces.push_back(std::move(result.trace));
  }
  table.Print(std::cout);

  if (!options.comparison_csv.empty()) {
    for (size_t i = 0; i < names.size(); ++i) {
      named.push_back(NamedTrace{names[i], &traces[i]});
    }
    std::ofstream file(options.comparison_csv);
    if (!file) {
      return Status::NotFound("cannot create '" + options.comparison_csv +
                              "'");
    }
    DEEPCRAWL_RETURN_IF_ERROR(WriteComparisonCsv(named, file));
    std::cout << "\ncurves written to " << options.comparison_csv << "\n";
  }
  return Status::OK();
}

}  // namespace
}  // namespace deepcrawl

int main(int argc, char** argv) {
  using namespace deepcrawl;
  Options options;
  FlagParser parser;
  parser.AddString("input", &options.input, "TSV target database");
  parser.AddString("workload", &options.workload,
                   "generate instead: ebay|acm|dblp|imdb");
  parser.AddDouble("scale", &options.scale, "workload scale factor");
  parser.AddInt64("gen-seed", &options.gen_seed, "generator seed");
  parser.AddString("policies", &options.policies,
                   "comma-separated: bfs,dfs,random,greedy,mmmi,oracle");
  parser.AddInt64("page-size", &options.page_size, "records per page (k)");
  parser.AddInt64("result-limit", &options.result_limit,
                  "max retrievable records per query (0 = unlimited)");
  parser.AddInt64("max-rounds", &options.max_rounds,
                  "round budget per policy (0 = unbounded)");
  parser.AddDouble("saturation", &options.saturation,
                   "coverage at which MMMI switches on");
  parser.AddInt64("seed", &options.seed, "seed-value choice");
  parser.AddString("comparison-csv", &options.comparison_csv,
                   "write aligned per-policy coverage curves to this CSV");
  parser.AddBool("help", &options.help, "print this help");

  Status parsed = parser.Parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << "error: " << parsed.ToString() << "\n\nflags:\n"
              << parser.HelpText();
    return 2;
  }
  if (options.help) {
    std::cout << "deepcrawl_compare — compare query-selection policies "
                 "on one target\n\nflags:\n"
              << parser.HelpText();
    return 0;
  }
  Status status = Run(options);
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
