// Shared target-database and fault-injection setup for the command-line
// tools. deepcrawl_crawl and deepcrawl_serve must assemble IDENTICAL
// workloads and fault profiles from identical flags — a TCP crawl is
// only comparable to an in-process one if the server process built the
// same database the client run would have built locally — so the flag
// registration, the table construction, and the FaultProfile assembly
// live here once.

#ifndef DEEPCRAWL_TOOLS_WORKLOAD_SETUP_H_
#define DEEPCRAWL_TOOLS_WORKLOAD_SETUP_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/relation/table.h"
#include "src/server/faulty_server.h"
#include "src/util/flags.h"
#include "src/util/status.h"

namespace deepcrawl {

// Flags selecting the target database: a TSV dump or a generated
// workload (see src/datagen/).
struct WorkloadFlagOptions {
  std::string input;
  std::string workload;
  double scale = 0.1;
  int64_t gen_seed = 1;

  // --workload=adversarial knobs (src/datagen/adversarial_workload.h).
  std::string adv_family = "trap";
  int64_t adv_buckets = 16;
  int64_t adv_records = 8;
  int64_t adv_decoy_buckets = 4;
  int64_t adv_decoy_width = 16;
  int64_t adv_occupied = 2;

  // --workload=textual|mixed knobs (src/datagen/textual_workload.h);
  // document and vocabulary counts follow --scale.
  int64_t txt_topics = 12;
  double txt_affinity = 0.7;
};

// Ground truth carried out of an adversarial generation: the crawl
// seeds from the hierarchy root and reports its query cost against OPT.
struct AdversarialGroundTruth {
  uint64_t opt_queries = 0;
  uint32_t result_limit = 0;
  ValueId root_value = kInvalidValueId;
};

void RegisterWorkloadFlags(FlagParser& parser, WorkloadFlagOptions* options);

// Loads --input or generates --workload; fills `adv` for
// --workload=adversarial.
StatusOr<Table> LoadTargetTable(const WorkloadFlagOptions& options,
                                std::optional<AdversarialGroundTruth>& adv);

// Flags configuring the fault-injection proxy (src/server/
// faulty_server.h): a preset profile plus per-rate overrides.
struct FaultFlagOptions {
  std::string fault_profile = "none";
  double fault_unavailable = -1.0;
  double fault_timeout = -1.0;
  double fault_rate_limit = -1.0;
  double fault_truncate = -1.0;
  double fault_duplicate = -1.0;
  int64_t fault_retry_after = 4;
  int64_t fault_seed = 1;
  bool fault_keyed = false;
};

void RegisterFaultFlags(FlagParser& parser, FaultFlagOptions* options);

// Resolves the preset + overrides into a validated FaultProfile.
StatusOr<FaultProfile> BuildFaultProfile(const FaultFlagOptions& options);

}  // namespace deepcrawl

#endif  // DEEPCRAWL_TOOLS_WORKLOAD_SETUP_H_
