#include "src/crawler/abort_policy.h"

#include "src/util/logging.h"

namespace deepcrawl {

CountBasedAbort::CountBasedAbort(double min_harvest_rate)
    : min_harvest_rate_(min_harvest_rate) {
  DEEPCRAWL_CHECK_GE(min_harvest_rate, 0.0);
}

bool CountBasedAbort::ShouldContinue(const QueryProgress& progress) {
  if (!progress.total_matches.has_value()) return true;  // no count: fetch
  DEEPCRAWL_DCHECK(progress.page_size > 0);
  uint32_t remaining = progress.retrievable > progress.records_returned
                           ? progress.retrievable - progress.records_returned
                           : 0;
  if (remaining == 0) return false;
  uint32_t remaining_rounds =
      (remaining + progress.page_size - 1) / progress.page_size;
  // Best case every remaining record is new, discounted by the duplicate
  // ratio observed so far (the paper's "accurately calculate the exact
  // number of new records" relies on content keys; the simulation uses
  // the observed ratio as the estimator).
  double dup_ratio =
      progress.records_returned == 0
          ? 0.0
          : 1.0 - static_cast<double>(progress.new_records) /
                      static_cast<double>(progress.records_returned);
  double expected_new = static_cast<double>(remaining) * (1.0 - dup_ratio);
  double rate = expected_new / static_cast<double>(remaining_rounds);
  return rate >= min_harvest_rate_;
}

DuplicateRatioAbort::DuplicateRatioAbort(uint32_t min_pages,
                                         double max_duplicate_fraction)
    : min_pages_(min_pages), max_duplicate_fraction_(max_duplicate_fraction) {
  DEEPCRAWL_CHECK_GT(min_pages, 0u);
  DEEPCRAWL_CHECK_GE(max_duplicate_fraction, 0.0);
  DEEPCRAWL_CHECK_LE(max_duplicate_fraction, 1.0);
}

bool DuplicateRatioAbort::ShouldContinue(const QueryProgress& progress) {
  if (progress.pages_fetched < min_pages_) return true;
  if (progress.records_returned == 0) return true;
  double dup_ratio = 1.0 - static_cast<double>(progress.new_records) /
                               static_cast<double>(progress.records_returned);
  return dup_ratio <= max_duplicate_fraction_;
}

}  // namespace deepcrawl
