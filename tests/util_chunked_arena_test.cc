// Regression and property tests for ChunkedArena's garbage accounting
// (src/util/chunked_arena.h).
//
// The bug under test: Relocate() used to add the moved row's chunk to
// garbage_ BEFORE deciding whether to compact. When the relocation
// itself triggered Compact(), the compaction zeroed garbage_ — and the
// compacted copy of the row, abandoned by the move immediately after,
// was never counted. Every compaction-triggering relocation thereafter
// undercounted garbage by the moved row's size, so later compactions
// fired late and the arena footprint drifted past its documented bound.
//
// The oracle here is externally observable: across a single Append,
// garbage can only (a) stay put, (b) grow by the abandoned chunk, or
// (c) — when compaction fired, observable as a garbage decrease — land
// at EXACTLY the moved row's pre-append size, because compaction zeroes
// the arena's garbage and the move then abandons the row's dense
// compacted copy. The pre-fix code reports 0 in case (c).

#include "src/util/chunked_arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/util/random.h"

namespace deepcrawl {
namespace {

TEST(ChunkedArenaAccountingTest, CompactionCountsAbandonedCompactedChunk) {
  // A few near-equal large rows, each pushed just past its next
  // relocation in turn: their own abandoned chunks build the garbage
  // that eventually makes a relocation compact, and the moved row is
  // large — so the pre-fix undercount is large and unmissable.
  ChunkedArena<uint32_t> arena;
  const int kRows = 4;
  arena.EnsureRows(kRows);
  int compactions = 0;
  for (int cycle = 0; cycle < 14; ++cycle) {
    for (int row = 0; row < kRows; ++row) {
      size_t n = arena.RowSize(row) == 0 ? 5 : arena.RowSize(row) + 1;
      for (size_t i = 0; i < n; ++i) {
        size_t garbage_before = arena.arena_garbage();
        size_t row_before = arena.RowSize(row);
        arena.Append(row, static_cast<uint32_t>(row));
        size_t garbage_after = arena.arena_garbage();
        if (garbage_after < garbage_before) {
          ++compactions;
          EXPECT_EQ(garbage_after, row_before)
              << "compaction inside Relocate must leave exactly the "
                 "moved row's abandoned compacted copy as garbage";
        }
      }
    }
  }
  // The pattern must actually exercise the compact-inside-relocate
  // path, or the oracle above never fired.
  EXPECT_GE(compactions, 3);
  // Content survives all the churn.
  for (int row = 0; row < kRows; ++row) {
    for (uint32_t v : arena.Row(row)) {
      ASSERT_EQ(v, static_cast<uint32_t>(row));
    }
  }
}

TEST(ChunkedArenaAccountingTest, RandomWorkloadKeepsFootprintBounded) {
  // Property test: under a random skewed workload the accounting
  // invariant capacity <= 2*live + garbage + 4*rows must hold after
  // every append (each row wastes at most its own size in unused tail
  // capacity, plus 4 slack for tiny rows), and the epoch compaction
  // driven by an honest garbage counter keeps the total footprint
  // within a small multiple of the live data.
  Pcg32 rng(1234);
  ChunkedArena<uint32_t> arena;
  const size_t kRows = 48;
  arena.EnsureRows(kRows);
  for (int i = 0; i < 200000; ++i) {
    // Square the draw to skew appends toward low rows: a few heavy
    // rows plus many light ones, the LocalStore postings shape.
    size_t row = rng.NextBounded(kRows);
    row = row * row / kRows;
    arena.Append(row, static_cast<uint32_t>(i));
    size_t cap = arena.arena_capacity();
    ASSERT_LE(cap, 2 * arena.size() + arena.arena_garbage() + 4 * kRows)
        << "garbage undercount at append " << i;
  }
  EXPECT_EQ(arena.size(), 200000u);
  EXPECT_LT(arena.arena_capacity(), 4u * arena.size());
}

}  // namespace
}  // namespace deepcrawl
