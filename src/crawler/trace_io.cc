#include "src/crawler/trace_io.h"

#include <algorithm>
#include <ostream>
#include <set>
#include <string>

namespace deepcrawl {

namespace {

// Flushes a fully-formatted CSV with ONE streambuf write. Benches that
// export several traces may share one ostream across crawl harnesses;
// a single atomic append per trace keeps rows from interleaving, where
// the old row-by-row `<<` emission silently assumed a single writer
// (regression-tested in tests/crawler_trace_wave_test.cc).
Status EmitBuffered(const std::string& buffer, std::ostream& output) {
  output.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  if (!output) return Status::Internal("write failed");
  return Status::OK();
}

}  // namespace

Status WriteTraceCsv(const CrawlTrace& trace, std::ostream& output) {
  std::string buffer = "rounds,records\n";
  for (const TracePoint& point : trace.points()) {
    buffer += std::to_string(point.rounds);
    buffer += ',';
    buffer += std::to_string(point.records);
    buffer += '\n';
  }
  return EmitBuffered(buffer, output);
}

Status WriteComparisonCsv(const std::vector<NamedTrace>& traces,
                          std::ostream& output) {
  if (traces.empty()) {
    return Status::InvalidArgument("no traces to export");
  }
  std::string buffer = "rounds";
  for (const NamedTrace& named : traces) {
    if (named.trace == nullptr) {
      return Status::InvalidArgument("null trace '" + named.name + "'");
    }
    buffer += ',';
    buffer += named.name;
  }
  buffer += '\n';

  std::set<uint64_t> rounds;
  for (const NamedTrace& named : traces) {
    for (const TracePoint& point : named.trace->points()) {
      rounds.insert(point.rounds);
    }
  }
  for (uint64_t r : rounds) {
    buffer += std::to_string(r);
    for (const NamedTrace& named : traces) {
      buffer += ',';
      buffer += std::to_string(named.trace->RecordsAtRounds(r));
    }
    buffer += '\n';
  }
  return EmitBuffered(buffer, output);
}

}  // namespace deepcrawl
