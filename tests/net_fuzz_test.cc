// Corruption suite for the wire protocol: every single-byte flip, every
// truncation point, forged lengths and checksums, and random garbage
// must come back as a clean Status (or "need more bytes") — never a
// crash, hang, or out-of-bounds access. Runs under ASan/UBSan via
// tools/check.sh pass 2, which is where an OOB read would actually
// trip.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/net/frame.h"
#include "src/util/random.h"
#include "src/util/status.h"

namespace deepcrawl {
namespace {

// A representative response frame: an OK page with records, counts, and
// a has-more flag — the widest body layout the protocol has.
std::string SamplePageFrame() {
  std::vector<ValueId> rec0 = {10, 20, 30};
  std::vector<ValueId> rec1 = {40, 50};
  ResultPage page;
  page.records.push_back({7, rec0});
  page.records.push_back({8, rec1});
  page.page_number = 2;
  page.total_matches = 123;
  page.has_more = true;
  return EncodeResponseFrame(99, StatusOr<ResultPage>(page));
}

std::string SampleRequestFrame() {
  WireRequest request;
  request.type = WireMessageType::kFetchPageConjunctive;
  request.request_id = 1234;
  request.values = {1, 2, 3, 4};
  request.page_number = 1;
  request.text = "unused";
  return EncodeRequestFrame(request);
}

// Feeds `stream` to a fresh assembler and returns what happened. The
// contract under corruption: Next may report an error, or may want more
// bytes (a flipped length prefix can claim a longer frame) — but it
// must never produce a frame body that differs from what was sent,
// because the inner checksum covers every body byte.
enum class FeedOutcome { kError, kIncomplete, kFrame };

FeedOutcome Feed(const std::string& stream, std::string* body) {
  FrameAssembler assembler;
  assembler.Append(stream);
  StatusOr<bool> got = assembler.Next(body);
  if (!got.ok()) return FeedOutcome::kError;
  return got.value() ? FeedOutcome::kFrame : FeedOutcome::kIncomplete;
}

TEST(NetFuzzTest, EveryByteFlipIsRejectedOrIncomplete) {
  for (const std::string& frame : {SamplePageFrame(), SampleRequestFrame()}) {
    for (size_t i = 0; i < frame.size(); ++i) {
      for (uint8_t mask : {0x01, 0x80, 0xFF}) {
        std::string mutated = frame;
        mutated[i] = static_cast<char>(
            static_cast<uint8_t>(mutated[i]) ^ mask);
        std::string body;
        FeedOutcome outcome = Feed(mutated, &body);
        // A flip anywhere — length prefix, magic, version, size, body,
        // checksum — can never yield a valid frame: the checksum guards
        // the body and the framing fields guard each other.
        EXPECT_NE(outcome, FeedOutcome::kFrame)
            << "byte " << i << " mask " << static_cast<int>(mask)
            << " produced a frame despite corruption";
      }
    }
  }
}

TEST(NetFuzzTest, EveryTruncationIsIncompleteNeverAccepted) {
  std::string frame = SamplePageFrame();
  for (size_t len = 0; len < frame.size(); ++len) {
    FrameAssembler assembler;
    assembler.Append(std::string_view(frame).substr(0, len));
    std::string body;
    StatusOr<bool> got = assembler.Next(&body);
    ASSERT_TRUE(got.ok()) << "truncation at " << len << " errored: "
                          << got.status().ToString();
    ASSERT_FALSE(got.value()) << "truncation at " << len << " accepted";
    // Delivering the remainder must complete the frame cleanly.
    assembler.Append(std::string_view(frame).substr(len));
    got = assembler.Next(&body);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(got.value());
    StatusOr<WireServerMessage> decoded = DecodeServerMessage(body);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->request_id, 99u);
  }
}

TEST(NetFuzzTest, ForgedHugeLengthRejectedBeforeBuffering) {
  // A length prefix past the cap must fail immediately — long before
  // that many bytes arrive — so a forged length can never drive memory
  // growth.
  std::string stream(4, '\0');
  uint32_t forged = kMaxWireFrameBytes + 1;
  std::memcpy(stream.data(), &forged, 4);
  std::string body;
  EXPECT_EQ(Feed(stream, &body), FeedOutcome::kError);

  uint32_t worst = 0xFFFFFFFFu;
  std::memcpy(stream.data(), &worst, 4);
  EXPECT_EQ(Feed(stream, &body), FeedOutcome::kError);
}

TEST(NetFuzzTest, ForgedTinyLengthRejected) {
  // Lengths smaller than the inner framing can't hold a valid frame.
  for (uint32_t forged : {0u, 1u, 5u, 23u}) {
    std::string stream(4 + forged, '\0');
    std::memcpy(stream.data(), &forged, 4);
    std::string body;
    EXPECT_EQ(Feed(stream, &body), FeedOutcome::kError) << forged;
  }
}

TEST(NetFuzzTest, ForgedChecksumRejected) {
  std::string frame = SamplePageFrame();
  // The checksum is the trailing u64 of the inner frame.
  for (size_t i = frame.size() - 8; i < frame.size(); ++i) {
    std::string mutated = frame;
    mutated[i] = static_cast<char>(static_cast<uint8_t>(mutated[i]) + 1);
    std::string body;
    EXPECT_EQ(Feed(mutated, &body), FeedOutcome::kError) << i;
  }
}

TEST(NetFuzzTest, ErrorIsStickyAcrossSubsequentAppends) {
  std::string garbage = "this is not a frame at all, not even close!!";
  FrameAssembler assembler;
  assembler.Append(garbage);
  std::string body;
  StatusOr<bool> first = assembler.Next(&body);
  // Either an immediate error or an incomplete wait, depending on the
  // forged length those bytes happen to spell.
  if (first.ok()) return;
  // Once failed, a valid frame appended after the corruption must NOT
  // resurrect the stream: framing sync is gone for good.
  assembler.Append(SamplePageFrame());
  StatusOr<bool> second = assembler.Next(&body);
  EXPECT_FALSE(second.ok());
}

TEST(NetFuzzTest, RandomGarbageNeverCrashes) {
  Pcg32 rng(20260808);
  for (int trial = 0; trial < 200; ++trial) {
    size_t len = 1 + rng.NextBounded(200);
    std::string garbage(len, '\0');
    for (char& c : garbage) {
      c = static_cast<char>(rng.NextBounded(256));
    }
    std::string body;
    FeedOutcome outcome = Feed(garbage, &body);
    if (outcome == FeedOutcome::kFrame) {
      // Astronomically unlikely (needs a valid magic, version, size,
      // and matching FNV checksum) — but if it happens the decoders
      // must still fail cleanly rather than crash.
      (void)DecodeServerMessage(body);
      (void)DecodeRequest(body);
    }
  }
}

// The transport checksum protects against accidental corruption, but
// the decoders must also stand on their own against adversarial BODIES
// (a malicious peer computes a valid checksum over malicious bytes).
TEST(NetFuzzTest, DecodersSurviveEveryBodyByteFlip) {
  std::string request_frame = SampleRequestFrame();
  std::string response_frame = SamplePageFrame();
  std::string request_body, response_body;
  ASSERT_EQ(Feed(request_frame, &request_body), FeedOutcome::kFrame);
  ASSERT_EQ(Feed(response_frame, &response_body), FeedOutcome::kFrame);

  for (size_t i = 0; i < request_body.size(); ++i) {
    for (uint8_t mask : {0x01, 0x80, 0xFF}) {
      std::string mutated = request_body;
      mutated[i] =
          static_cast<char>(static_cast<uint8_t>(mutated[i]) ^ mask);
      // Must return (ok or error), never crash or read out of bounds.
      (void)DecodeRequest(mutated);
    }
  }
  for (size_t i = 0; i < response_body.size(); ++i) {
    for (uint8_t mask : {0x01, 0x80, 0xFF}) {
      std::string mutated = response_body;
      mutated[i] =
          static_cast<char>(static_cast<uint8_t>(mutated[i]) ^ mask);
      (void)DecodeServerMessage(mutated);
    }
  }
}

TEST(NetFuzzTest, DecodersSurviveEveryBodyTruncation) {
  std::string response_frame = SamplePageFrame();
  std::string body;
  ASSERT_EQ(Feed(response_frame, &body), FeedOutcome::kFrame);
  for (size_t len = 0; len < body.size(); ++len) {
    StatusOr<WireServerMessage> decoded =
        DecodeServerMessage(std::string_view(body).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "truncated body of " << len << " accepted";
  }
  std::string request_frame = SampleRequestFrame();
  ASSERT_EQ(Feed(request_frame, &body), FeedOutcome::kFrame);
  for (size_t len = 0; len < body.size(); ++len) {
    StatusOr<WireRequest> decoded =
        DecodeRequest(std::string_view(body).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "truncated body of " << len << " accepted";
  }
}

TEST(NetFuzzTest, TrailingBytesAfterValidBodyRejected) {
  std::string body;
  ASSERT_EQ(Feed(SampleRequestFrame(), &body), FeedOutcome::kFrame);
  body.push_back('\0');
  EXPECT_FALSE(DecodeRequest(body).ok());
}

}  // namespace
}  // namespace deepcrawl
