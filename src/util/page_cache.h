// Paged on-disk storage: epoch-file shadow paging + a pinned/dirty
// clock page cache — the substrate under LocalStore's Layout::kPaged
// backend (see DESIGN.md §14).
//
// A PagedFile is one logical segment (an array of fixed-size pages)
// stored as one small file per page per version:
//
//   <dir>/<name>.p<page>.e<epoch>
//
// Every page write allocates a fresh epoch and lands through the
// checkpoint_io atomic temp+rename protocol, wrapped in the standard
// framing (magic, version, payload size, FNV-1a checksum) — a torn or
// bit-flipped page is detected on read, and a crash mid-write can
// never damage the previous epoch of the page. Epoch 0 is the virgin
// page: all zeroes, no file on disk, so untouched regions of a
// segment cost nothing and read back as zero-initialized state.
//
// Durability is deferred to checkpoint boundaries: evictions between
// checkpoints rename without fsync (crash loses them — by design; the
// recovery point is the last manifest). At checkpoint time the store
// flushes dirty frames, fsyncs every file written since the previous
// checkpoint (SyncPending), records the per-page epoch table in a
// manifest, and only then retires old epochs. Each page keeps the
// epochs referenced by the *last two* manifests on disk
// (durable_last / durable_prev), because the crawl checkpoint that
// names manifest N is written after manifest N itself — a crash in
// that window must still be able to load manifest N-1.
//
// The PageCache holds a bounded number of page frames shared by all
// segments of a store, with clock (second-chance) eviction, pin
// counts (RAII Handle), and dirty tracking. When every frame is
// pinned the cache soft-overflows by allocating an extra frame rather
// than deadlocking. Hot-path I/O failures abort via DEEPCRAWL_CHECK;
// checkpoint/recovery paths return Status.

#ifndef DEEPCRAWL_UTIL_PAGE_CACHE_H_
#define DEEPCRAWL_UTIL_PAGE_CACHE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/util/logging.h"
#include "src/util/status.h"

namespace deepcrawl {

class CheckpointReader;
class CheckpointWriter;

// On-disk page frame format version (framing payload = one page).
inline constexpr uint32_t kPageFormatVersion = 1;

// One logical segment: a growable array of fixed-size pages, each
// stored as an epoch-versioned file. Not thread-safe (the paged store
// is single-writer by construction).
class PagedFile {
 public:
  // `dir` must exist; `page_bytes` is the fixed page payload size.
  PagedFile(std::string dir, std::string name, uint32_t page_bytes);

  const std::string& name() const { return name_; }
  uint32_t page_bytes() const { return page_bytes_; }
  uint64_t num_pages() const { return pages_.size(); }

  // Grows the page directory (new pages are virgin: epoch 0).
  void EnsurePages(uint64_t n);

  // Reads page `page` into `out` (exactly page_bytes). Virgin pages
  // read as zeroes. Validates framing + checksum; any corruption or
  // I/O failure is a clean error.
  Status ReadPage(uint64_t page, char* out) const;

  // Writes page `page` (exactly page_bytes) under a fresh epoch with
  // a deferred-sync atomic rename, then deletes the superseded epoch
  // file unless a manifest still references it. Durable only after
  // the next SyncPending().
  Status WritePage(uint64_t page, const char* data);

  // fsyncs every file written since the last SyncPending (plus the
  // directory, once). Part of the checkpoint protocol.
  Status SyncPending();

  // Called after a manifest referencing the current epochs has been
  // durably written: slides the per-page durable window
  // (prev <- last <- current) and deletes epoch files that fell out.
  void CommitDurable();

  // Serializes / restores the per-page epoch table for the manifest.
  // LoadMeta resets the durable window to the loaded epochs.
  void AppendMeta(CheckpointWriter& w) const;
  Status LoadMeta(CheckpointReader& r);

  // Deletes every <name>.p*.e* file in the directory that the current
  // epoch table does not reference — crash leftovers from a run that
  // died after this manifest was written. Call after LoadMeta.
  Status SweepOrphans() const;

  // Appends the full paths of every file this segment may still have
  // on disk (current + durable-window epochs, deduplicated) — what a
  // retiring hash generation schedules for deferred deletion.
  void AppendOnDiskPaths(std::vector<std::string>& out) const;
  // Appends the filenames of the current epoch of every non-virgin
  // page — the reference set for a post-load directory sweep.
  void AppendCurrentFileNames(std::vector<std::string>& out) const;

  // Filename (not path) of page `page` at epoch `epoch`.
  std::string PageFileName(uint64_t page, uint64_t epoch) const;
  // True when `filename` names a page of this segment; sets outputs.
  bool ParsePageFileName(const std::string& filename, uint64_t* page,
                         uint64_t* epoch) const;

 private:
  struct PageState {
    uint64_t current = 0;       // latest written epoch (0 = virgin)
    uint64_t durable_last = 0;  // epoch referenced by the last manifest
    uint64_t durable_prev = 0;  // epoch referenced by the one before
  };

  std::string PagePath(uint64_t page, uint64_t epoch) const;
  void RemoveIfUnprotected(uint64_t page, uint64_t epoch);

  std::string dir_;
  std::string name_;
  uint32_t page_bytes_;
  uint64_t next_epoch_ = 1;
  std::vector<PageState> pages_;
  // Paths written deferred-sync since the last SyncPending.
  std::unordered_set<std::string> pending_sync_;
};

struct PageCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;  // dirty frames written out on eviction
};

// Bounded pool of page frames over any number of registered
// PagedFiles, with clock eviction, pin counts, and dirty tracking.
class PageCache {
 public:
  PageCache(uint32_t page_bytes, uint32_t capacity_frames);

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  // Registers a segment; the returned id keys every Acquire. The file
  // must outlive the cache (or be dropped with DropFile first).
  uint32_t RegisterFile(PagedFile* file);

  // RAII pin on a cached page frame. The frame pointer stays valid and
  // unevictable until the handle is destroyed.
  class Handle {
   public:
    Handle() = default;
    Handle(PageCache* cache, uint32_t frame)
        : cache_(cache), frame_(frame) {}
    Handle(Handle&& other) noexcept { *this = std::move(other); }
    Handle& operator=(Handle&& other) noexcept {
      Release();
      cache_ = other.cache_;
      frame_ = other.frame_;
      other.cache_ = nullptr;
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { Release(); }

    char* data() { return cache_->frames_[frame_].data.data(); }
    const char* data() const { return cache_->frames_[frame_].data.data(); }
    // Must be called before (or after) mutating data(): marks the
    // frame for writeback on eviction/flush.
    void MarkDirty() { cache_->frames_[frame_].dirty = true; }

   private:
    void Release() {
      if (cache_ != nullptr) {
        DEEPCRAWL_DCHECK(cache_->frames_[frame_].pins > 0);
        --cache_->frames_[frame_].pins;
        cache_ = nullptr;
      }
    }
    PageCache* cache_ = nullptr;
    uint32_t frame_ = 0;
  };

  // Pins page (`file_id`, `page`) in a frame, faulting it in (and
  // evicting a victim) as needed. Grows the file's page directory on
  // access past the end. Aborts on I/O error — this is the hot path;
  // recovery-time validation goes through PagedFile directly.
  Handle Acquire(uint32_t file_id, uint64_t page);

  // Writes every dirty frame (deferred-sync) across all files,
  // clearing dirty bits; frames stay cached. Checkpoint step 1.
  Status FlushAll();

  // Invalidates every frame of `file_id` (all must be unpinned);
  // dirty contents are discarded — callers flush first if they matter.
  void DropFile(uint32_t file_id);

  // Severs a registered file (after DropFile) so its PagedFile can be
  // destroyed — used when a hash segment retires an old generation.
  // The id is not reused; acquiring through it aborts.
  void UnregisterFile(uint32_t file_id);

  const PageCacheStats& stats() const { return stats_; }
  uint32_t capacity_frames() const { return capacity_frames_; }

 private:
  friend class Handle;

  struct Frame {
    std::vector<char> data;
    uint32_t file_id = 0;
    uint64_t page = 0;
    uint32_t pins = 0;
    bool dirty = false;
    bool referenced = false;
    bool valid = false;
  };

  static uint64_t FrameKey(uint32_t file_id, uint64_t page) {
    // page indexes never approach 2^40 in practice (directories grow
    // one page at a time); assert instead of silently aliasing.
    DEEPCRAWL_DCHECK(page < (1ull << 40)) << "page index overflow";
    return (static_cast<uint64_t>(file_id) << 40) | page;
  }

  // Picks (evicting if needed) a frame for a new page. Clock sweep
  // with second chance; soft-overflows when everything is pinned.
  uint32_t ReclaimFrame();

  uint32_t page_bytes_;
  uint32_t capacity_frames_;
  std::vector<PagedFile*> files_;
  std::vector<Frame> frames_;
  std::unordered_map<uint64_t, uint32_t> frame_of_;
  size_t clock_hand_ = 0;
  PageCacheStats stats_;
};

// Fixed-stride element array over one PagedFile + cache: the paged
// analogue of std::vector<T> for trivially copyable T. Elements never
// straddle pages (stride = page_bytes / sizeof(T)); untouched
// elements read as value-zero (virgin pages). Logical size is the
// caller's business — this is pure random access.
template <typename T>
class PagedArray {
 public:
  PagedArray() = default;
  PagedArray(PageCache* cache, PagedFile* file, uint32_t file_id)
      : cache_(cache), file_id_(file_id) {
    static_assert(std::is_trivially_copyable_v<T>);
    per_page_ = file->page_bytes() / sizeof(T);
    DEEPCRAWL_CHECK(per_page_ > 0)
        << "page size " << file->page_bytes() << " below element size";
  }

  T Get(uint64_t i) const {
    PageCache::Handle h = cache_->Acquire(file_id_, i / per_page_);
    T out;
    std::memcpy(&out, h.data() + (i % per_page_) * sizeof(T), sizeof(T));
    return out;
  }

  void Set(uint64_t i, const T& v) {
    PageCache::Handle h = cache_->Acquire(file_id_, i / per_page_);
    h.MarkDirty();
    std::memcpy(h.data() + (i % per_page_) * sizeof(T), &v, sizeof(T));
  }

  // Bulk copy-out of [i, i+n) into dst, page by page.
  void Load(uint64_t i, T* dst, size_t n) const {
    while (n > 0) {
      uint64_t page = i / per_page_;
      size_t at = i % per_page_;
      size_t run = std::min<size_t>(n, per_page_ - at);
      PageCache::Handle h = cache_->Acquire(file_id_, page);
      std::memcpy(dst, h.data() + at * sizeof(T), run * sizeof(T));
      dst += run;
      i += run;
      n -= run;
    }
  }

  // Bulk store of [i, i+n) from src, page by page.
  void Store(uint64_t i, const T* src, size_t n) {
    while (n > 0) {
      uint64_t page = i / per_page_;
      size_t at = i % per_page_;
      size_t run = std::min<size_t>(n, per_page_ - at);
      PageCache::Handle h = cache_->Acquire(file_id_, page);
      h.MarkDirty();
      std::memcpy(h.data() + at * sizeof(T), src, run * sizeof(T));
      src += run;
      i += run;
      n -= run;
    }
  }

  uint64_t elements_per_page() const { return per_page_; }

 private:
  PageCache* cache_ = nullptr;
  uint32_t file_id_ = 0;
  uint64_t per_page_ = 0;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_UTIL_PAGE_CACHE_H_
