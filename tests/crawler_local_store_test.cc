#include "src/crawler/local_store.h"

#include <gtest/gtest.h>

#include <vector>

namespace deepcrawl {
namespace {

std::vector<ValueId> V(std::initializer_list<ValueId> ids) { return ids; }

TEST(LocalStoreTest, AddRecordDeduplicatesByRecordId) {
  LocalStore store;
  EXPECT_TRUE(store.AddRecord(7, V({1, 2, 3})));
  EXPECT_FALSE(store.AddRecord(7, V({1, 2, 3})));
  EXPECT_EQ(store.num_records(), 1u);
  EXPECT_TRUE(store.ContainsRecord(7));
  EXPECT_FALSE(store.ContainsRecord(8));
}

TEST(LocalStoreTest, LocalFrequencyCountsRecords) {
  LocalStore store;
  store.AddRecord(0, V({1, 2}));
  store.AddRecord(1, V({2, 3}));
  store.AddRecord(2, V({2, 4}));
  EXPECT_EQ(store.LocalFrequency(2), 3u);
  EXPECT_EQ(store.LocalFrequency(1), 1u);
  EXPECT_EQ(store.LocalFrequency(99), 0u);  // never seen
}

TEST(LocalStoreTest, ExactDegreesCountDistinctNeighbors) {
  LocalStore store;
  store.AddRecord(0, V({1, 2, 3}));
  store.AddRecord(1, V({1, 2, 4}));
  // Value 1 co-occurs with {2, 3, 4}: degree 3 despite 2 occurring twice.
  EXPECT_EQ(store.LocalDegree(1), 3u);
  EXPECT_EQ(store.LocalDegree(3), 2u);
  EXPECT_EQ(store.LocalDegree(99), 0u);
}

TEST(LocalStoreTest, LinkCountModeCountsWithMultiplicity) {
  LocalStore::Options options;
  options.exact_degrees = false;
  LocalStore store(options);
  store.AddRecord(0, V({1, 2, 3}));
  store.AddRecord(1, V({1, 2, 4}));
  // Value 1: (3-1) + (3-1) = 4 link endpoints.
  EXPECT_EQ(store.LocalDegree(1), 4u);
}

TEST(LocalStoreTest, PostingsTrackSlots) {
  LocalStore store;
  store.AddRecord(10, V({5}));
  store.AddRecord(20, V({5, 6}));
  auto postings = store.LocalPostings(5);
  ASSERT_EQ(postings.size(), 2u);
  EXPECT_EQ(postings[0], 0u);
  EXPECT_EQ(postings[1], 1u);
  EXPECT_EQ(store.OriginalRecordId(0), 10u);
  EXPECT_EQ(store.OriginalRecordId(1), 20u);
  EXPECT_TRUE(store.LocalPostings(99).empty());
}

TEST(LocalStoreTest, RecordValuesRoundTrip) {
  LocalStore store;
  store.AddRecord(3, V({9, 4, 7}));
  auto values = store.RecordValues(0);
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0], 9u);  // stored in given order
  EXPECT_EQ(values[1], 4u);
  EXPECT_EQ(values[2], 7u);
}

TEST(LocalStoreTest, NumValuesSeenGrowsWithMaxId) {
  LocalStore store;
  EXPECT_EQ(store.num_values_seen(), 0u);
  store.AddRecord(0, V({100}));
  EXPECT_EQ(store.num_values_seen(), 101u);  // dense id space
  EXPECT_EQ(store.LocalFrequency(50), 0u);
}

TEST(LocalStoreTest, NeighborsSpanListsDistinctNeighborsInDiscoveryOrder) {
  LocalStore store;
  store.AddRecord(0, V({1, 2, 3}));
  store.AddRecord(1, V({1, 4, 2}));  // edge 1-2 already known, 1-4 and 4-2 new
  auto n1 = store.NeighborsSpan(1);
  ASSERT_EQ(n1.size(), 3u);
  EXPECT_EQ(n1[0], 2u);  // first co-occurrence order, duplicates elided
  EXPECT_EQ(n1[1], 3u);
  EXPECT_EQ(n1[2], 4u);
  auto n4 = store.NeighborsSpan(4);
  ASSERT_EQ(n4.size(), 2u);
  EXPECT_EQ(n4[0], 1u);
  EXPECT_EQ(n4[1], 2u);
  EXPECT_TRUE(store.NeighborsSpan(99).empty());
}

TEST(LocalStoreTest, NeighborsSpanEmptyInProxyDegreeMode) {
  LocalStore::Options options;
  options.exact_degrees = false;
  LocalStore store(options);
  store.AddRecord(0, V({1, 2, 3}));
  EXPECT_TRUE(store.NeighborsSpan(1).empty());  // adjacency not materialized
  EXPECT_EQ(store.LocalDegree(1), 2u);
}

TEST(LocalStoreTest, CsrAndReferenceLayoutsAreObservationallyIdentical) {
  LocalStore::Options reference_options;
  reference_options.layout = LocalStore::Layout::kReference;
  LocalStore csr;  // default layout is kCsr
  LocalStore reference(reference_options);
  // Overlapping records with intra-record duplicates to stress dedup.
  const std::vector<std::vector<ValueId>> records = {
      {1, 2, 3}, {2, 3, 4}, {5, 5, 1}, {4, 1, 2, 2}, {6}, {3, 6, 5},
  };
  for (RecordId id = 0; id < records.size(); ++id) {
    EXPECT_EQ(csr.AddRecord(id, records[id]),
              reference.AddRecord(id, records[id]));
  }
  ASSERT_EQ(csr.num_values_seen(), reference.num_values_seen());
  for (ValueId v = 0; v < csr.num_values_seen(); ++v) {
    EXPECT_EQ(csr.LocalDegree(v), reference.LocalDegree(v)) << v;
    EXPECT_EQ(csr.LocalFrequency(v), reference.LocalFrequency(v)) << v;
    auto csr_neighbors = csr.NeighborsSpan(v);
    auto ref_neighbors = reference.NeighborsSpan(v);
    ASSERT_EQ(csr_neighbors.size(), ref_neighbors.size()) << v;
    for (size_t i = 0; i < csr_neighbors.size(); ++i) {
      EXPECT_EQ(csr_neighbors[i], ref_neighbors[i]) << v << "/" << i;
    }
    auto csr_postings = csr.LocalPostings(v);
    auto ref_postings = reference.LocalPostings(v);
    ASSERT_EQ(csr_postings.size(), ref_postings.size()) << v;
    for (size_t i = 0; i < csr_postings.size(); ++i) {
      EXPECT_EQ(csr_postings[i], ref_postings[i]) << v << "/" << i;
    }
  }
}

TEST(LocalStoreTest, NeighborsSpanSizeMatchesLocalDegree) {
  LocalStore store;
  // Chain with a hub: enough growth to relocate CSR rows repeatedly.
  for (RecordId id = 0; id < 200; ++id) {
    store.AddRecord(id, V({0, static_cast<ValueId>(id + 1),
                           static_cast<ValueId>(id + 2)}));
  }
  for (ValueId v = 0; v < store.num_values_seen(); ++v) {
    EXPECT_EQ(store.NeighborsSpan(v).size(), store.LocalDegree(v)) << v;
  }
  EXPECT_EQ(store.LocalDegree(0), 201u);  // hub saw every other value
}

TEST(LocalStoreDeathTest, EmptyRecordAborts) {
  LocalStore store;
  EXPECT_DEATH(store.AddRecord(0, {}), "no values");
}

}  // namespace
}  // namespace deepcrawl
