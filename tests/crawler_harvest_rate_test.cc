// Tests of the shared windowed harvest-rate estimator (HarvestRateEwma)
// used by both the CrawlFleet scheduler and the AdaptiveSelector's
// phase-switch rule. The estimator is serialized field-for-field into
// fleet checkpoints, so its semantics are part of the resume contract.

#include "src/crawler/harvest_rate.h"

#include <gtest/gtest.h>

namespace deepcrawl {
namespace {

TEST(HarvestRateEwmaTest, FirstObservationLatches) {
  HarvestRateEwma ewma;
  EXPECT_FALSE(ewma.seen);
  ewma.Observe(0.3, 4.0, 0.25);
  EXPECT_TRUE(ewma.seen);
  // No blend against the zero prior: the first sample IS the estimate.
  EXPECT_DOUBLE_EQ(ewma.hr, 4.0);
  EXPECT_DOUBLE_EQ(ewma.err, 0.25);
}

TEST(HarvestRateEwmaTest, LaterObservationsBlendWithAlpha) {
  HarvestRateEwma ewma;
  ewma.Observe(0.5, 10.0, 0.0);
  ewma.Observe(0.5, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(ewma.hr, 5.0);
  EXPECT_DOUBLE_EQ(ewma.err, 0.5);
  ewma.Observe(0.5, 5.0, 0.5);
  EXPECT_DOUBLE_EQ(ewma.hr, 5.0);
  EXPECT_DOUBLE_EQ(ewma.err, 0.5);
}

TEST(HarvestRateEwmaTest, SmallAlphaForgetsSlowly) {
  HarvestRateEwma fast, slow;
  fast.Observe(0.9, 10.0, 0.0);
  slow.Observe(0.1, 10.0, 0.0);
  fast.Observe(0.9, 0.0, 0.0);
  slow.Observe(0.1, 0.0, 0.0);
  // One zero sample: the high-alpha estimator collapses, the low-alpha
  // one barely moves.
  EXPECT_LT(fast.hr, 2.0);
  EXPECT_GT(slow.hr, 8.0);
}

TEST(HarvestRateEwmaTest, ScoreAppliesFloorToUnprovenSources) {
  HarvestRateEwma ewma;
  ewma.Observe(0.3, 0.1, 0.0);
  // The floor keeps a cold source's score from rounding to zero, so the
  // scheduler keeps probing it.
  EXPECT_DOUBLE_EQ(ewma.Score(0.5), 0.5);
  // Above the floor the real rate wins.
  ewma.Observe(1.0, 3.0, 0.0);
  EXPECT_DOUBLE_EQ(ewma.Score(0.5), 3.0);
}

TEST(HarvestRateEwmaTest, ScoreDiscountsByErrorRate) {
  HarvestRateEwma ewma;
  ewma.Observe(1.0, 4.0, 0.25);
  EXPECT_DOUBLE_EQ(ewma.Score(0.0), 3.0);  // 4 * (1 - 0.25)
  // An error rate at or past 1 zeroes the score, never negates it.
  ewma.Observe(1.0, 4.0, 1.5);
  EXPECT_DOUBLE_EQ(ewma.Score(0.0), 0.0);
}

TEST(HarvestRateEwmaTest, DefaultConstructedScoresAtFloor) {
  HarvestRateEwma ewma;
  EXPECT_DOUBLE_EQ(ewma.Score(0.75), 0.75);
}

}  // namespace
}  // namespace deepcrawl
