// ValueCatalog: interning of distinct attribute values.
//
// The distinct attribute value set DAV of the paper (§2.1) is represented
// as a dense id space: each distinct (attribute, text) pair receives one
// ValueId in insertion order. The catalog is append-only; ids are stable.

#ifndef DEEPCRAWL_RELATION_VALUE_CATALOG_H_
#define DEEPCRAWL_RELATION_VALUE_CATALOG_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/relation/types.h"

namespace deepcrawl {

class ValueCatalog {
 public:
  ValueCatalog() = default;

  // Returns the id of (attr, text), interning it on first sight.
  ValueId Intern(AttributeId attr, std::string_view text);

  // Returns the id of (attr, text) or kInvalidValueId when absent.
  ValueId Find(AttributeId attr, std::string_view text) const;

  AttributeId attribute_of(ValueId id) const;
  const std::string& text_of(ValueId id) const;

  size_t size() const { return attrs_.size(); }

 private:
  struct Key {
    AttributeId attr;
    std::string text;
    bool operator==(const Key& other) const {
      return attr == other.attr && text == other.text;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      // Mix the attribute into the string hash (splitmix-style finisher).
      size_t h = std::hash<std::string>()(key.text);
      h ^= static_cast<size_t>(key.attr) + 0x9e3779b97f4a7c15ULL +
           (h << 6) + (h >> 2);
      return h;
    }
  };

  std::unordered_map<Key, ValueId, KeyHash> by_key_;
  std::vector<AttributeId> attrs_;   // indexed by ValueId
  std::vector<std::string> texts_;   // indexed by ValueId
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_RELATION_VALUE_CATALOG_H_
