// Shared helpers for the experiment harnesses in bench/.
//
// Every binary in this directory regenerates one table or figure of the
// paper. Conventions:
//   * print a banner stating the paper artifact, the paper's original
//     configuration, and the scale this run uses;
//   * run the experiment deterministically (fixed seeds);
//   * print aligned text tables via TablePrinter.

// Machine-readable results: every bench accepts --json=<path> and then
// emits a BENCH_<name>.json of named metrics via BenchJson below;
// tools/bench_compare.py diffs such files against the committed
// baselines and tools/check.sh's perf pass fails the build on >20%
// regression. See README "Benchmarking".

#ifndef DEEPCRAWL_BENCH_BENCH_COMMON_H_
#define DEEPCRAWL_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/crawler/crawl_engine.h"
#include "src/crawler/local_store.h"
#include "src/crawler/parallel_crawler.h"
#include "src/crawler/query_selector.h"
#include "src/relation/table.h"
#include "src/server/query_interface.h"
#include "src/server/web_db_server.h"
#include "src/util/logging.h"
#include "src/util/table_printer.h"

namespace deepcrawl {
namespace bench {

inline void PrintBanner(const std::string& artifact,
                        const std::string& paper_setup,
                        const std::string& this_run) {
  std::cout << "\n=== " << artifact << " ===\n"
            << "paper setup: " << paper_setup << "\n"
            << "this run:    " << this_run << "\n\n";
}

// Runs one crawl of `server` (any QueryInterface — the bare simulator or
// a fault-injecting proxy) with `selector`, seeded with `seed_value`,
// and returns the result. Resets the server meters first so rounds are
// per-crawl. Aborts on crawl errors (bench fixtures are valid).
inline CrawlResult RunCrawl(QueryInterface& server, QuerySelector& selector,
                            LocalStore& store, const CrawlOptions& options,
                            ValueId seed_value,
                            const RetryPolicy* retry_policy = nullptr) {
  server.ResetMeters();
  CrawlEngine engine(server, selector, store, options, EngineOptions{},
                     /*abort_policy=*/nullptr, retry_policy);
  engine.AddSeed(seed_value);
  StatusOr<CrawlResult> result = engine.Run();
  DEEPCRAWL_CHECK(result.ok()) << result.status().ToString();
  return std::move(*result);
}

// Parallel counterpart of RunCrawl: crawls through the batched wave
// engine. `server` must already be thread-safe when parallel.threads >
// 1 (wrap it in a LockedQueryInterface). The caller's trace/coverage
// expectations carry over: batch == 1 reproduces RunCrawl exactly.
inline CrawlResult RunParallelCrawl(QueryInterface& server,
                                    QuerySelector& selector, LocalStore& store,
                                    const CrawlOptions& options,
                                    const ParallelOptions& parallel,
                                    ValueId seed_value,
                                    const RetryPolicy* retry_policy = nullptr) {
  server.ResetMeters();
  EngineOptions engine_options;
  engine_options.threads = parallel.threads;
  engine_options.batch = parallel.batch;
  CrawlEngine engine(server, selector, store, options, engine_options,
                     /*abort_policy=*/nullptr, retry_policy);
  engine.AddSeed(seed_value);
  StatusOr<CrawlResult> result = engine.Run();
  DEEPCRAWL_CHECK(result.ok()) << result.status().ToString();
  return std::move(*result);
}

// Deterministic seed value for run `i` of a table: spreads seeds across
// the value id space, skipping values with no matching records (the
// catalog may also hold domain-table entries the target never returns —
// a crawl seeded with one of those would die on its first query).
inline ValueId SeedValue(const Table& table, uint32_t i) {
  DEEPCRAWL_CHECK_GT(table.num_distinct_values(), 0u);
  DEEPCRAWL_CHECK_GT(table.num_records(), 0u);
  uint64_t n = table.num_distinct_values();
  ValueId v = static_cast<ValueId>((1 + 2654435761ull * (i + 1)) % n);
  while (table.value_frequency(v) == 0) {
    v = static_cast<ValueId>((static_cast<uint64_t>(v) + 1) % n);
  }
  return v;
}

// --- BENCH_*.json emission -------------------------------------------

// One named measurement. `higher_is_better` tells bench_compare.py which
// direction is a regression (throughput vs rounds/wall-clock).
struct BenchMetric {
  std::string name;
  double value = 0.0;
  std::string unit;
  bool higher_is_better = true;
};

// Collects metrics and writes the flat JSON document the comparison
// tooling consumes:
//   { "bench": "<name>",
//     "metrics": [ {"name": ..., "value": ..., "unit": ...,
//                   "higher_is_better": ...}, ... ] }
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void Add(std::string name, double value, std::string unit,
           bool higher_is_better) {
    metrics_.push_back(BenchMetric{std::move(name), value, std::move(unit),
                                   higher_is_better});
  }

  std::string ToJson() const {
    std::ostringstream out;
    out << "{\n  \"bench\": \"" << bench_name_ << "\",\n  \"metrics\": [\n";
    for (size_t i = 0; i < metrics_.size(); ++i) {
      const BenchMetric& m = metrics_[i];
      out << "    {\"name\": \"" << m.name << "\", \"value\": " << m.value
          << ", \"unit\": \"" << m.unit << "\", \"higher_is_better\": "
          << (m.higher_is_better ? "true" : "false") << "}"
          << (i + 1 < metrics_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return out.str();
  }

  // Writes the document; aborts on I/O failure (bench harness context).
  void WriteFile(const std::string& path) const {
    std::ofstream out(path);
    DEEPCRAWL_CHECK(out.good()) << "cannot open " << path;
    out << ToJson();
    DEEPCRAWL_CHECK(out.good()) << "write failed: " << path;
    std::cout << "json metrics written to: " << path << "\n";
  }

 private:
  std::string bench_name_;
  std::vector<BenchMetric> metrics_;
};

// Extracts the --json=<path> argument, if any (empty string = absent).
inline std::string JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    constexpr std::string_view kPrefix = "--json=";
    if (arg.substr(0, kPrefix.size()) == kPrefix) {
      return std::string(arg.substr(kPrefix.size()));
    }
  }
  return "";
}

// Best-of-N timing helper: runs `body` until both `min_reps` runs and
// `min_seconds` of total wall-clock have accumulated, and returns the
// fastest single-run time in seconds (the standard noise-resistant
// estimator for deterministic workloads).
template <typename Body>
double BestWallSeconds(Body&& body, int min_reps = 3,
                       double min_seconds = 0.3) {
  double best = 0.0;
  double total = 0.0;
  for (int rep = 0; rep < min_reps || total < min_seconds; ++rep) {
    auto start = std::chrono::steady_clock::now();
    body();
    double seconds = std::chrono::duration_cast<
                         std::chrono::duration<double>>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    if (rep == 0 || seconds < best) best = seconds;
    total += seconds;
  }
  return best;
}

}  // namespace bench
}  // namespace deepcrawl

#endif  // DEEPCRAWL_BENCH_BENCH_COMMON_H_
