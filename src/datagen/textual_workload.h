// Textual-database workload generation.
//
// The paper's Table 1 justifies single-attribute equality queries for
// structured sources, but the related work (Gupta & Bhatia's term-weight
// crawler; Calì et al.'s "Keyword Search in the Deep Web") targets
// free-text sources: a document is a bag of terms, a query is one term
// typed into a search box, and the source answers with every document
// containing it — under any field. This generator produces such sources
// as ordinary Tables so the whole stack (WebDbServer's keyword token
// dictionary, FaultyServer, the TCP wire protocol, the fleet) works
// unchanged:
//
//   * one global term vocabulary with Zipf-distributed popularity
//     (realistic term frequency; exponent ~1 per the classic fit);
//   * every document carries a short "title" and a longer "body" term
//     bag drawn from the SAME vocabulary, so a term's keyword postings
//     genuinely union two columns;
//   * topic structure: each document samples its terms from a biased
//     slice of the vocabulary chosen by a per-document topic draw — the
//     co-occurrence dependency (§3.3) that makes popular terms return
//     overlapping documents;
//   * mixed mode adds structured columns (a unique doc id and a small
//     category pool), modelling sources that expose both a search box
//     and form fields.
//
// Ground truth for harvest accounting is simply the generated Table:
// true_record_count() flows through the existing coverage machinery.
// There is no exact OPT ground truth for these workloads (computing the
// optimal keyword cover is the set-cover instance the paper dodges), so
// comparison tools print n/a for cost/OPT.

#ifndef DEEPCRAWL_DATAGEN_TEXTUAL_WORKLOAD_H_
#define DEEPCRAWL_DATAGEN_TEXTUAL_WORKLOAD_H_

#include <cstdint>

#include "src/relation/table.h"
#include "src/util/status.h"

namespace deepcrawl {

struct TextualDbConfig {
  uint32_t num_documents = 2000;
  // Global vocabulary size; term texts are "t<rank>".
  uint32_t vocabulary = 3000;
  // Zipf exponent of term popularity within a topic slice.
  double term_exponent = 1.0;
  // Number of topics; each document draws one topic uniformly and takes
  // a fraction of its terms from that topic's vocabulary slice.
  uint32_t num_topics = 12;
  // Probability a term draw comes from the document's topic slice
  // (the rest come from the global vocabulary).
  double topic_affinity = 0.7;
  // Term-bag lengths, inclusive ranges; duplicates within one field are
  // dropped (a document lists each term once per field).
  uint32_t title_terms_min = 2;
  uint32_t title_terms_max = 4;
  uint32_t body_terms_min = 6;
  uint32_t body_terms_max = 14;
  // Mixed mode: add structured columns next to the term bags.
  bool mixed = false;
  // Category pool size for mixed mode (Zipf-popular, presence 1.0).
  uint32_t num_categories = 20;
  uint64_t seed = 1u;
};

// Generates a textual (or mixed structured+textual) database. Columns:
// "title" and "body" term bags; mixed mode adds "docid" (unique) and
// "category". Returns InvalidArgument on nonsensical configs.
StatusOr<Table> GenerateTextualTable(const TextualDbConfig& config);

}  // namespace deepcrawl

#endif  // DEEPCRAWL_DATAGEN_TEXTUAL_WORKLOAD_H_
