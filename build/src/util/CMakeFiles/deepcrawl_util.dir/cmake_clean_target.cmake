file(REMOVE_RECURSE
  "libdeepcrawl_util.a"
)
