# Empty dependencies file for size_probe.
# This may be replaced when dependencies are built.
