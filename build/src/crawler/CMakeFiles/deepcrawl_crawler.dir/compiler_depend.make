# Empty compiler generated dependencies file for deepcrawl_crawler.
# This may be replaced when dependencies are built.
