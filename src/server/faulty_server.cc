#include "src/server/faulty_server.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/util/logging.h"

namespace deepcrawl {

namespace {

// SplitMix64 finalizer (same construction as the retry-jitter hash):
// stateless, so keyed fault decisions depend only on their inputs.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// FNV-1a over text queries: stable across runs and platforms (std::hash
// makes no such promise), so keyed fault streams stay reproducible.
uint64_t HashText(std::string_view text) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Query-identity keys. The leading tag separates the five interface
// methods so e.g. FetchPage(v) and FetchPageKeywordOf(v) draw
// independent fault streams.
uint64_t KeyOfValue(uint64_t tag, ValueId value) {
  return Mix64((tag << 56) ^ value);
}

uint64_t KeyOfText(uint64_t tag, uint64_t attr, std::string_view text) {
  return Mix64((tag << 56) ^ (attr << 40) ^ HashText(text));
}

uint64_t KeyOfValues(uint64_t tag, std::span<const ValueId> values) {
  uint64_t h = tag << 56;
  for (ValueId v : values) h = Mix64(h ^ v);
  return h;
}

}  // namespace

FaultyServer::FaultyServer(QueryInterface& inner, FaultProfile profile,
                           uint64_t seed)
    : inner_(inner), profile_(profile), seed_(seed), rng_(seed) {
  double sum = profile_.unavailable_rate + profile_.timeout_rate +
               profile_.rate_limit_rate + profile_.truncate_rate +
               profile_.duplicate_rate;
  DEEPCRAWL_CHECK(sum <= 1.0 + 1e-9) << "fault rates sum to " << sum;
  DEEPCRAWL_CHECK(profile_.unavailable_rate >= 0.0 &&
                  profile_.timeout_rate >= 0.0 &&
                  profile_.rate_limit_rate >= 0.0 &&
                  profile_.truncate_rate >= 0.0 &&
                  profile_.duplicate_rate >= 0.0)
      << "fault rates must be non-negative";
}

void FaultyServer::set_schedule(FaultSchedule schedule) {
  schedule_ = std::move(schedule);
  schedule_pos_ = 0;
}

FaultAction FaultyServer::NextAction(uint64_t query_key,
                                     uint32_t page_number) {
  if (schedule_pos_ < schedule_.size()) return schedule_[schedule_pos_++];
  if (profile_.IsAllZero()) return FaultAction::kNone;
  double u;
  if (keyed_) {
    // Keyed draw: a pure function of (seed, query, page, attempt) —
    // identical for the same logical fetch no matter the arrival order.
    uint64_t page_key =
        Mix64(query_key ^ (static_cast<uint64_t>(page_number) << 32));
    uint32_t attempt = ++keyed_attempts_[page_key];
    uint64_t h = Mix64(seed_ ^ Mix64(page_key ^ attempt));
    u = static_cast<double>(h >> 11) * 0x1.0p-53;
  } else {
    // One uniform draw per fetch keeps the decision sequence a pure
    // function of (seed, call index), independent of which fault fires.
    u = rng_.NextDouble();
  }
  double threshold = profile_.unavailable_rate;
  if (u < threshold) return FaultAction::kUnavailable;
  threshold += profile_.timeout_rate;
  if (u < threshold) return FaultAction::kTimeout;
  threshold += profile_.rate_limit_rate;
  if (u < threshold) return FaultAction::kRateLimit;
  threshold += profile_.truncate_rate;
  if (u < threshold) return FaultAction::kTruncate;
  threshold += profile_.duplicate_rate;
  if (u < threshold) return FaultAction::kDuplicate;
  return FaultAction::kNone;
}

Status FaultyServer::InjectFailure(FaultAction action, uint32_t page_number) {
  // The rejected round trip still happened: charge it here, because the
  // backend never saw the call.
  ++injected_failure_rounds_;
  if (page_number == 0) ++injected_failure_queries_;
  switch (action) {
    case FaultAction::kUnavailable:
      ++counters_.unavailable;
      return Status::Unavailable("source temporarily unavailable");
    case FaultAction::kTimeout:
      ++counters_.timeouts;
      return Status::DeadlineExceeded("page fetch timed out");
    case FaultAction::kRateLimit:
      ++counters_.rate_limited;
      return Status::ResourceExhausted("rate limited")
          .WithRetryAfter(profile_.retry_after_rounds);
    default:
      break;
  }
  DEEPCRAWL_CHECK(false) << "not a failure action";
  return Status::Internal("unreachable");
}

void FaultyServer::MutatePage(FaultAction action, ResultPage& page) {
  if (action == FaultAction::kTruncate) {
    // Silently drop the trailing half of the page (at least one record).
    // `has_more` is left untouched: the client cannot tell the listing
    // was short, exactly like a flaky real-world result page.
    if (page.records.empty()) return;
    size_t drop = std::max<size_t>(1, page.records.size() / 2);
    page.records.resize(page.records.size() - drop);
    ++counters_.truncated_pages;
    return;
  }
  if (action == FaultAction::kDuplicate) {
    // Echo the first record again in the last slot, silently hiding the
    // record that was there.
    if (page.records.size() < 2) return;
    page.records.back() = page.records.front();
    ++counters_.duplicated_records;
    return;
  }
}

template <typename Fetch>
StatusOr<ResultPage> FaultyServer::Dispatch(uint64_t query_key,
                                            uint32_t page_number,
                                            Fetch&& fetch) {
  FaultAction action = NextAction(query_key, page_number);
  switch (action) {
    case FaultAction::kUnavailable:
    case FaultAction::kTimeout:
    case FaultAction::kRateLimit:
      return InjectFailure(action, page_number);
    default:
      break;
  }
  StatusOr<ResultPage> fetched = fetch();
  if (fetched.ok() && action != FaultAction::kNone) {
    MutatePage(action, *fetched);
  }
  return fetched;
}

StatusOr<ResultPage> FaultyServer::FetchPage(ValueId value,
                                             uint32_t page_number) {
  return Dispatch(KeyOfValue(1, value), page_number,
                  [&] { return inner_.FetchPage(value, page_number); });
}

StatusOr<ResultPage> FaultyServer::FetchPageByText(AttributeId attr,
                                                   std::string_view text,
                                                   uint32_t page_number) {
  return Dispatch(KeyOfText(2, attr, text), page_number, [&] {
    return inner_.FetchPageByText(attr, text, page_number);
  });
}

StatusOr<ResultPage> FaultyServer::FetchPageByKeyword(std::string_view text,
                                                      uint32_t page_number) {
  return Dispatch(KeyOfText(3, 0, text), page_number, [&] {
    return inner_.FetchPageByKeyword(text, page_number);
  });
}

StatusOr<ResultPage> FaultyServer::FetchPageConjunctive(
    std::span<const ValueId> values, uint32_t page_number) {
  return Dispatch(KeyOfValues(4, values), page_number, [&] {
    return inner_.FetchPageConjunctive(values, page_number);
  });
}

StatusOr<ResultPage> FaultyServer::FetchPageKeywordOf(ValueId value,
                                                      uint32_t page_number) {
  return Dispatch(KeyOfValue(5, value), page_number, [&] {
    return inner_.FetchPageKeywordOf(value, page_number);
  });
}

void FaultyServer::ResetMeters() {
  inner_.ResetMeters();
  injected_failure_rounds_ = 0;
  injected_failure_queries_ = 0;
}

}  // namespace deepcrawl
