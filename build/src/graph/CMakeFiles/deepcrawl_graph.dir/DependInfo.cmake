
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/attribute_value_graph.cc" "src/graph/CMakeFiles/deepcrawl_graph.dir/attribute_value_graph.cc.o" "gcc" "src/graph/CMakeFiles/deepcrawl_graph.dir/attribute_value_graph.cc.o.d"
  "/root/repo/src/graph/components.cc" "src/graph/CMakeFiles/deepcrawl_graph.dir/components.cc.o" "gcc" "src/graph/CMakeFiles/deepcrawl_graph.dir/components.cc.o.d"
  "/root/repo/src/graph/dominating_set.cc" "src/graph/CMakeFiles/deepcrawl_graph.dir/dominating_set.cc.o" "gcc" "src/graph/CMakeFiles/deepcrawl_graph.dir/dominating_set.cc.o.d"
  "/root/repo/src/graph/power_law.cc" "src/graph/CMakeFiles/deepcrawl_graph.dir/power_law.cc.o" "gcc" "src/graph/CMakeFiles/deepcrawl_graph.dir/power_law.cc.o.d"
  "/root/repo/src/graph/reachability.cc" "src/graph/CMakeFiles/deepcrawl_graph.dir/reachability.cc.o" "gcc" "src/graph/CMakeFiles/deepcrawl_graph.dir/reachability.cc.o.d"
  "/root/repo/src/graph/set_cover.cc" "src/graph/CMakeFiles/deepcrawl_graph.dir/set_cover.cc.o" "gcc" "src/graph/CMakeFiles/deepcrawl_graph.dir/set_cover.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/index/CMakeFiles/deepcrawl_index.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/deepcrawl_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/deepcrawl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
