file(REMOVE_RECURSE
  "CMakeFiles/deepcrawl_crawl.dir/deepcrawl_crawl.cc.o"
  "CMakeFiles/deepcrawl_crawl.dir/deepcrawl_crawl.cc.o.d"
  "deepcrawl_crawl"
  "deepcrawl_crawl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepcrawl_crawl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
