# Empty dependencies file for deepcrawl_graph.
# This may be replaced when dependencies are built.
