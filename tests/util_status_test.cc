#include "src/util/status.h"

#include <gtest/gtest.h>

namespace deepcrawl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::InvalidArgument("bad page");
  EXPECT_EQ(s.ToString(), "invalid_argument: bad page");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "not_found");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "unavailable");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "deadline_exceeded");
}

TEST(StatusTest, RetryAfterHintRoundTrips) {
  Status plain = Status::ResourceExhausted("429");
  EXPECT_FALSE(plain.retry_after_rounds().has_value());

  Status hinted = plain.WithRetryAfter(6);
  ASSERT_TRUE(hinted.retry_after_rounds().has_value());
  EXPECT_EQ(*hinted.retry_after_rounds(), 6u);
  // The hint rides along with code and message.
  EXPECT_EQ(hinted.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(hinted.message(), "429");
  // The original is untouched (WithRetryAfter copies).
  EXPECT_FALSE(plain.retry_after_rounds().has_value());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValueWorks) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

TEST(StatusOrTest, ArrowOperatorReachesValue) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

Status FailingHelper() { return Status::OutOfRange("boom"); }

Status UsesReturnIfError() {
  DEEPCRAWL_RETURN_IF_ERROR(FailingHelper());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = UsesReturnIfError();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

StatusOr<int> MaybeInt(bool succeed) {
  if (!succeed) return Status::Unavailable("flaky");
  return 21;
}

StatusOr<int> UsesAssignOrReturn(bool succeed) {
  DEEPCRAWL_ASSIGN_OR_RETURN(int half, MaybeInt(succeed));
  // Also exercise assignment to an existing variable.
  int other = 0;
  DEEPCRAWL_ASSIGN_OR_RETURN(other, MaybeInt(succeed));
  return half + other;
}

TEST(StatusTest, AssignOrReturnUnwrapsValue) {
  StatusOr<int> v = UsesAssignOrReturn(true);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusTest, AssignOrReturnPropagatesError) {
  StatusOr<int> v = UsesAssignOrReturn(false);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kUnavailable);
}

StatusOr<std::unique_ptr<int>> MakeBox() { return std::make_unique<int>(9); }

TEST(StatusTest, AssignOrReturnMovesMoveOnlyValues) {
  auto run = []() -> StatusOr<int> {
    DEEPCRAWL_ASSIGN_OR_RETURN(std::unique_ptr<int> box, MakeBox());
    return *box;
  };
  StatusOr<int> v = run();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 9);
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> v = Status::Internal("broken");
  EXPECT_DEATH((void)v.value(), "broken");
}

}  // namespace
}  // namespace deepcrawl
