// Resilient crawl: surviving a flaky hidden-Web source.
//
// Real sources time out, rate-limit, and drop records mid-page. This
// example wraps the simulated server in a FaultyServer that injects
// exactly those behaviours (deterministically, from a seed), attaches a
// RetryPolicy to the crawler, and shows the crawl finishing anyway:
//
//   FaultyServer   — fault-injecting proxy over any QueryInterface
//   FaultProfile   — declarative per-round fault probabilities
//   RetryPolicy    — capped exponential backoff + graceful degradation
//
// Compare with quickstart.cpp: the crawl loop is identical; resilience
// is purely a matter of which QueryInterface the crawler talks to and
// whether a RetryPolicy is attached.

#include <iostream>

#include "src/crawler/crawler.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/retry_policy.h"
#include "src/datagen/canned_workloads.h"
#include "src/server/faulty_server.h"
#include "src/server/web_db_server.h"

using namespace deepcrawl;

int main() {
  // --- 1. a mid-sized structured source --------------------------------
  StatusOr<Table> db = GenerateTable(EbayConfig(/*scale=*/0.02, /*seed=*/3));
  if (!db.ok()) {
    std::cerr << "datagen failed: " << db.status().ToString() << "\n";
    return 1;
  }

  // --- 2. the same source, behind a flaky network ----------------------
  WebDbServer backend(*db, ServerOptions());
  FaultProfile profile;
  profile.unavailable_rate = 0.08;  // 503s
  profile.timeout_rate = 0.04;      // deadline expiries
  profile.rate_limit_rate = 0.03;   // 429s carrying a retry-after hint
  profile.retry_after_rounds = 4;
  FaultyServer server(backend, profile, /*seed=*/17);

  // --- 3. crawl with retries -------------------------------------------
  RetryPolicyConfig retry_config;
  retry_config.max_attempts = 4;  // per drain, then re-queue
  retry_config.max_requeues = 2;  // then abandon the value
  RetryPolicy retry(retry_config);

  LocalStore store;
  GreedyLinkSelector selector(store);
  Crawler crawler(server, selector, store, CrawlOptions{},
                  /*abort_policy=*/nullptr, &retry);
  ValueId seed_value = 0;
  while (db->value_frequency(seed_value) == 0) ++seed_value;
  crawler.AddSeed(seed_value);

  StatusOr<CrawlResult> result = crawler.Run();
  if (!result.ok()) {
    // Only non-retryable errors (bugs, bad fixtures) land here; the
    // transient faults above were all absorbed by the policy.
    std::cerr << "crawl failed: " << result.status().ToString() << "\n";
    return 1;
  }

  // --- 4. what resilience cost -----------------------------------------
  double coverage = static_cast<double>(result->records) /
                    static_cast<double>(db->num_records());
  const ResilienceCounters& r = result->resilience;
  const FaultCounters& injected = server.fault_counters();
  std::cout << "crawled " << result->records << " of " << db->num_records()
            << " records (" << static_cast<int>(coverage * 100.0)
            << "% coverage) in " << result->rounds << " rounds\n\n"
            << "injected by the proxy: " << injected.unavailable
            << " unavailable, " << injected.timeouts << " timeouts, "
            << injected.rate_limited << " rate limits\n"
            << "absorbed by the crawler: " << r.transient_failures
            << " failed fetches, " << r.retries << " retries, "
            << r.backoff_ticks << " simulated ticks backing off\n"
            << "degraded: " << r.requeues << " re-queues, "
            << r.abandoned_values << " values abandoned\n\n"
            << "simulated clock at crawl end: " << crawler.clock().now()
            << " ticks\n";
  return 0;
}
