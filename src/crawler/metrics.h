// Crawl metrics: the coverage-versus-communication trace behind every
// figure in the paper's evaluation.
//
// Figure 3 plots communication rounds needed to reach a coverage level;
// Figures 5 and 6 plot coverage reached within a round budget. Both are
// projections of the same monotone trace (rounds, records-harvested)
// that the Crawler appends to after every page fetch.

#ifndef DEEPCRAWL_CRAWLER_METRICS_H_
#define DEEPCRAWL_CRAWLER_METRICS_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace deepcrawl {

struct TracePoint {
  uint64_t rounds = 0;   // cumulative communication rounds
  uint64_t records = 0;  // cumulative distinct records harvested
};

// Monotone (in both fields) crawl progress trace.
class CrawlTrace {
 public:
  // Appends a point; rounds and records must be non-decreasing.
  void Add(uint64_t rounds, uint64_t records);

  const std::vector<TracePoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  // Fewest rounds after which at least `target_records` records were
  // harvested; nullopt when the trace never reaches the target.
  std::optional<uint64_t> RoundsToRecords(uint64_t target_records) const;

  // Records harvested by the time `rounds` rounds were spent (the last
  // point at or before `rounds`; 0 when the crawl had not started).
  uint64_t RecordsAtRounds(uint64_t rounds) const;

 private:
  std::vector<TracePoint> points_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_CRAWLER_METRICS_H_
