#include "src/util/page_cache.h"

#include <dirent.h>

#include <cstdio>

#include "src/util/checkpoint_io.h"

namespace deepcrawl {

PagedFile::PagedFile(std::string dir, std::string name, uint32_t page_bytes)
    : dir_(std::move(dir)), name_(std::move(name)), page_bytes_(page_bytes) {
  DEEPCRAWL_CHECK(page_bytes_ > 0) << "page size must be positive";
}

void PagedFile::EnsurePages(uint64_t n) {
  if (n > pages_.size()) pages_.resize(n);
}

std::string PagedFile::PageFileName(uint64_t page, uint64_t epoch) const {
  return name_ + ".p" + std::to_string(page) + ".e" + std::to_string(epoch);
}

std::string PagedFile::PagePath(uint64_t page, uint64_t epoch) const {
  return dir_ + "/" + PageFileName(page, epoch);
}

bool PagedFile::ParsePageFileName(const std::string& filename, uint64_t* page,
                                  uint64_t* epoch) const {
  // <name>.p<digits>.e<digits>
  if (filename.size() <= name_.size() + 4) return false;
  if (filename.compare(0, name_.size(), name_) != 0) return false;
  size_t p = name_.size();
  if (filename[p] != '.' || filename[p + 1] != 'p') return false;
  size_t e_dot = filename.find(".e", p + 2);
  if (e_dot == std::string::npos || e_dot == p + 2) return false;
  auto parse_digits = [&](size_t begin, size_t end, uint64_t* out) {
    if (begin == end) return false;
    uint64_t v = 0;
    for (size_t i = begin; i < end; ++i) {
      if (filename[i] < '0' || filename[i] > '9') return false;
      v = v * 10 + static_cast<uint64_t>(filename[i] - '0');
    }
    *out = v;
    return true;
  };
  return parse_digits(p + 2, e_dot, page) &&
         parse_digits(e_dot + 2, filename.size(), epoch);
}

Status PagedFile::ReadPage(uint64_t page, char* out) const {
  if (page >= pages_.size() || pages_[page].current == 0) {
    std::memset(out, 0, page_bytes_);
    return Status::OK();
  }
  std::string path = PagePath(page, pages_[page].current);
  StatusOr<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  StatusOr<std::string_view> payload =
      UnframeCheckpoint(*bytes, kPageFormatVersion);
  if (!payload.ok()) {
    return Status::InvalidArgument("corrupt page '" + path +
                                   "': " + payload.status().message());
  }
  if (payload->size() != page_bytes_) {
    return Status::InvalidArgument(
        "corrupt page '" + path + "': payload is " +
        std::to_string(payload->size()) + " bytes, expected " +
        std::to_string(page_bytes_));
  }
  std::memcpy(out, payload->data(), page_bytes_);
  return Status::OK();
}

void PagedFile::RemoveIfUnprotected(uint64_t page, uint64_t epoch) {
  const PageState& st = pages_[page];
  if (epoch == 0 || epoch == st.current || epoch == st.durable_last ||
      epoch == st.durable_prev) {
    return;
  }
  std::string path = PagePath(page, epoch);
  std::remove(path.c_str());
  pending_sync_.erase(path);
}

Status PagedFile::WritePage(uint64_t page, const char* data) {
  EnsurePages(page + 1);
  uint64_t epoch = next_epoch_++;
  std::string path = PagePath(page, epoch);
  std::string framed =
      FrameCheckpoint(std::string_view(data, page_bytes_), kPageFormatVersion);
  Status status = WriteFileAtomicDeferredSync(path, framed);
  if (!status.ok()) return status;
  pending_sync_.insert(path);
  uint64_t old = pages_[page].current;
  pages_[page].current = epoch;
  RemoveIfUnprotected(page, old);
  return Status::OK();
}

Status PagedFile::SyncPending() {
  for (const std::string& path : pending_sync_) {
    // SyncFileDurable fsyncs the parent directory per file; with one
    // store directory that is a handful of redundant dir fsyncs per
    // checkpoint, which keeps this path simple.
    Status status = SyncFileDurable(path);
    if (!status.ok()) return status;
  }
  pending_sync_.clear();
  return Status::OK();
}

void PagedFile::CommitDurable() {
  for (uint64_t page = 0; page < pages_.size(); ++page) {
    PageState& st = pages_[page];
    uint64_t out = st.durable_prev;
    st.durable_prev = st.durable_last;
    st.durable_last = st.current;
    RemoveIfUnprotected(page, out);
  }
}

void PagedFile::AppendMeta(CheckpointWriter& w) const {
  w.WriteU64(next_epoch_);
  w.WriteU64(pages_.size());
  for (const PageState& st : pages_) w.WriteU64(st.current);
}

Status PagedFile::LoadMeta(CheckpointReader& r) {
  uint64_t next_epoch = r.ReadU64();
  uint64_t num_pages = r.ReadCount(8);
  std::vector<PageState> pages(num_pages);
  for (uint64_t i = 0; i < num_pages; ++i) {
    uint64_t epoch = r.ReadU64();
    if (epoch >= next_epoch) {
      r.MarkCorrupt("page epoch beyond segment epoch counter in '" + name_ +
                    "'");
    }
    pages[i].current = epoch;
    pages[i].durable_last = epoch;
    pages[i].durable_prev = epoch;
  }
  if (!r.ok()) return r.status();
  next_epoch_ = next_epoch;
  pages_ = std::move(pages);
  pending_sync_.clear();
  return Status::OK();
}

void PagedFile::AppendOnDiskPaths(std::vector<std::string>& out) const {
  for (uint64_t page = 0; page < pages_.size(); ++page) {
    const PageState& st = pages_[page];
    uint64_t epochs[3] = {st.current, st.durable_last, st.durable_prev};
    for (int k = 0; k < 3; ++k) {
      if (epochs[k] == 0) continue;
      bool dup = false;
      for (int j = 0; j < k; ++j) dup = dup || epochs[j] == epochs[k];
      if (!dup) out.push_back(PagePath(page, epochs[k]));
    }
  }
}

void PagedFile::AppendCurrentFileNames(std::vector<std::string>& out) const {
  for (uint64_t page = 0; page < pages_.size(); ++page) {
    if (pages_[page].current != 0) {
      out.push_back(PageFileName(page, pages_[page].current));
    }
  }
}

Status PagedFile::SweepOrphans() const {
  DIR* dir = ::opendir(dir_.c_str());
  if (dir == nullptr) {
    return Status::NotFound("cannot open store directory '" + dir_ + "'");
  }
  std::vector<std::string> doomed;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string filename = entry->d_name;
    uint64_t page = 0;
    uint64_t epoch = 0;
    if (!ParsePageFileName(filename, &page, &epoch)) continue;
    bool referenced =
        page < pages_.size() && epoch != 0 && pages_[page].current == epoch;
    if (!referenced) doomed.push_back(filename);
  }
  ::closedir(dir);
  for (const std::string& filename : doomed) {
    std::remove((dir_ + "/" + filename).c_str());
  }
  return Status::OK();
}

PageCache::PageCache(uint32_t page_bytes, uint32_t capacity_frames)
    : page_bytes_(page_bytes),
      capacity_frames_(capacity_frames == 0 ? 1 : capacity_frames) {
  frames_.reserve(capacity_frames_);
}

uint32_t PageCache::RegisterFile(PagedFile* file) {
  DEEPCRAWL_CHECK(file->page_bytes() == page_bytes_)
      << "segment page size " << file->page_bytes()
      << " does not match cache page size " << page_bytes_;
  files_.push_back(file);
  return static_cast<uint32_t>(files_.size() - 1);
}

uint32_t PageCache::ReclaimFrame() {
  if (frames_.size() < capacity_frames_) {
    frames_.emplace_back();
    frames_.back().data.resize(page_bytes_);
    return static_cast<uint32_t>(frames_.size() - 1);
  }
  // Clock sweep: first pass clears reference bits, so within two laps
  // an unpinned frame is found unless every frame is pinned.
  size_t limit = frames_.size() * 2;
  for (size_t step = 0; step < limit; ++step) {
    uint32_t i = static_cast<uint32_t>(clock_hand_);
    clock_hand_ = (clock_hand_ + 1) % frames_.size();
    Frame& frame = frames_[i];
    if (frame.pins > 0) continue;
    if (frame.referenced) {
      frame.referenced = false;
      continue;
    }
    if (frame.valid) {
      if (frame.dirty) {
        Status status =
            files_[frame.file_id]->WritePage(frame.page, frame.data.data());
        DEEPCRAWL_CHECK(status.ok())
            << "page writeback failed: " << status.message();
        ++stats_.writebacks;
      }
      frame_of_.erase(FrameKey(frame.file_id, frame.page));
      frame.valid = false;
      frame.dirty = false;
      ++stats_.evictions;
    }
    return i;
  }
  // Every frame is pinned: soft overflow rather than deadlock. The
  // extra frame joins the clock rotation and shrinks back naturally
  // as eviction preference (it starts unreferenced).
  frames_.emplace_back();
  frames_.back().data.resize(page_bytes_);
  return static_cast<uint32_t>(frames_.size() - 1);
}

PageCache::Handle PageCache::Acquire(uint32_t file_id, uint64_t page) {
  DEEPCRAWL_DCHECK(file_id < files_.size() && files_[file_id] != nullptr)
      << "unregistered file id";
  auto it = frame_of_.find(FrameKey(file_id, page));
  if (it != frame_of_.end()) {
    Frame& frame = frames_[it->second];
    frame.referenced = true;
    ++frame.pins;
    ++stats_.hits;
    return Handle(this, it->second);
  }
  ++stats_.misses;
  uint32_t i = ReclaimFrame();
  Frame& frame = frames_[i];
  files_[file_id]->EnsurePages(page + 1);
  Status status = files_[file_id]->ReadPage(page, frame.data.data());
  DEEPCRAWL_CHECK(status.ok()) << "page read failed: " << status.message();
  frame.file_id = file_id;
  frame.page = page;
  frame.pins = 1;
  frame.dirty = false;
  frame.referenced = true;
  frame.valid = true;
  frame_of_[FrameKey(file_id, page)] = i;
  return Handle(this, i);
}

Status PageCache::FlushAll() {
  for (Frame& frame : frames_) {
    if (!frame.valid || !frame.dirty) continue;
    Status status =
        files_[frame.file_id]->WritePage(frame.page, frame.data.data());
    if (!status.ok()) return status;
    frame.dirty = false;
  }
  return Status::OK();
}

void PageCache::DropFile(uint32_t file_id) {
  for (Frame& frame : frames_) {
    if (!frame.valid || frame.file_id != file_id) continue;
    DEEPCRAWL_CHECK(frame.pins == 0) << "dropping a pinned page frame";
    frame_of_.erase(FrameKey(frame.file_id, frame.page));
    frame.valid = false;
    frame.dirty = false;
    frame.referenced = false;
  }
}

void PageCache::UnregisterFile(uint32_t file_id) {
  DropFile(file_id);
  files_[file_id] = nullptr;
}

}  // namespace deepcrawl
