#!/usr/bin/env bash
# Tier-1 verification, twice: the plain build and an ASan/UBSan build.
#
# Usage: tools/check.sh [--no-asan]
#
# The plain pass is the canonical `cmake && ctest` loop from ROADMAP.md;
# the sanitizer pass rebuilds everything into build-asan/ with
# -DASAN=ON (-fsanitize=address,undefined) and runs the same suite, so
# memory and UB bugs surface before they flake in production runs.
set -euo pipefail
cd "$(dirname "$0")/.."

run_suite() {
  local build_dir="$1"; shift
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
}

echo "=== pass 1/2: plain build (build/) ==="
run_suite build

if [[ "${1:-}" == "--no-asan" ]]; then
  echo "=== pass 2/2 skipped (--no-asan) ==="
  exit 0
fi

echo "=== pass 2/2: sanitizer build (build-asan/, -DASAN=ON) ==="
run_suite build-asan -DASAN=ON

echo "all checks passed (plain + asan/ubsan)"
