# Empty dependencies file for deepcrawl_relation.
# This may be replaced when dependencies are built.
