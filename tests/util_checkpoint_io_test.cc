// Tests for the atomic/durable file-write protocol in
// src/util/checkpoint_io.h.
//
// Two regressions are pinned here:
//
//   * WriteFileAtomic used to build its temp file at the FIXED name
//     <path>.tmp, so two writers targeting the same path truncated
//     each other's in-flight temp and could rename a torn mix of both
//     payloads into place. The temp name is now unique per writer
//     (pid + per-process counter); concurrent writers must each
//     succeed and the surviving file must equal one complete payload.
//
//   * WriteFileAtomic did not fsync — a post-rename power cut could
//     leave a zero-length or stale file. It now fsyncs the temp before
//     the rename and the directory after, and reports fsync/IO
//     failures as Status::Internal (not NotFound, which is reserved
//     for an uncreatable temp).

#include "src/util/checkpoint_io.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

namespace deepcrawl {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(WriteFileAtomicTest, RoundtripReplacesPreviousContent) {
  std::string path = TestPath("deepcrawl_atomic_roundtrip.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "first").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "second-longer-content").ok());
  StatusOr<std::string> read = ReadFileBytes(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "second-longer-content");
  std::remove(path.c_str());
}

TEST(WriteFileAtomicTest, UncreatableTempIsNotFound) {
  Status status =
      WriteFileAtomic("/nonexistent-dir-deepcrawl/x.bin", "payload");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(WriteFileAtomicTest, ConcurrentWritersToOnePathNeverTear) {
  // Regression for the shared <path>.tmp temp name: two threads
  // hammering the same destination with distinct large payloads. With
  // the fixed name this interleaving tears temp files (one writer
  // truncates the other's) and loses renames; with per-writer-unique
  // names every call must succeed and every observable file state is
  // one writer's complete payload.
  std::string path = TestPath("deepcrawl_atomic_concurrent.bin");
  // Large enough that a write is not one atomic page, so a shared temp
  // file would interleave.
  std::string a(1 << 20, 'A');
  std::string b(1 << 20, 'B');
  const int kIterations = 40;
  std::vector<Status> results[2];
  std::thread ta([&] {
    for (int i = 0; i < kIterations; ++i) {
      results[0].push_back(WriteFileAtomic(path, a));
    }
  });
  std::thread tb([&] {
    for (int i = 0; i < kIterations; ++i) {
      results[1].push_back(WriteFileAtomic(path, b));
    }
  });
  ta.join();
  tb.join();
  for (const auto& side : results) {
    for (const Status& status : side) ASSERT_TRUE(status.ok());
  }
  StatusOr<std::string> survivor = ReadFileBytes(path);
  ASSERT_TRUE(survivor.ok());
  EXPECT_TRUE(*survivor == a || *survivor == b)
      << "surviving file is a torn mix of both writers";
  std::remove(path.c_str());
}

TEST(WriteFileAtomicTest, DeferredSyncThenSyncFileDurable) {
  // The deferred-sync variant must still be atomic-by-rename and
  // readable immediately; SyncFileDurable then upgrades it to durable
  // without changing content.
  std::string path = TestPath("deepcrawl_atomic_deferred.bin");
  ASSERT_TRUE(WriteFileAtomicDeferredSync(path, "lazy bytes").ok());
  StatusOr<std::string> read = ReadFileBytes(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "lazy bytes");
  ASSERT_TRUE(SyncFileDurable(path).ok());
  read = ReadFileBytes(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "lazy bytes");
  std::remove(path.c_str());
}

TEST(WriteFileAtomicTest, SyncMissingFileIsInternal) {
  Status status = SyncFileDurable(TestPath("deepcrawl_never_written.bin"));
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(WriteFileAtomicTest, NoTempFilesLeftBehind) {
  // Both variants clean up: after successful writes the directory
  // holds only the destination (plus whatever else the suite left).
  std::string path = TestPath("deepcrawl_atomic_clean.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "x").ok());
  ASSERT_TRUE(WriteFileAtomicDeferredSync(path, "y").ok());
  // Any leftover temp would match <path>.tmp.<pid>.<seq>; probing the
  // first few sequence numbers for this process's pid is a smoke check
  // that renames consumed the temps.
  for (int seq = 0; seq < 8; ++seq) {
    std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                      std::to_string(seq);
    EXPECT_FALSE(ReadFileBytes(tmp).ok()) << tmp;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace deepcrawl
