file(REMOVE_RECURSE
  "CMakeFiles/deepcrawl_util_tests.dir/statistical_sweeps_test.cc.o"
  "CMakeFiles/deepcrawl_util_tests.dir/statistical_sweeps_test.cc.o.d"
  "CMakeFiles/deepcrawl_util_tests.dir/util_flags_test.cc.o"
  "CMakeFiles/deepcrawl_util_tests.dir/util_flags_test.cc.o.d"
  "CMakeFiles/deepcrawl_util_tests.dir/util_random_test.cc.o"
  "CMakeFiles/deepcrawl_util_tests.dir/util_random_test.cc.o.d"
  "CMakeFiles/deepcrawl_util_tests.dir/util_stats_test.cc.o"
  "CMakeFiles/deepcrawl_util_tests.dir/util_stats_test.cc.o.d"
  "CMakeFiles/deepcrawl_util_tests.dir/util_status_test.cc.o"
  "CMakeFiles/deepcrawl_util_tests.dir/util_status_test.cc.o.d"
  "CMakeFiles/deepcrawl_util_tests.dir/util_table_printer_test.cc.o"
  "CMakeFiles/deepcrawl_util_tests.dir/util_table_printer_test.cc.o.d"
  "CMakeFiles/deepcrawl_util_tests.dir/util_zipf_test.cc.o"
  "CMakeFiles/deepcrawl_util_tests.dir/util_zipf_test.cc.o.d"
  "deepcrawl_util_tests"
  "deepcrawl_util_tests.pdb"
  "deepcrawl_util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepcrawl_util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
