file(REMOVE_RECURSE
  "CMakeFiles/deepcrawl_crawler_policy_tests.dir/crawler_abort_policy_test.cc.o"
  "CMakeFiles/deepcrawl_crawler_policy_tests.dir/crawler_abort_policy_test.cc.o.d"
  "CMakeFiles/deepcrawl_crawler_policy_tests.dir/crawler_keyword_mode_test.cc.o"
  "CMakeFiles/deepcrawl_crawler_policy_tests.dir/crawler_keyword_mode_test.cc.o.d"
  "CMakeFiles/deepcrawl_crawler_policy_tests.dir/crawler_local_store_test.cc.o"
  "CMakeFiles/deepcrawl_crawler_policy_tests.dir/crawler_local_store_test.cc.o.d"
  "CMakeFiles/deepcrawl_crawler_policy_tests.dir/crawler_metrics_test.cc.o"
  "CMakeFiles/deepcrawl_crawler_policy_tests.dir/crawler_metrics_test.cc.o.d"
  "CMakeFiles/deepcrawl_crawler_policy_tests.dir/crawler_mmmi_behavior_test.cc.o"
  "CMakeFiles/deepcrawl_crawler_policy_tests.dir/crawler_mmmi_behavior_test.cc.o.d"
  "CMakeFiles/deepcrawl_crawler_policy_tests.dir/crawler_mmmi_test.cc.o"
  "CMakeFiles/deepcrawl_crawler_policy_tests.dir/crawler_mmmi_test.cc.o.d"
  "CMakeFiles/deepcrawl_crawler_policy_tests.dir/crawler_property_test.cc.o"
  "CMakeFiles/deepcrawl_crawler_policy_tests.dir/crawler_property_test.cc.o.d"
  "CMakeFiles/deepcrawl_crawler_policy_tests.dir/crawler_scripted_selector_test.cc.o"
  "CMakeFiles/deepcrawl_crawler_policy_tests.dir/crawler_scripted_selector_test.cc.o.d"
  "CMakeFiles/deepcrawl_crawler_policy_tests.dir/crawler_selectors_test.cc.o"
  "CMakeFiles/deepcrawl_crawler_policy_tests.dir/crawler_selectors_test.cc.o.d"
  "CMakeFiles/deepcrawl_crawler_policy_tests.dir/crawler_trace_io_test.cc.o"
  "CMakeFiles/deepcrawl_crawler_policy_tests.dir/crawler_trace_io_test.cc.o.d"
  "deepcrawl_crawler_policy_tests"
  "deepcrawl_crawler_policy_tests.pdb"
  "deepcrawl_crawler_policy_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepcrawl_crawler_policy_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
