// Tests for the fixed-size worker pool behind the parallel crawl engine.

#include "src/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace deepcrawl {
namespace {

TEST(ThreadPoolTest, RunAndWaitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  std::vector<std::function<void()>> tasks;
  for (uint64_t i = 1; i <= 1000; ++i) {
    tasks.push_back([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  pool.RunAndWait(tasks);
  EXPECT_EQ(sum.load(), 1000u * 1001u / 2);
}

TEST(ThreadPoolTest, RunAndWaitIsABarrier) {
  // Every task must have finished by the time RunAndWait returns, so a
  // plain (non-atomic) flag array written by the tasks and read after
  // the call is race-free. TSan verifies the claimed happens-before.
  ThreadPool pool(8);
  std::vector<char> done(256, 0);
  std::vector<std::function<void()>> tasks;
  for (size_t i = 0; i < done.size(); ++i) {
    tasks.push_back([&done, i] { done[i] = 1; });
  }
  pool.RunAndWait(tasks);
  for (size_t i = 0; i < done.size(); ++i) {
    ASSERT_EQ(done[i], 1) << "task " << i << " did not run";
  }
}

TEST(ThreadPoolTest, TasksActuallyOverlap) {
  // With 4 workers and 8 sleeping tasks, at least two tasks must be in
  // flight at once. This is what buys the parallel crawler its speedup.
  ThreadPool pool(4);
  std::atomic<int> in_flight{0};
  std::atomic<int> peak{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([&] {
      int now = in_flight.fetch_add(1, std::memory_order_acq_rel) + 1;
      int seen = peak.load(std::memory_order_relaxed);
      while (now > seen &&
             !peak.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      in_flight.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
  pool.RunAndWait(tasks);
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, RunAndWaitIsReusable) {
  // The crawl loop calls RunAndWait once per wave, thousands of times on
  // the same pool.
  ThreadPool pool(4);
  std::atomic<uint64_t> count{0};
  for (int wave = 0; wave < 200; ++wave) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 7; ++i) {
      tasks.push_back([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.RunAndWait(tasks);
  }
  EXPECT_EQ(count.load(), 200u * 7);
}

TEST(ThreadPoolTest, SubmitFromManyThreads) {
  std::atomic<uint64_t> count{0};
  {
    ThreadPool pool(4);
    std::vector<std::thread> producers;
    for (int p = 0; p < 6; ++p) {
      producers.emplace_back([&pool, &count] {
        for (int i = 0; i < 50; ++i) {
          pool.Submit(
              [&count] { count.fetch_add(1, std::memory_order_relaxed); });
        }
      });
    }
    for (std::thread& t : producers) t.join();
  }  // destroying the pool drains the queue first
  EXPECT_EQ(count.load(), 6u * 50);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<uint64_t> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // destructor must wait for all 100
  EXPECT_EQ(count.load(), 100u);
}

TEST(ThreadPoolTest, EmptyTaskListReturnsImmediately) {
  ThreadPool pool(4);
  std::vector<std::function<void()>> tasks;
  pool.RunAndWait(tasks);  // must not deadlock on remaining == 0
  SUCCEED();
}

TEST(ThreadPoolTest, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<uint64_t> count{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.RunAndWait(tasks);
  EXPECT_EQ(count.load(), 64u);
}

}  // namespace
}  // namespace deepcrawl
