#include "src/fleet/chaos.h"

#include <string>

namespace deepcrawl {
namespace {

// Splits `text` at the first `sep`, returning the prefix and leaving the
// suffix (or empty when `sep` is absent and everything was consumed).
std::string_view TakeUntil(std::string_view& text, char sep) {
  size_t pos = text.find(sep);
  std::string_view head = text.substr(0, pos);
  text = pos == std::string_view::npos ? std::string_view{}
                                       : text.substr(pos + 1);
  return head;
}

StatusOr<uint64_t> ParseU64(std::string_view text, const char* what) {
  if (text.empty()) {
    return Status::InvalidArgument(std::string("chaos spec: empty ") + what);
  }
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(std::string("chaos spec: bad ") + what +
                                     " '" + std::string(text) + "'");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

StatusOr<FaultAction> ParseKind(std::string_view kind) {
  if (kind == "dead") return FaultAction::kUnavailable;
  if (kind == "timeout") return FaultAction::kTimeout;
  if (kind == "ratelimit") return FaultAction::kRateLimit;
  return Status::InvalidArgument("chaos spec: unknown kind '" +
                                 std::string(kind) +
                                 "' (dead|timeout|ratelimit)");
}

}  // namespace

std::optional<FaultAction> ForcedActionAt(const ChaosSchedule& schedule,
                                          uint32_t source, uint64_t turn) {
  std::optional<FaultAction> forced;
  for (const ChaosEvent& event : schedule) {
    if (event.source != source) continue;
    if (turn < event.begin_turn) continue;
    if (event.end_turn != 0 && turn >= event.end_turn) continue;
    forced = event.action;  // later events override earlier ones
  }
  return forced;
}

StatusOr<ChaosSchedule> ParseChaosSchedule(std::string_view spec,
                                           uint32_t num_sources) {
  ChaosSchedule schedule;
  if (spec.empty()) return schedule;
  if (spec == "hostile") return HostileChaosSchedule(num_sources);
  while (!spec.empty()) {
    std::string_view entry = TakeUntil(spec, ';');
    if (entry.empty()) continue;
    std::string_view kind = TakeUntil(entry, ':');
    DEEPCRAWL_ASSIGN_OR_RETURN(FaultAction action, ParseKind(kind));
    size_t at = entry.find('@');
    if (at == std::string_view::npos) {
      return Status::InvalidArgument(
          "chaos spec: missing '@begin[-end]' in '" + std::string(entry) +
          "'");
    }
    std::string_view sources = entry.substr(0, at);
    std::string_view window = entry.substr(at + 1);
    std::string_view begin_text = TakeUntil(window, '-');
    DEEPCRAWL_ASSIGN_OR_RETURN(uint64_t begin,
                               ParseU64(begin_text, "begin turn"));
    uint64_t end = 0;
    if (!window.empty()) {
      DEEPCRAWL_ASSIGN_OR_RETURN(end, ParseU64(window, "end turn"));
      if (end <= begin) {
        return Status::InvalidArgument(
            "chaos spec: window end must be after begin");
      }
    }
    while (!sources.empty()) {
      std::string_view source_text = TakeUntil(sources, ',');
      DEEPCRAWL_ASSIGN_OR_RETURN(uint64_t source,
                                 ParseU64(source_text, "source id"));
      if (source >= num_sources) {
        return Status::InvalidArgument(
            "chaos spec: source " + std::to_string(source) +
            " out of range (fleet has " + std::to_string(num_sources) +
            " sources)");
      }
      schedule.push_back(ChaosEvent{static_cast<uint32_t>(source), begin,
                                    end, action});
    }
  }
  return schedule;
}

ChaosSchedule HostileChaosSchedule(uint32_t num_sources) {
  // One permanently dead source, two flappers — the acceptance scenario.
  const ChaosEvent events[] = {
      {1, 6, 0, FaultAction::kUnavailable},    // dead for good
      {2, 10, 26, FaultAction::kUnavailable},  // flapper: dark burst...
      {2, 40, 52, FaultAction::kTimeout},      // ...then timeouts
      {3, 14, 30, FaultAction::kRateLimit},    // rate-limit storm...
      {3, 40, 52, FaultAction::kUnavailable},  // ...then flaps too
  };
  ChaosSchedule schedule;
  for (const ChaosEvent& event : events) {
    if (event.source < num_sources) schedule.push_back(event);
  }
  return schedule;
}

}  // namespace deepcrawl
