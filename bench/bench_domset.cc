// §2.5 ablation — the Weighted Minimum Dominating Set formulation.
//
// Definition 2.4 shows the optimal offline query plan is a WMDS of the
// attribute-value graph under the cost weights cost(q) = ceil(num(q)/k).
// No figure in the paper plots this directly; this ablation quantifies
// the gap the formulation implies:
//
//   offline plans  <=  online oracle rounds  <=  online greedy-link
//
// (the offline bounds ignore that a crawler must *discover* values
// before querying them and that result pages cost rounds even when
// fully duplicated). Two offline plans are reported: the paper's WMDS
// (which covers every VALUE but can miss records — see set_cover.h) and
// the corrected weighted set cover (full record retrieval).

#include <iostream>

#include "bench/bench_common.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/oracle_selector.h"
#include "src/datagen/canned_workloads.h"
#include "src/graph/attribute_value_graph.h"
#include "src/graph/dominating_set.h"
#include "src/graph/set_cover.h"
#include "src/util/table_printer.h"

int main() {
  using namespace deepcrawl;
  bench::PrintBanner(
      "Ablation (Def. 2.4): offline WMDS bound vs online crawling cost",
      "query selection formulated as Weighted Minimum Dominating Set "
      "(NP-complete); online crawlers only see the partial graph",
      "greedy WMDS (H(D+1)-approx) vs oracle and greedy-link crawls to "
      "100% coverage, 4 regenerated databases (small scale)");

  const SyntheticDbConfig configs[] = {
      EbayConfig(0.02),
      AcmDlConfig(0.004),
      DblpConfig(0.0016),
      ImdbConfig(0.002),
  };

  TablePrinter table({"database", "records", "WMDS weight",
                      "WMDS record coverage", "set-cover weight",
                      "oracle rounds", "greedy-link rounds",
                      "online/offline"});
  for (const SyntheticDbConfig& config : configs) {
    StatusOr<Table> generated = GenerateTable(config);
    DEEPCRAWL_CHECK(generated.ok()) << generated.status().ToString();
    const Table& db = *generated;
    ServerOptions server_options;  // k = 10
    WebDbServer server(db, server_options);

    AttributeValueGraph graph = AttributeValueGraph::Build(db);
    // Paper cost model: rounds to drain a value completely.
    auto cost = [&](ValueId v) {
      return static_cast<double>(server.FullRetrievalCost(v));
    };
    DominatingSetResult wmds = GreedyWeightedDominatingSet(graph, cost);
    DEEPCRAWL_CHECK(IsDominatingSet(graph, wmds.vertices));
    SetCoverResult cover = GreedyWeightedSetCover(db, server.index(), cost);
    DEEPCRAWL_CHECK(IsRecordCover(db, server.index(), cover.values));
    // Record coverage the WMDS plan actually retrieves.
    std::vector<char> retrieved(db.num_records(), 0);
    for (ValueId v : wmds.vertices) {
      for (RecordId r : server.index().Postings(v)) retrieved[r] = 1;
    }
    size_t wmds_records = 0;
    for (char c : retrieved) wmds_records += c;

    CrawlOptions options;
    options.target_records = db.num_records();

    uint64_t oracle_rounds;
    {
      LocalStore store;
      OracleSelector selector(store, server.index(),
                              server.options().page_size);
      oracle_rounds = bench::RunCrawl(server, selector, store, options,
                                      bench::SeedValue(db, 1))
                          .rounds;
    }
    uint64_t greedy_rounds;
    {
      LocalStore store;
      GreedyLinkSelector selector(store);
      greedy_rounds = bench::RunCrawl(server, selector, store, options,
                                      bench::SeedValue(db, 1))
                          .rounds;
    }

    table.AddRow(
        {config.name, TablePrinter::FormatCount(db.num_records()),
         TablePrinter::FormatDouble(wmds.total_weight, 0),
         TablePrinter::FormatPercent(
             static_cast<double>(wmds_records) /
                 static_cast<double>(db.num_records()), 0),
         TablePrinter::FormatDouble(cover.total_weight, 0),
         TablePrinter::FormatCount(oracle_rounds),
         TablePrinter::FormatCount(greedy_rounds),
         TablePrinter::FormatDouble(
             static_cast<double>(greedy_rounds) / cover.total_weight, 2) +
             "x"});
  }
  table.Print(std::cout);
  std::cout << "\nreading: the set-cover weight is the honest offline "
               "bound for FULL record retrieval (Definition 2.4's WMDS "
               "dominates every value but, as the coverage column shows, "
               "misses records whose own values were only dominated). "
               "The oracle pays extra rounds for duplicated pages; "
               "greedy-link pays for duplication plus estimation "
               "error.\n";
  return 0;
}
