file(REMOVE_RECURSE
  "CMakeFiles/deepcrawl_index.dir/inverted_index.cc.o"
  "CMakeFiles/deepcrawl_index.dir/inverted_index.cc.o.d"
  "libdeepcrawl_index.a"
  "libdeepcrawl_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepcrawl_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
