// Online database-size estimation from duplicate observations (Chao's
// abundance-based estimators).
//
// §1 describes the crawl loop running "until all the possible queries
// are issued or some stopping criterion is met", and §2.5 frames the
// practical goal as reaching a target coverage — which requires an
// estimate of |DB| while crawling. The overlap analysis of §5
// (size_estimator.h) needs several independent crawls; this module
// instead exploits what a single crawl already observes for free: how
// often each record has been returned across queries.
//
// Treating each returned result record as one "capture", the classic
// Chao1 lower-bound estimator gives
//
//   S_hat = S_obs + f1^2 / (2 f2)            (bias-corrected variant:
//   S_hat = S_obs + f1 (f1 - 1) / (2 (f2 + 1)))
//
// where f1/f2 are the numbers of records captured exactly once/twice.
// Captures from query-based crawling are not independent uniform draws
// (popular-value records are captured more often), so the estimate
// carries bias and is noisy early in a crawl, when singletons dominate
// and f1^2/(2 f2) can overshoot badly. It converges to the truth as the
// crawl saturates, is cheap enough to evaluate after every query, and —
// unlike the §5 overlap analysis — needs no extra crawls.

#ifndef DEEPCRAWL_ESTIMATE_CHAO_H_
#define DEEPCRAWL_ESTIMATE_CHAO_H_

#include <cstdint>

#include "src/crawler/local_store.h"

namespace deepcrawl {

struct ChaoEstimate {
  size_t observed_records = 0;  // S_obs
  uint64_t observations = 0;    // total captures, duplicates included
  size_t singletons = 0;        // f1
  size_t doubletons = 0;        // f2
  // Bias-corrected Chao1 estimate of |DB|; equals observed_records when
  // nothing has been observed twice and no singletons exist.
  double estimated_total = 0.0;
  // observed_records / estimated_total (0 when nothing observed).
  double estimated_coverage = 0.0;
};

// Computes the estimate from the duplicate-observation statistics the
// LocalStore accumulates during a crawl.
ChaoEstimate Chao1Estimate(const LocalStore& store);

}  // namespace deepcrawl

#endif  // DEEPCRAWL_ESTIMATE_CHAO_H_
