// deepcrawl_compare — run several query-selection policies against the
// same target and compare their coverage/cost curves (the shape of the
// paper's Figures 3-5, for your own data).
//
// Example:
//   deepcrawl_compare --workload=ebay --scale=0.1 ...
//       --policies=bfs,random,greedy,mmmi --max-rounds=2000 ...
//       --comparison-csv=curves.csv

#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/crawler/crawl_engine.h"
#include "src/crawler/trace_io.h"
#include "src/server/web_db_server.h"
#include "src/util/flags.h"
#include "src/util/table_printer.h"
#include "tools/selector_factory.h"
#include "tools/workload_setup.h"

namespace deepcrawl {
namespace {

struct Options {
  WorkloadFlagOptions workload;
  std::string policies = "bfs,random,greedy,mmmi";
  std::string rank_attribute = "range";
  int64_t page_size = 10;
  int64_t result_limit = 0;
  int64_t max_rounds = 0;
  double saturation = 0.85;
  int64_t seed = 1;
  std::string comparison_csv;
  bool help = false;
  bool list_selectors = false;
};

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> parts;
  std::istringstream stream(text);
  std::string part;
  while (std::getline(stream, part, ',')) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

Status Run(const Options& options) {
  std::optional<AdversarialGroundTruth> adv;
  DEEPCRAWL_ASSIGN_OR_RETURN(Table target,
                             LoadTargetTable(options.workload, adv));
  std::cout << "target: " << target.num_records() << " records, "
            << target.num_distinct_values() << " distinct values\n";
  if (adv.has_value()) {
    std::cout << "adversarial: family=" << options.workload.adv_family
              << " opt=" << adv->opt_queries << " queries\n";
  }
  std::cout << "\n";

  ServerOptions server_options;
  server_options.page_size = static_cast<uint32_t>(options.page_size);
  server_options.result_limit =
      static_cast<uint32_t>(options.result_limit);
  if (adv.has_value() && options.result_limit == 0) {
    server_options.result_limit = adv->result_limit;
  }
  WebDbServer server(target, server_options);

  // One deterministic seed value shared by every policy; adversarial
  // targets seed from the hierarchy root (matches every record) so no
  // policy luckily starts inside a decoy cluster.
  ValueId seed_value;
  if (adv.has_value()) {
    seed_value = adv->root_value;
  } else {
    seed_value = static_cast<ValueId>(
        (1 + 2654435761ull * static_cast<uint64_t>(options.seed)) %
        target.num_distinct_values());
    while (target.value_frequency(seed_value) == 0) {
      seed_value = static_cast<ValueId>((seed_value + 1) %
                                        target.num_distinct_values());
    }
  }

  std::vector<std::string> columns = {"policy", "records",  "coverage",
                                      "rounds", "queries", "stop"};
  if (adv.has_value()) {
    columns.insert(columns.begin() + 5, "cost/OPT");
  }
  TablePrinter table(columns);
  std::vector<CrawlTrace> traces;
  std::vector<NamedTrace> named;
  std::vector<std::string> names = SplitCommas(options.policies);
  traces.reserve(names.size());
  for (const std::string& name : names) {
    LocalStore store;
    SelectorContext selector_context;
    selector_context.store = &store;
    selector_context.seed = static_cast<uint64_t>(options.seed);
    selector_context.page_size = server_options.page_size;
    selector_context.result_limit = server_options.result_limit;
    selector_context.target = &target;
    selector_context.rank_attribute = options.rank_attribute;
    selector_context.oracle_index = &server.index();
    DEEPCRAWL_ASSIGN_OR_RETURN(std::unique_ptr<QuerySelector> selector,
                               MakeSelectorByName(name, selector_context));

    CrawlOptions crawl_options;
    crawl_options.max_rounds = static_cast<uint64_t>(options.max_rounds);
    if (adv.has_value()) {
      // Stop at full coverage: the competitive measure is queries to
      // harvest everything, not queries to drain the frontier.
      crawl_options.target_records = target.num_records();
    }
    if (options.saturation > 0.0) {
      crawl_options.saturation_records = static_cast<uint64_t>(
          options.saturation * static_cast<double>(target.num_records()));
    }
    server.ResetMeters();
    CrawlEngine engine(server, *selector, store, crawl_options);
    engine.AddSeed(seed_value);
    DEEPCRAWL_ASSIGN_OR_RETURN(CrawlResult result, engine.Run());
    double coverage = static_cast<double>(result.records) /
                      static_cast<double>(target.num_records());
    std::vector<std::string> row = {name, std::to_string(result.records),
                                    TablePrinter::FormatPercent(coverage, 1),
                                    std::to_string(result.rounds),
                                    std::to_string(result.queries)};
    if (adv.has_value()) {
      // A generated instance without an exact OPT (opt_queries == 0)
      // has no meaningful ratio; "n/a" beats a misleading 0.00.
      if (adv->opt_queries == 0) {
        row.push_back("n/a");
      } else {
        double ratio = static_cast<double>(result.queries) /
                       static_cast<double>(adv->opt_queries);
        row.push_back(TablePrinter::FormatDouble(ratio, 2));
      }
    }
    row.push_back(std::string(StopReasonToString(result.stop_reason)));
    table.AddRow(row);
    traces.push_back(std::move(result.trace));
  }
  table.Print(std::cout);

  if (!options.comparison_csv.empty()) {
    for (size_t i = 0; i < names.size(); ++i) {
      named.push_back(NamedTrace{names[i], &traces[i]});
    }
    std::ofstream file(options.comparison_csv);
    if (!file) {
      return Status::NotFound("cannot create '" + options.comparison_csv +
                              "'");
    }
    DEEPCRAWL_RETURN_IF_ERROR(WriteComparisonCsv(named, file));
    std::cout << "\ncurves written to " << options.comparison_csv << "\n";
  }
  return Status::OK();
}

}  // namespace
}  // namespace deepcrawl

int main(int argc, char** argv) {
  using namespace deepcrawl;
  Options options;
  FlagParser parser;
  RegisterWorkloadFlags(parser, &options.workload);
  parser.AddString("policies", &options.policies,
                   "comma-separated subset of " +
                       std::string(kKnownPolicies) +
                       " (see --list-selectors)");
  parser.AddString("rank-attribute", &options.rank_attribute,
                   "interval attribute for opt-rank/opt-threshold");
  parser.AddInt64("page-size", &options.page_size, "records per page (k)");
  parser.AddInt64("result-limit", &options.result_limit,
                  "max retrievable records per query (0 = unlimited)");
  parser.AddInt64("max-rounds", &options.max_rounds,
                  "round budget per policy (0 = unbounded)");
  parser.AddDouble("saturation", &options.saturation,
                   "coverage at which MMMI switches on");
  parser.AddInt64("seed", &options.seed, "seed-value choice");
  parser.AddString("comparison-csv", &options.comparison_csv,
                   "write aligned per-policy coverage curves to this CSV");
  parser.AddBool("list-selectors", &options.list_selectors,
                 "print every registered selection policy and exit");
  parser.AddBool("help", &options.help, "print this help");

  Status parsed = parser.Parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << "error: " << parsed.ToString() << "\n\nflags:\n"
              << parser.HelpText();
    return 2;
  }
  if (options.help) {
    std::cout << "deepcrawl_compare — compare query-selection policies "
                 "on one target\n\nflags:\n"
              << parser.HelpText();
    return 0;
  }
  if (options.list_selectors) {
    std::cout << FormatSelectorList();
    return 0;
  }
  Status status = Run(options);
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
