// LocalStore: the crawler's local database DBlocal and the incremental
// statistics table over it.
//
// §2.5: the Query Selector keeps a statistics table with "all the
// information needed ... to make the selection decision", fed by the
// Result Extractor as records are harvested. This class is that store:
//
//   * deduplicated harvested records (the crawler may receive the same
//     record from many queries; only the first copy counts);
//   * per-value local match counts num(q, DBlocal);
//   * local postings (which local records contain a value), powering the
//     mutual-information computations of §3.3;
//   * the degree of every value in the local attribute-value graph
//     G_local, maintained incrementally, powering the greedy link-based
//     selector of §3.2. Exact distinct-neighbor tracking can be switched
//     off in favour of a cheap "link count" (degree with multiplicity)
//     when memory matters; the ablation bench compares both.
//
// Hot-path layout (the kCsr default): postings and the G_local
// adjacency live in ChunkedArena dynamic-CSR stores (one flat buffer
// each, amortized relocation on doubling, epoch compaction), and edge
// dedup goes through one flat open-addressing hash of packed
// (min, max) value pairs — a single probe per record value pair instead
// of two std::unordered_set inserts. The pre-optimization layout (one
// unordered_set per value, one vector per posting list) is kept behind
// Options::layout = kReference so the differential suite can prove the
// two produce byte-identical crawls; see DESIGN.md §9.

#ifndef DEEPCRAWL_CRAWLER_LOCAL_STORE_H_
#define DEEPCRAWL_CRAWLER_LOCAL_STORE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/relation/types.h"
#include "src/util/chunked_arena.h"
#include "src/util/flat_hash.h"
#include "src/util/status.h"

namespace deepcrawl {

class PagedStore;
struct PageCacheStats;

class LocalStore {
 public:
  // Which physical layout backs the statistics table. All produce
  // identical observable behaviour (degrees, spans, frequencies, and
  // their orders); kReference exists only as the differential-test
  // yardstick and for A/B benchmarking, kPaged spills to disk through
  // a bounded page cache so the store can exceed RAM (DESIGN.md §14).
  enum class Layout {
    kCsr,        // flat arenas + edge hash (the fast in-memory default)
    kReference,  // one unordered_set / vector per value (pre-PR layout)
    kPaged,      // on-disk page-cache backend (src/crawler/paged_store.h)
  };

  struct Options {
    // Track exact distinct-neighbor degrees (true) or the cheaper
    // with-multiplicity link count (false).
    bool exact_degrees = true;
    Layout layout = Layout::kCsr;
    // kPaged only: store directory, page size (power of two >= 64),
    // page-cache capacity in frames, and whether existing on-disk
    // state is kept for a follow-up LoadPagedCheckpoint.
    std::string paged_dir;
    uint32_t page_bytes = 4096;
    uint32_t cache_pages = 1024;
    bool paged_resume = false;
  };

  LocalStore();  // default options
  explicit LocalStore(Options options);
  ~LocalStore();

  LocalStore(const LocalStore&) = delete;
  LocalStore& operator=(const LocalStore&) = delete;

  // Adds a harvested record. Returns true when the record was new.
  // A new record starts with one observation.
  bool AddRecord(RecordId id, std::span<const ValueId> values);

  bool ContainsRecord(RecordId id) const;

  // Notes that an already-stored record was returned again by some
  // query. Duplicate-observation counts ("abundance data") feed the
  // Chao-style online size estimators in src/estimate. Aborts when the
  // record was never added.
  void ObserveDuplicate(RecordId id);

  // Checkpoint-restore path: sets the record's observation counter to
  // `count` (>= 1) in one step, equivalent to AddRecord followed by
  // count - 1 ObserveDuplicate calls but O(1) — decode cost must not
  // scale with a counter read from (possibly corrupt) input. Aborts
  // when the record was never added or `count` is zero.
  void RestoreObservations(RecordId id, uint32_t count);

  // Total result records observed, duplicates included.
  uint64_t num_observations() const;

  // Number of stored records observed exactly `k` times (k >= 1).
  size_t RecordsObservedTimes(uint32_t k) const;

  size_t num_records() const;
  size_t num_values_seen() const;

  // num(q, DBlocal): local records containing `v`.
  uint32_t LocalFrequency(ValueId v) const;

  // Degree of `v` in G_local: distinct co-occurring values when exact
  // tracking is on, otherwise the with-multiplicity link count.
  uint64_t LocalDegree(ValueId v) const;

  // Distinct G_local neighbors of `v`, in first-co-occurrence order
  // (deterministic and identical across layouts). Empty when exact
  // degree tracking is off. Invalidated by the next AddRecord — and,
  // under kPaged, by the next NeighborsSpan call (each accessor owns
  // one copy-out scratch buffer; holding spans from two *different*
  // accessors simultaneously is fine).
  std::span<const ValueId> NeighborsSpan(ValueId v) const;

  // Local record slots (indices into this store) containing `v`.
  // Invalidated by the next AddRecord (kPaged: or LocalPostings call).
  std::span<const uint32_t> LocalPostings(ValueId v) const;

  // Values of the local record in slot `slot`. Invalidated by the
  // next AddRecord (kPaged: or RecordValues call).
  std::span<const ValueId> RecordValues(uint32_t slot) const;

  // Original (server-side) record id of slot `slot`.
  RecordId OriginalRecordId(uint32_t slot) const;

  // Times the record in slot `slot` was observed (>= 1), for the
  // checkpoint layer's logical-replay serialization.
  uint32_t ObservationCount(uint32_t slot) const;

  const Options& options() const { return options_; }

  // --- kPaged checkpoint surface (aborts unless layout == kPaged) ---
  // Flushes dirty pages, fsyncs, and durably writes MANIFEST.<stamp>;
  // the returned stamp goes into the crawl checkpoint's STOR section.
  StatusOr<uint64_t> CheckpointPaged();
  // Restores the paged backend to MANIFEST.<stamp> (sweeping crash
  // leftovers and validating every referenced page checksum).
  Status LoadPagedCheckpoint(uint64_t stamp);
  // Page-cache hit/miss/eviction/writeback counters.
  const PageCacheStats& paged_cache_stats() const;

 private:
  void EnsureValueCapacity(ValueId v);

  Options options_;

  // Record content, CSR-style; slot i holds the i-th harvested record.
  std::vector<ValueId> record_values_;
  std::vector<size_t> record_offsets_ = {0};
  std::vector<RecordId> original_ids_;
  std::unordered_map<RecordId, uint32_t> slot_of_;
  std::vector<uint32_t> observation_count_;  // per slot
  uint64_t num_observations_ = 0;

  // Per-value statistics, indexed by ValueId (grown on demand).
  std::vector<uint32_t> local_frequency_;
  std::vector<uint64_t> link_count_;

  // kCsr layout: dynamic-CSR postings and adjacency, plus the flat edge
  // hash that deduplicates G_local edges ((min << 32) | max keys).
  ChunkedArena<uint32_t> postings_csr_;
  ChunkedArena<ValueId> adjacency_csr_;
  FlatSet64 edge_set_;

  // kReference layout: the pre-optimization containers. The neighbor
  // list mirrors adjacency_csr_'s first-co-occurrence order so
  // NeighborsSpan is layout-independent.
  std::vector<std::vector<uint32_t>> local_postings_ref_;
  std::vector<std::unordered_set<ValueId>> neighbor_sets_ref_;
  std::vector<std::vector<ValueId>> neighbor_lists_ref_;

  // kPaged layout: the on-disk backend plus one scratch buffer per
  // span accessor (rows cross page boundaries, so spans are served
  // from copy-outs; mutable because reading pages touches the cache).
  std::unique_ptr<PagedStore> paged_;
  mutable std::vector<ValueId> neighbors_scratch_;
  mutable std::vector<uint32_t> postings_scratch_;
  mutable std::vector<ValueId> record_scratch_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_CRAWLER_LOCAL_STORE_H_
