// Greedy relational-link query selection (§3.2).
//
// Motivated by the power-law degree distribution of real database graphs
// (Figure 2), the greedy link-based crawler estimates a candidate's
// harvest rate as proportional to its degree in the local graph G_local
// and always queries the frontier value with the greatest link number —
// hub values uncover large portions of the database quickly.
//
// Implementation: a lazy max-heap keyed by local degree. Degrees only
// grow, so entries are re-pushed whenever a harvested record touches a
// pending value, and stale (smaller-degree) entries are skipped on pop.
// Amortized cost: O(log F) per degree change, F = frontier size.

#ifndef DEEPCRAWL_CRAWLER_GREEDY_LINK_SELECTOR_H_
#define DEEPCRAWL_CRAWLER_GREEDY_LINK_SELECTOR_H_

#include <cstdint>
#include <queue>
#include <string_view>
#include <vector>

#include "src/crawler/local_store.h"
#include "src/crawler/query_selector.h"

namespace deepcrawl {

class GreedyLinkSelector : public QuerySelector {
 public:
  // `store` must outlive the selector and be the store the crawler
  // feeds; degrees are read from it.
  explicit GreedyLinkSelector(const LocalStore& store);

  void OnValueDiscovered(ValueId v) override;
  void OnRecordHarvested(uint32_t slot) override;
  ValueId SelectNext() override;
  std::string_view name() const override { return "greedy-link"; }

  size_t frontier_size() const { return frontier_size_; }

 protected:
  bool IsPending(ValueId v) const {
    return v < pending_.size() && pending_[v] != 0;
  }
  void MarkNotPending(ValueId v) {
    pending_[v] = 0;
    --frontier_size_;
  }
  // Re-inserts `v` with its current degree (no-op unless pending).
  void Push(ValueId v);

  // Snapshot of all values currently in Lto-query (O(value space)).
  std::vector<ValueId> PendingValues() const;

  const LocalStore& store() const { return store_; }

 private:
  struct HeapEntry {
    uint64_t degree;
    ValueId value;
    bool operator<(const HeapEntry& other) const {
      if (degree != other.degree) return degree < other.degree;
      // Deterministic tie-break: prefer smaller id (max-heap pops it last
      // among equals reversed, so compare greater-id as "less").
      return value > other.value;
    }
  };

  const LocalStore& store_;
  std::priority_queue<HeapEntry> heap_;
  std::vector<char> pending_;
  size_t frontier_size_ = 0;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_CRAWLER_GREEDY_LINK_SELECTOR_H_
