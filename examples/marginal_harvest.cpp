// Harvesting the marginal content (§3.3): the "low marginal benefit"
// phenomenon and the MMMI switch-over.
//
// Crawls a correlated auction database to deep coverage twice — once
// with plain greedy-link selection and once with the GL -> MMMI
// switch-over at 85% — and prints the cost of each coverage decile, so
// the §5.1 observation ("cost increases dramatically when the coverage
// exceeds 80%") and the Figure 4 saving are both visible.

#include <iostream>

#include "src/crawler/crawler.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/mmmi_selector.h"
#include "src/datagen/canned_workloads.h"
#include "src/datagen/workload_config.h"
#include "src/server/web_db_server.h"
#include "src/util/table_printer.h"

using namespace deepcrawl;

int main() {
  SyntheticDbConfig config = EbayConfig(/*scale=*/0.1, /*seed=*/23);
  StatusOr<Table> generated = GenerateTable(config);
  if (!generated.ok()) {
    std::cerr << generated.status().ToString() << "\n";
    return 1;
  }
  const Table& auctions = *generated;
  WebDbServer server(auctions, ServerOptions{});
  std::cout << "auction database: " << auctions.num_records()
            << " records, " << auctions.num_distinct_values()
            << " distinct attribute values\n\n";

  CrawlOptions options;
  options.target_records = static_cast<uint64_t>(
      0.99 * static_cast<double>(auctions.num_records()));
  options.saturation_records = static_cast<uint64_t>(
      0.85 * static_cast<double>(auctions.num_records()));

  auto run = [&](QuerySelector& selector, LocalStore& store) {
    server.ResetMeters();
    Crawler crawler(server, selector, store, options);
    crawler.AddSeed(1);
    StatusOr<CrawlResult> result = crawler.Run();
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      std::exit(1);
    }
    return std::move(*result);
  };

  LocalStore store_gl;
  GreedyLinkSelector greedy(store_gl);
  CrawlResult result_gl = run(greedy, store_gl);

  LocalStore store_mmmi;
  MmmiSelector mmmi(store_mmmi);
  CrawlResult result_mmmi = run(mmmi, store_mmmi);

  TablePrinter table({"coverage", "GL rounds", "GL+MMMI rounds"});
  for (int decile = 1; decile <= 9; ++decile) {
    uint64_t target = static_cast<uint64_t>(
        0.11 * decile * static_cast<double>(auctions.num_records()));
    auto gl = result_gl.trace.RoundsToRecords(target);
    auto mm = result_mmmi.trace.RoundsToRecords(target);
    table.AddRow({TablePrinter::FormatPercent(0.11 * decile, 0),
                  gl ? std::to_string(*gl) : "-",
                  mm ? std::to_string(*mm) : "-"});
  }
  table.Print(std::cout);

  std::cout << "\ntotals to 99% coverage: GL " << result_gl.rounds
            << " rounds, GL+MMMI " << result_mmmi.rounds
            << " rounds.\nNote how each extra decile costs more than the "
               "previous one — the \"low marginal benefit\" phenomenon — "
               "and how the mutual-information re-ordering (switched on "
               "at 85%) trims the expensive tail.\n";
  return 0;
}
