# Empty compiler generated dependencies file for bench_domset.
# This may be replaced when dependencies are built.
