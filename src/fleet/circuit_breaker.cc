#include "src/fleet/circuit_breaker.h"

#include <algorithm>
#include <cmath>

#include "src/util/checkpoint_io.h"
#include "src/util/logging.h"

namespace deepcrawl {

const char* BreakerStateToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config)
    : config_(config), cooldown_(config.cooldown_ticks) {
  DEEPCRAWL_CHECK_GE(config_.consecutive_failed_turns, 1u);
  DEEPCRAWL_CHECK(config_.error_rate_to_open > 0.0 &&
                  config_.error_rate_to_open <= 1.0)
      << "error_rate_to_open must be in (0, 1]";
  DEEPCRAWL_CHECK(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0)
      << "ewma_alpha must be in (0, 1]";
  DEEPCRAWL_CHECK_GE(config_.cooldown_ticks, 1u);
  DEEPCRAWL_CHECK_GE(config_.cooldown_multiplier, 1.0);
  DEEPCRAWL_CHECK_GE(config_.max_cooldown_ticks, config_.cooldown_ticks);
}

bool CircuitBreaker::CanAdmit(uint64_t now) const {
  if (exhausted()) return false;
  if (state_ == BreakerState::kOpen) return now >= admit_at_;
  return true;
}

uint64_t CircuitBreaker::EligibleAt(uint64_t now) const {
  if (state_ == BreakerState::kOpen) return std::max(now, admit_at_);
  return now;
}

void CircuitBreaker::Admit(uint64_t now) {
  DEEPCRAWL_DCHECK(CanAdmit(now)) << "turn granted past a closed gate";
  if (state_ == BreakerState::kOpen) {
    // Cooldown elapsed: this turn is the half-open probe.
    ticks_open_ += now - open_since_;
    state_ = BreakerState::kHalfOpen;
    ++transitions_.probes;
  }
}

void CircuitBreaker::TripOpen(uint64_t now) {
  state_ = BreakerState::kOpen;
  open_since_ = now;
  admit_at_ = now + cooldown_;
  consecutive_failed_ = 0;
}

void CircuitBreaker::OnTurn(uint64_t now, uint64_t rounds, uint64_t failures,
                            uint64_t new_records) {
  ++turns_observed_;
  // A turn's failure rate: failed fetches per round granted (each failed
  // fetch costs exactly one round, so the ratio is in [0, 1]).
  double rate = rounds == 0 ? 0.0
                            : static_cast<double>(failures) /
                                  static_cast<double>(rounds);
  error_ewma_ = config_.ewma_alpha * rate +
                (1.0 - config_.ewma_alpha) * error_ewma_;
  bool fully_failed = rounds > 0 && failures > 0 && new_records == 0;

  if (state_ == BreakerState::kHalfOpen) {
    if (fully_failed) {
      // Probe failed: back to open, with grown (capped) cooldown.
      cooldown_ = std::min<uint64_t>(
          config_.max_cooldown_ticks,
          static_cast<uint64_t>(std::llround(
              static_cast<double>(cooldown_) * config_.cooldown_multiplier)));
      ++transitions_.reopens;
      TripOpen(now);
    } else {
      // Probe succeeded: readmit. A flapper past the quarantine
      // threshold keeps its grown cooldown — one lucky probe must not
      // reset its re-probe backoff.
      state_ = BreakerState::kClosed;
      ++transitions_.closes;
      consecutive_failed_ = 0;
      error_ewma_ = 0.0;
      if (!quarantined()) cooldown_ = config_.cooldown_ticks;
    }
    return;
  }

  if (state_ != BreakerState::kClosed) return;
  if (fully_failed) {
    ++consecutive_failed_;
  } else {
    consecutive_failed_ = 0;
  }
  bool too_many_consecutive =
      consecutive_failed_ >= config_.consecutive_failed_turns;
  bool rate_too_high = turns_observed_ >= config_.min_turns_for_rate &&
                       error_ewma_ >= config_.error_rate_to_open;
  if (too_many_consecutive || rate_too_high) {
    ++transitions_.opens;
    TripOpen(now);
  }
}

uint64_t CircuitBreaker::TicksOpen(uint64_t now) const {
  uint64_t ticks = ticks_open_;
  if (state_ == BreakerState::kOpen && now > open_since_) {
    ticks += now - open_since_;
  }
  return ticks;
}

void CircuitBreaker::SaveState(CheckpointWriter& writer) const {
  writer.WriteU8(static_cast<uint8_t>(state_));
  writer.WriteU32(consecutive_failed_);
  writer.WriteDouble(error_ewma_);
  writer.WriteU64(turns_observed_);
  writer.WriteU64(cooldown_);
  writer.WriteU64(admit_at_);
  writer.WriteU64(open_since_);
  writer.WriteU64(ticks_open_);
  writer.WriteU32(transitions_.opens);
  writer.WriteU32(transitions_.reopens);
  writer.WriteU32(transitions_.closes);
  writer.WriteU32(transitions_.probes);
}

Status CircuitBreaker::LoadState(CheckpointReader& reader) {
  uint8_t state = reader.ReadU8();
  if (reader.ok() && state > static_cast<uint8_t>(BreakerState::kHalfOpen)) {
    reader.MarkCorrupt("breaker state out of range");
  }
  state_ = static_cast<BreakerState>(state);
  consecutive_failed_ = reader.ReadU32();
  error_ewma_ = reader.ReadDouble();
  if (reader.ok() && !(error_ewma_ >= 0.0 && error_ewma_ <= 1.0)) {
    reader.MarkCorrupt("breaker error EWMA out of range");
  }
  turns_observed_ = reader.ReadU64();
  cooldown_ = reader.ReadU64();
  if (reader.ok() && (cooldown_ < config_.cooldown_ticks ||
                      cooldown_ > config_.max_cooldown_ticks)) {
    reader.MarkCorrupt("breaker cooldown out of range");
  }
  admit_at_ = reader.ReadU64();
  open_since_ = reader.ReadU64();
  ticks_open_ = reader.ReadU64();
  transitions_.opens = reader.ReadU32();
  transitions_.reopens = reader.ReadU32();
  transitions_.closes = reader.ReadU32();
  transitions_.probes = reader.ReadU32();
  return reader.status();
}

}  // namespace deepcrawl
