// Tests of the Weighted Minimum Dominating Set solvers (Definition 2.4),
// including exact-vs-greedy property sweeps on random databases.

#include "src/graph/dominating_set.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/random.h"
#include "tests/test_util.h"

namespace deepcrawl {
namespace {

using testing_util::GetValueId;
using testing_util::MakeFigure1Table;
using testing_util::MakeTable;

VertexWeightFn UnitWeight() {
  return [](ValueId) { return 1.0; };
}

TEST(DominatingSetTest, Figure1GreedyIsDominating) {
  Table table = MakeFigure1Table();
  AttributeValueGraph graph = AttributeValueGraph::Build(table);
  DominatingSetResult result = GreedyWeightedDominatingSet(graph,
                                                           UnitWeight());
  EXPECT_TRUE(IsDominatingSet(graph, result.vertices));
  EXPECT_DOUBLE_EQ(result.total_weight,
                   static_cast<double>(result.vertices.size()));
}

TEST(DominatingSetTest, Figure1ExactOptimumIsTwo) {
  // {c1, c2} dominates Figure 1's graph: c1 covers a1,b1,a2,b2; c2
  // covers a2,b2,b3,a3,b4. No single vertex covers all 9.
  Table table = MakeFigure1Table();
  AttributeValueGraph graph = AttributeValueGraph::Build(table);
  DominatingSetResult exact = ExactMinimumDominatingSet(graph, UnitWeight());
  EXPECT_TRUE(IsDominatingSet(graph, exact.vertices));
  EXPECT_EQ(exact.vertices.size(), 2u);
}

TEST(DominatingSetTest, SingleCliqueNeedsOneVertex) {
  Table table = MakeTable({{{"A", "w"}, {"B", "x"}, {"C", "y"}}});
  AttributeValueGraph graph = AttributeValueGraph::Build(table);
  DominatingSetResult exact = ExactMinimumDominatingSet(graph, UnitWeight());
  EXPECT_EQ(exact.vertices.size(), 1u);
  DominatingSetResult greedy = GreedyWeightedDominatingSet(graph,
                                                           UnitWeight());
  EXPECT_EQ(greedy.vertices.size(), 1u);
}

TEST(DominatingSetTest, IsolatedVerticesMustAllBeSelected) {
  Table table = MakeTable({{{"A", "p"}}, {{"A", "q"}}, {{"A", "r"}}});
  AttributeValueGraph graph = AttributeValueGraph::Build(table);
  DominatingSetResult exact = ExactMinimumDominatingSet(graph, UnitWeight());
  EXPECT_EQ(exact.vertices.size(), 3u);
  DominatingSetResult greedy = GreedyWeightedDominatingSet(graph,
                                                           UnitWeight());
  EXPECT_EQ(greedy.vertices.size(), 3u);
}

TEST(DominatingSetTest, WeightsSteerExactChoice) {
  // Star: hub h connected to leaves. With unit weights {h} wins; with a
  // huge hub weight, picking the hub is still optimal for domination of
  // leaves... unless leaves can cover themselves more cheaply.
  Table table = MakeTable({
      {{"H", "hub"}, {"L", "l1"}},
      {{"H", "hub"}, {"L", "l2"}},
      {{"H", "hub"}, {"L", "l3"}},
  });
  AttributeValueGraph graph = AttributeValueGraph::Build(table);
  ValueId hub = GetValueId(table, "H", "hub");

  DominatingSetResult cheap_hub = ExactMinimumDominatingSet(
      graph, [&](ValueId v) { return v == hub ? 0.5 : 1.0; });
  ASSERT_EQ(cheap_hub.vertices.size(), 1u);
  EXPECT_EQ(cheap_hub.vertices[0], hub);

  // Hub so expensive that selecting all three leaves is cheaper.
  DominatingSetResult pricey_hub = ExactMinimumDominatingSet(
      graph, [&](ValueId v) { return v == hub ? 10.0 : 1.0; });
  EXPECT_TRUE(IsDominatingSet(graph, pricey_hub.vertices));
  EXPECT_LT(pricey_hub.total_weight, 10.0);
  for (ValueId v : pricey_hub.vertices) EXPECT_NE(v, hub);
}

TEST(DominatingSetTest, IsDominatingSetRejectsNonCover) {
  Table table = MakeFigure1Table();
  AttributeValueGraph graph = AttributeValueGraph::Build(table);
  ValueId a1 = GetValueId(table, "A", "a1");
  EXPECT_FALSE(IsDominatingSet(graph, {a1}));
  EXPECT_FALSE(IsDominatingSet(graph, {}));
}

// Property sweep: on random small databases, greedy must always produce
// a valid dominating set whose weight is within the H(Delta+1)
// approximation bound of the exact optimum.
class DominatingSetPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(DominatingSetPropertyTest, GreedyWithinHarmonicBoundOfExact) {
  Pcg32 rng(GetParam());
  // Random database: 6-9 records, 2-3 attributes, tiny pools.
  std::vector<testing_util::Row> rows;
  uint32_t num_records = 6 + rng.NextBounded(4);
  uint32_t num_attrs = 2 + rng.NextBounded(2);
  for (uint32_t r = 0; r < num_records; ++r) {
    testing_util::Row row;
    for (uint32_t a = 0; a < num_attrs; ++a) {
      row.push_back({"attr" + std::to_string(a),
                     "v" + std::to_string(rng.NextBounded(4))});
    }
    rows.push_back(row);
  }
  Table table = testing_util::MakeTable(rows);
  AttributeValueGraph graph = AttributeValueGraph::Build(table);

  // Paper-style weights: cost of fully draining the value at k=2.
  VertexWeightFn weight = [&](ValueId v) {
    return static_cast<double>((table.value_frequency(v) + 1) / 2);
  };
  DominatingSetResult greedy = GreedyWeightedDominatingSet(graph, weight);
  DominatingSetResult exact = ExactMinimumDominatingSet(graph, weight);

  ASSERT_TRUE(IsDominatingSet(graph, greedy.vertices));
  ASSERT_TRUE(IsDominatingSet(graph, exact.vertices));
  EXPECT_LE(exact.total_weight, greedy.total_weight + 1e-9);

  uint32_t max_degree = 0;
  for (ValueId v = 0; v < graph.num_vertices(); ++v) {
    max_degree = std::max(max_degree, graph.Degree(v));
  }
  double harmonic = 0.0;
  for (uint32_t i = 1; i <= max_degree + 1; ++i) harmonic += 1.0 / i;
  EXPECT_LE(greedy.total_weight, exact.total_weight * harmonic + 1e-9)
      << "greedy exceeded the H(Delta+1) bound";
}

INSTANTIATE_TEST_SUITE_P(RandomDatabases, DominatingSetPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

TEST(DominatingSetTest, EmptyGraph) {
  Schema schema;
  ASSERT_TRUE(schema.AddAttribute("A").ok());
  Table table(std::move(schema));
  AttributeValueGraph graph = AttributeValueGraph::Build(table);
  EXPECT_TRUE(GreedyWeightedDominatingSet(graph, UnitWeight())
                  .vertices.empty());
  EXPECT_TRUE(ExactMinimumDominatingSet(graph, UnitWeight())
                  .vertices.empty());
}

}  // namespace
}  // namespace deepcrawl
