// Regression tests for single-writer trace emission (the bench_common /
// trace_io fix): CrawlTrace::AddWave must be indistinguishable from
// point-by-point Add, and the CSV writers must emit their whole output
// through ONE stream write instead of a write per row — a row-per-write
// emitter interleaves rows when two benches share a stream.

#include "src/crawler/trace_io.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <streambuf>
#include <string>
#include <vector>

#include "src/crawler/metrics.h"
#include "src/util/random.h"

namespace deepcrawl {
namespace {

TEST(TraceWaveTest, AddWaveMatchesSequentialAdds) {
  // Random monotone waves, including empty waves and same-round points
  // (which Add collapses); both paths must agree exactly.
  Pcg32 rng(42);
  CrawlTrace wave_trace;
  CrawlTrace point_trace;
  uint64_t rounds = 0;
  uint64_t records = 0;
  for (int w = 0; w < 50; ++w) {
    std::vector<TracePoint> wave;
    uint32_t wave_size = rng.NextBounded(6);  // 0..5 points
    for (uint32_t i = 0; i < wave_size; ++i) {
      rounds += rng.NextBounded(3);   // may stay on the same round
      records += rng.NextBounded(4);  // may stay on the same count
      wave.push_back(TracePoint{rounds, records});
    }
    wave_trace.AddWave(wave);
    for (const TracePoint& p : wave) point_trace.Add(p.rounds, p.records);
    ASSERT_EQ(wave_trace.points(), point_trace.points()) << "wave " << w;
  }
  EXPECT_FALSE(wave_trace.empty());
  EXPECT_EQ(wave_trace.RecordsAtRounds(rounds), records);
}

TEST(TraceWaveTest, AddWaveOfOneEqualsAdd) {
  CrawlTrace a;
  CrawlTrace b;
  std::vector<TracePoint> wave = {TracePoint{3, 7}};
  a.AddWave(wave);
  b.Add(3, 7);
  EXPECT_EQ(a.points(), b.points());
}

// A streambuf that counts how many distinct write operations reached it.
class CountingBuf : public std::streambuf {
 public:
  const std::string& contents() const { return contents_; }
  int write_ops() const { return write_ops_; }

 protected:
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    ++write_ops_;
    contents_.append(s, static_cast<size_t>(n));
    return n;
  }
  int_type overflow(int_type ch) override {
    if (ch != traits_type::eof()) {
      ++write_ops_;
      contents_.push_back(static_cast<char>(ch));
    }
    return ch;
  }

 private:
  std::string contents_;
  int write_ops_ = 0;
};

CrawlTrace SampleTrace() {
  CrawlTrace trace;
  trace.Add(1, 2);
  trace.Add(2, 5);
  trace.Add(4, 5);
  trace.Add(7, 11);
  return trace;
}

TEST(TraceWaveTest, WriteTraceCsvIsASingleStreamWrite) {
  CrawlTrace trace = SampleTrace();
  CountingBuf buf;
  std::ostream unbuffered(&buf);
  ASSERT_TRUE(WriteTraceCsv(trace, unbuffered).ok());
  EXPECT_EQ(buf.write_ops(), 1) << "trace CSV must be emitted in one write";

  // And the single write carries exactly what the streaming path used
  // to produce.
  std::ostringstream reference;
  ASSERT_TRUE(WriteTraceCsv(trace, reference).ok());
  EXPECT_EQ(buf.contents(), reference.str());
  EXPECT_NE(buf.contents().find("rounds,records"), std::string::npos);
  EXPECT_NE(buf.contents().find("7,11"), std::string::npos);
}

TEST(TraceWaveTest, WriteComparisonCsvIsASingleStreamWrite) {
  CrawlTrace a = SampleTrace();
  CrawlTrace b;
  b.Add(2, 1);
  b.Add(7, 9);
  std::vector<NamedTrace> traces = {{"alpha", &a}, {"beta", &b}};

  CountingBuf buf;
  std::ostream unbuffered(&buf);
  ASSERT_TRUE(WriteComparisonCsv(traces, unbuffered).ok());
  EXPECT_EQ(buf.write_ops(), 1)
      << "comparison CSV must be emitted in one write";
  EXPECT_NE(buf.contents().find("rounds,alpha,beta"), std::string::npos);
}

TEST(TraceWaveTest, EmptyWaveIsANoOp) {
  CrawlTrace trace;
  trace.Add(1, 1);
  trace.AddWave({});
  ASSERT_EQ(trace.points().size(), 1u);
  EXPECT_EQ(trace.points()[0], (TracePoint{1, 1}));
}

}  // namespace
}  // namespace deepcrawl
