// Fleet scheduler ablation — marginal-harvest allocation vs round-robin
// and sequential draining, swept over background fault rates.
//
// The paper ranks queries within one database by marginal harvest rate;
// the fleet lifts the same economics to scheduling ROUNDS across
// databases (DESIGN.md §11). This harness measures what that buys: the
// communication rounds a heterogeneous 6-source fleet needs to reach
// 90% of its aggregate target, for each scheduler, at 0% / 10% / 30%
// transient-failure rates. Marginal-harvest should dominate early
// aggregate coverage (it feeds the fattest healthy source first) and
// never lose on total cost; under faults the health discount steers
// rounds away from failing sources while their breakers cool down.
//
// Fixed seeds end to end: every cell is deterministic, so the committed
// BENCH_fleet.json baseline gates regressions exactly (tools/check.sh
// pass 4).

#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/fleet/crawl_fleet.h"
#include "src/server/faulty_server.h"
#include "src/util/table_printer.h"

namespace {
constexpr uint32_t kSources = 6;
constexpr double kScale = 0.004;
constexpr double kCoverage = 0.90;
}  // namespace

int main(int argc, char** argv) {
  using namespace deepcrawl;
  bench::PrintBanner(
      "Fleet scheduler ablation: rounds to 90% aggregate coverage",
      "single-database crawls in the paper; the fleet schedules rounds "
      "across sources by health-discounted marginal harvest rate",
      "6 heterogeneous sources (ebay/acm/dblp/imdb cycle) at scale " +
          TablePrinter::FormatDouble(kScale, 3) +
          ", greedy-link selection per source, fault rates 0%/10%/30%");

  const SchedulerPolicy schedulers[] = {SchedulerPolicy::kMarginalHarvest,
                                        SchedulerPolicy::kRoundRobin,
                                        SchedulerPolicy::kSequential};
  const double fault_rates[] = {0.0, 0.10, 0.30};

  bench::BenchJson json("fleet");
  TablePrinter table({"scheduler", "fault rate", "rounds to 90%",
                      "total rounds", "coverage", "idle ticks"});
  for (SchedulerPolicy scheduler : schedulers) {
    for (double rate : fault_rates) {
      StatusOr<std::vector<FleetSourceSpec>> specs = MakeFleetSourceSpecs(
          kSources, kScale, kCoverage, FaultProfile::Transient(rate));
      DEEPCRAWL_CHECK(specs.ok()) << specs.status().ToString();
      uint64_t fleet_target = 0;
      for (const FleetSourceSpec& spec : *specs) {
        fleet_target += static_cast<uint64_t>(
            kCoverage * static_cast<double>(spec.table.num_records()));
      }

      FleetOptions options;
      options.seed = 7;
      options.scheduler = scheduler;
      options.turn_rounds = 16;
      options.retry.max_requeues = 8;
      CrawlFleet fleet(std::move(*specs), options);
      StatusOr<FleetResult> result = fleet.Run();
      DEEPCRAWL_CHECK(result.ok()) << result.status().ToString();

      uint64_t aggregate_target = static_cast<uint64_t>(
          kCoverage * static_cast<double>(fleet_target));
      std::optional<uint64_t> to90 =
          result->merged.trace.RoundsToRecords(aggregate_target);
      DEEPCRAWL_CHECK(to90.has_value())
          << SchedulerPolicyToString(scheduler) << " at rate " << rate
          << " never reached 90% aggregate coverage";
      double coverage = static_cast<double>(result->merged.records) /
                        static_cast<double>(fleet_target);

      table.AddRow({SchedulerPolicyToString(scheduler),
                    TablePrinter::FormatPercent(rate, 0),
                    std::to_string(*to90),
                    std::to_string(result->merged.rounds),
                    TablePrinter::FormatPercent(coverage, 1),
                    std::to_string(result->idle_ticks)});

      std::string suffix = std::string("_fault") +
                           std::to_string(static_cast<int>(rate * 100));
      std::string prefix = SchedulerPolicyToString(scheduler);
      for (char& c : prefix) {
        if (c == '-') c = '_';
      }
      json.Add(prefix + "_rounds_to_90" + suffix,
               static_cast<double>(*to90), "rounds",
               /*higher_is_better=*/false);
      json.Add(prefix + "_total_rounds" + suffix,
               static_cast<double>(result->merged.rounds), "rounds",
               /*higher_is_better=*/false);
    }
  }
  table.Print(std::cout);
  std::cout << "\nreading: 'rounds to 90%' is aggregate — marginal-harvest "
               "front-loads the fattest healthy sources, so the fleet "
               "banks records early; sequential pays the full cost of "
               "whatever source happens to be first. Total rounds "
               "converge (every scheduler must finish every source); the "
               "win is in when the records arrive, which is what a "
               "budget-capped crawl keeps.\n";

  std::string json_path = bench::JsonPathFromArgs(argc, argv);
  if (!json_path.empty()) json.WriteFile(json_path);
  return 0;
}
