#include "src/index/inverted_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_util.h"

namespace deepcrawl {
namespace {

using testing_util::GetValueId;
using testing_util::MakeFigure1Table;
using testing_util::MakeTable;

TEST(InvertedIndexTest, PostingsMatchTable) {
  Table table = MakeFigure1Table();
  InvertedIndex index(table);
  auto a2 = index.Postings(GetValueId(table, "A", "a2"));
  ASSERT_EQ(a2.size(), 3u);
  EXPECT_EQ(a2[0], 1u);
  EXPECT_EQ(a2[1], 2u);
  EXPECT_EQ(a2[2], 3u);
  EXPECT_EQ(index.MatchCount(GetValueId(table, "B", "b4")), 1u);
}

TEST(InvertedIndexTest, PostingsAreSorted) {
  Table table = MakeFigure1Table();
  InvertedIndex index(table);
  for (ValueId v = 0; v < table.num_distinct_values(); ++v) {
    auto postings = index.Postings(v);
    EXPECT_TRUE(std::is_sorted(postings.begin(), postings.end()));
    EXPECT_EQ(postings.size(), table.value_frequency(v));
  }
}

TEST(InvertedIndexTest, OutOfRangeValueHasEmptyPostings) {
  Table table = MakeFigure1Table();
  InvertedIndex index(table);
  EXPECT_TRUE(index.Postings(9999).empty());
  EXPECT_EQ(index.MatchCount(9999), 0u);
}

TEST(InvertedIndexTest, TotalPostingsEqualsSumOfRecordSizes) {
  Table table = MakeFigure1Table();
  InvertedIndex index(table);
  size_t total = 0;
  for (RecordId r = 0; r < table.num_records(); ++r) {
    total += table.record(r).size();
  }
  EXPECT_EQ(index.total_postings(), total);
}

TEST(InvertedIndexTest, CooccurrenceCount) {
  Table table = MakeFigure1Table();
  InvertedIndex index(table);
  ValueId a2 = GetValueId(table, "A", "a2");
  ValueId b2 = GetValueId(table, "B", "b2");
  ValueId c2 = GetValueId(table, "C", "c2");
  ValueId a1 = GetValueId(table, "A", "a1");
  EXPECT_EQ(index.CooccurrenceCount(a2, b2), 2u);
  EXPECT_EQ(index.CooccurrenceCount(a2, c2), 2u);
  EXPECT_EQ(index.CooccurrenceCount(a1, c2), 0u);
  // Symmetry.
  EXPECT_EQ(index.CooccurrenceCount(b2, a2),
            index.CooccurrenceCount(a2, b2));
  // Self co-occurrence equals frequency.
  EXPECT_EQ(index.CooccurrenceCount(a2, a2), 3u);
}

TEST(InvertedIndexTest, SingleRecordTable) {
  Table table = MakeTable({{{"A", "only"}}});
  InvertedIndex index(table);
  EXPECT_EQ(index.num_values(), 1u);
  EXPECT_EQ(index.MatchCount(0), 1u);
}

}  // namespace
}  // namespace deepcrawl
