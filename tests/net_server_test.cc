// End-to-end loopback tests for the TCP WebDB server and the network
// client (src/net/): handshake schema, fetch parity against the
// in-process backend for every query form, fault propagation (status
// codes and retry-after hints over the wire), pipelining order,
// connection shedding, malformed-frame handling, server-restart
// reconnection, and the pipelined fetch executor.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/net/event_loop.h"
#include "src/net/net_client.h"
#include "src/net/tcp_server.h"
#include "src/server/faulty_server.h"
#include "src/server/web_db_server.h"
#include "src/util/logging.h"
#include "tests/test_util.h"

namespace deepcrawl {
namespace {

using testing_util::GetValueId;
using testing_util::MakeFigure1Table;

// Runs a WebDbTcpServer on its own EventLoop thread. Stats are only
// read after Stop() (the join synchronizes with the loop thread's
// writes).
class LoopServer {
 public:
  LoopServer(QueryInterface& backend, TcpServerOptions options) {
    Status init = loop_.Init();
    DEEPCRAWL_CHECK(init.ok()) << init.ToString();
    server_.emplace(loop_, backend, options);
    Status started = server_->Start();
    DEEPCRAWL_CHECK(started.ok()) << started.ToString();
    thread_ = std::thread([this] { loop_.Run(); });
  }
  ~LoopServer() { Stop(); }

  void Stop() {
    if (thread_.joinable()) {
      loop_.Stop();
      thread_.join();
      server_->Shutdown();
    }
  }

  uint16_t port() const { return server_->port(); }
  const WebDbTcpServer& server() const { return *server_; }

 private:
  EventLoop loop_;
  std::optional<WebDbTcpServer> server_;
  std::thread thread_;
};

TcpServerOptions OptionsFor(const Table& table) {
  TcpServerOptions options;
  options.num_values = table.num_distinct_values();
  return options;
}

NetClientOptions ClientOptions(uint16_t port, uint32_t connections = 1) {
  NetClientOptions options;
  options.port = port;
  options.connections = connections;
  // Tests should fail fast, not hang for the production 15s window.
  options.reconnect_window_ms = 3000;
  options.reconnect_backoff_ms = 5;
  return options;
}

void ExpectSamePage(const StatusOr<ResultPage>& got,
                    const StatusOr<ResultPage>& want) {
  ASSERT_EQ(got.ok(), want.ok())
      << (got.ok() ? want.status().ToString() : got.status().ToString());
  if (!want.ok()) {
    EXPECT_EQ(got.status().code(), want.status().code());
    EXPECT_EQ(got.status().retry_after_rounds(),
              want.status().retry_after_rounds());
    return;
  }
  const ResultPage& g = got.value();
  const ResultPage& w = want.value();
  EXPECT_EQ(g.page_number, w.page_number);
  EXPECT_EQ(g.total_matches, w.total_matches);
  EXPECT_EQ(g.has_more, w.has_more);
  ASSERT_EQ(g.records.size(), w.records.size());
  for (size_t i = 0; i < w.records.size(); ++i) {
    EXPECT_EQ(g.records[i].id, w.records[i].id);
    EXPECT_EQ(std::vector<ValueId>(g.records[i].values.begin(),
                                   g.records[i].values.end()),
              std::vector<ValueId>(w.records[i].values.begin(),
                                   w.records[i].values.end()))
        << "record " << i;
  }
}

TEST(NetServerTest, HandshakeExposesInterfaceSchema) {
  Table table = MakeFigure1Table();
  ServerOptions server_options;
  server_options.page_size = 2;
  server_options.result_limit = 4;
  WebDbServer backend(table, server_options);
  LoopServer loop_server(backend, OptionsFor(table));

  StatusOr<std::unique_ptr<NetQueryClient>> client =
      NetQueryClient::Connect(ClientOptions(loop_server.port()));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_EQ((*client)->options().page_size, server_options.page_size);
  EXPECT_EQ((*client)->options().result_limit, server_options.result_limit);
  EXPECT_EQ((*client)->options().reports_total_count,
            server_options.reports_total_count);
  for (ValueId v = 0; v < table.num_distinct_values() + 3; ++v) {
    EXPECT_EQ((*client)->IsQueriableValue(v), backend.IsQueriableValue(v))
        << "value " << v;
  }
}

TEST(NetServerTest, EveryFetchFormMatchesInProcess) {
  Table table = MakeFigure1Table();
  ServerOptions server_options;
  server_options.page_size = 2;
  WebDbServer backend(table, server_options);
  WebDbServer reference(table, server_options);
  LoopServer loop_server(backend, OptionsFor(table));

  StatusOr<std::unique_ptr<NetQueryClient>> connected =
      NetQueryClient::Connect(ClientOptions(loop_server.port()));
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  NetQueryClient& client = **connected;

  ValueId a2 = GetValueId(table, "A", "a2");
  ValueId c2 = GetValueId(table, "C", "c2");
  AttributeId attr_b = table.schema().FindAttribute("B").value();

  for (uint32_t page = 0; page < 3; ++page) {
    ExpectSamePage(client.FetchPage(a2, page),
                   reference.FetchPage(a2, page));
  }
  ExpectSamePage(client.FetchPageByText(attr_b, "b2", 0),
                 reference.FetchPageByText(attr_b, "b2", 0));
  ExpectSamePage(client.FetchPageByKeyword("c2", 0),
                 reference.FetchPageByKeyword("c2", 0));
  std::vector<ValueId> conjunction = {a2, c2};
  ExpectSamePage(client.FetchPageConjunctive(conjunction, 0),
                 reference.FetchPageConjunctive(conjunction, 0));
  ExpectSamePage(client.FetchPageKeywordOf(a2, 0),
                 reference.FetchPageKeywordOf(a2, 0));

  // Error paths cross the wire as faithfully as pages do.
  ExpectSamePage(client.FetchPage(a2, 999), reference.FetchPage(a2, 999));
  ExpectSamePage(client.FetchPage(kInvalidValueId, 0),
                 reference.FetchPage(kInvalidValueId, 0));

  // One attempt = one round, page 0 = one query: the network client
  // must meter exactly like the in-process server.
  EXPECT_EQ(client.communication_rounds(), reference.communication_rounds());
  EXPECT_EQ(client.queries_issued(), reference.queries_issued());

  // Socket round trips are real, so the RTT counters must have
  // recorded one sample per fetch.
  EXPECT_EQ(client.rtt_counters().fetches, client.communication_rounds());
  EXPECT_GT(client.rtt_counters().max_rtt_us, 0u);
}

TEST(NetServerTest, KeyedFaultsMatchInProcessThroughTcp) {
  Table table = MakeFigure1Table();
  ServerOptions server_options;
  server_options.page_size = 2;
  WebDbServer backend(table, server_options);
  FaultProfile profile;
  profile.unavailable_rate = 0.3;
  profile.rate_limit_rate = 0.3;
  profile.retry_after_rounds = 6;
  FaultyServer faulty(backend, profile, /*seed=*/11);
  faulty.set_keyed_faults(true);
  LoopServer loop_server(faulty, OptionsFor(table));

  WebDbServer reference_backend(table, server_options);
  FaultyServer reference(reference_backend, profile, /*seed=*/11);
  reference.set_keyed_faults(true);

  StatusOr<std::unique_ptr<NetQueryClient>> connected =
      NetQueryClient::Connect(ClientOptions(loop_server.port()));
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  NetQueryClient& client = **connected;

  // The same fetch sequence must meet the same injected faults: keyed
  // decisions depend only on (query, page, attempt), which both sides
  // count identically.
  int rate_limits = 0;
  for (int attempt = 0; attempt < 12; ++attempt) {
    for (ValueId v = 0; v < table.num_distinct_values(); ++v) {
      StatusOr<ResultPage> over_wire = client.FetchPage(v, 0);
      StatusOr<ResultPage> in_process = reference.FetchPage(v, 0);
      ExpectSamePage(over_wire, in_process);
      if (!over_wire.ok() &&
          over_wire.status().code() == StatusCode::kResourceExhausted) {
        ++rate_limits;
        // The retry-after hint survived the wire (checked for equality
        // in ExpectSamePage; here for presence).
        EXPECT_EQ(over_wire.status().retry_after_rounds(),
                  std::optional<uint32_t>(6));
      }
    }
  }
  // The profile injects rate limits at 30%; a silent zero would mean
  // the fault proxy never engaged.
  EXPECT_GT(rate_limits, 0);
}

TEST(NetServerTest, PipelinedRequestsAnsweredInOrder) {
  Table table = MakeFigure1Table();
  WebDbServer backend(table, ServerOptions{});
  LoopServer loop_server(backend, OptionsFor(table));

  NetConnection conn;
  Status opened = conn.Open("127.0.0.1", loop_server.port(), 3000);
  ASSERT_TRUE(opened.ok()) << opened.ToString();

  constexpr int kBurst = 64;
  for (int i = 0; i < kBurst; ++i) {
    WireRequest request;
    request.type = WireMessageType::kFetchPage;
    request.request_id = 1000 + i;
    request.value = static_cast<ValueId>(i % table.num_distinct_values());
    request.page_number = 0;
    Status sent = conn.Send(EncodeRequestFrame(request));
    ASSERT_TRUE(sent.ok()) << sent.ToString();
  }
  Status flushed = conn.SendAll(3000);
  ASSERT_TRUE(flushed.ok()) << flushed.ToString();
  for (int i = 0; i < kBurst; ++i) {
    StatusOr<WireServerMessage> reply = conn.ReceiveMessage(3000);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->type, WireMessageType::kPageResult);
    EXPECT_EQ(reply->request_id, 1000u + i) << "response out of order";
  }
}

TEST(NetServerTest, ResponseLatencyPreservesOrder) {
  Table table = MakeFigure1Table();
  WebDbServer backend(table, ServerOptions{});
  TcpServerOptions tcp_options = OptionsFor(table);
  tcp_options.latency_us = 2000;
  LoopServer loop_server(backend, tcp_options);

  NetConnection conn;
  ASSERT_TRUE(conn.Open("127.0.0.1", loop_server.port(), 3000).ok());
  constexpr int kBurst = 16;
  for (int i = 0; i < kBurst; ++i) {
    WireRequest request;
    request.request_id = 50 + i;
    request.value = static_cast<ValueId>(i % table.num_distinct_values());
    ASSERT_TRUE(conn.Send(EncodeRequestFrame(request)).ok());
  }
  ASSERT_TRUE(conn.SendAll(3000).ok());
  for (int i = 0; i < kBurst; ++i) {
    StatusOr<WireServerMessage> reply = conn.ReceiveMessage(5000);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->request_id, 50u + i) << "delayed response out of order";
  }
}

TEST(NetServerTest, ConnectionCapShedsWithRetryableGoAway) {
  Table table = MakeFigure1Table();
  WebDbServer backend(table, ServerOptions{});
  TcpServerOptions tcp_options = OptionsFor(table);
  tcp_options.max_connections = 1;
  tcp_options.shed_retry_after_rounds = 8;
  LoopServer loop_server(backend, tcp_options);

  NetConnection first;
  ASSERT_TRUE(first.Open("127.0.0.1", loop_server.port(), 3000).ok());

  NetConnection second;
  Status shed = second.Open("127.0.0.1", loop_server.port(), 3000);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_EQ(shed.retry_after_rounds(), std::optional<uint32_t>(8));

  // The surviving connection still works.
  WireRequest request;
  request.request_id = 1;
  request.value = 0;
  ASSERT_TRUE(first.Send(EncodeRequestFrame(request)).ok());
  ASSERT_TRUE(first.SendAll(3000).ok());
  StatusOr<WireServerMessage> reply = first.ReceiveMessage(3000);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();

  // Closing the first connection frees the slot for a newcomer.
  first.Close();
  NetConnection third;
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (third.Open("127.0.0.1", loop_server.port(), 3000).ok()) break;
    usleep(10'000);
  }
  ASSERT_TRUE(third.is_open()) << "slot never freed after close";

  loop_server.Stop();
  // At least the second connection was shed (the reopen loop may have
  // collected a few more GoAways while the close was still in flight).
  EXPECT_GE(loop_server.server().connections_shed(), 1u);
}

TEST(NetServerTest, MalformedFrameClosesConnection) {
  Table table = MakeFigure1Table();
  WebDbServer backend(table, ServerOptions{});
  LoopServer loop_server(backend, OptionsFor(table));

  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(loop_server.port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  // A tiny forged length prefix: unframeable, so the server must cut
  // the connection (read returns EOF here) rather than serve garbage.
  const char garbage[] = {4, 0, 0, 0, 'J', 'U', 'N', 'K'};
  ASSERT_EQ(write(fd, garbage, sizeof(garbage)),
            static_cast<ssize_t>(sizeof(garbage)));
  char buffer[64];
  ssize_t n = read(fd, buffer, sizeof(buffer));
  EXPECT_EQ(n, 0) << "server kept the connection alive past corruption";
  close(fd);

  loop_server.Stop();
  EXPECT_EQ(loop_server.server().protocol_errors(), 1u);
}

TEST(NetServerTest, ClientReconnectsAcrossServerRestart) {
  Table table = MakeFigure1Table();
  WebDbServer backend(table, ServerOptions{});
  auto first = std::make_unique<LoopServer>(backend, OptionsFor(table));
  uint16_t port = first->port();

  StatusOr<std::unique_ptr<NetQueryClient>> connected =
      NetQueryClient::Connect(ClientOptions(port));
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  NetQueryClient& client = **connected;
  ASSERT_TRUE(client.FetchPage(0, 0).ok());
  EXPECT_EQ(client.reconnects(), 0u);

  // Kill the server, restart on the same port (SO_REUSEADDR), and the
  // next fetch must transparently reconnect and retransmit.
  first.reset();
  TcpServerOptions restart_options = OptionsFor(table);
  restart_options.port = port;
  LoopServer second(backend, restart_options);

  StatusOr<ResultPage> refetched = client.FetchPage(0, 0);
  ASSERT_TRUE(refetched.ok()) << refetched.status().ToString();
  EXPECT_GE(client.reconnects(), 1u);

  // With no server at all, the reconnect window must expire into a
  // retryable kUnavailable instead of hanging forever.
  second.Stop();
  StatusOr<ResultPage> dead = client.FetchPage(0, 0);
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.status().code(), StatusCode::kUnavailable);
}

TEST(NetServerTest, SerialRetainWindowBoundsClientMemory) {
  Table table = MakeFigure1Table();
  WebDbServer backend(table, ServerOptions{});
  WebDbServer reference(table, ServerOptions{});
  LoopServer loop_server(backend, OptionsFor(table));

  NetClientOptions options = ClientOptions(loop_server.port());
  options.serial_retain_pages = 4;
  StatusOr<std::unique_ptr<NetQueryClient>> connected =
      NetQueryClient::Connect(options);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  NetQueryClient& client = **connected;

  // A long serial crawl must not accumulate every page it ever fetched:
  // the retain list is a sliding window, and the newest page (the one
  // the caller still holds) is always inside it.
  for (int sweep = 0; sweep < 5; ++sweep) {
    for (ValueId v = 0; v < table.num_distinct_values(); ++v) {
      ExpectSamePage(client.FetchPage(v, 0), reference.FetchPage(v, 0));
      EXPECT_LE(client.retained_pages(), 4u);
    }
  }
}

// Accepts, answers the handshake, then swallows every request without
// ever responding — the pathological "reachable but silent" source.
class SilentServer {
 public:
  SilentServer() {
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    DEEPCRAWL_CHECK(listen_fd_ >= 0);
    int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    DEEPCRAWL_CHECK(bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)) == 0);
    DEEPCRAWL_CHECK(listen(listen_fd_, 8) == 0);
    socklen_t len = sizeof(addr);
    DEEPCRAWL_CHECK(getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                                &len) == 0);
    port_ = ntohs(addr.sin_port);
    WireServerInfo info;
    info.num_values = 1;
    info.queriable_bitmap.assign(1, 1);
    info_frame_ = EncodeServerInfoFrame(info);
    thread_ = std::thread([this] { Serve(); });
  }
  ~SilentServer() {
    shutdown(listen_fd_, SHUT_RDWR);
    close(listen_fd_);
    thread_.join();
  }
  uint16_t port() const { return port_; }

 private:
  void Serve() {
    for (;;) {
      int fd = accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      // Complete the handshake so Open() succeeds, then never answer:
      // discard input until the client gives up and hangs up.
      ssize_t written = write(fd, info_frame_.data(), info_frame_.size());
      char buf[4096];
      while (written > 0 && read(fd, buf, sizeof(buf)) > 0) {
      }
      close(fd);
    }
  }

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::string info_frame_;
  std::thread thread_;
};

TEST(NetServerTest, SilentServerFailsAfterBoundedAttempts) {
  SilentServer server;
  NetClientOptions options;
  options.port = server.port();
  options.request_timeout_ms = 100;
  options.request_attempts = 2;
  options.reconnect_window_ms = 2000;
  options.reconnect_backoff_ms = 5;
  StatusOr<std::unique_ptr<NetQueryClient>> connected =
      NetQueryClient::Connect(options);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();

  // Every reconnect succeeds and every round times out; without the
  // attempt cap this fetch would loop forever. The cap must surface
  // the timeout (a retryable status) in bounded wall time.
  auto started = std::chrono::steady_clock::now();
  StatusOr<ResultPage> fetched = (*connected)->FetchPage(0, 0);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - started);
  ASSERT_FALSE(fetched.ok());
  EXPECT_EQ(fetched.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed.count(), 3000) << "attempt cap did not bound the fetch";
}

TEST(NetServerTest, PipelinedClientResetMidDrainLeavesServerHealthy) {
  Table table = MakeFigure1Table();
  WebDbServer backend(table, ServerOptions{});
  LoopServer loop_server(backend, OptionsFor(table));

  // Abortive-close clients: pipeline a big burst, then RST without
  // reading a byte, so the server's response writes start failing
  // between requests of the same drain. Regression target: a failed
  // flush inside the drain loop used to destroy the connection while
  // the loop kept using it (use-after-free under ASan). The sleep
  // sweep varies where the RST lands relative to the drain.
  for (int round = 0; round < 50; ++round) {
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(loop_server.port());
    ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    std::string burst = EncodeHelloFrame();
    for (int i = 0; i < 1024; ++i) {
      WireRequest request;
      request.request_id = static_cast<uint64_t>(i + 1);
      request.value = static_cast<ValueId>(i % table.num_distinct_values());
      burst.append(EncodeRequestFrame(request));
    }
    ASSERT_EQ(write(fd, burst.data(), burst.size()),
              static_cast<ssize_t>(burst.size()));
    usleep(static_cast<useconds_t>(round * 20));
    struct linger abort_close = {1, 0};
    setsockopt(fd, SOL_SOCKET, SO_LINGER, &abort_close, sizeof(abort_close));
    close(fd);  // linger(0) + unread responses: RST, not FIN
  }

  // The server survived every reset and still serves a polite client.
  NetConnection conn;
  Status opened = conn.Open("127.0.0.1", loop_server.port(), 3000);
  ASSERT_TRUE(opened.ok()) << opened.ToString();
  WireRequest request;
  request.request_id = 7;
  request.value = 0;
  ASSERT_TRUE(conn.Send(EncodeRequestFrame(request)).ok());
  ASSERT_TRUE(conn.SendAll(3000).ok());
  StatusOr<WireServerMessage> reply = conn.ReceiveMessage(3000);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->request_id, 7u);
}

TEST(NetServerTest, ExecutorWaveMatchesInProcessResults) {
  Table table = MakeFigure1Table();
  ServerOptions server_options;
  server_options.page_size = 2;
  WebDbServer backend(table, server_options);
  WebDbServer reference(table, server_options);
  LoopServer loop_server(backend, OptionsFor(table));

  StatusOr<std::unique_ptr<NetQueryClient>> connected =
      NetQueryClient::Connect(ClientOptions(loop_server.port(),
                                            /*connections=*/3));
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  NetQueryClient& client = **connected;
  NetFetchExecutor executor(client);

  // Two waves, so the second exercises the purge-then-reuse path.
  for (int wave = 0; wave < 2; ++wave) {
    std::vector<FetchRequest> requests;
    for (ValueId v = 0; v < table.num_distinct_values(); ++v) {
      requests.push_back(FetchRequest{v, 0, false});
      requests.push_back(FetchRequest{v, 1, false});
      requests.push_back(FetchRequest{v, 0, true});
    }
    std::vector<std::optional<StatusOr<ResultPage>>> results(requests.size());
    executor.FetchWave(client, requests, results);
    for (size_t i = 0; i < requests.size(); ++i) {
      ASSERT_TRUE(results[i].has_value()) << "slot " << i << " unfilled";
      StatusOr<ResultPage> expected =
          requests[i].keyword
              ? reference.FetchPageKeywordOf(requests[i].value,
                                             requests[i].page_number)
              : reference.FetchPage(requests[i].value,
                                    requests[i].page_number);
      ExpectSamePage(*results[i], expected);
    }
  }
  EXPECT_EQ(client.communication_rounds(), reference.communication_rounds());
  EXPECT_EQ(client.queries_issued(), reference.queries_issued());
}

}  // namespace
}  // namespace deepcrawl
