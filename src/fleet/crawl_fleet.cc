#include "src/fleet/crawl_fleet.h"

#include <algorithm>
#include <ostream>
#include <utility>

#include "src/crawler/checkpoint.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/harvest_rate.h"
#include "src/crawler/mmmi_selector.h"
#include "src/crawler/naive_selectors.h"
#include "src/datagen/canned_workloads.h"
#include "src/util/checkpoint_io.h"
#include "src/util/logging.h"

namespace deepcrawl {

const char* SchedulerPolicyToString(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kMarginalHarvest:
      return "marginal-hr";
    case SchedulerPolicy::kRoundRobin:
      return "round-robin";
    case SchedulerPolicy::kSequential:
      return "sequential";
  }
  return "unknown";
}

StatusOr<SchedulerPolicy> ParseSchedulerPolicy(std::string_view name) {
  if (name == "marginal-hr") return SchedulerPolicy::kMarginalHarvest;
  if (name == "round-robin") return SchedulerPolicy::kRoundRobin;
  if (name == "sequential") return SchedulerPolicy::kSequential;
  return Status::InvalidArgument(
      "unknown scheduler '" + std::string(name) +
      "' (marginal-hr|round-robin|sequential)");
}

// One source's full crawl stack plus its isolation state. The heap
// objects behind the unique_ptrs never move, so the reference chains
// between them survive vector reallocation of Source itself.
struct CrawlFleet::Source {
  Source(const CircuitBreakerConfig& breaker_config,
         const PolitenessConfig& politeness_config)
      : breaker(breaker_config), bucket(politeness_config) {}

  std::unique_ptr<WebDbServer> backend;
  std::unique_ptr<FaultyServer> faulty;
  std::unique_ptr<LockedQueryInterface> locked;
  std::unique_ptr<LocalStore> store;
  std::unique_ptr<QuerySelector> selector;
  std::unique_ptr<RetryPolicy> retry;
  std::unique_ptr<CrawlEngine> engine;

  CircuitBreaker breaker;
  TokenBucket bucket;
  // Politeness hard floor: earliest fleet time the source may be
  // scheduled again, pushed forward by the server's retry-after hints.
  uint64_t not_before = 0;
  uint64_t turns = 0;
  // Marginal-harvest health: EWMAs of records-per-round and
  // failures-per-round over granted turns (shared estimator, see
  // src/crawler/harvest_rate.h; its fields are serialized verbatim).
  HarvestRateEwma health;
  bool finished = false;
  StopReason stop_reason = StopReason::kRoundBudget;
  // Hard failure that abandoned the source (fleet kept going).
  Status error;
};

CrawlFleet::CrawlFleet(std::vector<FleetSourceSpec> specs,
                       FleetOptions options)
    : specs_(std::move(specs)), options_(std::move(options)) {
  DEEPCRAWL_CHECK(!specs_.empty()) << "a fleet needs at least one source";
  DEEPCRAWL_CHECK_GE(options_.threads, 1u);
  DEEPCRAWL_CHECK_GE(options_.batch, 1u);
  DEEPCRAWL_CHECK_GE(options_.turn_rounds, 1u);
  DEEPCRAWL_CHECK(options_.politeness.rounds_per_tick > 0.0)
      << "politeness refill rate must be positive";
  DEEPCRAWL_CHECK(options_.politeness.burst >= 1.0)
      << "politeness burst must afford at least one round";
  DEEPCRAWL_CHECK(options_.hr_ewma_alpha > 0.0 && options_.hr_ewma_alpha <= 1.0)
      << "hr_ewma_alpha must be in (0, 1]";
  DEEPCRAWL_CHECK(options_.hr_floor > 0.0)
      << "hr_floor must be positive (keeps dry sources schedulable)";

  if (options_.threads > 1) {
    executor_ = std::make_unique<ThreadPoolFetchExecutor>(options_.threads);
  } else {
    executor_ = std::make_unique<InlineFetchExecutor>();
  }

  sources_.reserve(specs_.size());
  for (uint32_t i = 0; i < specs_.size(); ++i) {
    const FleetSourceSpec& spec = specs_[i];
    DEEPCRAWL_CHECK(spec.table.num_records() > 0)
        << "source '" << spec.name << "' has an empty table";
    Source& src =
        sources_.emplace_back(options_.breaker, options_.politeness);

    uint64_t derived_seed = FaultyServer::DeriveSourceSeed(options_.seed, i);
    src.backend = std::make_unique<WebDbServer>(spec.table, spec.server);
    // Always behind a fault proxy, always keyed: the chaos schedule needs
    // the forced-action hook even for a zero-rate profile, and keyed mode
    // keeps the fault stream independent of fetch arrival order.
    src.faulty =
        std::make_unique<FaultyServer>(*src.backend, spec.faults, derived_seed);
    src.faulty->set_keyed_faults(true);
    QueryInterface* server = src.faulty.get();
    if (options_.threads > 1 || options_.latency_us > 0) {
      src.locked = std::make_unique<LockedQueryInterface>(
          *src.faulty, options_.latency_us);
      server = src.locked.get();
    }

    src.store = std::make_unique<LocalStore>();
    if (spec.policy == "greedy") {
      src.selector = std::make_unique<GreedyLinkSelector>(*src.store);
    } else if (spec.policy == "mmmi") {
      src.selector = std::make_unique<MmmiSelector>(*src.store);
    } else if (spec.policy == "bfs") {
      src.selector = std::make_unique<BfsSelector>();
    } else if (spec.policy == "dfs") {
      src.selector = std::make_unique<DfsSelector>();
    } else {
      DEEPCRAWL_CHECK(false) << "unknown source policy '" << spec.policy
                             << "' (greedy|mmmi|bfs|dfs)";
    }

    RetryPolicyConfig retry_config = options_.retry;
    retry_config.seed = derived_seed;
    src.retry = std::make_unique<RetryPolicy>(retry_config);

    CrawlOptions crawl_options;
    crawl_options.max_rounds = 0;  // re-set before every granted turn
    if (spec.target_coverage > 0.0) {
      crawl_options.target_records = static_cast<uint64_t>(
          spec.target_coverage * static_cast<double>(spec.table.num_records()));
    }
    if (spec.saturation > 0.0) {
      crawl_options.saturation_records = static_cast<uint64_t>(
          spec.saturation * static_cast<double>(spec.table.num_records()));
    }
    EngineOptions engine_options;
    engine_options.threads = 1;  // ignored: shared executor below
    engine_options.batch = options_.batch;
    engine_options.shared_executor = executor_.get();
    src.engine = std::make_unique<CrawlEngine>(
        *server, *src.selector, *src.store, crawl_options, engine_options,
        /*abort_policy=*/nullptr, src.retry.get());
  }
}

CrawlFleet::~CrawlFleet() = default;

uint32_t CrawlFleet::num_sources() const {
  return static_cast<uint32_t>(sources_.size());
}

const FleetSourceSpec& CrawlFleet::spec(uint32_t i) const {
  DEEPCRAWL_CHECK(i < specs_.size()) << "source id out of range";
  return specs_[i];
}
const CrawlEngine& CrawlFleet::engine(uint32_t i) const {
  DEEPCRAWL_CHECK(i < sources_.size()) << "source id out of range";
  return *sources_[i].engine;
}
const LocalStore& CrawlFleet::store(uint32_t i) const {
  DEEPCRAWL_CHECK(i < sources_.size()) << "source id out of range";
  return *sources_[i].store;
}
const CircuitBreaker& CrawlFleet::breaker(uint32_t i) const {
  DEEPCRAWL_CHECK(i < sources_.size()) << "source id out of range";
  return sources_[i].breaker;
}
const TokenBucket& CrawlFleet::bucket(uint32_t i) const {
  DEEPCRAWL_CHECK(i < sources_.size()) << "source id out of range";
  return sources_[i].bucket;
}
const FaultyServer& CrawlFleet::faulty(uint32_t i) const {
  DEEPCRAWL_CHECK(i < sources_.size()) << "source id out of range";
  return *sources_[i].faulty;
}

bool CrawlFleet::Active(const Source& source) const {
  return !source.finished && source.error.ok() && !source.breaker.exhausted();
}

bool CrawlFleet::Eligible(const Source& source) const {
  return source.breaker.CanAdmit(clock_) && clock_ >= source.not_before &&
         source.bucket.HasToken();
}

uint32_t CrawlFleet::Pick(const std::vector<uint32_t>& eligible) const {
  DEEPCRAWL_DCHECK(!eligible.empty());
  switch (options_.scheduler) {
    case SchedulerPolicy::kSequential:
      return eligible.front();
    case SchedulerPolicy::kRoundRobin:
      for (uint32_t i : eligible) {
        if (i > last_picked_) return i;
      }
      return eligible.front();
    case SchedulerPolicy::kMarginalHarvest: {
      // Probes first: a source whose cooldown elapsed gets its half-open
      // turn before any harvest-rate comparison, so flappers are
      // re-admitted promptly instead of starving behind healthy sources.
      for (uint32_t i : eligible) {
        if (sources_[i].breaker.state() == BreakerState::kOpen) return i;
      }
      // Optimism under uncertainty: a never-sampled source outranks any
      // measured score, so every source gets one exploratory turn before
      // the fleet commits rounds by measured harvest rate — otherwise
      // the first source sampled wins every comparison against the
      // others' hr_floor and the policy degenerates to sequential.
      for (uint32_t i : eligible) {
        if (!sources_[i].health.seen) return i;
      }
      uint32_t best = eligible.front();
      double best_score = -1.0;
      for (uint32_t i : eligible) {
        const Source& src = sources_[i];
        double score = src.health.Score(options_.hr_floor);
        if (score > best_score) {
          best_score = score;
          best = i;
        }
      }
      return best;
    }
  }
  return eligible.front();
}

Status CrawlFleet::RunTurn(uint32_t i) {
  Source& src = sources_[i];
  src.breaker.Admit(clock_);

  uint64_t grant = options_.turn_rounds;
  if (options_.source_deadline_rounds > 0) {
    uint64_t used = src.engine->rounds_used();
    DEEPCRAWL_DCHECK(used < options_.source_deadline_rounds);
    grant = std::min(grant, options_.source_deadline_rounds - used);
  }
  grant = std::min(grant, src.bucket.AffordableRounds());
  if (options_.max_total_rounds > 0) {
    grant = std::min(grant, options_.max_total_rounds - total_rounds_);
  }
  DEEPCRAWL_DCHECK(grant >= 1) << "eligibility admitted an unaffordable turn";

  // Chaos: the forced action for this turn is a pure function of
  // (schedule, global turn counter), both checkpointed — a resumed fleet
  // recomputes the same window.
  src.faulty->set_forced_action(
      ForcedActionAt(options_.chaos, i, turns_completed_));

  uint64_t rounds_before = src.engine->rounds_used();
  uint64_t records_before = src.store->num_records();
  const ResilienceCounters& res = src.engine->trace().resilience();
  uint64_t failures_before = res.transient_failures;
  uint64_t rate_limits_before = res.rate_limit_rejections;

  src.engine->set_max_rounds(rounds_before + grant);
  StatusOr<CrawlResult> turn = src.engine->Run();

  uint64_t consumed = src.engine->rounds_used() - rounds_before;
  uint64_t new_records = src.store->num_records() - records_before;
  uint64_t failures = res.transient_failures - failures_before;
  uint64_t rate_limits = res.rate_limit_rejections - rate_limits_before;

  src.bucket.Spend(consumed);
  clock_ += consumed;
  total_rounds_ += consumed;
  total_records_ += new_records;
  if (rate_limits > 0) {
    // Adaptive politeness: the server's retry-after hint is a hard floor
    // on when this source may be scheduled again, whatever the bucket
    // would allow.
    src.not_before =
        std::max(src.not_before, clock_ + res.max_retry_after_hint);
  }
  if (consumed > 0) {
    double hr = static_cast<double>(new_records) /
                static_cast<double>(consumed);
    double err = static_cast<double>(failures) /
                 static_cast<double>(consumed);
    src.health.Observe(options_.hr_ewma_alpha, hr, err);
  }
  src.breaker.OnTurn(clock_, consumed, failures, new_records);

  if (!turn.ok()) {
    // Fault isolation: a hard per-source failure abandons the source and
    // is reported in its outcome; the fleet keeps crawling the rest.
    src.error = turn.status();
  } else if (turn->stop_reason != StopReason::kRoundBudget) {
    src.finished = true;
    src.stop_reason = turn->stop_reason;
  } else if (options_.source_deadline_rounds > 0 &&
             src.engine->rounds_used() >= options_.source_deadline_rounds) {
    // Deadline spent: retire the source so it cannot stall the pool.
    src.finished = true;
    src.stop_reason = StopReason::kRoundBudget;
  }

  ++src.turns;
  last_picked_ = i;
  ++turns_completed_;
  fleet_trace_.Add(total_rounds_, total_records_);

  if (options_.checkpoint_every_turns > 0 &&
      options_.checkpoint_sink != nullptr &&
      turns_completed_ % options_.checkpoint_every_turns == 0) {
    return options_.checkpoint_sink(*this);
  }
  return Status::OK();
}

void CrawlFleet::AdvanceToNextEligibility() {
  uint64_t best = UINT64_MAX;
  for (const Source& src : sources_) {
    if (!Active(src)) continue;
    uint64_t at = src.breaker.EligibleAt(clock_);
    at = std::max(at, src.not_before);
    at = std::max(at, clock_ + src.bucket.TicksUntilToken(clock_));
    best = std::min(best, at);
  }
  // Guard: always make progress, even if a stale bound pointed backwards.
  if (best <= clock_) best = clock_ + 1;
  idle_ticks_ += best - clock_;
  clock_ = best;
}

void CrawlFleet::PlantSeeds() {
  for (uint32_t i = 0; i < sources_.size(); ++i) {
    const FleetSourceSpec& spec = specs_[i];
    uint64_t derived_seed = FaultyServer::DeriveSourceSeed(options_.seed, i);
    uint32_t distinct =
        static_cast<uint32_t>(spec.table.num_distinct_values());
    for (uint32_t j = 0; j < spec.num_seeds; ++j) {
      // Seed j is a pure function of (fleet seed, source id, j): the
      // j-th derived value, probed forward past zero-frequency ids.
      ValueId v = static_cast<ValueId>(
          FaultyServer::DeriveSourceSeed(derived_seed, j) % distinct);
      while (spec.table.value_frequency(v) == 0) {
        v = static_cast<ValueId>((v + 1) % distinct);
      }
      sources_[i].engine->AddSeed(v);
    }
  }
}

StatusOr<FleetResult> CrawlFleet::Run() {
  if (!seeded_) {
    PlantSeeds();
    seeded_ = true;
  }
  std::vector<uint32_t> eligible;
  for (;;) {
    if (options_.max_total_rounds > 0 &&
        total_rounds_ >= options_.max_total_rounds) {
      break;
    }
    eligible.clear();
    bool any_active = false;
    for (uint32_t i = 0; i < sources_.size(); ++i) {
      Source& src = sources_[i];
      if (!Active(src)) continue;
      any_active = true;
      src.bucket.Refill(clock_);
      if (Eligible(src)) eligible.push_back(i);
    }
    if (!any_active) break;
    if (eligible.empty()) {
      AdvanceToNextEligibility();
      continue;
    }
    DEEPCRAWL_RETURN_IF_ERROR(RunTurn(Pick(eligible)));
  }
  return BuildResult();
}

SourceDegradation CrawlFleet::DegradationOf(uint32_t i) const {
  DEEPCRAWL_CHECK(i < sources_.size()) << "source id out of range";
  const Source& src = sources_[i];
  SourceDegradation d;
  d.source_id = i;
  d.name = specs_[i].name;
  d.finished = src.finished && src.stop_reason != StopReason::kRoundBudget;
  d.quarantined = src.breaker.quarantined();
  d.abandoned = src.breaker.exhausted() || !src.error.ok();
  d.records_harvested = src.store->num_records();
  uint64_t target = src.engine->options().target_records;
  d.records_missing =
      target > d.records_harvested ? target - d.records_harvested : 0;
  d.values_abandoned = src.engine->trace().resilience().abandoned_values;
  d.rounds = src.engine->rounds_used();
  d.turns = src.turns;
  d.ticks_quarantined = src.breaker.TicksOpen(clock_);
  d.breaker = src.breaker.transitions();
  return d;
}

FleetResult CrawlFleet::BuildResult() const {
  FleetResult out;
  out.turns = turns_completed_;
  out.idle_ticks = idle_ticks_;
  out.sources.reserve(sources_.size());
  uint64_t queries = 0;
  bool all_done = true;
  ResilienceCounters merged_res;
  for (uint32_t i = 0; i < sources_.size(); ++i) {
    const Source& src = sources_[i];
    FleetSourceOutcome outcome;
    StopReason reason =
        src.finished ? src.stop_reason : StopReason::kRoundBudget;
    outcome.result = MakeCrawlResult(reason, src.engine->rounds_used(),
                                     src.engine->queries_issued(),
                                     src.store->num_records(),
                                     src.engine->trace());
    outcome.degradation = DegradationOf(i);
    outcome.error = src.error;
    queries += outcome.result.queries;
    const ResilienceCounters& res = outcome.result.resilience;
    merged_res.transient_failures += res.transient_failures;
    merged_res.retries += res.retries;
    merged_res.backoff_ticks += res.backoff_ticks;
    merged_res.requeues += res.requeues;
    merged_res.abandoned_values += res.abandoned_values;
    merged_res.degraded_queries += res.degraded_queries;
    merged_res.rate_limit_rejections += res.rate_limit_rejections;
    merged_res.max_retry_after_hint = std::max(
        merged_res.max_retry_after_hint, res.max_retry_after_hint);
    if (!outcome.degradation.finished && !outcome.degradation.abandoned) {
      all_done = false;
    }
    out.merged.source_reports.push_back(outcome.degradation);
    out.sources.push_back(std::move(outcome));
  }
  out.merged.stop_reason =
      all_done ? StopReason::kTargetReached : StopReason::kRoundBudget;
  out.merged.rounds = total_rounds_;
  out.merged.queries = queries;
  out.merged.records = total_records_;
  out.merged.trace = fleet_trace_;
  out.merged.resilience = merged_res;
  return out;
}

StatusOr<std::vector<FleetSourceSpec>> MakeFleetSourceSpecs(
    uint32_t num_sources, double scale, double target_coverage,
    FaultProfile faults, uint64_t gen_seed) {
  struct Kind {
    const char* name;
    SyntheticDbConfig (*config)(double, uint64_t);
  };
  static constexpr Kind kKinds[] = {
      {"ebay", [](double s, uint64_t seed) { return EbayConfig(s, seed); }},
      {"acm", [](double s, uint64_t seed) { return AcmDlConfig(s, seed); }},
      {"dblp", [](double s, uint64_t seed) { return DblpConfig(s, seed); }},
      {"imdb", [](double s, uint64_t seed) { return ImdbConfig(s, seed); }},
  };
  std::vector<FleetSourceSpec> specs;
  specs.reserve(num_sources);
  for (uint32_t i = 0; i < num_sources; ++i) {
    const Kind& kind = kKinds[i % (sizeof(kKinds) / sizeof(kKinds[0]))];
    DEEPCRAWL_ASSIGN_OR_RETURN(
        Table table, GenerateTable(kind.config(scale, gen_seed + i)));
    FleetSourceSpec spec(std::string(kind.name) + "-" + std::to_string(i),
                         std::move(table));
    spec.faults = faults;
    spec.target_coverage = target_coverage;
    specs.push_back(std::move(spec));
  }
  return specs;
}

Status WriteFleetTraceCsv(const FleetResult& result, std::ostream& output) {
  output << "source,rounds,records\n";
  for (const FleetSourceOutcome& outcome : result.sources) {
    uint32_t id = outcome.degradation.source_id;
    for (const TracePoint& point : outcome.result.trace.points()) {
      output << id << ',' << point.rounds << ',' << point.records << '\n';
    }
  }
  if (!output) return Status::Internal("fleet trace write failed");
  return Status::OK();
}

// --- checkpointing ----------------------------------------------------

namespace {

// The fleet-level config fingerprint: every knob the scheduler's
// behaviour depends on. Written by Save, compared field-for-field by
// Load — resuming under a different config would silently diverge.
struct FleetFingerprint {
  uint64_t seed;
  uint32_t num_sources;
  uint8_t scheduler;
  uint32_t batch;
  uint64_t turn_rounds;
  uint64_t source_deadline_rounds;
  uint32_t brk_consecutive;
  double brk_error_rate;
  uint32_t brk_min_turns;
  double brk_alpha;
  uint64_t brk_cooldown;
  double brk_multiplier;
  uint64_t brk_max_cooldown;
  uint32_t brk_quarantine;
  uint32_t brk_abandon;
  double pol_rate;
  double pol_burst;
  uint32_t retry_attempts;
  uint64_t retry_initial;
  uint64_t retry_max_backoff;
  double retry_multiplier;
  double retry_jitter;
  uint32_t retry_requeues;
  double hr_alpha;
  double hr_floor;

  bool operator==(const FleetFingerprint&) const = default;
};

FleetFingerprint FingerprintOf(const FleetOptions& options,
                               uint32_t num_sources) {
  FleetFingerprint fp;
  fp.seed = options.seed;
  fp.num_sources = num_sources;
  fp.scheduler = static_cast<uint8_t>(options.scheduler);
  fp.batch = options.batch;
  fp.turn_rounds = options.turn_rounds;
  fp.source_deadline_rounds = options.source_deadline_rounds;
  fp.brk_consecutive = options.breaker.consecutive_failed_turns;
  fp.brk_error_rate = options.breaker.error_rate_to_open;
  fp.brk_min_turns = options.breaker.min_turns_for_rate;
  fp.brk_alpha = options.breaker.ewma_alpha;
  fp.brk_cooldown = options.breaker.cooldown_ticks;
  fp.brk_multiplier = options.breaker.cooldown_multiplier;
  fp.brk_max_cooldown = options.breaker.max_cooldown_ticks;
  fp.brk_quarantine = options.breaker.quarantine_after_trips;
  fp.brk_abandon = options.breaker.abandon_after_trips;
  fp.pol_rate = options.politeness.rounds_per_tick;
  fp.pol_burst = options.politeness.burst;
  fp.retry_attempts = options.retry.max_attempts;
  fp.retry_initial = options.retry.initial_backoff_ticks;
  fp.retry_max_backoff = options.retry.max_backoff_ticks;
  fp.retry_multiplier = options.retry.backoff_multiplier;
  fp.retry_jitter = options.retry.jitter;
  fp.retry_requeues = options.retry.max_requeues;
  fp.hr_alpha = options.hr_ewma_alpha;
  fp.hr_floor = options.hr_floor;
  return fp;
}

void SaveFingerprint(CheckpointWriter& writer, const FleetFingerprint& fp) {
  writer.WriteU64(fp.seed);
  writer.WriteU32(fp.num_sources);
  writer.WriteU8(fp.scheduler);
  writer.WriteU32(fp.batch);
  writer.WriteU64(fp.turn_rounds);
  writer.WriteU64(fp.source_deadline_rounds);
  writer.WriteU32(fp.brk_consecutive);
  writer.WriteDouble(fp.brk_error_rate);
  writer.WriteU32(fp.brk_min_turns);
  writer.WriteDouble(fp.brk_alpha);
  writer.WriteU64(fp.brk_cooldown);
  writer.WriteDouble(fp.brk_multiplier);
  writer.WriteU64(fp.brk_max_cooldown);
  writer.WriteU32(fp.brk_quarantine);
  writer.WriteU32(fp.brk_abandon);
  writer.WriteDouble(fp.pol_rate);
  writer.WriteDouble(fp.pol_burst);
  writer.WriteU32(fp.retry_attempts);
  writer.WriteU64(fp.retry_initial);
  writer.WriteU64(fp.retry_max_backoff);
  writer.WriteDouble(fp.retry_multiplier);
  writer.WriteDouble(fp.retry_jitter);
  writer.WriteU32(fp.retry_requeues);
  writer.WriteDouble(fp.hr_alpha);
  writer.WriteDouble(fp.hr_floor);
}

FleetFingerprint LoadFingerprint(CheckpointReader& reader) {
  FleetFingerprint fp;
  fp.seed = reader.ReadU64();
  fp.num_sources = reader.ReadU32();
  fp.scheduler = reader.ReadU8();
  fp.batch = reader.ReadU32();
  fp.turn_rounds = reader.ReadU64();
  fp.source_deadline_rounds = reader.ReadU64();
  fp.brk_consecutive = reader.ReadU32();
  fp.brk_error_rate = reader.ReadDouble();
  fp.brk_min_turns = reader.ReadU32();
  fp.brk_alpha = reader.ReadDouble();
  fp.brk_cooldown = reader.ReadU64();
  fp.brk_multiplier = reader.ReadDouble();
  fp.brk_max_cooldown = reader.ReadU64();
  fp.brk_quarantine = reader.ReadU32();
  fp.brk_abandon = reader.ReadU32();
  fp.pol_rate = reader.ReadDouble();
  fp.pol_burst = reader.ReadDouble();
  fp.retry_attempts = reader.ReadU32();
  fp.retry_initial = reader.ReadU64();
  fp.retry_max_backoff = reader.ReadU64();
  fp.retry_multiplier = reader.ReadDouble();
  fp.retry_jitter = reader.ReadDouble();
  fp.retry_requeues = reader.ReadU32();
  fp.hr_alpha = reader.ReadDouble();
  fp.hr_floor = reader.ReadDouble();
  return fp;
}

}  // namespace

Status CrawlFleet::SaveState(CheckpointWriter& writer) const {
  WriteSectionMarker(writer, kSectionFleet);
  SaveFingerprint(writer, FingerprintOf(options_, num_sources()));
  writer.WriteU64(options_.chaos.size());
  for (const ChaosEvent& event : options_.chaos) {
    writer.WriteU32(event.source);
    writer.WriteU64(event.begin_turn);
    writer.WriteU64(event.end_turn);
    writer.WriteU8(static_cast<uint8_t>(event.action));
  }
  writer.WriteU64(clock_);
  writer.WriteU64(total_rounds_);
  writer.WriteU64(total_records_);
  writer.WriteU64(turns_completed_);
  writer.WriteU64(idle_ticks_);
  writer.WriteU32(last_picked_);
  writer.WriteU8(seeded_ ? 1 : 0);
  writer.WriteU64(fleet_trace_.points().size());
  for (const TracePoint& point : fleet_trace_.points()) {
    writer.WriteU64(point.rounds);
    writer.WriteU64(point.records);
  }

  for (uint32_t i = 0; i < sources_.size(); ++i) {
    const Source& src = sources_[i];
    WriteSectionMarker(writer, kSectionFleetSource);
    writer.WriteString(specs_[i].name);
    writer.WriteU8(src.finished ? 1 : 0);
    writer.WriteU8(static_cast<uint8_t>(src.stop_reason));
    writer.WriteU8(static_cast<uint8_t>(src.error.code()));
    writer.WriteString(src.error.message());
    writer.WriteU64(src.not_before);
    writer.WriteU64(src.turns);
    writer.WriteU8(src.health.seen ? 1 : 0);
    writer.WriteDouble(src.health.hr);
    writer.WriteDouble(src.health.err);
    writer.WriteDouble(src.bucket.tokens());
    writer.WriteU64(src.bucket.last_refill());
    src.breaker.SaveState(writer);
    DEEPCRAWL_RETURN_IF_ERROR(src.engine->SaveState(writer));
    src.faulty->SaveState(writer);
  }
  WriteSectionMarker(writer, kSectionEnd);
  return Status::OK();
}

Status CrawlFleet::LoadState(CheckpointReader& reader) {
  if (turns_completed_ != 0 || clock_ != 0 || seeded_) {
    return Status::FailedPrecondition(
        "fleet checkpoint restore requires a freshly constructed fleet "
        "(no turns run, no seeds planted)");
  }
  if (!ExpectSectionMarker(reader, kSectionFleet, "FLET")) {
    return reader.status();
  }
  FleetFingerprint stored = LoadFingerprint(reader);
  DEEPCRAWL_RETURN_IF_ERROR(reader.status());
  if (stored != FingerprintOf(options_, num_sources())) {
    return Status::InvalidArgument(
        "fleet checkpoint config mismatch: seed, source count, scheduler, "
        "or an isolation knob (breaker/politeness/retry/budget) differs "
        "from the checkpointing run");
  }
  uint64_t chaos_events = reader.ReadCount(21);
  if (reader.ok() && chaos_events != options_.chaos.size()) {
    return Status::InvalidArgument(
        "fleet checkpoint chaos-schedule mismatch: event count differs "
        "from the checkpointing run");
  }
  for (uint64_t i = 0; i < chaos_events && reader.ok(); ++i) {
    ChaosEvent event;
    event.source = reader.ReadU32();
    event.begin_turn = reader.ReadU64();
    event.end_turn = reader.ReadU64();
    uint8_t action = reader.ReadU8();
    if (reader.ok() && action > static_cast<uint8_t>(FaultAction::kDuplicate)) {
      reader.MarkCorrupt("chaos event action out of range");
      break;
    }
    event.action = static_cast<FaultAction>(action);
    if (reader.ok() && !(event == options_.chaos[i])) {
      return Status::InvalidArgument(
          "fleet checkpoint chaos-schedule mismatch: event " +
          std::to_string(i) + " differs from the checkpointing run");
    }
  }
  clock_ = reader.ReadU64();
  total_rounds_ = reader.ReadU64();
  total_records_ = reader.ReadU64();
  turns_completed_ = reader.ReadU64();
  idle_ticks_ = reader.ReadU64();
  last_picked_ = reader.ReadU32();
  seeded_ = reader.ReadU8() != 0;
  if (reader.ok() && last_picked_ >= num_sources()) {
    reader.MarkCorrupt("last-picked source id out of range");
  }
  uint64_t num_points = reader.ReadCount(16);
  uint64_t last_rounds = 0;
  uint64_t last_records = 0;
  for (uint64_t i = 0; i < num_points && reader.ok(); ++i) {
    uint64_t rounds = reader.ReadU64();
    uint64_t records = reader.ReadU64();
    if (i > 0 && (rounds <= last_rounds || records < last_records)) {
      reader.MarkCorrupt("fleet trace points not monotone");
      break;
    }
    last_rounds = rounds;
    last_records = records;
    fleet_trace_.Add(rounds, records);
  }
  DEEPCRAWL_RETURN_IF_ERROR(reader.status());

  for (uint32_t i = 0; i < sources_.size(); ++i) {
    Source& src = sources_[i];
    if (!ExpectSectionMarker(reader, kSectionFleetSource, "FSRC")) {
      return reader.status();
    }
    std::string name = reader.ReadString();
    DEEPCRAWL_RETURN_IF_ERROR(reader.status());
    if (name != specs_[i].name) {
      return Status::InvalidArgument(
          "fleet checkpoint source mismatch: file has '" + name +
          "' at position " + std::to_string(i) + ", fleet has '" +
          specs_[i].name + "' (source order is part of the contract)");
    }
    src.finished = reader.ReadU8() != 0;
    uint8_t stop_reason = reader.ReadU8();
    if (reader.ok() &&
        stop_reason > static_cast<uint8_t>(StopReason::kTargetReached)) {
      reader.MarkCorrupt("source stop reason out of range");
    }
    src.stop_reason = static_cast<StopReason>(stop_reason);
    uint8_t error_code = reader.ReadU8();
    std::string error_message = reader.ReadString();
    if (reader.ok() &&
        error_code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
      reader.MarkCorrupt("source error code out of range");
    }
    DEEPCRAWL_RETURN_IF_ERROR(reader.status());
    src.error = error_code == 0
                    ? Status::OK()
                    : Status(static_cast<StatusCode>(error_code),
                             std::move(error_message));
    src.not_before = reader.ReadU64();
    src.turns = reader.ReadU64();
    src.health.seen = reader.ReadU8() != 0;
    src.health.hr = reader.ReadDouble();
    src.health.err = reader.ReadDouble();
    if (reader.ok() && (!(src.health.hr >= 0.0) || !(src.health.err >= 0.0) ||
                        src.health.err > 1.0)) {
      reader.MarkCorrupt("source health EWMA out of range");
    }
    double tokens = reader.ReadDouble();
    uint64_t last_refill = reader.ReadU64();
    if (reader.ok() &&
        (!(tokens >= 0.0) || tokens > options_.politeness.burst ||
         last_refill > clock_)) {
      reader.MarkCorrupt("token bucket state out of range");
    }
    DEEPCRAWL_RETURN_IF_ERROR(reader.status());
    src.bucket.Restore(tokens, last_refill);
    DEEPCRAWL_RETURN_IF_ERROR(src.breaker.LoadState(reader));
    DEEPCRAWL_RETURN_IF_ERROR(src.engine->LoadState(reader));
    DEEPCRAWL_RETURN_IF_ERROR(src.faulty->LoadState(reader));
  }
  if (!ExpectSectionMarker(reader, kSectionEnd, "END!")) {
    return reader.status();
  }
  return reader.status();
}

StatusOr<std::string> EncodeFleetCheckpoint(const CrawlFleet& fleet) {
  CheckpointWriter writer;
  DEEPCRAWL_RETURN_IF_ERROR(fleet.SaveState(writer));
  return FrameCheckpoint(writer.buffer(), kFleetCheckpointVersion);
}

Status DecodeFleetCheckpoint(std::string_view image, CrawlFleet& fleet) {
  DEEPCRAWL_ASSIGN_OR_RETURN(std::string_view payload,
                             UnframeCheckpoint(image, kFleetCheckpointVersion));
  CheckpointReader reader(payload);
  DEEPCRAWL_RETURN_IF_ERROR(fleet.LoadState(reader));
  if (!reader.AtEnd()) {
    return Status::InvalidArgument(
        "corrupt fleet checkpoint: trailing bytes after the end marker");
  }
  return reader.status();
}

Status SaveFleetCheckpoint(const CrawlFleet& fleet, const std::string& path) {
  DEEPCRAWL_ASSIGN_OR_RETURN(std::string image, EncodeFleetCheckpoint(fleet));
  return WriteFileAtomic(path, image);
}

Status LoadFleetCheckpoint(const std::string& path, CrawlFleet& fleet) {
  DEEPCRAWL_ASSIGN_OR_RETURN(std::string image, ReadFileBytes(path));
  return DecodeFleetCheckpoint(image, fleet);
}

}  // namespace deepcrawl
