// Core identifier types shared across the deepcrawl relational substrate.
//
// Every distinct (attribute, string) pair in a database is interned to a
// dense ValueId; every record gets a dense RecordId. All hot-path data
// structures (postings, graphs, frontiers, selector state) are arrays
// indexed by these IDs.

#ifndef DEEPCRAWL_RELATION_TYPES_H_
#define DEEPCRAWL_RELATION_TYPES_H_

#include <cstdint>
#include <limits>

namespace deepcrawl {

using AttributeId = uint16_t;
using ValueId = uint32_t;
using RecordId = uint32_t;

inline constexpr AttributeId kInvalidAttributeId =
    std::numeric_limits<AttributeId>::max();
inline constexpr ValueId kInvalidValueId =
    std::numeric_limits<ValueId>::max();
inline constexpr RecordId kInvalidRecordId =
    std::numeric_limits<RecordId>::max();

}  // namespace deepcrawl

#endif  // DEEPCRAWL_RELATION_TYPES_H_
