// Publication-domain pair generator: the paper's *other* §4.1 example —
// "if we already have some DBLP data at hand, how can the database
// crawler utilize this piece of prior knowledge when crawling the ACM
// Digital Library?"
//
// Mirrors the movie-domain generator with publication semantics:
//
//   * a universe of computer-science papers clustered into research
//     areas (communities) with prolific "core" authors, occasional
//     cross-area collaborations, and one venue per paper drawn from the
//     area's venue pool;
//   * the crawl target — an ACM-DL-like library — is the subset of
//     papers published in ACM venues (a publisher is assigned per
//     venue), carrying target-only "Sponsor" values the domain sample
//     does not know (the ΔDM mass of eq. 4.3);
//   * the domain sample — a DBLP-like index — covers a large random
//     share of the whole universe (DBLP indexes far more than ACM), so
//     it both overlaps the target and contributes many candidates the
//     target can never match.
//
// The target's queriable interface is Title/Author/Venue (+ Sponsor).

#ifndef DEEPCRAWL_DATAGEN_PUBLICATION_DOMAIN_H_
#define DEEPCRAWL_DATAGEN_PUBLICATION_DOMAIN_H_

#include <cstdint>

#include "src/relation/table.h"
#include "src/util/status.h"

namespace deepcrawl {

struct PublicationDomainPairConfig {
  uint32_t universe_size = 30000;
  // Fraction of venues that are ACM venues (determines the target size).
  double acm_venue_fraction = 0.3;
  // Fraction of universe papers indexed by the DBLP-like domain sample.
  double dblp_coverage = 0.8;
  // Probability that a target record carries a target-only Sponsor
  // value.
  double target_noise_rate = 0.25;
  uint64_t seed = 19;
};

struct PublicationDomainPair {
  Table universe;  // every paper
  Table target;    // the ACM-DL-like crawl target
  Table sample;    // the DBLP-like domain sample
};

StatusOr<PublicationDomainPair> GeneratePublicationDomainPair(
    const PublicationDomainPairConfig& config);

}  // namespace deepcrawl

#endif  // DEEPCRAWL_DATAGEN_PUBLICATION_DOMAIN_H_
