// Tests of the keyword-interface crawl mode (§2.2 "fading schema").

#include <gtest/gtest.h>

#include "src/crawler/crawler.h"
#include "src/crawler/naive_selectors.h"
#include "src/server/web_db_server.h"
#include "tests/test_util.h"

namespace deepcrawl {
namespace {

using testing_util::GetValueId;
using testing_util::MakeTable;

// "eastwood" appears as an actor in two records and as a director in a
// third; a typed query sees one column, a keyword query sees all.
Table CrossAttributeTable() {
  return MakeTable({
      {{"Actor", "eastwood"}, {"Title", "t1"}},
      {{"Actor", "eastwood"}, {"Title", "t2"}},
      {{"Director", "eastwood"}, {"Title", "t3"}},
      {{"Actor", "other"}, {"Title", "t4"}},
  });
}

TEST(KeywordModeTest, KeywordQueryOfValueMatchesAllColumns) {
  Table table = CrossAttributeTable();
  WebDbServer server(table, ServerOptions{});
  ValueId actor_eastwood = GetValueId(table, "Actor", "eastwood");
  StatusOr<ResultPage> page =
      server.FetchPageKeywordOf(actor_eastwood, 0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->records.size(), 3u);  // both credits
}

TEST(KeywordModeTest, UnknownValueIdYieldsEmptyPage) {
  Table table = CrossAttributeTable();
  WebDbServer server(table, ServerOptions{});
  StatusOr<ResultPage> page = server.FetchPageKeywordOf(9999, 0);
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(page->records.empty());
  EXPECT_EQ(server.communication_rounds(), 1u);
}

TEST(KeywordModeTest, KeywordCrawlReachesAcrossColumns) {
  // Typed crawl from Actor=eastwood cannot reach t3 (the director-only
  // record shares no typed value with the actor records); the keyword
  // crawl bridges the columns.
  Table table = CrossAttributeTable();
  ValueId seed = GetValueId(table, "Actor", "eastwood");

  WebDbServer server(table, ServerOptions{});
  {
    LocalStore store;
    BfsSelector selector;
    CrawlOptions options;  // typed interface
    Crawler crawler(server, selector, store, options);
    crawler.AddSeed(seed);
    StatusOr<CrawlResult> result = crawler.Run();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->records, 2u);
  }
  {
    server.ResetMeters();
    LocalStore store;
    BfsSelector selector;
    CrawlOptions options;
    options.use_keyword_interface = true;
    Crawler crawler(server, selector, store, options);
    crawler.AddSeed(seed);
    StatusOr<CrawlResult> result = crawler.Run();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->records, 3u);  // t3 reached through the keyword box
  }
}

TEST(KeywordModeTest, KeywordCrawlCoversAtLeastTypedCrawl) {
  // Property: on any database, keyword-mode reachability includes
  // typed-mode reachability (keyword results are a superset per query).
  Table table = MakeTable({
      {{"A", "x"}, {"B", "y"}},
      {{"A", "y"}, {"B", "z"}},  // "y" under a different attribute
      {{"A", "q"}, {"B", "q"}},
  });
  for (ValueId seed = 0; seed < table.num_distinct_values(); ++seed) {
    WebDbServer server(table, ServerOptions{});
    uint64_t typed_records, keyword_records;
    {
      LocalStore store;
      BfsSelector selector;
      Crawler crawler(server, selector, store, CrawlOptions{});
      crawler.AddSeed(seed);
      typed_records = crawler.Run()->records;
    }
    {
      LocalStore store;
      BfsSelector selector;
      CrawlOptions options;
      options.use_keyword_interface = true;
      Crawler crawler(server, selector, store, options);
      crawler.AddSeed(seed);
      keyword_records = crawler.Run()->records;
    }
    EXPECT_GE(keyword_records, typed_records) << "seed " << seed;
  }
}

}  // namespace
}  // namespace deepcrawl
