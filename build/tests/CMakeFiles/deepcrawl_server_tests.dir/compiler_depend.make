# Empty compiler generated dependencies file for deepcrawl_server_tests.
# This may be replaced when dependencies are built.
