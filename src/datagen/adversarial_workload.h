// Adversarial lower-bound instances for query selection (Sheng et al.,
// arXiv 1208.0075; crawled by src/crawler/optimal_selector.h).
//
// Each instance partitions its records into B rank buckets of exactly
// `bucket_records` (= L) records each, assigns record ids in rank order
// (the simulated server returns lowest ids first, so retrieval order IS
// rank order), and attaches to every record its full dyadic ancestor
// chain as interval values `r<lo>-<hi>` on the queriable "range"
// attribute. With the server's result limit set to L, any query
// retrieves at most L records, so
//
//   OPT = ceil(n / L) = B
//
// exactly — the B leaf queries achieve it. That ground truth is what
// the competitive-ratio property suite divides measured costs by.
//
// Families:
//
//   * kGreedyTrap — the greedy-is-ω(OPT) construction. A seeded subset
//     of `decoy_buckets` buckets is "ghetto": each of their records
//     additionally carries `decoy_width` (= W) unique frequency-1
//     decoy values. Decoy degree ~ W + log B dominates the core leaf
//     degree ~ log B, so greedy degree ranking drains every decoy
//     (g * L * W queries, each returning one already-held record)
//     before it touches the remaining core leaves: greedy pays
//     Θ(g * L * W) = ω(OPT) when W scales with B, while the rank
//     descent stays under 2B - 1 <= 2 * OPT. So that greedy CAN finish
//     (the gap must be measurable, not infinite), consecutive buckets
//     are stitched by frequency-2 "link" values — the last record of
//     bucket k-1 and the first record of bucket k share link `l<k>`,
//     keeping every bucket discoverable without shrinking the trap.
//   * kSkewedChain — all records packed into the `occupied_leaves`
//     lowest buckets of a B-bucket hierarchy whose remaining intervals
//     are interned but empty. The descent pays a chain of overflowing
//     ancestors plus zero-match probes of the empty siblings: cost
//     O(OPT + log B) — the additive logarithmic term of hierarchical
//     interfaces the paper accounts for, isolated for the tests.
//
// The generator is pure (Pcg32-seeded): identical configs give
// bit-identical tables.

#ifndef DEEPCRAWL_DATAGEN_ADVERSARIAL_WORKLOAD_H_
#define DEEPCRAWL_DATAGEN_ADVERSARIAL_WORKLOAD_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/relation/table.h"
#include "src/relation/types.h"
#include "src/util/status.h"

namespace deepcrawl {

enum class AdversarialFamily {
  kGreedyTrap,
  kSkewedChain,
};

struct AdversarialConfig {
  AdversarialFamily family = AdversarialFamily::kGreedyTrap;
  // Requested non-decoy buckets; total buckets round up to a power of
  // two so the dyadic hierarchy is complete.
  uint32_t leaf_buckets = 16;
  // L: records per occupied bucket. The server's result_limit must be
  // set to AdversarialInstance::result_limit (= L) for the OPT
  // bookkeeping to hold.
  uint32_t bucket_records = 8;
  // kGreedyTrap: ghetto buckets g and decoys per ghetto record W.
  uint32_t decoy_buckets = 4;
  uint32_t decoy_width = 16;
  // kSkewedChain: occupied lowest buckets (1 .. leaf_buckets).
  uint32_t occupied_leaves = 2;
  // Seeds the ghetto-bucket placement permutation.
  uint64_t seed = 1;
};

struct AdversarialInstance {
  explicit AdversarialInstance(Table t) : table(std::move(t)) {}

  Table table;
  AttributeId rank_attribute = kInvalidAttributeId;
  AttributeId link_attribute = kInvalidAttributeId;
  AttributeId decoy_attribute = kInvalidAttributeId;
  // Root interval value r0-<B-1>; the canonical crawl seed.
  ValueId root_value = kInvalidValueId;
  // The server result limit the OPT bookkeeping assumes (= L).
  uint32_t result_limit = 0;
  uint64_t num_records = 0;
  // Ground-truth minimum query count: ceil(num_records / result_limit).
  uint64_t opt_queries = 0;
  uint32_t total_buckets = 0;    // B (power of two)
  uint32_t total_intervals = 0;  // hierarchy size, 2B - 1
  uint64_t num_decoy_values = 0;
  // Leaf interval value per bucket (interned even for empty buckets).
  std::vector<ValueId> leaf_values;
  // by bucket index; kGreedyTrap only, empty otherwise
  std::vector<char> is_ghetto;
};

StatusOr<AdversarialInstance> GenerateAdversarialInstance(
    const AdversarialConfig& config);

}  // namespace deepcrawl

#endif  // DEEPCRAWL_DATAGEN_ADVERSARIAL_WORKLOAD_H_
