// Tests of the attribute-value graph construction (Definition 2.1).

#include "src/graph/attribute_value_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_util.h"

namespace deepcrawl {
namespace {

using testing_util::GetValueId;
using testing_util::MakeFigure1Table;
using testing_util::MakeTable;

TEST(AttributeValueGraphTest, Figure1Adjacency) {
  Table table = MakeFigure1Table();
  AttributeValueGraph graph = AttributeValueGraph::Build(table);
  EXPECT_EQ(graph.num_vertices(), 9u);

  ValueId a2 = GetValueId(table, "A", "a2");
  ValueId b2 = GetValueId(table, "B", "b2");
  ValueId c1 = GetValueId(table, "C", "c1");
  ValueId c2 = GetValueId(table, "C", "c2");
  ValueId b3 = GetValueId(table, "B", "b3");
  ValueId a1 = GetValueId(table, "A", "a1");
  ValueId b1 = GetValueId(table, "B", "b1");
  ValueId a3 = GetValueId(table, "A", "a3");
  ValueId b4 = GetValueId(table, "B", "b4");

  // Example 2.1: a2's neighbors are exactly {c1, b2, c2, b3}.
  auto nbrs = graph.Neighbors(a2);
  std::vector<ValueId> expected = {c1, b2, c2, b3};
  std::sort(expected.begin(), expected.end());
  EXPECT_TRUE(std::equal(nbrs.begin(), nbrs.end(), expected.begin(),
                         expected.end()));
  EXPECT_EQ(graph.Degree(a2), 4u);

  // c1 bridges the (a1,b1) clique and the a2 cliques.
  EXPECT_TRUE(graph.HasEdge(c1, a1));
  EXPECT_TRUE(graph.HasEdge(c1, b1));
  EXPECT_TRUE(graph.HasEdge(c1, a2));
  EXPECT_TRUE(graph.HasEdge(c1, b2));
  EXPECT_FALSE(graph.HasEdge(c1, c2));
  EXPECT_FALSE(graph.HasEdge(a1, a2));

  // c2 is the other bridge: neighbors {a2, b2, b3, a3, b4}.
  EXPECT_EQ(graph.Degree(c2), 5u);
  EXPECT_TRUE(graph.HasEdge(c2, a3));
  EXPECT_TRUE(graph.HasEdge(c2, b4));
}

TEST(AttributeValueGraphTest, EdgesAreSymmetric) {
  Table table = MakeFigure1Table();
  AttributeValueGraph graph = AttributeValueGraph::Build(table);
  for (ValueId v = 0; v < graph.num_vertices(); ++v) {
    for (ValueId u : graph.Neighbors(v)) {
      EXPECT_TRUE(graph.HasEdge(u, v)) << u << " <-> " << v;
    }
  }
}

TEST(AttributeValueGraphTest, NoSelfLoops) {
  Table table = MakeFigure1Table();
  AttributeValueGraph graph = AttributeValueGraph::Build(table);
  for (ValueId v = 0; v < graph.num_vertices(); ++v) {
    EXPECT_FALSE(graph.HasEdge(v, v));
  }
}

TEST(AttributeValueGraphTest, ParallelEdgesCollapsed) {
  // a2/b2 co-occur in two records but the edge appears once.
  Table table = MakeFigure1Table();
  AttributeValueGraph graph = AttributeValueGraph::Build(table);
  ValueId a2 = GetValueId(table, "A", "a2");
  ValueId b2 = GetValueId(table, "B", "b2");
  auto nbrs = graph.Neighbors(a2);
  EXPECT_EQ(std::count(nbrs.begin(), nbrs.end(), b2), 1);
}

TEST(AttributeValueGraphTest, RecordFormsClique) {
  Table table = MakeTable({{{"A", "w"}, {"B", "x"}, {"C", "y"}, {"D", "z"}}});
  AttributeValueGraph graph = AttributeValueGraph::Build(table);
  EXPECT_EQ(graph.num_vertices(), 4u);
  EXPECT_EQ(graph.num_edges(), 6u);  // K4
  for (ValueId v = 0; v < 4; ++v) EXPECT_EQ(graph.Degree(v), 3u);
}

TEST(AttributeValueGraphTest, SingleValueRecordHasIsolatedVertex) {
  Table table = MakeTable({{{"A", "lonely"}}});
  AttributeValueGraph graph = AttributeValueGraph::Build(table);
  EXPECT_EQ(graph.num_vertices(), 1u);
  EXPECT_EQ(graph.num_edges(), 0u);
  EXPECT_EQ(graph.Degree(0), 0u);
}

TEST(AttributeValueGraphTest, DegreeHistogramSumsToVertices) {
  Table table = MakeFigure1Table();
  AttributeValueGraph graph = AttributeValueGraph::Build(table);
  std::vector<uint64_t> histogram = graph.DegreeHistogram();
  uint64_t total = 0;
  for (uint64_t h : histogram) total += h;
  EXPECT_EQ(total, graph.num_vertices());
}

TEST(AttributeValueGraphTest, SharedValueBridgesCliques) {
  // Two records sharing value m: m's degree spans both cliques.
  Table table = MakeTable({
      {{"A", "m"}, {"B", "p"}},
      {{"A", "m"}, {"B", "q"}},
  });
  AttributeValueGraph graph = AttributeValueGraph::Build(table);
  ValueId m = GetValueId(table, "A", "m");
  EXPECT_EQ(graph.Degree(m), 2u);
  EXPECT_FALSE(graph.HasEdge(GetValueId(table, "B", "p"),
                             GetValueId(table, "B", "q")));
}

}  // namespace
}  // namespace deepcrawl
