// FaultyServer: a fault-injecting proxy over any QueryInterface.
//
// The paper's controlled servers (§5) answer every query perfectly, but
// the real sources they model (Amazon, Yahoo Automobile, §5.4) time out,
// rate-limit, and truncate result lists. This proxy sits between the
// crawler and a backend QueryInterface and injects exactly those
// behaviours, driven by a seeded RNG and a declarative FaultProfile, so
// resilience experiments stay bit-reproducible:
//
//   * transient unavailability  -> kUnavailable, no page;
//   * deadline timeout          -> kDeadlineExceeded, no page;
//   * rate-limit rejection      -> kResourceExhausted with a
//                                  retry-after hint (HTTP 429 style);
//   * truncated page            -> OK page that silently dropped its
//                                  trailing records (a flaky listing);
//   * duplicate echo            -> OK page where one record appears
//                                  twice, hiding another (real listings
//                                  repeat entries across re-renders).
//
// Failed attempts still cost one communication round — the round trip
// happened — so the proxy keeps its own meters on top of the backend's.
// For tests, a scripted FaultSchedule overrides the RNG: action i
// applies to the i-th fetch, and the schedule falls back to fault-free
// once exhausted.
//
// Keyed fault mode (set_keyed_faults): by default the fault decision
// sequence is a function of (seed, global fetch index), which makes it
// depend on the order fetches ARRIVE — fine for a serial crawler,
// useless for a parallel one, where arrival order varies with thread
// scheduling. In keyed mode each decision is instead a pure function of
// (seed, query identity, page, per-page attempt number): the same
// logical fetch always meets the same fault no matter when it arrives
// or what ran in between. A serial and a parallel crawl that issue the
// same logical fetches therefore see identical faults, which is what
// the serial-vs-parallel differential tests rely on (DESIGN.md §8).
//
// A FaultyServer with an all-zero profile and no schedule is behaviorally
// identical to its backend on every interface method (asserted by a
// property test).

#ifndef DEEPCRAWL_SERVER_FAULTY_SERVER_H_
#define DEEPCRAWL_SERVER_FAULTY_SERVER_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/server/query_interface.h"
#include "src/util/random.h"
#include "src/util/status.h"

namespace deepcrawl {

class CheckpointReader;
class CheckpointWriter;

// Per-round fault probabilities. At most one fault fires per fetch; the
// rates must sum to at most 1.
struct FaultProfile {
  double unavailable_rate = 0.0;   // transient 503-style failure
  double timeout_rate = 0.0;       // deadline expired mid-transfer
  double rate_limit_rate = 0.0;    // 429 rejection with retry-after hint
  double truncate_rate = 0.0;      // page silently loses trailing records
  double duplicate_rate = 0.0;     // page echoes one record twice

  // Retry-after hint (in communication rounds) attached to rate-limit
  // rejections.
  uint32_t retry_after_rounds = 4;

  bool IsAllZero() const {
    return unavailable_rate == 0.0 && timeout_rate == 0.0 &&
           rate_limit_rate == 0.0 && truncate_rate == 0.0 &&
           duplicate_rate == 0.0;
  }

  // Failure-only profile: probability `rate` of transient unavailability
  // per round (the acceptance experiments' "10% transient failures").
  static FaultProfile Transient(double rate) {
    FaultProfile profile;
    profile.unavailable_rate = rate;
    return profile;
  }
};

// One scripted fault decision; kNone forwards the fetch untouched.
enum class FaultAction : uint8_t {
  kNone = 0,
  kUnavailable,
  kTimeout,
  kRateLimit,
  kTruncate,
  kDuplicate,
};

using FaultSchedule = std::vector<FaultAction>;

// Injection tallies, for tests and coverage-under-faults reports.
struct FaultCounters {
  uint64_t unavailable = 0;
  uint64_t timeouts = 0;
  uint64_t rate_limited = 0;
  uint64_t truncated_pages = 0;
  uint64_t duplicated_records = 0;

  uint64_t failures() const { return unavailable + timeouts + rate_limited; }
  uint64_t total() const {
    return failures() + truncated_pages + duplicated_records;
  }
};

class FaultyServer : public QueryInterface {
 public:
  // `inner` must outlive the proxy. The same (seed, profile, call
  // sequence) triple always yields the same faults.
  FaultyServer(QueryInterface& inner, FaultProfile profile, uint64_t seed);

  FaultyServer(const FaultyServer&) = delete;
  FaultyServer& operator=(const FaultyServer&) = delete;

  // Scripted mode: overrides the RNG until the schedule is exhausted.
  void set_schedule(FaultSchedule schedule);

  // Keyed mode: fault decisions become a pure function of (seed, query
  // identity, page, attempt) instead of the global fetch order, making
  // the fault stream independent of arrival order (see file comment).
  void set_keyed_faults(bool keyed) { keyed_ = keyed; }
  bool keyed_faults() const { return keyed_; }

  // Chaos override: while set, EVERY fetch meets `action` (kNone forces
  // fault-free forwarding). Checked before the schedule and before any
  // RNG or keyed-attempt draw, so engaging or clearing it never perturbs
  // the underlying fault stream — the fleet's ChaosSchedule flips this
  // per turn to script whole-source death, flapping, and recovery while
  // the keyed-fault contract keeps everything else bit-reproducible.
  // Deliberately NOT checkpointed: the fleet re-derives it from
  // (schedule, turn counter) on every turn, including the first after a
  // resume.
  void set_forced_action(std::optional<FaultAction> action) {
    forced_action_ = action;
  }
  const std::optional<FaultAction>& forced_action() const {
    return forced_action_;
  }

  // Derives source `source_id`'s fault seed from the fleet seed: the
  // source_id-th output of a SplitMix64 stream seeded with fleet_seed.
  // Pure function of the pair, so adding or removing one source never
  // perturbs another source's fault stream.
  static uint64_t DeriveSourceSeed(uint64_t fleet_seed, uint32_t source_id);

  // QueryInterface implementation. Fetches are forwarded to the backend
  // unless a failure fault fires first; page-mutating faults apply to
  // the backend's successful response.
  StatusOr<ResultPage> FetchPage(ValueId value, uint32_t page_number) override;
  StatusOr<ResultPage> FetchPageByText(AttributeId attr,
                                       std::string_view text,
                                       uint32_t page_number) override;
  StatusOr<ResultPage> FetchPageByKeyword(std::string_view text,
                                          uint32_t page_number) override;
  StatusOr<ResultPage> FetchPageConjunctive(std::span<const ValueId> values,
                                            uint32_t page_number) override;
  StatusOr<ResultPage> FetchPageKeywordOf(ValueId value,
                                          uint32_t page_number) override;

  // Meters include rounds spent on injected failures (the crawler paid
  // for them), on top of the backend's own accounting.
  uint64_t communication_rounds() const override {
    return inner_.communication_rounds() + injected_failure_rounds_;
  }
  uint64_t queries_issued() const override {
    return inner_.queries_issued() + injected_failure_queries_;
  }
  void ResetMeters() override;

  const ServerOptions& options() const override { return inner_.options(); }
  bool IsQueriableValue(ValueId value) const override {
    return inner_.IsQueriableValue(value);
  }
  RttCounters rtt_counters() const override { return inner_.rtt_counters(); }

  const FaultProfile& profile() const { return profile_; }
  const FaultCounters& fault_counters() const { return counters_; }

  // --- checkpointing (see src/crawler/checkpoint.h) -------------------
  // A resumed crawl must meet the SAME fault stream it would have seen
  // uninterrupted, so the proxy's RNG, schedule position, and keyed
  // per-page attempt table are checkpointed alongside the engine; the
  // (seed, profile, keyed-mode, schedule-length) fingerprint is verified
  // on load.
  void SaveState(CheckpointWriter& writer) const;
  Status LoadState(CheckpointReader& reader);

 private:
  // Draws the fault decision for the next fetch: schedule first, then
  // the keyed hash (keyed mode) or the sequential RNG. `query_key`
  // identifies the logical query (value id or text hash).
  FaultAction NextAction(uint64_t query_key, uint32_t page_number);
  // Returns the injected failure status for `action`, charging the round
  // to the proxy's own meters.
  Status InjectFailure(FaultAction action, uint32_t page_number);
  // Applies a page-mutating fault in place.
  void MutatePage(FaultAction action, ResultPage& page);

  template <typename Fetch>
  StatusOr<ResultPage> Dispatch(uint64_t query_key, uint32_t page_number,
                                Fetch&& fetch);

  QueryInterface& inner_;
  FaultProfile profile_;
  uint64_t seed_;
  Pcg32 rng_;
  FaultSchedule schedule_;
  size_t schedule_pos_ = 0;
  // Keyed mode: per-(query, page) fetch counts, so retries of the same
  // page draw fresh (but still order-independent) fault decisions.
  bool keyed_ = false;
  std::unordered_map<uint64_t, uint32_t> keyed_attempts_;
  std::optional<FaultAction> forced_action_;
  uint64_t injected_failure_rounds_ = 0;
  uint64_t injected_failure_queries_ = 0;
  FaultCounters counters_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_SERVER_FAULTY_SERVER_H_
