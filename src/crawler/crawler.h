// Crawler: the "query-harvest-decompose" loop (§1, §2.5).
//
// Starting from seed attribute values, the crawler repeatedly
//   1. asks its QuerySelector for the next value to query,
//   2. probes the source page by page (each page = one communication
//      round, the paper's cost unit), optionally aborting the drain
//      early via an AbortPolicy (§3.4),
//   3. extracts returned records into the LocalStore, decomposes them
//      into attribute values, and feeds newly-seen values back to the
//      selector as future query candidates,
// until the frontier empties, a round budget is exhausted, or a target
// number of records has been harvested.
//
// The crawler depends only on the QueryInterface — never the backend
// Table: everything it knows arrived through result pages, exactly like
// a crawler talking to a real Web source. The same loop therefore runs
// against the perfect simulator (WebDbServer) or the fault-injecting
// proxy (FaultyServer).
//
// Resilience: with a RetryPolicy attached, transient fetch failures
// (kUnavailable / kDeadlineExceeded / kResourceExhausted) are retried
// with capped exponential backoff over a simulated clock; every retry
// costs a communication round. When a value's per-drain retry budget is
// exhausted the crawl degrades gracefully instead of dying: the value is
// re-queued at the frontier tail (bounded times), then abandoned, and
// the trace's ResilienceCounters record all of it. Without a policy a
// failed fetch fails the crawl (the pre-resilience behaviour).

#ifndef DEEPCRAWL_CRAWLER_CRAWLER_H_
#define DEEPCRAWL_CRAWLER_CRAWLER_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/crawler/abort_policy.h"
#include "src/crawler/local_store.h"
#include "src/crawler/metrics.h"
#include "src/crawler/query_selector.h"
#include "src/crawler/retry_policy.h"
#include "src/server/query_interface.h"
#include "src/util/status.h"

namespace deepcrawl {

struct CrawlOptions {
  // Stop after this many communication rounds (0 = unbounded).
  uint64_t max_rounds = 0;
  // Stop once this many distinct records were harvested (0 = crawl until
  // the frontier is exhausted). Figure 3's "reach 90% coverage" runs set
  // this to 0.9 * |DB|.
  uint64_t target_records = 0;
  // Notify the selector of saturation once this many records were
  // harvested (0 = never). Drives the §3.3 GL -> MMMI switch-over.
  uint64_t saturation_records = 0;
  // Issue queries through the site's keyword box instead of typed
  // attribute fields (§2.2 "fading schema"): the selected value's text
  // is matched by the server against every attribute, so e.g. a person
  // name harvests both acting and directing credits in one query.
  bool use_keyword_interface = false;
};

enum class StopReason {
  kFrontierExhausted,
  kRoundBudget,
  kTargetReached,
};

const char* StopReasonToString(StopReason reason);

struct CrawlResult {
  StopReason stop_reason = StopReason::kFrontierExhausted;
  uint64_t rounds = 0;
  uint64_t queries = 0;
  uint64_t records = 0;
  CrawlTrace trace;
  // Copy of trace.resilience(), for reporting convenience.
  ResilienceCounters resilience;
};

class Crawler {
 public:
  // All referenced objects must outlive the crawler. `abort_policy` may
  // be null (never abort); `retry_policy` may be null (fail the crawl on
  // the first fetch error).
  Crawler(QueryInterface& server, QuerySelector& selector, LocalStore& store,
          CrawlOptions options, AbortPolicy* abort_policy = nullptr,
          const RetryPolicy* retry_policy = nullptr);

  Crawler(const Crawler&) = delete;
  Crawler& operator=(const Crawler&) = delete;

  // Plants a seed attribute value into the frontier. Must be called
  // before Run; duplicate seeds are ignored.
  void AddSeed(ValueId v);

  // Runs the crawl loop until a stop condition fires. May be called
  // again afterwards to continue (e.g. with a larger budget). If the
  // round budget expires while a query is still being drained, the
  // drain's position is retained and the next Run() resumes it at the
  // page after the last one fetched — the drained prefix is never
  // re-issued and its records are never double-counted. An abort-policy
  // abort, by contrast, abandons the remaining pages for good.
  StatusOr<CrawlResult> Run();

  // Adjusts the round budget between Run() calls (0 = unbounded),
  // enabling incremental crawling loops with external stopping criteria
  // (e.g. the Chao coverage estimate; see examples/adaptive_stop.cpp).
  void set_max_rounds(uint64_t max_rounds) {
    options_.max_rounds = max_rounds;
  }
  // Adjusts the record target between Run() calls (0 = unbounded),
  // enabling staged crawls: run to one coverage level, inspect, raise
  // the target, and continue (bench_mmmi_ablation times the marginal
  // phase this way).
  void set_target_records(uint64_t target_records) {
    options_.target_records = target_records;
  }
  uint64_t rounds_used() const { return rounds_used_; }

  const LocalStore& store() const { return store_; }

  // Simulated time spent, including retry backoff waits.
  const SimulatedClock& clock() const { return clock_; }

 private:
  // A drain interrupted by the round budget, to resume on the next Run().
  struct PendingDrain {
    ValueId value = kInvalidValueId;
    uint32_t next_page = 0;
    uint32_t failures = 0;  // failed fetches of this drain so far
    QueryOutcome outcome;
  };

  // Marks `v` seen and tells the selector it entered Lto-query.
  void DiscoverValue(ValueId v);

  // Pops the next value to drain: selector frontier first, then the
  // retry queue (re-queued values sit at the frontier tail).
  ValueId NextValue();

  QueryInterface& server_;
  QuerySelector& selector_;
  LocalStore& store_;
  CrawlOptions options_;
  AbortPolicy* abort_policy_;
  const RetryPolicy* retry_policy_;

  std::vector<char> seen_;  // value already in Lto-query or Lqueried
  bool saturation_notified_ = false;
  uint64_t rounds_used_ = 0;
  uint64_t queries_issued_ = 0;
  CrawlTrace trace_;
  SimulatedClock clock_;

  // Graceful-degradation state: values whose drain gave up, waiting at
  // the frontier tail, and how often each was already re-queued.
  std::deque<ValueId> retry_queue_;
  std::unordered_map<ValueId, uint32_t> requeue_count_;
  std::optional<PendingDrain> pending_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_CRAWLER_CRAWLER_H_
