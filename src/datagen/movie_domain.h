// Movie-domain pair generator for the §4/§5 domain-knowledge
// experiments.
//
// The paper crawls the Amazon DVD catalog using domain statistics tables
// built from IMDB: DM(I) from all movies released after 1960 (270k of
// IMDB's 400k records) and DM(II) from movies after 1980 (190k). That
// setup has three statistical ingredients this generator reproduces:
//
//   * a domain universe of movies with release years skewed toward the
//     recent past;
//   * a crawl target that is a recency-biased sample of the universe
//     (DVD editions cover mostly recent films) carrying target-only
//     values (editions, retailer-specific data) that no domain table
//     knows — the Delta-DM mass of eq. 4.3;
//   * domain samples cut from the universe by release year, so DM(I) is
//     a superset of DM(II) and both overlap the target imperfectly.
//
// All four tables are independent (own schema instance and catalog);
// value identity across them is by (attribute name, text), exactly the
// situation DomainTable::Build resolves.

#ifndef DEEPCRAWL_DATAGEN_MOVIE_DOMAIN_H_
#define DEEPCRAWL_DATAGEN_MOVIE_DOMAIN_H_

#include <cstdint>

#include "src/relation/table.h"
#include "src/util/status.h"

namespace deepcrawl {

struct MovieDomainPairConfig {
  uint32_t universe_size = 40000;
  // Expected size of the crawl target (actual size is reported in the
  // result; sampling is Bernoulli per record).
  uint32_t target_size = 12000;
  // Probability that a target record carries a target-only "Edition"
  // value (feeds Delta-DM).
  double target_noise_rate = 0.30;
  int min_year = 1930;
  int max_year = 2005;
  int dm1_min_year = 1960;
  int dm2_min_year = 1980;
  uint64_t seed = 7;
};

struct MovieDomainPair {
  Table universe;
  Table target;
  Table dm1;
  Table dm2;
};

StatusOr<MovieDomainPair> GenerateMovieDomainPair(
    const MovieDomainPairConfig& config);

}  // namespace deepcrawl

#endif  // DEEPCRAWL_DATAGEN_MOVIE_DOMAIN_H_
