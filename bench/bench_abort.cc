// §3.4 ablation — "Heuristic-based Query Abortion".
//
// The paper notes (without a dedicated figure) that aborting queries
// whose remaining pages promise a harvest rate below a threshold
// "greatly improves crawling performance": most sources report the total
// match count on the first page, so the crawler can bound the remaining
// pages' yield; without a count, a duplicate-ratio heuristic applies.
//
// This harness quantifies both heuristics on the regenerated eBay
// database: rounds to reach 90% coverage with and without abortion.

#include <iostream>

#include "bench/bench_common.h"
#include "src/crawler/abort_policy.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/naive_selectors.h"
#include "src/datagen/movie_domain.h"
#include "src/util/table_printer.h"

namespace {
constexpr int kNumSeeds = 4;
}  // namespace

int main() {
  using namespace deepcrawl;
  bench::PrintBanner(
      "Ablation (§3.4): heuristic-based query abortion",
      "abort a query when the expected harvest rate of its remaining "
      "pages falls below a threshold (count-based), or when early pages "
      "are duplicate-heavy (ratio-based)",
      "movie-domain target (community cores span several pages, so "
      "late-crawl queries are long and duplicate-heavy), crawl to 95% "
      "coverage, average of " + std::to_string(kNumSeeds) + " seeds");

  struct Config {
    const char* name;
    bool greedy;  // greedy-link or BFS selection
    bool counts_reported;
    int policy;  // 0 none, 1 count-based, 2 duplicate-ratio
  };
  // Abortion matters most when the selection policy drains large,
  // heavily-duplicated result sets — BFS does constantly, greedy-link
  // mostly after saturation.
  const Config configs[] = {
      {"greedy-link, no abort", true, true, 0},
      {"greedy-link + count abort (1.0 new/round)", true, true, 1},
      {"greedy-link + dup-ratio abort (2 pages, 80%)", true, false, 2},
      {"bfs, no abort", false, true, 0},
      {"bfs + count abort (1.0 new/round)", false, true, 1},
      {"bfs + dup-ratio abort (2 pages, 80%)", false, false, 2},
  };

  TablePrinter table({"configuration", "avg rounds to 95%", "avg queries",
                      "vs no abort"});
  double baseline_with = 0, baseline_without = 0;
  for (const Config& config : configs) {
    double rounds = 0, queries = 0;
    for (int s = 0; s < kNumSeeds; ++s) {
      MovieDomainPairConfig pair_config;
      pair_config.universe_size = 10000;
      pair_config.target_size = 3000;
      pair_config.seed = 40 + s;
      StatusOr<MovieDomainPair> pair = GenerateMovieDomainPair(pair_config);
      DEEPCRAWL_CHECK(pair.ok());
      const Table& db = pair->target;
      ServerOptions server_options;
      server_options.reports_total_count = config.counts_reported;
      WebDbServer server(db, server_options);

      CrawlOptions options;
      // Abortion pays off in the duplicate-heavy deep-coverage phase.
      options.target_records = static_cast<uint64_t>(
          0.95 * static_cast<double>(db.num_records()));

      CountBasedAbort count_abort(1.0);
      DuplicateRatioAbort ratio_abort(2, 0.8);
      AbortPolicy* policy = nullptr;
      if (config.policy == 1) policy = &count_abort;
      if (config.policy == 2) policy = &ratio_abort;

      LocalStore store;
      GreedyLinkSelector greedy_selector(store);
      BfsSelector bfs_selector;
      QuerySelector& selector =
          config.greedy ? static_cast<QuerySelector&>(greedy_selector)
                        : static_cast<QuerySelector&>(bfs_selector);
      server.ResetMeters();
      CrawlEngine engine(server, selector, store, options, EngineOptions{},
                         policy);
      engine.AddSeed(bench::SeedValue(db, static_cast<uint32_t>(s)));
      StatusOr<CrawlResult> result = engine.Run();
      DEEPCRAWL_CHECK(result.ok());
      rounds += static_cast<double>(result->rounds);
      queries += static_cast<double>(result->queries);
    }
    rounds /= kNumSeeds;
    queries /= kNumSeeds;
    if (config.policy == 0) {
      (config.greedy ? baseline_with : baseline_without) = rounds;
    }
    double baseline = config.greedy ? baseline_with : baseline_without;
    table.AddRow({config.name, TablePrinter::FormatDouble(rounds, 0),
                  TablePrinter::FormatDouble(queries, 0),
                  TablePrinter::FormatPercent(rounds / baseline, 0)});
  }
  table.Print(std::cout);
  std::cout << "\nreading: the count-based heuristic saves a few percent "
               "for greedy-link in the duplicate-heavy deep-coverage "
               "phase; overly aggressive thresholds backfire because "
               "skipped records must be re-found through other queries. "
               "The paper reports the heuristics qualitatively and "
               "defers details to a journal version.\n";
  return 0;
}
