// Stopping a crawl at a target coverage WITHOUT knowing the database
// size (§1: the loop runs "until ... some stopping criterion is met").
//
// The crawler tracks how often each record has been returned across
// queries; the Chao1 abundance estimator turns those duplicate counts
// into a running estimate of |DB| — and therefore of the current
// coverage. This example crawls in budget slices, prints the evolving
// estimate next to the (normally unknown) truth, and stops once the
// ESTIMATED coverage passes 90%.

#include <iostream>

#include "src/crawler/crawler.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/datagen/canned_workloads.h"
#include "src/datagen/workload_config.h"
#include "src/estimate/chao.h"
#include "src/server/web_db_server.h"
#include "src/util/table_printer.h"

using namespace deepcrawl;

int main() {
  StatusOr<Table> generated =
      GenerateTable(EbayConfig(/*scale=*/0.05, /*seed=*/9));
  if (!generated.ok()) {
    std::cerr << generated.status().ToString() << "\n";
    return 1;
  }
  const Table& db = *generated;
  WebDbServer server(db, ServerOptions{});

  constexpr double kTargetCoverage = 0.90;
  constexpr uint64_t kSliceRounds = 100;

  LocalStore store;
  GreedyLinkSelector selector(store);
  CrawlOptions options;
  options.max_rounds = kSliceRounds;
  Crawler crawler(server, selector, store, options);
  crawler.AddSeed(3);

  TablePrinter table({"rounds", "records", "est. |DB|", "est. coverage",
                      "true coverage"});
  bool reached = false;
  for (int slice = 1; slice <= 100 && !reached; ++slice) {
    StatusOr<CrawlResult> result = crawler.Run();
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    ChaoEstimate estimate = Chao1Estimate(store);
    double true_coverage = static_cast<double>(result->records) /
                           static_cast<double>(db.num_records());
    table.AddRow({std::to_string(result->rounds),
                  std::to_string(result->records),
                  TablePrinter::FormatDouble(estimate.estimated_total, 0),
                  TablePrinter::FormatPercent(estimate.estimated_coverage,
                                              1),
                  TablePrinter::FormatPercent(true_coverage, 1)});
    if (estimate.estimated_coverage >= kTargetCoverage ||
        result->stop_reason == StopReason::kFrontierExhausted) {
      reached = true;
    } else {
      crawler.set_max_rounds(result->rounds + kSliceRounds);
    }
  }
  table.Print(std::cout);
  std::cout << "\nthe crawler stopped on its own coverage estimate; the "
               "database truly holds "
            << db.num_records()
            << " records, a number it never used.\n";
  return 0;
}
