// Tests of the keyword-box token dictionary and the merge buffers
// behind it: the all-attribute union a bare keyword answers with
// (§2.2's "the site's query processor decides which column matches"),
// its precomputed postings, and the conjunctive intersection path that
// shares the same scratch-buffer idiom. Focus cases: empty terms,
// duplicate terms (one text under many attributes), and page
// boundaries of merged result sets.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/server/web_db_server.h"
#include "tests/test_util.h"

namespace deepcrawl {
namespace {

using testing_util::GetValueId;
using testing_util::MakeTable;
using testing_util::Row;

// A bibliography-shaped table where "smith" appears as both an author
// and an editor — the same raw text under two attributes.
Table CrossAttributeTable() {
  return MakeTable({
      {{"Author", "smith"}, {"Editor", "jones"}, {"Title", "t1"}},
      {{"Author", "brown"}, {"Editor", "smith"}, {"Title", "t2"}},
      {{"Author", "smith"}, {"Editor", "smith"}, {"Title", "t3"}},
      {{"Author", "davis"}, {"Editor", "king"}, {"Title", "t4"}},
  });
}

TEST(KeywordUnionTest, UnknownTermAnswersEmptyAndStillCosts) {
  Table table = CrossAttributeTable();
  WebDbServer server(table, ServerOptions{});
  StatusOr<ResultPage> page = server.FetchPageByKeyword("nosuchterm", 0);
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(page->records.empty());
  EXPECT_FALSE(page->has_more);
  // A miss is still a conversation with the site: one round, one query.
  EXPECT_EQ(server.communication_rounds(), 1u);
  EXPECT_EQ(server.queries_issued(), 1u);
}

TEST(KeywordUnionTest, EmptyTermAnswersEmpty) {
  Table table = CrossAttributeTable();
  WebDbServer server(table, ServerOptions{});
  StatusOr<ResultPage> page = server.FetchPageByKeyword("", 0);
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(page->records.empty());
}

TEST(KeywordUnionTest, DuplicateTermUnionsAttributesWithoutDoubleCount) {
  Table table = CrossAttributeTable();
  ServerOptions options;
  options.reports_total_count = true;
  WebDbServer server(table, options);

  // "smith" matches records 0 and 2 as Author and 1 and 2 as Editor:
  // the union is {0, 1, 2}, with record 2 reported once.
  StatusOr<ResultPage> page = server.FetchPageByKeyword("smith", 0);
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(page->total_matches.has_value());
  EXPECT_EQ(*page->total_matches, 3u);
  ASSERT_EQ(page->records.size(), 3u);
  EXPECT_EQ(page->records[0].id, 0u);
  EXPECT_EQ(page->records[1].id, 1u);
  EXPECT_EQ(page->records[2].id, 2u);

  // The dictionary knows the text spans two attributes and both interned
  // values resolve to the same merged postings.
  ValueId author = GetValueId(table, "Author", "smith");
  ValueId editor = GetValueId(table, "Editor", "smith");
  EXPECT_EQ(server.KeywordAttributeSpan(author), 2u);
  EXPECT_EQ(server.KeywordAttributeSpan(editor), 2u);
  EXPECT_EQ(server.KeywordMatchCount(author), 3u);
  EXPECT_EQ(server.KeywordMatchCount(editor), 3u);
  ASSERT_EQ(server.KeywordPostings(author).size(), 3u);
  EXPECT_EQ(server.KeywordPostings(author).data(),
            server.KeywordPostings(editor).data());
}

TEST(KeywordUnionTest, SingleAttributeTokenAliasesIndexPostings) {
  Table table = CrossAttributeTable();
  WebDbServer server(table, ServerOptions{});
  ValueId jones = GetValueId(table, "Editor", "jones");
  EXPECT_EQ(server.KeywordAttributeSpan(jones), 1u);
  EXPECT_EQ(server.KeywordPostings(jones).data(),
            server.index().Postings(jones).data());
}

TEST(KeywordUnionTest, KeywordOfMatchesKeywordByText) {
  Table table = CrossAttributeTable();
  ServerOptions options;
  options.page_size = 2;
  options.reports_total_count = true;
  WebDbServer server(table, options);
  for (ValueId v = 0; v < table.num_distinct_values(); ++v) {
    StatusOr<ResultPage> by_id = server.FetchPageKeywordOf(v, 0);
    StatusOr<ResultPage> by_text = server.FetchPageByKeyword(
        table.catalog().text_of(v), 0);
    ASSERT_TRUE(by_id.ok());
    ASSERT_TRUE(by_text.ok());
    EXPECT_EQ(by_id->total_matches, by_text->total_matches);
    EXPECT_EQ(by_id->has_more, by_text->has_more);
    ASSERT_EQ(by_id->records.size(), by_text->records.size());
    for (size_t i = 0; i < by_id->records.size(); ++i) {
      EXPECT_EQ(by_id->records[i].id, by_text->records[i].id);
    }
  }
}

TEST(KeywordUnionTest, OutOfRangeValueIdAnswersEmpty) {
  Table table = CrossAttributeTable();
  WebDbServer server(table, ServerOptions{});
  ValueId bogus = table.num_distinct_values() + 17;
  EXPECT_EQ(server.KeywordAttributeSpan(bogus), 0u);
  EXPECT_TRUE(server.KeywordPostings(bogus).empty());
  StatusOr<ResultPage> page = server.FetchPageKeywordOf(bogus, 0);
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(page->records.empty());
}

TEST(KeywordUnionTest, MergedUnionPaginatesAcrossExactBoundary) {
  // 6 records match "shared" (3 per attribute, disjoint record sets);
  // page size 3 → exactly two full pages, no phantom third page.
  std::vector<Row> rows;
  for (int i = 0; i < 3; ++i) {
    rows.push_back({{"Author", "shared"}, {"Title", "a" + std::to_string(i)}});
  }
  for (int i = 0; i < 3; ++i) {
    rows.push_back({{"Author", "solo" + std::to_string(i)},
                    {"Editor", "shared"},
                    {"Title", "e" + std::to_string(i)}});
  }
  Table table = MakeTable(rows);
  ServerOptions options;
  options.page_size = 3;
  WebDbServer server(table, options);

  StatusOr<ResultPage> first = server.FetchPageByKeyword("shared", 0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->records.size(), 3u);
  EXPECT_TRUE(first->has_more);
  StatusOr<ResultPage> second = server.FetchPageByKeyword("shared", 1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->records.size(), 3u);
  EXPECT_FALSE(second->has_more);
  StatusOr<ResultPage> third = server.FetchPageByKeyword("shared", 2);
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kOutOfRange);
}

TEST(KeywordUnionTest, KeywordBoxIgnoresQueriableAttributeMask) {
  // The form only exposes Author, but the search box still reaches the
  // Editor column (a real site's keyword search is wider than its
  // advanced-search form).
  Table table = CrossAttributeTable();
  ServerOptions options;
  options.queriable_attributes = {
      static_cast<AttributeId>(*table.schema().FindAttribute("Author"))};
  WebDbServer server(table, options);
  ValueId jones = GetValueId(table, "Editor", "jones");
  EXPECT_FALSE(server.IsQueriableValue(jones));
  StatusOr<ResultPage> typed = server.FetchPage(jones, 0);
  ASSERT_TRUE(typed.ok());
  EXPECT_TRUE(typed->records.empty());
  StatusOr<ResultPage> keyword = server.FetchPageByKeyword("jones", 0);
  ASSERT_TRUE(keyword.ok());
  EXPECT_EQ(keyword->records.size(), 1u);
}

TEST(KeywordUnionTest, TokenCountMatchesDistinctTexts) {
  // "smith" under two attributes is ONE token; every other text is its
  // own. CrossAttributeTable has 12 cells, one duplicated text.
  Table table = CrossAttributeTable();
  WebDbServer server(table, ServerOptions{});
  EXPECT_EQ(server.num_keyword_tokens(), table.num_distinct_values() - 1);
}

TEST(ConjunctiveMergeBufferTest, DuplicatePredicateIsIdempotent) {
  Table table = CrossAttributeTable();
  WebDbServer server(table, ServerOptions{});
  ValueId author = GetValueId(table, "Author", "smith");
  std::vector<ValueId> once = {author};
  std::vector<ValueId> twice = {author, author, author};
  StatusOr<ResultPage> a = server.FetchPageConjunctive(once, 0);
  StatusOr<ResultPage> b = server.FetchPageConjunctive(twice, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->records.size(), b->records.size());
  for (size_t i = 0; i < a->records.size(); ++i) {
    EXPECT_EQ(a->records[i].id, b->records[i].id);
  }
}

TEST(ConjunctiveMergeBufferTest, EmptyPredicateListIsRejected) {
  Table table = CrossAttributeTable();
  WebDbServer server(table, ServerOptions{});
  StatusOr<ResultPage> page = server.FetchPageConjunctive({}, 0);
  EXPECT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kInvalidArgument);
  // A rejected malformed query never reached the site: no round charged.
  EXPECT_EQ(server.communication_rounds(), 0u);
}

TEST(ConjunctiveMergeBufferTest, IntersectionPaginatesAcrossExactBoundary) {
  // 4 records carry both predicates; page size 2 → two exact pages.
  std::vector<Row> rows;
  for (int i = 0; i < 4; ++i) {
    rows.push_back({{"Author", "smith"},
                    {"Editor", "jones"},
                    {"Title", "t" + std::to_string(i)}});
  }
  rows.push_back({{"Author", "smith"}, {"Editor", "king"}, {"Title", "x"}});
  Table table = MakeTable(rows);
  ServerOptions options;
  options.page_size = 2;
  WebDbServer server(table, options);
  std::vector<ValueId> both = {GetValueId(table, "Author", "smith"),
                               GetValueId(table, "Editor", "jones")};
  StatusOr<ResultPage> first = server.FetchPageConjunctive(both, 0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->records.size(), 2u);
  EXPECT_TRUE(first->has_more);
  StatusOr<ResultPage> second = server.FetchPageConjunctive(both, 1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->records.size(), 2u);
  EXPECT_FALSE(second->has_more);
  StatusOr<ResultPage> third = server.FetchPageConjunctive(both, 2);
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kOutOfRange);
}

TEST(ConjunctiveMergeBufferTest, ReusedScratchBuffersStayIndependent) {
  // Interleave keyword and conjunctive fetches: the conjunctive scratch
  // vectors must not leak state into the precomputed keyword unions.
  Table table = CrossAttributeTable();
  ServerOptions options;
  options.reports_total_count = true;
  WebDbServer server(table, options);
  std::vector<ValueId> both = {GetValueId(table, "Author", "smith"),
                               GetValueId(table, "Editor", "smith")};
  StatusOr<ResultPage> conj = server.FetchPageConjunctive(both, 0);
  ASSERT_TRUE(conj.ok());
  ASSERT_EQ(conj->records.size(), 1u);  // only record 2 has both
  EXPECT_EQ(conj->records[0].id, 2u);
  StatusOr<ResultPage> keyword = server.FetchPageByKeyword("smith", 0);
  ASSERT_TRUE(keyword.ok());
  EXPECT_EQ(keyword->records.size(), 3u);
  StatusOr<ResultPage> again = server.FetchPageConjunctive(both, 0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->records.size(), 1u);
}

}  // namespace
}  // namespace deepcrawl
