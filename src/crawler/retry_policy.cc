#include "src/crawler/retry_policy.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace deepcrawl {
namespace {

// SplitMix64 finalizer: a stateless hash so jitter depends only on
// (seed, value, attempt), never on how many other values retried before.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

RetryPolicy::RetryPolicy(RetryPolicyConfig config) : config_(config) {
  DEEPCRAWL_CHECK_GE(config_.max_attempts, 1u);
  DEEPCRAWL_CHECK_GE(config_.backoff_multiplier, 1.0);
  DEEPCRAWL_CHECK(config_.jitter >= 0.0 && config_.jitter <= 1.0)
      << "jitter must be in [0, 1]";
}

bool RetryPolicy::IsRetryable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

bool RetryPolicy::ShouldRetry(const Status& status, uint32_t failures) const {
  return IsRetryable(status) && failures < config_.max_attempts;
}

uint64_t RetryPolicy::BackoffTicks(const Status& status, uint32_t failures,
                                   ValueId value) const {
  DEEPCRAWL_DCHECK(failures >= 1) << "no backoff before the first failure";
  // Capped exponential window: initial * multiplier^(failures-1).
  double window = static_cast<double>(config_.initial_backoff_ticks);
  for (uint32_t i = 1; i < failures; ++i) {
    window *= config_.backoff_multiplier;
    if (window >= static_cast<double>(config_.max_backoff_ticks)) break;
  }
  uint64_t capped = std::min<uint64_t>(
      config_.max_backoff_ticks,
      static_cast<uint64_t>(std::llround(std::max(window, 1.0))));
  // Deterministic jitter over the last `jitter` fraction of the window.
  uint64_t jitter_span =
      static_cast<uint64_t>(config_.jitter * static_cast<double>(capped));
  uint64_t ticks = capped;
  if (jitter_span > 0) {
    uint64_t h = Mix64(config_.seed ^ Mix64((static_cast<uint64_t>(value) << 32) |
                                            failures));
    ticks = capped - (h % (jitter_span + 1));
  }
  if (status.retry_after_rounds().has_value()) {
    ticks = std::max<uint64_t>(ticks, *status.retry_after_rounds());
  }
  return std::max<uint64_t>(ticks, 1);
}

uint64_t RetryPolicy::FloorTicks(const Status& status) const {
  return status.retry_after_rounds().value_or(0);
}

}  // namespace deepcrawl
