file(REMOVE_RECURSE
  "CMakeFiles/adaptive_stop.dir/adaptive_stop.cpp.o"
  "CMakeFiles/adaptive_stop.dir/adaptive_stop.cpp.o.d"
  "adaptive_stop"
  "adaptive_stop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_stop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
