file(REMOVE_RECURSE
  "CMakeFiles/offline_planning.dir/offline_planning.cpp.o"
  "CMakeFiles/offline_planning.dir/offline_planning.cpp.o.d"
  "offline_planning"
  "offline_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
