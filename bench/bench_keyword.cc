// §2.2 ablation — the "fading schema" opportunity.
//
// The Table 1 case study found that most e-commerce sites expose a
// keyword box over their structured data, letting a crawler "throw
// attribute values into the target query box and safely rely on the end
// site's query processing to decide which column that value should
// match". A keyword query unions matches across attributes, so each
// round can harvest more — and values shared across columns (a person
// who both acts and directs) bridge parts of the graph a typed query
// interface keeps separate.
//
// This harness crawls the movie-domain target through both interfaces
// with the same policy and budget.

#include <iostream>

#include "bench/bench_common.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/datagen/movie_domain.h"
#include "src/util/table_printer.h"

int main() {
  using namespace deepcrawl;
  bench::PrintBanner(
      "Ablation (§2.2): keyword interface vs typed attribute fields",
      "\"fading schema\": most product sites accept keyword search over "
      "structured data, which simplifies and strengthens query-based "
      "crawling",
      "movie-domain target, greedy-link under both interfaces, equal "
      "round budgets");

  MovieDomainPairConfig config;
  config.universe_size = 10000;
  config.target_size = 3000;
  config.seed = 11;
  StatusOr<MovieDomainPair> pair = GenerateMovieDomainPair(config);
  DEEPCRAWL_CHECK(pair.ok()) << pair.status().ToString();
  const Table& target = pair->target;
  std::cout << "target records: "
            << TablePrinter::FormatCount(target.num_records()) << "\n\n";

  TablePrinter table({"interface", "budget (rounds)", "records", "coverage"});
  for (uint64_t budget : {200ull, 400ull, 800ull, 1600ull}) {
    for (bool keyword : {false, true}) {
      WebDbServer server(target, ServerOptions{});
      LocalStore store;
      GreedyLinkSelector selector(store);
      CrawlOptions options;
      options.max_rounds = budget;
      options.use_keyword_interface = keyword;
      CrawlResult result = bench::RunCrawl(server, selector, store, options,
                                           bench::SeedValue(target, 2));
      table.AddRow(
          {keyword ? "keyword box" : "typed fields",
           TablePrinter::FormatCount(budget),
           TablePrinter::FormatCount(result.records),
           TablePrinter::FormatPercent(
               static_cast<double>(result.records) /
                   static_cast<double>(target.num_records()), 1)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nreading: per QUERY the keyword box can only widen the "
               "result set, so the ultimately reachable record set grows "
               "(here: the final rows); per ROUND the wider results also "
               "cost extra pages and duplicates, so mid-budget coverage "
               "can lag the typed interface. The net effect measures how "
               "much cross-column value sharing (actor-directors) the "
               "domain offers.\n";
  return 0;
}
