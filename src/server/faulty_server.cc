#include "src/server/faulty_server.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/util/logging.h"

namespace deepcrawl {

FaultyServer::FaultyServer(QueryInterface& inner, FaultProfile profile,
                           uint64_t seed)
    : inner_(inner), profile_(profile), rng_(seed) {
  double sum = profile_.unavailable_rate + profile_.timeout_rate +
               profile_.rate_limit_rate + profile_.truncate_rate +
               profile_.duplicate_rate;
  DEEPCRAWL_CHECK(sum <= 1.0 + 1e-9) << "fault rates sum to " << sum;
  DEEPCRAWL_CHECK(profile_.unavailable_rate >= 0.0 &&
                  profile_.timeout_rate >= 0.0 &&
                  profile_.rate_limit_rate >= 0.0 &&
                  profile_.truncate_rate >= 0.0 &&
                  profile_.duplicate_rate >= 0.0)
      << "fault rates must be non-negative";
}

void FaultyServer::set_schedule(FaultSchedule schedule) {
  schedule_ = std::move(schedule);
  schedule_pos_ = 0;
}

FaultAction FaultyServer::NextAction() {
  if (schedule_pos_ < schedule_.size()) return schedule_[schedule_pos_++];
  if (profile_.IsAllZero()) return FaultAction::kNone;
  // One uniform draw per fetch keeps the decision sequence a pure
  // function of (seed, call index), independent of which fault fires.
  double u = rng_.NextDouble();
  double threshold = profile_.unavailable_rate;
  if (u < threshold) return FaultAction::kUnavailable;
  threshold += profile_.timeout_rate;
  if (u < threshold) return FaultAction::kTimeout;
  threshold += profile_.rate_limit_rate;
  if (u < threshold) return FaultAction::kRateLimit;
  threshold += profile_.truncate_rate;
  if (u < threshold) return FaultAction::kTruncate;
  threshold += profile_.duplicate_rate;
  if (u < threshold) return FaultAction::kDuplicate;
  return FaultAction::kNone;
}

Status FaultyServer::InjectFailure(FaultAction action, uint32_t page_number) {
  // The rejected round trip still happened: charge it here, because the
  // backend never saw the call.
  ++injected_failure_rounds_;
  if (page_number == 0) ++injected_failure_queries_;
  switch (action) {
    case FaultAction::kUnavailable:
      ++counters_.unavailable;
      return Status::Unavailable("source temporarily unavailable");
    case FaultAction::kTimeout:
      ++counters_.timeouts;
      return Status::DeadlineExceeded("page fetch timed out");
    case FaultAction::kRateLimit:
      ++counters_.rate_limited;
      return Status::ResourceExhausted("rate limited")
          .WithRetryAfter(profile_.retry_after_rounds);
    default:
      break;
  }
  DEEPCRAWL_CHECK(false) << "not a failure action";
  return Status::Internal("unreachable");
}

void FaultyServer::MutatePage(FaultAction action, ResultPage& page) {
  if (action == FaultAction::kTruncate) {
    // Silently drop the trailing half of the page (at least one record).
    // `has_more` is left untouched: the client cannot tell the listing
    // was short, exactly like a flaky real-world result page.
    if (page.records.empty()) return;
    size_t drop = std::max<size_t>(1, page.records.size() / 2);
    page.records.resize(page.records.size() - drop);
    ++counters_.truncated_pages;
    return;
  }
  if (action == FaultAction::kDuplicate) {
    // Echo the first record again in the last slot, silently hiding the
    // record that was there.
    if (page.records.size() < 2) return;
    page.records.back() = page.records.front();
    ++counters_.duplicated_records;
    return;
  }
}

template <typename Fetch>
StatusOr<ResultPage> FaultyServer::Dispatch(uint32_t page_number,
                                            Fetch&& fetch) {
  FaultAction action = NextAction();
  switch (action) {
    case FaultAction::kUnavailable:
    case FaultAction::kTimeout:
    case FaultAction::kRateLimit:
      return InjectFailure(action, page_number);
    default:
      break;
  }
  StatusOr<ResultPage> fetched = fetch();
  if (fetched.ok() && action != FaultAction::kNone) {
    MutatePage(action, *fetched);
  }
  return fetched;
}

StatusOr<ResultPage> FaultyServer::FetchPage(ValueId value,
                                             uint32_t page_number) {
  return Dispatch(page_number,
                  [&] { return inner_.FetchPage(value, page_number); });
}

StatusOr<ResultPage> FaultyServer::FetchPageByText(AttributeId attr,
                                                   std::string_view text,
                                                   uint32_t page_number) {
  return Dispatch(page_number, [&] {
    return inner_.FetchPageByText(attr, text, page_number);
  });
}

StatusOr<ResultPage> FaultyServer::FetchPageByKeyword(std::string_view text,
                                                      uint32_t page_number) {
  return Dispatch(page_number, [&] {
    return inner_.FetchPageByKeyword(text, page_number);
  });
}

StatusOr<ResultPage> FaultyServer::FetchPageConjunctive(
    std::span<const ValueId> values, uint32_t page_number) {
  return Dispatch(page_number, [&] {
    return inner_.FetchPageConjunctive(values, page_number);
  });
}

StatusOr<ResultPage> FaultyServer::FetchPageKeywordOf(ValueId value,
                                                      uint32_t page_number) {
  return Dispatch(page_number, [&] {
    return inner_.FetchPageKeywordOf(value, page_number);
  });
}

void FaultyServer::ResetMeters() {
  inner_.ResetMeters();
  injected_failure_rounds_ = 0;
  injected_failure_queries_ = 0;
}

}  // namespace deepcrawl
