# Empty dependencies file for movie_domain_crawl.
# This may be replaced when dependencies are built.
