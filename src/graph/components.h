// Connectivity analysis of attribute-value graphs.
//
// §2.1 notes an AVG "is not necessarily fully connected" and §4
// discusses "data islands": from a small seed set, the convergence
// coverage may be only a fraction of the database. §5 reports that the
// four controlled databases are "well connected" (99% of records
// reachable from any seed). This module computes exactly those numbers.
//
// Two values are connected when some chain of records links them; all
// values of one record are mutually connected (they form a clique), so
// components can be computed directly from the table with a union-find,
// without materializing the graph.

#ifndef DEEPCRAWL_GRAPH_COMPONENTS_H_
#define DEEPCRAWL_GRAPH_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "src/relation/table.h"
#include "src/relation/types.h"

namespace deepcrawl {

// Disjoint-set union with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(size_t n);

  uint32_t Find(uint32_t x);
  // Returns true when the two sets were merged (false: already joined).
  bool Union(uint32_t a, uint32_t b);

  size_t num_sets() const { return num_sets_; }
  uint32_t SetSize(uint32_t x);

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  size_t num_sets_;
};

// Result of a connectivity analysis of a database's AVG.
struct ConnectivityReport {
  size_t num_value_components = 0;
  // Number of records whose values lie in the largest component.
  size_t largest_component_records = 0;
  // largest_component_records / num_records.
  double largest_component_record_fraction = 0.0;
  // Component id (representative value id) per record.
  std::vector<uint32_t> record_component;
};

// Computes value components of `table`'s AVG and the share of records in
// the largest one. Records are in exactly one component because their
// values form a clique.
ConnectivityReport AnalyzeConnectivity(const Table& table);

}  // namespace deepcrawl

#endif  // DEEPCRAWL_GRAPH_COMPONENTS_H_
