#include "src/crawler/crawler.h"

#include <algorithm>

#include "src/util/logging.h"

namespace deepcrawl {

const char* StopReasonToString(StopReason reason) {
  switch (reason) {
    case StopReason::kFrontierExhausted:
      return "frontier-exhausted";
    case StopReason::kRoundBudget:
      return "round-budget";
    case StopReason::kTargetReached:
      return "target-reached";
  }
  return "unknown";
}

Crawler::Crawler(QueryInterface& server, QuerySelector& selector,
                 LocalStore& store, CrawlOptions options,
                 AbortPolicy* abort_policy, const RetryPolicy* retry_policy)
    : server_(server),
      selector_(selector),
      store_(store),
      options_(options),
      abort_policy_(abort_policy),
      retry_policy_(retry_policy) {}

void Crawler::DiscoverValue(ValueId v) {
  if (v >= seen_.size()) seen_.resize(static_cast<size_t>(v) + 1, 0);
  if (seen_[v]) return;
  seen_[v] = 1;
  // Values of attributes outside the interface schema Aq (Definition
  // 2.2) appear on result pages but cannot be queried; they never enter
  // Lto-query.
  if (!server_.IsQueriableValue(v)) return;
  selector_.OnValueDiscovered(v);
}

void Crawler::AddSeed(ValueId v) { DiscoverValue(v); }

ValueId Crawler::NextValue() {
  ValueId value = selector_.SelectNext();
  if (value != kInvalidValueId) return value;
  // Re-queued values wait at the frontier tail: they only come up once
  // the selector has nothing better.
  if (!retry_queue_.empty()) {
    value = retry_queue_.front();
    retry_queue_.pop_front();
  }
  return value;
}

StatusOr<CrawlResult> Crawler::Run() {
  auto make_result = [&](StopReason reason) {
    CrawlResult result;
    result.stop_reason = reason;
    result.rounds = rounds_used_;
    result.queries = queries_issued_;
    result.records = store_.num_records();
    result.trace = trace_;
    result.resilience = trace_.resilience();
    return result;
  };

  for (;;) {
    if (options_.target_records > 0 &&
        store_.num_records() >= options_.target_records) {
      return make_result(StopReason::kTargetReached);
    }
    if (options_.max_rounds > 0 && rounds_used_ >= options_.max_rounds) {
      return make_result(StopReason::kRoundBudget);
    }

    ValueId value;
    uint32_t page;
    uint32_t failures;
    QueryOutcome outcome;
    if (pending_.has_value()) {
      // A previous Run() hit the round budget mid-drain; continue that
      // drain where it stopped instead of re-issuing the drained prefix.
      value = pending_->value;
      page = pending_->next_page;
      failures = pending_->failures;
      outcome = pending_->outcome;
      pending_.reset();
    } else {
      value = NextValue();
      if (value == kInvalidValueId) {
        return make_result(StopReason::kFrontierExhausted);
      }
      ++queries_issued_;
      page = 0;
      failures = 0;
      outcome.value = value;
    }

    // Drain the query page by page.
    QueryProgress progress;
    progress.page_size = server_.options().page_size;
    bool budget_hit = false;
    bool target_hit = false;
    bool gave_up = false;
    for (;;) {
      StatusOr<ResultPage> fetched =
          options_.use_keyword_interface
              ? server_.FetchPageKeywordOf(value, page)
              : server_.FetchPage(value, page);
      ++rounds_used_;
      if (!fetched.ok()) {
        const Status& failure = fetched.status();
        if (retry_policy_ == nullptr ||
            !RetryPolicy::IsRetryable(failure)) {
          return failure;
        }
        ++failures;
        ++trace_.resilience().transient_failures;
        if (!retry_policy_->ShouldRetry(failure, failures)) {
          gave_up = true;  // retry budget for this drain is exhausted
          break;
        }
        uint64_t wait =
            retry_policy_->BackoffTicks(failure, failures, value);
        clock_.Advance(wait);
        trace_.resilience().backoff_ticks += wait;
        ++trace_.resilience().retries;
        if (options_.max_rounds > 0 &&
            rounds_used_ >= options_.max_rounds) {
          // Budget expired between attempts; the failed page is retried
          // first when Run() is called again.
          pending_ = PendingDrain{value, page, failures, outcome};
          budget_hit = true;
          break;
        }
        continue;  // retry the same page
      }
      const ResultPage& result_page = *fetched;

      for (const ReturnedRecord& record : result_page.records) {
        ++outcome.records_returned;
        if (store_.ContainsRecord(record.id)) {
          store_.ObserveDuplicate(record.id);
          continue;
        }
        // Decompose first so the selector hears about new values before
        // the record-harvest notification (see QuerySelector contract).
        for (ValueId v : record.values) DiscoverValue(v);
        uint32_t slot = static_cast<uint32_t>(store_.num_records());
        bool added = store_.AddRecord(record.id, record.values);
        DEEPCRAWL_DCHECK(added) << "record dedup raced";
        (void)added;
        ++outcome.new_records;
        selector_.OnRecordHarvested(slot);
      }
      ++outcome.pages_fetched;
      trace_.Add(rounds_used_, store_.num_records());

      if (result_page.total_matches.has_value() && page == 0) {
        outcome.total_matches = result_page.total_matches;
      }

      if (!result_page.has_more) break;
      if (options_.target_records > 0 &&
          store_.num_records() >= options_.target_records) {
        target_hit = true;
        break;
      }
      if (options_.max_rounds > 0 && rounds_used_ >= options_.max_rounds) {
        pending_ = PendingDrain{value, page + 1, failures, outcome};
        budget_hit = true;
        break;
      }
      if (abort_policy_ != nullptr) {
        progress.total_matches = outcome.total_matches;
        uint32_t total = result_page.total_matches.value_or(0);
        uint32_t limit = server_.options().result_limit;
        progress.retrievable =
            limit > 0 ? std::min(total, limit) : total;
        progress.pages_fetched = outcome.pages_fetched;
        progress.records_returned = outcome.records_returned;
        progress.new_records = outcome.new_records;
        progress.has_more = true;
        if (!abort_policy_->ShouldContinue(progress)) {
          outcome.aborted = true;
          break;
        }
      }
      ++page;
    }

    if (budget_hit) {
      // The unfinished drain was parked in pending_; the selector hears
      // OnQueryCompleted only when the drain actually ends.
      return make_result(StopReason::kRoundBudget);
    }

    outcome.fetch_failures = failures;
    if (gave_up) {
      // Graceful degradation: pages were lost, but the crawl survives.
      // Give the value a bounded number of fresh chances at the frontier
      // tail before writing it off.
      outcome.degraded = true;
      ++trace_.resilience().degraded_queries;
      uint32_t& requeues = requeue_count_[value];
      if (requeues < retry_policy_->config().max_requeues) {
        ++requeues;
        ++trace_.resilience().requeues;
        retry_queue_.push_back(value);
        // Not completed: the selector is notified when the re-issued
        // drain finishes or the value is abandoned.
      } else {
        ++trace_.resilience().abandoned_values;
        selector_.OnQueryCompleted(outcome);
      }
    } else {
      selector_.OnQueryCompleted(outcome);
    }

    if (!saturation_notified_ && options_.saturation_records > 0 &&
        store_.num_records() >= options_.saturation_records) {
      saturation_notified_ = true;
      selector_.OnSaturation();
    }
    if (target_hit) return make_result(StopReason::kTargetReached);
  }
}

}  // namespace deepcrawl
