#!/usr/bin/env bash
# Tier-1 verification, ten times over: the plain build, an ASan/UBSan
# build, a ThreadSanitizer build for the concurrency suite, a
# Release-mode perf pass that guards the committed BENCH_*.json
# baselines, a kill/resume pass that SIGKILLs a checkpointing crawl
# mid-run and proves the resumed crawl's trace is byte-identical to an
# uninterrupted one, the same kill/resume differential against a whole
# fleet crawling under scripted chaos, a competitive-guarantee gate
# that crawls a small adversarial greedy-trap instance end to end and
# fails when the opt-rank selector exceeds its 2x-of-OPT bound (or when
# the greedy lower-bound gap collapses), and a network resilience pass
# that SIGKILLs a deepcrawl_serve process under a live TCP crawl,
# restarts it on the same port, and proves the client reconnected,
# retransmitted, and produced a byte-identical trace. A ninth pass
# drives the out-of-core paged store through the CLI with tiny pages
# and a starved cache (--page-bytes=512 --cache-pages=8): the paged
# trace must be byte-identical to the in-memory run, and a paged crawl
# SIGKILLed mid-run must resume from its durable manifest and still
# match byte for byte. A tenth pass points the same kill/resume
# differential at the adaptive meta-selector crawling a textual source
# through the keyword box under faults, so the checkpoint taken around
# the phase-switch boundary proves out on the real files-on-disk path.
#
# Usage: tools/check.sh [--no-asan] [--no-tsan] [--no-perf] [--no-resume]
#        [--no-competitive] [--no-net] [--no-paged] [--no-adaptive]
#
# The plain pass is the canonical `cmake && ctest` loop from ROADMAP.md;
# the ASan pass rebuilds everything into build-asan/ with -DASAN=ON
# (-fsanitize=address,undefined) and runs the same suite, so memory and
# UB bugs surface before they flake in production runs. The TSan pass
# rebuilds into build-tsan/ with -DTSAN=ON (-fsanitize=thread; the two
# sanitizers cannot be combined) and runs the concurrency tests — the
# thread pool, the locked query interface, the parallel crawl engine's
# differential/stress suites, and the sharded store — under the race
# detector. The perf pass rebuilds into build-perf/ with
# -DCMAKE_BUILD_TYPE=Release, runs the JSON bench suites, and fails on
# >20% regression against the committed baselines via
# tools/bench_compare.py (see README "Benchmarking").
set -euo pipefail
cd "$(dirname "$0")/.."

# Test suites exercising threads; kept in tests/CMakeLists.txt's
# deepcrawl_concurrency_tests binary (plus the property tests that ride
# along with it).
TSAN_FILTER='^(ThreadPoolTest|LockedInterfaceTest|AdaptiveDifferentialTest|ParallelCrawlerDifferentialTest|ParallelCrawlerStressTest|CrawlCheckpointTest|ShardedStoreTest|AvgInvariantsPropertyTest|TraceWaveTest|HotPathDifferentialTest|PagedDifferentialTest|CrawlFleetTest|FleetStressTest|OptimalSelectorTest|OptimalCompetitivePropertyTest|NetServerTest|NetDifferentialTest)'

run_suite() {
  local build_dir="$1"; shift
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
}

# Shared kill/resume differential (passes 5, 6, 9, 10). Launches the
# slowed, checkpointing command held in the array named by `$5` in the
# background, waits for its first checkpoint to land at `$2`, SIGKILLs
# it mid-run, then re-runs the command held in the array named by `$6`
# with --resume-from/--trace-csv appended and byte-compares the resumed
# trace against the uninterrupted reference trace `$3`.
kill_resume_differential() {
  local label="$1" ckpt="$2" reference="$3" resumed="$4"
  local -n krd_bg_cmd="$5" krd_resume_cmd="$6"
  "${krd_bg_cmd[@]}" > /dev/null 2>&1 &
  local pid=$!
  # Let it commit some waves, then kill it hard mid-crawl (the caller's
  # simulated latency stretches the run so the kill lands mid-crawl;
  # latency never affects results, so the resumed run drops it).
  while [[ ! -s "${ckpt}" ]]; do sleep 0.1; done
  sleep 1
  kill -9 "${pid}" 2> /dev/null || true
  wait "${pid}" 2> /dev/null || true
  if ! "${krd_resume_cmd[@]}" --resume-from="${ckpt}" \
      --trace-csv="${resumed}" > /dev/null; then
    echo "${label} FAILED: resume from checkpoint errored" >&2
    exit 1
  fi
  if ! cmp -s "${reference}" "${resumed}"; then
    echo "${label} FAILED: resumed trace differs from one-shot" >&2
    diff "${reference}" "${resumed}" | head -20 >&2
    exit 1
  fi
  echo "${label}: traces byte-identical"
}

echo "=== pass 1/10: plain build (build/) ==="
run_suite build

skip_asan=0
skip_tsan=0
skip_perf=0
skip_resume=0
skip_competitive=0
skip_net=0
skip_paged=0
skip_adaptive=0
for arg in "$@"; do
  case "${arg}" in
    --no-asan) skip_asan=1 ;;
    --no-tsan) skip_tsan=1 ;;
    --no-perf) skip_perf=1 ;;
    --no-resume) skip_resume=1 ;;
    --no-competitive) skip_competitive=1 ;;
    --no-net) skip_net=1 ;;
    --no-paged) skip_paged=1 ;;
    --no-adaptive) skip_adaptive=1 ;;
    *) echo "unknown flag: ${arg}" >&2; exit 2 ;;
  esac
done

if [[ "${skip_asan}" == 1 ]]; then
  echo "=== pass 2/10 skipped (--no-asan) ==="
else
  echo "=== pass 2/10: sanitizer build (build-asan/, -DASAN=ON) ==="
  run_suite build-asan -DASAN=ON
fi

if [[ "${skip_tsan}" == 1 ]]; then
  echo "=== pass 3/10 skipped (--no-tsan) ==="
else
  echo "=== pass 3/10: thread sanitizer build (build-tsan/, -DTSAN=ON) ==="
  cmake -B build-tsan -S . -DTSAN=ON
  cmake --build build-tsan -j
  ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
    -R "${TSAN_FILTER}"
fi

if [[ "${skip_perf}" == 1 ]]; then
  echo "=== pass 4/10 skipped (--no-perf) ==="
else
  echo "=== pass 4/10: perf regression (build-perf/, Release) ==="
  cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-perf -j \
    --target bench_micro bench_parallel bench_mmmi_ablation bench_fleet \
    bench_optimal bench_net bench_paged bench_textual
  ./build-perf/bench/bench_micro --json=build-perf/BENCH_micro.json
  ./build-perf/bench/bench_parallel --json=build-perf/BENCH_parallel.json
  ./build-perf/bench/bench_mmmi_ablation \
    --json=build-perf/BENCH_mmmi_ablation.json
  ./build-perf/bench/bench_fleet --json=build-perf/BENCH_fleet.json
  ./build-perf/bench/bench_optimal --json=build-perf/BENCH_optimal.json
  ./build-perf/bench/bench_net --json=build-perf/BENCH_net.json
  ./build-perf/bench/bench_paged --json=build-perf/BENCH_paged.json
  ./build-perf/bench/bench_textual --json=build-perf/BENCH_textual.json
  python3 tools/bench_compare.py --max-regress 0.20 \
    --baseline BENCH_micro.json \
    --current build-perf/BENCH_micro.json \
    --baseline BENCH_parallel.json \
    --current build-perf/BENCH_parallel.json \
    --baseline BENCH_mmmi_ablation.json \
    --current build-perf/BENCH_mmmi_ablation.json \
    --baseline BENCH_fleet.json \
    --current build-perf/BENCH_fleet.json \
    --baseline BENCH_optimal.json \
    --current build-perf/BENCH_optimal.json \
    --baseline BENCH_net.json \
    --current build-perf/BENCH_net.json \
    --baseline BENCH_paged.json \
    --current build-perf/BENCH_paged.json \
    --baseline BENCH_textual.json \
    --current build-perf/BENCH_textual.json
fi

if [[ "${skip_resume}" == 1 ]]; then
  echo "=== pass 5/10 skipped (--no-resume) ==="
else
  echo "=== pass 5/10: kill/resume checkpoint differential ==="
  # An uninterrupted reference crawl, then the same crawl slowed by
  # simulated latency, checkpointing every wave, SIGKILLed mid-run; the
  # resume from its last surviving checkpoint must emit the exact same
  # trace CSV. Exercises the real files-on-disk path (atomic replace,
  # partially-written temp files) that the in-process test sweeps cannot.
  RESUME_DIR="$(mktemp -d)"
  trap 'rm -rf "${RESUME_DIR}"' EXIT
  CRAWL=./build/tools/deepcrawl_crawl
  CRAWL_ARGS=(--workload=ebay --scale=0.05 --policy=greedy
    --fault-profile=flaky --threads=4 --batch=4)
  "${CRAWL}" "${CRAWL_ARGS[@]}" --trace-csv="${RESUME_DIR}/full.csv" \
    > /dev/null
  KR_BG=("${CRAWL}" "${CRAWL_ARGS[@]}" --latency-us=5000
    --checkpoint="${RESUME_DIR}/crawl.ckpt" --checkpoint-every=1)
  KR_RESUME=("${CRAWL}" "${CRAWL_ARGS[@]}")
  kill_resume_differential "kill/resume differential" \
    "${RESUME_DIR}/crawl.ckpt" "${RESUME_DIR}/full.csv" \
    "${RESUME_DIR}/resumed.csv" KR_BG KR_RESUME
fi

if [[ "${skip_resume}" == 1 ]]; then
  echo "=== pass 6/10 skipped (--no-resume) ==="
else
  echo "=== pass 6/10: fleet kill/resume under chaos ==="
  # Pass 5 for the whole fleet: an uninterrupted 4-source fleet crawl
  # under the hostile chaos schedule, then the same fleet slowed by
  # simulated latency and checkpointing every turn, SIGKILLed mid-chaos;
  # the resume from the last surviving whole-fleet checkpoint (breakers,
  # token buckets, scheduler, every engine) must emit a byte-identical
  # per-source trace CSV.
  FLEET_DIR="$(mktemp -d)"
  # Keep cleaning pass 5's dir too (one trap per signal).
  trap 'rm -rf "${RESUME_DIR:-}" "${FLEET_DIR}"' EXIT
  FLEET=./build/tools/deepcrawl_fleet
  FLEET_ARGS=(--sources=4 --scale=0.004 --target-coverage=0.9 --seeds=8
    --retry-requeues=16 --fault-profile=flaky --chaos=hostile --seed=42)
  "${FLEET}" "${FLEET_ARGS[@]}" --trace-csv="${FLEET_DIR}/full.csv" \
    > /dev/null
  KR_BG=("${FLEET}" "${FLEET_ARGS[@]}" --threads=4 --latency-us=3000
    --checkpoint="${FLEET_DIR}/fleet.ckpt" --checkpoint-every=1)
  KR_RESUME=("${FLEET}" "${FLEET_ARGS[@]}")
  kill_resume_differential "fleet kill/resume differential" \
    "${FLEET_DIR}/fleet.ckpt" "${FLEET_DIR}/full.csv" \
    "${FLEET_DIR}/resumed.csv" KR_BG KR_RESUME
fi

if [[ "${skip_competitive}" == 1 ]]; then
  echo "=== pass 7/10 skipped (--no-competitive) ==="
else
  echo "=== pass 7/10: competitive-guarantee gate (adversarial trap) ==="
  # End-to-end through the real CLI: generate a B=32 greedy-trap
  # instance, crawl it to full coverage with opt-rank and with greedy,
  # and gate on the measured cost/OPT ratios — the descent must stay
  # within its 2x bound and the greedy gap must not collapse (the trap
  # regressing would silently void the lower-bound property suite).
  CRAWL=./build/tools/deepcrawl_crawl
  ADV_ARGS=(--workload=adversarial --target-coverage=1 --adv-buckets=24
    --adv-records=4 --adv-decoy-buckets=8 --adv-decoy-width=32)
  rank_ratio="$("${CRAWL}" "${ADV_ARGS[@]}" --policy=opt-rank \
    | awk -F'ratio=' '/^  competitive:/ {print $2}')"
  greedy_ratio="$("${CRAWL}" "${ADV_ARGS[@]}" --policy=greedy \
    | awk -F'ratio=' '/^  competitive:/ {print $2}')"
  if [[ -z "${rank_ratio}" || -z "${greedy_ratio}" ]]; then
    echo "competitive gate FAILED: no ratio line in crawl output" >&2
    exit 1
  fi
  echo "opt-rank cost/OPT: ${rank_ratio}  greedy cost/OPT: ${greedy_ratio}"
  if ! awk -v r="${rank_ratio}" 'BEGIN { exit !(r <= 2.0) }'; then
    echo "competitive gate FAILED: opt-rank ratio ${rank_ratio} > 2.0" >&2
    exit 1
  fi
  if ! awk -v g="${greedy_ratio}" -v r="${rank_ratio}" \
      'BEGIN { exit !(g >= 4.0 * r) }'; then
    echo "competitive gate FAILED: greedy gap collapsed" \
      "(greedy ${greedy_ratio} < 4x opt-rank ${rank_ratio})" >&2
    exit 1
  fi
  echo "competitive gate: bound holds, separation intact"
fi

if [[ "${skip_net}" == 1 ]]; then
  echo "=== pass 8/10 skipped (--no-net) ==="
else
  echo "=== pass 8/10: network kill/reconnect over real sockets ==="
  # The wire protocol's story end to end through the real binaries, in
  # two differentials. (a) Transparency: the same faulty crawl run
  # in-process and against a deepcrawl_serve process must emit
  # byte-identical traces — keyed fault injection crosses the wire
  # unchanged. (b) Resilience: a fault-free crawl against a slowed
  # server (per-response latency stretches the run) whose process is
  # SIGKILLed mid-crawl and restarted on the same port must reconnect,
  # retransmit the in-flight wave, and still finish byte-identical to
  # the in-process run. (b) runs fault-free on purpose: keyed fault
  # attempt counters are server state, so a restarted server re-faults
  # first attempts it has forgotten — restart equivalence is a promise
  # about the stateless protocol, not about fault bookkeeping.
  NET_DIR="$(mktemp -d)"
  # Keep cleaning the earlier passes' dirs too (one trap per signal).
  trap 'rm -rf "${RESUME_DIR:-}" "${FLEET_DIR:-}" "${NET_DIR}"' EXIT
  SERVE=./build/tools/deepcrawl_serve
  CRAWL=./build/tools/deepcrawl_crawl
  NET_BASE=(--workload=ebay --scale=0.05 --policy=greedy --batch=4)
  # (a) faulty wire transparency.
  "${CRAWL}" "${NET_BASE[@]}" --fault-profile=flaky \
    --trace-csv="${NET_DIR}/inproc_flaky.csv" > /dev/null
  "${SERVE}" --workload=ebay --scale=0.05 --fault-profile=flaky \
    --port-file="${NET_DIR}/port" > /dev/null 2>&1 &
  SERVE_PID=$!
  while [[ ! -s "${NET_DIR}/port" ]]; do sleep 0.05; done
  NET_PORT="$(cat "${NET_DIR}/port")"
  "${CRAWL}" "${NET_BASE[@]}" --fault-profile=flaky --connections=4 \
    --connect="127.0.0.1:${NET_PORT}" \
    --trace-csv="${NET_DIR}/tcp_flaky.csv" > /dev/null
  kill "${SERVE_PID}" 2> /dev/null || true
  wait "${SERVE_PID}" 2> /dev/null || true
  if ! cmp -s "${NET_DIR}/inproc_flaky.csv" "${NET_DIR}/tcp_flaky.csv"; then
    echo "network transparency FAILED: TCP trace differs in-process" >&2
    diff "${NET_DIR}/inproc_flaky.csv" "${NET_DIR}/tcp_flaky.csv" \
      | head -20 >&2
    exit 1
  fi
  echo "network transparency: faulty TCP trace byte-identical in-process"
  # (b) kill/reconnect across a server restart.
  "${CRAWL}" "${NET_BASE[@]}" \
    --trace-csv="${NET_DIR}/inproc_clean.csv" > /dev/null
  "${SERVE}" --workload=ebay --scale=0.05 --port="${NET_PORT}" \
    --latency-us=10000 > /dev/null 2>&1 &
  SERVE_PID=$!
  sleep 0.3
  "${CRAWL}" "${NET_BASE[@]}" --connections=4 \
    --connect="127.0.0.1:${NET_PORT}" \
    --trace-csv="${NET_DIR}/tcp_killed.csv" > "${NET_DIR}/killed.out" &
  NET_CRAWL_PID=$!
  sleep 1
  kill -9 "${SERVE_PID}" 2> /dev/null || true
  wait "${SERVE_PID}" 2> /dev/null || true
  "${SERVE}" --workload=ebay --scale=0.05 --port="${NET_PORT}" \
    > /dev/null 2>&1 &
  SERVE_PID=$!
  if ! wait "${NET_CRAWL_PID}"; then
    echo "network kill/reconnect FAILED: crawl errored across restart" >&2
    kill "${SERVE_PID}" 2> /dev/null || true
    exit 1
  fi
  kill "${SERVE_PID}" 2> /dev/null || true
  wait "${SERVE_PID}" 2> /dev/null || true
  if ! cmp -s "${NET_DIR}/inproc_clean.csv" "${NET_DIR}/tcp_killed.csv"; then
    echo "network kill/reconnect FAILED: trace differs after restart" >&2
    diff "${NET_DIR}/inproc_clean.csv" "${NET_DIR}/tcp_killed.csv" \
      | head -20 >&2
    exit 1
  fi
  # reconnects == 0 would mean the kill landed after the crawl was done
  # and the pass proved nothing; fail loudly so the timing gets fixed.
  NET_RECONNECTS="$(awk '/network:/ {print $(NF-1)}' \
    "${NET_DIR}/killed.out")"
  if [[ -z "${NET_RECONNECTS}" || "${NET_RECONNECTS}" == 0 ]]; then
    echo "network kill/reconnect FAILED: crawl never saw the restart" \
      "(reconnects=${NET_RECONNECTS:-none})" >&2
    exit 1
  fi
  echo "network kill/reconnect: trace byte-identical," \
    "${NET_RECONNECTS} reconnect(s)"
fi

if [[ "${skip_paged}" == 1 ]]; then
  echo "=== pass 9/10 skipped (--no-paged) ==="
else
  echo "=== pass 9/10: out-of-core paged store differential + kill/resume ==="
  # The paged backend's story end to end through the CLI, with pages
  # small enough (512 B x 8 frames = 4 KiB resident) that every wave
  # thrashes the cache. (a) Transparency: the same faulty parallel
  # crawl over --layout=paged must emit a trace byte-identical to the
  # in-memory run. (b) Durability: a paged crawl checkpointing every
  # wave, SIGKILLed mid-run, must resume from the durable page
  # manifest in the SAME store directory (sweeping the crash window's
  # orphan epochs) and still finish byte-identical. Runs under the
  # ASan binary when pass 2 built one, so the recovery scrub and the
  # copy-out accessors get bounds-checked while they thrash.
  PAGED_DIR="$(mktemp -d)"
  trap 'rm -rf "${RESUME_DIR:-}" "${FLEET_DIR:-}" "${NET_DIR:-}" "${PAGED_DIR}"' EXIT
  if [[ "${skip_asan}" == 0 && -x ./build-asan/tools/deepcrawl_crawl ]]; then
    CRAWL=./build-asan/tools/deepcrawl_crawl
  else
    CRAWL=./build/tools/deepcrawl_crawl
  fi
  PAGED_BASE=(--workload=ebay --scale=0.05 --policy=greedy
    --fault-profile=flaky --threads=4 --batch=4)
  PAGED_FLAGS=(--layout=paged --page-bytes=512 --cache-pages=8)
  # (a) thrashing-cache transparency.
  "${CRAWL}" "${PAGED_BASE[@]}" --trace-csv="${PAGED_DIR}/memory.csv" \
    > /dev/null
  "${CRAWL}" "${PAGED_BASE[@]}" "${PAGED_FLAGS[@]}" \
    --store-dir="${PAGED_DIR}/store_diff" \
    --trace-csv="${PAGED_DIR}/paged.csv" > /dev/null
  if ! cmp -s "${PAGED_DIR}/memory.csv" "${PAGED_DIR}/paged.csv"; then
    echo "paged differential FAILED: paged trace differs from in-memory" >&2
    diff "${PAGED_DIR}/memory.csv" "${PAGED_DIR}/paged.csv" | head -20 >&2
    exit 1
  fi
  echo "paged differential: thrashing-cache trace byte-identical"
  # (b) SIGKILL mid-crawl, resume from the durable manifest.
  KR_BG=("${CRAWL}" "${PAGED_BASE[@]}" "${PAGED_FLAGS[@]}"
    --store-dir="${PAGED_DIR}/store_kill" --latency-us=5000
    --checkpoint="${PAGED_DIR}/crawl.ckpt" --checkpoint-every=1)
  KR_RESUME=("${CRAWL}" "${PAGED_BASE[@]}" "${PAGED_FLAGS[@]}"
    --store-dir="${PAGED_DIR}/store_kill")
  kill_resume_differential "paged kill/resume differential" \
    "${PAGED_DIR}/crawl.ckpt" "${PAGED_DIR}/memory.csv" \
    "${PAGED_DIR}/resumed.csv" KR_BG KR_RESUME
fi

if [[ "${skip_adaptive}" == 1 ]]; then
  echo "=== pass 10/10 skipped (--no-adaptive) ==="
else
  echo "=== pass 10/10: adaptive switch kill/resume on a textual source ==="
  # The adaptive meta-selector (GL -> GL+MMMI -> term-weight) crawling a
  # generated textual database through the keyword box under faults,
  # parallel and batched. The SIGKILL lands while the chain's estimator
  # and phase counters are live state, so the resumed crawl only matches
  # byte for byte if the SELC section restores the whole chain — active
  # phase, per-child frontiers, EWMA — exactly, switch wave included.
  ADAPT_DIR="$(mktemp -d)"
  trap 'rm -rf "${RESUME_DIR:-}" "${FLEET_DIR:-}" "${NET_DIR:-}" "${PAGED_DIR:-}" "${ADAPT_DIR}"' EXIT
  CRAWL=./build/tools/deepcrawl_crawl
  ADAPT_ARGS=(--workload=textual --scale=0.1 --policy=adaptive --keyword
    --result-limit=110 --fault-profile=flaky --threads=4 --batch=4)
  "${CRAWL}" "${ADAPT_ARGS[@]}" --trace-csv="${ADAPT_DIR}/full.csv" \
    > /dev/null
  KR_BG=("${CRAWL}" "${ADAPT_ARGS[@]}" --latency-us=3000
    --checkpoint="${ADAPT_DIR}/crawl.ckpt" --checkpoint-every=1)
  KR_RESUME=("${CRAWL}" "${ADAPT_ARGS[@]}")
  kill_resume_differential "adaptive kill/resume differential" \
    "${ADAPT_DIR}/crawl.ckpt" "${ADAPT_DIR}/full.csv" \
    "${ADAPT_DIR}/resumed.csv" KR_BG KR_RESUME
fi

echo "all requested checks passed"
