// QueryInterface: the abstract query surface of a structured Web source.
//
// Everything a crawler may do to a source is declared here — paginated
// single-value / text / keyword / conjunctive queries plus the
// communication-round meters of the paper's cost model (Definition 2.3).
// Concrete implementations:
//
//   * WebDbServer (web_db_server.h): the faithful simulator over a
//     relational backend — answers every query perfectly;
//   * FaultyServer (faulty_server.h): a fault-injecting proxy wrapping
//     any QueryInterface, modelling the timeouts, rate limits, and
//     truncated result lists of real sources (§5.4).
//
// The Crawler depends only on this interface, so the same crawl loop
// (and every selection policy) runs unchanged against the perfect
// simulator, the fault proxy, or a future live-HTTP adapter.

#ifndef DEEPCRAWL_SERVER_QUERY_INTERFACE_H_
#define DEEPCRAWL_SERVER_QUERY_INTERFACE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "src/relation/types.h"
#include "src/util/status.h"

namespace deepcrawl {

struct ServerOptions {
  // Maximum records per result page (k in Definition 2.3).
  uint32_t page_size = 10;
  // Maximum matched records retrievable per query; 0 means unlimited.
  // (§5.4: Amazon caps at 3200; the paper also studies 10 and 50.)
  uint32_t result_limit = 0;
  // Whether pages carry the total number of matches ("95 cars found").
  bool reports_total_count = true;
  // Interface schema Aq of Definition 2.2: the attributes the query form
  // accepts, which may be a strict subset of the result schema Ar
  // ("users can query Amazon with book title only"). Empty = every
  // attribute is queriable. Queries on non-queriable attributes return
  // empty results (the form has no such field), still costing a round.
  std::vector<AttributeId> queriable_attributes;
};

// Round-trip-time tallies of the page fetches an interface served. One
// struct covers both latency sources, so reporting is uniform: the
// LockedQueryInterface records its SIMULATED --latency-us per fetch,
// the NetQueryClient (src/net/net_client.h) records the MEASURED
// wall-clock of each socket round trip. Wall-clock-derived, hence
// outside the determinism contract: never checkpointed, never traced.
struct RttCounters {
  uint64_t fetches = 0;       // fetches with an RTT observation
  uint64_t total_rtt_us = 0;  // sum over those fetches
  uint64_t min_rtt_us = 0;    // 0 until the first observation
  uint64_t max_rtt_us = 0;

  void Record(uint64_t rtt_us) {
    if (fetches == 0 || rtt_us < min_rtt_us) min_rtt_us = rtt_us;
    if (rtt_us > max_rtt_us) max_rtt_us = rtt_us;
    ++fetches;
    total_rtt_us += rtt_us;
  }

  void Merge(const RttCounters& other) {
    if (other.fetches == 0) return;
    if (fetches == 0 || other.min_rtt_us < min_rtt_us) {
      min_rtt_us = other.min_rtt_us;
    }
    if (other.max_rtt_us > max_rtt_us) max_rtt_us = other.max_rtt_us;
    fetches += other.fetches;
    total_rtt_us += other.total_rtt_us;
  }

  double MeanUs() const {
    return fetches == 0 ? 0.0
                        : static_cast<double>(total_rtt_us) /
                              static_cast<double>(fetches);
  }

  bool operator==(const RttCounters&) const = default;
};

// One record as returned on a result page. The id stands in for the
// extracted record content (a real crawler deduplicates on content; the
// simulation deduplicates on id, which is equivalent because records are
// distinct).
struct ReturnedRecord {
  RecordId id = kInvalidRecordId;
  std::span<const ValueId> values;
};

struct ResultPage {
  std::vector<ReturnedRecord> records;
  uint32_t page_number = 0;
  // Total matched records in the backend (possibly more than are
  // retrievable under the result limit); absent when the source does not
  // report counts.
  std::optional<uint32_t> total_matches;
  // True when a further page can be fetched for the same query.
  bool has_more = false;
};

class QueryInterface {
 public:
  virtual ~QueryInterface() = default;

  // Fetches result page `page_number` (0-based) for the equality query
  // on `value`. Costs one communication round, including when the page
  // turns out empty, out of range, or lost to a transient failure (the
  // HTTP round trip still happened). Fails with kOutOfRange when
  // page_number is past the last retrievable page; fault-injecting
  // implementations may also fail with kUnavailable, kDeadlineExceeded,
  // or kResourceExhausted (all retryable, see RetryPolicy).
  virtual StatusOr<ResultPage> FetchPage(ValueId value,
                                         uint32_t page_number) = 0;

  // Same, addressing the value as (attribute, text) the way a structured
  // query form would. Unknown values yield an empty OK page (the site
  // answers "0 results"), still costing one round.
  virtual StatusOr<ResultPage> FetchPageByText(AttributeId attr,
                                               std::string_view text,
                                               uint32_t page_number) = 0;

  // Keyword-style query (§2.2 "fading schema"): the text is matched
  // against every attribute and the union of matches is returned. Costs
  // one round per page like the other forms.
  virtual StatusOr<ResultPage> FetchPageByKeyword(std::string_view text,
                                                  uint32_t page_number) = 0;

  // Conjunctive multi-predicate query (the paper's §2.2 future work).
  // Returns records matching EVERY given value. Duplicate values are
  // allowed; an empty value list is rejected. Costs one round per page.
  virtual StatusOr<ResultPage> FetchPageConjunctive(
      std::span<const ValueId> values, uint32_t page_number) = 0;

  // Keyword query addressed by an interned value: "throws" the value's
  // text into the site's single search box and lets the site decide
  // which column it matches (§2.2's "fading schema" crawling mode).
  virtual StatusOr<ResultPage> FetchPageKeywordOf(ValueId value,
                                                  uint32_t page_number) = 0;

  // --- cost accounting -------------------------------------------------

  // Total communication rounds since construction or the last reset.
  // Failed fetch attempts count: the round trip happened.
  virtual uint64_t communication_rounds() const = 0;
  // Number of distinct query submissions (page 0 fetches, including
  // submissions rejected by a fault).
  virtual uint64_t queries_issued() const = 0;
  virtual void ResetMeters() = 0;

  // Round-trip-time tallies for the fetches this interface served.
  // Zero-valued by default: the in-memory simulator answers instantly;
  // latency-modeling and network implementations override this (see
  // RttCounters above).
  virtual RttCounters rtt_counters() const { return RttCounters{}; }

  // --- interface schema ------------------------------------------------

  virtual const ServerOptions& options() const = 0;

  // Whether the interface schema accepts queries on this value's
  // attribute (Definition 2.2's Aq). Crawlers use this to keep
  // unqueriable values out of Lto-query. Unknown ids are unqueriable.
  virtual bool IsQueriableValue(ValueId value) const = 0;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_SERVER_QUERY_INTERFACE_H_
