// ROADMAP item 3 — textual sources: term-weighted query selection.
//
// On a free-text source the crawler types one term into the keyword box
// per query. The related-work crawlers (Gupta & Bhatia; Ntoulas et al.)
// rank candidate terms by a TF-IDF-style weight instead of raw local
// degree, because under Zipf term popularity the most popular terms are
// exactly the ones the source truncates at its result limit — a greedy
// link crawler keeps buying truncated pages of duplicates. This harness
// measures queries-to-90%-coverage on a generated textual database for
// random / greedy-link / term-weight / adaptive, all through the keyword
// interface with a realistic result limit.
//
// The committed BENCH_textual.json gates two things in check.sh's perf
// pass: the absolute query budgets, and the gap ratios proving the
// term-weight and adaptive selectors stay measurably ahead of the
// degree-driven and blind baselines.

#include <algorithm>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/crawler/adaptive_selector.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/mmmi_selector.h"
#include "src/crawler/naive_selectors.h"
#include "src/crawler/term_weight_selector.h"
#include "src/datagen/textual_workload.h"

namespace {

using namespace deepcrawl;

constexpr uint64_t kSelectorSeed = 17;

std::unique_ptr<QuerySelector> MakeSelector(const std::string& policy,
                                            const LocalStore& store) {
  if (policy == "random") return std::make_unique<RandomSelector>(kSelectorSeed);
  if (policy == "greedy") return std::make_unique<GreedyLinkSelector>(store);
  if (policy == "term-weight") {
    return std::make_unique<TermWeightSelector>(store);
  }
  if (policy == "adaptive") {
    std::vector<std::unique_ptr<QuerySelector>> children;
    children.push_back(std::make_unique<GreedyLinkSelector>(store));
    children.push_back(std::make_unique<MmmiSelector>(store));
    children.push_back(std::make_unique<TermWeightSelector>(store));
    return std::make_unique<AdaptiveSelector>(std::move(children));
  }
  DEEPCRAWL_CHECK(false) << "unknown policy " << policy;
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace deepcrawl;
  bench::PrintBanner(
      "ROADMAP item 3: term-weighted selection on a textual source",
      "related work crawls free-text sources by feeding ranked terms to "
      "the keyword box; TF-IDF-style weights beat raw degree under Zipf "
      "popularity + result limits",
      "generated textual database, keyword interface, queries to 90% "
      "coverage per policy");

  // A dense vocabulary (terms recur across many documents) under a
  // heavy-tailed Zipf: the head terms' postings blow past the result
  // limit while the tail terms' postings return whole — the regime
  // where weight ordering and degree ordering genuinely diverge.
  TextualDbConfig config;
  config.num_documents = 3000;
  config.vocabulary = 500;
  config.term_exponent = 1.2;
  config.num_topics = 10;
  config.seed = 13;
  StatusOr<Table> generated = GenerateTextualTable(config);
  DEEPCRAWL_CHECK(generated.ok()) << generated.status().ToString();
  const Table& target = *generated;

  ServerOptions server_options;
  server_options.page_size = 10;
  // A result limit well under the top terms' document frequency: the
  // truncation that separates weight-driven from degree-driven policies.
  server_options.result_limit = 110;

  const uint64_t goal = static_cast<uint64_t>(
      0.9 * static_cast<double>(target.num_records()));
  std::cout << "target records: "
            << TablePrinter::FormatCount(target.num_records())
            << "  90% goal: " << TablePrinter::FormatCount(goal) << "\n\n";

  const std::vector<std::string> policies = {"random", "greedy",
                                             "term-weight", "adaptive"};
  std::map<std::string, double> queries_to_goal;

  TablePrinter table({"policy", "queries", "rounds", "coverage"});
  for (const std::string& policy : policies) {
    WebDbServer server(target, server_options);
    LocalStore store;
    std::unique_ptr<QuerySelector> selector = MakeSelector(policy, store);
    CrawlOptions options;
    options.use_keyword_interface = true;
    options.target_records = goal;
    // Saturation flips an MMMI child into marginal mode mid-chain.
    options.saturation_records = goal / 2;
    CrawlResult result = bench::RunCrawl(server, *selector, store, options,
                                         bench::SeedValue(target, 2));
    DEEPCRAWL_CHECK(result.stop_reason == StopReason::kTargetReached)
        << policy << " stalled at " << result.records << "/" << goal
        << " records";
    queries_to_goal[policy] = static_cast<double>(result.queries);
    table.AddRow({policy, TablePrinter::FormatCount(result.queries),
                  TablePrinter::FormatCount(result.rounds),
                  TablePrinter::FormatPercent(
                      static_cast<double>(result.records) /
                          static_cast<double>(target.num_records()),
                      1)});
  }
  table.Print(std::cout);

  const double random_gap =
      queries_to_goal["random"] / queries_to_goal["term-weight"];
  const double greedy_gap =
      queries_to_goal["greedy"] / queries_to_goal["term-weight"];
  const double adaptive_gap =
      queries_to_goal["random"] / queries_to_goal["adaptive"];
  const double adaptive_greedy_gap =
      queries_to_goal["greedy"] / queries_to_goal["adaptive"];
  std::cout << "\nterm-weight vs random: " << random_gap
            << "x fewer queries\nterm-weight vs greedy: " << greedy_gap
            << "x fewer queries\nadaptive vs random:    " << adaptive_gap
            << "x fewer queries\n";
  std::cout << "\nreading: the degree-driven greedy crawler keeps "
               "re-buying the truncated heads of popular terms; the "
               "df*ln((N+1)/df) weight tops out at mid-frequency terms "
               "whose postings the result limit returns whole. The "
               "adaptive chain rides greedy while its harvest rate "
               "holds, then hands over.\n";

  std::string json_path = bench::JsonPathFromArgs(argc, argv);
  if (!json_path.empty()) {
    bench::BenchJson json("textual");
    for (const std::string& policy : policies) {
      json.Add("queries_to_90_" + policy, queries_to_goal[policy], "queries",
               /*higher_is_better=*/false);
    }
    json.Add("gap_random_over_term_weight", random_gap, "ratio",
             /*higher_is_better=*/true);
    json.Add("gap_greedy_over_term_weight", greedy_gap, "ratio",
             /*higher_is_better=*/true);
    json.Add("gap_random_over_adaptive", adaptive_gap, "ratio",
             /*higher_is_better=*/true);
    json.Add("gap_greedy_over_adaptive", adaptive_greedy_gap, "ratio",
             /*higher_is_better=*/true);
    json.WriteFile(json_path);
  }
  return 0;
}
