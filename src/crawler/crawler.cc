#include "src/crawler/crawler.h"

#include <algorithm>

#include "src/util/logging.h"

namespace deepcrawl {

const char* StopReasonToString(StopReason reason) {
  switch (reason) {
    case StopReason::kFrontierExhausted:
      return "frontier-exhausted";
    case StopReason::kRoundBudget:
      return "round-budget";
    case StopReason::kTargetReached:
      return "target-reached";
  }
  return "unknown";
}

Crawler::Crawler(WebDbServer& server, QuerySelector& selector,
                 LocalStore& store, CrawlOptions options,
                 AbortPolicy* abort_policy)
    : server_(server),
      selector_(selector),
      store_(store),
      options_(options),
      abort_policy_(abort_policy) {}

void Crawler::DiscoverValue(ValueId v) {
  if (v >= seen_.size()) seen_.resize(static_cast<size_t>(v) + 1, 0);
  if (seen_[v]) return;
  seen_[v] = 1;
  // Values of attributes outside the interface schema Aq (Definition
  // 2.2) appear on result pages but cannot be queried; they never enter
  // Lto-query.
  if (!server_.IsQueriableValue(v)) return;
  selector_.OnValueDiscovered(v);
}

void Crawler::AddSeed(ValueId v) { DiscoverValue(v); }

StatusOr<CrawlResult> Crawler::Run() {
  auto make_result = [&](StopReason reason) {
    CrawlResult result;
    result.stop_reason = reason;
    result.rounds = rounds_used_;
    result.queries = queries_issued_;
    result.records = store_.num_records();
    result.trace = trace_;
    return result;
  };

  for (;;) {
    if (options_.target_records > 0 &&
        store_.num_records() >= options_.target_records) {
      return make_result(StopReason::kTargetReached);
    }
    if (options_.max_rounds > 0 && rounds_used_ >= options_.max_rounds) {
      return make_result(StopReason::kRoundBudget);
    }

    ValueId value = selector_.SelectNext();
    if (value == kInvalidValueId) {
      return make_result(StopReason::kFrontierExhausted);
    }
    ++queries_issued_;

    // Drain the query page by page.
    QueryOutcome outcome;
    outcome.value = value;
    QueryProgress progress;
    progress.page_size = server_.options().page_size;
    bool budget_hit = false;
    bool target_hit = false;
    for (uint32_t page = 0;; ++page) {
      StatusOr<ResultPage> fetched =
          options_.use_keyword_interface
              ? server_.FetchPageKeywordOf(value, page)
              : server_.FetchPage(value, page);
      ++rounds_used_;
      if (!fetched.ok()) return fetched.status();
      const ResultPage& result_page = *fetched;

      for (const ReturnedRecord& record : result_page.records) {
        ++outcome.records_returned;
        if (store_.ContainsRecord(record.id)) {
          store_.ObserveDuplicate(record.id);
          continue;
        }
        // Decompose first so the selector hears about new values before
        // the record-harvest notification (see QuerySelector contract).
        for (ValueId v : record.values) DiscoverValue(v);
        uint32_t slot = static_cast<uint32_t>(store_.num_records());
        bool added = store_.AddRecord(record.id, record.values);
        DEEPCRAWL_DCHECK(added) << "record dedup raced";
        (void)added;
        ++outcome.new_records;
        selector_.OnRecordHarvested(slot);
      }
      ++outcome.pages_fetched;
      trace_.Add(rounds_used_, store_.num_records());

      if (result_page.total_matches.has_value() && page == 0) {
        outcome.total_matches = result_page.total_matches;
      }

      if (!result_page.has_more) break;
      if (options_.target_records > 0 &&
          store_.num_records() >= options_.target_records) {
        target_hit = true;
        break;
      }
      if (options_.max_rounds > 0 && rounds_used_ >= options_.max_rounds) {
        budget_hit = true;
        break;
      }
      if (abort_policy_ != nullptr) {
        progress.total_matches = outcome.total_matches;
        uint32_t total = result_page.total_matches.value_or(0);
        uint32_t limit = server_.options().result_limit;
        progress.retrievable =
            limit > 0 ? std::min(total, limit) : total;
        progress.pages_fetched = outcome.pages_fetched;
        progress.records_returned = outcome.records_returned;
        progress.new_records = outcome.new_records;
        progress.has_more = true;
        if (!abort_policy_->ShouldContinue(progress)) {
          outcome.aborted = true;
          break;
        }
      }
    }

    selector_.OnQueryCompleted(outcome);

    if (!saturation_notified_ && options_.saturation_records > 0 &&
        store_.num_records() >= options_.saturation_records) {
      saturation_notified_ = true;
      selector_.OnSaturation();
    }
    if (target_hit) return make_result(StopReason::kTargetReached);
    if (budget_hit) return make_result(StopReason::kRoundBudget);
  }
}

}  // namespace deepcrawl
