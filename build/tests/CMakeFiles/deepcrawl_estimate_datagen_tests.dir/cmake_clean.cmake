file(REMOVE_RECURSE
  "CMakeFiles/deepcrawl_estimate_datagen_tests.dir/datagen_calibration_test.cc.o"
  "CMakeFiles/deepcrawl_estimate_datagen_tests.dir/datagen_calibration_test.cc.o.d"
  "CMakeFiles/deepcrawl_estimate_datagen_tests.dir/datagen_movie_domain_test.cc.o"
  "CMakeFiles/deepcrawl_estimate_datagen_tests.dir/datagen_movie_domain_test.cc.o.d"
  "CMakeFiles/deepcrawl_estimate_datagen_tests.dir/datagen_publication_domain_test.cc.o"
  "CMakeFiles/deepcrawl_estimate_datagen_tests.dir/datagen_publication_domain_test.cc.o.d"
  "CMakeFiles/deepcrawl_estimate_datagen_tests.dir/datagen_workload_test.cc.o"
  "CMakeFiles/deepcrawl_estimate_datagen_tests.dir/datagen_workload_test.cc.o.d"
  "CMakeFiles/deepcrawl_estimate_datagen_tests.dir/estimate_chao_test.cc.o"
  "CMakeFiles/deepcrawl_estimate_datagen_tests.dir/estimate_chao_test.cc.o.d"
  "CMakeFiles/deepcrawl_estimate_datagen_tests.dir/estimate_size_estimator_test.cc.o"
  "CMakeFiles/deepcrawl_estimate_datagen_tests.dir/estimate_size_estimator_test.cc.o.d"
  "deepcrawl_estimate_datagen_tests"
  "deepcrawl_estimate_datagen_tests.pdb"
  "deepcrawl_estimate_datagen_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepcrawl_estimate_datagen_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
