// Quickstart: crawl a small hidden-Web database with deepcrawl.
//
// The example builds an in-process "Web database" (a used-car catalog),
// puts it behind the simulated query interface, and crawls it with the
// greedy link-based selector, printing the crawl trace. This is the
// whole public API surface in ~100 lines:
//
//   Table + Schema      — the backend data
//   WebDbServer         — the query interface (pages, counts, costs)
//   LocalStore          — the crawler's local database DBlocal
//   GreedyLinkSelector  — a query selection policy
//   Crawler             — the query-harvest-decompose loop

#include <iostream>
#include <vector>

#include "src/crawler/crawler.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/relation/table.h"
#include "src/server/web_db_server.h"
#include "src/util/table_printer.h"

using namespace deepcrawl;

int main() {
  // --- 1. a structured Web database: used cars -------------------------
  Schema schema;
  AttributeId brand = *schema.AddAttribute("Brand");
  AttributeId model = *schema.AddAttribute("Model");
  AttributeId city = *schema.AddAttribute("City");
  Table cars(std::move(schema));

  struct Car {
    const char* brand;
    const char* model;
    const char* city;
  };
  const Car inventory[] = {
      {"Toyota", "Corolla", "Seattle"}, {"Toyota", "Camry", "Seattle"},
      {"Toyota", "Corolla", "Portland"}, {"Honda", "Civic", "Seattle"},
      {"Honda", "Accord", "Boise"},      {"Ford", "Focus", "Portland"},
      {"Ford", "F150", "Boise"},         {"Toyota", "RAV4", "Boise"},
      {"Honda", "Civic", "Portland"},    {"Ford", "Focus", "Seattle"},
  };
  for (const Car& car : inventory) {
    StatusOr<RecordId> added = cars.AddRecord({
        Cell{brand, car.brand},
        Cell{model, car.model},
        Cell{city, car.city},
    });
    if (!added.ok()) {
      std::cerr << "failed to add record: " << added.status().ToString()
                << "\n";
      return 1;
    }
  }

  // --- 2. the query interface ------------------------------------------
  ServerOptions options;
  options.page_size = 3;           // three results per page
  options.reports_total_count = true;
  WebDbServer server(cars, options);

  // --- 3. crawl it -------------------------------------------------------
  LocalStore store;
  GreedyLinkSelector selector(store);
  Crawler crawler(server, selector, store, CrawlOptions{});
  // The crawler starts from one seed attribute value it happens to know.
  crawler.AddSeed(cars.catalog().Find(brand, "Toyota"));

  StatusOr<CrawlResult> result = crawler.Run();
  if (!result.ok()) {
    std::cerr << "crawl failed: " << result.status().ToString() << "\n";
    return 1;
  }

  // --- 4. report ---------------------------------------------------------
  std::cout << "crawled " << result->records << " of " << cars.num_records()
            << " records in " << result->rounds
            << " communication rounds (" << result->queries
            << " queries), policy: " << selector.name() << "\n\n";

  TablePrinter trace({"rounds", "records harvested"});
  for (const TracePoint& point : result->trace.points()) {
    trace.AddRow({std::to_string(point.rounds),
                  std::to_string(point.records)});
  }
  trace.Print(std::cout);

  std::cout << "\nlocal statistics the selector crawled by:\n";
  TablePrinter stats({"value", "local matches", "local degree"});
  for (ValueId v = 0; v < cars.num_distinct_values(); ++v) {
    if (store.LocalFrequency(v) == 0) continue;
    stats.AddRow({cars.catalog().text_of(v),
                  std::to_string(store.LocalFrequency(v)),
                  std::to_string(store.LocalDegree(v))});
  }
  stats.Print(std::cout);
  return 0;
}
