// Greedy relational-link query selection (§3.2).
//
// Motivated by the power-law degree distribution of real database graphs
// (Figure 2), the greedy link-based crawler estimates a candidate's
// harvest rate as proportional to its degree in the local graph G_local
// and always queries the frontier value with the greatest link number —
// hub values uncover large portions of the database quickly.
//
// Implementation: a lazy max-heap keyed by local degree, held in an
// explicit vector (std::push_heap/pop_heap) so the backing storage is
// reserved once and reused across the crawl. Degrees only grow, so
// entries are re-pushed when a harvested record grows a pending value's
// degree, and stale (smaller-degree) entries are skipped on pop. A
// per-value last-pushed-degree table suppresses the duplicate pushes
// the old implementation made for every record touching a pending value
// even when its degree did not change (records re-containing an
// existing neighbor pair): while v is pending the heap always holds an
// entry at v's current degree — degree growth implies v appeared in the
// record that grew it, which triggers a fresh push — and identical
// (degree, value) keys are interchangeable under the heap's total
// order, so dropping same-degree re-pushes cannot change pop order.
// This bounds lifetime heap pushes by
//   #discovered values + Σ_v LocalDegree(v) increments,
// instead of #discovered + Σ records × record width.
//
// The frontier (Lto-query) lives in the shared FrontierSelector base
// (query_selector.h); this class adds the degree-keyed heap on top.

#ifndef DEEPCRAWL_CRAWLER_GREEDY_LINK_SELECTOR_H_
#define DEEPCRAWL_CRAWLER_GREEDY_LINK_SELECTOR_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "src/crawler/local_store.h"
#include "src/crawler/query_selector.h"

namespace deepcrawl {

class GreedyLinkSelector : public FrontierSelector {
 public:
  // `store` must outlive the selector and be the store the crawler
  // feeds; degrees are read from it.
  explicit GreedyLinkSelector(const LocalStore& store);

  void OnRecordHarvested(uint32_t slot) override;
  ValueId SelectNext() override;
  std::string_view name() const override { return "greedy-link"; }

  // Checkpointing: the heap vector is serialized verbatim (it is already
  // heap-ordered, so restoring it preserves pop order exactly), the
  // frontier in its current swap-erase permutation, and the
  // last-pushed-degree table sparsely.
  Status SaveState(CheckpointWriter& writer) const override;
  Status LoadState(CheckpointReader& reader, ValueId value_bound) override;

  // Diagnostics for the stress test's heap-growth assertion.
  size_t heap_size() const { return heap_.size(); }
  uint64_t heap_pushes() const { return heap_pushes_; }

 protected:
  static constexpr uint64_t kNeverPushed = UINT64_MAX;

  // Re-inserts `v` with its current degree (no-op unless pending or the
  // degree matches the entry already in the heap).
  void Push(ValueId v);

  void OnFrontierInsert(ValueId v) override;

 private:
  struct HeapEntry {
    uint64_t degree;
    ValueId value;
    bool operator<(const HeapEntry& other) const {
      if (degree != other.degree) return degree < other.degree;
      // Deterministic tie-break: prefer smaller id (max-heap pops it last
      // among equals reversed, so compare greater-id as "less").
      return value > other.value;
    }
  };

  void EnsureCapacity(ValueId v);
  void PushEntry(ValueId v, uint64_t degree);

  std::vector<HeapEntry> heap_;
  std::vector<uint64_t> last_pushed_degree_;  // by value; kNeverPushed
  uint64_t heap_pushes_ = 0;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_CRAWLER_GREEDY_LINK_SELECTOR_H_
