file(REMOVE_RECURSE
  "CMakeFiles/movie_domain_crawl.dir/movie_domain_crawl.cpp.o"
  "CMakeFiles/movie_domain_crawl.dir/movie_domain_crawl.cpp.o.d"
  "movie_domain_crawl"
  "movie_domain_crawl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_domain_crawl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
