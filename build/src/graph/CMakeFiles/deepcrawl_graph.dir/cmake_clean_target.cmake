file(REMOVE_RECURSE
  "libdeepcrawl_graph.a"
)
