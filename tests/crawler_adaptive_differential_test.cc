// Differential sweep for the adaptive meta-selector on a textual
// workload crawled through the keyword box: the bit-identity contracts
// that hold for every fixed policy (DESIGN.md §8/§10) must also hold
// across the adaptive selector's PHASE SWITCH — serial vs parallel,
// thread-count invariance, and checkpoint/resume from every wave
// boundary including the wave the switch happens in.
//
// The switch rule runs inside OnQueryCompleted, which the wave
// committer replays deterministically, so a checkpoint taken the wave
// before, of, or after a switch must restore the estimator and phase
// counters exactly and continue byte-identically.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/crawler/adaptive_selector.h"
#include "src/crawler/checkpoint.h"
#include "src/crawler/crawl_engine.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/local_store.h"
#include "src/crawler/mmmi_selector.h"
#include "src/crawler/term_weight_selector.h"
#include "src/crawler/retry_policy.h"
#include "src/crawler/trace_io.h"
#include "src/datagen/textual_workload.h"
#include "src/server/faulty_server.h"
#include "src/server/locked_interface.h"
#include "src/server/web_db_server.h"
#include "src/util/logging.h"

namespace deepcrawl {
namespace {

constexpr uint64_t kFaultSeed = 29;

const char* const kProfiles[] = {"none", "flaky", "lossy", "hostile"};

FaultProfile ProfileByName(const std::string& name) {
  FaultProfile profile;
  if (name == "flaky") {
    profile.unavailable_rate = 0.05;
    profile.timeout_rate = 0.03;
    profile.rate_limit_rate = 0.02;
  } else if (name == "lossy") {
    profile.truncate_rate = 0.05;
    profile.duplicate_rate = 0.05;
  } else if (name == "hostile") {
    profile.unavailable_rate = 0.10;
    profile.timeout_rate = 0.05;
    profile.rate_limit_rate = 0.05;
    profile.truncate_rate = 0.05;
    profile.duplicate_rate = 0.02;
  }
  return profile;
}

const Table& TextualTarget() {
  static const Table* table = [] {
    TextualDbConfig config;
    config.num_documents = 260;
    config.vocabulary = 180;
    config.num_topics = 6;
    config.seed = 11;
    StatusOr<Table> generated = GenerateTextualTable(config);
    DEEPCRAWL_CHECK(generated.ok()) << generated.status().ToString();
    return new Table(std::move(generated).value());
  }();
  return *table;
}

ValueId TextualSeed() {
  const Table& table = TextualTarget();
  for (ValueId v = 0; v < table.num_distinct_values(); ++v) {
    if (table.value_frequency(v) > 0) return v;
  }
  return kInvalidValueId;
}

ServerOptions TextualServerOptions() {
  ServerOptions options;
  options.page_size = 5;
  // A result limit caps what popular terms yield (§5.4), which is what
  // drags the greedy phase's harvest rate down and triggers the switch.
  options.result_limit = 15;
  return options;
}

// Eager switch thresholds so a ~260-document crawl crosses at least one
// phase boundary mid-run.
AdaptiveOptions EagerSwitch() {
  AdaptiveOptions options;
  options.ewma_alpha = 0.4;
  options.switch_decay = 0.6;
  options.hr_floor = 0.4;
  options.min_phase_queries = 8;
  return options;
}

// The canonical chain under test. The raw pointer is for post-run
// introspection (phase switches); ownership moves to the caller.
std::unique_ptr<QuerySelector> MakeChain(const LocalStore& store,
                                         AdaptiveSelector** handle) {
  std::vector<std::unique_ptr<QuerySelector>> children;
  children.push_back(std::make_unique<GreedyLinkSelector>(store));
  children.push_back(std::make_unique<MmmiSelector>(store));
  children.push_back(std::make_unique<TermWeightSelector>(store));
  auto selector =
      std::make_unique<AdaptiveSelector>(std::move(children), EagerSwitch());
  if (handle != nullptr) *handle = selector.get();
  return selector;
}

CrawlOptions BaseOptions() {
  CrawlOptions options;
  options.use_keyword_interface = true;
  options.saturation_records = static_cast<uint64_t>(
      0.6 * static_cast<double>(TextualTarget().num_records()));
  return options;
}

struct RunOutput {
  CrawlResult result;
  std::vector<RecordId> harvest_order;
  uint64_t clock_ticks = 0;
  uint64_t phase_switches = 0;
  size_t final_phase = 0;
};

std::string TraceCsvBytes(const CrawlTrace& trace) {
  std::ostringstream out;
  Status status = WriteTraceCsv(trace, out);
  DEEPCRAWL_CHECK(status.ok()) << status.ToString();
  return out.str();
}

struct InstrumentedRun {
  RunOutput output;
  std::vector<std::string> images;
};

// One engine run: threads/batch select serial vs parallel execution,
// `every` > 0 additionally encodes a checkpoint image at each wave
// boundary (0 = no instrumentation).
InstrumentedRun RunEngine(const std::string& profile_name,
                          CrawlOptions options, uint32_t threads,
                          uint32_t batch, uint64_t every) {
  WebDbServer backend(TextualTarget(), TextualServerOptions());
  FaultProfile profile = ProfileByName(profile_name);
  std::optional<FaultyServer> faulty;
  QueryInterface* direct = &backend;
  if (!profile.IsAllZero()) {
    faulty.emplace(backend, profile, kFaultSeed);
    faulty->set_keyed_faults(true);
    direct = &*faulty;
  }
  std::optional<LockedQueryInterface> locked;
  QueryInterface* server = direct;
  if (threads > 1) {
    locked.emplace(*direct);
    server = &*locked;
  }
  LocalStore store;
  AdaptiveSelector* adaptive = nullptr;
  std::unique_ptr<QuerySelector> selector = MakeChain(store, &adaptive);
  RetryPolicy retry((RetryPolicyConfig()));
  InstrumentedRun run;
  const FaultyServer* faulty_ptr = faulty ? &*faulty : nullptr;
  EngineOptions engine_options;
  engine_options.threads = threads;
  engine_options.batch = batch;
  engine_options.checkpoint_every_waves = every;
  if (every > 0) {
    engine_options.checkpoint_sink = [&run, faulty_ptr](
                                         const CrawlEngine& engine) {
      StatusOr<std::string> image = EncodeCrawlCheckpoint(engine, faulty_ptr);
      if (!image.ok()) return image.status();
      run.images.push_back(std::move(*image));
      return Status::OK();
    };
  }
  CrawlEngine engine(*server, *selector, store, options, engine_options,
                     /*abort_policy=*/nullptr, &retry);
  engine.AddSeed(TextualSeed());
  StatusOr<CrawlResult> result = engine.Run();
  DEEPCRAWL_CHECK(result.ok()) << result.status().ToString();
  run.output.result = *result;
  run.output.harvest_order.reserve(store.num_records());
  for (uint32_t slot = 0; slot < store.num_records(); ++slot) {
    run.output.harvest_order.push_back(store.OriginalRecordId(slot));
  }
  run.output.clock_ticks = engine.clock().now();
  run.output.phase_switches = adaptive->phase_switches();
  run.output.final_phase = adaptive->active_phase();
  return run;
}

RunOutput ResumeFromImage(const std::string& image,
                          const std::string& profile_name,
                          CrawlOptions options, uint32_t threads,
                          uint32_t batch) {
  WebDbServer backend(TextualTarget(), TextualServerOptions());
  FaultProfile profile = ProfileByName(profile_name);
  std::optional<FaultyServer> faulty;
  QueryInterface* direct = &backend;
  if (!profile.IsAllZero()) {
    faulty.emplace(backend, profile, kFaultSeed);
    faulty->set_keyed_faults(true);
    direct = &*faulty;
  }
  std::optional<LockedQueryInterface> locked;
  QueryInterface* server = direct;
  if (threads > 1) {
    locked.emplace(*direct);
    server = &*locked;
  }
  LocalStore store;
  AdaptiveSelector* adaptive = nullptr;
  std::unique_ptr<QuerySelector> selector = MakeChain(store, &adaptive);
  RetryPolicy retry((RetryPolicyConfig()));
  EngineOptions engine_options;
  engine_options.threads = threads;
  engine_options.batch = batch;
  CrawlEngine engine(*server, *selector, store, options, engine_options,
                     /*abort_policy=*/nullptr, &retry);
  Status loaded =
      DecodeCrawlCheckpoint(image, engine, faulty ? &*faulty : nullptr);
  DEEPCRAWL_CHECK(loaded.ok()) << loaded.ToString();
  StatusOr<CrawlResult> result = engine.Run();
  DEEPCRAWL_CHECK(result.ok()) << result.status().ToString();
  RunOutput out;
  out.result = *result;
  out.harvest_order.reserve(store.num_records());
  for (uint32_t slot = 0; slot < store.num_records(); ++slot) {
    out.harvest_order.push_back(store.OriginalRecordId(slot));
  }
  out.clock_ticks = engine.clock().now();
  out.phase_switches = adaptive->phase_switches();
  out.final_phase = adaptive->active_phase();
  return out;
}

void ExpectIdentical(const RunOutput& a, const RunOutput& b,
                     const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.result.stop_reason, b.result.stop_reason);
  EXPECT_EQ(a.result.rounds, b.result.rounds);
  EXPECT_EQ(a.result.queries, b.result.queries);
  EXPECT_EQ(a.result.records, b.result.records);
  EXPECT_EQ(a.result.trace.points(), b.result.trace.points());
  EXPECT_EQ(a.result.resilience, b.result.resilience);
  EXPECT_EQ(a.harvest_order, b.harvest_order);
  EXPECT_EQ(a.clock_ticks, b.clock_ticks);
  EXPECT_EQ(a.final_phase, b.final_phase);
  EXPECT_EQ(TraceCsvBytes(a.result.trace), TraceCsvBytes(b.result.trace));
}

// The fixture workload must actually exercise a switch, or this file
// proves nothing about the switch boundary.
TEST(AdaptiveDifferentialTest, FixtureCrossesAPhaseBoundary) {
  InstrumentedRun run = RunEngine("none", BaseOptions(), 1, 1, /*every=*/0);
  EXPECT_GE(run.output.phase_switches, 1u)
      << "tune EagerSwitch()/TextualServerOptions(): the adaptive chain "
         "never left phase 0";
  EXPECT_GT(run.output.result.records, 0u);
}

// batch == 1 parallel must be bit-identical to serial under every fault
// profile, at any thread count, across the switch.
TEST(AdaptiveDifferentialTest, SerialEquivalenceAllProfiles) {
  for (const char* profile : kProfiles) {
    CrawlOptions options = BaseOptions();
    RunOutput serial =
        RunEngine(profile, options, /*threads=*/1, /*batch=*/1, 0).output;
    for (uint32_t threads : {4u, 8u}) {
      RunOutput parallel =
          RunEngine(profile, options, threads, /*batch=*/1, 0).output;
      ExpectIdentical(serial, parallel,
                      std::string(profile) + "/threads=" +
                          std::to_string(threads));
    }
  }
}

// At batch 4, thread count is an execution detail only.
TEST(AdaptiveDifferentialTest, ThreadCountInvarianceBatch4) {
  for (const char* profile : kProfiles) {
    CrawlOptions options = BaseOptions();
    RunOutput reference =
        RunEngine(profile, options, /*threads=*/1, /*batch=*/4, 0).output;
    for (uint32_t threads : {4u, 8u}) {
      RunOutput other =
          RunEngine(profile, options, threads, /*batch=*/4, 0).output;
      ExpectIdentical(reference, other,
                      std::string(profile) + "/threads=" +
                          std::to_string(threads));
    }
  }
}

// Checkpoint at EVERY wave — necessarily including the wave containing
// the phase switch — and resume each image into the exact one-shot
// output, serial and batched, with and without faults.
TEST(AdaptiveDifferentialTest, CheckpointEveryWaveResumesIdentically) {
  struct Config {
    uint32_t threads;
    uint32_t batch;
  };
  for (const char* profile : {"none", "flaky"}) {
    for (const Config& config : {Config{1, 1}, Config{8, 8}}) {
      CrawlOptions options = BaseOptions();
      SCOPED_TRACE(std::string(profile) + "/threads=" +
                   std::to_string(config.threads) + "/batch=" +
                   std::to_string(config.batch));
      InstrumentedRun reference = RunEngine(profile, options, config.threads,
                                            config.batch, /*every=*/1);
      ASSERT_FALSE(reference.images.empty());
      ASSERT_GE(reference.output.phase_switches, 1u);
      for (size_t i = 0; i < reference.images.size(); ++i) {
        RunOutput resumed = ResumeFromImage(reference.images[i], profile,
                                            options, config.threads,
                                            config.batch);
        ExpectIdentical(reference.output, resumed,
                        "wave=" + std::to_string(i));
      }
    }
  }
}

// A mid-crawl checkpoint resumes identically under a different thread
// count (threads are wall-clock only, not part of the fingerprint).
TEST(AdaptiveDifferentialTest, CheckpointResumesAcrossThreadCounts) {
  CrawlOptions options = BaseOptions();
  InstrumentedRun reference = RunEngine("hostile", options, /*threads=*/8,
                                        /*batch=*/4, /*every=*/2);
  ASSERT_FALSE(reference.images.empty());
  const std::string& image = reference.images[reference.images.size() / 2];
  for (uint32_t threads : {1u, 2u, 8u}) {
    RunOutput resumed =
        ResumeFromImage(image, "hostile", options, threads, /*batch=*/4);
    ExpectIdentical(reference.output, resumed,
                    "resume-threads=" + std::to_string(threads));
  }
}

}  // namespace
}  // namespace deepcrawl
