// Offline query planning (Definition 2.4): if the crawler DID know the
// whole attribute-value graph, the optimal plan would be a Weighted
// Minimum Dominating Set. This example computes the greedy WMDS of a
// generated database, executes it as a scripted crawl, and compares its
// cost with the online greedy-link crawler that must discover the graph
// as it goes — measuring what the paper calls the crawler's "more
// challenging problem" of lacking the big picture.

#include <iostream>

#include "src/crawler/crawler.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/scripted_selector.h"
#include "src/datagen/canned_workloads.h"
#include "src/datagen/workload_config.h"
#include "src/graph/attribute_value_graph.h"
#include "src/graph/dominating_set.h"
#include "src/graph/set_cover.h"
#include "src/server/web_db_server.h"
#include "src/util/table_printer.h"

using namespace deepcrawl;

int main() {
  StatusOr<Table> generated =
      GenerateTable(EbayConfig(/*scale=*/0.05, /*seed=*/6));
  if (!generated.ok()) {
    std::cerr << generated.status().ToString() << "\n";
    return 1;
  }
  const Table& db = *generated;
  WebDbServer server(db, ServerOptions{});
  std::cout << "database: " << db.num_records() << " records, "
            << db.num_distinct_values() << " distinct values\n\n";

  // --- offline: plan with full knowledge --------------------------------
  auto cost = [&](ValueId v) {
    return static_cast<double>(server.FullRetrievalCost(v));
  };
  AttributeValueGraph graph = AttributeValueGraph::Build(db);
  DominatingSetResult wmds = GreedyWeightedDominatingSet(graph, cost);
  InvertedIndex index(db);
  SetCoverResult cover = GreedyWeightedSetCover(db, index, cost);
  std::cout << "offline WMDS plan (Def. 2.4): " << wmds.vertices.size()
            << " queries, predicted cost "
            << TablePrinter::FormatDouble(wmds.total_weight, 0)
            << " rounds\n"
            << "offline set-cover plan:       " << cover.values.size()
            << " queries, predicted cost "
            << TablePrinter::FormatDouble(cover.total_weight, 0)
            << " rounds\n";

  TablePrinter table({"crawler", "records", "coverage", "rounds",
                      "queries"});
  auto add_row = [&](const char* name, const CrawlResult& result) {
    table.AddRow({name, std::to_string(result.records),
                  TablePrinter::FormatPercent(
                      static_cast<double>(result.records) /
                          static_cast<double>(db.num_records()), 1),
                  std::to_string(result.rounds),
                  std::to_string(result.queries)});
  };

  // Execute both plans as scripted crawls. The set-cover plan retrieves
  // every record by construction; the WMDS plan discovers every VALUE
  // but can miss records whose own values were only dominated — the
  // subtlety Definition 2.4 glosses over (see src/graph/set_cover.h).
  for (bool use_cover : {true, false}) {
    LocalStore store;
    ScriptedSelector selector(use_cover ? cover.values : wmds.vertices);
    server.ResetMeters();
    Crawler crawler(server, selector, store, CrawlOptions{});
    StatusOr<CrawlResult> result = crawler.Run();
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    add_row(use_cover ? "offline set-cover plan" : "offline WMDS plan",
            *result);
  }

  // The online crawler discovers the graph while paying for it.
  {
    LocalStore store;
    GreedyLinkSelector selector(store);
    server.ResetMeters();
    CrawlOptions options;
    Crawler crawler(server, selector, store, options);
    ValueId seed = 0;
    while (db.value_frequency(seed) == 0) ++seed;
    crawler.AddSeed(seed);
    StatusOr<CrawlResult> result = crawler.Run();
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    add_row("online greedy-link", *result);
  }
  table.Print(std::cout);

  std::cout << "\nthe gap between the rows is the price of crawling with "
               "\"partial knowledge about the target database\" (§2.5) — "
               "the online crawler re-retrieves duplicated pages the "
               "planner avoids.\n";
  return 0;
}
