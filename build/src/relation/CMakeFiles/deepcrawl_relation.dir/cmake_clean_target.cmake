file(REMOVE_RECURSE
  "libdeepcrawl_relation.a"
)
