file(REMOVE_RECURSE
  "CMakeFiles/deepcrawl_datagen.dir/canned_workloads.cc.o"
  "CMakeFiles/deepcrawl_datagen.dir/canned_workloads.cc.o.d"
  "CMakeFiles/deepcrawl_datagen.dir/movie_domain.cc.o"
  "CMakeFiles/deepcrawl_datagen.dir/movie_domain.cc.o.d"
  "CMakeFiles/deepcrawl_datagen.dir/publication_domain.cc.o"
  "CMakeFiles/deepcrawl_datagen.dir/publication_domain.cc.o.d"
  "CMakeFiles/deepcrawl_datagen.dir/workload_config.cc.o"
  "CMakeFiles/deepcrawl_datagen.dir/workload_config.cc.o.d"
  "libdeepcrawl_datagen.a"
  "libdeepcrawl_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepcrawl_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
