// CrawlFleet: N independent target databases crawled under one global
// budget, with per-source fault isolation (DESIGN.md §11).
//
// The paper ranks queries within one database; the ROADMAP north-star is
// a production crawler running hundreds of heterogeneous sources
// concurrently, where the portfolio analogue of per-query HR(q) is
// allocating the next wave of rounds to the SOURCE with the best
// health-discounted marginal harvest rate. The fleet owns one full
// crawl stack per source —
//
//   Table → WebDbServer → FaultyServer (keyed, per-source derived seed)
//         [→ LockedQueryInterface] → CrawlEngine
//
// — all engines fetching through ONE shared executor (thread pool or
// inline), and schedules them in turns: each turn grants a bounded slice
// of communication rounds to one source via the engine's budget-sliced
// Run() (bit-identical to an uninterrupted run, proven by the engine's
// own tests). Around every source sits the isolation machinery:
//
//   * a three-state CircuitBreaker tripping on consecutive fully-failed
//     turns or a failure-rate EWMA, with half-open probe re-admission,
//     quarantine, and capped re-probe backoff for flappers;
//   * a TokenBucket politeness limiter, plus a hard not-before floor
//     from the server's own retry-after hints;
//   * a per-source round deadline so one stalled source cannot eat the
//     pool;
//   * a fleet-level ChaosSchedule forcing scripted fault windows.
//
// Determinism contract: fleet output is a pure function of (specs,
// options) — in particular of (seed, batch, chaos schedule); the thread
// count is wall-clock only, exactly as for the single engine. Turn
// boundaries are the fleet's durable points: the whole fleet (scheduler
// state, breakers, buckets, every engine and fault proxy) checkpoints
// and resumes as one unit under the bit-identity contract.
//
// Graceful degradation is explicit, never silent: the result carries a
// SourceDegradation report per source (records missing, ticks
// quarantined, every breaker transition), and a source that fails hard
// is abandoned with its Status — the fleet keeps crawling the rest.

#ifndef DEEPCRAWL_FLEET_CRAWL_FLEET_H_
#define DEEPCRAWL_FLEET_CRAWL_FLEET_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/crawler/crawl_engine.h"
#include "src/crawler/local_store.h"
#include "src/crawler/metrics.h"
#include "src/crawler/query_selector.h"
#include "src/crawler/retry_policy.h"
#include "src/fleet/chaos.h"
#include "src/fleet/circuit_breaker.h"
#include "src/fleet/token_bucket.h"
#include "src/relation/table.h"
#include "src/server/faulty_server.h"
#include "src/server/locked_interface.h"
#include "src/server/web_db_server.h"
#include "src/util/status.h"

namespace deepcrawl {

// How the scheduler picks the next turn's source among the eligible:
//   * kMarginalHarvest — sources due a breaker probe first, then the
//     best health-discounted marginal harvest rate,
//       score = max(HR-EWMA, hr_floor) · max(0, 1 − failure-EWMA),
//     ties to the lowest id (the paper's HR(q) ranking, lifted from
//     queries to sources);
//   * kRoundRobin — cycle through eligible sources;
//   * kSequential — drain the lowest-id eligible source to completion
//     first (the naive baseline the bench compares against).
enum class SchedulerPolicy : uint8_t {
  kMarginalHarvest = 0,
  kRoundRobin = 1,
  kSequential = 2,
};

const char* SchedulerPolicyToString(SchedulerPolicy policy);
StatusOr<SchedulerPolicy> ParseSchedulerPolicy(std::string_view name);

// One target database plus everything source-specific about crawling it.
struct FleetSourceSpec {
  FleetSourceSpec(std::string name, Table table)
      : name(std::move(name)), table(std::move(table)) {}

  std::string name;
  Table table;
  // Query-selection policy for this source: greedy|mmmi|bfs|dfs.
  std::string policy = "greedy";
  ServerOptions server;
  FaultProfile faults;
  // Per-source stop target, as a fraction of the table's records
  // (0 = crawl to frontier exhaustion), and the GL→MMMI saturation
  // switch-over point.
  double target_coverage = 0.0;
  double saturation = 0.85;
  uint32_t num_seeds = 1;
};

struct FleetOptions {
  // Fleet seed: per-source fault/retry/seed-value streams are derived
  // via FaultyServer::DeriveSourceSeed(seed, source_id), so no source's
  // stream depends on any other source existing.
  uint64_t seed = 1;
  SchedulerPolicy scheduler = SchedulerPolicy::kMarginalHarvest;
  // Shared fetch executor: 1 = inline (fully serial), > 1 = one thread
  // pool shared by every source's engine. Wall-clock only.
  uint32_t threads = 1;
  // Per-source engine wave width (semantic, like the engine's batch).
  uint32_t batch = 1;
  // Communication rounds granted per scheduler turn (the time slice).
  uint64_t turn_rounds = 16;
  // Global round budget across all sources (0 = unbounded).
  uint64_t max_total_rounds = 0;
  // Per-source deadline: total rounds a single source may consume before
  // it is retired (0 = unbounded). Isolation against stalled sources.
  uint64_t source_deadline_rounds = 0;
  // Simulated per-fetch latency, applied via LockedQueryInterface when
  // threads > 1 or latency_us > 0 (used to stretch wall-clock for the
  // kill/resume check).
  uint64_t latency_us = 0;
  CircuitBreakerConfig breaker;
  PolitenessConfig politeness;
  // Per-source retry policies copy this config with seed rewritten to
  // the source's derived seed.
  RetryPolicyConfig retry;
  ChaosSchedule chaos;
  // Health EWMA for the marginal-harvest score, and the optimistic floor
  // that keeps a not-yet-sampled or temporarily-dry source schedulable.
  double hr_ewma_alpha = 0.4;
  double hr_floor = 0.05;
  // Invoke `checkpoint_sink` after every N completed turns (0 = never);
  // turn boundaries are the fleet's durable points.
  uint64_t checkpoint_every_turns = 0;
  std::function<Status(const class CrawlFleet&)> checkpoint_sink;
};

struct FleetSourceOutcome {
  // The source's own crawl result (per-source trace included); its stop
  // reason is kRoundBudget when the fleet stopped before the source
  // finished.
  CrawlResult result;
  SourceDegradation degradation;
  // Non-OK when the source failed hard and was abandoned (the fleet
  // continued without it).
  Status error;
};

struct FleetResult {
  // One outcome per source, in source-id order.
  std::vector<FleetSourceOutcome> sources;
  // Fleet-level view: the merged trace (total rounds vs total records,
  // one point per turn), summed counters, and every source's
  // degradation report in source_reports.
  CrawlResult merged;
  uint64_t turns = 0;
  uint64_t idle_ticks = 0;
};

class CrawlFleet {
 public:
  // Builds the full per-source stacks. The specs are moved in and owned
  // by the fleet (the tables must stay put, so the fleet never exposes
  // mutable specs).
  CrawlFleet(std::vector<FleetSourceSpec> specs, FleetOptions options);
  ~CrawlFleet();

  CrawlFleet(const CrawlFleet&) = delete;
  CrawlFleet& operator=(const CrawlFleet&) = delete;

  // Runs scheduler turns until every source is finished, abandoned, or
  // breaker-exhausted, or the global round budget is hit. Re-callable
  // with a raised budget, like CrawlEngine::Run. Per-source hard
  // failures do NOT fail the fleet (isolation); only checkpoint-sink
  // failures do.
  StatusOr<FleetResult> Run();

  uint32_t num_sources() const;
  uint64_t clock() const { return clock_; }
  uint64_t turns_completed() const { return turns_completed_; }
  uint64_t total_rounds() const { return total_rounds_; }
  uint64_t total_records() const { return total_records_; }
  uint64_t idle_ticks() const { return idle_ticks_; }
  const FleetOptions& options() const { return options_; }
  const FleetSourceSpec& spec(uint32_t i) const;
  const CrawlEngine& engine(uint32_t i) const;
  const LocalStore& store(uint32_t i) const;
  const CircuitBreaker& breaker(uint32_t i) const;
  const TokenBucket& bucket(uint32_t i) const;
  const FaultyServer& faulty(uint32_t i) const;
  // The source's degradation report as of now (final in FleetResult).
  SourceDegradation DegradationOf(uint32_t i) const;

  // Raises/changes the global round budget between Run() calls.
  void set_max_total_rounds(uint64_t rounds) {
    options_.max_total_rounds = rounds;
  }

  // --- checkpointing ---------------------------------------------------
  // Serializes the whole fleet — scheduler state, every breaker, token
  // bucket, engine payload, and fault proxy — as one unit. LoadState
  // requires a freshly constructed fleet whose specs/options match the
  // checkpointing run; on error the fleet must be discarded.
  Status SaveState(CheckpointWriter& writer) const;
  Status LoadState(CheckpointReader& reader);

 private:
  struct Source;

  bool Active(const Source& source) const;
  bool Eligible(const Source& source) const;
  // Picks the next source among eligible ids (ascending); see
  // SchedulerPolicy.
  uint32_t Pick(const std::vector<uint32_t>& eligible) const;
  // Runs one granted turn on source `i`; only checkpoint-sink failures
  // surface as non-OK.
  Status RunTurn(uint32_t i);
  // No source is eligible right now: advance the clock to the earliest
  // future eligibility (breaker cooldown, politeness floor, or token
  // refill), counting the skipped ticks as idle.
  void AdvanceToNextEligibility();
  void PlantSeeds();
  FleetResult BuildResult() const;

  std::vector<FleetSourceSpec> specs_;
  FleetOptions options_;
  std::unique_ptr<FetchExecutor> executor_;
  std::vector<Source> sources_;

  // Fleet simulated clock: advances one tick per communication round any
  // source consumes, plus idle waits.
  uint64_t clock_ = 0;
  uint64_t total_rounds_ = 0;
  uint64_t total_records_ = 0;
  uint64_t turns_completed_ = 0;
  uint64_t idle_ticks_ = 0;
  uint32_t last_picked_ = 0;
  bool seeded_ = false;
  CrawlTrace fleet_trace_;
};

// Heterogeneous fleet builder: cycles the paper's four canned workloads
// (eBay, ACM DL, DBLP, IMDB) at `scale`, generator seeds offset per
// source, all sources sharing `faults` and `target_coverage`.
StatusOr<std::vector<FleetSourceSpec>> MakeFleetSourceSpecs(
    uint32_t num_sources, double scale, double target_coverage,
    FaultProfile faults = FaultProfile{}, uint64_t gen_seed = 1);

// Writes every source's trace as "source,rounds,records" rows in
// source-id order — the byte-comparable artifact of the kill/resume
// check (a resumed fleet must reproduce it byte-for-byte).
Status WriteFleetTraceCsv(const FleetResult& result, std::ostream& output);

// --- whole-fleet checkpoint orchestration ----------------------------
//
// Same DCPK framing as single-engine checkpoints (magic, version, size,
// checksum, atomic write), with a fleet version namespace so the two
// file kinds can never be confused, and the same corruption contract:
// any mangled byte is rejected with a clean Status, never a crash.

// v1002: fleet format 1 over engine payload version 2.
inline constexpr uint32_t kFleetCheckpointVersion = 1002;

inline constexpr uint32_t kSectionFleet = 0x54454c46;        // "FLET"
inline constexpr uint32_t kSectionFleetSource = 0x43525346;  // "FSRC"

StatusOr<std::string> EncodeFleetCheckpoint(const CrawlFleet& fleet);
Status DecodeFleetCheckpoint(std::string_view image, CrawlFleet& fleet);
Status SaveFleetCheckpoint(const CrawlFleet& fleet, const std::string& path);
Status LoadFleetCheckpoint(const std::string& path, CrawlFleet& fleet);

}  // namespace deepcrawl

#endif  // DEEPCRAWL_FLEET_CRAWL_FLEET_H_
