// Cross-module integration tests: the paper's comparative claims,
// checked end-to-end on synthetic databases at test scale.
//
//   * Figure 3's shape: greedy-link reaches a coverage target in fewer
//     rounds than random/BFS selection.
//   * Figure 5's shape: a domain-knowledge crawler with a good DT covers
//     more of the target within a round budget than greedy-link.
//   * Figure 6's shape: tighter result limits degrade coverage.
//   * Crawl invariants: no value queried twice, meters consistent,
//     harvested records are exactly the reachable set, oracle is the
//     cheapest policy.

#include <gtest/gtest.h>

#include <memory>

#include "src/crawler/crawler.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/mmmi_selector.h"
#include "src/crawler/naive_selectors.h"
#include "src/crawler/oracle_selector.h"
#include "src/datagen/canned_workloads.h"
#include "src/datagen/movie_domain.h"
#include "src/datagen/workload_config.h"
#include "src/domain/domain_selector.h"
#include "src/domain/domain_table.h"
#include "src/server/web_db_server.h"

namespace deepcrawl {
namespace {

// Runs one crawl and returns the result. `seed_index` picks a seed value
// deterministically from the catalog.
CrawlResult RunCrawl(const Table& table, WebDbServer& server,
                     QuerySelector& selector, LocalStore& store,
                     CrawlOptions options, uint32_t seed_index = 0) {
  server.ResetMeters();
  Crawler crawler(server, selector, store, options);
  crawler.AddSeed(seed_index % table.num_distinct_values());
  StatusOr<CrawlResult> result = crawler.Run();
  DEEPCRAWL_CHECK(result.ok()) << result.status().ToString();
  return std::move(*result);
}

TEST(IntegrationTest, GreedyLinkBeatsNaivePoliciesOnCoverageCost) {
  SyntheticDbConfig config = EbayConfig(0.05, /*seed=*/3);
  StatusOr<Table> table = GenerateTable(config);
  ASSERT_TRUE(table.ok());
  ServerOptions server_options;  // k = 10, like the paper
  WebDbServer server(*table, server_options);

  CrawlOptions options;
  options.target_records =
      static_cast<uint64_t>(0.9 * table->num_records());

  uint64_t rounds_greedy, rounds_random, rounds_bfs;
  {
    LocalStore store;
    GreedyLinkSelector selector(store);
    rounds_greedy =
        RunCrawl(*table, server, selector, store, options, 7).rounds;
  }
  {
    LocalStore store;
    RandomSelector selector(/*seed=*/1);
    rounds_random =
        RunCrawl(*table, server, selector, store, options, 7).rounds;
  }
  {
    LocalStore store;
    BfsSelector selector;
    rounds_bfs = RunCrawl(*table, server, selector, store, options, 7).rounds;
  }
  EXPECT_LT(rounds_greedy, rounds_random);
  EXPECT_LT(rounds_greedy, rounds_bfs);
}

TEST(IntegrationTest, OracleIsAtLeastAsCheapAsGreedy) {
  StatusOr<Table> table = GenerateTable(EbayConfig(0.03, 5));
  ASSERT_TRUE(table.ok());
  WebDbServer server(*table, ServerOptions{});
  CrawlOptions options;
  options.target_records =
      static_cast<uint64_t>(0.8 * table->num_records());

  uint64_t rounds_oracle, rounds_greedy;
  {
    LocalStore store;
    OracleSelector selector(store, server.index(),
                            server.options().page_size);
    rounds_oracle =
        RunCrawl(*table, server, selector, store, options, 3).rounds;
  }
  {
    LocalStore store;
    GreedyLinkSelector selector(store);
    rounds_greedy =
        RunCrawl(*table, server, selector, store, options, 3).rounds;
  }
  // The oracle greedily maximizes the true harvest rate; it should not
  // lose to the degree heuristic.
  EXPECT_LE(rounds_oracle, rounds_greedy);
}

TEST(IntegrationTest, DomainKnowledgeBeatsGreedyWithinBudget) {
  // Figure 5's shape at test scale.
  MovieDomainPairConfig config;
  config.universe_size = 4000;
  config.target_size = 1200;
  config.seed = 9;
  StatusOr<MovieDomainPair> pair = GenerateMovieDomainPair(config);
  ASSERT_TRUE(pair.ok());
  Table& target = pair->target;
  DomainTable dt = DomainTable::Build(pair->dm1, target.schema(),
                                      target.mutable_catalog());

  ServerOptions server_options;
  server_options.page_size = 10;
  WebDbServer server(target, server_options);

  CrawlOptions options;
  options.max_rounds = 150;  // tight enough that neither policy finishes

  uint64_t records_dm, records_gl;
  {
    LocalStore store;
    DomainSelector selector(store, dt);
    records_dm = RunCrawl(target, server, selector, store, options).records;
  }
  {
    LocalStore store;
    GreedyLinkSelector selector(store);
    records_gl = RunCrawl(target, server, selector, store, options).records;
  }
  EXPECT_GT(records_dm, records_gl);
}

TEST(IntegrationTest, TighterResultLimitsDegradeCoverage) {
  // Figure 6's shape.
  StatusOr<Table> table = GenerateTable(EbayConfig(0.05, 11));
  ASSERT_TRUE(table.ok());

  auto coverage_under_limit = [&](uint32_t limit) {
    ServerOptions server_options;
    server_options.page_size = 10;
    server_options.result_limit = limit;
    WebDbServer server(*table, server_options);
    LocalStore store;
    GreedyLinkSelector selector(store);
    CrawlOptions options;
    options.max_rounds = 250;
    return RunCrawl(*table, server, selector, store, options, 2).records;
  };

  uint64_t unlimited = coverage_under_limit(0);
  uint64_t limit_50 = coverage_under_limit(50);
  uint64_t limit_10 = coverage_under_limit(10);
  EXPECT_GE(unlimited, limit_50);
  EXPECT_GT(limit_50, limit_10);
}

TEST(IntegrationTest, MmmiSqueezesMarginalContentCheaper) {
  // Figure 4's shape: on a correlated database, GL+MMMI reaches deep
  // coverage in fewer rounds than plain GL. The effect is a few percent
  // per crawl and seed-noisy (the paper reports ~10% on real eBay), so
  // the comparison aggregates several generator seeds.
  uint64_t total_plain = 0, total_mmmi = 0;
  for (uint64_t seed : {2, 3, 5, 7, 11}) {
    SyntheticDbConfig config = EbayConfig(0.05, seed);
    StatusOr<Table> table = GenerateTable(config);
    ASSERT_TRUE(table.ok());
    WebDbServer server(*table, ServerOptions{});

    CrawlOptions options;
    options.target_records =
        static_cast<uint64_t>(0.99 * table->num_records());
    options.saturation_records =
        static_cast<uint64_t>(0.85 * table->num_records());

    {
      LocalStore store;
      GreedyLinkSelector selector(store);
      total_plain +=
          RunCrawl(*table, server, selector, store, options, 5).rounds;
    }
    {
      LocalStore store;
      MmmiSelector selector(store);
      total_mmmi +=
          RunCrawl(*table, server, selector, store, options, 5).rounds;
    }
  }
  EXPECT_LT(total_mmmi, total_plain);
}

// Invariant sweep across seeds and policies: the crawl must terminate,
// harvest exactly the reachable records (no duplicates), and meters must
// be consistent.
class CrawlInvariantTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(CrawlInvariantTest, TerminatesConsistently) {
  auto [seed, policy] = GetParam();
  SyntheticDbConfig config;
  config.name = "invariant";
  config.num_records = 400;
  config.seed = seed;
  config.attributes = {
      {.name = "A", .num_distinct = 30, .zipf_exponent = 1.0},
      {.name = "B",
       .num_distinct = 200,
       .zipf_exponent = 0.7,
       .min_per_record = 1,
       .max_per_record = 3},
  };
  StatusOr<Table> table = GenerateTable(config);
  ASSERT_TRUE(table.ok());
  ServerOptions server_options;
  server_options.page_size = 7;
  WebDbServer server(*table, server_options);

  LocalStore store;
  std::unique_ptr<QuerySelector> selector;
  switch (policy) {
    case 0:
      selector = std::make_unique<BfsSelector>();
      break;
    case 1:
      selector = std::make_unique<DfsSelector>();
      break;
    case 2:
      selector = std::make_unique<RandomSelector>(seed);
      break;
    case 3:
      selector = std::make_unique<GreedyLinkSelector>(store);
      break;
    default:
      selector = std::make_unique<MmmiSelector>(store);
      break;
  }

  CrawlOptions options;
  options.saturation_records = 300;
  Crawler crawler(server, *selector, store, options);
  crawler.AddSeed(static_cast<ValueId>(seed % table->num_distinct_values()));
  StatusOr<CrawlResult> result = crawler.Run();
  ASSERT_TRUE(result.ok());

  EXPECT_EQ(result->stop_reason, StopReason::kFrontierExhausted);
  EXPECT_EQ(result->records, store.num_records());
  EXPECT_EQ(result->rounds, server.communication_rounds());
  EXPECT_EQ(result->queries, server.queries_issued());
  EXPECT_GE(result->rounds, result->queries);
  // Every harvested record id is a valid, distinct table record.
  std::set<RecordId> ids;
  for (uint32_t slot = 0; slot < store.num_records(); ++slot) {
    RecordId id = store.OriginalRecordId(slot);
    EXPECT_LT(id, table->num_records());
    EXPECT_TRUE(ids.insert(id).second);
  }
  // Frontier exhausted means every discovered value was queried exactly
  // once; the number of queries can never exceed distinct values.
  EXPECT_LE(result->queries, table->num_distinct_values());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPolicies, CrawlInvariantTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(0, 1, 2, 3, 4)));

TEST(IntegrationTest, AllPoliciesReachFullCoverageOnConnectedDb) {
  StatusOr<Table> table = GenerateTable(EbayConfig(0.02, 17));
  ASSERT_TRUE(table.ok());
  WebDbServer server(*table, ServerOptions{});
  // Verify the database is effectively fully crawlable from one seed.
  LocalStore store;
  GreedyLinkSelector selector(store);
  CrawlResult result =
      RunCrawl(*table, server, selector, store, CrawlOptions{}, 1);
  EXPECT_GT(static_cast<double>(result.records) /
                static_cast<double>(table->num_records()),
            0.95);
}

}  // namespace
}  // namespace deepcrawl
