// Windowed harvest-rate health estimation, shared between CrawlFleet's
// marginal-harvest scheduler and AdaptiveSelector's policy-switch rule.
//
// Both consumers observe the same signal — records gained and failures
// suffered per communication round — and smooth it with the same
// first-sample-latched EWMA: the first observation seeds the estimate
// directly (no bias toward an arbitrary zero prior), later ones blend
// with weight `alpha`. The scheduler turns the estimate into a pick
// score (optimistic floor × failure discount); the adaptive selector
// compares it against its per-phase peak to detect the §3.3 saturation
// knee. Keeping the arithmetic in one place keeps the two bit-identical
// to their pre-refactor implementations — CrawlFleet serializes the
// three fields verbatim in its FSRC record, so field semantics and
// update order here are part of the fleet checkpoint format.

#ifndef DEEPCRAWL_CRAWLER_HARVEST_RATE_H_
#define DEEPCRAWL_CRAWLER_HARVEST_RATE_H_

#include <algorithm>

namespace deepcrawl {

struct HarvestRateEwma {
  bool seen = false;   // has any turn been observed yet?
  double hr = 0.0;     // EWMA of new records per consumed round
  double err = 0.0;    // EWMA of transient failures per consumed round

  // Folds one turn's per-round rates into the estimate. `alpha` is the
  // blend weight of the new observation (fleet default 0.4).
  void Observe(double alpha, double harvest_rate, double error_rate) {
    if (!seen) {
      seen = true;
      hr = harvest_rate;
      err = error_rate;
    } else {
      hr = alpha * harvest_rate + (1.0 - alpha) * hr;
      err = alpha * error_rate + (1.0 - alpha) * err;
    }
  }

  // Scheduler pick score: measured harvest rate held up by an optimism
  // floor, discounted by the failure fraction. Never negative.
  double Score(double floor) const {
    double rate = std::max(hr, floor);
    double health = std::max(0.0, 1.0 - err);
    return rate * health;
  }
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_CRAWLER_HARVEST_RATE_H_
