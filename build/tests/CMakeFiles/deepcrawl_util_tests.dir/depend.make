# Empty dependencies file for deepcrawl_util_tests.
# This may be replaced when dependencies are built.
